# Convenience wrappers around the tier-1 verification gate
# (scripts/check.sh). Everything is stdlib-only Go; there is no separate
# build step beyond the toolchain's.

.PHONY: check test build vet race race-batch fuzz soak

check: ## full tier-1 gate: vet + build + race tests + simfuzz soak
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

race-batch: ## extra race-detector passes over the concurrency-critical packages
	go test -race -count=2 ./internal/runner ./internal/simcheck

fuzz: ## native Go fuzzing of the SDL parser (30s)
	go test ./internal/sdl/ -fuzz FuzzParse -fuzztime 30s

soak: ## long scheduler soak with the property-based harness (parallel seeds)
	go run ./cmd/simfuzz -start 10000 -duration 10m -jobs 4
