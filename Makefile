# Convenience wrappers around the tier-1 verification gate
# (scripts/check.sh). Everything is stdlib-only Go; there is no separate
# build step beyond the toolchain's.

.PHONY: check test build vet race race-batch fuzz fuzz-telemetry fuzz-eventlog golden golden-update overhead soak faults bench bench-check bench-baseline bench-dse bench-dse-check bench-dse-baseline equivalence engine-equivalence checkpoint-equivalence timer-boundary conformance personality-overhead dse-check simd campaign-resume

check: ## full tier-1 gate: vet + build + race tests + simfuzz soak
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

race-batch: ## extra race-detector passes over the concurrency-critical packages
	go test -race -count=2 ./internal/runner ./internal/simcheck

fuzz: ## native Go fuzzing of the SDL parser (30s)
	go test ./internal/sdl/ -fuzz FuzzParse -fuzztime 30s

fuzz-telemetry: ## native Go fuzzing of the telemetry binary event codec (30s)
	go test ./internal/telemetry/ -fuzz FuzzEventStream -fuzztime 30s

fuzz-eventlog: ## native Go fuzzing of the campaign event-log recovery path (30s)
	go test ./internal/campaign/eventlog/ -fuzz FuzzEventLog -fuzztime 30s

simd: ## build the campaign server daemon
	go build ./cmd/simd

campaign-resume: ## kill-and-restart differential matrix: crash at every log position, resume, diff against golden (jobs 1 and 8, race detector)
	go test -race -run 'TestCrashResume|TestResumeServesDoneJobsFromCache' -count=1 -v ./internal/campaign | tail -5

golden: ## golden-trace diff against testdata/golden
	go test -run 'TestGoldenTrace' -count=1 .

golden-update: ## regenerate the golden traces (review the diff!)
	go test -run 'TestGoldenTrace' -count=1 -update .

overhead: ## telemetry overhead guard + benchmarks
	TELEMETRY_OVERHEAD_GUARD=1 go test -run TestTelemetryOverheadGuard -count=1 -v .
	go test -bench 'BenchmarkTelemetry' -benchmem -run '^$$' .

soak: ## long scheduler soak with the property-based harness (parallel seeds)
	go run ./cmd/simfuzz -start 10000 -duration 10m -jobs 4

faults: ## fault-injection campaign with the diagnosis gates (seeds × plans)
	go run ./cmd/simfuzz -faults -n 64 -jobs 8

bench: ## run the kernel performance scenarios and print the table
	go run ./cmd/simbench

bench-check: ## gate the scenarios against the committed BENCH_kernel.json
	go run ./cmd/simbench -check -tolerance 1.0

bench-baseline: ## re-record BENCH_kernel.json (review the diff!)
	go run ./cmd/simbench -out BENCH_kernel.json

bench-dse: ## run the design-space-exploration scenarios and print the table
	go run ./cmd/simbench -suite dse

bench-dse-check: ## gate the DSE scenarios against the committed BENCH_dse.json
	go run ./cmd/simbench -suite dse -check -tolerance 1.0

bench-dse-baseline: ## re-record BENCH_dse.json (review the diff!)
	go run ./cmd/simbench -suite dse -out BENCH_dse.json

timer-boundary: ## timing-wheel boundary ordering: differential harness vs reference heap + RunUntil edges
	go test -run 'TestDifferentialVsHeap|TestSameInstantSeqOrder|TestFrontSlot|TestEachEnumeratesAll|TestZeroAllocSteadyState' -count=1 ./internal/timewheel
	go test -run 'TestRunUntilBoundary' -count=1 ./internal/sim

equivalence: ## indexed-vs-linear ready-queue byte-equivalence matrix
	go test -run 'TestReadyQueueEquivalence' -count=1 ./internal/simcheck

engine-equivalence: ## goroutine-vs-run-to-completion engine byte-equivalence matrix (simcheck corpus, taskset matrix, SDL corpus + goldens)
	go test -run 'TestEngineEquivalence' -count=1 ./internal/simcheck ./internal/taskset
	go test -run 'TestEngineEquivalence|TestGoldenTracesSDL' -count=1 ./internal/sdl

checkpoint-equivalence: ## snapshot/restore byte-equivalence: simcheck matrix + rtc engine suite
	go test -run 'TestCheckpoint' -count=1 ./internal/simcheck
	go test -run 'TestSnapshot|TestRestore' -count=1 ./internal/rtc ./internal/sim

dse-check: ## design-space-exploration gates: memoization, Pareto, cache keys, fork sweeps + BENCH_dse.json baseline
	go test -race -count=1 ./internal/dse
	go run ./cmd/simbench -suite dse -check -tolerance 1.0

conformance: ## RTOS personality conformance suites (µITRON 4.0, OSEK OS 2.2.3)
	go test -run 'TestITRONConformance' -count=1 -v ./internal/personality/itron | tail -3
	go test -run 'TestOSEKConformance' -count=1 -v ./internal/personality/osek | tail -3
	go test -run 'TestCrossPersonalityCorpus' -count=1 ./internal/simcheck

personality-overhead: ## personality dispatch overhead guard + benchmarks
	PERSONALITY_OVERHEAD_GUARD=1 go test -run TestPersonalityOverheadGuard -count=1 -v .
	go test -bench 'BenchmarkPersonality' -benchmem -run '^$$' .
