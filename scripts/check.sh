#!/bin/sh
# Tier-1 verification gate (see README.md "Verification"): vet, build,
# the full test suite under the race detector, and a bounded simcheck
# soak run. Every change must keep this script green.
#
#   ./scripts/check.sh              # full gate (~1 min)
#   SIMFUZZ_DURATION=5s ./scripts/check.sh   # shorter soak
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# The batch engine and the property harness are the two packages whose
# bugs only show up under contention; run them again with a higher
# -count so the race detector sees more interleavings.
echo "== go test -race -count=2 ./internal/runner ./internal/simcheck"
go test -race -count=2 ./internal/runner ./internal/simcheck

# Golden-trace diff: the canonical telemetry event streams of the two
# example designs must match testdata/golden/ byte-for-byte, sequentially
# and under the parallel batch engine. (go test ./... above already ran
# these; this explicit pass keeps the gate's contract visible and
# survives future test-filtering in the step above.)
echo "== golden-trace diff (testdata/golden)"
go test -run 'TestGoldenTrace' -count=1 .

# Telemetry overhead guard: an always-on ring sink must stay within a
# generous multiple of the uninstrumented baseline (catches accidental
# per-event allocation/formatting on the observer hot path).
echo "== telemetry overhead guard"
TELEMETRY_OVERHEAD_GUARD=1 go test -run TestTelemetryOverheadGuard -count=1 -v .

# Ready-queue equivalence: the indexed (bucketed) ready queue must make
# byte-identical scheduling decisions to the original linear scan across
# the full policy × time-model × PE matrix. (go test ./... above already
# ran this; the explicit pass keeps the gate's contract visible.)
echo "== ready-queue equivalence matrix"
go test -run 'TestReadyQueueEquivalence' -count=1 ./internal/simcheck

# RTOS personality conformance: the µITRON 4.0 and OSEK OS 2.2.3 suites
# (spec-clause-keyed, table-driven) plus the seeded cross-personality
# corpus whose per-task outcomes must match the generic kernel run for
# every seed. (go test ./... above already ran these; the explicit pass keeps
# the personality layer's contract visible in the gate.)
echo "== personality conformance suites (itron, osek) + cross corpus"
go test -run 'TestITRONConformance' -count=1 ./internal/personality/itron
go test -run 'TestOSEKConformance' -count=1 ./internal/personality/osek
go test -run 'TestCrossPersonalityCorpus' -count=1 ./internal/simcheck

# Execution-engine equivalence: the run-to-completion engine
# (internal/rtc, -engine=rtc) must produce byte-identical traces,
# diagnoses and statistics to the goroutine kernel across the
# policy × time-model × personality matrix — the seeded simcheck
# corpus, the taskset-level matrix, and the SDL corpus (hierarchical
# seq/par behaviors, handshakes, split stimulus/ISR interrupts:
# figure3, vocoder, bus-driver) with its per-example golden traces.
# (go test ./... above already ran these; the explicit pass keeps the
# two-engine contract visible.)
echo "== execution-engine equivalence (goroutine vs run-to-completion)"
go test -run 'TestEngineEquivalence' -count=1 ./internal/simcheck ./internal/taskset
go test -run 'TestEngineEquivalence|TestGoldenTracesSDL' -count=1 ./internal/sdl

# Timer-boundary ordering: the hierarchical timing wheel must agree
# with the reference heap on every boundary case the randomized
# differential harness can produce — slot/level edges, same-instant
# FIFO order, front-slot (fast path) arming — and its steady state must
# stay allocation-free.
echo "== timewheel boundary ordering + differential harness"
go test -run 'TestDifferentialVsHeap|TestSameInstantSeqOrder|TestFrontSlot|TestEachEnumeratesAll|TestZeroAllocSteadyState' -count=1 ./internal/timewheel
go test -run 'TestRunUntilBoundary' -count=1 ./internal/sim

# Checkpoint equivalence: a run snapshotted at a randomized instant and
# restored into a fresh kernel must finish with byte-identical traces and
# statistics, on both engines, across the simcheck matrix — plus the
# engine-level snapshot suites (determinism, forking, structure-hash
# rejection). (go test ./... above already ran these; the explicit pass
# keeps the checkpoint contract visible in the gate.)
echo "== checkpoint/restore equivalence (simcheck matrix + engine suites)"
go test -run 'TestCheckpoint' -count=1 ./internal/simcheck
go test -run 'TestSnapshot|TestRestore' -count=1 ./internal/rtc ./internal/sim

# Design-space-exploration gates: memoization accounting (a repeated
# sweep must be answered 100% from the content-hash cache, byte-identical
# to the cold run), Pareto-front ranking, cache-key canonicalization
# (golden hash), and checkpoint-forked sweeps.
echo "== design-space exploration gates (internal/dse)"
go test -race -count=1 ./internal/dse

# Personality dispatch overhead guard: the personality interface in
# front of the core services must stay within 5% of direct calls on the
# context-switch scenario (generic passthrough isolates the indirection).
echo "== personality dispatch overhead guard"
PERSONALITY_OVERHEAD_GUARD=1 go test -run TestPersonalityOverheadGuard -count=1 -v .

# Kernel performance gate: re-run the benchmark scenarios — both the
# goroutine kernel's and the run-to-completion engine's (rtc/*) — and
# compare against the committed baseline (BENCH_kernel.json). Allocation
# counts are gated exactly — any steady-state alloc regression fails here —
# while ns/op gets a wide 100% tolerance to absorb host variation.
echo "== simbench baseline check (BENCH_kernel.json)"
go run ./cmd/simbench -check -tolerance 1.0

# DSE throughput gate: configurations/second cold vs memoized and the
# checkpoint snapshot/restore cost against the committed BENCH_dse.json.
# The snapshot/restore alloc counts are gated exactly, like the kernel
# suite's.
echo "== simbench DSE baseline check (BENCH_dse.json)"
go run ./cmd/simbench -suite dse -check -tolerance 1.0

# Campaign crash-resume gate: the simulation-as-a-service server
# (cmd/simd, internal/campaign) is killed at every event-log position
# mid-campaign and restarted; the finished campaign must be
# byte-identical to the uninterrupted golden run — results, signed
# receipts, canonical run state — with zero completed cells re-executed
# (cache-hit accounting), at worker counts 1 and 8 under the race
# detector. (go test -race ./... above already ran these; the explicit
# pass keeps the crash-resume contract visible in the gate.)
echo "== campaign crash-resume differential matrix (jobs 1 and 8)"
go test -race -run 'TestCrashResume|TestResumeServesDoneJobsFromCache' -count=1 ./internal/campaign

# Soak the scheduler with fresh seeds (offset so they do not just repeat
# the seeds go test already covered); 4 seeds in flight exercises the
# concurrent-kernel contract on every run of this gate.
echo "== simfuzz soak (${SIMFUZZ_DURATION:-30s}, 4 jobs)"
go run ./cmd/simfuzz -start 10000 -duration "${SIMFUZZ_DURATION:-30s}" -jobs 4

# Fault-injection campaign smoke: 16 seeds across the built-in plan
# battery with the three diagnosis gates — no false positive on any
# ExpectClean plan, the diagnostic stream byte-identical at -jobs 8 and
# -jobs 1, and the seeded three-task semaphore deadlock detected with its
# exact wait-for cycle (README.md "Robustness").
echo "== fault-injection campaign smoke (16 seeds, 8 jobs)"
go run ./cmd/simfuzz -faults -n 16 -jobs 8

echo "check.sh: all gates passed"
