#!/bin/sh
# Tier-1 verification gate (see README.md "Verification"): vet, build,
# the full test suite under the race detector, and a bounded simcheck
# soak run. Every change must keep this script green.
#
#   ./scripts/check.sh              # full gate (~1 min)
#   SIMFUZZ_DURATION=5s ./scripts/check.sh   # shorter soak
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# The batch engine and the property harness are the two packages whose
# bugs only show up under contention; run them again with a higher
# -count so the race detector sees more interleavings.
echo "== go test -race -count=2 ./internal/runner ./internal/simcheck"
go test -race -count=2 ./internal/runner ./internal/simcheck

# Soak the scheduler with fresh seeds (offset so they do not just repeat
# the seeds go test already covered); 4 seeds in flight exercises the
# concurrent-kernel contract on every run of this gate.
echo "== simfuzz soak (${SIMFUZZ_DURATION:-30s}, 4 jobs)"
go run ./cmd/simfuzz -start 10000 -duration "${SIMFUZZ_DURATION:-30s}" -jobs 4

echo "check.sh: all gates passed"
