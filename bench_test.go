// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus the ablations of DESIGN.md's experiment index. Run with
//
//	go test -bench=. -benchmem
//
// Absolute numbers depend on the host; the paper-relevant outputs are the
// ratios (architecture ≈ unscheduled ≪ implementation) and the custom
// metrics reported via b.ReportMetric.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/smp"
	"repro/internal/synth"
	"repro/internal/taskset"
	"repro/internal/ukernel"
	"repro/internal/vocoder"
	"repro/internal/workload"
)

// benchFrames keeps per-iteration work bounded; Table 1 ratios are stable
// from a few dozen frames on.
const benchFrames = 40

func table1Params() vocoder.Params {
	par := vocoder.Default()
	par.Frames = benchFrames
	return par
}

// BenchmarkTable1_Unscheduled is Table 1 column 1: the specification
// model's simulation cost and transcoding delay.
func BenchmarkTable1_Unscheduled(b *testing.B) {
	par := table1Params()
	var delay sim.Time
	for i := 0; i < b.N; i++ {
		res, _, err := vocoder.RunSpec(par)
		if err != nil {
			b.Fatal(err)
		}
		delay = res.TranscodingDelay
	}
	b.ReportMetric(float64(delay)/1e6, "transcode-ms")
}

// BenchmarkTable1_Architecture is Table 1 column 2: the RTOS-model-based
// architecture model.
func BenchmarkTable1_Architecture(b *testing.B) {
	par := table1Params()
	var delay sim.Time
	var switches uint64
	for i := 0; i < b.N; i++ {
		res, _, err := vocoder.RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse)
		if err != nil {
			b.Fatal(err)
		}
		delay, switches = res.TranscodingDelay, res.ContextSwitches
	}
	b.ReportMetric(float64(delay)/1e6, "transcode-ms")
	b.ReportMetric(float64(switches)/float64(benchFrames), "switches/frame")
}

// BenchmarkTable1_Implementation is Table 1 column 3: the ISS-based
// implementation model (expected orders of magnitude slower per frame).
func BenchmarkTable1_Implementation(b *testing.B) {
	par := table1Params()
	var delay sim.Time
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, _, err := vocoder.RunImpl(par, false)
		if err != nil {
			b.Fatal(err)
		}
		delay, insts = res.TranscodingDelay, res.Instructions
	}
	b.ReportMetric(float64(delay)/1e6, "transcode-ms")
	b.ReportMetric(float64(insts)/float64(b.Elapsed().Seconds()+1e-9)/float64(b.N), "iss-insts/s")
}

// BenchmarkFigure8_Unscheduled regenerates Figure 8(a).
func BenchmarkFigure8_Unscheduled(b *testing.B) {
	par := models.DefaultFigure3()
	for i := 0; i < b.N; i++ {
		if _, err := models.Figure3Unscheduled(par); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8_Architecture regenerates Figure 8(b) and reports the
// delayed-preemption response (t4' - t4).
func BenchmarkFigure8_Architecture(b *testing.B) {
	par := models.DefaultFigure3()
	var resp sim.Time
	for i := 0; i < b.N; i++ {
		rec, _, err := models.Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelCoarse)
		if err != nil {
			b.Fatal(err)
		}
		resp = rec.MarkerTimes("ext-data")[0] - par.IRQAt
	}
	b.ReportMetric(float64(resp), "t4'-t4-ns")
}

// BenchmarkGranularity is the F8-PREC ablation: response error of the
// coarse time model at several d6 annotation granularities, and the
// segmented model as the zero-error reference.
func BenchmarkGranularity(b *testing.B) {
	for _, chunks := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("coarse-chunks-%d", chunks), func(b *testing.B) {
			par := models.DefaultFigure3()
			par.D6Chunks = chunks
			var resp sim.Time
			for i := 0; i < b.N; i++ {
				rec, _, err := models.Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelCoarse)
				if err != nil {
					b.Fatal(err)
				}
				resp = rec.MarkerTimes("ext-data")[0] - par.IRQAt
			}
			b.ReportMetric(float64(resp), "resp-error-ns")
		})
	}
	b.Run("segmented", func(b *testing.B) {
		par := models.DefaultFigure3()
		var resp sim.Time
		for i := 0; i < b.N; i++ {
			rec, _, err := models.Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelSegmented)
			if err != nil {
				b.Fatal(err)
			}
			resp = rec.MarkerTimes("ext-data")[0] - par.IRQAt
		}
		b.ReportMetric(float64(resp), "resp-error-ns")
	})
}

// BenchmarkOverhead_RawKernel vs BenchmarkOverhead_RTOSModel quantify the
// Table 1 "Execution Time" claim: the RTOS model layer adds only a small
// constant factor over the bare SLDL kernel.
func BenchmarkOverhead_RawKernel(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("tasks-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel()
				for j := 0; j < n; j++ {
					k.Spawn(fmt.Sprintf("p%d", j), func(p *sim.Proc) {
						for s := 0; s < 500; s++ {
							p.WaitFor(100)
						}
					})
				}
				if err := k.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOverhead_RTOSModel is the same workload through the RTOS layer.
func BenchmarkOverhead_RTOSModel(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("tasks-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel()
				rtos := core.New(k, "PE", core.PriorityPolicy{})
				for j := 0; j < n; j++ {
					task := rtos.TaskCreate(fmt.Sprintf("t%d", j), core.Aperiodic, 0, 0, j)
					k.Spawn(task.Name(), func(p *sim.Proc) {
						rtos.TaskActivate(p, task)
						for s := 0; s < 500; s++ {
							rtos.TimeWait(p, 100)
						}
						rtos.TaskTerminate(p)
					})
				}
				rtos.Start(nil)
				if err := k.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulers is the SCHED experiment: the same task set under
// every scheduling policy, reporting the deadline miss ratio.
func BenchmarkSchedulers(b *testing.B) {
	policies := []core.Policy{
		core.FCFSPolicy{},
		core.RoundRobinPolicy{Quantum: 5 * sim.Millisecond},
		core.PriorityPolicy{},
		core.RMPolicy{},
		core.EDFPolicy{},
	}
	for _, pol := range policies {
		b.Run(pol.Name(), func(b *testing.B) {
			var miss float64
			for i := 0; i < b.N; i++ {
				specs := workload.PeriodicSet(workload.NewRNG(7), 8, 0.85)
				res, err := workload.Run(specs, pol, core.TimeModelSegmented, 2*sim.Second)
				if err != nil {
					b.Fatal(err)
				}
				miss = res.MissRatio()
			}
			b.ReportMetric(100*miss, "miss-%")
		})
	}
}

// BenchmarkKernelContextSwitch measures the cost of one modeled RTOS
// dispatch round trip (event handover between two tasks).
func BenchmarkKernelContextSwitch(b *testing.B) {
	k := sim.NewKernel()
	rtos := core.New(k, "PE", core.PriorityPolicy{})
	f := channel.RTOSFactory{OS: rtos}
	ping := channel.NewSemaphore(f, "ping", 0)
	pong := channel.NewSemaphore(f, "pong", 0)
	a := rtos.TaskCreate("a", core.Aperiodic, 0, 0, 1)
	c := rtos.TaskCreate("b", core.Aperiodic, 0, 0, 2)
	n := b.N
	k.Spawn("a", func(p *sim.Proc) {
		rtos.TaskActivate(p, a)
		for i := 0; i < n; i++ {
			rtos.TimeWait(p, 1)
			ping.Release(p)
			pong.Acquire(p)
		}
		rtos.TaskTerminate(p)
	})
	k.Spawn("b", func(p *sim.Proc) {
		rtos.TaskActivate(p, c)
		for i := 0; i < n; i++ {
			ping.Acquire(p)
			pong.Release(p)
		}
		rtos.TaskTerminate(p)
	})
	rtos.Start(nil)
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimPrimitives measures the bare kernel's waitfor throughput.
func BenchmarkSimPrimitives(b *testing.B) {
	k := sim.NewKernel()
	n := b.N
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.WaitFor(10)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMultiPE is the EXT-MP experiment: the vocoder partitioned onto
// two PEs over a bus; the reported transcoding delay should sit near the
// unscheduled bound.
func BenchmarkMultiPE(b *testing.B) {
	mp := vocoder.DefaultMultiPE()
	mp.Frames = benchFrames
	var delay sim.Time
	for i := 0; i < b.N; i++ {
		res, _, err := vocoder.RunMultiPE(mp, core.PriorityPolicy{}, core.TimeModelCoarse)
		if err != nil {
			b.Fatal(err)
		}
		delay = res.TranscodingDelay
	}
	b.ReportMetric(float64(delay)/1e6, "transcode-ms")
}

// BenchmarkJPEGMappings is the EXT-JPEG experiment: per-block encode time
// under the three mappings.
func BenchmarkJPEGMappings(b *testing.B) {
	par := models.SmallJPEG()
	type runner func() (models.JPEGResults, error)
	cases := []struct {
		name string
		run  runner
	}{
		{"spec", func() (models.JPEGResults, error) {
			r, _, err := models.JPEGSpec(par)
			return r, err
		}},
		{"software", func() (models.JPEGResults, error) {
			r, _, err := models.JPEGSW(par, core.PriorityPolicy{}, core.TimeModelCoarse)
			return r, err
		}},
		{"hwsw", func() (models.JPEGResults, error) {
			r, _, _, err := models.JPEGHWSW(par, core.PriorityPolicy{}, core.TimeModelCoarse)
			return r, err
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var perBlock sim.Time
			for i := 0; i < b.N; i++ {
				r, err := c.run()
				if err != nil {
					b.Fatal(err)
				}
				perBlock = r.PerBlock
			}
			b.ReportMetric(float64(perBlock)/1e3, "block-us")
		})
	}
}

// BenchmarkSMPDhall is the EXT-SMP experiment: global RM on 2 CPUs over
// the Dhall task set, reporting the miss count that partitioned mapping
// avoids.
func BenchmarkSMPDhall(b *testing.B) {
	var missed int
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		os := smp.New(k, "SMP", smp.FixedPriority{}, 2, true)
		specs := []struct {
			name         string
			period, wcet sim.Time
		}{{"light1", 100, 10}, {"light2", 100, 10}, {"heavy", 105, 100}}
		var tasks []*smp.Task
		for _, s := range specs {
			s := s
			task := os.TaskCreate(s.name, core.Periodic, s.period, s.wcet, 0)
			tasks = append(tasks, task)
			k.Spawn(s.name, func(p *sim.Proc) {
				os.TaskActivate(p, task)
				for c := 0; c < 10; c++ {
					os.TimeWait(p, s.wcet)
					os.TaskEndCycle(p)
				}
				os.TaskTerminate(p)
			})
		}
		os.AssignRateMonotonic()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		missed = 0
		for _, t := range tasks {
			missed += t.MissedDeadlines()
		}
	}
	b.ReportMetric(float64(missed), "misses")
}

// BenchmarkSynthesis is the EXT-SYNTH experiment: generate firmware for a
// task set and co-simulate it on the ISS.
func BenchmarkSynthesis(b *testing.B) {
	set := &taskset.Set{
		Tasks: []taskset.Task{
			{Name: "ctrl", Type: "periodic", PeriodUs: 500, WcetUs: 100, Prio: 1},
			{Name: "audio", Type: "periodic", PeriodUs: 2000, WcetUs: 600, Prio: 2},
		},
	}
	var insts uint64
	for i := 0; i < b.N; i++ {
		fw, err := synth.Generate(set, ukernel.DefaultCyclePeriod)
		if err != nil {
			b.Fatal(err)
		}
		res, err := fw.Run(10*sim.Millisecond, true)
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Instructions
	}
	b.ReportMetric(float64(insts), "iss-insts")
}

// sweepOnce runs the parallel-batch reference workload — 32 independent
// periodic-set simulations (8 utilizations × 4 seeds) — on the given
// worker count and folds the miss ratios so the compiler keeps the work.
func sweepOnce(b *testing.B, jobs int) float64 {
	type cell struct {
		u    float64
		seed uint64
	}
	var cells []cell
	for _, u := range []float64{0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95} {
		for seed := uint64(1); seed <= 4; seed++ {
			cells = append(cells, cell{u: u, seed: seed})
		}
	}
	results := runner.Map(len(cells), runner.Options{Jobs: jobs}, func(i int) (float64, error) {
		c := cells[i]
		specs := workload.PeriodicSet(workload.NewRNG(c.seed), 8, c.u)
		res, err := workload.Run(specs, core.EDFPolicy{}, core.TimeModelSegmented, sim.Second)
		if err != nil {
			return 0, err
		}
		return res.MissRatio(), nil
	})
	total := 0.0
	for _, r := range results {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		total += r.Value
	}
	return total
}

// BenchmarkSequentialSweep vs BenchmarkParallelSweep measure the batch
// engine on the SCHED-style utilization sweep. On an N-core machine the
// parallel variant should approach N× (≥2× on ≥4 cores); on a single
// core the two are equivalent, which is itself the determinism story:
// worker count changes wall-clock only, never results.
func BenchmarkSequentialSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweepOnce(b, 1)
	}
}

// BenchmarkParallelSweep is the same sweep on runtime.NumCPU() workers.
func BenchmarkParallelSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweepOnce(b, runtime.NumCPU())
	}
}

// BenchmarkISSThroughput measures raw interpreted instructions per second
// of the implementation-model processor.
func BenchmarkISSThroughput(b *testing.B) {
	res, _, err := vocoder.RunImpl(vocoder.Small(), false)
	if err != nil {
		b.Fatal(err)
	}
	perRun := res.Instructions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vocoder.RunImpl(vocoder.Small(), false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(perRun)*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
}
