// Table 1 regression pin: the repository's headline reproduction numbers,
// checked exactly at full scale (163 frames). Guarded by -short so quick
// development cycles skip the ~2 s implementation-model run.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vocoder"
)

func TestTable1Regression(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size Table 1 run; skipped with -short")
	}
	par := vocoder.Default() // 163 frames, as in the paper's ≈2 switches/frame

	spec, _, err := vocoder.RunSpec(par)
	if err != nil {
		t.Fatal(err)
	}
	arch, _, err := vocoder.RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	impl, _, err := vocoder.RunImpl(par, true) // idle-skip: same metrics, faster
	if err != nil {
		t.Fatal(err)
	}

	// Paper: context switches 0 / 327 / 326. Ours, pinned exactly:
	if spec.ContextSwitches != 0 {
		t.Errorf("spec switches = %d, want 0", spec.ContextSwitches)
	}
	if arch.ContextSwitches != 329 {
		t.Errorf("arch switches = %d, want 329", arch.ContextSwitches)
	}
	if impl.ContextSwitches != 327 {
		t.Errorf("impl switches = %d, want 327", impl.ContextSwitches)
	}

	// Paper: transcoding delay 9.7 / 12.5 / 11.7 ms. Ours, pinned:
	if spec.TranscodingDelay != 7014500 {
		t.Errorf("spec delay = %v, want 7014500ns", spec.TranscodingDelay)
	}
	if arch.TranscodingDelay != 10202000 {
		t.Errorf("arch delay = %v, want 10202us", arch.TranscodingDelay)
	}
	// The implementation model's delay includes kernel service cycles;
	// pinned to the paper-shape band rather than the exact value so
	// kernel-cost tuning doesn't churn this test.
	if impl.TranscodingDelay < arch.TranscodingDelay ||
		impl.TranscodingDelay > arch.TranscodingDelay+100*sim.Microsecond {
		t.Errorf("impl delay = %v, want within [%v, %v+100us]",
			impl.TranscodingDelay, arch.TranscodingDelay, arch.TranscodingDelay)
	}

	// All 163 frames transcoded in every model.
	for _, r := range []vocoder.Results{spec, arch, impl} {
		if len(r.Delays) != par.Frames {
			t.Errorf("%s transcoded %d frames, want %d", r.Model, len(r.Delays), par.Frames)
		}
	}
}
