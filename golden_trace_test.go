// Golden-trace regression suite: the canonical telemetry event streams
// of the two example designs (examples/figure3, examples/vocoder) are
// pinned byte-for-byte under testdata/golden/. Any change to scheduling
// order, observer hook placement, or the Event.String format shows up as
// a golden diff.
//
// Regenerate intentionally with:
//
//	go test -run TestGoldenTrace -update
package repro

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/personality"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/vocoder"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files under testdata/golden")

// renderTrace turns an event stream into the canonical line format.
func renderTrace(events []telemetry.Event) []byte {
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// figure3Trace simulates the paper's Figure 3 design (architecture
// model, priority policy, coarse time — the examples/figure3 default)
// and returns its canonical trace.
func figure3Trace(t *testing.T) []byte {
	t.Helper()
	col := &telemetry.Collector{}
	bus := telemetry.NewBus(col)
	_, _, err := models.Figure3Architecture(models.DefaultFigure3(),
		core.PriorityPolicy{}, core.TimeModelCoarse, bus)
	if err != nil {
		t.Fatalf("figure3 architecture run: %v", err)
	}
	return renderTrace(col.Events)
}

// vocoderTrace simulates the vocoder architecture model with the small
// parameter set (8 frames keeps the golden file reviewable) and returns
// its canonical trace.
func vocoderTrace(t *testing.T) []byte {
	t.Helper()
	col := &telemetry.Collector{}
	bus := telemetry.NewBus(col)
	_, _, err := vocoder.RunArch(vocoder.Small(), core.PriorityPolicy{},
		core.TimeModelCoarse, bus)
	if err != nil {
		t.Fatalf("vocoder architecture run: %v", err)
	}
	return renderTrace(col.Events)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d lines)", path, bytes.Count(got, []byte("\n")))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run: go test -run TestGoldenTrace -update): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Report the first differing line, which localizes scheduling drift
	// far better than a byte offset.
	gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("%s: first difference at line %d:\n  got:  %s\n  want: %s\n(%d vs %d lines; regenerate intentionally with -update)",
				path, i+1, gl[i], wl[i], len(gl)-1, len(wl)-1)
		}
	}
	t.Fatalf("%s: traces diverge in length: %d vs %d lines (regenerate intentionally with -update)",
		path, len(gl)-1, len(wl)-1)
}

func TestGoldenTraceFigure3(t *testing.T) {
	checkGolden(t, "figure3.trace", figure3Trace(t))
}

func TestGoldenTraceVocoder(t *testing.T) {
	checkGolden(t, "vocoder.trace", vocoderTrace(t))
}

// vocoderPersonalityTrace simulates the vocoder architecture model under
// the given RTOS personality and returns its canonical trace.
func vocoderPersonalityTrace(t *testing.T, kind string) []byte {
	t.Helper()
	col := &telemetry.Collector{}
	bus := telemetry.NewBus(col)
	_, _, err := vocoder.RunArchPersonality(vocoder.Small(), core.PriorityPolicy{},
		core.TimeModelCoarse, kind, bus)
	if err != nil {
		t.Fatalf("vocoder %s run: %v", kind, err)
	}
	return renderTrace(col.Events)
}

// TestGoldenTraceVocoderPersonalities pins one vocoder run per RTOS
// personality. The generic run must be byte-identical to the existing
// vocoder.trace golden (the personality layer is a transparent
// passthrough for the paper model); the itron and osek runs get their
// own goldens, so any drift in a native kernel's grant order or wakeup
// bookkeeping shows up as a reviewable diff.
func TestGoldenTraceVocoderPersonalities(t *testing.T) {
	for _, kind := range personality.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			got := vocoderPersonalityTrace(t, kind)
			if kind == personality.Generic {
				// Same bytes as the default-path golden: no separate file.
				checkGolden(t, "vocoder.trace", got)
				return
			}
			checkGolden(t, "vocoder_"+kind+".trace", got)
		})
	}
}

// TestGoldenTraceParallelDeterminism reruns both example simulations
// under the batch-run engine at -jobs 1 and -jobs 8 and requires every
// repetition to be byte-identical to the golden file: concurrency in the
// harness must never leak into simulation behavior.
func TestGoldenTraceParallelDeterminism(t *testing.T) {
	if *updateGolden {
		t.Skip("skipped while updating goldens")
	}
	const reps = 8
	run := func(name string, gen func(*testing.T) []byte, jobs int) {
		results := runner.Map(reps, runner.Options{Jobs: jobs}, func(i int) ([]byte, error) {
			return gen(t), nil
		})
		traces, err := runner.Values(results)
		if err != nil {
			t.Fatalf("%s jobs=%d: %v", name, jobs, err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", "golden", name))
		if err != nil {
			t.Fatal(err)
		}
		for i, tr := range traces {
			if !bytes.Equal(tr, want) {
				t.Fatalf("%s: repetition %d at jobs=%d differs from golden", name, i, jobs)
			}
		}
	}
	for _, jobs := range []int{1, 8} {
		run("figure3.trace", figure3Trace, jobs)
		run("vocoder.trace", vocoderTrace, jobs)
	}
}
