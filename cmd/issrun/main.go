// Command issrun assembles and executes a program on the implementation
// model's instruction-set simulator (internal/iss), standalone — without
// kernel or co-simulation. Useful for developing firmware for the
// implementation model and for inspecting cycle counts.
//
//	go run ./cmd/issrun testdata/sum.asm
//	go run ./cmd/issrun -trace -max 100 prog.asm     # disassembled trace
//	go run ./cmd/issrun -dump 0:16 prog.asm          # memory dump at exit
//
// TRAP 6 prints r0 (debug console); other traps fault, since no kernel is
// installed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/iss"
	"repro/internal/telemetry"
)

func main() {
	maxInsts := flag.Int("max", 10_000_000, "instruction budget")
	traceExec := flag.Bool("trace", false, "print a disassembled execution trace")
	dump := flag.String("dump", "", "memory range to dump at exit, e.g. 0:16")
	memWords := flag.Int("mem", 65536, "memory size in words")
	regs := flag.Bool("regs", true, "print final register state")
	metricsOut := flag.String("metrics-out", "", "write execution counters in Prometheus text format")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "issrun: need exactly one .asm file")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	exitOn(err)
	prog, err := iss.Assemble(string(src))
	exitOn(err)
	cpu, err := iss.NewCPU(prog, *memWords)
	exitOn(err)
	cpu.TrapHandler = func(n int64) uint64 {
		if n == 6 {
			fmt.Printf("[debug] r0 = %d (cycle %d)\n", cpu.Regs[0], cpu.Cycles)
			return 0
		}
		fmt.Fprintf(os.Stderr, "issrun: unhandled trap %d at cycle %d\n", n, cpu.Cycles)
		cpu.Halted = true
		return 0
	}

	for i := 0; i < *maxInsts && !cpu.Halted; i++ {
		if *traceExec {
			fmt.Printf("%6d  pc=%-4d %s\n", cpu.Cycles, cpu.PC, cpu.Code[cpu.PC])
		}
		cpu.Step()
	}
	if err := cpu.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "issrun:", err)
		os.Exit(1)
	}
	if !cpu.Halted {
		fmt.Fprintf(os.Stderr, "issrun: instruction budget (%d) exhausted\n", *maxInsts)
		os.Exit(1)
	}

	fmt.Printf("halted: %d instructions, %d cycles\n", cpu.Insts, cpu.Cycles)
	if *regs {
		for i, v := range cpu.Regs {
			fmt.Printf("r%d=%-12d", i, v)
			if i%4 == 3 {
				fmt.Println()
			}
		}
		fmt.Printf("acc=%d sp=%d\n", cpu.Acc, cpu.SP)
	}
	if *dump != "" {
		lo, hi, err := parseRange(*dump)
		exitOn(err)
		for a := lo; a < hi && a < int64(len(cpu.Mem)); a++ {
			fmt.Printf("mem[%4d] = %d\n", a, cpu.Mem[a])
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		exitOn(err)
		err = telemetry.WriteProm(f, []telemetry.PromMetric{
			{Name: "iss_instructions_total", Help: "Instructions executed.",
				Type: "counter", Samples: []telemetry.PromSample{{Value: float64(cpu.Insts)}}},
			{Name: "iss_cycles_total", Help: "Cycles consumed.",
				Type: "counter", Samples: []telemetry.PromSample{{Value: float64(cpu.Cycles)}}},
		})
		if err == nil {
			err = f.Close()
		}
		exitOn(err)
	}
}

func parseRange(s string) (lo, hi int64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("issrun: bad range %q, want lo:hi", s)
	}
	if lo, err = strconv.ParseInt(parts[0], 0, 64); err != nil {
		return
	}
	hi, err = strconv.ParseInt(parts[1], 0, 64)
	return
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "issrun:", err)
		os.Exit(1)
	}
}
