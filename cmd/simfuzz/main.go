// Command simfuzz soaks the RTOS model with the simcheck property-based
// harness: it generates seed-driven random task sets, runs each across
// the full policy × time-model × PE matrix, and checks the scheduling
// invariants and differential oracles. Failing seeds are shrunk to a
// minimal reproducer and written to the output directory.
//
// Usage:
//
//	simfuzz -seed 42                 check one seed (deterministic replay)
//	simfuzz -n 5000                  check seeds 1..5000
//	simfuzz -duration 30s            soak from -start until the clock runs out
//	simfuzz -scenario repro.json     re-check a written reproducer
//
// Exit status is 1 if any scenario failed, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/simcheck"
)

func main() {
	var (
		seed     = flag.Int64("seed", 0, "check exactly this seed (0: iterate)")
		start    = flag.Int64("start", 1, "first seed when iterating")
		n        = flag.Int64("n", 1000, "number of seeds to check when iterating")
		duration = flag.Duration("duration", 0, "soak for this long instead of a fixed seed count")
		scenario = flag.String("scenario", "", "re-check a JSON reproducer file instead of generating")
		out      = flag.String("out", "testdata/simcheck", "directory for shrunk reproducers")
		budget   = flag.Int("shrink-budget", 300, "max candidate evaluations while shrinking")
		verbose  = flag.Bool("v", false, "log every seed checked")
	)
	flag.Parse()

	if *scenario != "" {
		data, err := os.ReadFile(*scenario)
		if err != nil {
			fatal(err)
		}
		s, err := simcheck.ParseScenario(data)
		if err != nil {
			fatal(err)
		}
		fails := simcheck.Check(s)
		report(s, fails)
		if len(fails) > 0 {
			os.Exit(1)
		}
		fmt.Printf("scenario %s: ok\n", *scenario)
		return
	}

	seeds := seedSequence(*seed, *start, *n, *duration)
	checked, failed := 0, 0
	for s := range seeds {
		checked++
		sc := simcheck.Generate(s)
		fails := simcheck.Check(sc)
		if *verbose || len(fails) > 0 {
			fmt.Printf("seed %d: %d tasks, %d channels, %d irqs -> %d failing configs\n",
				s, len(sc.Tasks), len(sc.Channels), len(sc.IRQs), len(fails))
		}
		if len(fails) == 0 {
			continue
		}
		failed++
		report(sc, fails)
		shrunk := simcheck.Shrink(sc, func(c *simcheck.Scenario) bool {
			return len(simcheck.Check(c)) > 0
		}, *budget)
		writeReproducer(*out, s, shrunk)
	}
	fmt.Printf("simfuzz: %d seeds checked, %d failed\n", checked, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// seedSequence streams the seeds to check: a single -seed, a -duration
// soak, or a fixed -n range.
func seedSequence(seed, start, n int64, duration time.Duration) <-chan int64 {
	ch := make(chan int64)
	go func() {
		defer close(ch)
		if seed != 0 {
			ch <- seed
			return
		}
		if duration > 0 {
			deadline := time.Now().Add(duration)
			for s := start; time.Now().Before(deadline); s++ {
				ch <- s
			}
			return
		}
		for s := start; s < start+n; s++ {
			ch <- s
		}
	}()
	return ch
}

func report(s *simcheck.Scenario, fails []simcheck.Failure) {
	for _, f := range fails {
		fmt.Printf("seed %d %s\n", s.Seed, f)
	}
}

func writeReproducer(dir string, seed int64, s *simcheck.Scenario) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("seed%d.json", seed))
	if err := os.WriteFile(path, s.MarshalIndent(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("seed %d: shrunk reproducer written to %s (replay: simfuzz -scenario %s)\n",
		seed, path, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simfuzz:", err)
	os.Exit(1)
}
