// Command simfuzz soaks the RTOS model with the simcheck property-based
// harness: it generates seed-driven random task sets, runs each across
// the full policy × time-model × PE matrix, and checks the scheduling
// invariants and differential oracles — run-to-run determinism, the
// run-to-completion engine's byte-equivalence, and checkpoint/restore
// equivalence (a run checkpointed at a seed-derived instant and resumed
// must finish byte-identical to the uninterrupted run, on both engines).
// Failing seeds are shrunk to a minimal reproducer and written to the
// output directory.
//
// Usage:
//
//	simfuzz -seed 42                 check one seed (deterministic replay)
//	simfuzz -n 5000                  check seeds 1..5000
//	simfuzz -duration 30s            soak from -start until the clock runs out
//	simfuzz -scenario repro.json     re-check a written reproducer
//	simfuzz -faults -n 16            fault-injection campaign: seeds × plans
//	                                 with the runtime-diagnosis gates
//
// Exit status is 1 if any scenario failed, 0 otherwise.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/simcheck"
	"repro/internal/telemetry"
)

func main() {
	var (
		seed     = flag.Int64("seed", 0, "check exactly this seed (0: iterate)")
		start    = flag.Int64("start", 1, "first seed when iterating")
		n        = flag.Int64("n", 1000, "number of seeds to check when iterating")
		duration = flag.Duration("duration", 0, "soak for this long instead of a fixed seed count")
		scenario = flag.String("scenario", "", "re-check a JSON reproducer file instead of generating")
		out      = flag.String("out", "testdata/simcheck", "directory for shrunk reproducers")
		budget   = flag.Int("shrink-budget", 300, "max candidate evaluations while shrinking")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "seeds checked concurrently; 1 = sequential")
		timeout  = flag.Duration("timeout", 0,
			"per-seed wall-clock watchdog (0: none); a hung seed is reported as failed and abandoned")
		verbose    = flag.Bool("v", false, "log every seed checked")
		metricsOut = flag.String("metrics-out", "",
			"write soak statistics in Prometheus text format")
		faults = flag.Bool("faults", false,
			"fault-injection campaign: run seeds (-start/-n) × fault plans with the diagnosis gates")
		planPath = flag.String("plan", "",
			"with -faults: run only this JSON fault plan instead of the built-in battery")
	)
	flag.Parse()

	if *faults {
		os.Exit(faultCampaign(*start, *n, *jobs, *planPath, *verbose))
	}

	if *scenario != "" {
		data, err := os.ReadFile(*scenario)
		if err != nil {
			fatal(err)
		}
		s, err := simcheck.ParseScenario(data)
		if err != nil {
			fatal(err)
		}
		fails := simcheck.Check(s)
		report(s, fails)
		if len(fails) > 0 {
			os.Exit(1)
		}
		fmt.Printf("scenario %s: ok\n", *scenario)
		return
	}

	// The soak parallelizes ACROSS seeds; each seed's matrix (and any
	// shrinking) runs with one worker so the two levels don't multiply.
	// Results stream back in seed order, so the log, the reproducer files
	// and the exit status are identical to a sequential run. With a
	// watchdog, a hung seed fails (and its goroutines are abandoned)
	// instead of wedging the soak.
	type outcome struct {
		sc     *simcheck.Scenario
		fails  []simcheck.Failure
		shrunk *simcheck.Scenario
	}
	pool := runner.NewPool[outcome](runner.Options{Jobs: *jobs, Timeout: *timeout})
	// seedOf carries each job's seed to the consumer in submission order
	// (a timed-out job has no value to carry it). Submit's backpressure
	// keeps the producer within the worker count, far below this buffer.
	seedOf := make(chan int64, 4096)
	go func() {
		for s := range seedSequence(*seed, *start, *n, *duration) {
			s := s
			seedOf <- s
			pool.Submit(func() (outcome, error) {
				sc := simcheck.Generate(s)
				o := outcome{sc: sc, fails: simcheck.CheckJobs(sc, 1)}
				if len(o.fails) > 0 {
					o.shrunk = simcheck.Shrink(sc, func(c *simcheck.Scenario) bool {
						return len(simcheck.CheckJobs(c, 1)) > 0
					}, *budget)
				}
				return o, nil
			})
		}
		pool.Close()
		close(seedOf)
	}()
	checked, failed := 0, 0
	for r := range pool.Results() {
		s := <-seedOf
		checked++
		if r.Err != nil {
			failed++
			fmt.Printf("seed %d: %v\n", s, r.Err)
			continue
		}
		o := r.Value
		if *verbose || len(o.fails) > 0 {
			fmt.Printf("seed %d: %d tasks, %d channels, %d irqs -> %d failing configs\n",
				s, len(o.sc.Tasks), len(o.sc.Channels), len(o.sc.IRQs), len(o.fails))
		}
		if len(o.fails) == 0 {
			continue
		}
		failed++
		report(o.sc, o.fails)
		writeReproducer(*out, s, o.shrunk)
	}
	fmt.Printf("simfuzz: %d seeds checked, %d failed\n", checked, failed)
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		err = telemetry.WriteProm(f, []telemetry.PromMetric{
			{Name: "simfuzz_seeds_checked_total", Help: "Seeds checked by the soak.",
				Type: "counter", Samples: []telemetry.PromSample{{Value: float64(checked)}}},
			{Name: "simfuzz_seeds_failed_total", Help: "Seeds with failing configs.",
				Type: "counter", Samples: []telemetry.PromSample{{Value: float64(failed)}}},
		})
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal(err)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// faultCampaign is the -faults mode: a seeds × plans fault-injection
// sweep with the three release gates — (1) no ExpectClean plan may
// produce a diagnosis (detector false positive), (2) the campaign's
// diagnostic stream must be byte-identical on 1 worker and -jobs workers,
// (3) the seeded three-task semaphore deadlock must be detected with its
// exact wait-for cycle. Returns the process exit code.
func faultCampaign(start, n int64, jobs int, planPath string, verbose bool) int {
	plans := fault.DefaultPlans()
	if planPath != "" {
		data, err := os.ReadFile(planPath)
		if err != nil {
			fatal(err)
		}
		p, err := fault.ParsePlan(data)
		if err != nil {
			fatal(err)
		}
		plans = []*fault.Plan{p}
	}
	seeds := make([]int64, 0, n)
	for s := start; s < start+n; s++ {
		seeds = append(seeds, s)
	}
	failed := 0

	t0 := time.Now()
	cr := (&fault.Campaign{Seeds: seeds, Plans: plans, Jobs: jobs}).Run()
	fmt.Printf("faults: %s (%d seeds × %d plans, %d workers, wall %v)\n",
		cr.Summary(), len(seeds), len(plans), jobs, time.Since(t0).Round(time.Millisecond))
	for _, v := range cr.Violations {
		failed++
		fmt.Printf("faults: VIOLATION %s\n", v)
	}
	if verbose {
		os.Stdout.Write(cr.DiagnosticStream())
	}

	// Gate 2: worker-count independence of the diagnostic stream.
	if jobs != 1 {
		seq := (&fault.Campaign{Seeds: seeds, Plans: plans, Jobs: 1}).Run()
		if !bytes.Equal(cr.DiagnosticStream(), seq.DiagnosticStream()) {
			failed++
			fmt.Printf("faults: VIOLATION diagnostic stream differs between -jobs %d and -jobs 1\n", jobs)
		} else {
			fmt.Printf("faults: diagnostic stream byte-identical at -jobs %d and -jobs 1\n", jobs)
		}
	}

	// Gate 3: the seeded deadlock must be detected with its exact cycle.
	s, plan := fault.DeadlockScenario()
	res := fault.RunScenario(s, plan, s.Seed, fault.Options{})
	d := res.Diagnosed()
	switch {
	case d == nil:
		failed++
		fmt.Println("faults: VIOLATION seeded deadlock not detected")
	case d.Kind != core.DiagDeadlock || len(d.Cycle) != 3:
		failed++
		fmt.Printf("faults: VIOLATION seeded deadlock misdiagnosed: %v\n", d)
	default:
		fmt.Printf("faults: seeded deadlock detected at %v; cycle:\n", d.At)
		for _, e := range d.Cycle {
			fmt.Printf("faults:   %s\n", e)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// seedSequence streams the seeds to check: a single -seed, a -duration
// soak, or a fixed -n range.
func seedSequence(seed, start, n int64, duration time.Duration) <-chan int64 {
	ch := make(chan int64)
	go func() {
		defer close(ch)
		if seed != 0 {
			ch <- seed
			return
		}
		if duration > 0 {
			deadline := time.Now().Add(duration)
			for s := start; time.Now().Before(deadline); s++ {
				ch <- s
			}
			return
		}
		for s := start; s < start+n; s++ {
			ch <- s
		}
	}()
	return ch
}

func report(s *simcheck.Scenario, fails []simcheck.Failure) {
	for _, f := range fails {
		fmt.Printf("seed %d %s\n", s.Seed, f)
	}
}

func writeReproducer(dir string, seed int64, s *simcheck.Scenario) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("seed%d.json", seed))
	if err := os.WriteFile(path, s.MarshalIndent(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("seed %d: shrunk reproducer written to %s (replay: simfuzz -scenario %s)\n",
		seed, path, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simfuzz:", err)
	os.Exit(1)
}
