// Command experiments regenerates every table and figure of the paper's
// evaluation plus this repository's extension experiments (see DESIGN.md's
// per-experiment index):
//
//	table1       Table 1 (vocoder: LoC, execution time, context switches,
//	             transcoding delay across the three models)
//	figure8      Figure 8 (simulation traces of the Figure 3 example)
//	granularity  F8-PREC ablation: preemption accuracy vs delay granularity
//	overhead     OVH: simulation overhead of the RTOS model layer
//	sched        SCHED: scheduling algorithms vs utilization (miss ratios)
//	refine       REFINE: refinement effort (lines of code, mapping size)
//	multipe      EXT-MP: two-PE vocoder mapping (paper future work)
//	smp          EXT-SMP: global multiprocessor scheduling, Dhall's effect
//	synth        EXT-SYNTH: software synthesis to generated ISS firmware
//	dse          EXT-DSE: design-space exploration over the vocoder
//	faults       FAULT: fault-injection campaign with runtime diagnosis
//	all          everything above
//
// Run with: go run ./cmd/experiments -exp all [-frames 163] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/fault"
	"repro/internal/loccount"
	"repro/internal/models"
	"repro/internal/refine"
	"repro/internal/rtc"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/smp"
	"repro/internal/synth"
	"repro/internal/taskset"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/ukernel"
	"repro/internal/vocoder"
	"repro/internal/workload"
)

var (
	quick = flag.Bool("quick", false, "smaller workloads for a fast pass")
	jobs  = flag.Int("jobs", runtime.NumCPU(),
		"concurrent simulations for the batch experiments (sched, dse); 1 = sequential")
	traceOut = flag.String("trace-out", "",
		"write the table1 architecture run as Chrome trace-event JSON (Perfetto)")
	metricsOut = flag.String("metrics-out", "",
		"write scheduler metrics in Prometheus text format (table1: vocoder run; sched: merged sweep report; last writer wins under -exp all)")
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|figure8|granularity|overhead|sched|refine|multipe|smp|all")
	frames := flag.Int("frames", 163, "vocoder frames for table1/overhead")
	flag.Parse()

	run := map[string]func(int){
		"table1":      table1,
		"figure8":     func(int) { figure8() },
		"granularity": func(int) { granularity() },
		"overhead":    overhead,
		"sched":       func(int) { sched() },
		"refine":      func(int) { refineEffort() },
		"multipe":     multiPE,
		"smp":         func(int) { smpDhall() },
		"synth":       func(int) { synthesis() },
		"dse":         func(int) { designSpace() },
		"faults":      func(int) { faultCampaign() },
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "figure8", "granularity", "overhead", "sched", "refine", "multipe", "smp", "synth", "dse", "faults"} {
			run[name](*frames)
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn(*frames)
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n\n", title)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// ---------------------------------------------------------------------------
// T1: Table 1.

func table1(frames int) {
	header("T1: Table 1 — vocoder across the three models")
	par := vocoder.Default()
	par.Frames = frames
	if *quick {
		par.Frames = 20
	}

	spec, _, err := vocoder.RunSpec(par)
	check(err)
	tel := telemetry.NewCapture()
	arch, _, err := vocoder.RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse, tel.Bus)
	check(err)
	impl, _, err := vocoder.RunImpl(par, false)
	check(err)
	specLoC, archLoC, implLoC, locErr := loccount.ModelLoC(vocoder.FirmwareLines())

	fmt.Printf("frames: %d (paper's arch model logs 327 switches ≈ 2/frame over 163 frames)\n\n", par.Frames)
	fmt.Printf("%-22s %15s %15s %15s\n", "", "unscheduled", "architecture", "implementation")
	if locErr == nil {
		fmt.Printf("%-22s %15d %15d %15d\n", "Lines of Code", specLoC, archLoC, implLoC)
	}
	fmt.Printf("%-22s %15v %15v %15v\n", "Execution Time", spec.Wall.Round(10*time.Microsecond),
		arch.Wall.Round(10*time.Microsecond), impl.Wall.Round(10*time.Microsecond))
	fmt.Printf("%-22s %15d %15d %15d\n", "Context switches", spec.ContextSwitches,
		arch.ContextSwitches, impl.ContextSwitches)
	fmt.Printf("%-22s %15v %15v %15v\n", "Transcoding delay", spec.TranscodingDelay,
		arch.TranscodingDelay, impl.TranscodingDelay)
	// Table 1's architecture-model figures re-derived from the telemetry
	// event stream alone (no core.Stats): the context-switch count comes
	// from the aggregated dispatch events, the transcoding delay from the
	// frame markers.
	rep := tel.Report()
	var telSwitches uint64
	for _, pe := range rep.PEs {
		telSwitches += pe.ContextSwitches
	}
	var telDelay sim.Time
	if lats := telemetry.MarkerLatencies(tel.Collector.Events, "frame-in", "frame-out"); len(lats) > 0 {
		var sum sim.Time
		for _, d := range lats {
			sum += d
		}
		telDelay = sum / sim.Time(len(lats))
	}
	fmt.Printf("\ntelemetry cross-check (architecture model, derived from the event stream):\n")
	fmt.Printf("        context switches %d (stats: %d, match %v) · transcoding delay %v (match %v)\n",
		telSwitches, arch.ContextSwitches, telSwitches == arch.ContextSwitches,
		telDelay, telDelay == arch.TranscodingDelay)
	if *traceOut != "" {
		check(tel.WriteTraceFile(*traceOut))
		fmt.Printf("        Chrome trace written to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		check(tel.WriteMetricsFile(*metricsOut))
		fmt.Printf("        metrics written to %s\n", *metricsOut)
	}
	fmt.Printf("\npaper:  LoC 13475/15552/79096 · time 24.0s/24.4s/5h · switches 0/327/326 ·\n")
	fmt.Printf("        delay 9.7ms/12.5ms/11.7ms\n")
	fmt.Printf("shape:  unsched < arch ≈ impl delay: %v; arch tracks impl switches: %v;\n",
		spec.TranscodingDelay < arch.TranscodingDelay,
		diffWithin(arch.ContextSwitches, impl.ContextSwitches, 4))
	fmt.Printf("        impl simulation ≫ abstract models: %v (×%d)\n",
		impl.Wall > 10*arch.Wall, int64(impl.Wall/maxDur(arch.Wall, time.Microsecond)))
}

func diffWithin(a, b uint64, d int64) bool {
	x := int64(a) - int64(b)
	return x >= -d && x <= d
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// F8: Figure 8.

func figure8() {
	header("F8: Figure 8 — simulation traces of the Figure 3 example")
	par := models.DefaultFigure3()

	specRec, err := models.Figure3Unscheduled(par)
	check(err)
	archRec, osm, err := models.Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	check(err)

	gopts := trace.GanttOptions{Width: 64, Tasks: []string{"B1", "B2", "B3"}}
	fmt.Println("(a) unscheduled model — B2 and B3 truly parallel:")
	check(specRec.Gantt(os.Stdout, gopts))
	fmt.Printf("    overlap(B2,B3)=%v end=%v ctxSwitches=0\n\n",
		specRec.Overlap("B2", "B3"), specRec.End())

	fmt.Println("(b) architecture model — priority scheduling, coarse time model:")
	gopts.Tasks = []string{"PE", "B2", "B3"}
	check(archRec.Gantt(os.Stdout, gopts))
	st := osm.StatsSnapshot()
	fmt.Printf("    overlap(B2,B3)=%v end=%v ctxSwitches=%d preemptions=%d\n",
		archRec.Overlap("B2", "B3"), archRec.End(), st.ContextSwitches, st.Preemptions)

	fmt.Println("\nevent timeline (architecture model):")
	for _, m := range []string{"c1-send", "c1-recv", "ext-data", "c2-send", "c2-recv"} {
		fmt.Printf("    %-9s at %v\n", m, archRec.MarkerTimes(m))
	}
	t4p := archRec.MarkerTimes("ext-data")[0]
	fmt.Printf("\nshape: serialized (overlap 0): %v; t4=%v delayed to t4'=%v (end of d6): %v\n",
		archRec.Overlap("B2", "B3") == 0, par.IRQAt, t4p, t4p > par.IRQAt)
}

// ---------------------------------------------------------------------------
// F8-PREC: granularity ablation.

func granularity() {
	header("F8-PREC: preemption accuracy vs delay-annotation granularity")
	par := models.DefaultFigure3()
	fmt.Println("B3's response to the interrupt at t4 (coarse model switches at the end")
	fmt.Println("of B2's current time step; finer d6 annotation = earlier switch):")
	fmt.Printf("\n%-10s %-12s %-16s %-14s\n", "model", "d6 chunks", "response of B3", "error vs ideal")
	for _, chunks := range []int{1, 2, 4, 8, 16, 32} {
		p := par
		p.D6Chunks = chunks
		rec, _, err := models.Figure3Architecture(p, core.PriorityPolicy{}, core.TimeModelCoarse)
		check(err)
		resp := rec.MarkerTimes("ext-data")[0] - p.IRQAt
		fmt.Printf("%-10s %-12d %-16v %-14v\n", "coarse", chunks, resp, resp)
	}
	rec, _, err := models.Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelSegmented)
	check(err)
	resp := rec.MarkerTimes("ext-data")[0] - par.IRQAt
	fmt.Printf("%-10s %-12s %-16v %-14v\n", "segmented", "-", resp, resp)
	fmt.Println("\nshape: error shrinks monotonically with finer annotations and is zero in")
	fmt.Println("the segmented extension — the paper's Section 4.3 accuracy statement.")
}

// ---------------------------------------------------------------------------
// OVH: simulation overhead.

func overhead(frames int) {
	header("OVH: simulation overhead of the RTOS model layer")
	if *quick {
		frames = 20
	}
	par := vocoder.Default()
	par.Frames = frames
	spec, _, err := vocoder.RunSpec(par)
	check(err)
	arch, _, err := vocoder.RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	check(err)
	impl, _, err := vocoder.RunImpl(par, false)
	check(err)
	implSkip, _, err := vocoder.RunImpl(par, true)
	check(err)
	fmt.Printf("vocoder wall times (%d frames):\n", par.Frames)
	fmt.Printf("  unscheduled model            %12v\n", spec.Wall)
	fmt.Printf("  architecture model (RTOS)    %12v   overhead vs unscheduled: %+.1f%%\n",
		arch.Wall, 100*(float64(arch.Wall)/float64(maxDur(spec.Wall, time.Microsecond))-1))
	fmt.Printf("  implementation model (ISS)   %12v   (%d instructions)\n", impl.Wall, impl.Instructions)
	fmt.Printf("  implementation + idle skip   %12v   (%d instructions)\n", implSkip.Wall, implSkip.Instructions)

	// Parametric kernel-level overhead: N tasks × K delay segments, raw
	// SLDL processes vs RTOS tasks.
	fmt.Println("\nparametric overhead (N tasks × 2000 delay segments each):")
	fmt.Printf("%6s %14s %14s %10s\n", "N", "raw kernel", "RTOS model", "ratio")
	for _, n := range []int{2, 8, 32} {
		raw := timeRawKernel(n, 2000)
		rtos := timeRTOS(n, 2000)
		fmt.Printf("%6d %14v %14v %9.2fx\n", n, raw, rtos,
			float64(rtos)/float64(maxDur(raw, time.Microsecond)))
	}
	fmt.Println("\nshape: the RTOS model layer costs a small constant factor over the bare")
	fmt.Println("SLDL kernel, while the ISS costs orders of magnitude (paper: 24.0s -> 24.4s -> 5h).")
}

func timeRawKernel(n, segs int) time.Duration {
	k := sim.NewKernel()
	for i := 0; i < n; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			for s := 0; s < segs; s++ {
				p.WaitFor(100)
			}
		})
	}
	start := time.Now()
	if err := k.Run(); err != nil {
		check(err)
	}
	return time.Since(start)
}

func timeRTOS(n, segs int) time.Duration {
	k := sim.NewKernel()
	rtos := core.New(k, "PE", core.PriorityPolicy{})
	for i := 0; i < n; i++ {
		task := rtos.TaskCreate(fmt.Sprintf("t%d", i), core.Aperiodic, 0, 0, i)
		k.Spawn(task.Name(), func(p *sim.Proc) {
			rtos.TaskActivate(p, task)
			for s := 0; s < segs; s++ {
				rtos.TimeWait(p, 100)
			}
			rtos.TaskTerminate(p)
		})
	}
	rtos.Start(nil)
	start := time.Now()
	if err := k.Run(); err != nil {
		check(err)
	}
	return time.Since(start)
}

// ---------------------------------------------------------------------------
// SCHED: scheduling algorithms vs utilization.

func sched() {
	header("SCHED: scheduling algorithms vs utilization (deadline miss ratio)")
	policies := []core.Policy{
		core.FCFSPolicy{},
		core.RoundRobinPolicy{Quantum: 5 * sim.Millisecond},
		core.PriorityPolicy{},
		core.RMPolicy{},
		core.EDFPolicy{},
	}
	utils := []float64{0.50, 0.60, 0.70, 0.80, 0.90, 0.95}
	seeds := []uint64{1, 2, 3}
	horizon := 5 * sim.Second
	n := 8
	if *quick {
		horizon = 2 * sim.Second
		seeds = seeds[:1]
	}
	fmt.Printf("%d periodic tasks, horizon %v, mean of %d seeds; miss ratio in %%\n\n",
		n, horizon, len(seeds))
	fmt.Printf("%6s", "U")
	for _, p := range policies {
		fmt.Printf(" %9s", p.Name())
	}
	fmt.Println()
	// Every (utilization, policy, seed) cell is an independent kernel, so
	// the sweep runs on the worker pool; results come back in submission
	// order, which keeps the table byte-identical to a sequential run.
	type cell struct {
		u    float64
		pol  core.Policy
		seed uint64
	}
	var cells []cell
	for _, u := range utils {
		for _, pol := range policies {
			for _, seed := range seeds {
				cells = append(cells, cell{u: u, pol: pol, seed: seed})
			}
		}
	}
	// Each job also aggregates its own telemetry; the per-cell reports are
	// merged into one sweep-wide metrics report after the pool drains.
	type cellResult struct {
		miss float64
		rep  *telemetry.Report
	}
	results := runner.Map(len(cells), runner.Options{Jobs: *jobs}, func(i int) (cellResult, error) {
		c := cells[i]
		specs := workload.PeriodicSet(workload.NewRNG(c.seed), n, c.u)
		agg := telemetry.NewAggregator()
		res, err := workload.Run(specs, c.pol, core.TimeModelSegmented, horizon,
			telemetry.NewBus(agg))
		if err != nil {
			return cellResult{}, err
		}
		agg.SetEnd(horizon)
		return cellResult{miss: res.MissRatio(), rep: agg.Report()}, nil
	})
	i := 0
	for _, u := range utils {
		fmt.Printf("%6.2f", u)
		for range policies {
			total := 0.0
			for range seeds {
				check(results[i].Err)
				total += results[i].Value.miss
				i++
			}
			fmt.Printf(" %8.1f%%", 100*total/float64(len(seeds)))
		}
		fmt.Println()
	}
	if *metricsOut != "" {
		vals, err := runner.Values(results)
		check(err)
		reps := make([]*telemetry.Report, len(vals))
		for j, v := range vals {
			reps[j] = v.rep
		}
		check(telemetry.WriteMetricsFile(*metricsOut, telemetry.Merge(reps...)))
		fmt.Printf("\nmerged sweep metrics (%d runs) written to %s\n", len(reps), *metricsOut)
	}
	fmt.Println("\nshape: EDF ≈ RM ≈ 0 up to high utilization (EDF optimal, RM near-optimal")
	fmt.Println("for these sets); FCFS degrades earliest (non-preemptive blocking);")
	fmt.Println("all policies run the same unmodified application model — the paper's")
	fmt.Println("start(sched_alg) design-space exploration.")
}

// ---------------------------------------------------------------------------
// EXT-MP: multiprocessor mapping (the paper's future work).

func multiPE(frames int) {
	header("EXT-MP: two-PE mapping (paper future work: multiprocessor systems)")
	mp := vocoder.DefaultMultiPE()
	mp.Frames = frames
	if *quick {
		mp.Frames = 20
	}
	spec, _, err := vocoder.RunSpec(mp.Params)
	check(err)
	single, _, err := vocoder.RunArch(mp.Params, core.PriorityPolicy{}, core.TimeModelCoarse)
	check(err)
	multi, _, err := vocoder.RunMultiPE(mp, core.PriorityPolicy{}, core.TimeModelCoarse)
	check(err)
	fmt.Printf("%-28s %18s %18s %18s\n", "", "unscheduled", "1 PE (arch)", "2 PEs (arch)")
	fmt.Printf("%-28s %18v %18v %18v\n", "transcoding delay",
		spec.TranscodingDelay, single.TranscodingDelay, multi.TranscodingDelay)
	fmt.Printf("%-28s %18d %18d %18d\n", "context switches",
		spec.ContextSwitches, single.ContextSwitches, multi.ContextSwitches)
	fmt.Println("\nshape: a CPU per task restores the encode/decode pipeline overlap, so the")
	fmt.Println("two-PE delay returns to the unscheduled bound plus bus/ISR communication")
	fmt.Println("cost — the kind of architecture decision the abstract models let a designer")
	fmt.Println("evaluate in milliseconds instead of ISS hours.")
}

// ---------------------------------------------------------------------------
// EXT-SMP: global multiprocessor scheduling and Dhall's effect.

func smpDhall() {
	header("EXT-SMP: global multiprocessor scheduling (Dhall's effect)")
	const cycles = 10
	type spec struct {
		name         string
		period, wcet sim.Time
	}
	set := []spec{
		{"light1", 100, 10},
		{"light2", 100, 10},
		{"heavy", 105, 100},
	}
	fmt.Println("2 CPUs; tasks light1/light2 (T=100, C=10) and heavy (T=105, C=100);")
	fmt.Printf("total utilization %.3f of 2.0 — trivially feasible when partitioned.\n\n", 0.1+0.1+100.0/105)

	runGlobal := func(policy smp.Policy) (missed int, migrations uint64) {
		k := sim.NewKernel()
		os := smp.New(k, "SMP", policy, 2, true)
		var tasks []*smp.Task
		for _, s := range set {
			s := s
			task := os.TaskCreate(s.name, core.Periodic, s.period, s.wcet, 0)
			tasks = append(tasks, task)
			k.Spawn(s.name, func(p *sim.Proc) {
				os.TaskActivate(p, task)
				for c := 0; c < cycles; c++ {
					os.TimeWait(p, s.wcet)
					os.TaskEndCycle(p)
				}
				os.TaskTerminate(p)
			})
		}
		os.AssignRateMonotonic()
		check(k.Run())
		for _, t := range tasks {
			missed += t.MissedDeadlines()
		}
		return missed, os.StatsSnapshot().Migrations
	}
	missRM, migRM := runGlobal(smp.FixedPriority{})
	missEDF, migEDF := runGlobal(smp.GEDF{})

	// Partitioned mapping on two uniprocessor RTOS model instances.
	k := sim.NewKernel()
	cpu0 := core.New(k, "CPU0", core.RMPolicy{}, core.WithTimeModel(core.TimeModelSegmented))
	cpu1 := core.New(k, "CPU1", core.RMPolicy{}, core.WithTimeModel(core.TimeModelSegmented))
	missPart := 0
	var partTasks []*core.Task
	mk := func(os *core.OS, s spec) {
		task := os.TaskCreate(s.name, core.Periodic, s.period, s.wcet, 0)
		partTasks = append(partTasks, task)
		k.Spawn(s.name, func(p *sim.Proc) {
			os.TaskActivate(p, task)
			for c := 0; c < cycles; c++ {
				os.TimeWait(p, s.wcet)
				os.TaskEndCycle(p)
			}
			os.TaskTerminate(p)
		})
	}
	mk(cpu0, set[0])
	mk(cpu0, set[1])
	mk(cpu1, set[2])
	cpu0.Start(nil)
	cpu1.Start(nil)
	check(k.Run())
	for _, t := range partTasks {
		missPart += t.MissedDeadlines()
	}

	fmt.Printf("%-26s %10s %12s\n", "mapping", "misses", "migrations")
	fmt.Printf("%-26s %10d %12d\n", "global RM (2 CPUs)", missRM, migRM)
	fmt.Printf("%-26s %10d %12d\n", "global EDF (2 CPUs)", missEDF, migEDF)
	fmt.Printf("%-26s %10d %12s\n", "partitioned RM (1+1 CPU)", missPart, "0")
	fmt.Println("\nshape: both global policies miss (the light tasks monopolize all CPUs at")
	fmt.Println("each release, starving the heavy task — Dhall's effect), while the")
	fmt.Println("partitioned mapping on two instances of the paper's uniprocessor RTOS")
	fmt.Println("model meets every deadline.")
}

// ---------------------------------------------------------------------------
// EXT-SYNTH: software synthesis down to the implementation model (the
// paper's stated future work).

func synthesis() {
	header("EXT-SYNTH: software synthesis (architecture model -> generated firmware)")
	horizon := 20 * sim.Time(1e6)
	seeds := []uint64{1, 2, 3, 4}
	fmt.Println("Random periodic task sets simulated on the architecture model and as")
	fmt.Println("GENERATED assembly on the ISS + micro-kernel; per-set comparison:")
	fmt.Printf("\n%4s %6s %14s %14s %16s %16s\n",
		"set", "U", "arch misses", "impl misses", "arch switches", "impl switches")
	for _, seed := range seeds {
		specs := workload.PeriodicSet(workload.NewRNG(seed), 4, 0.6)
		set := &taskset.Set{Policy: "priority", TimeModel: "segmented", HorizonMs: 20}
		for _, s := range specs {
			set.Tasks = append(set.Tasks, taskset.Task{
				Name: s.Name, Type: "periodic",
				PeriodUs: float64(s.Period) / 1000, WcetUs: float64(s.WCET) / 1000,
				Prio: s.Prio,
			})
		}
		archRes, err := taskset.Run(set)
		check(err)
		fw, err := synth.Generate(set, ukernel.DefaultCyclePeriod)
		check(err)
		implRes, err := fw.Run(horizon, true)
		check(err)
		am, im := 0, int64(0)
		for _, t := range archRes.Tasks {
			am += t.Missed
		}
		for _, t := range implRes.Tasks {
			im += t.Missed
		}
		fmt.Printf("%4d %6.2f %14d %14d %16d %16d\n",
			seed, workload.Utilization(specs), am, im,
			archRes.Stats.ContextSwitches, implRes.Stats.ContextSwitches)
	}
	fmt.Println("\nshape: the generated implementation agrees with the abstract model on")
	fmt.Println("schedulability and tracks its scheduling activity — the backend path the")
	fmt.Println("paper's future work calls for (\"software synthesis from the architecture")
	fmt.Println("model down to target-specific application code\"), fully automated.")
}

// ---------------------------------------------------------------------------
// EXT-DSE: design-space exploration — the activity the model exists for.

func designSpace() {
	header("EXT-DSE: design-space exploration over the vocoder architecture")
	par := vocoder.Default()
	par.Frames = 40
	if *quick {
		par.Frames = 10
	}
	// Tighten the frame period to ~110% utilization (transient overload): under load the
	// mapping decisions actually matter, so the exploration discriminates.
	par.FramePeriod = 9300 * sim.Microsecond
	axes := []dse.Axis{
		{Name: "policy", Values: []string{"priority", "fcfs", "rr"}},
		{Name: "order", Values: []string{"enc-first", "dec-first"}},
		{Name: "time", Values: []string{"coarse", "segmented"}},
	}
	eval := func(c dse.Config) (float64, map[string]float64, error) {
		p := par
		if c["order"] == "dec-first" {
			p.PrioEnc, p.PrioDec = 2, 1
		}
		pol, err := core.PolicyByName(c["policy"], 2*sim.Millisecond)
		if err != nil {
			return 0, nil, err
		}
		tm := core.TimeModelCoarse
		if c["time"] == "segmented" {
			tm = core.TimeModelSegmented
		}
		res, _, err := vocoder.RunArch(p, pol, tm)
		if err != nil {
			return 0, nil, err
		}
		return float64(res.TranscodingDelay) / 1e6, map[string]float64{
			"switches": float64(res.ContextSwitches),
		}, nil
	}
	cache, err := dse.NewCache("")
	check(err)
	coldStart := time.Now()
	points := dse.Explore(axes, eval, dse.WithJobs(*jobs),
		dse.WithCache(cache, nil), dse.WithObjectives("cost", "switches"))
	cold := time.Since(coldStart)
	fmt.Printf("cost = transcoding delay (ms), %d frames, %d configurations:\n\n",
		par.Frames, len(points))
	fmt.Print(dse.Table(points, "delay-ms"))
	best, err := dse.Best(points)
	check(err)
	fmt.Printf("\nbest: %s at %.3f ms (%0.f context switches)\n",
		best.Config.Key(), best.Cost, best.Aux["switches"])

	// Pareto view: delay and scheduling overhead pull in different
	// directions, so the interesting designs are the non-dominated set.
	fmt.Println("\nPareto front (minimize delay-ms AND context switches):")
	for _, p := range dse.ParetoFront(points) {
		fmt.Printf("  %-44s %10.3f ms %8.0f switches\n", p.Config.Key(), p.Cost, p.Aux["switches"])
	}

	// Memoized repeat: the identical sweep answered entirely from the
	// content-hash cache.
	before := cache.Stats()
	warmStart := time.Now()
	dse.Explore(axes, eval, dse.WithJobs(*jobs),
		dse.WithCache(cache, nil), dse.WithObjectives("cost", "switches"))
	warm := time.Since(warmStart)
	after := cache.Stats()
	warmRate := dse.CacheStats{Hits: after.Hits - before.Hits, Misses: after.Misses - before.Misses}.HitRate()
	n := float64(len(points))
	fmt.Printf("\nmemoized repeat: cold %v (%.0f configs/s) -> warm %v (%.0f configs/s), hit rate %.0f%%\n",
		cold.Round(time.Millisecond), n/cold.Seconds(),
		warm.Round(time.Microsecond), n/warm.Seconds(), 100*warmRate)

	forkDemo()

	fmt.Println("\nshape: every configuration evaluates in milliseconds on the abstract")
	fmt.Println("model; the same sweep on the ISS implementation model would take hours —")
	fmt.Println("the paper's case for RTOS modeling at high abstraction levels. Memoizing")
	fmt.Println("and checkpoint-forking shave the repeated and shared work on top.")
}

// forkDemo shows checkpoint-forked sweeps: variants that differ only
// after time T share the [0, T) prefix through one rtc snapshot instead
// of each re-simulating it.
func forkDemo() {
	// A long shared prefix is the point: only the tail differs per
	// variant, so the fork pays [0, forkAt) once plus one restore each.
	horizon := 20 * sim.Second
	if *quick {
		horizon = 5 * sim.Second
	}
	specs := workload.PeriodicSet(workload.NewRNG(7), 64, 0.9)
	base := rtc.Workload{
		Policy:    "priority",
		TimeModel: core.TimeModelSegmented,
		Horizon:   horizon,
	}
	for _, s := range specs {
		base.Tasks = append(base.Tasks, rtc.TaskDef{
			Name: s.Name, Type: "periodic", Prio: s.Prio,
			Period: s.Period, Segments: []sim.Time{s.WCET},
		})
	}
	forkAt := horizon - horizon/20
	variants := []dse.Variant{
		{Name: "priority", Policy: "priority"},
		{Name: "rr", Policy: "rr", Quantum: 5 * sim.Millisecond},
		{Name: "edf", Policy: "edf"},
		{Name: "fcfs", Policy: "fcfs"},
	}

	fullStart := time.Now()
	for _, v := range variants {
		w := base
		w.Policy, w.Quantum = v.Policy, v.Quantum
		if r := rtc.Run(w); r.Err != nil {
			check(r.Err)
		}
	}
	full := time.Since(fullStart)

	forkStart := time.Now()
	results, err := dse.ForkSweep(base, forkAt, variants, *jobs)
	check(err)
	forked := time.Since(forkStart)

	fmt.Printf("\ncheckpoint-forked sweep: %d policy variants forked at %v of %v (rtc engine)\n",
		len(variants), forkAt, base.Horizon)
	fmt.Printf("%-10s %10s %8s\n", "variant", "switches", "missed")
	for _, r := range results {
		check(r.Err)
		missed := 0
		for _, t := range r.Result.Tasks {
			missed += t.Missed
		}
		fmt.Printf("%-10s %10d %8d\n", r.Variant.Name, r.Result.Stats.ContextSwitches, missed)
	}
	fmt.Printf("full re-simulation %v vs checkpoint-forked %v (%.1fx)\n",
		full.Round(time.Millisecond), forked.Round(time.Millisecond),
		float64(full)/float64(forked))
}

// ---------------------------------------------------------------------------
// FAULT: fault-injection campaign with runtime diagnosis.

func faultCampaign() {
	header("FAULT: fault-injection campaign with runtime diagnosis")
	nSeeds := 24
	if *quick {
		nSeeds = 8
	}
	seeds := make([]int64, nSeeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	plans := fault.DefaultPlans()
	c := &fault.Campaign{Seeds: seeds, Plans: plans, Jobs: *jobs}
	start := time.Now()
	cr := c.Run()
	wall := time.Since(start)

	fmt.Printf("%d generated scenarios × %d fault plans, %d workers, wall %v\n\n",
		nSeeds, len(plans), *jobs, wall.Round(time.Millisecond))
	type tally struct{ runs, deadlock, stall, starve, clean, injected int }
	byPlan := map[string]*tally{}
	for _, r := range cr.Results {
		t := byPlan[r.Plan]
		if t == nil {
			t = &tally{}
			byPlan[r.Plan] = t
		}
		t.runs++
		t.injected += r.Injected
		switch d := r.Diagnosed(); {
		case d == nil:
			t.clean++
		case d.Kind == core.DiagDeadlock:
			t.deadlock++
		case d.Kind == core.DiagStarvation:
			t.starve++
		default:
			t.stall++
		}
	}
	fmt.Printf("%-12s %6s %9s %10s %7s %7s %7s %6s\n",
		"plan", "runs", "injected", "deadlocks", "stalls", "starve", "clean", "ok")
	for _, p := range plans {
		t := byPlan[p.Name]
		expect := "-"
		if p.ExpectClean {
			expect = fmt.Sprintf("%v", t.clean == t.runs)
		}
		fmt.Printf("%-12s %6d %9d %10d %7d %7d %7d %6s\n",
			p.Name, t.runs, t.injected, t.deadlock, t.stall, t.starve, t.clean, expect)
	}
	fmt.Printf("\ntotal: %s\n", cr.Summary())
	for _, v := range cr.Violations {
		fmt.Printf("VIOLATION: %s\n", v)
	}

	// The must-detect case: a lost-interrupt fault closes a three-task
	// semaphore ring; the wait-for-graph detector names the exact cycle.
	s, plan := fault.DeadlockScenario()
	res := fault.RunScenario(s, plan, s.Seed, fault.Options{})
	fmt.Println("\nseeded deadlock (drop refill IRQs of a three-task semaphore ring):")
	if d := res.Diagnosed(); d != nil {
		fmt.Printf("  %s diagnosed at %v:\n", d.Kind, d.At)
		for _, e := range d.Cycle {
			fmt.Printf("    %s\n", e)
		}
	} else {
		fmt.Println("  NOT DETECTED — detector regression")
	}
	if *metricsOut != "" {
		check(telemetry.WriteMetricsFile(*metricsOut, cr.Report))
		fmt.Printf("\nmerged campaign metrics written to %s\n", *metricsOut)
	}
	fmt.Println("\nshape: the fault-free and benign plans stay diagnosis-clean (no false")
	fmt.Println("positives), hostile plans produce structured diagnoses instead of hangs,")
	fmt.Println("and the same seeds replay to a byte-identical diagnostic stream on any")
	fmt.Println("worker count (verified continuously by simfuzz -faults).")
}

// ---------------------------------------------------------------------------
// REFINE: refinement effort.

func refineEffort() {
	header("REFINE: refinement effort (paper: 104 lines, <1% of code, <1 hour)")
	specLoC, archLoC, implLoC, err := loccount.ModelLoC(vocoder.FirmwareLines())
	check(err)
	fmt.Printf("lines of code: unscheduled %d -> architecture %d -> implementation %d\n",
		specLoC, archLoC, implLoC)
	fmt.Printf("architecture delta (the RTOS model library): %d lines (paper: ~2000 lines of SpecC)\n\n",
		archLoC-specLoC)

	// The per-design refinement input: the mapping. Everything else is the
	// mechanical primitive substitution performed by internal/refine.
	mapping := refine.Mapping{
		"vocoder": {Priority: 0},
		"encoder": {Priority: 1},
		"decoder": {Priority: 2},
	}
	fmt.Printf("designer input to refine the vocoder: %d mapping entries (one line each)\n", len(mapping))
	fmt.Println("plus selecting the scheduling policy — every waitfor->time_wait,")
	fmt.Println("notify/wait->event_notify/event_wait and par->par_start/par_end")
	fmt.Println("substitution is performed mechanically by the refinement engine,")
	fmt.Println("matching the paper's automated refinement tool.")
}
