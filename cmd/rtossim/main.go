// Command rtossim simulates a task set on the abstract RTOS model.
//
// The task set comes from a JSON file (-f) or a random generator
// (-random). Output is a summary of deadline and scheduling statistics,
// optionally with an ASCII Gantt chart (-gantt), the full event list
// (-events), a CSV trace (-csv file) or a VCD waveform (-vcd file) for
// GTKWave.
//
// Example task set file (see internal/taskset for the schema):
//
//	{
//	  "policy": "priority",
//	  "timeModel": "coarse",
//	  "horizonMs": 1000,
//	  "tasks": [
//	    {"name": "ctrl",  "type": "periodic", "periodUs": 1000, "wcetUs": 250, "prio": 1},
//	    {"name": "audio", "type": "periodic", "periodUs": 4000, "wcetUs": 1500, "prio": 2},
//	    {"name": "init",  "type": "aperiodic", "prio": 0, "computeUs": [100, 100], "startUs": 0}
//	  ]
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/synth"
	"repro/internal/taskset"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/ukernel"
	"repro/internal/workload"
)

func main() {
	file := flag.String("f", "", "task set JSON file")
	random := flag.Int("random", 0, "generate N random periodic tasks instead of reading a file")
	util := flag.Float64("util", 0.8, "total utilization for -random")
	seed := flag.Uint64("seed", 1, "seed for -random")
	policyFlag := flag.String("policy", "", "override scheduling policy (priority|fcfs|rr|edf|rm)")
	quantumUs := flag.Float64("quantum", 1000, "round-robin quantum in µs")
	horizonMs := flag.Float64("horizon", 1000, "simulation horizon in ms (when the file sets none)")
	tmFlag := flag.String("timemodel", "", "override time model (coarse|segmented)")
	persFlag := flag.String("personality", "", "override RTOS personality (generic|itron|osek)")
	engineFlag := flag.String("engine", "", "execution engine (goroutine|rtc); rtc is the run-to-completion engine")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart")
	events := flag.Bool("events", false, "print the event list")
	csvOut := flag.String("csv", "", "write the trace as CSV to a file")
	vcdOut := flag.String("vcd", "", "write the trace as a VCD waveform to a file")
	doSynth := flag.Bool("synth", false, "also synthesize implementation-model firmware, run it on the ISS and compare")
	asmOut := flag.String("asm", "", "write the synthesized assembly to a file (implies work of -synth generation)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (open with Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write scheduler metrics in Prometheus text format")
	flag.Parse()

	var set *taskset.Set
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		exitOn(err)
		set, err = taskset.Parse(data)
		exitOn(err)
	case *random > 0:
		specs := workload.PeriodicSet(workload.NewRNG(*seed), *random, *util)
		set = &taskset.Set{Policy: "priority", HorizonMs: *horizonMs}
		for _, s := range specs {
			set.Tasks = append(set.Tasks, taskset.Task{
				Name: s.Name, Type: "periodic",
				PeriodUs: float64(s.Period) / 1000, WcetUs: float64(s.WCET) / 1000,
				Prio: s.Prio,
			})
		}
	default:
		fmt.Fprintln(os.Stderr, "rtossim: need -f FILE or -random N; see -help")
		os.Exit(2)
	}
	if *policyFlag != "" {
		set.Policy = *policyFlag
	}
	if *tmFlag != "" {
		set.TimeModel = *tmFlag
	}
	if *persFlag != "" {
		set.Personality = *persFlag
	}
	if *engineFlag != "" {
		set.Engine = *engineFlag
	}
	if set.HorizonMs == 0 {
		set.HorizonMs = *horizonMs
	}
	if set.QuantumUs == 0 {
		set.QuantumUs = *quantumUs
	}

	var tel *telemetry.Capture
	var bus []*telemetry.Bus
	if *traceOut != "" || *metricsOut != "" {
		tel = telemetry.NewCapture()
		bus = append(bus, tel.Bus)
	}

	res, err := taskset.Run(set, bus...)
	exitOn(err)
	if tel != nil {
		tel.SetEnd(res.End)
		if *traceOut != "" {
			exitOn(tel.WriteTraceFile(*traceOut))
		}
		if *metricsOut != "" {
			exitOn(tel.WriteMetricsFile(*metricsOut))
		}
	}

	fmt.Printf("policy %s, time model %s, personality %s, horizon %v\n\n",
		res.Policy, res.TimeModel, res.Personality, res.Horizon)
	fmt.Printf("%-10s %5s %10s %10s %8s %10s %12s\n",
		"task", "prio", "period", "wcet", "cycles", "missed", "cpuTime")
	for _, t := range res.Tasks {
		fmt.Printf("%-10s %5d %10v %10v %8d %10d %12v\n",
			t.Name, t.Prio, t.Period, t.WCET, t.Activations, t.Missed, t.CPUTime)
	}
	st := res.Stats
	fmt.Printf("\ndispatches %d, context switches %d, preemptions %d, idle %v, busy %v\n",
		st.Dispatches, st.ContextSwitches, st.Preemptions, st.IdleTime, st.BusyTime)

	if *gantt {
		fmt.Println()
		exitOn(res.Trace.Gantt(os.Stdout, trace.GanttOptions{Width: 72}))
	}
	if *events {
		fmt.Println()
		exitOn(res.Trace.EventList(os.Stdout))
	}
	if *csvOut != "" {
		writeTo(*csvOut, res.Trace.CSV)
	}
	if *vcdOut != "" {
		writeTo(*vcdOut, res.Trace.VCD)
	}

	if *doSynth || *asmOut != "" {
		fw, err := synth.Generate(set, ukernel.DefaultCyclePeriod)
		exitOn(err)
		if *asmOut != "" {
			exitOn(os.WriteFile(*asmOut, []byte(fw.Source), 0o644))
			fmt.Printf("\nsynthesized assembly written to %s\n", *asmOut)
		}
		if *doSynth {
			impl, err := fw.Run(res.Horizon, true)
			exitOn(err)
			fmt.Printf("\nsynthesized implementation model (ISS + micro-kernel, %d instructions):\n",
				impl.Instructions)
			fmt.Printf("%-10s %10s %10s\n", "task", "cycles", "missed")
			for _, tr := range impl.Tasks {
				fmt.Printf("%-10s %10d %10d\n", tr.Name, tr.Activations, tr.Missed)
			}
			fmt.Printf("context switches: %d (architecture model: %d)\n",
				impl.Stats.ContextSwitches, res.Stats.ContextSwitches)
		}
	}
}

func writeTo(path string, fn func(w io.Writer) error) {
	f, err := os.Create(path)
	exitOn(err)
	exitOn(fn(f))
	exitOn(f.Close())
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtossim:", err)
		os.Exit(1)
	}
}
