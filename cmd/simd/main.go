// Command simd is the simulation-as-a-service campaign server: a
// long-running HTTP daemon that accepts simulation jobs (task-set runs,
// SDL models, fault-injection batteries, DSE sweeps), fans their cells
// across workers, and journals every state transition to an append-only
// checksummed event log in the campaign directory. Kill it at any point
// and restart it on the same directory: completed cells are served from
// the content-addressed result cache (never re-executed), lost leases
// are requeued, and results and signed receipts come out byte-identical
// to an uninterrupted run.
//
//	simd -dir campaign.d -addr :8080 -jobs 8
//
//	curl -s -X POST localhost:8080/jobs -d '{"kind":"taskset","payload":{...}}'
//	curl -s localhost:8080/jobs/job-000001
//	curl -s localhost:8080/jobs/job-000001/result
//	curl -s localhost:8080/jobs/job-000001/receipt
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/campaign"
)

func main() {
	dir := flag.String("dir", "campaign.d", "campaign directory (event log, result cache, receipt key)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	jobs := flag.Int("jobs", 0, "worker fan-out per campaign job (0 = NumCPU)")
	flag.Parse()

	srv, err := campaign.Open(campaign.Options{Dir: *dir, Jobs: *jobs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		os.Exit(1)
	}
	resumed := len(srv.JobIDs())
	if resumed > 0 {
		fmt.Printf("simd: resumed %d job(s) from %s\n", resumed, *dir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("simd: serving %s on http://%s\n", *dir, ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("simd: %v; campaign state is journaled, restart to resume\n", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
	}
	httpSrv.Close()
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		os.Exit(1)
	}
}
