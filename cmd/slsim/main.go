// Command slsim elaborates and simulates a system model written in the
// SDL frontend (internal/sdl) — the file-based counterpart of the SpecC
// sources the paper's flow consumes. The same file runs as the
// unscheduled specification model or as the RTOS-based architecture
// model (automatically the mapped multi-PE architecture when the file
// declares PEs), and -model both prints the milestone drift the
// refinement introduced.
//
//	go run ./cmd/slsim -model both testdata/figure3.sdl
//	go run ./cmd/slsim -model both testdata/pipeline2pe.sdl   # multi-PE
//	go run ./cmd/slsim -model arch -policy edf -gantt design.sdl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/sdl"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	model := flag.String("model", "both", "which model to run: spec|arch|both")
	policyFlag := flag.String("policy", "priority", "architecture scheduling policy (priority|fcfs|rr|edf|rm)")
	quantumUs := flag.Float64("quantum", 1000, "round-robin quantum in µs")
	tmFlag := flag.String("timemodel", "coarse", "time model (coarse|segmented)")
	persFlag := flag.String("personality", "", "override the model's RTOS personality (generic|itron|osek)")
	engineFlag := flag.String("engine", "", "execution engine for the architecture model (goroutine|rtc); rtc runs single-PE models on the run-to-completion engine")
	gantt := flag.Bool("gantt", true, "print ASCII Gantt charts")
	events := flag.Bool("events", false, "print event lists")
	vcdOut := flag.String("vcd", "", "write the architecture trace as VCD")
	traceOut := flag.String("trace-out", "", "write the architecture run as Chrome trace-event JSON (Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write architecture scheduler metrics in Prometheus text format")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "slsim: need exactly one .sdl file")
		os.Exit(2)
	}
	switch *engineFlag {
	case "", "goroutine", "rtc":
	default:
		fmt.Fprintf(os.Stderr, "slsim: unknown engine %q (have \"goroutine\", \"rtc\")\n", *engineFlag)
		os.Exit(2)
	}
	if *engineFlag == "rtc" && (*traceOut != "" || *metricsOut != "") {
		fmt.Fprintln(os.Stderr, "slsim: telemetry outputs need the goroutine engine")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	exitOn(err)
	m, err := sdl.Parse(string(src))
	exitOn(err)
	if *persFlag != "" {
		m.Personality = *persFlag
		exitOn(m.Validate())
	}

	show := func(rec *trace.Recorder, title string) {
		fmt.Printf("=== %s ===\n", title)
		if *gantt {
			exitOn(rec.Gantt(os.Stdout, trace.GanttOptions{Width: 64}))
		}
		exitOn(rec.Report(os.Stdout))
		if *events {
			exitOn(rec.EventList(os.Stdout))
		}
		fmt.Println()
	}

	var specRec *trace.Recorder
	if *model == "spec" || *model == "both" {
		rec, err := m.RunUnscheduled()
		exitOn(err)
		specRec = rec
		show(rec, "unscheduled specification model")
	}
	if *model == "arch" || *model == "both" {
		policy, err := core.PolicyByName(*policyFlag, sim.Time(*quantumUs*1000))
		exitOn(err)
		tm := core.TimeModelCoarse
		if *tmFlag == "segmented" {
			tm = core.TimeModelSegmented
		}
		var tel *telemetry.Capture
		var bus []*telemetry.Bus
		if *traceOut != "" || *metricsOut != "" {
			tel = telemetry.NewCapture()
			bus = append(bus, tel.Bus)
		}
		pers := m.Personality
		if pers == "" {
			pers = "generic"
		}
		var rec *trace.Recorder
		if m.MultiPE() && *engineFlag == "rtc" {
			fmt.Fprintln(os.Stderr, "slsim: engine \"rtc\" runs single-PE models; mapped multi-PE architectures need the goroutine kernel")
			os.Exit(2)
		}
		if m.MultiPE() {
			// Models with pe declarations run the mapped architecture:
			// one RTOS instance per software PE, links over buses.
			mappedRec, oss, err := m.RunMapped(policy, tm, bus...)
			exitOn(err)
			rec = mappedRec
			show(rec, fmt.Sprintf("mapped architecture model (%s, %s time, %s personality)", policy.Name(), tm, pers))
			for name, osm := range oss {
				st := osm.StatsSnapshot()
				fmt.Printf("RTOS %s: %d dispatches, %d context switches, %d preemptions, idle %v\n",
					name, st.Dispatches, st.ContextSwitches, st.Preemptions, st.IdleTime)
			}
		} else if *engineFlag == "rtc" {
			res, err := m.RunArchitectureRTC(*policyFlag, sim.Time(*quantumUs*1000), tm, sim.Forever)
			exitOn(err)
			rec = trace.New("sdl-arch-rtc")
			for _, r := range res.Records {
				rec.Append(r)
			}
			show(rec, fmt.Sprintf("architecture model (rtc engine, %s, %s time, %s personality)", policy.Name(), tm, pers))
			st := res.Stats
			fmt.Printf("RTOS: %d dispatches, %d context switches, %d preemptions, idle %v\n",
				st.Dispatches, st.ContextSwitches, st.Preemptions, st.IdleTime)
		} else {
			archRec, osm, err := m.RunArchitecture(policy, tm, bus...)
			exitOn(err)
			rec = archRec
			show(rec, fmt.Sprintf("architecture model (%s, %s time, %s personality)", policy.Name(), tm, pers))
			st := osm.StatsSnapshot()
			fmt.Printf("RTOS: %d dispatches, %d context switches, %d preemptions, idle %v\n",
				st.Dispatches, st.ContextSwitches, st.Preemptions, st.IdleTime)
		}
		if specRec != nil {
			fmt.Println("\nmilestone drift introduced by the refinement (spec -> arch):")
			exitOn(trace.WriteMarkerDiff(os.Stdout, specRec, rec))
		}
		if *vcdOut != "" {
			f, err := os.Create(*vcdOut)
			exitOn(err)
			exitOn(rec.VCD(io.Writer(f)))
			exitOn(f.Close())
		}
		if tel != nil {
			if *traceOut != "" {
				exitOn(tel.WriteTraceFile(*traceOut))
			}
			if *metricsOut != "" {
				exitOn(tel.WriteMetricsFile(*metricsOut))
			}
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "slsim:", err)
		os.Exit(1)
	}
}
