// Command simbench runs the performance harnesses (internal/perf) and
// reports ns/op, allocs/op and throughput metrics for each scenario. The
// results can be written as a machine-readable document and gated
// against a committed baseline.
//
// Usage:
//
//	simbench                          run and print the kernel scenario table
//	simbench -suite dse               run the design-space-exploration suite
//	                                  (configs/s cold vs memoized, checkpoint
//	                                  snapshot/restore cost; BENCH_dse.json)
//	simbench -out BENCH_kernel.json   also write the JSON document
//	simbench -check                   compare against -baseline and exit 1
//	                                  on regression (allocs/op above the
//	                                  baseline, or ns/op beyond -tolerance)
//
// The alloc gate is exact: allocation counts are deterministic, so any
// increase over baseline fails regardless of tolerance. The time gate is
// relative: -tolerance 0.5 allows ns/op up to 1.5x baseline, absorbing
// host noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/perf"
)

func main() {
	var (
		suite     = flag.String("suite", "kernel", "scenario suite: kernel or dse")
		out       = flag.String("out", "", "write the benchmark document to this file")
		baseline  = flag.String("baseline", "", "baseline document for -check (default BENCH_kernel.json or BENCH_dse.json per -suite)")
		check     = flag.Bool("check", false, "compare against -baseline and fail on regression")
		tolerance = flag.Float64("tolerance", 0.5, "relative ns/op tolerance for -check")
		engine    = flag.String("engine", "", "kernel suite only; restrict to one execution engine: goroutine (skips rtc/* scenarios) or rtc (only rtc/*)")
	)
	flag.Parse()

	var keep func(string) bool
	switch *engine {
	case "":
	case "goroutine":
		keep = func(name string) bool { return !strings.HasPrefix(name, "rtc/") }
	case "rtc":
		keep = func(name string) bool { return strings.HasPrefix(name, "rtc/") }
	default:
		fmt.Fprintf(os.Stderr, "simbench: unknown engine %q (have \"goroutine\", \"rtc\")\n", *engine)
		os.Exit(2)
	}

	var (
		rep    perf.Report
		schema string
	)
	switch *suite {
	case "kernel":
		if *baseline == "" {
			*baseline = "BENCH_kernel.json"
		}
		schema = perf.Schema
		rep = perf.CollectOnly(keep)
	case "dse":
		if *engine != "" {
			fmt.Fprintln(os.Stderr, "simbench: -engine applies to the kernel suite only")
			os.Exit(2)
		}
		if *baseline == "" {
			*baseline = "BENCH_dse.json"
		}
		schema = perf.DSESchema
		rep = perf.CollectDSE()
	default:
		fmt.Fprintf(os.Stderr, "simbench: unknown suite %q (have \"kernel\", \"dse\")\n", *suite)
		os.Exit(2)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "SCENARIO\tNS/OP\tB/OP\tALLOCS/OP\tSWITCHES/S\tEXTRA")
	for _, s := range rep.Scenarios {
		sw := "-"
		if s.SwitchesPerSec > 0 {
			sw = fmt.Sprintf("%.0f", s.SwitchesPerSec)
		}
		extra := "-"
		if len(s.Extra) > 0 {
			names := make([]string, 0, len(s.Extra))
			for name := range s.Extra {
				names = append(names, name)
			}
			sort.Strings(names)
			var parts []string
			for _, name := range names {
				parts = append(parts, fmt.Sprintf("%s=%.2f", name, s.Extra[name]))
			}
			extra = strings.Join(parts, " ")
		}
		fmt.Fprintf(w, "%s\t%.1f\t%d\t%d\t%s\t%s\n", s.Name, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp, sw, extra)
	}
	w.Flush()

	if *out != "" {
		if err := rep.Write(*out); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *check {
		base, err := perf.LoadAs(*baseline, schema)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		if keep != nil {
			// The baseline covers both engines; a restricted run must not
			// flag the other engine's scenarios as missing.
			var kept []perf.Result
			for _, s := range base.Scenarios {
				if keep(s.Name) {
					kept = append(kept, s)
				}
			}
			base.Scenarios = kept
		}
		violations := perf.Compare(rep, base, *tolerance)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "REGRESSION:", v)
			}
			os.Exit(1)
		}
		fmt.Printf("check passed: %d scenarios within tolerance %.0f%% of %s\n",
			len(base.Scenarios), *tolerance*100, *baseline)
	}
}
