// Command simbench runs the kernel performance harness (internal/perf)
// and reports ns/op, allocs/op and modeled context-switch throughput for
// each hot-path scenario. The results can be written as a machine-readable
// document and gated against a committed baseline.
//
// Usage:
//
//	simbench                          run and print the scenario table
//	simbench -out BENCH_kernel.json   also write the JSON document
//	simbench -check                   compare against -baseline and exit 1
//	                                  on regression (allocs/op above the
//	                                  baseline, or ns/op beyond -tolerance)
//
// The alloc gate is exact: allocation counts are deterministic, so any
// increase over baseline fails regardless of tolerance. The time gate is
// relative: -tolerance 0.5 allows ns/op up to 1.5x baseline, absorbing
// host noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/perf"
)

func main() {
	var (
		out       = flag.String("out", "", "write the benchmark document to this file")
		baseline  = flag.String("baseline", "BENCH_kernel.json", "baseline document for -check")
		check     = flag.Bool("check", false, "compare against -baseline and fail on regression")
		tolerance = flag.Float64("tolerance", 0.5, "relative ns/op tolerance for -check")
		engine    = flag.String("engine", "", "restrict to one execution engine: goroutine (skips rtc/* scenarios) or rtc (only rtc/*)")
	)
	flag.Parse()

	var keep func(string) bool
	switch *engine {
	case "":
	case "goroutine":
		keep = func(name string) bool { return !strings.HasPrefix(name, "rtc/") }
	case "rtc":
		keep = func(name string) bool { return strings.HasPrefix(name, "rtc/") }
	default:
		fmt.Fprintf(os.Stderr, "simbench: unknown engine %q (have \"goroutine\", \"rtc\")\n", *engine)
		os.Exit(2)
	}

	rep := perf.CollectOnly(keep)

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "SCENARIO\tNS/OP\tB/OP\tALLOCS/OP\tSWITCHES/S")
	for _, s := range rep.Scenarios {
		sw := "-"
		if s.SwitchesPerSec > 0 {
			sw = fmt.Sprintf("%.0f", s.SwitchesPerSec)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%d\t%d\t%s\n", s.Name, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp, sw)
	}
	w.Flush()

	if *out != "" {
		if err := rep.Write(*out); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *check {
		base, err := perf.Load(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		if keep != nil {
			// The baseline covers both engines; a restricted run must not
			// flag the other engine's scenarios as missing.
			var kept []perf.Result
			for _, s := range base.Scenarios {
				if keep(s.Name) {
					kept = append(kept, s)
				}
			}
			base.Scenarios = kept
		}
		violations := perf.Compare(rep, base, *tolerance)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "REGRESSION:", v)
			}
			os.Exit(1)
		}
		fmt.Printf("check passed: %d scenarios within tolerance %.0f%% of %s\n",
			len(base.Scenarios), *tolerance*100, *baseline)
	}
}
