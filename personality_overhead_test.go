// Personality dispatch overhead: the personality layer routes every task
// lifecycle and channel operation through one interface call before it
// reaches the core services. The guard pins that indirection to ≤5% on
// the hottest BENCH_kernel.json scenario (kernel/context-switch), per
// personality, against the same scenario programmed directly against the
// core service surface.
//
//	go test -bench 'BenchmarkPersonality' -benchmem
//	PERSONALITY_OVERHEAD_GUARD=1 go test -run TestPersonalityOverheadGuard
package repro

import (
	"os"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/personality"
	"repro/internal/sim"
)

// personalitySwitchOps sizes the guard workload: enough dispatch round
// trips that per-op costs dominate kernel setup.
const personalitySwitchOps = 100_000

// contextSwitchDirect is the BENCH_kernel.json kernel/context-switch
// scenario shape — two tasks handing the CPU back and forth through a
// semaphore pair — programmed directly against the core services.
func contextSwitchDirect(tb testing.TB, n int) {
	tb.Helper()
	k := sim.NewKernel()
	defer k.Shutdown()
	rtos := core.New(k, "PE", core.PriorityPolicy{})
	f := channel.RTOSFactory{OS: rtos}
	ping := channel.NewSemaphore(f, "ping", 0)
	pong := channel.NewSemaphore(f, "pong", 0)
	a := rtos.TaskCreate("a", core.Aperiodic, 0, 0, 1)
	c := rtos.TaskCreate("b", core.Aperiodic, 0, 0, 2)
	k.Spawn("a", func(p *sim.Proc) {
		rtos.TaskActivate(p, a)
		for i := 0; i < n; i++ {
			rtos.TimeWait(p, 1)
			ping.Release(p)
			pong.Acquire(p)
		}
		rtos.TaskTerminate(p)
	})
	k.Spawn("b", func(p *sim.Proc) {
		rtos.TaskActivate(p, c)
		for i := 0; i < n; i++ {
			ping.Acquire(p)
			pong.Release(p)
		}
		rtos.TaskTerminate(p)
	})
	rtos.Start(nil)
	if err := k.Run(); err != nil {
		tb.Fatal(err)
	}
}

// contextSwitchPersonality is the same scenario programmed against the
// personality interface, with the semaphores in the selected kernel's
// native kind.
func contextSwitchPersonality(tb testing.TB, kind string, n int) {
	tb.Helper()
	k := sim.NewKernel()
	defer k.Shutdown()
	rtos := core.New(k, "PE", core.PriorityPolicy{})
	rt, err := personality.New(kind, rtos)
	if err != nil {
		tb.Fatal(err)
	}
	ping := rt.NewSemaphore("ping", 0)
	pong := rt.NewSemaphore("pong", 0)
	a := rt.TaskCreate("a", core.Aperiodic, 0, 0, 1)
	c := rt.TaskCreate("b", core.Aperiodic, 0, 0, 2)
	k.Spawn("a", func(p *sim.Proc) {
		rt.Activate(p, a)
		for i := 0; i < n; i++ {
			rt.Compute(p, 1)
			ping.Release(p)
			pong.Acquire(p)
		}
		rt.Terminate(p)
	})
	k.Spawn("b", func(p *sim.Proc) {
		rt.Activate(p, c)
		for i := 0; i < n; i++ {
			ping.Acquire(p)
			pong.Release(p)
		}
		rt.Terminate(p)
	})
	rtos.Start(nil)
	if err := k.Run(); err != nil {
		tb.Fatal(err)
	}
}

func BenchmarkPersonalityContextSwitchDirect(b *testing.B) {
	b.ReportAllocs()
	contextSwitchDirect(b, b.N)
}

func BenchmarkPersonalityContextSwitch(b *testing.B) {
	for _, kind := range personality.Kinds() {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			b.ReportAllocs()
			contextSwitchPersonality(b, kind, b.N)
		})
	}
}

// TestPersonalityOverheadGuard pins the cost of the personality layer on
// the context-switch scenario. The generic personality is a pure
// passthrough, so its run isolates the dispatch indirection itself and
// must stay within 5% of the direct-call baseline. The native kernels do
// real extra work per operation (ITRON's direct-handoff grant tracking,
// OSEK-COM queue bookkeeping), so they get a looser semantic bound that
// still catches accidental O(n) regressions. The guard is opt-in
// (scripts/check.sh sets PERSONALITY_OVERHEAD_GUARD=1) to keep plain
// `go test` immune to loaded hosts.
func TestPersonalityOverheadGuard(t *testing.T) {
	if os.Getenv("PERSONALITY_OVERHEAD_GUARD") != "1" {
		t.Skip("set PERSONALITY_OVERHEAD_GUARD=1 to run the overhead guard")
	}
	const trials = 7
	const maxDispatchRatio = 1.05 // generic: the interface layer alone
	const maxNativeRatio = 1.20   // itron/osek: dispatch + native semantics

	// Warm-up: lazy initialization off the clock for every path. The
	// measured trials are interleaved round-robin so clock drift on the
	// host (frequency scaling, neighbors) hits every path equally instead
	// of biasing whichever block ran first.
	kinds := personality.Kinds()
	contextSwitchDirect(t, personalitySwitchOps)
	for _, kind := range kinds {
		contextSwitchPersonality(t, kind, personalitySwitchOps)
	}
	base := minWall(t, 1, func() { contextSwitchDirect(t, personalitySwitchOps) })
	best := map[string]float64{}
	for trial := 0; trial < trials; trial++ {
		if d := minWall(t, 1, func() { contextSwitchDirect(t, personalitySwitchOps) }); float64(d) < float64(base) {
			base = d
		}
		for _, kind := range kinds {
			kind := kind
			d := minWall(t, 1, func() { contextSwitchPersonality(t, kind, personalitySwitchOps) })
			if cur, ok := best[kind]; !ok || float64(d) < cur {
				best[kind] = float64(d)
			}
		}
	}
	for _, kind := range kinds {
		maxRatio := maxNativeRatio
		if kind == personality.Generic {
			maxRatio = maxDispatchRatio
		}
		ratio := best[kind] / float64(base)
		t.Logf("%s: ratio %.3fx vs direct %v (limit %.2fx)", kind, ratio, base, maxRatio)
		if ratio > maxRatio {
			t.Errorf("%s personality overhead %.3fx exceeds %.2fx of the direct baseline",
				kind, ratio, maxRatio)
		}
	}
}
