package perf

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DSESchema identifies the BENCH_dse.json document format: the
// design-space-exploration throughput suite (configurations/second cold
// and memoized, checkpoint snapshot/restore cost).
const DSESchema = "bench-dse/1"

// Extra-metric names reported by the DSE scenarios.
const (
	configsMetric = "configs/s"
	hitMetric     = "hitrate"
)

// DSEScenarios returns the design-space-exploration benchmark suite.
// Names are stable: they key the BENCH_dse.json baseline comparison.
func DSEScenarios() []Scenario {
	return []Scenario{
		{Name: "dse/explore-cold", Bench: benchExploreCold},
		{Name: "dse/explore-warm", Bench: benchExploreWarm},
		{Name: "dse/snapshot", Bench: benchSnapshot},
		{Name: "dse/restore", Bench: benchRestore},
	}
}

// CollectDSE measures the DSE suite and returns its report.
func CollectDSE() Report { return collect(DSESchema, DSEScenarios(), nil) }

// dseWorkload is the fixed sweep subject: a synthetic periodic set on
// the rtc engine, policy and quantum taken from the configuration.
func dseWorkload(policy string, quantum sim.Time) rtc.Workload {
	specs := workload.PeriodicSet(workload.NewRNG(7), 8, 0.85)
	w := rtc.Workload{
		Policy:    policy,
		Quantum:   quantum,
		TimeModel: core.TimeModelSegmented,
		Horizon:   50 * sim.Millisecond,
	}
	for _, s := range specs {
		w.Tasks = append(w.Tasks, rtc.TaskDef{
			Name: s.Name, Type: "periodic", Prio: s.Prio,
			Period: s.Period, Segments: []sim.Time{s.WCET},
		})
	}
	return w
}

// dseAxes is the benchmark design space: 5 policies x 2 quanta.
func dseAxes() []dse.Axis {
	return []dse.Axis{
		{Name: "policy", Values: []string{"fcfs", "rr", "priority", "rm", "edf"}},
		{Name: "quantum", Values: []string{"1ms", "5ms"}},
	}
}

// dseEval simulates one configuration and scores it: missed deadlines
// dominate, context switches break ties.
func dseEval(c dse.Config) (float64, map[string]float64, error) {
	q := sim.Millisecond
	if c["quantum"] == "5ms" {
		q = 5 * sim.Millisecond
	}
	r := rtc.Run(dseWorkload(c["policy"], q))
	if r.Err != nil {
		return 0, nil, r.Err
	}
	missed := 0
	for _, t := range r.Tasks {
		missed += t.Missed
	}
	return float64(missed)*1e6 + float64(r.Stats.ContextSwitches), map[string]float64{
		"switches": float64(r.Stats.ContextSwitches),
	}, nil
}

// benchExploreCold sweeps the full grid with an empty cache every
// iteration: the price of an unmemoized exploration, in
// configurations/second.
func benchExploreCold(b *testing.B) {
	b.ReportAllocs()
	grid := len(dse.Grid(dseAxes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache, err := dse.NewCache("")
		if err != nil {
			b.Fatal(err)
		}
		points := dse.Explore(dseAxes(), dseEval, dse.WithJobs(1), dse.WithCache(cache, nil))
		if _, err := dse.Best(points); err != nil {
			b.Fatal(err)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*grid)/sec, configsMetric)
	}
}

// benchExploreWarm repeats the identical sweep against a pre-warmed
// cache: every configuration is answered from memory, so this measures
// the memoization overhead ceiling on sweep throughput.
func benchExploreWarm(b *testing.B) {
	b.ReportAllocs()
	cache, err := dse.NewCache("")
	if err != nil {
		b.Fatal(err)
	}
	dse.Explore(dseAxes(), dseEval, dse.WithJobs(1), dse.WithCache(cache, nil))
	warmStart := cache.Stats()
	grid := len(dse.Grid(dseAxes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := dse.Explore(dseAxes(), dseEval, dse.WithJobs(1), dse.WithCache(cache, nil))
		if _, err := dse.Best(points); err != nil {
			b.Fatal(err)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*grid)/sec, configsMetric)
	}
	s := cache.Stats()
	hits, misses := s.Hits-warmStart.Hits, s.Misses-warmStart.Misses
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), hitMetric)
	}
}

// benchSnapshot measures serializing a mid-run rtc session into
// checkpoint bytes. The alloc gate on this scenario is the regression
// tripwire for the snapshot encoder.
func benchSnapshot(b *testing.B) {
	b.ReportAllocs()
	s, err := rtc.NewSession(dseWorkload("priority", 0))
	if err != nil {
		b.Fatal(err)
	}
	if err := s.RunUntil(25 * sim.Millisecond); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRestore measures rehydrating a session from checkpoint bytes
// (structure rebuild plus state decode) — the fixed cost each
// checkpoint-forked variant pays before it starts simulating.
func benchRestore(b *testing.B) {
	b.ReportAllocs()
	w := dseWorkload("priority", 0)
	s, err := rtc.NewSession(w)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.RunUntil(25 * sim.Millisecond); err != nil {
		b.Fatal(err)
	}
	cp, err := s.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rtc.Restore(w, cp); err != nil {
			b.Fatal(err)
		}
	}
}
