package perf

import (
	"fmt"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scenario is one named benchmark of the kernel hot path.
type Scenario struct {
	Name  string
	Bench func(b *testing.B)
}

// Scenarios returns the fixed scenario set, mirroring the hot-path
// benchmarks of bench_test.go plus a large synthetic taskset sweep and a
// timer-churn case. Names are stable: they key the baseline comparison.
func Scenarios() []Scenario {
	scns := []Scenario{
		{Name: "kernel/context-switch", Bench: benchContextSwitch},
		{Name: "sim/waitfor", Bench: benchWaitFor},
		{Name: "timer/schedule-cancel", Bench: benchTimerChurn},
	}
	policies := []core.Policy{
		core.FCFSPolicy{},
		core.RoundRobinPolicy{Quantum: 5 * sim.Millisecond},
		core.PriorityPolicy{},
		core.RMPolicy{},
		core.EDFPolicy{},
	}
	for _, pol := range policies {
		pol := pol
		scns = append(scns, Scenario{
			Name:  "sched/" + pol.Name(),
			Bench: func(b *testing.B) { benchScheduler(b, pol, 8, 0.85, 2*sim.Second) },
		})
	}
	for _, n := range []int{32, 128} {
		n := n
		scns = append(scns, Scenario{
			Name:  fmt.Sprintf("sweep/tasks-%d", n),
			Bench: func(b *testing.B) { benchScheduler(b, core.EDFPolicy{}, n, 0.9, 250*sim.Millisecond) },
		})
	}
	// The same hot paths on the run-to-completion engine (internal/rtc):
	// trace-equivalent to the goroutine kernel, so these measure pure
	// execution-engine overhead against their kernel/* and sched/*
	// counterparts.
	scns = append(scns,
		Scenario{Name: "rtc/context-switch", Bench: benchRTCContextSwitch},
		Scenario{Name: "rtc/timer/churn", Bench: benchRTCTimerChurn},
	)
	for _, pol := range []string{"fcfs", "rr", "priority", "rm", "edf"} {
		pol := pol
		scns = append(scns, Scenario{
			Name:  "rtc/sched/" + pol,
			Bench: func(b *testing.B) { benchRTCScheduler(b, pol, 8, 0.85, 2*sim.Second) },
		})
	}
	return scns
}

// benchContextSwitch is the RTOS dispatch round trip: two tasks handing
// the CPU back and forth through a semaphore pair (the shape of
// BenchmarkKernelContextSwitch). Reports modeled context switches per
// wall-clock second.
func benchContextSwitch(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	defer k.Shutdown()
	rtos := core.New(k, "PE", core.PriorityPolicy{})
	f := channel.RTOSFactory{OS: rtos}
	ping := channel.NewSemaphore(f, "ping", 0)
	pong := channel.NewSemaphore(f, "pong", 0)
	a := rtos.TaskCreate("a", core.Aperiodic, 0, 0, 1)
	c := rtos.TaskCreate("b", core.Aperiodic, 0, 0, 2)
	n := b.N
	k.Spawn("a", func(p *sim.Proc) {
		rtos.TaskActivate(p, a)
		for i := 0; i < n; i++ {
			rtos.TimeWait(p, 1)
			ping.Release(p)
			pong.Acquire(p)
		}
		rtos.TaskTerminate(p)
	})
	k.Spawn("b", func(p *sim.Proc) {
		rtos.TaskActivate(p, c)
		for i := 0; i < n; i++ {
			ping.Acquire(p)
			pong.Release(p)
		}
		rtos.TaskTerminate(p)
	})
	rtos.Start(nil)
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(rtos.StatsSnapshot().ContextSwitches)/sec, switchesMetric)
	}
}

// benchWaitFor is the bare kernel's waitfor throughput (the shape of
// BenchmarkSimPrimitives).
func benchWaitFor(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	defer k.Shutdown()
	n := b.N
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.WaitFor(10)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchTimerChurn schedules and cancels one timer per op: a waiter blocks
// in WaitTimeout and a notifier wakes it before the timeout, cancelling
// the heap entry. This is the cancel-heavy pattern of fault campaigns and
// exercises the heap compaction path.
func benchTimerChurn(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	defer k.Shutdown()
	ev := k.NewEvent("ev")
	n := b.N
	k.Spawn("waiter", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if p.WaitTimeout(ev, sim.Second) {
				continue
			}
			b.Error("timer fired; expected notification")
			return
		}
	})
	k.Spawn("notifier", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Notify(ev)
			p.YieldDelta()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchRTCContextSwitch is benchContextSwitch on the run-to-completion
// engine: the identical ping/pong semaphore pair, dispatched without
// goroutines or channels. Reports modeled context switches per second.
func benchRTCContextSwitch(b *testing.B) {
	b.ReportAllocs()
	n := b.N
	w := rtc.Workload{
		Policy: "priority",
		Channels: []rtc.ChannelDef{
			{Name: "ping", Kind: "semaphore", Arg: 0},
			{Name: "pong", Kind: "semaphore", Arg: 0},
		},
		Tasks: []rtc.TaskDef{
			{Name: "a", Type: "aperiodic", Prio: 1, Repeat: n, Ops: []rtc.Op{
				{Kind: "delay", Dur: 1},
				{Kind: "release", Ch: "ping"},
				{Kind: "acquire", Ch: "pong"},
			}},
			{Name: "b", Type: "aperiodic", Prio: 2, Repeat: n, Ops: []rtc.Op{
				{Kind: "acquire", Ch: "ping"},
				{Kind: "release", Ch: "pong"},
			}},
		},
		Horizon: sim.Time(n)*8 + sim.Second,
	}
	b.ResetTimer()
	r := rtc.Run(w)
	if r.Err != nil {
		b.Fatal(r.Err)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(r.Stats.ContextSwitches)/sec, switchesMetric)
	}
}

// benchRTCTimerChurn is a preemption storm on the hierarchical timing
// wheel: a fast high-priority ticker preempts a long low-priority delay
// under the segmented model, so every tick cancels the running segment's
// wheel entry and re-arms it with the remaining time.
func benchRTCTimerChurn(b *testing.B) {
	b.ReportAllocs()
	n := b.N
	w := rtc.Workload{
		Policy:    "priority",
		TimeModel: core.TimeModelSegmented,
		Tasks: []rtc.TaskDef{
			{Name: "tick", Type: "periodic", Prio: 1, Period: 10 * sim.Microsecond,
				Cycles: n, Segments: []sim.Time{sim.Microsecond}},
			{Name: "crunch", Type: "aperiodic", Prio: 2,
				Ops: []rtc.Op{{Kind: "delay", Dur: 3600 * sim.Second}}},
		},
		Horizon: sim.Time(n)*10*sim.Microsecond + sim.Millisecond,
	}
	b.ResetTimer()
	r := rtc.Run(w)
	if r.Err != nil {
		b.Fatal(r.Err)
	}
}

// benchRTCScheduler is benchScheduler on the run-to-completion engine:
// the same synthetic periodic set (same RNG seed), segmented time model,
// one full simulation per op.
func benchRTCScheduler(b *testing.B, policy string, n int, util float64, horizon sim.Time) {
	b.ReportAllocs()
	var switches uint64
	for i := 0; i < b.N; i++ {
		specs := workload.PeriodicSet(workload.NewRNG(7), n, util)
		w := rtc.Workload{
			Policy:    policy,
			Quantum:   5 * sim.Millisecond,
			TimeModel: core.TimeModelSegmented,
			Horizon:   horizon,
		}
		for _, s := range specs {
			w.Tasks = append(w.Tasks, rtc.TaskDef{
				Name: s.Name, Type: "periodic", Prio: s.Prio,
				Period: s.Period, Segments: []sim.Time{s.WCET},
			})
		}
		r := rtc.Run(w)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		switches += r.Stats.ContextSwitches
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(switches)/sec, switchesMetric)
	}
}

// benchScheduler simulates one synthetic periodic task set per op under
// the given policy (the shape of BenchmarkSchedulers; with larger n the
// taskset sweep). Reports modeled context switches per wall-clock second.
func benchScheduler(b *testing.B, pol core.Policy, n int, util float64, horizon sim.Time) {
	b.ReportAllocs()
	var switches uint64
	for i := 0; i < b.N; i++ {
		specs := workload.PeriodicSet(workload.NewRNG(7), n, util)
		res, err := workload.Run(specs, pol, core.TimeModelSegmented, horizon)
		if err != nil {
			b.Fatal(err)
		}
		switches += res.ContextSwitches
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(switches)/sec, switchesMetric)
	}
}
