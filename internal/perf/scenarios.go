package perf

import (
	"fmt"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scenario is one named benchmark of the kernel hot path.
type Scenario struct {
	Name  string
	Bench func(b *testing.B)
}

// Scenarios returns the fixed scenario set, mirroring the hot-path
// benchmarks of bench_test.go plus a large synthetic taskset sweep and a
// timer-churn case. Names are stable: they key the baseline comparison.
func Scenarios() []Scenario {
	scns := []Scenario{
		{Name: "kernel/context-switch", Bench: benchContextSwitch},
		{Name: "sim/waitfor", Bench: benchWaitFor},
		{Name: "timer/schedule-cancel", Bench: benchTimerChurn},
	}
	policies := []core.Policy{
		core.FCFSPolicy{},
		core.RoundRobinPolicy{Quantum: 5 * sim.Millisecond},
		core.PriorityPolicy{},
		core.RMPolicy{},
		core.EDFPolicy{},
	}
	for _, pol := range policies {
		pol := pol
		scns = append(scns, Scenario{
			Name:  "sched/" + pol.Name(),
			Bench: func(b *testing.B) { benchScheduler(b, pol, 8, 0.85, 2*sim.Second) },
		})
	}
	for _, n := range []int{32, 128} {
		n := n
		scns = append(scns, Scenario{
			Name:  fmt.Sprintf("sweep/tasks-%d", n),
			Bench: func(b *testing.B) { benchScheduler(b, core.EDFPolicy{}, n, 0.9, 250*sim.Millisecond) },
		})
	}
	return scns
}

// benchContextSwitch is the RTOS dispatch round trip: two tasks handing
// the CPU back and forth through a semaphore pair (the shape of
// BenchmarkKernelContextSwitch). Reports modeled context switches per
// wall-clock second.
func benchContextSwitch(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	defer k.Shutdown()
	rtos := core.New(k, "PE", core.PriorityPolicy{})
	f := channel.RTOSFactory{OS: rtos}
	ping := channel.NewSemaphore(f, "ping", 0)
	pong := channel.NewSemaphore(f, "pong", 0)
	a := rtos.TaskCreate("a", core.Aperiodic, 0, 0, 1)
	c := rtos.TaskCreate("b", core.Aperiodic, 0, 0, 2)
	n := b.N
	k.Spawn("a", func(p *sim.Proc) {
		rtos.TaskActivate(p, a)
		for i := 0; i < n; i++ {
			rtos.TimeWait(p, 1)
			ping.Release(p)
			pong.Acquire(p)
		}
		rtos.TaskTerminate(p)
	})
	k.Spawn("b", func(p *sim.Proc) {
		rtos.TaskActivate(p, c)
		for i := 0; i < n; i++ {
			ping.Acquire(p)
			pong.Release(p)
		}
		rtos.TaskTerminate(p)
	})
	rtos.Start(nil)
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(rtos.StatsSnapshot().ContextSwitches)/sec, switchesMetric)
	}
}

// benchWaitFor is the bare kernel's waitfor throughput (the shape of
// BenchmarkSimPrimitives).
func benchWaitFor(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	defer k.Shutdown()
	n := b.N
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.WaitFor(10)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchTimerChurn schedules and cancels one timer per op: a waiter blocks
// in WaitTimeout and a notifier wakes it before the timeout, cancelling
// the heap entry. This is the cancel-heavy pattern of fault campaigns and
// exercises the heap compaction path.
func benchTimerChurn(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	defer k.Shutdown()
	ev := k.NewEvent("ev")
	n := b.N
	k.Spawn("waiter", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if p.WaitTimeout(ev, sim.Second) {
				continue
			}
			b.Error("timer fired; expected notification")
			return
		}
	})
	k.Spawn("notifier", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Notify(ev)
			p.YieldDelta()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchScheduler simulates one synthetic periodic task set per op under
// the given policy (the shape of BenchmarkSchedulers; with larger n the
// taskset sweep). Reports modeled context switches per wall-clock second.
func benchScheduler(b *testing.B, pol core.Policy, n int, util float64, horizon sim.Time) {
	b.ReportAllocs()
	var switches uint64
	for i := 0; i < b.N; i++ {
		specs := workload.PeriodicSet(workload.NewRNG(7), n, util)
		res, err := workload.Run(specs, pol, core.TimeModelSegmented, horizon)
		if err != nil {
			b.Fatal(err)
		}
		switches += res.ContextSwitches
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(switches)/sec, switchesMetric)
	}
}
