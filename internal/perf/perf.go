// Package perf is the kernel performance harness behind cmd/simbench: a
// fixed set of hot-path scenarios (context switches, raw kernel
// primitives, the scheduler matrix, large synthetic task sets, timer
// churn) measured with the standard testing.Benchmark machinery and
// reported as a machine-readable document (BENCH_kernel.json). A committed
// baseline plus Compare turn the document into a regression gate: ns/op
// within a tolerance, allocs/op never above baseline.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
)

// Schema identifies the BENCH_kernel.json document format.
const Schema = "bench-kernel/1"

// Result is one scenario's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SwitchesPerSec is the modeled context-switch throughput, reported by
	// scenarios that drive the RTOS dispatcher (0 elsewhere).
	SwitchesPerSec float64 `json:"context_switches_per_sec,omitempty"`
	Iterations     int     `json:"iterations"`
	// Extra carries any other per-scenario metrics a benchmark surfaced
	// with b.ReportMetric (the DSE suite's configs/s and cache hit rate).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full benchmark document.
type Report struct {
	Schema    string   `json:"schema"`
	Scenarios []Result `json:"scenarios"`
}

// switchesMetric is the b.ReportMetric key scenarios use to surface
// context-switch throughput into the Result.
const switchesMetric = "switches/s"

// Collect runs every scenario and returns the report. Each scenario is
// measured by testing.Benchmark (standard auto-scaling of b.N).
func Collect() Report { return CollectOnly(nil) }

// CollectOnly runs the scenarios whose name keep accepts (nil keeps all)
// and returns the report. Filtering happens before measurement, so a
// restricted run costs only the scenarios it reports.
func CollectOnly(keep func(name string) bool) Report {
	return collect(Schema, Scenarios(), keep)
}

// collect measures the given scenarios into a report with the given
// schema tag, shared by the kernel and DSE suites.
func collect(schema string, scns []Scenario, keep func(name string) bool) Report {
	rep := Report{Schema: schema}
	for _, s := range scns {
		if keep != nil && !keep(s.Name) {
			continue
		}
		br := testing.Benchmark(s.Bench)
		res := Result{
			Name:        s.Name,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			BytesPerOp:  br.AllocedBytesPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			Iterations:  br.N,
		}
		for name, v := range br.Extra {
			if name == switchesMetric {
				res.SwitchesPerSec = v
				continue
			}
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[name] = v
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}
	sort.Slice(rep.Scenarios, func(i, j int) bool {
		return rep.Scenarios[i].Name < rep.Scenarios[j].Name
	})
	return rep
}

// Load reads a kernel-suite report from path.
func Load(path string) (Report, error) { return LoadAs(path, Schema) }

// LoadAs reads a report from path and verifies it carries the expected
// schema tag (Schema for the kernel suite, DSESchema for the DSE suite).
func LoadAs(path, schema string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("perf: parsing %s: %w", path, err)
	}
	if rep.Schema != schema {
		return Report{}, fmt.Errorf("perf: %s has schema %q, want %q", path, rep.Schema, schema)
	}
	return rep, nil
}

// Write stores the report at path (indented JSON, trailing newline).
func (r Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// find returns the named scenario result.
func (r Report) find(name string) (Result, bool) {
	for _, s := range r.Scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Result{}, false
}

// Compare checks cur against base and returns one violation message per
// regression. Allocations are gated exactly — an allocs/op count above
// baseline is a regression regardless of tolerance, because allocation
// counts are deterministic. Time is gated within the relative tolerance
// (tol = 0.5 allows ns/op up to 1.5x baseline), absorbing host noise.
// Scenarios present in the baseline but missing from cur are violations;
// scenarios new in cur are ignored.
func Compare(cur, base Report, tol float64) []string {
	var violations []string
	for _, b := range base.Scenarios {
		c, ok := cur.find(b.Name)
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: scenario missing from current run", b.Name))
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op regressed: %d > baseline %d",
				b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
		if limit := b.NsPerOp * (1 + tol); c.NsPerOp > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: ns/op regressed: %.1f > %.1f (baseline %.1f +%.0f%%)",
				b.Name, c.NsPerOp, limit, b.NsPerOp, tol*100))
		}
	}
	return violations
}
