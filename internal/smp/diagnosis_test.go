package smp

// Tests for the SMP runtime-diagnosis hooks (diagnosis.go).

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestSMPWatchdogStarvation: on a single coarse-model CPU a
// higher-priority hog that never reaches a scheduling point starves the
// ready queue; the watchdog diagnoses it.
func TestSMPWatchdogStarvation(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "SMP", FixedPriority{}, 1, false)
	hog := os.TaskCreate("hog", core.Aperiodic, 0, 0, 1)
	k.Spawn("hog", func(p *sim.Proc) {
		os.TaskActivate(p, hog)
		for {
			os.TimeWait(p, 10)
		}
	})
	victim := os.TaskCreate("victim", core.Aperiodic, 0, 0, 2)
	k.Spawn("victim", func(p *sim.Proc) {
		os.TaskActivate(p, victim)
		os.TimeWait(p, 5)
		os.TaskTerminate(p)
	})
	os.EnableWatchdog(100)

	var d *core.DiagnosisError
	if err := k.RunUntil(10_000); !errors.As(err, &d) {
		t.Fatalf("RunUntil = %v, want *core.DiagnosisError", err)
	}
	if d.Kind != core.DiagStarvation || d.PE != "SMP" {
		t.Fatalf("diagnosis = %v, want SMP starvation", d)
	}
	if len(d.Blocked) != 1 || d.Blocked[0].Task != "victim" {
		t.Fatalf("Blocked = %v, want victim", d.Blocked)
	}
	if os.Diagnosis() != d {
		t.Errorf("Diagnosis() did not record the reported error")
	}
}

// TestSMPWatchdogCleanRun: the watchdog stays silent on a healthy
// multiprocessor workload and the simulation finishes normally.
func TestSMPWatchdogCleanRun(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "SMP", GEDF{}, 2, true)
	for i, name := range []string{"a", "b", "c"} {
		spawnAperiodic(k, os, name, i+1, 100, nil)
	}
	// The window must exceed the longest legitimate wait for a CPU slot
	// (task c waits 100 while a and b occupy both CPUs).
	os.EnableWatchdog(150)
	if err := k.RunUntil(10_000); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if d := os.Diagnosis(); d != nil {
		t.Errorf("clean run diagnosed: %v", d)
	}
}
