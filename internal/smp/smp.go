// Package smp extends the paper's single-processor RTOS model
// (internal/core) to symmetric multiprocessing: one scheduler instance
// dispatches tasks globally onto M identical CPUs (global fixed-priority
// or global EDF). The paper lists multiprocessor systems as future work;
// this package models the scheduling side of that direction and lets the
// experiment harness demonstrate classic global-scheduling phenomena such
// as Dhall's effect (a task set with utilization barely above 1 that
// misses deadlines on M processors under global RM/EDF although a
// partitioned mapping meets them).
//
// The modeling technique is the paper's: every task is a simulation
// process parked on a per-task dispatch event; the scheduler keeps at
// most M tasks executing and re-evaluates at every service call. The
// service surface is the scheduling-relevant subset of the paper's
// interface (task creation/activation/termination, modeled execution
// time, periodic end-of-cycle); event handling and fork/join remain the
// domain of the uniprocessor model.
package smp

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/readyq"
	"repro/internal/sim"
)

// Policy orders tasks for the global scheduler; the M least tasks under
// Less execute. All provided policies are preemptive.
type Policy interface {
	Name() string
	Less(a, b *Task) bool
}

// Ranker mirrors core.Ranker for the global scheduler: a policy whose
// ordering is a per-task key enables the indexed ready structure
// (internal/readyq). Rank must order identically to Less.
type Ranker interface {
	Rank(t *Task) readyq.Key
}

// FixedPriority is global fixed-priority scheduling (global RM when
// priorities are assigned by period; see AssignRateMonotonic).
type FixedPriority struct{}

// Name returns "g-fp".
func (FixedPriority) Name() string { return "g-fp" }

// Less orders by base priority (smaller = higher).
func (FixedPriority) Less(a, b *Task) bool { return a.prio < b.prio }

// Rank indexes by base priority.
func (FixedPriority) Rank(t *Task) readyq.Key { return readyq.Key{A: int64(t.prio)} }

// GEDF is global earliest-deadline-first scheduling.
type GEDF struct{}

// Name returns "g-edf".
func (GEDF) Name() string { return "g-edf" }

// Less orders by absolute deadline, then priority.
func (GEDF) Less(a, b *Task) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.prio < b.prio
}

// Rank indexes by absolute deadline, then base priority.
func (GEDF) Rank(t *Task) readyq.Key {
	return readyq.Key{A: int64(t.deadline), B: int64(t.prio)}
}

// Task is the SMP scheduler's task control block.
type Task struct {
	os   *OS
	id   int
	name string
	typ  core.TaskType

	period sim.Time
	wcet   sim.Time
	prio   int

	state core.TaskState
	proc  *sim.Proc

	dispatch *sim.Event
	preempt  *sim.Event

	cpu      int // occupied CPU slot, -1 if none
	lastCPU  int // last CPU the task ran on, -1 initially
	rq       readyq.Links[*Task]
	readySeq int

	release      sim.Time
	deadline     sim.Time
	lastWorkDone sim.Time

	cpuTime     sim.Time
	activations int
	missed      int
	migrations  int
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// State returns the task's state (core.TaskState vocabulary).
func (t *Task) State() core.TaskState { return t.state }

// Priority returns the base priority.
func (t *Task) Priority() int { return t.prio }

// CPUTime returns consumed modeled execution time.
func (t *Task) CPUTime() sim.Time { return t.cpuTime }

// Activations returns completed cycles.
func (t *Task) Activations() int { return t.activations }

// MissedDeadlines returns the deadline-miss count.
func (t *Task) MissedDeadlines() int { return t.missed }

// Migrations returns how often the task resumed on a different CPU.
func (t *Task) Migrations() int { return t.migrations }

// Observer receives global-scheduler dispatch events; the simcheck
// harness uses it to verify per-CPU occupancy invariants. All callbacks
// run synchronously inside the simulation and must not block.
type Observer interface {
	// OnDispatch fires when a task is assigned to a CPU slot.
	OnDispatch(at sim.Time, cpu int, t *Task)
	// OnRelease fires when a task vacates its CPU slot (termination,
	// end-of-cycle or preemption).
	OnRelease(at sim.Time, cpu int, t *Task)
}

// ObserverExt extends Observer with the involuntary-preemption edge, so
// the telemetry layer can count preemptions without polling Stats.
// Observers registered via Observe that also implement ObserverExt
// receive it automatically.
type ObserverExt interface {
	Observer
	// OnPreempt fires when t involuntarily loses its CPU slot; the slot
	// release follows as a separate OnRelease callback.
	OnPreempt(at sim.Time, cpu int, t *Task)
}

// Stats aggregates the scheduler's counters.
type Stats struct {
	Dispatches      uint64
	ContextSwitches uint64
	Preemptions     uint64
	Migrations      uint64
	BusyTime        sim.Time
}

// OS is the global multiprocessor scheduler instance.
type OS struct {
	k      *sim.Kernel
	name   string
	policy Policy
	ncpu   int

	running []*Task // slot per CPU; nil = idle
	lastRun []*Task // last task each CPU executed
	tasks   []*Task
	seq     int

	// Ready queue: indexed structure for Ranker policies, linear list as
	// the fallback (and the byte-equivalence lever via SetLinearReady).
	rq          *readyq.Queue[*Task]
	ready       []*Task
	ranker      Ranker
	forceLinear bool

	segmented bool
	stats     Stats
	observers []Observer
	extObs    []ObserverExt

	// Runtime diagnosis (see diagnosis.go).
	diagnosis  *core.DiagnosisError
	progress   uint64 // dispatch stamp consumed by the watchdog
	watchdogOn bool
}

// New creates a global scheduler over ncpu identical CPUs. segmented
// selects the interruptible time model (recommended for schedulability
// experiments; the coarse model adds chunk-blocking on every CPU).
func New(k *sim.Kernel, name string, policy Policy, ncpu int, segmented bool) *OS {
	if ncpu < 1 {
		panic(fmt.Sprintf("smp: ncpu %d < 1", ncpu))
	}
	os := &OS{
		k:         k,
		name:      name,
		policy:    policy,
		ncpu:      ncpu,
		running:   make([]*Task, ncpu),
		lastRun:   make([]*Task, ncpu),
		segmented: segmented,
		rq:        readyq.New(taskLinks),
	}
	os.refreshRanker()
	// Translate a generic kernel deadlock into a scheduler diagnosis when
	// this instance has stranded tasks to report (see diagnosis.go).
	k.OnStall(func(at sim.Time, live []*sim.Proc) error {
		if d := os.diagnoseStall(); d != nil {
			os.recordDiagnosis(d)
			return d
		}
		return nil
	})
	return os
}

// Name returns the scheduler instance name.
func (os *OS) Name() string { return os.name }

// NCPU returns the processor count.
func (os *OS) NCPU() int { return os.ncpu }

// Observe registers an observer for dispatch events. Observers that also
// implement ObserverExt additionally receive preemption callbacks.
func (os *OS) Observe(o Observer) {
	os.observers = append(os.observers, o)
	if e, ok := o.(ObserverExt); ok {
		os.extObs = append(os.extObs, e)
	}
}

// Tasks returns all created tasks.
func (os *OS) Tasks() []*Task { return os.tasks }

// StatsSnapshot returns the counters.
func (os *OS) StatsSnapshot() Stats { return os.stats }

// RunningCount returns how many CPUs currently execute a task.
func (os *OS) RunningCount() int {
	n := 0
	for _, t := range os.running {
		if t != nil {
			n++
		}
	}
	return n
}

// TaskCreate allocates a task control block.
func (os *OS) TaskCreate(name string, typ core.TaskType, period, wcet sim.Time, prio int) *Task {
	if typ == core.Periodic && period <= 0 {
		panic(fmt.Sprintf("smp: periodic task %q needs positive period", name))
	}
	t := &Task{
		os:       os,
		id:       len(os.tasks),
		name:     name,
		typ:      typ,
		period:   period,
		wcet:     wcet,
		prio:     prio,
		state:    core.TaskCreated,
		dispatch: os.k.NewEvent(name + ".dispatch"),
		preempt:  os.k.NewEvent(name + ".preempt"),
		cpu:      -1,
		lastCPU:  -1,
		deadline: sim.Forever,
	}
	os.tasks = append(os.tasks, t)
	return t
}

// AssignRateMonotonic rewrites priorities by period rank (global RM).
func (os *OS) AssignRateMonotonic() {
	order := append([]*Task(nil), os.tasks...)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].period < order[j-1].period; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for i, t := range order {
		t.prio = i
	}
	os.rebuildReady() // re-key any task already sitting in the ready queue
}

// TaskActivate binds the calling process to the task, enters the global
// ready queue and blocks until a CPU is assigned.
func (os *OS) TaskActivate(p *sim.Proc, t *Task) {
	t.proc = p
	if t.typ == core.Periodic {
		t.release = os.k.Now()
		t.deadline = t.release + t.period
	}
	os.makeReady(t)
	p.YieldDelta() // collect simultaneous activations before deciding
	os.decide(p)
	os.waitUntilDispatched(p, t)
}

// TaskTerminate ends the calling task and frees its CPU.
func (os *OS) TaskTerminate(p *sim.Proc) {
	t := os.mustRunning(p, "TaskTerminate")
	if t.typ == core.Aperiodic {
		t.activations++
	}
	t.state = core.TaskTerminated
	os.freeSlot(t)
	os.decide(p)
}

// TimeWait models execution time on the task's current CPU.
func (os *OS) TimeWait(p *sim.Proc, d sim.Time) {
	t := os.mustRunning(p, "TimeWait")
	if d < 0 {
		panic(fmt.Sprintf("smp: negative TimeWait %v by %q", d, t.name))
	}
	if os.segmented {
		remaining := d
		for remaining > 0 {
			t.state = core.TaskWaitingTime
			start := os.k.Now()
			preempted := p.WaitTimeout(t.preempt, remaining)
			elapsed := os.k.Now() - start
			t.cpuTime += elapsed
			t.lastWorkDone = os.k.Now()
			os.stats.BusyTime += elapsed
			remaining -= elapsed
			t.state = core.TaskRunning
			if preempted && remaining > 0 {
				os.yieldCPU(p, t)
			}
		}
	} else {
		t.state = core.TaskWaitingTime
		p.WaitFor(d)
		t.cpuTime += d
		t.lastWorkDone = os.k.Now()
		os.stats.BusyTime += d
		t.state = core.TaskRunning
	}
	os.maybeYield(p, t)
}

// TaskEndCycle finishes a periodic task's cycle: record deadline
// performance, free the CPU, wait for the next release, re-contend.
func (os *OS) TaskEndCycle(p *sim.Proc) {
	t := os.mustRunning(p, "TaskEndCycle")
	if t.typ != core.Periodic {
		panic(fmt.Sprintf("smp: TaskEndCycle on aperiodic task %q", t.name))
	}
	now := os.k.Now()
	completion := t.lastWorkDone
	if completion < t.release {
		completion = t.release
	}
	if completion > t.deadline {
		t.missed++
	}
	t.activations++
	next := t.release + t.period
	for next+t.period <= completion {
		next += t.period
		t.missed++
	}
	t.state = core.TaskWaitingPeriod
	os.freeSlot(t)
	os.decide(p)
	if next > now {
		p.WaitFor(next - now)
	}
	t.release = next
	t.deadline = next + t.period
	os.makeReady(t)
	p.YieldDelta()
	os.decide(p)
	os.waitUntilDispatched(p, t)
}

// ---------------------------------------------------------------------------
// Dispatcher.

func (os *OS) mustRunning(p *sim.Proc, op string) *Task {
	for _, t := range os.running {
		if t != nil && t.proc == p {
			return t
		}
	}
	panic(fmt.Sprintf("smp[%s]: %s called by process %q which runs no task", os.name, op, p.Name()))
}

// taskLinks is the intrusive-links accessor for the indexed ready queue.
func taskLinks(t *Task) *readyq.Links[*Task] { return &t.rq }

// refreshRanker re-derives the indexable ranking from the active policy.
func (os *OS) refreshRanker() {
	os.ranker = nil
	if os.forceLinear {
		return
	}
	if r, ok := os.policy.(Ranker); ok {
		os.ranker = r
	}
}

// SetLinearReady forces the linear ready-list scan; see the equivalent
// hook on core.OS. It exists for the byte-equivalence test suite.
func (os *OS) SetLinearReady(on bool) {
	if os.forceLinear == on {
		return
	}
	os.forceLinear = on
	os.refreshRanker()
	os.rebuildReady()
}

// rebuildReady migrates all queued tasks into the structure selected by
// the current ranker, preserving FIFO arrival order.
func (os *OS) rebuildReady() {
	n := os.rq.Len() + len(os.ready)
	if n == 0 {
		return
	}
	queued := make([]*Task, 0, n)
	os.rq.Do(func(t *Task) { queued = append(queued, t) })
	os.rq.Clear()
	queued = append(queued, os.ready...)
	os.ready = os.ready[:0]
	sort.Slice(queued, func(i, j int) bool { return queued[i].readySeq < queued[j].readySeq })
	for _, t := range queued {
		os.pushReady(t)
	}
}

// readyLen returns the global ready-queue length.
func (os *OS) readyLen() int { return os.rq.Len() + len(os.ready) }

// pushReady inserts an already-sequenced ready task.
func (os *OS) pushReady(t *Task) {
	if os.ranker != nil {
		os.rq.Push(t, os.ranker.Rank(t), t.readySeq)
	} else {
		os.ready = append(os.ready, t)
	}
}

func (os *OS) makeReady(t *Task) {
	if !t.state.Alive() {
		return
	}
	t.state = core.TaskReady
	os.seq++
	t.readySeq = os.seq
	os.pushReady(t)
}

func (os *OS) removeReady(t *Task) {
	if os.ranker != nil {
		os.rq.Remove(t)
		return
	}
	for i, x := range os.ready {
		if x == t {
			os.ready = append(os.ready[:i], os.ready[i+1:]...)
			return
		}
	}
}

// freeSlot vacates the task's CPU slot.
func (os *OS) freeSlot(t *Task) {
	if t.cpu >= 0 {
		cpu := t.cpu
		os.running[cpu] = nil
		t.cpu = -1
		for _, o := range os.observers {
			o.OnRelease(os.k.Now(), cpu, t)
		}
	}
}

// pickBest returns the policy-least ready task.
func (os *OS) pickBest() *Task {
	if os.ranker != nil {
		return os.rq.Min()
	}
	var best *Task
	for _, t := range os.ready {
		if best == nil || os.policy.Less(t, best) ||
			(!os.policy.Less(best, t) && t.readySeq < best.readySeq) {
			best = t
		}
	}
	return best
}

// worstRunning returns the CPU slot whose task orders last (the
// preemption victim), or -1 if some CPU is idle.
func (os *OS) worstRunning() int {
	worst := -1
	for i, t := range os.running {
		if t == nil {
			return -1
		}
		if worst < 0 || os.policy.Less(os.running[worst], t) ||
			(!os.policy.Less(t, os.running[worst]) && t.readySeq > os.running[worst].readySeq) {
			worst = i
		}
	}
	return worst
}

// dispatchInto assigns a ready task to a CPU slot.
func (os *OS) dispatchInto(p *sim.Proc, cpu int, t *Task) {
	if os.running[cpu] != nil {
		panic(fmt.Sprintf("smp[%s]: dispatch into occupied CPU %d", os.name, cpu))
	}
	os.removeReady(t)
	t.state = core.TaskRunning
	t.cpu = cpu
	os.running[cpu] = t
	os.stats.Dispatches++
	os.progress++
	if os.lastRun[cpu] != nil && os.lastRun[cpu] != t {
		os.stats.ContextSwitches++
	}
	if t.lastCPU >= 0 && t.lastCPU != cpu {
		t.migrations++
		os.stats.Migrations++
	}
	t.lastCPU = cpu
	os.lastRun[cpu] = t
	for _, o := range os.observers {
		o.OnDispatch(os.k.Now(), cpu, t)
	}
	if t.proc != p {
		p.Notify(t.dispatch)
	}
}

// decide fills idle CPUs with the best ready tasks, then (segmented
// model) requests preemption of running tasks that a ready task beats.
func (os *OS) decide(p *sim.Proc) {
	for {
		best := os.pickBest()
		if best == nil {
			return
		}
		free := -1
		for i, t := range os.running {
			if t == nil {
				free = i
				break
			}
		}
		if free < 0 {
			break
		}
		os.dispatchInto(p, free, best)
	}
	if !os.segmented {
		return // coarse: preemption happens at the victims' TimeWait ends
	}
	// Request preemption of victims while a strictly better task waits.
	for {
		best := os.pickBest()
		if best == nil {
			return
		}
		victim := os.worstRunning()
		if victim < 0 || !os.policy.Less(best, os.running[victim]) {
			return
		}
		// The victim yields inside its interruptible TimeWait; one
		// request per victim per decision round.
		p.Notify(os.running[victim].preempt)
		return
	}
}

// maybeYield is the post-TimeWait scheduling point: the caller yields if
// a strictly preferred task is ready (and no CPU is free for it).
func (os *OS) maybeYield(p *sim.Proc, t *Task) {
	best := os.pickBest()
	if best == nil || !os.policy.Less(best, t) {
		// Still give idle CPUs to waiting work.
		os.decide(p)
		return
	}
	os.yieldCPU(p, t)
}

// yieldCPU vacates the caller's slot, requeues it and blocks until
// re-dispatched.
func (os *OS) yieldCPU(p *sim.Proc, t *Task) {
	os.stats.Preemptions++
	for _, o := range os.extObs {
		o.OnPreempt(os.k.Now(), t.cpu, t)
	}
	os.freeSlot(t)
	os.makeReady(t)
	os.decide(p)
	os.waitUntilDispatched(p, t)
}

// waitUntilDispatched parks the caller until it owns a CPU slot.
func (os *OS) waitUntilDispatched(p *sim.Proc, t *Task) {
	for t.cpu < 0 {
		p.Wait(t.dispatch)
	}
}
