package smp

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
)

func run(t *testing.T, k *sim.Kernel) {
	t.Helper()
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// spawnAperiodic launches a one-shot compute task.
func spawnAperiodic(k *sim.Kernel, os *OS, name string, prio int, work sim.Time, done *sim.Time) {
	task := os.TaskCreate(name, core.Aperiodic, 0, work, prio)
	k.Spawn(name, func(p *sim.Proc) {
		os.TaskActivate(p, task)
		os.TimeWait(p, work)
		if done != nil {
			*done = p.Now()
		}
		os.TaskTerminate(p)
	})
}

func TestTwoCPUsRunTwoTasksInParallel(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "SMP", FixedPriority{}, 2, true)
	var endA, endB, endC sim.Time
	spawnAperiodic(k, os, "a", 1, 100, &endA)
	spawnAperiodic(k, os, "b", 2, 100, &endB)
	spawnAperiodic(k, os, "c", 3, 100, &endC)
	run(t, k)
	if endA != 100 || endB != 100 {
		t.Errorf("a,b finished at %v,%v, want 100,100 (parallel)", endA, endB)
	}
	if endC != 200 {
		t.Errorf("c finished at %v, want 200 (third task waits for a CPU)", endC)
	}
	if bt := os.StatsSnapshot().BusyTime; bt != 300 {
		t.Errorf("busy = %v, want 300", bt)
	}
}

func TestSingleCPUEqualsUniprocessorSerialization(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "SMP", FixedPriority{}, 1, true)
	var endB sim.Time
	spawnAperiodic(k, os, "a", 1, 70, nil)
	spawnAperiodic(k, os, "b", 2, 30, &endB)
	run(t, k)
	if endB != 100 {
		t.Errorf("b finished at %v, want 100 (serialized on 1 CPU)", endB)
	}
}

func TestGlobalPreemption(t *testing.T) {
	// Both CPUs busy with low-priority work; a high-priority arrival
	// preempts the worst-ranked running task immediately (segmented).
	k := sim.NewKernel()
	os := New(k, "SMP", FixedPriority{}, 2, true)
	var endHigh sim.Time
	spawnAperiodic(k, os, "low1", 10, 200, nil)
	spawnAperiodic(k, os, "low2", 20, 200, nil)
	high := os.TaskCreate("high", core.Aperiodic, 0, 50, 1)
	k.Spawn("high", func(p *sim.Proc) {
		p.WaitFor(40)
		os.TaskActivate(p, high)
		os.TimeWait(p, 50)
		endHigh = p.Now()
		os.TaskTerminate(p)
	})
	run(t, k)
	if endHigh != 90 {
		t.Errorf("high finished at %v, want 90 (arrives 40, runs 50 immediately)", endHigh)
	}
	if os.StatsSnapshot().Preemptions == 0 {
		t.Error("no preemption recorded")
	}
}

func TestMigrationCounting(t *testing.T) {
	// One long task competing with staggered arrivals can resume on a
	// different CPU; the counter must track it. Construct deterministically:
	// t=0: A (prio 3) on cpu0, B (prio 4) on cpu1.
	// t=10: H1 (prio 1) preempts B (worst).  B ready.
	// t=10: cpu1 runs H1. A still on cpu0.
	// t=20: H2 (prio 2) preempts A (now worst). A ready.
	// H1 ends t=30 -> B? A? policy: A (prio 3) beats B: A resumes on cpu1
	// -> migration for A.
	k := sim.NewKernel()
	os := New(k, "SMP", FixedPriority{}, 2, true)
	spawnAperiodic(k, os, "A", 3, 100, nil)
	spawnAperiodic(k, os, "B", 4, 100, nil)
	h1 := os.TaskCreate("H1", core.Aperiodic, 0, 20, 1)
	k.Spawn("H1", func(p *sim.Proc) {
		p.WaitFor(10)
		os.TaskActivate(p, h1)
		os.TimeWait(p, 20)
		os.TaskTerminate(p)
	})
	h2 := os.TaskCreate("H2", core.Aperiodic, 0, 100, 2)
	k.Spawn("H2", func(p *sim.Proc) {
		p.WaitFor(20)
		os.TaskActivate(p, h2)
		os.TimeWait(p, 100)
		os.TaskTerminate(p)
	})
	run(t, k)
	if os.StatsSnapshot().Migrations == 0 {
		t.Error("no migrations recorded in a migration-forcing schedule")
	}
}

func TestAssignRateMonotonic(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "SMP", FixedPriority{}, 2, true)
	slow := os.TaskCreate("slow", core.Periodic, 1000, 1, 0)
	fast := os.TaskCreate("fast", core.Periodic, 10, 1, 9)
	os.AssignRateMonotonic()
	if !(fast.Priority() < slow.Priority()) {
		t.Errorf("RM priorities fast=%d slow=%d", fast.Priority(), slow.Priority())
	}
}

// periodicBody runs a periodic task for cycles iterations.
func periodicBody(os *OS, task *Task, wcet sim.Time, cycles int) sim.Func {
	return func(p *sim.Proc) {
		os.TaskActivate(p, task)
		for c := 0; c < cycles; c++ {
			os.TimeWait(p, wcet)
			os.TaskEndCycle(p)
		}
		os.TaskTerminate(p)
	}
}

// TestDhallsEffect reproduces the classic global-scheduling anomaly: on
// M=2 CPUs, two light short-period tasks plus one heavy long-period task
// (total utilization ≈ 1.15 of 2.0) miss deadlines under BOTH global RM
// and global EDF, while the obvious partitioned mapping (heavy task alone
// on one CPU) meets every deadline on the uniprocessor model.
func TestDhallsEffect(t *testing.T) {
	const cycles = 5
	runGlobal := func(policy Policy) int {
		k := sim.NewKernel()
		os := New(k, "SMP", policy, 2, true)
		light1 := os.TaskCreate("light1", core.Periodic, 100, 10, 0)
		light2 := os.TaskCreate("light2", core.Periodic, 100, 10, 1)
		heavy := os.TaskCreate("heavy", core.Periodic, 105, 100, 2)
		os.AssignRateMonotonic() // lights get the higher priorities
		k.Spawn("light1", periodicBody(os, light1, 10, cycles))
		k.Spawn("light2", periodicBody(os, light2, 10, cycles))
		k.Spawn("heavy", periodicBody(os, heavy, 100, cycles))
		run(t, k)
		return light1.MissedDeadlines() + light2.MissedDeadlines() + heavy.MissedDeadlines()
	}
	missRM := runGlobal(FixedPriority{})
	missEDF := runGlobal(GEDF{})
	if missRM == 0 {
		t.Error("global RM met all deadlines; Dhall's effect should cause misses")
	}
	if missEDF == 0 {
		t.Error("global EDF met all deadlines; Dhall's effect should cause misses")
	}

	// Partitioned mapping on the uniprocessor model: lights on CPU0,
	// heavy alone on CPU1.
	k := sim.NewKernel()
	cpu0 := core.New(k, "CPU0", core.RMPolicy{}, core.WithTimeModel(core.TimeModelSegmented))
	cpu1 := core.New(k, "CPU1", core.RMPolicy{}, core.WithTimeModel(core.TimeModelSegmented))
	mkCore := func(os *core.OS, name string, period, wcet sim.Time, prio int) *core.Task {
		task := os.TaskCreate(name, core.Periodic, period, wcet, prio)
		k.Spawn(name, func(p *sim.Proc) {
			os.TaskActivate(p, task)
			for c := 0; c < cycles; c++ {
				os.TimeWait(p, wcet)
				os.TaskEndCycle(p)
			}
			os.TaskTerminate(p)
		})
		return task
	}
	l1 := mkCore(cpu0, "light1", 100, 10, 0)
	l2 := mkCore(cpu0, "light2", 100, 10, 1)
	hv := mkCore(cpu1, "heavy", 105, 100, 0)
	cpu0.Start(nil)
	cpu1.Start(nil)
	run(t, k)
	if m := l1.MissedDeadlines() + l2.MissedDeadlines() + hv.MissedDeadlines(); m != 0 {
		t.Errorf("partitioned mapping missed %d deadlines, want 0", m)
	}
}

// TestQuickWorkConservation: for arbitrary aperiodic task sets on m CPUs,
// total busy time equals total work, the makespan is bounded between
// work/m and total work, and the running-slot invariant (panic inside the
// dispatcher) never fires.
func TestQuickWorkConservation(t *testing.T) {
	f := func(workRaw []uint8, ncpuRaw uint8) bool {
		if len(workRaw) == 0 {
			return true
		}
		if len(workRaw) > 10 {
			workRaw = workRaw[:10]
		}
		ncpu := int(ncpuRaw%4) + 1
		k := sim.NewKernel()
		os := New(k, "SMP", FixedPriority{}, ncpu, true)
		var total sim.Time
		for i, w := range workRaw {
			work := sim.Time(w) + 1
			total += work
			spawnAperiodic(k, os, fmt.Sprintf("t%d", i), i, work, nil)
		}
		if err := k.Run(); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if os.StatsSnapshot().BusyTime != total {
			return false
		}
		end := k.Now()
		lower := (total + sim.Time(ncpu) - 1) / sim.Time(ncpu)
		return end >= lower && end <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickNeverMoreRunningThanCPUs samples the running count at every
// scheduling boundary via a monitor task.
func TestQuickNeverMoreRunningThanCPUs(t *testing.T) {
	f := func(seed uint32, ncpuRaw uint8) bool {
		ncpu := int(ncpuRaw%3) + 1
		k := sim.NewKernel()
		os := New(k, "SMP", FixedPriority{}, ncpu, true)
		bad := false
		for i := 0; i < 6; i++ {
			x := seed + uint32(i)*2654435761
			task := os.TaskCreate(fmt.Sprintf("t%d", i), core.Aperiodic, 0, 0, int(x%4))
			k.Spawn(task.Name(), func(p *sim.Proc) {
				os.TaskActivate(p, task)
				y := x
				for j := 0; j < 4; j++ {
					y = y*1664525 + 1013904223
					os.TimeWait(p, sim.Time(y%30+1))
					if os.RunningCount() > ncpu {
						bad = true
					}
				}
				os.TaskTerminate(p)
			})
		}
		// The monitor is a daemon with an endless timer loop, so the
		// simulation must be bounded by a horizon (daemon processes don't
		// deadlock the kernel, but their timers keep time advancing).
		mon := k.Spawn("monitor", func(p *sim.Proc) {
			for {
				p.WaitFor(7)
				if os.RunningCount() > ncpu {
					bad = true
				}
			}
		})
		mon.SetDaemon(true)
		if err := k.RunUntil(10000); err != nil {
			return false
		}
		return !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("New with 0 CPUs did not panic")
		}
	}()
	New(k, "bad", FixedPriority{}, 0, true)
}
