package smp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestCoarseModePreemptsAtSchedulingPoints: under the coarse time model
// the whole delay annotation completes before a higher-priority arrival
// takes the CPU (the paper's t4 -> t4' behavior, here on M CPUs).
func TestCoarseModePreemptsAtSchedulingPoints(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "SMP", FixedPriority{}, 2, false) // coarse
	var endHigh sim.Time
	// Fill both CPUs with coarse 200-unit chunks.
	spawnAperiodic(k, os, "low1", 10, 200, nil)
	spawnAperiodic(k, os, "low2", 20, 200, nil)
	high := os.TaskCreate("high", core.Aperiodic, 0, 50, 1)
	k.Spawn("high", func(p *sim.Proc) {
		p.WaitFor(40)
		os.TaskActivate(p, high)
		os.TimeWait(p, 50)
		endHigh = p.Now()
		os.TaskTerminate(p)
	})
	run(t, k)
	// Coarse: high waits until a low task's 200-chunk ends, then runs 50.
	if endHigh != 250 {
		t.Errorf("high finished at %v, want 250 (chunk-delayed preemption)", endHigh)
	}
}

// TestCoarsePeriodicSet: periodic execution works in coarse mode too.
func TestCoarsePeriodicSet(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "SMP", FixedPriority{}, 2, false)
	a := os.TaskCreate("a", core.Periodic, 100, 30, 0)
	b := os.TaskCreate("b", core.Periodic, 100, 30, 1)
	k.Spawn("a", periodicBody(os, a, 30, 4))
	k.Spawn("b", periodicBody(os, b, 30, 4))
	run(t, k)
	if a.MissedDeadlines() != 0 || b.MissedDeadlines() != 0 {
		t.Errorf("misses a=%d b=%d on a trivially feasible 2-CPU set",
			a.MissedDeadlines(), b.MissedDeadlines())
	}
	if a.Activations() != 4 || b.Activations() != 4 {
		t.Errorf("activations a=%d b=%d, want 4 each", a.Activations(), b.Activations())
	}
}

func TestAccessorsSMP(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "SMP", GEDF{}, 3, true)
	if os.NCPU() != 3 {
		t.Errorf("ncpu = %d", os.NCPU())
	}
	task := os.TaskCreate("t", core.Periodic, 100, 10, 1)
	if task.Name() != "t" || task.Priority() != 1 {
		t.Error("task accessors wrong")
	}
	if task.State() != core.TaskCreated {
		t.Errorf("state = %v", task.State())
	}
	if task.CPUTime() != 0 || task.Activations() != 0 ||
		task.MissedDeadlines() != 0 || task.Migrations() != 0 {
		t.Error("fresh task has nonzero counters")
	}
	if (FixedPriority{}).Name() != "g-fp" || (GEDF{}).Name() != "g-edf" {
		t.Error("policy names wrong")
	}
}
