package smp

// Runtime diagnosis for the global multiprocessor scheduler, mirroring
// the uniprocessor layer (core/diagnosis.go). The SMP service surface has
// no blocking synchronization primitives, so the wait-for graph
// degenerates: what remains detectable — and what the fuzzer's target
// class of dispatcher bugs produces — is ready tasks that never receive a
// CPU slot (a wedged dispatcher or starvation) and tasks stranded in
// waiting states when the simulation dies. Diagnoses reuse
// core.DiagnosisError so campaign tooling handles both schedulers
// uniformly.

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// DiagnosisObserver is an optional extension of Observer: observers
// registered with OS.Observe that also implement it receive every runtime
// diagnosis recorded on the instance.
type DiagnosisObserver interface {
	OnDiagnosis(at sim.Time, d *core.DiagnosisError)
}

// Diagnosis returns the first runtime diagnosis recorded on this instance
// (nil if the run was diagnosis-clean so far).
func (os *OS) Diagnosis() *core.DiagnosisError { return os.diagnosis }

func (os *OS) recordDiagnosis(d *core.DiagnosisError) {
	if os.diagnosis == nil {
		os.diagnosis = d
	}
	for _, o := range os.observers {
		if do, ok := o.(DiagnosisObserver); ok {
			do.OnDiagnosis(d.At, d)
		}
	}
}

// diagnoseStall reports every alive task that is neither executing nor
// waiting on a timer (its own period or modeled delay) at a simulation
// stall — ready tasks the dispatcher abandoned, or tasks never activated
// past creation. Returns nil when the blockage has no such victim.
func (os *OS) diagnoseStall() *core.DiagnosisError {
	var blocked []core.WaitEdge
	for _, t := range os.tasks {
		if !t.state.Alive() {
			continue
		}
		switch t.state {
		case core.TaskRunning, core.TaskWaitingTime, core.TaskWaitingPeriod, core.TaskCreated:
			continue
		}
		blocked = append(blocked, core.WaitEdge{Task: t.name, Resource: "cpu"})
	}
	if len(blocked) == 0 {
		return nil
	}
	return &core.DiagnosisError{PE: os.name, Kind: core.DiagStall,
		At: os.k.Now(), Blocked: blocked}
}

// allTasksDone reports whether every created task has terminated.
func (os *OS) allTasksDone() bool {
	if len(os.tasks) == 0 {
		return false
	}
	for _, t := range os.tasks {
		if t.state.Alive() {
			return false
		}
	}
	return true
}

// EnableWatchdog spawns a daemon that checks dispatch progress every
// window of simulated time, exactly like the uniprocessor watchdog
// (core.OS.EnableWatchdog): a window with ready tasks but no dispatch is
// starvation; a window where only the watchdog's own timer kept the
// simulation alive is diagnosed as the underlying stall. The window must
// exceed the longest legitimate uninterrupted slot occupancy. Starvation
// needs two consecutive progress-free checks (see the core watchdog: a
// same-instant timer wake can make a task ready before the scheduler
// runs); the stall check stays immediate.
func (os *OS) EnableWatchdog(window sim.Time) {
	if window <= 0 || os.watchdogOn {
		return
	}
	os.watchdogOn = true
	pr := os.k.Spawn("watchdog:"+os.name, func(p *sim.Proc) {
		last := ^uint64(0)
		starving := false
		for {
			p.WaitFor(window)
			if os.allTasksDone() {
				return
			}
			cur := os.progress
			if cur != last {
				last, starving = cur, false
				continue
			}
			d := os.watchdogDiagnose(window)
			if d == nil {
				starving = false
				continue
			}
			if d.Kind == core.DiagStarvation && !starving {
				starving = true
				continue
			}
			os.recordDiagnosis(d)
			os.k.Fail(d)
			return
		}
	})
	pr.SetDaemon(true)
}

func (os *OS) watchdogDiagnose(window sim.Time) *core.DiagnosisError {
	if os.readyLen() == 0 && os.RunningCount() == 0 && os.k.PendingTimers() == 0 {
		return os.diagnoseStall()
	}
	if os.readyLen() > 0 {
		d := &core.DiagnosisError{PE: os.name, Kind: core.DiagStarvation,
			At: os.k.Now(), Window: window}
		for _, t := range os.tasks {
			if t.state == core.TaskReady {
				d.Blocked = append(d.Blocked, core.WaitEdge{Task: t.name, Resource: "cpu"})
			}
		}
		return d
	}
	return nil
}
