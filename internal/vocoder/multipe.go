package vocoder

import (
	"time"

	"repro/internal/arch"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MultiPEParams extends the vocoder parameters with the communication
// architecture of a two-processor mapping.
type MultiPEParams struct {
	Params
	BusArbDelay sim.Time // per-transfer bus overhead
	BusPerByte  sim.Time // payload cost
	SubframeLen int      // coded subframe size in bytes
}

// DefaultMultiPE returns a two-PE configuration with a modest bus.
func DefaultMultiPE() MultiPEParams {
	return MultiPEParams{
		Params:      Default(),
		BusArbDelay: 2 * sim.Microsecond,
		BusPerByte:  100, // 100 ns/byte
		SubframeLen: 12,  // ~EFR coded subframe
	}
}

// RunMultiPE executes the paper's future-work scenario: the same codec
// partitioned onto two software PEs — encoder on DSP0, decoder on DSP1 —
// each running its own instance of the RTOS model, communicating over a
// shared bus with the ISR→semaphore→driver receive path. With a CPU per
// task, decoding overlaps encoding again and the transcoding delay drops
// back toward the unscheduled model's bound plus communication cost.
func RunMultiPE(par MultiPEParams, policy core.Policy, tm core.TimeModel) (Results, *trace.Recorder, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	bus := arch.NewBus(k, "bus", par.BusArbDelay, par.BusPerByte)
	pe0 := arch.NewSWPE(k, "DSP0", policy, core.WithTimeModel(tm))
	pe1 := arch.NewSWPE(k, "DSP1", policy, core.WithTimeModel(tm))
	rec := trace.New("vocoder-multipe")
	rec.Attach(pe0.OS())
	rec.Attach(pe1.OS())

	// Speech input: frame interrupt into PE0, as in the single-PE models.
	frameSem := channel.NewSemaphore(pe0.Factory(), "frame.sem", 0)
	frameIRQ := pe0.AttachISR("frame.irq", par.ISRTime, func(p *sim.Proc) {
		frameSem.Release(p)
	})
	src := k.Spawn("speech-in", func(p *sim.Proc) {
		for i := 0; i < par.Frames; i++ {
			rec.Marker(p.Now(), "frame-in", "speech-in", int64(i))
			frameIRQ.Raise(p)
			p.WaitFor(par.FramePeriod)
		}
	})
	src.SetDaemon(true)

	// Coded subframes cross the bus from PE0 to PE1.
	coded := arch.NewLink[int](bus, "coded", pe0, pe1, par.SubframeLen, par.ISRTime)

	enc := pe0.OS().TaskCreate("encoder", core.Aperiodic, 0, 0, par.PrioEnc)
	k.Spawn("encoder", func(p *sim.Proc) {
		pe0.OS().TaskActivate(p, enc)
		for i := 0; i < par.Frames; i++ {
			frameSem.Acquire(p)
			for s := 0; s < par.Subframes; s++ {
				pe0.OS().TimeWait(p, par.EncSubTime)
				coded.Send(p, i*par.Subframes+s)
			}
		}
		pe0.OS().TaskTerminate(p)
	})

	dec := pe1.OS().TaskCreate("decoder", core.Aperiodic, 0, 0, par.PrioDec)
	k.Spawn("decoder", func(p *sim.Proc) {
		pe1.OS().TaskActivate(p, dec)
		for i := 0; i < par.Frames; i++ {
			for s := 0; s < par.Subframes; s++ {
				_ = coded.Recv(p)
				pe1.OS().TimeWait(p, par.DecSubTime)
			}
			rec.Marker(p.Now(), "frame-out", "decoder", int64(i))
		}
		pe1.OS().TaskTerminate(p)
	})

	pe0.OS().Start(nil)
	pe1.OS().Start(nil)
	start := time.Now()
	err := k.Run()
	for _, o := range []*core.OS{pe0.OS(), pe1.OS()} {
		if d := o.Diagnosis(); err == nil && d != nil {
			err = d // runtime diagnosis outranks a silently wrong result
		}
	}
	res := finish("multi-pe", par.Params, rec, time.Since(start), k.Now(),
		pe0.OS().StatsSnapshot().ContextSwitches+pe1.OS().StatsSnapshot().ContextSwitches)
	return res, rec, err
}
