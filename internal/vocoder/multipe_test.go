package vocoder

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func smallMultiPE() MultiPEParams {
	mp := DefaultMultiPE()
	mp.Params = Small()
	return mp
}

func TestMultiPETranscodesAllFrames(t *testing.T) {
	mp := smallMultiPE()
	res, rec, err := RunMultiPE(mp, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delays) != mp.Frames {
		t.Fatalf("transcoded %d frames, want %d", len(res.Delays), mp.Frames)
	}
	// With one task per PE there is nothing to switch between.
	if res.ContextSwitches != 0 {
		t.Errorf("context switches = %d, want 0 (one task per PE)", res.ContextSwitches)
	}
	// Encoder and decoder overlap again: they run on different CPUs.
	if ov := rec.Overlap("encoder", "decoder"); ov == 0 {
		t.Error("no encoder/decoder overlap across PEs")
	}
}

func TestMultiPERecoversPipelineOverlap(t *testing.T) {
	// The two-PE mapping must beat the single-PE architecture model's
	// transcoding delay and land near the unscheduled bound plus the bus
	// communication cost.
	mp := smallMultiPE()
	single, _, err := RunArch(mp.Params, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := RunMultiPE(mp, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	spec, _, err := RunSpec(mp.Params)
	if err != nil {
		t.Fatal(err)
	}
	if !(multi.TranscodingDelay < single.TranscodingDelay) {
		t.Errorf("multi-PE delay %v not below single-PE %v",
			multi.TranscodingDelay, single.TranscodingDelay)
	}
	if !(multi.TranscodingDelay >= spec.TranscodingDelay) {
		t.Errorf("multi-PE delay %v below the unscheduled bound %v",
			multi.TranscodingDelay, spec.TranscodingDelay)
	}
	// The gap to the unscheduled model is the communication cost: per
	// subframe one bus transfer + ISR; bounded by a generous envelope.
	gap := multi.TranscodingDelay - spec.TranscodingDelay
	perSub := mp.BusArbDelay + sim.Time(mp.SubframeLen)*mp.BusPerByte + mp.ISRTime
	maxGap := perSub*sim.Time(2*mp.Subframes) + 20000
	if gap > maxGap {
		t.Errorf("communication gap %v exceeds envelope %v", gap, maxGap)
	}
}
