package vocoder

import (
	"fmt"
	"time"

	"repro/internal/iss"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/ukernel"
)

// firmware is the implementation model's application: encoder and decoder
// tasks in the ISS's assembly dialect, synchronized through kernel
// semaphores (0 = frame arrival from the ISR, 1 = coded subframes from
// encoder to decoder). Each subframe's DSP work is a calibrated busy loop
// of 4 cycles per iteration (addi 1 + cmpi 1 + bne 2); iteration counts
// and the frame count are patched into data memory before start.
const firmware = `
encoder:
	ld r5, nframes
e_frame:
	ldi r0, 0
	trap 4              ; wait for speech frame (ISR semaphore)
	ld r6, subframes
e_sub:
	ld r4, e_iters
e_busy:
	addi r4, -1
	cmpi r4, 0
	bne e_busy
	ldi r0, 1
	trap 5              ; coded subframe -> decoder
	addi r6, -1
	cmpi r6, 0
	bne e_sub
	addi r5, -1
	cmpi r5, 0
	bne e_frame
	trap 0

decoder:
	ld r5, nframes
	ldi r7, 0
d_frame:
	ld r6, subframes
d_sub:
	ldi r0, 1
	trap 4              ; wait for coded subframe
	ld r4, d_iters
d_busy:
	addi r4, -1
	cmpi r4, 0
	bne d_busy
	addi r6, -1
	cmpi r6, 0
	bne d_sub
	mov r0, r7
	trap 6              ; frame decoded: debug marker with frame index
	addi r7, 1
	addi r5, -1
	cmpi r5, 0
	bne d_frame
	trap 0

idle:
	jmp idle

.data
nframes:   .word 0
subframes: .word 0
e_iters:   .word 0
d_iters:   .word 0
`

// busyLoopCycles is the cost of one calibration-loop iteration.
const busyLoopCycles = 4

// FirmwareLines returns the size of the implementation model's assembly
// (for the Table 1 lines-of-code row).
func FirmwareLines() int {
	n := 0
	for _, c := range firmware {
		if c == '\n' {
			n++
		}
	}
	return n
}

// RunImpl executes the implementation model: the vocoder firmware on the
// ISS under the small custom kernel, co-simulated with the speech source
// as an SLDL process. skipIdle selects the idle-skipping co-simulation
// extension (the paper's ISS interprets idle loops, which is the default
// here too).
// An optional telemetry bus receives the frame markers (the ISS kernel
// has no scheduler observer hooks, so only markers are emitted).
func RunImpl(par Params, skipIdle bool, bus ...*telemetry.Bus) (Results, *trace.Recorder, error) {
	prog, err := iss.Assemble(firmware)
	if err != nil {
		return Results{}, nil, fmt.Errorf("vocoder: firmware: %v", err)
	}
	cpu, err := iss.NewCPU(prog, 8192)
	if err != nil {
		return Results{}, nil, err
	}
	kern, err := ukernel.New(cpu, prog, "idle")
	if err != nil {
		return Results{}, nil, err
	}
	m := ukernel.NewMachine(cpu, kern)
	m.SkipIdle = skipIdle

	// Patch workload parameters into data memory.
	patch := func(sym string, v int64) error {
		a, ok := prog.Symbols[sym]
		if !ok {
			return fmt.Errorf("vocoder: firmware lacks symbol %q", sym)
		}
		cpu.Mem[a] = v
		return nil
	}
	encIters := int64(par.EncSubTime / (m.CyclePeriod * busyLoopCycles))
	decIters := int64(par.DecSubTime / (m.CyclePeriod * busyLoopCycles))
	for sym, v := range map[string]int64{
		"nframes":   int64(par.Frames),
		"subframes": int64(par.Subframes),
		"e_iters":   encIters,
		"d_iters":   decIters,
	} {
		if err := patch(sym, v); err != nil {
			return Results{}, nil, err
		}
	}

	semFrame := kern.AddSem(0) // 0: speech frames
	kern.AddSem(0)             // 1: coded subframes
	encEntry, _ := prog.Entry("encoder")
	decEntry, _ := prog.Entry("decoder")
	kern.AddTask("encoder", encEntry, 8192, par.PrioEnc)
	kern.AddTask("decoder", decEntry, 7936, par.PrioDec)
	kern.SetDeviceIRQ(0, func() { kern.SemSignalFromISR(semFrame) })

	rec := trace.New("vocoder-impl")
	for _, b := range bus {
		rec.TeeMarkers(b)
	}
	kern.OnDebug = func(t *ukernel.Task, v int64) {
		rec.Marker(m.Now(), "frame-out", "decoder", v)
	}

	k := sim.NewKernel()
	defer k.Shutdown()
	kern.Start()
	m.Spawn(k, "DSP")
	src := k.Spawn("speech-in", func(p *sim.Proc) {
		for i := 0; i < par.Frames; i++ {
			rec.Marker(p.Now(), "frame-in", "speech-in", int64(i))
			m.RaiseIRQ(p, 0)
			p.WaitFor(par.FramePeriod)
		}
	})
	src.SetDaemon(true)

	start := time.Now()
	err = k.Run()
	if err == nil && cpu.Err() != nil {
		err = cpu.Err()
	}
	res := finish("implementation", par, rec, time.Since(start), k.Now(),
		kern.StatsSnapshot().ContextSwitches)
	res.Instructions = cpu.Insts
	res.KernelCycles = cpu.Cycles
	return res, rec, err
}
