package vocoder

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// expected per-frame compute of the Small() configuration.
func smallTimes() (encFrame, decFrame sim.Time) {
	p := Small()
	return sim.Time(p.Subframes) * p.EncSubTime, sim.Time(p.Subframes) * p.DecSubTime
}

func TestSpecModel(t *testing.T) {
	par := Small()
	res, rec, err := RunSpec(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delays) != par.Frames {
		t.Fatalf("transcoded %d frames, want %d", len(res.Delays), par.Frames)
	}
	// Subframe pipelining: decoding overlaps encoding, so the end-to-end
	// delay is encode(frame) + decode(one subframe) + ISR time.
	encF, _ := smallTimes()
	want := encF + par.DecSubTime + par.ISRTime
	if res.TranscodingDelay < want-100 || res.TranscodingDelay > want+2000 {
		t.Errorf("spec transcoding delay = %v, want ≈%v", res.TranscodingDelay, want)
	}
	if res.ContextSwitches != 0 {
		t.Errorf("spec context switches = %d, want 0", res.ContextSwitches)
	}
	// Encoder and decoder genuinely overlap in the unscheduled model.
	if ov := rec.Overlap("encoder", "decoder"); ov == 0 {
		t.Error("no encoder/decoder overlap in unscheduled model")
	}
}

func TestArchModel(t *testing.T) {
	par := Small()
	res, rec, err := RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delays) != par.Frames {
		t.Fatalf("transcoded %d frames, want %d", len(res.Delays), par.Frames)
	}
	encF, decF := smallTimes()
	want := encF + decF + par.ISRTime // fully serialized path
	if res.TranscodingDelay < want-100 || res.TranscodingDelay > want+5000 {
		t.Errorf("arch transcoding delay = %v, want ≈%v", res.TranscodingDelay, want)
	}
	// Two context switches per frame (encoder -> decoder -> encoder), as
	// in the paper's ≈2×163=327.
	lo, hi := uint64(2*par.Frames-2), uint64(2*par.Frames+3)
	if res.ContextSwitches < lo || res.ContextSwitches > hi {
		t.Errorf("context switches = %d, want ≈%d", res.ContextSwitches, 2*par.Frames)
	}
	if ov := rec.Overlap("encoder", "decoder"); ov != 0 {
		t.Errorf("encoder/decoder overlap = %v, want 0 (serialized)", ov)
	}
}

func TestImplModel(t *testing.T) {
	par := Small()
	res, _, err := RunImpl(par, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delays) != par.Frames {
		t.Fatalf("transcoded %d frames, want %d", len(res.Delays), par.Frames)
	}
	if res.Instructions == 0 || res.KernelCycles == 0 {
		t.Error("implementation model reports no instructions/cycles")
	}
	// The implementation's transcoding delay tracks the architecture
	// model within ~15% (Table 1: 12.5 ms arch vs 11.7 ms impl).
	archRes, _, err := RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.TranscodingDelay) / float64(archRes.TranscodingDelay)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("impl/arch delay ratio = %.3f (impl %v, arch %v), want within 15%%",
			ratio, res.TranscodingDelay, archRes.TranscodingDelay)
	}
	// Context switches match the architecture model closely (paper: 326
	// vs 327).
	diff := int64(res.ContextSwitches) - int64(archRes.ContextSwitches)
	if diff < -4 || diff > 4 {
		t.Errorf("impl context switches = %d vs arch %d, want within ±4",
			res.ContextSwitches, archRes.ContextSwitches)
	}
}

func TestTable1Ordering(t *testing.T) {
	// The qualitative Table 1 relations on one small run:
	// transcoding delay: unscheduled < architecture;
	// context switches: 0 / ≈2 per frame / ≈2 per frame.
	par := Small()
	spec, _, err := RunSpec(par)
	if err != nil {
		t.Fatal(err)
	}
	arch, _, err := RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	impl, _, err := RunImpl(par, false)
	if err != nil {
		t.Fatal(err)
	}
	if !(spec.TranscodingDelay < arch.TranscodingDelay) {
		t.Errorf("delay ordering violated: spec %v !< arch %v",
			spec.TranscodingDelay, arch.TranscodingDelay)
	}
	if spec.ContextSwitches != 0 {
		t.Errorf("spec switches = %d, want 0", spec.ContextSwitches)
	}
	if arch.ContextSwitches == 0 || impl.ContextSwitches == 0 {
		t.Errorf("arch/impl switches = %d/%d, want > 0",
			arch.ContextSwitches, impl.ContextSwitches)
	}
	// The ISS interprets every instruction: it must retire far more work
	// than the abstract models simulate events.
	if impl.Instructions < 10000 {
		t.Errorf("impl instructions = %d, implausibly few", impl.Instructions)
	}
}

func TestImplSkipIdleEquivalence(t *testing.T) {
	par := Small()
	slow, _, err := RunImpl(par, false)
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := RunImpl(par, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Delays) != len(fast.Delays) {
		t.Fatalf("frame counts differ: %d vs %d", len(slow.Delays), len(fast.Delays))
	}
	// Functional metrics agree; idle interpretation only adds instructions.
	d := slow.TranscodingDelay - fast.TranscodingDelay
	if d < -2000 || d > 2000 {
		t.Errorf("delays differ: %v vs %v", slow.TranscodingDelay, fast.TranscodingDelay)
	}
	if slow.Instructions <= fast.Instructions {
		t.Errorf("interpret-idle insts %d not > skip-idle %d", slow.Instructions, fast.Instructions)
	}
}

func TestArchSegmentedTimeModel(t *testing.T) {
	// The vocoder has no cross-priority interrupt preemption (the decoder
	// only runs when the encoder blocks), so the segmented model changes
	// the transcoding delay only marginally.
	par := Small()
	coarse, _, err := RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	seg, _, err := RunArch(par, core.PriorityPolicy{}, core.TimeModelSegmented)
	if err != nil {
		t.Fatal(err)
	}
	diff := coarse.TranscodingDelay - seg.TranscodingDelay
	if diff < -5000 || diff > 5000 {
		t.Errorf("coarse %v vs segmented %v differ unexpectedly",
			coarse.TranscodingDelay, seg.TranscodingDelay)
	}
}

func TestContextSwitchOverheadGrowsDelay(t *testing.T) {
	par := Small()
	free, _, err := RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	par.ContextSwitchOv = 5 * sim.Microsecond
	costed, _, err := RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if costed.TranscodingDelay <= free.TranscodingDelay {
		t.Errorf("delay with switch cost (%v) not above baseline (%v)",
			costed.TranscodingDelay, free.TranscodingDelay)
	}
}

func TestFirmwareLines(t *testing.T) {
	if n := FirmwareLines(); n < 40 {
		t.Errorf("firmware lines = %d, implausibly few", n)
	}
}

func TestDefaultParamsCalibration(t *testing.T) {
	p := Default()
	// Subframe times must divide exactly into 17ns × 4-cycle loop
	// iterations so the implementation model hits its budget precisely.
	if p.EncSubTime%(17*4) != 0 || p.DecSubTime%(17*4) != 0 {
		t.Errorf("subframe times %v/%v not divisible by 68ns", p.EncSubTime, p.DecSubTime)
	}
	// ~51% utilization.
	frame := sim.Time(p.Subframes) * (p.EncSubTime + p.DecSubTime)
	u := float64(frame) / float64(p.FramePeriod)
	if u < 0.45 || u > 0.60 {
		t.Errorf("utilization = %.2f, want ≈0.51", u)
	}
}
