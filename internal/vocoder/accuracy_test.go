package vocoder

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestImplCycleCalibration: the implementation model's busy cycles match
// the abstract delay annotations — total CPU cycles spent in the busy
// loops equal the sum the architecture model charges via TimeWait, within
// the kernel-overhead margin.
func TestImplCycleCalibration(t *testing.T) {
	par := Small()
	res, _, err := RunImpl(par, true)
	if err != nil {
		t.Fatal(err)
	}
	// Modeled compute: frames × subframes × (enc + dec subframe times).
	modeled := sim.Time(par.Frames*par.Subframes) * (par.EncSubTime + par.DecSubTime)
	modeledCycles := uint64(modeled / 17) // DefaultCyclePeriod
	// Total CPU cycles = compute + kernel services + idle-warp; the
	// compute share must dominate and never undercut the model.
	if res.KernelCycles < modeledCycles {
		t.Errorf("total cycles %d below modeled compute %d", res.KernelCycles, modeledCycles)
	}
	// Per-frame transcoding delays are stable (no drift): max-min small.
	min, max := trace.MinMax(res.Delays)
	if max-min > 200*sim.Microsecond {
		t.Errorf("delay jitter %v (min %v, max %v), want < 200us", max-min, min, max)
	}
}

// TestArchDelaysDeterministic: repeated architecture runs produce
// identical per-frame delays (bit-reproducible simulation).
func TestArchDelaysDeterministic(t *testing.T) {
	par := Small()
	run := func() []sim.Time {
		res, _, err := RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse)
		if err != nil {
			t.Fatal(err)
		}
		return res.Delays
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSpecDelaysAllEqual: in the unscheduled model with headroom, every
// frame's transcoding delay is identical — there is no scheduling noise
// to accumulate.
func TestSpecDelaysAllEqual(t *testing.T) {
	res, _, err := RunSpec(Small())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Delays); i++ {
		if res.Delays[i] != res.Delays[0] {
			t.Fatalf("delay %d = %v differs from %v", i, res.Delays[i], res.Delays[0])
		}
	}
}
