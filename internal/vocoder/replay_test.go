package vocoder

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestRunArchReplayDeterminism: two runs of the vocoder architecture
// model with identical parameters must produce byte-identical traces and
// identical simulated metrics (host wall time excluded) — the model-level
// replay contract backing the simcheck determinism oracle.
func TestRunArchReplayDeterminism(t *testing.T) {
	for _, tm := range []core.TimeModel{core.TimeModelCoarse, core.TimeModelSegmented} {
		run := func() (Results, []byte) {
			res, rec, err := RunArch(Small(), core.PriorityPolicy{}, tm)
			if err != nil {
				t.Fatal(err)
			}
			var b bytes.Buffer
			if err := rec.EventList(&b); err != nil {
				t.Fatal(err)
			}
			return res, b.Bytes()
		}
		r1, t1 := run()
		r2, t2 := run()
		if !bytes.Equal(t1, t2) {
			t.Errorf("time model %v: two runs produced different traces (%d vs %d bytes)",
				tm, len(t1), len(t2))
		}
		if len(t1) == 0 {
			t.Errorf("time model %v: empty trace", tm)
		}
		r1.Wall, r2.Wall = 0, 0 // host time is the only legitimately varying field
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("time model %v: results differ:\n%+v\n%+v", tm, r1, r2)
		}
	}
}
