// Package vocoder implements the paper's evaluation application: a voice
// codec for mobile phones (the GSM vocoder of Table 1) with one encoding
// and one decoding task running in software, operated in back-to-back
// transcoding mode. The speech DSP math is replaced by calibrated compute
// (see DESIGN.md's substitution table) — Table 1's metrics depend on task
// structure, frame timing and scheduling, not on the arithmetic.
//
// The codec follows the GSM EFR frame structure: a 160-sample speech
// frame arrives every 20 ms and is processed in four subframes. The
// decoder consumes coded subframes as they are produced, so in the
// unscheduled specification model decoding overlaps the encoding of
// subsequent subframes, while the serialized architecture and
// implementation models stretch the transcoding path — reproducing the
// paper's unscheduled < implementation ≈ architecture delay ordering.
//
// Three models are provided:
//
//   - RunSpec: unscheduled specification model (paper Figure 2(a)),
//   - RunArch: RTOS-model-based architecture model (Figure 2(b)),
//   - RunImpl: implementation model — assembly on the ISS under the small
//     custom kernel (Figure 2(c)).
package vocoder

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/personality"
	"repro/internal/refine"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Params describes the vocoder workload.
type Params struct {
	Frames          int      // number of speech frames to transcode
	FramePeriod     sim.Time // frame arrival period (20 ms)
	Subframes       int      // subframes per frame (EFR: 4)
	EncSubTime      sim.Time // encoder compute per subframe
	DecSubTime      sim.Time // decoder compute per subframe
	ISRTime         sim.Time // frame-interrupt service time
	PrioEnc         int      // encoder task priority
	PrioDec         int      // decoder task priority
	ContextSwitchOv sim.Time // modeled context-switch cost in the arch model
}

// Default returns the Table 1 configuration: 163 frames (the paper's
// architecture model logs 327 context switches ≈ 2 per frame over 163
// frames), 20 ms frames, four subframes, and compute times calibrated so
// that encoder+decoder utilize ~51% of the processor — and so that the
// subframe times divide exactly into cycles of the implementation model's
// 17 ns clock (1487500 = 68·21875, 1062500 = 68·15625).
func Default() Params {
	return Params{
		Frames:      163,
		FramePeriod: 20 * sim.Millisecond,
		Subframes:   4,
		EncSubTime:  1487500, // 1.4875 ms → 5.95 ms per frame
		DecSubTime:  1062500, // 1.0625 ms → 4.25 ms per frame
		ISRTime:     2 * sim.Microsecond,
		PrioEnc:     1,
		PrioDec:     2,
	}
}

// Small returns a reduced configuration for unit tests: same structure,
// two orders of magnitude less compute.
func Small() Params {
	p := Default()
	p.Frames = 8
	p.FramePeriod = 200 * sim.Microsecond
	p.EncSubTime = 13600 // 68·200: keeps the exact cycle divisibility
	p.DecSubTime = 10200 // 68·150
	p.ISRTime = 500
	return p
}

// Results holds the Table 1 metrics for one model run.
type Results struct {
	Model            string
	Frames           int
	SimEnd           sim.Time      // simulated time at completion
	Wall             time.Duration // host execution time (Table 1 row 2)
	ContextSwitches  uint64        // Table 1 row 3
	TranscodingDelay sim.Time      // average frame-in → frame-out (row 4)
	Delays           []sim.Time    // per-frame transcoding delays
	Instructions     uint64        // retired instructions (implementation model)
	KernelCycles     uint64        // total CPU cycles (implementation model)
}

func (r Results) String() string {
	return fmt.Sprintf("%-12s frames=%d simEnd=%v wall=%v ctxSwitches=%d transcodingDelay=%v",
		r.Model, r.Frames, r.SimEnd, r.Wall, r.ContextSwitches, r.TranscodingDelay)
}

// specQueue adapts a factory-built queue to the personality.Queue shape,
// so the behavior tree builds identically for the specification model
// (no RTOS, no personality) and every RTOS personality.
type specQueue struct{ q *channel.Queue[int64] }

func (w specQueue) Send(p *sim.Proc, v int64) { w.q.Send(p, v) }
func (w specQueue) Recv(p *sim.Proc) int64    { return w.q.Recv(p) }

// build constructs the codec's behavior tree, frame interrupt and
// channels on the given PE; shared between the specification and
// architecture models. rt selects the RTOS personality whose native
// channel kinds carry the frame semaphore and the coded-subframe queue;
// nil (the specification model) uses the PE factory's spec-level
// channels, which the personality interface subsumes.
func build(pe *arch.PE, rec *trace.Recorder, par Params, rt personality.Runtime) *refine.Behavior {
	var frameSem personality.Semaphore
	var coded personality.Queue
	if rt != nil {
		frameSem = rt.NewSemaphore("frame.sem", 0)
		coded = rt.NewQueue("coded", par.Subframes*2)
	} else {
		f := pe.Factory()
		frameSem = channel.NewSemaphore(f, "frame.sem", 0)
		coded = specQueue{q: channel.NewQueue[int64](f, "coded", par.Subframes*2)}
	}

	irq := pe.AttachISR("frame.irq", par.ISRTime, func(p *sim.Proc) {
		frameSem.Release(p)
	})
	// Speech source: one frame every FramePeriod, starting at t=0, via the
	// PE's frame interrupt.
	src := pe.Kernel().Spawn("speech-in", func(p *sim.Proc) {
		for i := 0; i < par.Frames; i++ {
			rec.Marker(p.Now(), "frame-in", "speech-in", int64(i))
			irq.Raise(p)
			p.WaitFor(par.FramePeriod)
		}
	})
	src.SetDaemon(true)

	encoder := refine.Leaf("encoder", func(x refine.Exec) {
		p := x.Proc()
		for i := 0; i < par.Frames; i++ {
			frameSem.Acquire(p)
			for s := 0; s < par.Subframes; s++ {
				x.Delay(par.EncSubTime) // LPC/LTP/codebook search share
				coded.Send(p, int64(i*par.Subframes+s))
			}
		}
	})
	decoder := refine.Leaf("decoder", func(x refine.Exec) {
		p := x.Proc()
		for i := 0; i < par.Frames; i++ {
			for s := 0; s < par.Subframes; s++ {
				_ = coded.Recv(p)
				x.Delay(par.DecSubTime) // synthesis filter share
			}
			x.Marker("frame-out", int64(i))
		}
	})
	return refine.Seq("vocoder", refine.Par("codec", encoder, decoder))
}

// finish derives the Results metrics from a completed run's trace.
func finish(model string, par Params, rec *trace.Recorder, wall time.Duration, end sim.Time, cs uint64) Results {
	res := Results{
		Model:           model,
		Frames:          par.Frames,
		SimEnd:          end,
		Wall:            wall,
		ContextSwitches: cs,
		Delays:          rec.Latencies("frame-in", "frame-out"),
	}
	if len(res.Delays) > 0 {
		var sum sim.Time
		for _, d := range res.Delays {
			sum += d
		}
		res.TranscodingDelay = sum / sim.Time(len(res.Delays))
	}
	return res
}

// RunSpec executes the unscheduled specification model. An optional
// telemetry bus receives the frame markers.
func RunSpec(par Params, bus ...*telemetry.Bus) (Results, *trace.Recorder, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	pe := arch.NewHWPE(k, "DSP")
	rec := trace.New("vocoder-spec")
	for _, b := range bus {
		rec.TeeMarkers(b)
	}
	root := build(pe, rec, par, nil)
	refine.RunUnscheduled(k, rec, root)
	start := time.Now()
	err := k.Run()
	res := finish("unscheduled", par, rec, time.Since(start), k.Now(), 0)
	return res, rec, err
}

// RunArch executes the architecture model: the codec's behaviors refined
// into tasks on the abstract RTOS model under the generic (paper-model)
// personality. An optional telemetry bus is attached to the RTOS
// instance and receives the frame markers.
func RunArch(par Params, policy core.Policy, tm core.TimeModel, bus ...*telemetry.Bus) (Results, *trace.Recorder, error) {
	return RunArchPersonality(par, policy, tm, personality.Generic, bus...)
}

// RunArchPersonality is RunArch with an explicit RTOS personality: the
// codec's frame semaphore and coded-subframe queue take the selected
// kernel's native forms (ITRON direct-handoff semaphore and mailbox,
// OSEK-COM queued messages), while the task structure, priorities and
// compute stay identical — the paper's RTOS-library axis on the
// evaluation application.
func RunArchPersonality(par Params, policy core.Policy, tm core.TimeModel, kind string, bus ...*telemetry.Bus) (Results, *trace.Recorder, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	var opts []core.Option
	opts = append(opts, core.WithTimeModel(tm))
	if par.ContextSwitchOv > 0 {
		opts = append(opts, core.WithContextSwitchCost(par.ContextSwitchOv))
	}
	pe := arch.NewSWPE(k, "DSP", policy, opts...)
	rec := trace.New("vocoder-arch")
	rec.Attach(pe.OS())
	for _, b := range bus {
		b.Attach(pe.OS())
		rec.TeeMarkers(b)
	}
	rt, err := personality.New(kind, pe.OS())
	if err != nil {
		return Results{}, rec, err
	}
	root := build(pe, rec, par, rt)
	refine.RunArchitecture(k, pe.OS(), rec, root, refine.Mapping{
		"vocoder": {Priority: 0},
		"encoder": {Priority: par.PrioEnc},
		"decoder": {Priority: par.PrioDec},
	})
	pe.OS().Start(nil)
	start := time.Now()
	err = k.Run()
	if d := pe.OS().Diagnosis(); err == nil && d != nil {
		// The always-armed runtime diagnosis (deadlock/stall/starvation)
		// outranks a silently wrong result.
		err = d
	}
	res := finish("architecture", par, rec, time.Since(start), k.Now(),
		pe.OS().StatsSnapshot().ContextSwitches)
	return res, rec, err
}
