package fault

import (
	"bytes"
	"fmt"

	"repro/internal/runner"
	"repro/internal/simcheck"
	"repro/internal/telemetry"
)

// Campaign is a fault-injection sweep: every seed's generated scenario is
// run under every plan, fanned across workers. Results are delivered in
// submission order (seed-major, plan-minor), so the diagnostic stream and
// the merged report are byte-identical regardless of Jobs.
type Campaign struct {
	Seeds []int64
	Plans []*Plan
	Opt   Options
	Jobs  int // concurrent workers (0/1: sequential)
}

// Violation is a campaign-level detector failure: a plan that must stay
// clean produced a diagnosis (a false positive), or a run died outside
// the structured-diagnosis path.
type Violation struct {
	Seed int64
	Plan string
	Msg  string
}

func (v Violation) String() string {
	return fmt.Sprintf("seed %d plan %s: %s", v.Seed, v.Plan, v.Msg)
}

// CampaignResult aggregates one campaign.
type CampaignResult struct {
	Results    []*Result // submission order: for each seed, each plan
	Report     *telemetry.Report
	Runs       int
	Detected   int // runs with a diagnosis under a fault-expecting plan
	Clean      int // runs with no diagnosis
	Injected   int // total faults injected
	Violations []Violation
}

// Run executes the campaign. Scenario generation, injection and diagnosis
// are all seed-deterministic, and runner.Map returns results in
// submission order, so the outcome is independent of worker count.
func (c *Campaign) Run() *CampaignResult {
	nPlans := len(c.Plans)
	n := len(c.Seeds) * nPlans
	out := &CampaignResult{Runs: n}
	results := runner.Map(n, runner.Options{Jobs: c.Jobs}, func(i int) (*Result, error) {
		seed := c.Seeds[i/nPlans]
		plan := c.Plans[i%nPlans]
		return RunScenario(simcheck.Generate(seed), plan, seed, c.Opt), nil
	})
	reports := make([]*telemetry.Report, 0, n)
	for i, r := range results {
		if r.Err != nil {
			// runner-level failure (worker panic): not a diagnosis but an
			// infrastructure bug — surface it as a violation.
			out.Violations = append(out.Violations, Violation{
				Seed: c.Seeds[i/nPlans], Plan: c.Plans[i%nPlans].Name,
				Msg: fmt.Sprintf("runner: %v", r.Err),
			})
			continue
		}
		res := r.Value
		out.Results = append(out.Results, res)
		out.Injected += res.Injected
		reports = append(reports, res.Report)
		plan := c.Plans[i%nPlans]
		d := res.Diagnosed()
		switch {
		case d == nil:
			out.Clean++
		case plan.ExpectClean:
			out.Violations = append(out.Violations, Violation{
				Seed: res.Seed, Plan: res.Plan,
				Msg: fmt.Sprintf("false positive: %v", d),
			})
		default:
			out.Detected++
		}
	}
	out.Report = telemetry.Merge(reports...)
	return out
}

// DiagnosticStream concatenates every run's stream in submission order —
// the campaign's canonical byte form for replay comparison.
func (cr *CampaignResult) DiagnosticStream() []byte {
	var b bytes.Buffer
	for _, r := range cr.Results {
		b.Write(r.DiagnosticStream())
	}
	return b.Bytes()
}

// Summary renders the campaign's one-paragraph outcome.
func (cr *CampaignResult) Summary() string {
	return fmt.Sprintf("%d runs: %d detected, %d clean, %d injected faults, %d violations",
		cr.Runs, cr.Detected, cr.Clean, cr.Injected, len(cr.Violations))
}

// DeadlockScenario returns the canonical seeded-deadlock pair: a valid
// scenario plus the plan whose lost interrupts wedge it into a three-task
// semaphore ring. Tasks A, B and C each take one ring semaphore (s0, s1,
// s2, initial count 1), park on a gate semaphore until a gate IRQ at t=30
// wakes all three, then request the next ring semaphore — which its
// neighbour holds. The refill IRQs that would break the ring are covered
// for Scenario.Validate but dropped by the plan, so the wait-for graph
// closes into the exact cycle A→s1(B)→s2(C)→s0(A) the detector must
// name. It is the must-detect gate scripts/check.sh runs.
func DeadlockScenario() (*simcheck.Scenario, *Plan) {
	ring := func(name, hold, gate, want string, prio int) simcheck.TaskSpec {
		return simcheck.TaskSpec{Name: name, Type: "aperiodic", Prio: prio, Ops: []simcheck.Op{
			{Kind: simcheck.OpAcquire, Ch: hold},
			{Kind: simcheck.OpAcquire, Ch: gate},
			{Kind: simcheck.OpAcquire, Ch: want},
		}}
	}
	s := &simcheck.Scenario{
		Seed: -1,
		Tasks: []simcheck.TaskSpec{
			ring("A", "s0", "gA", "s1", 1),
			ring("B", "s1", "gB", "s2", 2),
			ring("C", "s2", "gC", "s0", 3),
		},
		Channels: []simcheck.ChannelSpec{
			{Name: "s0", Kind: "semaphore", Arg: 1},
			{Name: "s1", Kind: "semaphore", Arg: 1},
			{Name: "s2", Kind: "semaphore", Arg: 1},
			{Name: "gA", Kind: "semaphore"},
			{Name: "gB", Kind: "semaphore"},
			{Name: "gC", Kind: "semaphore"},
		},
		IRQs: []simcheck.IRQSpec{
			{Name: "gateA", Sem: "gA", At: 30, Count: 1},
			{Name: "gateB", Sem: "gB", At: 30, Count: 1},
			{Name: "gateC", Sem: "gC", At: 30, Count: 1},
			{Name: "refill0", Sem: "s0", At: 100, Count: 1},
			{Name: "refill1", Sem: "s1", At: 100, Count: 1},
			{Name: "refill2", Sem: "s2", At: 100, Count: 1},
		},
	}
	if err := s.Validate(); err != nil {
		panic("fault: deadlock scenario invalid: " + err.Error())
	}
	return s, &Plan{Name: "seeded-deadlock",
		DropIRQ: &DropIRQ{IRQs: []string{"refill0", "refill1", "refill2"}, Prob: 1}}
}
