package fault

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simcheck"
	"repro/internal/telemetry"
)

// TestPlanRoundTrip: every built-in plan survives the JSON reproducer
// format unchanged.
func TestPlanRoundTrip(t *testing.T) {
	_, seeded := DeadlockScenario()
	for _, p := range append(DefaultPlans(), seeded) {
		data := p.MarshalIndent()
		q, err := ParsePlan(data)
		if err != nil {
			t.Fatalf("plan %s: %v", p.Name, err)
		}
		if !bytes.Equal(data, q.MarshalIndent()) {
			t.Errorf("plan %s did not round-trip:\n%s\nvs\n%s", p.Name, data, q.MarshalIndent())
		}
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{},
		{Name: "x", ExecScale: &ExecScale{Percent: 0, Prob: 0.5}},
		{Name: "x", ExecScale: &ExecScale{Percent: 100, Prob: 1.5}},
		{Name: "x", Jitter: &Jitter{Max: -1}},
		{Name: "x", DropIRQ: &DropIRQ{Prob: -0.1}},
		{Name: "x", Spurious: []Spurious{{Sem: "", Count: 1}}},
		{Name: "x", Spurious: []Spurious{{Sem: "s", Count: 2}}}, // no spacing
		{Name: "x", Stalls: []Stall{{At: 0, Dur: 0}}},
		{Name: "x", PrioFlips: []PrioFlip{{Task: ""}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("plan %d validated but should not have", i)
		}
	}
}

// TestSeededDeadlockDetected: the canonical lost-interrupt scenario must
// be diagnosed as a deadlock naming the exact three-task wait-for cycle,
// well before the simulation horizon.
func TestSeededDeadlockDetected(t *testing.T) {
	s, plan := DeadlockScenario()
	res := RunScenario(s, plan, s.Seed, Options{})
	d := res.Diagnosed()
	if d == nil {
		t.Fatalf("no diagnosis; stream:\n%s", res.DiagnosticStream())
	}
	if d.Kind != core.DiagDeadlock {
		t.Fatalf("diagnosis kind = %v, want deadlock\n%v", d.Kind, d)
	}
	want := []string{
		"A waits on semaphore:s1 held by B",
		"B waits on semaphore:s2 held by C",
		"C waits on semaphore:s0 held by A",
	}
	if len(d.Cycle) != len(want) {
		t.Fatalf("cycle = %v, want %d edges", d.Cycle, len(want))
	}
	for i, e := range d.Cycle {
		if e.String() != want[i] {
			t.Errorf("cycle[%d] = %q, want %q", i, e, want[i])
		}
	}
	if d.At >= s.Horizon() {
		t.Errorf("diagnosed at %v, not within the horizon %v", d.At, s.Horizon())
	}
	var de *core.DiagnosisError
	if !errors.As(res.Err, &de) {
		t.Errorf("run error = %v, want the structured diagnosis", res.Err)
	}
	// The diagnosis must also surface on the telemetry stream, one
	// fault.deadlock event per cycle edge plus the drop injections.
	var drops, deadlocks int
	for _, e := range res.Events {
		switch e.Kind {
		case telemetry.KindFaultInject:
			drops++
		case telemetry.KindFaultDeadlock:
			deadlocks++
		}
	}
	if drops != 3 || deadlocks != 3 {
		t.Errorf("events: %d drops and %d deadlock edges, want 3 and 3\n%s",
			drops, deadlocks, res.DiagnosticStream())
	}
}

// TestSeededDeadlockAcrossPolicies: the cycle does not depend on the
// scheduling discipline — every uniprocessor policy and both time models
// must reach and name the same deadlock.
func TestSeededDeadlockAcrossPolicies(t *testing.T) {
	s, plan := DeadlockScenario()
	for _, tm := range []string{"coarse", "segmented"} {
		for _, pol := range []string{"priority", "fcfs", "rr", "edf", "rm"} {
			res := RunScenario(s, plan, s.Seed, Options{Policy: pol, TimeModel: tm})
			d := res.Diagnosed()
			if d == nil || d.Kind != core.DiagDeadlock {
				t.Errorf("%s/%s: diagnosis = %v, want deadlock", pol, tm, d)
			}
		}
	}
}

// TestCleanPlansStayClean: the detector must not produce false positives
// — generated (deadlock-free) scenarios under the fault-free and benign
// plans finish without any diagnosis.
func TestCleanPlansStayClean(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		s := simcheck.Generate(seed)
		for _, plan := range DefaultPlans() {
			if !plan.ExpectClean {
				continue
			}
			res := RunScenario(s, plan, seed, Options{})
			if d := res.Diagnosed(); d != nil {
				t.Errorf("seed %d plan %s: false positive %v", seed, plan.Name, d)
			}
			if res.Err != nil {
				t.Errorf("seed %d plan %s: run error %v", seed, plan.Name, res.Err)
			}
		}
	}
}

// TestInjectorsFire: overrun, jitter and drop injectors actually perturb
// a scenario that exposes them, and the injections appear on the stream.
func TestInjectorsFire(t *testing.T) {
	s := &simcheck.Scenario{
		Seed: 7,
		Tasks: []simcheck.TaskSpec{
			{Name: "worker", Type: "aperiodic", Prio: 1, Start: 5, Ops: []simcheck.Op{
				{Kind: simcheck.OpDelay, Dur: 100},
				{Kind: simcheck.OpAcquire, Ch: "irqsem"},
				{Kind: simcheck.OpDelay, Dur: 100},
			}},
		},
		Channels: []simcheck.ChannelSpec{{Name: "irqsem", Kind: "semaphore"}},
		IRQs:     []simcheck.IRQSpec{{Name: "bus", Sem: "irqsem", At: 50, Count: 1}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	plan := &Plan{
		Name:      "mixed",
		ExecScale: &ExecScale{Percent: 150, Prob: 1},
		Jitter:    &Jitter{Max: 20},
		DropIRQ:   &DropIRQ{Prob: 1},
	}
	res := RunScenario(s, plan, s.Seed, Options{})
	stream := string(res.DiagnosticStream())
	for _, injector := range []string{"exec-scale", "drop-irq"} {
		if !strings.Contains(stream, injector) {
			t.Errorf("stream lacks %s injection:\n%s", injector, stream)
		}
	}
	// With the only release dropped, the worker wedges on the semaphore
	// and the run must end in a structured stall diagnosis, not a hang.
	d := res.Diagnosed()
	if d == nil {
		t.Fatalf("no diagnosis for the dropped release:\n%s", stream)
	}
	if len(d.Blocked) != 1 || d.Blocked[0].Resource != "semaphore:irqsem" {
		t.Errorf("blocked = %v, want worker on semaphore:irqsem", d.Blocked)
	}
}

// TestStallSpuriousPrioFlip: the remaining injectors — transient PE
// stalls, spurious releases and priority flips — fire and the run stays
// structurally sound (clean drain, no diagnosis; the scenario absorbs
// all three).
func TestStallSpuriousPrioFlip(t *testing.T) {
	s := &simcheck.Scenario{
		Seed: 9,
		Tasks: []simcheck.TaskSpec{
			{Name: "loop", Type: "periodic", Prio: 1, Period: 100, Cycles: 4, Segments: []sim.Time{10, 10}},
			{Name: "bg", Type: "aperiodic", Prio: 5, Start: 0, Ops: []simcheck.Op{
				{Kind: simcheck.OpDelay, Dur: 40},
				{Kind: simcheck.OpAcquire, Ch: "sig"},
			}},
		},
		Channels: []simcheck.ChannelSpec{{Name: "sig", Kind: "semaphore", Arg: 1}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	plan := &Plan{
		Name:      "chaos",
		Spurious:  []Spurious{{Sem: "sig", At: 60, Every: 30, Count: 2}},
		Stalls:    []Stall{{At: 25, Dur: 15}},
		PrioFlips: []PrioFlip{{Task: "bg", At: 50, Prio: 0}},
	}
	res := RunScenario(s, plan, s.Seed, Options{})
	if res.Err != nil {
		t.Fatalf("run error: %v\n%s", res.Err, res.DiagnosticStream())
	}
	if d := res.Diagnosed(); d != nil {
		t.Fatalf("unexpected diagnosis: %v", d)
	}
	stream := string(res.DiagnosticStream())
	for _, injector := range []string{"stall", "spurious", "prio-flip"} {
		if !strings.Contains(stream, injector) {
			t.Errorf("stream lacks %s injection:\n%s", injector, stream)
		}
	}
	if res.Injected != 4 { // 1 stall + 2 spurious + 1 flip
		t.Errorf("Injected = %d, want 4\n%s", res.Injected, stream)
	}
}

// TestCampaignDeterministicAcrossJobs: the acceptance contract — the same
// seeds × plans produce a byte-identical diagnostic stream and identical
// counters whether the campaign runs on 1 worker or 8.
func TestCampaignDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) *CampaignResult {
		c := &Campaign{
			Seeds: []int64{1, 2, 3, 4, 5, 6},
			Plans: DefaultPlans(),
			Jobs:  jobs,
		}
		return c.Run()
	}
	one, eight := run(1), run(8)
	if len(one.Violations) > 0 {
		t.Fatalf("violations: %v", one.Violations)
	}
	if one.Summary() != eight.Summary() {
		t.Errorf("summaries differ: %q vs %q", one.Summary(), eight.Summary())
	}
	a, b := one.DiagnosticStream(), eight.DiagnosticStream()
	if !bytes.Equal(a, b) {
		t.Fatalf("diagnostic streams differ between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", a, b)
	}
	if one.Runs != 36 || one.Detected == 0 || one.Clean == 0 {
		t.Errorf("campaign shape off: %s", one.Summary())
	}
	// The merged report must cover the PE of every run.
	if one.Report == nil || len(one.Report.PEs) == 0 {
		t.Errorf("campaign report empty")
	}
}

// TestEngineStreamIndependence: different plan names draw independent
// injection streams from the same seed (the seed ^ hash(name) folding).
func TestEngineStreamIndependence(t *testing.T) {
	a := rng{s: 42 ^ hashName("plan-a")}
	b := rng{s: 42 ^ hashName("plan-b")}
	same := 0
	for i := 0; i < 64; i++ {
		if a.next() == b.next() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("streams for different plan names collide (%d/64 draws equal)", same)
	}
}
