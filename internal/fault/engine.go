package fault

import (
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// rng is a splitmix64 stream — tiny, seedable, and identical on every
// platform, which is all the injection layer needs. Draw order is fixed
// by the single-threaded simulation, so (seed, plan) fully determines
// every injection decision.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// timeIn returns a uniform sim.Time in [0, max].
func (r *rng) timeIn(max sim.Time) sim.Time {
	if max <= 0 {
		return 0
	}
	return sim.Time(r.next() % uint64(max+1))
}

// hashName is FNV-1a over the plan name, folded into the seed so the same
// scenario draws independent streams under different plans.
func hashName(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

// Engine makes the injection decisions for one run: it binds a plan to a
// deterministic random stream and records every injection as a
// fault.inject telemetry event. An Engine belongs to exactly one kernel
// run; it must not be shared across concurrent simulations.
type Engine struct {
	plan     *Plan
	rng      rng
	k        *sim.Kernel
	bus      *telemetry.Bus
	pe       string
	injected int
}

// NewEngine creates the engine for (plan, seed) emitting injection events
// on bus under PE name pe.
func NewEngine(plan *Plan, seed int64, k *sim.Kernel, bus *telemetry.Bus, pe string) *Engine {
	return &Engine{
		plan: plan,
		rng:  rng{s: uint64(seed) ^ hashName(plan.Name)},
		k:    k,
		bus:  bus,
		pe:   pe,
	}
}

// Injected returns how many faults the engine has injected so far.
func (e *Engine) Injected() int { return e.injected }

func (e *Engine) emit(injector, subject string, arg int64) {
	e.injected++
	e.bus.Emit(telemetry.Event{At: e.k.Now(), Kind: telemetry.KindFaultInject,
		PE: e.pe, Other: injector, Task: subject, Arg: arg})
}

// match reports whether name is selected by the list (empty = all).
func match(list []string, name string) bool {
	if len(list) == 0 {
		return true
	}
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

// ScaleDelay applies the exec-time injector to one modeled delay of task
// and returns the (possibly perturbed) duration.
func (e *Engine) ScaleDelay(task string, d sim.Time) sim.Time {
	es := e.plan.ExecScale
	if es == nil || d <= 0 || !match(es.Tasks, task) {
		return d
	}
	if e.rng.float() >= es.Prob {
		return d
	}
	nd := d * sim.Time(es.Percent) / 100
	if nd <= 0 {
		nd = 1 // an underrun still models some execution
	}
	e.emit("exec-scale", task, int64(es.Percent))
	return nd
}

// ReleaseJitter returns the extra activation delay for task (or IRQ
// source) name. The event is recorded at injection-decision time — before
// the victim waits — so the stream shows the perturbation ahead of its
// effect.
func (e *Engine) ReleaseJitter(name string) sim.Time {
	j := e.plan.Jitter
	if j == nil || j.Max <= 0 || !match(j.Tasks, name) {
		return 0
	}
	d := e.rng.timeIn(j.Max)
	if d == 0 {
		return 0
	}
	e.emit("jitter", name, int64(d))
	return d
}

// DropIRQ reports whether this occurrence of the named interrupt loses
// its release.
func (e *Engine) DropIRQ(name string) bool {
	d := e.plan.DropIRQ
	if d == nil || !match(d.IRQs, name) {
		return false
	}
	if e.rng.float() >= d.Prob {
		return false
	}
	e.emit("drop-irq", name, 1)
	return true
}

// NoteSpurious records one spurious release of sem.
func (e *Engine) NoteSpurious(sem string) { e.emit("spurious", sem, 1) }

// NoteStall records the start of a transient PE stall of duration d.
func (e *Engine) NoteStall(d sim.Time) { e.emit("stall", e.pe, int64(d)) }

// NotePrioFlip records a forced priority change on task to prio.
func (e *Engine) NotePrioFlip(task string, prio int) { e.emit("prio-flip", task, int64(prio)) }
