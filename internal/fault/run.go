package fault

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/personality"
	"repro/internal/sim"
	"repro/internal/simcheck"
	"repro/internal/telemetry"
)

// stallPrio ranks transient PE stalls above every application task under
// priority-driven policies; SetDeadline(0) does the same under EDF. Under
// RM the dispatcher re-derives priorities at Start (stalls then rank
// first among aperiodic tasks only), and non-preemptive FCFS delays the
// stall to the next scheduling point — both faithful to how a bus stall
// would actually bite under those disciplines.
const stallPrio = -1 << 30

// Options selects the scheduling configuration a fault run executes under.
type Options struct {
	Policy    string   // core policy name (default "priority")
	TimeModel string   // "coarse" or "segmented" (default "segmented")
	Quantum   sim.Time // round-robin slice (default 25µs, "rr" only)
	Watchdog  sim.Time // starvation watchdog window (0: derived from the scenario)
	Horizon   sim.Time // simulation end (0: derived from scenario + plan)

	// Personality selects the RTOS service surface the scenario's tasks
	// run against ("", "generic", "itron", "osek"). Faults are injected
	// below the personality layer, so the same plan wedges (or doesn't)
	// whatever kernel API sits on top — the must-detect deadlock gate is
	// pinned under both generic and itron in robustness_test.go.
	Personality string
}

func (o Options) withDefaults() Options {
	if o.Policy == "" {
		o.Policy = "priority"
	}
	if o.TimeModel == "" {
		o.TimeModel = "segmented"
	}
	if o.Quantum <= 0 {
		o.Quantum = 25 * sim.Microsecond
	}
	return o
}

func (o Options) String() string {
	s := o.Policy + "/" + o.TimeModel
	if o.Personality != "" {
		s += "/" + o.Personality
	}
	return s
}

// Result is one (scenario, plan) fault run: what was injected, how the
// run ended, and what the diagnosis layer concluded.
type Result struct {
	Seed     int64
	Plan     string
	Opt      Options
	Err      error    // simulation error (diagnoses surface here via Kernel.Fail)
	End      sim.Time // simulated end time
	Injected int      // faults injected

	// Diag is the diagnosis recorded while the run executed (watchdog or
	// kernel-stall path); PostMortem is one found only by inspecting the
	// final state at the horizon. At most one of each; Diagnosed() merges.
	Diag       *core.DiagnosisError
	PostMortem *core.DiagnosisError

	Unfinished []string          // tasks still alive at the end
	Events     []telemetry.Event // fault.* events in emission order
	Report     *telemetry.Report // full metrics snapshot of the run
}

// Diagnosed returns the run's diagnosis — recorded or post-mortem — or
// nil for a clean run.
func (r *Result) Diagnosed() *core.DiagnosisError {
	if r.Diag != nil {
		return r.Diag
	}
	return r.PostMortem
}

// DiagnosticStream renders the run as its canonical byte form: header,
// every fault.* event, the diagnosis and the end-state footer. Identical
// (scenario, plan, options) runs must produce identical bytes — the
// campaign determinism contract.
func (r *Result) DiagnosticStream() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== seed %d plan %s %s\n", r.Seed, r.Plan, r.Opt)
	for _, e := range r.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	switch {
	case r.Diag != nil:
		fmt.Fprintf(&b, "diagnosis: %v\n", r.Diag)
	case r.PostMortem != nil:
		fmt.Fprintf(&b, "post-mortem: %v\n", r.PostMortem)
	default:
		b.WriteString("diagnosis: clean\n")
	}
	fmt.Fprintf(&b, "end %v injected %d unfinished %d\n", r.End, r.Injected, len(r.Unfinished))
	return b.Bytes()
}

// horizonFor extends the scenario's drain horizon by the extra work and
// latency the plan injects, so a clean run still drains before the end.
func horizonFor(s *simcheck.Scenario, p *Plan, opt Options) sim.Time {
	if opt.Horizon > 0 {
		return opt.Horizon
	}
	h := s.Horizon()
	var work sim.Time
	for i := range s.Tasks {
		work += s.Tasks[i].Work()
	}
	if es := p.ExecScale; es != nil && es.Percent > 100 {
		h += work * sim.Time(es.Percent-100) / 100
	}
	if j := p.Jitter; j != nil {
		h += j.Max * sim.Time(len(s.Tasks)+len(s.IRQs))
	}
	for _, st := range p.Stalls {
		h += st.Dur
		if end := st.At + 2*st.Dur; end > h {
			h = end
		}
	}
	for _, sp := range p.Spurious {
		if end := sp.At + sp.Every*sim.Time(sp.Count); end > h {
			h = end
		}
	}
	return h
}

// watchdogFor derives a starvation window that no legitimate schedule of
// the perturbed scenario can exceed (the core.OS.EnableWatchdog
// contract). The lowest-priority task may legitimately wait for every
// other task's entire remaining work — overloaded sets run periodic
// cycles back-to-back without a scheduling point — so the only safe
// bound is the scenario's total work, scaled by the worst overrun, plus
// every injected stall. Detection latency is backstopped by the
// kernel-stall hook, which fires the moment the event queue drains.
func watchdogFor(s *simcheck.Scenario, p *Plan, opt Options) sim.Time {
	if opt.Watchdog > 0 {
		return opt.Watchdog
	}
	var work sim.Time
	for i := range s.Tasks {
		work += s.Tasks[i].Work()
	}
	if es := p.ExecScale; es != nil && es.Percent > 100 {
		work = work * sim.Time(es.Percent) / 100
	}
	for _, st := range p.Stalls {
		work += st.Dur
	}
	return 2*work + 50*sim.Microsecond
}

// RunScenario executes the scenario under the plan's faults with the full
// runtime-diagnosis machinery armed: the always-on wait-for-graph monitor,
// the kernel-stall diagnosis hook and the starvation watchdog. The run
// never panics or hangs on an injected fault — it ends with a structured
// diagnosis (Result.Diag / Result.Err) or drains cleanly to the horizon.
func RunScenario(s *simcheck.Scenario, plan *Plan, seed int64, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{Seed: seed, Plan: plan.Name, Opt: opt}
	policy, err := core.PolicyByName(opt.Policy, opt.Quantum)
	if err != nil {
		res.Err = err
		return res
	}
	tm := core.TimeModelCoarse
	if opt.TimeModel == "segmented" {
		tm = core.TimeModelSegmented
	}
	k := sim.NewKernel()
	defer k.Shutdown()
	rtos := core.New(k, "PE", policy, core.WithTimeModel(tm))

	col := &telemetry.Collector{}
	agg := telemetry.NewAggregator()
	bus := telemetry.NewBus(col, agg)
	bus.Attach(rtos) // also routes diagnoses into fault.* events
	eng := NewEngine(plan, seed, k, bus, rtos.Name())

	rt, err := personality.New(opt.Personality, rtos)
	if err != nil {
		res.Err = err
		return res
	}
	queues := map[string]personality.Queue{}
	sems := map[string]personality.Semaphore{}
	for _, c := range s.Channels {
		switch c.Kind {
		case "queue":
			queues[c.Name] = rt.NewQueue(c.Name, c.Arg)
		case "semaphore":
			sems[c.Name] = rt.NewSemaphore(c.Name, c.Arg)
		}
	}

	tasks := make([]*core.Task, len(s.Tasks))
	byName := map[string]*core.Task{}
	for i := range s.Tasks {
		spec := &s.Tasks[i]
		switch spec.Type {
		case "periodic":
			task := rt.TaskCreate(spec.Name, core.Periodic, spec.Period, spec.Work()/sim.Time(spec.Cycles), spec.Prio)
			tasks[i] = task
			k.Spawn(spec.Name, func(p *sim.Proc) {
				rt.Activate(p, task)
				for c := 0; c < spec.Cycles; c++ {
					for _, seg := range spec.Segments {
						rt.Compute(p, eng.ScaleDelay(spec.Name, seg))
					}
					rt.EndCycle(p)
				}
				rt.Terminate(p)
			})
		case "aperiodic":
			task := rt.TaskCreate(spec.Name, core.Aperiodic, 0, spec.Work(), spec.Prio)
			tasks[i] = task
			k.Spawn(spec.Name, func(p *sim.Proc) {
				if d := spec.Start + eng.ReleaseJitter(spec.Name); d > 0 {
					p.WaitFor(d)
				}
				rt.Activate(p, task)
				for _, op := range spec.Ops {
					switch op.Kind {
					case simcheck.OpDelay:
						rt.Compute(p, eng.ScaleDelay(spec.Name, op.Dur))
					case simcheck.OpSend:
						queues[op.Ch].Send(p, 1)
					case simcheck.OpRecv:
						queues[op.Ch].Recv(p)
					case simcheck.OpAcquire:
						sems[op.Ch].Acquire(p)
					}
				}
				rt.Terminate(p)
			})
		}
		byName[spec.Name] = tasks[i]
	}

	for _, irq := range s.IRQs {
		irq := irq
		sem := sems[irq.Sem]
		p := k.Spawn("irq:"+irq.Name, func(p *sim.Proc) {
			p.WaitFor(irq.At + eng.ReleaseJitter(irq.Name))
			for i := 0; i < irq.Count; i++ {
				if i > 0 {
					p.WaitFor(irq.Every)
				}
				rtos.InterruptEnter(p, irq.Name)
				if !eng.DropIRQ(irq.Name) {
					sem.Release(p)
				}
				rtos.InterruptReturn(p, irq.Name)
			}
		})
		p.SetDaemon(true)
	}

	for _, sp := range plan.Spurious {
		sp := sp
		sem := sems[sp.Sem]
		if sem == nil {
			continue // plan written for a different channel topology
		}
		p := k.Spawn("fault:spurious:"+sp.Sem, func(p *sim.Proc) {
			p.WaitFor(sp.At)
			for i := 0; i < sp.Count; i++ {
				if i > 0 {
					p.WaitFor(sp.Every)
				}
				rtos.InterruptEnter(p, "fault:spurious")
				eng.NoteSpurious(sp.Sem)
				sem.Release(p)
				rtos.InterruptReturn(p, "fault:spurious")
			}
		})
		p.SetDaemon(true)
	}

	for i, st := range plan.Stalls {
		st := st
		name := fmt.Sprintf("fault:stall%d", i)
		task := rtos.TaskCreate(name, core.Aperiodic, 0, st.Dur, stallPrio)
		task.SetDeadline(0)
		k.Spawn(name, func(p *sim.Proc) {
			if st.At > 0 {
				p.WaitFor(st.At)
			}
			eng.NoteStall(st.Dur)
			rtos.TaskActivate(p, task)
			rtos.TimeWait(p, st.Dur)
			rtos.TaskTerminate(p)
		})
	}

	for _, fl := range plan.PrioFlips {
		fl := fl
		victim := byName[fl.Task]
		if victim == nil {
			continue
		}
		p := k.Spawn("fault:prioflip:"+fl.Task, func(p *sim.Proc) {
			if fl.At > 0 {
				p.WaitFor(fl.At)
			}
			eng.NotePrioFlip(fl.Task, fl.Prio)
			victim.SetPriority(fl.Prio)
		})
		p.SetDaemon(true)
	}

	horizon := horizonFor(s, plan, opt)
	rtos.EnableWatchdog(watchdogFor(s, plan, opt))
	rtos.Start(nil)
	res.Err = k.RunUntil(horizon)
	res.End = k.Now()
	res.Diag = rtos.Diagnosis()
	if res.Diag == nil {
		// The run drained to the horizon without a live diagnosis; check
		// whether anything is still stranded on a blocking site.
		res.PostMortem = rtos.DiagnoseNow()
	}
	for _, t := range tasks {
		if t.State().Alive() {
			res.Unfinished = append(res.Unfinished, t.Name())
		}
	}
	res.Injected = eng.Injected()
	for _, e := range col.Events {
		switch e.Kind {
		case telemetry.KindFaultInject, telemetry.KindFaultDeadlock, telemetry.KindFaultStarve:
			res.Events = append(res.Events, e)
		}
	}
	agg.SetEnd(res.End)
	res.Report = agg.Report()
	return res
}
