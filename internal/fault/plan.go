// Package fault is the deterministic fault-injection layer over the RTOS
// model: it perturbs a simcheck scenario according to a reproducible JSON
// fault plan — execution-time overrun/underrun, sporadic release jitter,
// dropped and spurious interrupts, transient PE stalls, forced priority
// perturbation — and runs the perturbed system with the runtime-diagnosis
// machinery armed (wait-for-graph deadlock detection, stall reporting,
// starvation watchdog; see core/diagnosis.go).
//
// The paper validates the RTOS model only on well-behaved designs; this
// package asks the complementary question: when the environment misbehaves
// — an ISR is lost, a task overruns its budget, the bus stalls — does the
// modeled kernel degrade gracefully and can the diagnosis layer name the
// failure? Every injection decision is drawn from a splitmix64 stream
// seeded from (scenario seed, plan name), so a campaign replays to a
// byte-identical diagnostic stream regardless of worker count — the same
// replay discipline as testdata/simcheck reproducers.
package fault

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// ExecScale scales every modeled execution delay of the matching tasks to
// Percent/100 of its nominal duration with probability Prob per delay —
// Percent > 100 models WCET overruns, Percent < 100 underruns (which
// shake out schedules that silently relied on a task being slow).
type ExecScale struct {
	Tasks   []string `json:"tasks,omitempty"` // empty: all tasks
	Percent int      `json:"percent"`
	Prob    float64  `json:"prob"`
}

// Jitter delays each matching task's activation (aperiodic Start) or IRQ
// source's first release by a uniform random offset in [0, Max] — the
// sporadic-release model of a noisy environment.
type Jitter struct {
	Tasks []string `json:"tasks,omitempty"` // task or IRQ names; empty: all
	Max   sim.Time `json:"max"`
}

// DropIRQ suppresses each matching interrupt occurrence (the ISR runs but
// its semaphore release is lost) with probability Prob — the classic
// lost-interrupt fault that turns a live system into a wedged one.
type DropIRQ struct {
	IRQs []string `json:"irqs,omitempty"` // empty: all IRQ sources
	Prob float64  `json:"prob"`
}

// Spurious injects interrupt releases that no task asked for: Count extra
// releases of semaphore Sem starting at At, spaced Every apart.
type Spurious struct {
	Sem   string   `json:"sem"`
	At    sim.Time `json:"at"`
	Every sim.Time `json:"every,omitempty"`
	Count int      `json:"count"`
}

// Stall models a transient PE stall (bus contention, DMA burst): from At
// the processor executes nothing else for Dur. It is injected as a
// maximum-priority zero-deadline task, so it wins under every preemptive
// policy; under non-preemptive FCFS it stalls the PE only from the next
// scheduling point, like real bus arbitration would.
type Stall struct {
	At  sim.Time `json:"at"`
	Dur sim.Time `json:"dur"`
}

// PrioFlip forces task Task's priority to Prio at time At — modeling a
// misconfigured or corrupted priority field. The change takes effect at
// the next scheduling point.
type PrioFlip struct {
	Task string   `json:"task"`
	At   sim.Time `json:"at"`
	Prio int      `json:"prio"`
}

// Plan is one reproducible fault-injection configuration. Injector fields
// left nil/empty are disabled; the zero plan injects nothing.
type Plan struct {
	Name      string     `json:"name"`
	ExecScale *ExecScale `json:"exec_scale,omitempty"`
	Jitter    *Jitter    `json:"jitter,omitempty"`
	DropIRQ   *DropIRQ   `json:"drop_irq,omitempty"`
	Spurious  []Spurious `json:"spurious,omitempty"`
	Stalls    []Stall    `json:"stalls,omitempty"`
	PrioFlips []PrioFlip `json:"prio_flips,omitempty"`

	// ExpectClean asserts the plan's faults must not produce a runtime
	// diagnosis on a valid scenario: a diagnosis under this plan is a
	// detector false positive (a campaign violation), not a detection.
	ExpectClean bool `json:"expect_clean,omitempty"`
}

// Validate checks the plan for structural soundness.
func (p *Plan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("fault: plan unnamed")
	}
	if e := p.ExecScale; e != nil {
		if e.Percent <= 0 {
			return fmt.Errorf("fault: plan %q: exec_scale percent must be positive", p.Name)
		}
		if e.Prob < 0 || e.Prob > 1 {
			return fmt.Errorf("fault: plan %q: exec_scale prob outside [0,1]", p.Name)
		}
	}
	if j := p.Jitter; j != nil && j.Max < 0 {
		return fmt.Errorf("fault: plan %q: negative jitter", p.Name)
	}
	if d := p.DropIRQ; d != nil && (d.Prob < 0 || d.Prob > 1) {
		return fmt.Errorf("fault: plan %q: drop_irq prob outside [0,1]", p.Name)
	}
	for _, s := range p.Spurious {
		if s.Sem == "" || s.Count <= 0 || s.At < 0 {
			return fmt.Errorf("fault: plan %q: spurious needs a semaphore, positive count and non-negative time", p.Name)
		}
		if s.Count > 1 && s.Every <= 0 {
			return fmt.Errorf("fault: plan %q: repeating spurious release needs positive spacing", p.Name)
		}
	}
	for _, s := range p.Stalls {
		if s.At < 0 || s.Dur <= 0 {
			return fmt.Errorf("fault: plan %q: stall needs non-negative time and positive duration", p.Name)
		}
	}
	for _, f := range p.PrioFlips {
		if f.Task == "" || f.At < 0 {
			return fmt.Errorf("fault: plan %q: prio flip needs a task and non-negative time", p.Name)
		}
	}
	return nil
}

// MarshalIndent renders the plan as indented JSON (the reproducer format).
func (p *Plan) MarshalIndent() []byte {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		panic(err) // plain data: cannot fail
	}
	return append(b, '\n')
}

// ParsePlan decodes and validates a JSON fault plan.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: %v", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// DefaultPlans is the standard campaign battery: a fault-free control, the
// benign perturbations that a correct kernel must absorb without any
// diagnosis, and the hostile ones whose detections the campaign counts.
func DefaultPlans() []*Plan {
	return []*Plan{
		// Control: no injection at all. Any diagnosis is a detector bug.
		{Name: "baseline", ExpectClean: true},
		// Benign: underruns and bounded release jitter never remove work
		// or releases, so a valid scenario must stay diagnosis-clean.
		{Name: "underrun", ExecScale: &ExecScale{Percent: 50, Prob: 0.5}, ExpectClean: true},
		{Name: "jitter", Jitter: &Jitter{Max: 40 * sim.Microsecond}, ExpectClean: true},
		// Hostile: overruns can push work past the horizon, lost
		// interrupts can wedge acquirers, stalls and priority corruption
		// can starve the ready queue. Diagnoses here are detections.
		{Name: "overrun", ExecScale: &ExecScale{Percent: 175, Prob: 0.7}},
		{Name: "drop-irq", DropIRQ: &DropIRQ{Prob: 1}},
		{Name: "stall", Stalls: []Stall{{At: 120 * sim.Microsecond, Dur: 60 * sim.Microsecond}}},
	}
}
