package taskset

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

const goodJSON = `{
  "policy": "priority",
  "timeModel": "coarse",
  "horizonMs": 10,
  "tasks": [
    {"name": "ctrl",  "type": "periodic", "periodUs": 1000, "wcetUs": 250, "prio": 1},
    {"name": "audio", "type": "periodic", "periodUs": 4000, "wcetUs": 1500, "prio": 2},
    {"name": "init",  "type": "aperiodic", "prio": 0, "computeUs": [100, 100], "startUs": 50}
  ]
}`

func TestParseAndRun(t *testing.T) {
	s, err := Parse([]byte(goodJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "priority" || res.TimeModel != core.TimeModelCoarse {
		t.Errorf("policy/tm = %s/%s", res.Policy, res.TimeModel)
	}
	if res.Horizon != 10*sim.Millisecond {
		t.Errorf("horizon = %v, want 10ms", res.Horizon)
	}
	byName := map[string]TaskResult{}
	for _, tr := range res.Tasks {
		byName[tr.Name] = tr
	}
	// ctrl: 10ms horizon / 1ms period = ~10 activations.
	if a := byName["ctrl"].Activations; a < 9 || a > 10 {
		t.Errorf("ctrl activations = %d, want ≈10", a)
	}
	if a := byName["audio"].Activations; a < 2 || a > 3 {
		t.Errorf("audio activations = %d, want ≈2-3", a)
	}
	if byName["init"].Activations != 1 {
		t.Errorf("init activations = %d, want 1", byName["init"].Activations)
	}
	if byName["init"].CPUTime != 200*sim.Microsecond {
		t.Errorf("init cpu = %v, want 200us", byName["init"].CPUTime)
	}
	// Under the paper's coarse time model audio's 1.5 ms delay chunk is
	// non-preemptible, so ctrl (1 ms deadline) can be blocked past its
	// deadline occasionally; audio itself must never miss.
	if byName["audio"].Missed != 0 {
		t.Errorf("audio missed %d, want 0", byName["audio"].Missed)
	}
	if byName["ctrl"].Missed > 3 {
		t.Errorf("ctrl missed %d, want only occasional coarse-model blocking misses", byName["ctrl"].Missed)
	}
	if res.Trace.Len() == 0 {
		t.Error("no trace recorded")
	}
	if res.Stats.Dispatches == 0 {
		t.Error("no dispatches recorded")
	}
}

func TestSegmentedModelRemovesBlockingMisses(t *testing.T) {
	// The same set under the segmented time model: audio's chunk becomes
	// preemptible and ctrl meets every deadline — the granularity effect
	// of DESIGN.md experiment F8-PREC at task-set scale.
	s, err := Parse([]byte(goodJSON))
	if err != nil {
		t.Fatal(err)
	}
	s.TimeModel = "segmented"
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tasks {
		if tr.Missed != 0 {
			t.Errorf("task %s missed %d under segmented model, want 0", tr.Name, tr.Missed)
		}
	}
}

func TestRunPolicies(t *testing.T) {
	for _, pol := range []string{"fcfs", "rr", "edf", "rm"} {
		s, err := Parse([]byte(goodJSON))
		if err != nil {
			t.Fatal(err)
		}
		s.Policy = pol
		if pol == "rr" {
			s.QuantumUs = 500
		}
		if _, err := Run(s); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct{ name, json, want string }{
		{"empty", `{"tasks": []}`, "no tasks"},
		{"unnamed", `{"tasks": [{"type":"periodic","periodUs":1,"wcetUs":1}]}`, "unnamed"},
		{"dup", `{"tasks": [
			{"name":"a","periodUs":10,"wcetUs":1},
			{"name":"a","periodUs":10,"wcetUs":1}]}`, "duplicate"},
		{"no-period", `{"tasks": [{"name":"a","wcetUs":1}]}`, "periodUs"},
		{"no-wcet", `{"tasks": [{"name":"a","periodUs":10}]}`, "wcetUs"},
		{"no-compute", `{"tasks": [{"name":"a","type":"aperiodic"}]}`, "computeUs"},
		{"bad-type", `{"tasks": [{"name":"a","type":"sporadic"}]}`, "unknown type"},
		{"bad-tm", `{"timeModel":"loose","tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "time model"},
		{"bad-json", `{`, "unexpected end"},
		{"wcet-over-period", `{"tasks":[{"name":"a","periodUs":10,"wcetUs":11}]}`, "utilization > 1"},
		{"neg-start", `{"tasks":[{"name":"a","type":"aperiodic","startUs":-5,"computeUs":[10]}]}`, "negative startUs"},
		{"neg-compute", `{"tasks":[{"name":"a","type":"aperiodic","computeUs":[10,-1]}]}`, "negative computeUs[1]"},
		{"neg-quantum", `{"quantumUs":-1,"tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "negative quantumUs"},
		{"rr-no-quantum", `{"policy":"rr","tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "quantumUs > 0"},
		{"bad-policy", `{"policy":"lottery","tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "lottery"},
		{"bad-personality", `{"personality":"vxworks","tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "unknown personality"},
		{"neg-cpus", `{"cpus":-1,"tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "negative cpus"},
		{"personality-smp", `{"personality":"itron","cpus":2,"tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`,
			`personality "itron" models a uniprocessor RTOS`},
		{"generic-personality-smp", `{"personality":"generic","cpus":4,"tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`,
			"drop \"personality\""},
		{"uniproc-policy-smp", `{"policy":"rr","quantumUs":100,"cpus":2,"tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`,
			`needs "g-fp" or "g-edf"`},
		{"smp-policy-uniproc", `{"policy":"g-edf","tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`,
			`set "cpus" > 1`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.json))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

// TestRunSMP pins the cpus>1 path: a personality-free set runs on the
// global SMP scheduler, and two independent full-utilization tasks on two
// CPUs both make full progress (impossible on one CPU).
func TestRunSMP(t *testing.T) {
	s, err := Parse([]byte(`{
	  "policy": "g-fp",
	  "cpus": 2,
	  "horizonMs": 10,
	  "tasks": [
	    {"name": "a", "type": "periodic", "periodUs": 1000, "wcetUs": 900, "prio": 1},
	    {"name": "b", "type": "periodic", "periodUs": 1000, "wcetUs": 900, "prio": 2}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUs != 2 || res.Policy != "g-fp" {
		t.Errorf("CPUs/Policy = %d/%s, want 2/g-fp", res.CPUs, res.Policy)
	}
	for _, tr := range res.Tasks {
		if tr.Activations < 9 {
			t.Errorf("%s activations = %d, want ≈10 (both CPUs busy)", tr.Name, tr.Activations)
		}
		if tr.Missed != 0 {
			t.Errorf("%s missed = %d, want 0", tr.Name, tr.Missed)
		}
	}
	// 2 CPUs × ~10 cycles × 900µs ≈ 18ms of busy time in a 10ms horizon.
	if res.Stats.BusyTime < 15*sim.Millisecond {
		t.Errorf("busy = %v, want ≈18ms across both CPUs", res.Stats.BusyTime)
	}
}

func TestPeriodicWithCyclesTerminates(t *testing.T) {
	s := &Set{
		HorizonMs: 100,
		Tasks: []Task{
			{Name: "p", Type: "periodic", PeriodUs: 100, WcetUs: 10, Cycles: 5},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[0].Activations != 5 {
		t.Errorf("activations = %d, want 5", res.Tasks[0].Activations)
	}
	// Ends after the 5th cycle, long before the horizon.
	if res.End >= res.Horizon {
		t.Errorf("end = %v, want < horizon %v", res.End, res.Horizon)
	}
}

func TestOverloadDetected(t *testing.T) {
	s := &Set{
		HorizonMs: 5,
		Tasks: []Task{
			{Name: "a", Type: "periodic", PeriodUs: 100, WcetUs: 80, Prio: 1},
			{Name: "b", Type: "periodic", PeriodUs: 100, WcetUs: 80, Prio: 2},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	missed := 0
	for _, tr := range res.Tasks {
		missed += tr.Missed
	}
	if missed == 0 {
		t.Error("overloaded set reported no misses")
	}
}

// TestPersonalityEquivalence runs the same set under every RTOS
// personality. Task lifecycle operations (activate, compute, end-cycle,
// terminate) are identical passthroughs in all three adapters, so every
// per-task outcome — and the trace itself — must be byte-equivalent to
// the generic run; only the Result label differs.
func TestPersonalityEquivalence(t *testing.T) {
	base, err := Parse([]byte(goodJSON))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Personality != "generic" {
		t.Errorf("default personality = %q, want generic", ref.Personality)
	}
	for _, pers := range []string{"generic", "itron", "osek"} {
		s := *base
		s.Personality = pers
		res, err := Run(&s)
		if err != nil {
			t.Fatalf("%s: %v", pers, err)
		}
		if res.Personality != pers {
			t.Errorf("Result.Personality = %q, want %q", res.Personality, pers)
		}
		for i, tr := range res.Tasks {
			if tr != ref.Tasks[i] {
				t.Errorf("%s: task %s = %+v, want %+v", pers, tr.Name, tr, ref.Tasks[i])
			}
		}
		if res.Stats.ContextSwitches != ref.Stats.ContextSwitches {
			t.Errorf("%s: context switches = %d, want %d",
				pers, res.Stats.ContextSwitches, ref.Stats.ContextSwitches)
		}
	}
}

// TestEngineEquivalence runs the same set on the goroutine kernel and
// the run-to-completion engine across the policy × time-model ×
// personality matrix: every per-task outcome, the OS statistics, the end
// time and the trace itself must match record for record.
func TestEngineEquivalence(t *testing.T) {
	for _, pol := range []string{"priority", "fcfs", "rr", "edf", "rm"} {
		for _, tm := range []string{"coarse", "segmented"} {
			for _, pers := range []string{"generic", "itron", "osek"} {
				base, err := Parse([]byte(goodJSON))
				if err != nil {
					t.Fatal(err)
				}
				base.Policy = pol
				if pol == "rr" {
					base.QuantumUs = 500
				}
				base.TimeModel = tm
				base.Personality = pers
				ref, err := Run(base)
				if err != nil {
					t.Fatalf("%s/%s/%s goroutine: %v", pol, tm, pers, err)
				}

				s := *base
				s.Engine = "rtc"
				res, err := Run(&s)
				if err != nil {
					t.Fatalf("%s/%s/%s rtc: %v", pol, tm, pers, err)
				}
				tag := pol + "/" + tm + "/" + pers
				if res.Policy != ref.Policy || res.Personality != ref.Personality ||
					res.End != ref.End || res.Stats != ref.Stats {
					t.Errorf("%s: header/stats diverge:\nrtc       %s %s end=%v %+v\ngoroutine %s %s end=%v %+v",
						tag, res.Policy, res.Personality, res.End, res.Stats,
						ref.Policy, ref.Personality, ref.End, ref.Stats)
				}
				for i, tr := range res.Tasks {
					if tr != ref.Tasks[i] {
						t.Errorf("%s: task %s = %+v, want %+v", tag, tr.Name, tr, ref.Tasks[i])
					}
				}
				refRecs, recs := ref.Trace.Records(), res.Trace.Records()
				if len(recs) != len(refRecs) {
					t.Errorf("%s: %d trace records, want %d", tag, len(recs), len(refRecs))
					continue
				}
				for i := range recs {
					if recs[i] != refRecs[i] {
						t.Errorf("%s: trace record %d:\nrtc       %s\ngoroutine %s",
							tag, i, recs[i], refRecs[i])
						break
					}
				}
			}
		}
	}
}

// TestEngineValidation pins the engine axis's error surface.
func TestEngineValidation(t *testing.T) {
	cases := []struct{ name, json, want string }{
		{"bad-engine", `{"engine":"fiber","tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`,
			`unknown engine "fiber"`},
		{"rtc-smp", `{"engine":"rtc","cpus":2,"tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`,
			`engine "rtc" models a uniprocessor`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.json))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
	// A live telemetry bus hooks the goroutine RTOS instance; the rtc
	// engine must reject it loudly rather than silently drop telemetry.
	s, err := Parse([]byte(goodJSON))
	if err != nil {
		t.Fatal(err)
	}
	s.Engine = "rtc"
	if _, err := Run(s, telemetry.NewBus()); err == nil ||
		!strings.Contains(err.Error(), "telemetry bus") {
		t.Errorf("rtc+bus err = %v, want telemetry bus rejection", err)
	}
}
