package taskset

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

const goodJSON = `{
  "policy": "priority",
  "timeModel": "coarse",
  "horizonMs": 10,
  "tasks": [
    {"name": "ctrl",  "type": "periodic", "periodUs": 1000, "wcetUs": 250, "prio": 1},
    {"name": "audio", "type": "periodic", "periodUs": 4000, "wcetUs": 1500, "prio": 2},
    {"name": "init",  "type": "aperiodic", "prio": 0, "computeUs": [100, 100], "startUs": 50}
  ]
}`

func TestParseAndRun(t *testing.T) {
	s, err := Parse([]byte(goodJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "priority" || res.TimeModel != core.TimeModelCoarse {
		t.Errorf("policy/tm = %s/%s", res.Policy, res.TimeModel)
	}
	if res.Horizon != 10*sim.Millisecond {
		t.Errorf("horizon = %v, want 10ms", res.Horizon)
	}
	byName := map[string]TaskResult{}
	for _, tr := range res.Tasks {
		byName[tr.Name] = tr
	}
	// ctrl: 10ms horizon / 1ms period = ~10 activations.
	if a := byName["ctrl"].Activations; a < 9 || a > 10 {
		t.Errorf("ctrl activations = %d, want ≈10", a)
	}
	if a := byName["audio"].Activations; a < 2 || a > 3 {
		t.Errorf("audio activations = %d, want ≈2-3", a)
	}
	if byName["init"].Activations != 1 {
		t.Errorf("init activations = %d, want 1", byName["init"].Activations)
	}
	if byName["init"].CPUTime != 200*sim.Microsecond {
		t.Errorf("init cpu = %v, want 200us", byName["init"].CPUTime)
	}
	// Under the paper's coarse time model audio's 1.5 ms delay chunk is
	// non-preemptible, so ctrl (1 ms deadline) can be blocked past its
	// deadline occasionally; audio itself must never miss.
	if byName["audio"].Missed != 0 {
		t.Errorf("audio missed %d, want 0", byName["audio"].Missed)
	}
	if byName["ctrl"].Missed > 3 {
		t.Errorf("ctrl missed %d, want only occasional coarse-model blocking misses", byName["ctrl"].Missed)
	}
	if res.Trace.Len() == 0 {
		t.Error("no trace recorded")
	}
	if res.Stats.Dispatches == 0 {
		t.Error("no dispatches recorded")
	}
}

func TestSegmentedModelRemovesBlockingMisses(t *testing.T) {
	// The same set under the segmented time model: audio's chunk becomes
	// preemptible and ctrl meets every deadline — the granularity effect
	// of DESIGN.md experiment F8-PREC at task-set scale.
	s, err := Parse([]byte(goodJSON))
	if err != nil {
		t.Fatal(err)
	}
	s.TimeModel = "segmented"
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tasks {
		if tr.Missed != 0 {
			t.Errorf("task %s missed %d under segmented model, want 0", tr.Name, tr.Missed)
		}
	}
}

func TestRunPolicies(t *testing.T) {
	for _, pol := range []string{"fcfs", "rr", "edf", "rm"} {
		s, err := Parse([]byte(goodJSON))
		if err != nil {
			t.Fatal(err)
		}
		s.Policy = pol
		if pol == "rr" {
			s.QuantumUs = 500
		}
		if _, err := Run(s); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct{ name, json, want string }{
		{"empty", `{"tasks": []}`, "no tasks"},
		{"unnamed", `{"tasks": [{"type":"periodic","periodUs":1,"wcetUs":1}]}`, "unnamed"},
		{"dup", `{"tasks": [
			{"name":"a","periodUs":10,"wcetUs":1},
			{"name":"a","periodUs":10,"wcetUs":1}]}`, "duplicate"},
		{"no-period", `{"tasks": [{"name":"a","wcetUs":1}]}`, "periodUs"},
		{"no-wcet", `{"tasks": [{"name":"a","periodUs":10}]}`, "wcetUs"},
		{"no-compute", `{"tasks": [{"name":"a","type":"aperiodic"}]}`, "computeUs"},
		{"bad-type", `{"tasks": [{"name":"a","type":"sporadic"}]}`, "unknown type"},
		{"bad-tm", `{"timeModel":"loose","tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "time model"},
		{"bad-json", `{`, "unexpected end"},
		{"wcet-over-period", `{"tasks":[{"name":"a","periodUs":10,"wcetUs":11}]}`, "utilization > 1"},
		{"neg-start", `{"tasks":[{"name":"a","type":"aperiodic","startUs":-5,"computeUs":[10]}]}`, "negative startUs"},
		{"neg-compute", `{"tasks":[{"name":"a","type":"aperiodic","computeUs":[10,-1]}]}`, "negative computeUs[1]"},
		{"neg-quantum", `{"quantumUs":-1,"tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "negative quantumUs"},
		{"rr-no-quantum", `{"policy":"rr","tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "quantumUs > 0"},
		{"bad-policy", `{"policy":"lottery","tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "lottery"},
		{"bad-personality", `{"personality":"vxworks","tasks":[{"name":"a","periodUs":10,"wcetUs":1}]}`, "unknown personality"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.json))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestPeriodicWithCyclesTerminates(t *testing.T) {
	s := &Set{
		HorizonMs: 100,
		Tasks: []Task{
			{Name: "p", Type: "periodic", PeriodUs: 100, WcetUs: 10, Cycles: 5},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[0].Activations != 5 {
		t.Errorf("activations = %d, want 5", res.Tasks[0].Activations)
	}
	// Ends after the 5th cycle, long before the horizon.
	if res.End >= res.Horizon {
		t.Errorf("end = %v, want < horizon %v", res.End, res.Horizon)
	}
}

func TestOverloadDetected(t *testing.T) {
	s := &Set{
		HorizonMs: 5,
		Tasks: []Task{
			{Name: "a", Type: "periodic", PeriodUs: 100, WcetUs: 80, Prio: 1},
			{Name: "b", Type: "periodic", PeriodUs: 100, WcetUs: 80, Prio: 2},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	missed := 0
	for _, tr := range res.Tasks {
		missed += tr.Missed
	}
	if missed == 0 {
		t.Error("overloaded set reported no misses")
	}
}

// TestPersonalityEquivalence runs the same set under every RTOS
// personality. Task lifecycle operations (activate, compute, end-cycle,
// terminate) are identical passthroughs in all three adapters, so every
// per-task outcome — and the trace itself — must be byte-equivalent to
// the generic run; only the Result label differs.
func TestPersonalityEquivalence(t *testing.T) {
	base, err := Parse([]byte(goodJSON))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Personality != "generic" {
		t.Errorf("default personality = %q, want generic", ref.Personality)
	}
	for _, pers := range []string{"generic", "itron", "osek"} {
		s := *base
		s.Personality = pers
		res, err := Run(&s)
		if err != nil {
			t.Fatalf("%s: %v", pers, err)
		}
		if res.Personality != pers {
			t.Errorf("Result.Personality = %q, want %q", res.Personality, pers)
		}
		for i, tr := range res.Tasks {
			if tr != ref.Tasks[i] {
				t.Errorf("%s: task %s = %+v, want %+v", pers, tr.Name, tr, ref.Tasks[i])
			}
		}
		if res.Stats.ContextSwitches != ref.Stats.ContextSwitches {
			t.Errorf("%s: context switches = %d, want %d",
				pers, res.Stats.ContextSwitches, ref.Stats.ContextSwitches)
		}
	}
}
