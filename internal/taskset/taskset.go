// Package taskset loads task-set descriptions (JSON) and simulates them
// on the RTOS model — the engine behind cmd/rtossim. A set mixes periodic
// tasks (run until the horizon or for a fixed number of cycles) and
// aperiodic tasks (a start offset followed by compute segments).
package taskset

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/personality"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/smp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Task describes one task of the set. Times are in microseconds to keep
// hand-written JSON readable.
type Task struct {
	Name      string  `json:"name"`
	Type      string  `json:"type"` // "periodic" (default) or "aperiodic"
	PeriodUs  float64 `json:"periodUs"`
	WcetUs    float64 `json:"wcetUs"`
	Prio      int     `json:"prio"`
	StartUs   float64 `json:"startUs"`   // aperiodic: activation time
	ComputeUs []int64 `json:"computeUs"` // aperiodic: compute segments
	Cycles    int     `json:"cycles"`    // periodic: cycles to run (0 = until horizon)
}

// Set is the top-level task-set description.
type Set struct {
	Policy      string  `json:"policy"`
	QuantumUs   float64 `json:"quantumUs"`
	TimeModel   string  `json:"timeModel"`             // "coarse" (default) or "segmented"
	Personality string  `json:"personality,omitempty"` // "generic" (default), "itron" or "osek"
	CPUs        int     `json:"cpus,omitempty"`        // 0/1: uniprocessor RTOS model; >1: global SMP scheduler
	Engine      string  `json:"engine,omitempty"`      // "goroutine" (default) or "rtc" (run-to-completion)
	HorizonMs   float64 `json:"horizonMs"`
	Tasks       []Task  `json:"tasks"`
}

// Parse decodes and validates a JSON task set.
func Parse(data []byte) (*Set, error) {
	var s Set
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("taskset: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the set for structural errors.
func (s *Set) Validate() error {
	if len(s.Tasks) == 0 {
		return fmt.Errorf("taskset: no tasks")
	}
	seen := map[string]bool{}
	for i, t := range s.Tasks {
		if t.Name == "" {
			return fmt.Errorf("taskset: task %d unnamed", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("taskset: duplicate task name %q", t.Name)
		}
		seen[t.Name] = true
		switch t.Type {
		case "periodic", "":
			if t.PeriodUs <= 0 {
				return fmt.Errorf("taskset: periodic task %q needs periodUs > 0", t.Name)
			}
			if t.WcetUs <= 0 {
				return fmt.Errorf("taskset: periodic task %q needs wcetUs > 0", t.Name)
			}
			if t.WcetUs > t.PeriodUs {
				return fmt.Errorf("taskset: periodic task %q has wcetUs %g > periodUs %g (utilization > 1, can never meet a deadline)",
					t.Name, t.WcetUs, t.PeriodUs)
			}
		case "aperiodic":
			if len(t.ComputeUs) == 0 {
				return fmt.Errorf("taskset: aperiodic task %q needs computeUs", t.Name)
			}
			if t.StartUs < 0 {
				return fmt.Errorf("taskset: aperiodic task %q has negative startUs %g", t.Name, t.StartUs)
			}
			for j, c := range t.ComputeUs {
				if c < 0 {
					return fmt.Errorf("taskset: aperiodic task %q has negative computeUs[%d] = %d", t.Name, j, c)
				}
			}
		default:
			return fmt.Errorf("taskset: task %q has unknown type %q", t.Name, t.Type)
		}
	}
	if s.TimeModel != "" && s.TimeModel != "coarse" && s.TimeModel != "segmented" {
		return fmt.Errorf("taskset: unknown time model %q", s.TimeModel)
	}
	if !personality.Valid(s.Personality) {
		return fmt.Errorf("taskset: unknown personality %q (have %v)", s.Personality, personality.Kinds())
	}
	if s.CPUs < 0 {
		return fmt.Errorf("taskset: negative cpus %d", s.CPUs)
	}
	if s.QuantumUs < 0 {
		return fmt.Errorf("taskset: negative quantumUs %g", s.QuantumUs)
	}
	if s.Policy == "rr" && s.QuantumUs <= 0 {
		return fmt.Errorf("taskset: policy \"rr\" needs quantumUs > 0")
	}
	switch s.Engine {
	case "", "goroutine", "rtc":
	default:
		return fmt.Errorf("taskset: unknown engine %q (have \"goroutine\", \"rtc\")", s.Engine)
	}
	if s.CPUs > 1 {
		if s.Engine == "rtc" {
			return fmt.Errorf("taskset: engine \"rtc\" models a uniprocessor; set \"cpus\" to 1 or use the goroutine engine for the global SMP scheduler")
		}
		// RTOS personalities are uniprocessor kernel APIs layered over the
		// single-PE dispatcher; the global SMP scheduler has its own task
		// model. Surface the conflict here, at parse time, rather than deep
		// inside a simulation run.
		if s.Personality != "" {
			return fmt.Errorf("taskset: personality %q models a uniprocessor RTOS and cannot run on %d CPUs; set \"cpus\" to 1 or drop \"personality\" to use the global SMP scheduler",
				s.Personality, s.CPUs)
		}
		switch s.Policy {
		case "", "g-fp", "g-edf":
		default:
			return fmt.Errorf("taskset: policy %q is a uniprocessor policy; cpus %d needs \"g-fp\" or \"g-edf\"",
				s.Policy, s.CPUs)
		}
		return nil
	}
	switch s.Policy {
	case "g-fp", "g-edf":
		return fmt.Errorf("taskset: policy %q is a global SMP policy; set \"cpus\" > 1 to use it", s.Policy)
	}
	if s.Policy != "" {
		if _, err := core.PolicyByName(s.Policy, sim.Millisecond); err != nil {
			return fmt.Errorf("taskset: %v", err)
		}
	}
	return nil
}

// TaskResult is one task's statistics after simulation.
type TaskResult struct {
	Name        string
	Prio        int
	Period      sim.Time
	WCET        sim.Time
	Activations int
	Missed      int
	CPUTime     sim.Time
}

// Result is the outcome of Run.
type Result struct {
	Policy      string
	TimeModel   core.TimeModel
	Personality string
	CPUs        int // 1 for the uniprocessor RTOS model
	Horizon     sim.Time
	End         sim.Time
	Tasks       []TaskResult
	Stats       core.Stats
	Trace       *trace.Recorder
}

// Run simulates the set and returns per-task and OS-level statistics plus
// the full trace. An optional telemetry bus is attached to the RTOS
// instance.
func Run(s *Set, bus ...*telemetry.Bus) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.CPUs > 1 {
		return runSMP(s)
	}
	if s.Engine == "rtc" {
		return runRTC(s, len(bus))
	}
	policyName := s.Policy
	if policyName == "" {
		policyName = "priority"
	}
	quantum := sim.Time(s.QuantumUs * 1000)
	if quantum == 0 {
		// Only "rr" consumes the quantum, and Validate guarantees it is
		// set for "rr"; the default keeps PolicyByName happy elsewhere.
		quantum = sim.Millisecond
	}
	policy, err := core.PolicyByName(policyName, quantum)
	if err != nil {
		return nil, err
	}
	tm := core.TimeModelCoarse
	if s.TimeModel == "segmented" {
		tm = core.TimeModelSegmented
	}
	horizon := sim.Time(s.HorizonMs * 1e6)
	if horizon <= 0 {
		horizon = sim.Second
	}

	k := sim.NewKernel()
	defer k.Shutdown()
	rtos := core.New(k, "PE", policy, core.WithTimeModel(tm))
	rec := trace.New("taskset")
	rec.Attach(rtos)
	for _, b := range bus {
		b.Attach(rtos)
		rec.TeeMarkers(b)
	}
	rt, err := personality.New(s.Personality, rtos)
	if err != nil {
		return nil, err
	}

	var tasks []*core.Task
	for _, tj := range s.Tasks {
		tj := tj
		switch tj.Type {
		case "periodic", "":
			task := rt.TaskCreate(tj.Name, core.Periodic, us(tj.PeriodUs), us(tj.WcetUs), tj.Prio)
			tasks = append(tasks, task)
			p := k.Spawn(tj.Name, func(p *sim.Proc) {
				rt.Activate(p, task)
				for c := 0; tj.Cycles == 0 || c < tj.Cycles; c++ {
					rt.Compute(p, us(tj.WcetUs))
					rt.EndCycle(p)
				}
				rt.Terminate(p)
			})
			if tj.Cycles == 0 {
				p.SetDaemon(true)
			}
		case "aperiodic":
			task := rt.TaskCreate(tj.Name, core.Aperiodic, 0, us(tj.WcetUs), tj.Prio)
			tasks = append(tasks, task)
			k.Spawn(tj.Name, func(p *sim.Proc) {
				if tj.StartUs > 0 {
					p.WaitFor(us(tj.StartUs))
				}
				rt.Activate(p, task)
				for _, c := range tj.ComputeUs {
					rt.Compute(p, us(float64(c)))
				}
				rt.Terminate(p)
			})
		}
	}

	rtos.Start(nil)
	if err := k.RunUntil(horizon); err != nil {
		return nil, err
	}
	// Busy/idle/overhead accounting must partition the simulated span;
	// a violation is a scheduler bug, not a task-set property.
	if err := rtos.CheckConservation(); err != nil {
		return nil, err
	}
	res := &Result{
		Policy:      policy.Name(),
		TimeModel:   tm,
		Personality: rt.Kind(),
		CPUs:        1,
		Horizon:     horizon,
		End:         k.Now(),
		Stats:       rtos.StatsSnapshot(),
		Trace:       rec,
	}
	for _, t := range tasks {
		res.Tasks = append(res.Tasks, TaskResult{
			Name:        t.Name(),
			Prio:        t.Priority(),
			Period:      t.Period(),
			WCET:        t.WCET(),
			Activations: t.Activations(),
			Missed:      t.MissedDeadlines(),
			CPUTime:     t.CPUTime(),
		})
	}
	return res, nil
}

// runRTC simulates the set on the run-to-completion engine
// (internal/rtc). The engine is trace-equivalent to the goroutine
// kernel, so the result is byte-for-byte what Run would produce — it
// just gets there without goroutines or channels.
func runRTC(s *Set, busCount int) (*Result, error) {
	if busCount > 0 {
		return nil, fmt.Errorf("taskset: engine \"rtc\" does not support a live telemetry bus; use the goroutine engine (drop \"engine\" or set it to \"goroutine\")")
	}
	policyName := s.Policy
	if policyName == "" {
		policyName = "priority"
	}
	quantum := sim.Time(s.QuantumUs * 1000)
	if quantum == 0 {
		quantum = sim.Millisecond
	}
	policy, err := core.PolicyByName(policyName, quantum)
	if err != nil {
		return nil, err
	}
	tm := core.TimeModelCoarse
	if s.TimeModel == "segmented" {
		tm = core.TimeModelSegmented
	}
	horizon := sim.Time(s.HorizonMs * 1e6)
	if horizon <= 0 {
		horizon = sim.Second
	}

	w := rtc.Workload{
		Name:        "PE",
		Policy:      policyName,
		Quantum:     quantum,
		TimeModel:   tm,
		Personality: s.Personality,
		Horizon:     horizon,
		Trace:       true,
	}
	for _, tj := range s.Tasks {
		switch tj.Type {
		case "periodic", "":
			w.Tasks = append(w.Tasks, rtc.TaskDef{
				Name:     tj.Name,
				Type:     "periodic",
				Prio:     tj.Prio,
				Period:   us(tj.PeriodUs),
				Cycles:   tj.Cycles,
				Segments: []sim.Time{us(tj.WcetUs)},
			})
		case "aperiodic":
			ops := make([]rtc.Op, 0, len(tj.ComputeUs))
			for _, c := range tj.ComputeUs {
				ops = append(ops, rtc.Op{Kind: "delay", Dur: us(float64(c))})
			}
			w.Tasks = append(w.Tasks, rtc.TaskDef{
				Name:  tj.Name,
				Type:  "aperiodic",
				Prio:  tj.Prio,
				Start: us(tj.StartUs),
				Ops:   ops,
			})
		}
	}

	r := rtc.Run(w)
	if r.Err != nil {
		return nil, r.Err
	}
	if r.Conservation != nil {
		return nil, r.Conservation
	}
	rec := trace.New("taskset")
	for _, rcd := range r.Records {
		rec.Append(rcd)
	}
	res := &Result{
		Policy:      policy.Name(),
		TimeModel:   tm,
		Personality: r.Personality,
		CPUs:        1,
		Horizon:     horizon,
		End:         r.End,
		Stats:       r.Stats,
		Trace:       rec,
	}
	for i, tr := range r.Tasks {
		tj := s.Tasks[i]
		var period sim.Time
		if tj.Type == "periodic" || tj.Type == "" {
			period = us(tj.PeriodUs)
		}
		res.Tasks = append(res.Tasks, TaskResult{
			Name:        tr.Name,
			Prio:        tr.Prio,
			Period:      period,
			WCET:        us(tj.WcetUs),
			Activations: tr.Activations,
			Missed:      tr.Missed,
			CPUTime:     tr.CPUTime,
		})
	}
	return res, nil
}

// runSMP simulates the set on the global multiprocessor scheduler
// (Validate guarantees no personality is in play). The trace recorder is
// returned empty: the SMP scheduler has its own observer surface and the
// single-PE trace formats do not carry a CPU axis.
func runSMP(s *Set) (*Result, error) {
	var policy smp.Policy = smp.FixedPriority{}
	if s.Policy == "g-edf" {
		policy = smp.GEDF{}
	}
	tm := core.TimeModelCoarse
	if s.TimeModel == "segmented" {
		tm = core.TimeModelSegmented
	}
	horizon := sim.Time(s.HorizonMs * 1e6)
	if horizon <= 0 {
		horizon = sim.Second
	}

	k := sim.NewKernel()
	defer k.Shutdown()
	os := smp.New(k, "SMP", policy, s.CPUs, tm == core.TimeModelSegmented)

	var tasks []*smp.Task
	for _, tj := range s.Tasks {
		tj := tj
		switch tj.Type {
		case "periodic", "":
			task := os.TaskCreate(tj.Name, core.Periodic, us(tj.PeriodUs), us(tj.WcetUs), tj.Prio)
			tasks = append(tasks, task)
			p := k.Spawn(tj.Name, func(p *sim.Proc) {
				os.TaskActivate(p, task)
				for c := 0; tj.Cycles == 0 || c < tj.Cycles; c++ {
					os.TimeWait(p, us(tj.WcetUs))
					os.TaskEndCycle(p)
				}
				os.TaskTerminate(p)
			})
			if tj.Cycles == 0 {
				p.SetDaemon(true)
			}
		case "aperiodic":
			task := os.TaskCreate(tj.Name, core.Aperiodic, 0, us(tj.WcetUs), tj.Prio)
			tasks = append(tasks, task)
			k.Spawn(tj.Name, func(p *sim.Proc) {
				if tj.StartUs > 0 {
					p.WaitFor(us(tj.StartUs))
				}
				os.TaskActivate(p, task)
				for _, c := range tj.ComputeUs {
					os.TimeWait(p, us(float64(c)))
				}
				os.TaskTerminate(p)
			})
		}
	}

	if err := k.RunUntil(horizon); err != nil {
		return nil, err
	}
	st := os.StatsSnapshot()
	res := &Result{
		Policy:      policy.Name(),
		TimeModel:   tm,
		Personality: "",
		CPUs:        s.CPUs,
		Horizon:     horizon,
		End:         k.Now(),
		Stats: core.Stats{
			Dispatches:      st.Dispatches,
			ContextSwitches: st.ContextSwitches,
			Preemptions:     st.Preemptions,
			BusyTime:        st.BusyTime,
		},
		Trace: trace.New("taskset-smp"),
	}
	for i, t := range tasks {
		res.Tasks = append(res.Tasks, TaskResult{
			Name:        t.Name(),
			Prio:        t.Priority(),
			Period:      us(s.Tasks[i].PeriodUs),
			WCET:        us(s.Tasks[i].WcetUs),
			Activations: t.Activations(),
			Missed:      t.MissedDeadlines(),
			CPUTime:     t.CPUTime(),
		})
	}
	return res, nil
}

// us converts microseconds to sim.Time.
func us(v float64) sim.Time { return sim.Time(v * 1000) }
