// Package taskset loads task-set descriptions (JSON) and simulates them
// on the RTOS model — the engine behind cmd/rtossim. A set mixes periodic
// tasks (run until the horizon or for a fixed number of cycles) and
// aperiodic tasks (a start offset followed by compute segments).
package taskset

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/personality"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Task describes one task of the set. Times are in microseconds to keep
// hand-written JSON readable.
type Task struct {
	Name      string  `json:"name"`
	Type      string  `json:"type"` // "periodic" (default) or "aperiodic"
	PeriodUs  float64 `json:"periodUs"`
	WcetUs    float64 `json:"wcetUs"`
	Prio      int     `json:"prio"`
	StartUs   float64 `json:"startUs"`   // aperiodic: activation time
	ComputeUs []int64 `json:"computeUs"` // aperiodic: compute segments
	Cycles    int     `json:"cycles"`    // periodic: cycles to run (0 = until horizon)
}

// Set is the top-level task-set description.
type Set struct {
	Policy      string  `json:"policy"`
	QuantumUs   float64 `json:"quantumUs"`
	TimeModel   string  `json:"timeModel"`             // "coarse" (default) or "segmented"
	Personality string  `json:"personality,omitempty"` // "generic" (default), "itron" or "osek"
	HorizonMs   float64 `json:"horizonMs"`
	Tasks       []Task  `json:"tasks"`
}

// Parse decodes and validates a JSON task set.
func Parse(data []byte) (*Set, error) {
	var s Set
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("taskset: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the set for structural errors.
func (s *Set) Validate() error {
	if len(s.Tasks) == 0 {
		return fmt.Errorf("taskset: no tasks")
	}
	seen := map[string]bool{}
	for i, t := range s.Tasks {
		if t.Name == "" {
			return fmt.Errorf("taskset: task %d unnamed", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("taskset: duplicate task name %q", t.Name)
		}
		seen[t.Name] = true
		switch t.Type {
		case "periodic", "":
			if t.PeriodUs <= 0 {
				return fmt.Errorf("taskset: periodic task %q needs periodUs > 0", t.Name)
			}
			if t.WcetUs <= 0 {
				return fmt.Errorf("taskset: periodic task %q needs wcetUs > 0", t.Name)
			}
			if t.WcetUs > t.PeriodUs {
				return fmt.Errorf("taskset: periodic task %q has wcetUs %g > periodUs %g (utilization > 1, can never meet a deadline)",
					t.Name, t.WcetUs, t.PeriodUs)
			}
		case "aperiodic":
			if len(t.ComputeUs) == 0 {
				return fmt.Errorf("taskset: aperiodic task %q needs computeUs", t.Name)
			}
			if t.StartUs < 0 {
				return fmt.Errorf("taskset: aperiodic task %q has negative startUs %g", t.Name, t.StartUs)
			}
			for j, c := range t.ComputeUs {
				if c < 0 {
					return fmt.Errorf("taskset: aperiodic task %q has negative computeUs[%d] = %d", t.Name, j, c)
				}
			}
		default:
			return fmt.Errorf("taskset: task %q has unknown type %q", t.Name, t.Type)
		}
	}
	if s.TimeModel != "" && s.TimeModel != "coarse" && s.TimeModel != "segmented" {
		return fmt.Errorf("taskset: unknown time model %q", s.TimeModel)
	}
	if !personality.Valid(s.Personality) {
		return fmt.Errorf("taskset: unknown personality %q (have %v)", s.Personality, personality.Kinds())
	}
	if s.QuantumUs < 0 {
		return fmt.Errorf("taskset: negative quantumUs %g", s.QuantumUs)
	}
	if s.Policy == "rr" && s.QuantumUs <= 0 {
		return fmt.Errorf("taskset: policy \"rr\" needs quantumUs > 0")
	}
	if s.Policy != "" {
		if _, err := core.PolicyByName(s.Policy, sim.Millisecond); err != nil {
			return fmt.Errorf("taskset: %v", err)
		}
	}
	return nil
}

// TaskResult is one task's statistics after simulation.
type TaskResult struct {
	Name        string
	Prio        int
	Period      sim.Time
	WCET        sim.Time
	Activations int
	Missed      int
	CPUTime     sim.Time
}

// Result is the outcome of Run.
type Result struct {
	Policy      string
	TimeModel   core.TimeModel
	Personality string
	Horizon     sim.Time
	End         sim.Time
	Tasks       []TaskResult
	Stats       core.Stats
	Trace       *trace.Recorder
}

// Run simulates the set and returns per-task and OS-level statistics plus
// the full trace. An optional telemetry bus is attached to the RTOS
// instance.
func Run(s *Set, bus ...*telemetry.Bus) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	policyName := s.Policy
	if policyName == "" {
		policyName = "priority"
	}
	quantum := sim.Time(s.QuantumUs * 1000)
	if quantum == 0 {
		// Only "rr" consumes the quantum, and Validate guarantees it is
		// set for "rr"; the default keeps PolicyByName happy elsewhere.
		quantum = sim.Millisecond
	}
	policy, err := core.PolicyByName(policyName, quantum)
	if err != nil {
		return nil, err
	}
	tm := core.TimeModelCoarse
	if s.TimeModel == "segmented" {
		tm = core.TimeModelSegmented
	}
	horizon := sim.Time(s.HorizonMs * 1e6)
	if horizon <= 0 {
		horizon = sim.Second
	}

	k := sim.NewKernel()
	defer k.Shutdown()
	rtos := core.New(k, "PE", policy, core.WithTimeModel(tm))
	rec := trace.New("taskset")
	rec.Attach(rtos)
	for _, b := range bus {
		b.Attach(rtos)
		rec.TeeMarkers(b)
	}
	rt, err := personality.New(s.Personality, rtos)
	if err != nil {
		return nil, err
	}

	var tasks []*core.Task
	for _, tj := range s.Tasks {
		tj := tj
		switch tj.Type {
		case "periodic", "":
			task := rt.TaskCreate(tj.Name, core.Periodic, us(tj.PeriodUs), us(tj.WcetUs), tj.Prio)
			tasks = append(tasks, task)
			p := k.Spawn(tj.Name, func(p *sim.Proc) {
				rt.Activate(p, task)
				for c := 0; tj.Cycles == 0 || c < tj.Cycles; c++ {
					rt.Compute(p, us(tj.WcetUs))
					rt.EndCycle(p)
				}
				rt.Terminate(p)
			})
			if tj.Cycles == 0 {
				p.SetDaemon(true)
			}
		case "aperiodic":
			task := rt.TaskCreate(tj.Name, core.Aperiodic, 0, us(tj.WcetUs), tj.Prio)
			tasks = append(tasks, task)
			k.Spawn(tj.Name, func(p *sim.Proc) {
				if tj.StartUs > 0 {
					p.WaitFor(us(tj.StartUs))
				}
				rt.Activate(p, task)
				for _, c := range tj.ComputeUs {
					rt.Compute(p, us(float64(c)))
				}
				rt.Terminate(p)
			})
		}
	}

	rtos.Start(nil)
	if err := k.RunUntil(horizon); err != nil {
		return nil, err
	}
	// Busy/idle/overhead accounting must partition the simulated span;
	// a violation is a scheduler bug, not a task-set property.
	if err := rtos.CheckConservation(); err != nil {
		return nil, err
	}
	res := &Result{
		Policy:      policy.Name(),
		TimeModel:   tm,
		Personality: rt.Kind(),
		Horizon:     horizon,
		End:         k.Now(),
		Stats:       rtos.StatsSnapshot(),
		Trace:       rec,
	}
	for _, t := range tasks {
		res.Tasks = append(res.Tasks, TaskResult{
			Name:        t.Name(),
			Prio:        t.Priority(),
			Period:      t.Period(),
			WCET:        t.WCET(),
			Activations: t.Activations(),
			Missed:      t.MissedDeadlines(),
			CPUTime:     t.CPUTime(),
		})
	}
	return res, nil
}

// us converts microseconds to sim.Time.
func us(v float64) sim.Time { return sim.Time(v * 1000) }
