package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

// taskBody wraps a task body with the activate/terminate protocol of the
// paper's Figure 5.
func taskBody(os *OS, t *Task, body func(p *sim.Proc)) sim.Func {
	return func(p *sim.Proc) {
		os.TaskActivate(p, t)
		body(p)
		os.TaskTerminate(p)
	}
}

func run(t *testing.T, k *sim.Kernel) {
	t.Helper()
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTwoTasksSerialize(t *testing.T) {
	// The defining property of the RTOS model (paper Section 4.3): delays
	// of concurrent tasks are accumulative. Two tasks each modeling 100
	// time units of execution finish at 200, not 100.
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	var endA, endB sim.Time
	a := os.TaskCreate("A", Aperiodic, 0, 100, 1)
	b := os.TaskCreate("B", Aperiodic, 0, 100, 2)
	k.Spawn("A", taskBody(os, a, func(p *sim.Proc) {
		os.TimeWait(p, 100)
		endA = p.Now()
	}))
	k.Spawn("B", taskBody(os, b, func(p *sim.Proc) {
		os.TimeWait(p, 100)
		endB = p.Now()
	}))
	os.Start(nil)
	run(t, k)
	if endA != 100 {
		t.Errorf("high-priority task A finished at %v, want 100", endA)
	}
	if endB != 200 {
		t.Errorf("low-priority task B finished at %v, want 200 (serialized)", endB)
	}
}

func TestPriorityOrder(t *testing.T) {
	// Three tasks activated together run in priority order.
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	var order []string
	mk := func(name string, prio int) {
		task := os.TaskCreate(name, Aperiodic, 0, 10, prio)
		k.Spawn(name, taskBody(os, task, func(p *sim.Proc) {
			os.TimeWait(p, 10)
			order = append(order, name)
		}))
	}
	mk("low", 30)
	mk("high", 10)
	mk("mid", 20)
	os.Start(nil)
	run(t, k)
	if got := strings.Join(order, ","); got != "high,mid,low" {
		t.Errorf("completion order = %s, want high,mid,low", got)
	}
}

func TestEventWaitNotify(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	e := os.EventNew("data")
	var consumedAt sim.Time
	cons := os.TaskCreate("consumer", Aperiodic, 0, 0, 1)
	prod := os.TaskCreate("producer", Aperiodic, 0, 0, 2)
	k.Spawn("consumer", taskBody(os, cons, func(p *sim.Proc) {
		os.EventWait(p, e)
		consumedAt = p.Now()
	}))
	k.Spawn("producer", taskBody(os, prod, func(p *sim.Proc) {
		os.TimeWait(p, 55)
		os.EventNotify(p, e)
		os.TimeWait(p, 5)
	}))
	os.Start(nil)
	run(t, k)
	if consumedAt != 55 {
		t.Errorf("consumer woke at %v, want 55 (immediate preemption of producer at notify)", consumedAt)
	}
}

func TestEventNotifyNoWaiterIsLost(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	e := os.EventNew("e")
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		os.EventNotify(p, e) // lost: nobody waiting
		os.TimeWait(p, 10)
	}))
	os.Start(nil)
	run(t, k)
	if n := os.StatsSnapshot().Dispatches; n == 0 {
		t.Error("no dispatches recorded")
	}
}

// TestCoarsePreemptionDelayedToEndOfTimeStep reproduces the essence of the
// paper's Figure 8(b): an interrupt at t4 readies the high-priority task,
// but the actual switch is delayed until the end of the running task's
// current discrete time step (t4').
func TestCoarsePreemptionDelayedToEndOfTimeStep(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	e := os.EventNew("irq-sem")
	var highResumed, lowSegEnd sim.Time
	high := os.TaskCreate("high", Aperiodic, 0, 0, 1)
	low := os.TaskCreate("low", Aperiodic, 0, 0, 2)
	k.Spawn("high", taskBody(os, high, func(p *sim.Proc) {
		os.EventWait(p, e)
		highResumed = p.Now()
		os.TimeWait(p, 10)
	}))
	k.Spawn("low", taskBody(os, low, func(p *sim.Proc) {
		os.TimeWait(p, 100) // the discrete time step d6
		// TimeWait is the scheduling point: the step ended at 100, the
		// preemption happened there, and low regains the CPU only after
		// high's 10-unit segment.
		lowSegEnd = p.Now()
		os.TimeWait(p, 50)
	}))
	// Interrupt at t=40: handler releases the semaphore the high task
	// blocks on.
	k.Spawn("isr", func(p *sim.Proc) {
		p.WaitFor(40)
		os.InterruptEnter(p, "irq0")
		os.EventNotify(p, e)
		os.InterruptReturn(p, "irq0")
	})
	os.Start(nil)
	run(t, k)
	if highResumed != 100 {
		t.Errorf("high resumed at %v, want 100 (switch delayed to end of time step)", highResumed)
	}
	if lowSegEnd != 110 {
		t.Errorf("low regained CPU at %v, want 110 (100 + high's 10)", lowSegEnd)
	}
	if got := os.StatsSnapshot().Preemptions; got != 1 {
		t.Errorf("preemptions = %d, want 1", got)
	}
}

// TestSegmentedPreemptionIsImmediate checks the extension time model: the
// same scenario preempts the low task mid-delay, and the low task still
// consumes its full modeled execution time afterwards.
func TestSegmentedPreemptionIsImmediate(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{}, WithTimeModel(TimeModelSegmented))
	e := os.EventNew("irq-sem")
	var highResumed, lowEnd sim.Time
	high := os.TaskCreate("high", Aperiodic, 0, 0, 1)
	low := os.TaskCreate("low", Aperiodic, 0, 0, 2)
	k.Spawn("high", taskBody(os, high, func(p *sim.Proc) {
		os.EventWait(p, e)
		highResumed = p.Now()
		os.TimeWait(p, 10)
	}))
	k.Spawn("low", taskBody(os, low, func(p *sim.Proc) {
		os.TimeWait(p, 100)
		lowEnd = p.Now()
	}))
	k.Spawn("isr", func(p *sim.Proc) {
		p.WaitFor(40)
		os.InterruptEnter(p, "irq0")
		os.EventNotify(p, e)
		os.InterruptReturn(p, "irq0")
	})
	os.Start(nil)
	run(t, k)
	if highResumed != 40 {
		t.Errorf("high resumed at %v, want 40 (immediate preemption)", highResumed)
	}
	// low: 40 executed before preemption + 10 of high + 60 remaining = 110.
	if lowEnd != 110 {
		t.Errorf("low finished at %v, want 110", lowEnd)
	}
	if low.CPUTime() != 100 {
		t.Errorf("low consumed %v CPU, want 100", low.CPUTime())
	}
}

func TestFCFSNonPreemptive(t *testing.T) {
	// Under FCFS a later-arriving "urgent" task must wait for the running
	// task to block, regardless of priority.
	k := sim.NewKernel()
	os := New(k, "PE", FCFSPolicy{})
	var order []string
	first := os.TaskCreate("first", Aperiodic, 0, 0, 99)
	urgent := os.TaskCreate("urgent", Aperiodic, 0, 0, 0)
	k.Spawn("first", taskBody(os, first, func(p *sim.Proc) {
		os.TimeWait(p, 10)
		os.TimeWait(p, 10)
		order = append(order, "first")
	}))
	k.Spawn("urgent", func(p *sim.Proc) {
		p.WaitFor(5) // arrives while "first" is mid-execution
		os.TaskActivate(p, urgent)
		os.TimeWait(p, 1)
		order = append(order, "urgent")
		os.TaskTerminate(p)
	})
	os.Start(nil)
	run(t, k)
	if got := strings.Join(order, ","); got != "first,urgent" {
		t.Errorf("order = %s, want first,urgent (no preemption under FCFS)", got)
	}
}

func TestRoundRobinRotation(t *testing.T) {
	// Two equal-priority tasks with quantum 10 alternate in 10-unit
	// segments.
	k := sim.NewKernel()
	os := New(k, "PE", RoundRobinPolicy{Quantum: 10})
	var segs []string
	mk := func(name string) {
		task := os.TaskCreate(name, Aperiodic, 0, 0, 5)
		k.Spawn(name, taskBody(os, task, func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				os.TimeWait(p, 10)
				segs = append(segs, fmt.Sprintf("%s@%d", name, p.Now()))
			}
		}))
	}
	mk("a")
	mk("b")
	os.Start(nil)
	run(t, k)
	// Execution alternates in 10-unit segments (a:0-10, b:10-20, a:20-30,
	// ...). Each log entry is written at the end of the task's own segment:
	// slice expiry rotates the queue at the task's next scheduling point
	// (the following TimeWait), not with a spurious preemption right after
	// the delay that exhausted the quantum.
	want := "a@10,b@20,a@30,b@40,a@50,b@60"
	if got := strings.Join(segs, ","); got != want {
		t.Errorf("segments = %s, want %s", got, want)
	}
}

func TestRoundRobinSoloTaskKeepsCPU(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", RoundRobinPolicy{Quantum: 5})
	var end sim.Time
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			os.TimeWait(p, 5)
		}
		end = p.Now()
	}))
	os.Start(nil)
	run(t, k)
	if end != 50 {
		t.Errorf("solo RR task finished at %v, want 50", end)
	}
	if cs := os.StatsSnapshot().ContextSwitches; cs != 0 {
		t.Errorf("context switches = %d, want 0 for solo task", cs)
	}
}

func TestEDFOrdersByDeadline(t *testing.T) {
	// Two periodic tasks: EDF runs the one with the earlier absolute
	// deadline first even if its base priority is worse.
	k := sim.NewKernel()
	os := New(k, "PE", EDFPolicy{})
	var first string
	tight := os.TaskCreate("tight", Periodic, 50, 10, 9)  // deadline 50
	loose := os.TaskCreate("loose", Periodic, 200, 10, 1) // deadline 200
	body := func(task *Task, name string) sim.Func {
		return func(p *sim.Proc) {
			os.TaskActivate(p, task)
			for i := 0; i < 2; i++ {
				os.TimeWait(p, 10)
				if first == "" {
					first = name
				}
				os.TaskEndCycle(p)
			}
			os.TaskTerminate(p)
		}
	}
	k.Spawn("loose", body(loose, "loose"))
	k.Spawn("tight", body(tight, "tight"))
	os.Start(nil)
	run(t, k)
	if first != "tight" {
		t.Errorf("first completion = %s, want tight (earlier deadline)", first)
	}
	if tight.MissedDeadlines() != 0 || loose.MissedDeadlines() != 0 {
		t.Errorf("missed deadlines: tight=%d loose=%d, want 0,0",
			tight.MissedDeadlines(), loose.MissedDeadlines())
	}
}

func TestRMAssignsPrioritiesByPeriod(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", RMPolicy{})
	slow := os.TaskCreate("slow", Periodic, 1000, 1, 0)
	fast := os.TaskCreate("fast", Periodic, 10, 1, 50)
	mid := os.TaskCreate("mid", Periodic, 100, 1, 25)
	ap := os.TaskCreate("ap", Aperiodic, 0, 1, 3)
	os.Start(nil)
	if !(fast.Priority() < mid.Priority() && mid.Priority() < slow.Priority()) {
		t.Errorf("RM priorities: fast=%d mid=%d slow=%d, want ascending by period",
			fast.Priority(), mid.Priority(), slow.Priority())
	}
	if ap.Priority() <= slow.Priority() {
		t.Errorf("aperiodic priority %d not below all periodic (%d)", ap.Priority(), slow.Priority())
	}
}

func TestPeriodicReleasesAndDeadlineMiss(t *testing.T) {
	// One periodic task with period 100, execution 30: releases at 0, 100,
	// 200... A competing heavy task with higher priority makes it miss.
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	var starts []sim.Time
	per := os.TaskCreate("per", Periodic, 100, 30, 5)
	k.Spawn("per", func(p *sim.Proc) {
		os.TaskActivate(p, per)
		for i := 0; i < 3; i++ {
			starts = append(starts, p.Now())
			os.TimeWait(p, 30)
			os.TaskEndCycle(p)
		}
		os.TaskTerminate(p)
	})
	os.Start(nil)
	run(t, k)
	wantStarts := []sim.Time{0, 100, 200}
	for i, w := range wantStarts {
		if starts[i] != w {
			t.Errorf("release %d at %v, want %v", i, starts[i], w)
		}
	}
	if per.MissedDeadlines() != 0 {
		t.Errorf("missed = %d, want 0", per.MissedDeadlines())
	}
	if per.Activations() != 3 {
		t.Errorf("activations = %d, want 3", per.Activations())
	}
}

func TestPeriodicOverrunCountsMisses(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	per := os.TaskCreate("per", Periodic, 10, 25, 5)
	k.Spawn("per", func(p *sim.Proc) {
		os.TaskActivate(p, per)
		os.TimeWait(p, 25) // runs way past its 10-unit period
		os.TaskEndCycle(p)
		os.TaskTerminate(p)
	})
	os.Start(nil)
	run(t, k)
	if per.MissedDeadlines() == 0 {
		t.Error("overrunning periodic task recorded no deadline miss")
	}
}

func TestTaskSleepActivate(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	var wokeAt sim.Time
	sleeper := os.TaskCreate("sleeper", Aperiodic, 0, 0, 1)
	waker := os.TaskCreate("waker", Aperiodic, 0, 0, 2)
	k.Spawn("sleeper", taskBody(os, sleeper, func(p *sim.Proc) {
		os.TaskSleep(p)
		wokeAt = p.Now()
	}))
	k.Spawn("waker", taskBody(os, waker, func(p *sim.Proc) {
		os.TimeWait(p, 70)
		os.TaskActivate(p, sleeper)
		os.TimeWait(p, 10)
	}))
	os.Start(nil)
	run(t, k)
	if wokeAt != 70 {
		t.Errorf("sleeper woke at %v, want 70", wokeAt)
	}
	if sleeper.State() != TaskTerminated {
		t.Errorf("sleeper state = %v, want terminated", sleeper.State())
	}
}

func TestTaskKill(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	var victimFinished bool
	victim := os.TaskCreate("victim", Aperiodic, 0, 0, 5)
	killer := os.TaskCreate("killer", Aperiodic, 0, 0, 1)
	// Killer spawns first so it holds the CPU; the victim stays parked in
	// the ready queue and is killed there without ever running.
	k.Spawn("killer", taskBody(os, killer, func(p *sim.Proc) {
		os.TimeWait(p, 10)
		os.TaskKill(p, victim)
		os.TimeWait(p, 10)
	}))
	k.Spawn("victim", taskBody(os, victim, func(p *sim.Proc) {
		os.TimeWait(p, 1000)
		victimFinished = true
	}))
	os.Start(nil)
	run(t, k)
	if victimFinished {
		t.Error("killed task ran to completion")
	}
	if victim.State() != TaskKilled {
		t.Errorf("victim state = %v, want killed", victim.State())
	}
	if k.Now() != 20 {
		t.Errorf("simulation ended at %v, want 20", k.Now())
	}
}

func TestParStartParEnd(t *testing.T) {
	// The paper's Figure 6 pattern: a parent task forks two child tasks
	// via the SLDL par statement bracketed by ParStart/ParEnd.
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	var order []string
	parent := os.TaskCreate("parent", Aperiodic, 0, 0, 0)
	c1 := os.TaskCreate("c1", Aperiodic, 0, 0, 2)
	c2 := os.TaskCreate("c2", Aperiodic, 0, 0, 1)
	k.Spawn("parent", taskBody(os, parent, func(p *sim.Proc) {
		os.TimeWait(p, 5)
		order = append(order, "B1")
		pt := os.ParStart(p)
		p.Par(
			taskBody(os, c1, func(cp *sim.Proc) {
				os.TimeWait(cp, 10)
				order = append(order, "c1")
			}),
			taskBody(os, c2, func(cp *sim.Proc) {
				os.TimeWait(cp, 10)
				order = append(order, "c2")
			}),
		)
		os.ParEnd(p, pt)
		order = append(order, fmt.Sprintf("join@%d", p.Now()))
	}))
	os.Start(nil)
	run(t, k)
	// c2 has higher priority than c1, tasks serialize: c2 at 15, c1 at 25.
	want := "B1,c2,c1,join@25"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

// tsem is a minimal counting semaphore over the memoryless OS events,
// mirroring how the paper layers stateful channels on SLDL events
// (Figure 7). Raw OS events lose a notify issued while the partner is
// preempted, so handover protocols need this predicate-loop pattern.
type tsem struct {
	os *OS
	e  *OSEvent
	n  int
}

func newTsem(os *OS, name string) *tsem { return &tsem{os: os, e: os.EventNew(name)} }

func (s *tsem) release(p *sim.Proc) {
	s.n++
	s.os.EventNotify(p, s.e)
}

func (s *tsem) acquire(p *sim.Proc) {
	for s.n == 0 {
		s.os.EventWait(p, s.e)
	}
	s.n--
}

func TestContextSwitchCount(t *testing.T) {
	// Two tasks ping-ponging via semaphores produce roughly one context
	// switch per handover.
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	ping := newTsem(os, "ping")
	pong := newTsem(os, "pong")
	const rounds = 10
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	b := os.TaskCreate("b", Aperiodic, 0, 0, 2)
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			os.TimeWait(p, 1)
			ping.release(p)
			pong.acquire(p)
		}
	}))
	k.Spawn("b", taskBody(os, b, func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			ping.acquire(p)
			os.TimeWait(p, 1)
			pong.release(p)
		}
	}))
	os.Start(nil)
	run(t, k)
	cs := os.StatsSnapshot().ContextSwitches
	if cs < 2*rounds-1 || cs > 2*rounds+2 {
		t.Errorf("context switches = %d, want ≈%d", cs, 2*rounds)
	}
}

func TestContextSwitchCostExtendsRuntime(t *testing.T) {
	elapsed := func(cost sim.Time) sim.Time {
		k := sim.NewKernel()
		os := New(k, "PE", PriorityPolicy{}, WithContextSwitchCost(cost))
		ping := newTsem(os, "ping")
		pong := newTsem(os, "pong")
		a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
		b := os.TaskCreate("b", Aperiodic, 0, 0, 2)
		k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				os.TimeWait(p, 1)
				ping.release(p)
				pong.acquire(p)
			}
		}))
		k.Spawn("b", taskBody(os, b, func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				ping.acquire(p)
				os.TimeWait(p, 1)
				pong.release(p)
			}
		}))
		os.Start(nil)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	free := elapsed(0)
	costed := elapsed(3)
	if costed <= free {
		t.Errorf("runtime with switch cost (%v) not longer than without (%v)", costed, free)
	}
}

func TestISRDispatchesWhenIdle(t *testing.T) {
	// CPU idle, ISR releases a task: it must be dispatched immediately.
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	e := os.EventNew("sem")
	var ranAt sim.Time
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		os.EventWait(p, e) // CPU goes idle
		ranAt = p.Now()
		os.TimeWait(p, 5)
	}))
	k.Spawn("isr", func(p *sim.Proc) {
		p.WaitFor(30)
		os.InterruptEnter(p, "irq")
		os.EventNotify(p, e)
		os.InterruptReturn(p, "irq")
	})
	os.Start(nil)
	run(t, k)
	if ranAt != 30 {
		t.Errorf("task resumed at %v, want 30", ranAt)
	}
	st := os.StatsSnapshot()
	if st.IRQs != 1 {
		t.Errorf("IRQs = %d, want 1", st.IRQs)
	}
	if st.IdleTime != 30 {
		t.Errorf("idle time = %v, want 30", st.IdleTime)
	}
}

func TestMustCurrentPanics(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	_ = a
	defer func() {
		if recover() == nil {
			t.Error("TimeWait from non-task process did not panic")
		}
	}()
	k.Spawn("rogue", func(p *sim.Proc) {
		os.TimeWait(p, 5) // not a task: must panic
	})
	os.Start(nil)
	_ = k.Run()
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"priority", "fcfs", "edf", "rm"} {
		pol, err := PolicyByName(name, 0)
		if err != nil || pol == nil {
			t.Errorf("PolicyByName(%q) = %v, %v", name, pol, err)
		}
	}
	if _, err := PolicyByName("rr", 10); err != nil {
		t.Errorf("rr with quantum: %v", err)
	}
	if _, err := PolicyByName("rr", 0); err == nil {
		t.Error("rr without quantum must fail")
	}
	if _, err := PolicyByName("lottery", 0); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestEventDelPanicsOnWait(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	e := os.EventNew("e")
	os.EventDel(e)
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("EventWait on deleted event did not panic")
		}
	}()
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		os.EventWait(p, e)
	}))
	os.Start(nil)
	_ = k.Run()
}

func TestStateStrings(t *testing.T) {
	states := []TaskState{TaskCreated, TaskReady, TaskRunning, TaskWaitingEvent,
		TaskWaitingTime, TaskWaitingChildren, TaskWaitingPeriod, TaskWaitingMutex,
		TaskSuspended, TaskTerminated, TaskKilled}
	seen := map[string]bool{}
	for _, s := range states {
		str := s.String()
		if str == "" || seen[str] {
			t.Errorf("state %d has empty or duplicate string %q", int(s), str)
		}
		seen[str] = true
	}
	if Aperiodic.String() != "aperiodic" || Periodic.String() != "periodic" {
		t.Error("TaskType strings wrong")
	}
	if TimeModelCoarse.String() != "coarse" || TimeModelSegmented.String() != "segmented" {
		t.Error("TimeModel strings wrong")
	}
}

// observerLog records observer callbacks for verification.
type observerLog struct {
	states     []string
	dispatches []string
	irqs       []string
}

func (o *observerLog) OnTaskState(at sim.Time, t *Task, old, new TaskState) {
	o.states = append(o.states, fmt.Sprintf("%v:%s:%s->%s", at, t.Name(), old, new))
}
func (o *observerLog) OnDispatch(at sim.Time, prev, next *Task) {
	name := func(t *Task) string {
		if t == nil {
			return "-"
		}
		return t.Name()
	}
	o.dispatches = append(o.dispatches, fmt.Sprintf("%v:%s->%s", at, name(prev), name(next)))
}
func (o *observerLog) OnIRQ(at sim.Time, name string, enter bool) {
	o.irqs = append(o.irqs, fmt.Sprintf("%v:%s:%v", at, name, enter))
}

func TestObserverReceivesEvents(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	log := &observerLog{}
	os.Observe(log)
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		os.TimeWait(p, 10)
	}))
	k.Spawn("isr", func(p *sim.Proc) {
		p.WaitFor(5)
		os.InterruptEnter(p, "x")
		os.InterruptReturn(p, "x")
	})
	os.Start(nil)
	run(t, k)
	if len(log.states) == 0 || len(log.dispatches) == 0 {
		t.Errorf("observer missed events: states=%d dispatches=%d", len(log.states), len(log.dispatches))
	}
	if len(log.irqs) != 2 {
		t.Errorf("irq callbacks = %d, want 2", len(log.irqs))
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	b := os.TaskCreate("b", Aperiodic, 0, 0, 2)
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) { os.TimeWait(p, 30) }))
	k.Spawn("b", taskBody(os, b, func(p *sim.Proc) { os.TimeWait(p, 20) }))
	os.Start(nil)
	run(t, k)
	if bt := os.StatsSnapshot().BusyTime; bt != 50 {
		t.Errorf("busy time = %v, want 50", bt)
	}
	if a.CPUTime() != 30 || b.CPUTime() != 20 {
		t.Errorf("cpu times a=%v b=%v, want 30/20", a.CPUTime(), b.CPUTime())
	}
}
