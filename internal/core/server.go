package core

import (
	"fmt"

	"repro/internal/sim"
)

// PollingServer is a classic aperiodic server (Buttazzo, "Hard Real-Time
// Computing Systems" — the paper's reference [5]): a periodic task with a
// capacity budget that serves queued aperiodic requests at its own
// priority, giving aperiodic work bounded response time without
// jeopardizing hard periodic tasks. It extends the RTOS model with the
// standard mechanism for mixing the paper's two task classes.
//
// Usage: create with NewPollingServer, submit work with Submit (callable
// from tasks or ISRs), and run Serve as the body of the server's process.
type PollingServer struct {
	os       *OS
	task     *Task
	capacity sim.Time

	queue   []serverJob
	pending *sim.Event

	served    int
	exhausted int // cycles in which the budget ran out with work pending
}

type serverJob struct {
	compute sim.Time
	done    func(p *sim.Proc)
}

// NewPollingServer creates the server's task with the given period,
// capacity (budget per period) and priority.
func (os *OS) NewPollingServer(name string, period, capacity sim.Time, prio int) *PollingServer {
	if capacity <= 0 || capacity > period {
		panic(fmt.Sprintf("core: polling server %q capacity %v not in (0, %v]", name, capacity, period))
	}
	return &PollingServer{
		os:       os,
		task:     os.TaskCreate(name, Periodic, period, capacity, prio),
		capacity: capacity,
		pending:  os.k.NewEvent(name + ".pending"),
	}
}

// Task returns the server's task control block.
func (s *PollingServer) Task() *Task { return s.task }

// Served returns the number of completed requests.
func (s *PollingServer) Served() int { return s.served }

// ExhaustedCycles returns how many server periods ended with the budget
// consumed while requests were still waiting.
func (s *PollingServer) ExhaustedCycles() int { return s.exhausted }

// Backlog returns the queued, unserved requests.
func (s *PollingServer) Backlog() int { return len(s.queue) }

// Submit enqueues an aperiodic request of the given compute demand; done
// (optional) runs in the server's context when the request completes.
// Callable from any process, including ISRs.
func (s *PollingServer) Submit(p *sim.Proc, compute sim.Time, done func(p *sim.Proc)) {
	s.queue = append(s.queue, serverJob{compute: compute, done: done})
	p.Notify(s.pending)
}

// Serve is the server task's body: activate it with the server's process,
// then call Serve, which loops forever (spawn as a daemon process).
// Each period it serves queued requests until the budget is exhausted; in
// the polling variant, unused budget is dropped when the queue empties.
func (s *PollingServer) Serve(p *sim.Proc) {
	os := s.os
	os.TaskActivate(p, s.task)
	for {
		budget := s.capacity
		for budget > 0 && len(s.queue) > 0 {
			job := s.queue[0]
			slice := job.compute
			if slice > budget {
				slice = budget
			}
			os.TimeWait(p, slice)
			budget -= slice
			job.compute -= slice
			if job.compute <= 0 {
				s.queue = s.queue[1:]
				s.served++
				if job.done != nil {
					job.done(p)
				}
			} else {
				s.queue[0] = job // partially served: resume next period
			}
		}
		if budget == 0 && len(s.queue) > 0 {
			s.exhausted++
		}
		os.TaskEndCycle(p)
	}
}
