package core

import (
	"testing"

	"repro/internal/sim"
)

// inversionScenario runs the classic three-task priority-inversion
// pattern (the Mars Pathfinder situation) and returns the time at which
// the high-priority task finally acquired the lock:
//
//	t=0  L (low prio) locks the mutex and computes 100 inside it
//	t=10 H (high prio) arrives and blocks on the mutex
//	t=20 M (medium prio) arrives with 200 of unrelated compute
//
// Without inheritance, M preempts L and H waits for M + L. With
// inheritance, L is boosted to H's priority, M cannot interfere, and H's
// inversion is bounded by L's critical section.
func inversionScenario(t *testing.T, inherit bool) sim.Time {
	t.Helper()
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{}, WithTimeModel(TimeModelSegmented))
	m := os.MutexNew("resource", inherit)

	low := os.TaskCreate("L", Aperiodic, 0, 0, 30)
	high := os.TaskCreate("H", Aperiodic, 0, 0, 10)
	med := os.TaskCreate("M", Aperiodic, 0, 0, 20)

	var acquired sim.Time
	k.Spawn("L", func(p *sim.Proc) {
		os.TaskActivate(p, low)
		m.Lock(p)
		os.TimeWait(p, 100) // critical section
		m.Unlock(p)
		os.TimeWait(p, 10)
		os.TaskTerminate(p)
	})
	k.Spawn("H", func(p *sim.Proc) {
		p.WaitFor(10)
		os.TaskActivate(p, high)
		m.Lock(p)
		acquired = p.Now()
		os.TimeWait(p, 10)
		m.Unlock(p)
		os.TaskTerminate(p)
	})
	k.Spawn("M", func(p *sim.Proc) {
		p.WaitFor(20)
		os.TaskActivate(p, med)
		os.TimeWait(p, 200) // unrelated compute
		os.TaskTerminate(p)
	})
	os.Start(nil)
	run(t, k)
	return acquired
}

func TestPriorityInversionUnbounded(t *testing.T) {
	acquired := inversionScenario(t, false)
	// Without inheritance, M's 200 units delay H: L is preempted at t=20
	// with ~90 of its critical section left, resumes at 220, unlocks at
	// ~310.
	if acquired < 300 {
		t.Errorf("H acquired at %v; expected unbounded inversion (≥ 300) without inheritance", acquired)
	}
}

func TestPriorityInheritanceBoundsInversion(t *testing.T) {
	acquired := inversionScenario(t, true)
	// With inheritance, H waits only for L's critical section: L runs
	// 0..100 (boosted from t=10), unlocks at 100, H acquires immediately.
	if acquired != 100 {
		t.Errorf("H acquired at %v, want 100 (inversion bounded by the critical section)", acquired)
	}
}

func TestMutexHandoverFollowsPolicy(t *testing.T) {
	// Two waiters of different priority: the higher-priority one gets the
	// mutex first regardless of arrival order.
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	m := os.MutexNew("res", false)
	var order []string
	hold := os.TaskCreate("hold", Aperiodic, 0, 0, 0)
	wLow := os.TaskCreate("wLow", Aperiodic, 0, 0, 20)
	wHigh := os.TaskCreate("wHigh", Aperiodic, 0, 0, 10)
	k.Spawn("hold", taskBody(os, hold, func(p *sim.Proc) {
		m.Lock(p)
		os.TimeWait(p, 50)
		m.Unlock(p)
	}))
	k.Spawn("wLow", func(p *sim.Proc) {
		p.WaitFor(5) // arrives first
		os.TaskActivate(p, wLow)
		m.Lock(p)
		order = append(order, "low")
		m.Unlock(p)
		os.TaskTerminate(p)
	})
	k.Spawn("wHigh", func(p *sim.Proc) {
		p.WaitFor(10) // arrives second
		os.TaskActivate(p, wHigh)
		m.Lock(p)
		order = append(order, "high")
		m.Unlock(p)
		os.TaskTerminate(p)
	})
	os.Start(nil)
	run(t, k)
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Errorf("handover order = %v, want [high low]", order)
	}
}

func TestMutexTryLock(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	m := os.MutexNew("res", false)
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		if !m.TryLock(p) {
			t.Error("TryLock on free mutex failed")
		}
		if m.TryLock(p) {
			t.Error("TryLock on own mutex succeeded (recursion)")
		}
		m.Unlock(p)
		if m.Owner() != nil {
			t.Error("owner not cleared")
		}
	}))
	os.Start(nil)
	run(t, k)
}

func TestMutexRecursiveLockPanics(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	m := os.MutexNew("res", false)
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("recursive Lock did not panic")
		}
	}()
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		m.Lock(p)
		m.Lock(p)
	}))
	os.Start(nil)
	_ = k.Run()
}

func TestMutexForeignUnlockPanics(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	m := os.MutexNew("res", false)
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	b := os.TaskCreate("b", Aperiodic, 0, 0, 2)
	defer func() {
		if recover() == nil {
			t.Error("foreign Unlock did not panic")
		}
	}()
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		m.Lock(p)
		os.TimeWait(p, 100)
		m.Unlock(p)
	}))
	k.Spawn("b", taskBody(os, b, func(p *sim.Proc) {
		os.TimeWait(p, 10)
		m.Unlock(p) // not the owner
	}))
	os.Start(nil)
	_ = k.Run()
}

func TestMutexHandoverSkipsKilledWaiter(t *testing.T) {
	// A waiter killed while blocked on the mutex must not receive
	// ownership, and waiters behind it must still be served.
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	m := os.MutexNew("res", false)
	var survivorGotIt bool
	hold := os.TaskCreate("hold", Aperiodic, 0, 0, 0)
	doomed := os.TaskCreate("doomed", Aperiodic, 0, 0, 5)
	survivor := os.TaskCreate("survivor", Aperiodic, 0, 0, 10)
	k.Spawn("hold", taskBody(os, hold, func(p *sim.Proc) {
		m.Lock(p)
		os.TimeWait(p, 50)
		os.TaskKill(p, doomed) // doomed dies while queued on the mutex
		m.Unlock(p)
	}))
	k.Spawn("doomed", func(p *sim.Proc) {
		p.WaitFor(5)
		os.TaskActivate(p, doomed)
		m.Lock(p)
		t.Error("doomed acquired the mutex after being killed")
		m.Unlock(p)
		os.TaskTerminate(p)
	})
	k.Spawn("survivor", func(p *sim.Proc) {
		p.WaitFor(10)
		os.TaskActivate(p, survivor)
		m.Lock(p)
		survivorGotIt = true
		m.Unlock(p)
		os.TaskTerminate(p)
	})
	os.Start(nil)
	run(t, k)
	if !survivorGotIt {
		t.Error("survivor never acquired the mutex")
	}
}

func TestMutexPriorityRestoredAfterUnlock(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{}, WithTimeModel(TimeModelSegmented))
	m := os.MutexNew("res", true)
	low := os.TaskCreate("L", Aperiodic, 0, 0, 30)
	high := os.TaskCreate("H", Aperiodic, 0, 0, 10)
	var prioInside, prioAfter int
	k.Spawn("L", func(p *sim.Proc) {
		os.TaskActivate(p, low)
		m.Lock(p)
		os.TimeWait(p, 50)
		prioInside = low.Priority() // boosted to 10 once H blocks
		m.Unlock(p)
		prioAfter = low.Priority()
		os.TimeWait(p, 10)
		os.TaskTerminate(p)
	})
	k.Spawn("H", func(p *sim.Proc) {
		p.WaitFor(10)
		os.TaskActivate(p, high)
		m.Lock(p)
		m.Unlock(p)
		os.TaskTerminate(p)
	})
	os.Start(nil)
	run(t, k)
	if prioInside != 10 {
		t.Errorf("owner priority inside CS = %d, want boosted 10", prioInside)
	}
	if prioAfter != 30 {
		t.Errorf("owner priority after unlock = %d, want restored 30", prioAfter)
	}
	if m.Boosts() == 0 || m.Contended() == 0 {
		t.Errorf("boosts=%d contended=%d, want > 0", m.Boosts(), m.Contended())
	}
}
