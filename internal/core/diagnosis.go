package core

// This file adds runtime diagnosis to the RTOS model: a wait-for-graph
// deadlock detector over the synchronization primitives layered on the
// model (core.Mutex and the channel library's semaphores, queues,
// rendezvous mailboxes and barriers), a livelock/starvation watchdog, and
// graceful degradation — on detection the simulation drains, observers
// that implement DiagnosisObserver emit a diagnostic event stream (the
// telemetry layer's fault.* kinds), and Run/RunUntil returns a structured
// *DiagnosisError instead of hanging or panicking.
//
// Detection runs at three points:
//
//  1. At block time, for exclusive (ownership-style) resources: a task
//     about to block on a mutex whose ownership chain leads back to
//     itself has definitely closed a circular wait, and the run fails
//     immediately — even while unrelated tasks keep the simulation busy.
//  2. At a kernel stall (the instant the simulation would report a
//     sim.DeadlockError): the full wait-for graph, including counting
//     semaphores and rendezvous, is searched for a cycle. A cycle through
//     at least two distinct resources is reported as a deadlock with the
//     exact task ring; blocked tasks without such a cycle (e.g. consumers
//     of a dropped interrupt's semaphore) are reported as a stall with
//     every blocking site listed.
//  3. Optionally, from a simulated-time watchdog (EnableWatchdog): if no
//     dispatch happened for a full window while runnable work exists, a
//     starvation is reported; if only the watchdog's own timer keeps the
//     simulation alive, the stall diagnosis of point 2 runs.
//
// The detector is always armed — tracking only does map work on the
// blocking slow path — so every existing model exercises its
// false-positive resistance; the watchdog alone is opt-in because its
// timer perturbs quiescence detection.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// DiagnosisKind classifies what the runtime diagnosis found.
type DiagnosisKind int

const (
	// DiagDeadlock: a cycle in the wait-for graph spanning at least two
	// distinct resources — tasks waiting on each other in a ring.
	DiagDeadlock DiagnosisKind = iota
	// DiagStall: blocked tasks with no pending work to wake them, but no
	// resource cycle explains the blockage — typically a lost signal
	// (e.g. a dropped interrupt) leaving consumers waiting forever.
	DiagStall
	// DiagStarvation: the watchdog observed runnable tasks but no
	// dispatch progress for a full window.
	DiagStarvation
)

// String returns "deadlock", "stall" or "starvation".
func (k DiagnosisKind) String() string {
	switch k {
	case DiagDeadlock:
		return "deadlock"
	case DiagStarvation:
		return "starvation"
	default:
		return "stall"
	}
}

// WaitEdge is one arc of the wait-for graph: a blocked task, the resource
// (blocking site) it waits on, and — when the resource has a determinate
// owner — the task holding it.
type WaitEdge struct {
	Task     string // blocked task
	Resource string // blocking site, "kind:name"
	Holder   string // holding task ("" when the resource has no single owner)
}

func (e WaitEdge) String() string {
	if e.Holder == "" {
		return fmt.Sprintf("%s blocked on %s", e.Task, e.Resource)
	}
	return fmt.Sprintf("%s waits on %s held by %s", e.Task, e.Resource, e.Holder)
}

// DiagnosisError is the structured result of a runtime diagnosis. For
// DiagDeadlock, Cycle lists the wait-for ring in canonical rotation
// (starting at the lexicographically smallest task name); Blocked always
// lists every blocked task with its blocking site.
type DiagnosisError struct {
	PE      string
	Kind    DiagnosisKind
	At      sim.Time
	Cycle   []WaitEdge // DiagDeadlock: the circular wait, in order
	Blocked []WaitEdge // every blocked task with its blocking site
	Window  sim.Time   // DiagStarvation: the watchdog window
}

func (e *DiagnosisError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core[%s]: %s diagnosed at %s", e.PE, e.Kind, e.At)
	if e.Kind == DiagStarvation {
		fmt.Fprintf(&b, " (no dispatch progress for %s)", e.Window)
	}
	for _, edge := range e.Cycle {
		fmt.Fprintf(&b, "\n\tcycle: %s", edge)
	}
	if len(e.Cycle) == 0 {
		for _, edge := range e.Blocked {
			fmt.Fprintf(&b, "\n\tblocked: %s", edge)
		}
	}
	return b.String()
}

// DiagnosisObserver is an optional extension of Observer: observers
// registered with OS.Observe that also implement it receive every runtime
// diagnosis recorded on the instance (the telemetry layer converts these
// into fault.* events).
type DiagnosisObserver interface {
	OnDiagnosis(at sim.Time, d *DiagnosisError)
}

// isBlockedState reports task states that wait on another task's action
// (never on a timer): these are the nodes of the wait-for graph.
func isBlockedState(s TaskState) bool {
	switch s {
	case TaskWaitingEvent, TaskWaitingMutex, TaskWaitingChildren, TaskSuspended:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Wait-for graph.

// Monitor maintains the wait-for graph of one OS instance: which task is
// blocked on which resource, and which tasks hold each resource. The
// synchronization primitives feed it; every OS has one (see OS.Monitor).
type Monitor struct {
	os        *OS
	resources []*Resource
	waiting   map[*Task]*Resource
}

func newMonitor(os *OS) *Monitor {
	return &Monitor{os: os, waiting: make(map[*Task]*Resource)}
}

// Monitor returns the instance's wait-for-graph monitor.
func (os *OS) Monitor() *Monitor { return os.monitor }

// NewResource registers a diagnosable resource. kind is a short class
// name ("mutex", "semaphore", "queue", ...); exclusive marks
// ownership-style resources (single determinate holder), which enable the
// immediate cycle check at block time.
func (m *Monitor) NewResource(name, kind string, exclusive bool) *Resource {
	r := &Resource{m: m, name: name, kind: kind, exclusive: exclusive,
		holders: make(map[*Task]int)}
	m.resources = append(m.resources, r)
	return r
}

// Resource is one node class of the wait-for graph. All methods are
// nil-receiver safe, so channels built on a non-RTOS factory can carry a
// nil resource at zero cost.
type Resource struct {
	m         *Monitor
	name      string
	kind      string
	exclusive bool
	holders   map[*Task]int // task -> acquired-but-not-released count
}

// Site returns the blocking-site label, "kind:name".
func (r *Resource) Site() string { return r.kind + ":" + r.name }

// Block registers the calling process's task as blocked on r and, for
// exclusive resources, runs the immediate circular-wait check. Pair with
// Unblock (or Acquire) when the wait is over. Calls from processes that
// are not tasks of the monitored OS (ISRs, spec-level processes) are
// no-ops.
func (r *Resource) Block(p *sim.Proc) {
	if r == nil {
		return
	}
	if t := r.m.taskOf(p); t != nil {
		r.m.blockTask(t, r)
	}
}

// Unblock removes the calling process's task from the waiter set.
func (r *Resource) Unblock(p *sim.Proc) {
	if r == nil {
		return
	}
	if t := r.m.taskOf(p); t != nil {
		delete(r.m.waiting, t)
	}
}

// Acquire records the calling process's task as a holder of r (and ends
// any registered wait).
func (r *Resource) Acquire(p *sim.Proc) {
	if r == nil {
		return
	}
	if t := r.m.taskOf(p); t != nil {
		r.acquireTask(t)
	}
}

// Release drops one hold of the calling process's task on r. Releases by
// processes that never acquired (interrupt handlers signalling a
// semaphore) are no-ops.
func (r *Resource) Release(p *sim.Proc) {
	if r == nil {
		return
	}
	if t := r.m.taskOf(p); t != nil {
		r.releaseTask(t)
	}
}

func (r *Resource) acquireTask(t *Task) {
	delete(r.m.waiting, t)
	r.holders[t]++
}

func (r *Resource) releaseTask(t *Task) {
	if n := r.holders[t]; n > 1 {
		r.holders[t] = n - 1
	} else if n == 1 {
		delete(r.holders, t)
	}
}

// soleHolder returns the single holding task of an exclusively held
// resource, nil otherwise.
func (r *Resource) soleHolder() *Task {
	if len(r.holders) != 1 {
		return nil
	}
	for t := range r.holders {
		return t
	}
	return nil
}

// sortedHolders returns the live holders in task-creation order, so graph
// walks are deterministic.
func (r *Resource) sortedHolders() []*Task {
	hs := make([]*Task, 0, len(r.holders))
	for t := range r.holders {
		if t.state.Alive() {
			hs = append(hs, t)
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].id < hs[j].id })
	return hs
}

// taskOf resolves a simulation process to its task on this OS (nil for
// ISRs and foreign processes).
func (m *Monitor) taskOf(p *sim.Proc) *Task {
	for _, t := range m.os.tasks {
		if t.proc == p {
			return t
		}
	}
	return nil
}

// blockTask records the wait edge and, when the resource is exclusive,
// walks the ownership chain: if it leads back to the blocking task, the
// circular wait is definite and the run fails with the cycle.
func (m *Monitor) blockTask(t *Task, r *Resource) {
	m.waiting[t] = r
	if !r.exclusive {
		return
	}
	var cyc []WaitEdge
	cur, rr := t, r
	for {
		h := rr.soleHolder()
		if h == nil || !h.state.Alive() {
			return
		}
		cyc = append(cyc, WaitEdge{Task: cur.name, Resource: rr.Site(), Holder: h.name})
		if h == t {
			d := &DiagnosisError{PE: m.os.name, Kind: DiagDeadlock,
				At: m.os.k.Now(), Cycle: canonicalCycle(cyc)}
			m.os.recordDiagnosis(d)
			m.os.k.Fail(d)
			return
		}
		next := m.waiting[h]
		if next == nil || !next.exclusive || !isBlockedState(h.state) {
			return
		}
		cur, rr = h, next
	}
}

// findCycle searches the full wait-for graph — including non-exclusive
// resources such as counting semaphores — for a circular wait spanning at
// least two distinct resources. Tasks and holders are visited in creation
// order, so the reported cycle is deterministic. Cycles through a single
// resource (co-waiters of one semaphore that each hold stale acquire
// counts) are not circular waits and yield nil; the stall report covers
// them.
func (m *Monitor) findCycle() []WaitEdge {
	color := make(map[*Task]int) // 0 unvisited, 1 on stack, 2 done
	var stack []*Task
	var edges []WaitEdge // edges[i]: stack[i] -> stack[i+1]
	var cycle []WaitEdge

	blockedOn := func(t *Task) *Resource {
		if !t.state.Alive() || !isBlockedState(t.state) {
			return nil
		}
		return m.waiting[t]
	}
	var dfs func(t *Task) bool
	dfs = func(t *Task) bool {
		color[t] = 1
		stack = append(stack, t)
		defer func() {
			stack = stack[:len(stack)-1]
			color[t] = 2
		}()
		r := blockedOn(t)
		if r == nil {
			return false
		}
		for _, h := range r.sortedHolders() {
			if h == t {
				continue // self-hold (signal-style semaphore use)
			}
			e := WaitEdge{Task: t.name, Resource: r.Site(), Holder: h.name}
			if color[h] == 1 {
				idx := 0
				for i, s := range stack {
					if s == h {
						idx = i
						break
					}
				}
				cycle = append(append([]WaitEdge(nil), edges[idx:]...), e)
				return true
			}
			if color[h] == 0 && blockedOn(h) != nil {
				edges = append(edges, e)
				if dfs(h) {
					return true
				}
				edges = edges[:len(edges)-1]
			}
		}
		return false
	}
	for _, t := range m.os.tasks {
		if color[t] == 0 && blockedOn(t) != nil {
			if dfs(t) {
				break
			}
		}
	}
	if len(cycle) == 0 {
		return nil
	}
	distinct := map[string]bool{}
	for _, e := range cycle {
		distinct[e.Resource] = true
	}
	if len(distinct) < 2 {
		return nil
	}
	return canonicalCycle(cycle)
}

// canonicalCycle rotates a cycle so the lexicographically smallest task
// name comes first — the same circular wait always reports identically.
func canonicalCycle(cyc []WaitEdge) []WaitEdge {
	if len(cyc) == 0 {
		return cyc
	}
	min := 0
	for i := range cyc {
		if cyc[i].Task < cyc[min].Task {
			min = i
		}
	}
	return append(append([]WaitEdge(nil), cyc[min:]...), cyc[:min]...)
}

// ---------------------------------------------------------------------------
// OS-level diagnosis.

// Diagnosis returns the first runtime diagnosis recorded on this instance
// (nil if the run was diagnosis-clean so far).
func (os *OS) Diagnosis() *DiagnosisError { return os.diagnosis }

// DiagnoseNow inspects the current task states on demand — e.g.
// post-mortem after a RunUntil horizon left tasks unfinished — and
// returns a diagnosis, or nil when no alive task is blocked on a peer.
// Unlike the automatic detection points it does not record or emit
// anything.
func (os *OS) DiagnoseNow() *DiagnosisError { return os.diagnoseStall() }

// recordDiagnosis stores the first diagnosis and fans it out to
// DiagnosisObserver implementations.
func (os *OS) recordDiagnosis(d *DiagnosisError) {
	if os.diagnosis == nil {
		os.diagnosis = d
	}
	for _, o := range os.observers {
		if do, ok := o.(DiagnosisObserver); ok {
			do.OnDiagnosis(d.At, d)
		}
	}
}

// diagnoseStall builds the structural diagnosis of the current blockage:
// nil when no alive task is blocked on a peer; otherwise a deadlock (with
// the exact cycle) or a stall listing every blocked task and site.
// Tasks whose process is a daemon are not stranded workload — an OSEK
// personality parks every task in SUSPENDED between activations on a
// daemon process, exactly like the kernel's own liveness rule — so they
// never appear in a stall report (a genuine cycle through one would
// still surface via findCycle on the non-daemon waiters).
func (os *OS) diagnoseStall() *DiagnosisError {
	var blocked []WaitEdge
	for _, t := range os.tasks {
		if !t.state.Alive() || !isBlockedState(t.state) {
			continue
		}
		if t.proc != nil && t.proc.Daemon() {
			continue
		}
		e := WaitEdge{Task: t.name, Resource: os.blockSiteOf(t)}
		if r := os.monitor.waiting[t]; r != nil {
			if h := r.soleHolder(); h != nil && h != t {
				e.Holder = h.name
			}
		}
		blocked = append(blocked, e)
	}
	if len(blocked) == 0 {
		return nil
	}
	d := &DiagnosisError{PE: os.name, Kind: DiagStall, At: os.k.Now(), Blocked: blocked}
	if cyc := os.monitor.findCycle(); len(cyc) > 0 {
		d.Kind = DiagDeadlock
		d.Cycle = cyc
	}
	return d
}

// blockSiteOf names a blocked task's blocking site: the monitored
// resource if one is registered, the RTOS event for bare EventWait, or
// the waiting state's reason.
func (os *OS) blockSiteOf(t *Task) string {
	if r := os.monitor.waiting[t]; r != nil {
		return r.Site()
	}
	if t.blockSite != "" && t.state == TaskWaitingEvent {
		return t.blockSite
	}
	return blockReasonFor(t.state).String()
}

// allTasksDone reports whether every created task has terminated.
func (os *OS) allTasksDone() bool {
	if len(os.tasks) == 0 {
		return false
	}
	for _, t := range os.tasks {
		if t.state.Alive() {
			return false
		}
	}
	return true
}

// EnableWatchdog spawns a daemon process that checks dispatch progress
// every window of simulated time. If no dispatch happened for a full
// window it reports either the hidden stall (when only the watchdog's own
// timer keeps the simulation alive: the structural deadlock/stall
// diagnosis of the kernel-stall path) or a starvation (runnable tasks but
// no dispatch). The window must exceed the longest legitimate
// uninterrupted CPU occupancy of the model, or long delays under
// non-preemptive policies are misreported. The watchdog exits once all
// tasks terminate; it is idempotent per instance.
//
// Starvation is only declared after two consecutive progress-free
// checks: a timer wake in the very instant of a check can make a task
// ready before the scheduler has run, and a single sample cannot tell
// that boundary race from real starvation. The hidden-stall check stays
// immediate — with no pending timers nothing can change.
func (os *OS) EnableWatchdog(window sim.Time) {
	if window <= 0 || os.watchdogOn {
		return
	}
	os.watchdogOn = true
	pr := os.k.Spawn("watchdog:"+os.name, func(p *sim.Proc) {
		last := ^uint64(0)
		starving := false
		for {
			p.WaitFor(window)
			if os.allTasksDone() {
				return
			}
			cur := os.progress
			if cur != last {
				last, starving = cur, false
				continue
			}
			d := os.watchdogDiagnose(window)
			if d == nil {
				starving = false
				continue
			}
			if d.Kind == DiagStarvation && !starving {
				starving = true
				continue
			}
			os.recordDiagnosis(d)
			os.k.Fail(d)
			return
		}
	})
	pr.SetDaemon(true)
}

// watchdogDiagnose decides what a progress-free window means.
func (os *OS) watchdogDiagnose(window sim.Time) *DiagnosisError {
	// Hidden stall: nothing runnable and no timer other than the
	// watchdog's own (just fired, not yet re-armed) — without the watchdog
	// the kernel itself would have reported the stall.
	if os.readyLen() == 0 && os.current == nil && os.k.PendingTimers() == 0 {
		return os.diagnoseStall()
	}
	// Starvation: runnable work exists but nothing was dispatched for a
	// full window.
	if os.readyLen() > 0 {
		d := &DiagnosisError{PE: os.name, Kind: DiagStarvation,
			At: os.k.Now(), Window: window}
		holder := ""
		if os.current != nil {
			holder = os.current.name
		}
		for _, t := range os.tasks {
			if t.state == TaskReady {
				d.Blocked = append(d.Blocked,
					WaitEdge{Task: t.name, Resource: "cpu", Holder: holder})
			}
		}
		return d
	}
	return nil
}
