package core

import (
	"fmt"
	"sort"

	"repro/internal/readyq"
	"repro/internal/sim"
)

// Policy is a pluggable scheduling algorithm for the RTOS model (the
// paper's start(sched_alg) parameter). A policy defines a strict ordering
// over runnable tasks; the dispatcher always runs the least task under
// Less. Ties are broken FIFO by ready-queue arrival.
type Policy interface {
	// Name identifies the policy in traces and experiment output.
	Name() string
	// Preemptive reports whether a newly ready task that orders before the
	// running task takes the CPU away at the next scheduling point.
	Preemptive() bool
	// Less reports whether a should run in preference to b. It must be a
	// strict weak ordering and must not consider ready-queue arrival
	// order; the dispatcher adds the FIFO tie-break itself.
	Less(a, b *Task) bool
	// Slice returns the round-robin time slice, or 0 for no time slicing.
	Slice() sim.Time
}

// Ranker is an optional Policy extension that enables the indexed ready
// queue (internal/readyq): Rank maps a task to a two-component key whose
// lexicographic order must be identical to the policy's Less ordering.
// The key may depend only on fields whose mutation is reported to the
// dispatcher (priority via Task.SetPriority / priority inheritance,
// deadline via Task.SetDeadline / release) — the OS re-keys queued tasks
// on those paths. Policies without Rank fall back to the linear
// ready-list scan.
type Ranker interface {
	Rank(t *Task) readyq.Key
}

// PriorityPolicy is fixed-priority preemptive scheduling — the paper's
// default algorithm, used for its Figure 8 and vocoder experiments.
// Smaller priority values run first.
type PriorityPolicy struct{}

// Name returns "priority".
func (PriorityPolicy) Name() string { return "priority" }

// Preemptive returns true.
func (PriorityPolicy) Preemptive() bool { return true }

// Less orders by base priority.
func (PriorityPolicy) Less(a, b *Task) bool { return a.prio < b.prio }

// Slice returns 0: no time slicing.
func (PriorityPolicy) Slice() sim.Time { return 0 }

// Rank indexes by base priority.
func (PriorityPolicy) Rank(t *Task) readyq.Key { return readyq.Key{A: int64(t.prio)} }

// FCFSPolicy is non-preemptive first-come-first-served scheduling: tasks
// run in ready-queue order and keep the CPU until they block or finish.
type FCFSPolicy struct{}

// Name returns "fcfs".
func (FCFSPolicy) Name() string { return "fcfs" }

// Preemptive returns false.
func (FCFSPolicy) Preemptive() bool { return false }

// Less imposes no ordering beyond FIFO arrival (handled by the
// dispatcher's tie-break).
func (FCFSPolicy) Less(a, b *Task) bool { return false }

// Slice returns 0: no time slicing.
func (FCFSPolicy) Slice() sim.Time { return 0 }

// Rank is constant: FCFS order is the dispatcher's FIFO tie-break alone.
func (FCFSPolicy) Rank(t *Task) readyq.Key { return readyq.Key{} }

// RoundRobinPolicy is priority scheduling with time slicing among tasks of
// equal priority: a task that exhausts its slice inside TimeWait is moved
// behind its equal-priority peers.
type RoundRobinPolicy struct {
	// Quantum is the time slice; it must be positive.
	Quantum sim.Time
}

// Name returns "rr".
func (p RoundRobinPolicy) Name() string { return "rr" }

// Preemptive returns true.
func (p RoundRobinPolicy) Preemptive() bool { return true }

// Less orders by base priority; rotation within a priority level is
// implemented by the dispatcher re-queueing on slice expiry.
func (p RoundRobinPolicy) Less(a, b *Task) bool { return a.prio < b.prio }

// Slice returns the configured quantum.
func (p RoundRobinPolicy) Slice() sim.Time { return p.Quantum }

// Rank indexes by base priority; slice-expiry rotation re-queues with a
// fresh arrival seq, which the FIFO tie-break turns into the rotation.
func (p RoundRobinPolicy) Rank(t *Task) readyq.Key { return readyq.Key{A: int64(t.prio)} }

// EDFPolicy is preemptive earliest-deadline-first scheduling. Periodic
// tasks receive an absolute deadline of release+period at every release;
// aperiodic tasks default to no deadline (sim.Forever) and therefore yield
// to all deadline-constrained work.
type EDFPolicy struct{}

// Name returns "edf".
func (EDFPolicy) Name() string { return "edf" }

// Preemptive returns true.
func (EDFPolicy) Preemptive() bool { return true }

// Less orders by absolute deadline, using base priority as a secondary
// key so deadline ties remain deterministic under priority intent.
func (EDFPolicy) Less(a, b *Task) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.prio < b.prio
}

// Slice returns 0: no time slicing.
func (EDFPolicy) Slice() sim.Time { return 0 }

// Rank indexes by (absolute deadline, base priority), matching Less.
func (EDFPolicy) Rank(t *Task) readyq.Key {
	return readyq.Key{A: int64(t.deadline), B: int64(t.prio)}
}

// RMPolicy is rate-monotonic scheduling: fixed-priority preemptive with
// priorities derived from periods (shorter period = higher priority).
// OS.Start assigns the derived priorities to all periodic tasks created up
// to that point; aperiodic tasks keep their base priority shifted below
// every periodic task.
type RMPolicy struct{}

// Name returns "rm".
func (RMPolicy) Name() string { return "rm" }

// Preemptive returns true.
func (RMPolicy) Preemptive() bool { return true }

// Less orders by (derived) base priority.
func (RMPolicy) Less(a, b *Task) bool { return a.prio < b.prio }

// Slice returns 0: no time slicing.
func (RMPolicy) Slice() sim.Time { return 0 }

// Rank indexes by the derived base priority.
func (RMPolicy) Rank(t *Task) readyq.Key { return readyq.Key{A: int64(t.prio)} }

// assignRateMonotonic rewrites task priorities per RM: periodic tasks are
// ranked by period (shortest first); aperiodic tasks are pushed below all
// periodic ones, preserving their relative base-priority order.
func assignRateMonotonic(tasks []*Task) {
	var periodic, aperiodic []*Task
	for _, t := range tasks {
		if t.typ == Periodic {
			periodic = append(periodic, t)
		} else {
			aperiodic = append(aperiodic, t)
		}
	}
	sort.SliceStable(periodic, func(i, j int) bool {
		return periodic[i].period < periodic[j].period
	})
	sort.SliceStable(aperiodic, func(i, j int) bool {
		return aperiodic[i].prio < aperiodic[j].prio
	})
	p := 0
	for _, t := range periodic {
		t.prio = p
		p++
	}
	for _, t := range aperiodic {
		t.prio = p
		p++
	}
}

// PolicyByName returns the policy for a command-line name: "priority",
// "fcfs", "rr" (requires quantum), "edf", or "rm".
func PolicyByName(name string, quantum sim.Time) (Policy, error) {
	switch name {
	case "priority", "prio":
		return PriorityPolicy{}, nil
	case "fcfs", "fifo":
		return FCFSPolicy{}, nil
	case "rr", "roundrobin":
		if quantum <= 0 {
			return nil, fmt.Errorf("core: round-robin needs a positive quantum, got %v", quantum)
		}
		return RoundRobinPolicy{Quantum: quantum}, nil
	case "edf":
		return EDFPolicy{}, nil
	case "rm", "ratemonotonic":
		return RMPolicy{}, nil
	default:
		return nil, fmt.Errorf("core: unknown scheduling policy %q", name)
	}
}
