package core

import (
	"testing"

	"repro/internal/sim"
)

// startPair builds an OS with two aperiodic tasks whose bodies are
// provided by the caller. Each body self-activates and terminates.
func startPair(t *testing.T, policy Policy, hi, lo func(p *sim.Proc, os *OS, self *Task)) (*sim.Kernel, *OS) {
	t.Helper()
	k := sim.NewKernel()
	os := New(k, "CPU", policy)
	os.Init()
	thi := os.TaskCreate("hi", Aperiodic, 0, 0, 1)
	tlo := os.TaskCreate("lo", Aperiodic, 0, 0, 5)
	k.Spawn("hi", func(p *sim.Proc) {
		os.TaskActivate(p, thi)
		hi(p, os, thi)
		os.TaskTerminate(p)
	})
	k.Spawn("lo", func(p *sim.Proc) {
		os.TaskActivate(p, tlo)
		lo(p, os, tlo)
		os.TaskTerminate(p)
	})
	os.Start(nil)
	return k, os
}

// TestSuspendResume: a task suspended via the personality surface is
// resumed by another task and continues with correct time accounting.
func TestSuspendResume(t *testing.T) {
	var resumedAt sim.Time
	var target *Task
	k, os := startPair(t, PriorityPolicy{},
		func(p *sim.Proc, os *OS, self *Task) {
			target = self
			os.Suspend(p, TaskWaitingEvent, "test:obj")
			resumedAt = p.Now()
		},
		func(p *sim.Proc, os *OS, self *Task) {
			os.TimeWait(p, 100)
			os.Resume(p, target)
		})
	defer k.Shutdown()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if resumedAt != 100 {
		t.Errorf("resumed at %v, want 100", resumedAt)
	}
	if err := os.CheckConservation(); err != nil {
		t.Error(err)
	}
}

// TestSuspendTimeoutExpiry: the timeout path fires onTimeout exactly at
// the deadline and returns false; a later Resume of the timed-out task
// is a harmless no-op.
func TestSuspendTimeoutExpiry(t *testing.T) {
	var woken bool
	var timeoutAt sim.Time = -1
	var target *Task
	k, os := startPair(t, PriorityPolicy{},
		func(p *sim.Proc, os *OS, self *Task) {
			target = self
			woken = os.SuspendTimeout(p, TaskWaitingEvent, "test:obj", 50, func() {
				timeoutAt = p.Now()
			})
		},
		func(p *sim.Proc, os *OS, self *Task) {
			os.TimeWait(p, 200)
			os.Resume(p, target) // target already timed out: no-op
		})
	defer k.Shutdown()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken {
		t.Error("SuspendTimeout returned true, want timeout (false)")
	}
	if timeoutAt != 50 {
		t.Errorf("onTimeout at %v, want 50", timeoutAt)
	}
	if err := os.CheckConservation(); err != nil {
		t.Error(err)
	}
}

// TestSuspendTimeoutWoken: a resume before the deadline wins and the
// timeout callback never runs.
func TestSuspendTimeoutWoken(t *testing.T) {
	woken := false
	timedOut := false
	var target *Task
	k, _ := startPair(t, PriorityPolicy{},
		func(p *sim.Proc, os *OS, self *Task) {
			target = self
			woken = os.SuspendTimeout(p, TaskWaitingEvent, "test:obj", 500,
				func() { timedOut = true })
		},
		func(p *sim.Proc, os *OS, self *Task) {
			os.TimeWait(p, 20)
			os.Resume(p, target)
		})
	defer k.Shutdown()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken || timedOut {
		t.Errorf("woken=%v timedOut=%v, want true/false", woken, timedOut)
	}
}

// TestNonPreemptableRunsToSchedulingPoint: a low-priority non-preemptable
// task keeps the CPU across a higher-priority release (segmented model)
// until its explicit Yield point.
func TestNonPreemptableRunsToSchedulingPoint(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "CPU", PriorityPolicy{}, WithTimeModel(TimeModelSegmented))
	os.Init()
	thi := os.TaskCreate("hi", Aperiodic, 0, 0, 1)
	tlo := os.TaskCreate("lo", Aperiodic, 0, 0, 5)
	tlo.SetPreemptable(false)

	var hiRan sim.Time = -1
	k.Spawn("lo", func(p *sim.Proc) {
		os.TaskActivate(p, tlo)
		os.TimeWait(p, 100) // hi released at t=10 must not preempt
		os.TimeWait(p, 50)
		os.Yield(p) // explicit scheduling point: hi takes over here
		os.TimeWait(p, 10)
		os.TaskTerminate(p)
	})
	k.Spawn("irq", func(p *sim.Proc) {
		p.WaitFor(10)
		os.InterruptEnter(p, "irq")
		os.TaskActivate(p, thi)
		os.InterruptReturn(p, "irq")
	})
	k.Spawn("hi", func(p *sim.Proc) {
		os.Adopt(p, thi) // parked until the IRQ activates it at t=10
		hiRan = p.Now()
		os.TimeWait(p, 5)
		os.TaskTerminate(p)
	})
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if hiRan != 150 {
		t.Errorf("hi first ran at %v, want 150 (after lo's Yield)", hiRan)
	}
	if err := os.CheckConservation(); err != nil {
		t.Error(err)
	}
}

// TestAdoptThenActivate: an adopted task stays suspended (never runs)
// until another task activates it.
func TestAdoptThenActivate(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "CPU", PriorityPolicy{})
	os.Init()
	ta := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	tb := os.TaskCreate("b", Aperiodic, 0, 0, 2)

	var bRan sim.Time = -1
	k.Spawn("b", func(p *sim.Proc) {
		os.Adopt(p, tb)
		bRan = p.Now()
		os.TaskTerminate(p)
	})
	k.Spawn("a", func(p *sim.Proc) {
		os.TaskActivate(p, ta)
		os.TimeWait(p, 30)
		os.TaskActivate(p, tb)
		os.TimeWait(p, 10)
		os.TaskTerminate(p)
	})
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// b (prio 2) becomes ready at t=30 but runs after a terminates at 40.
	if bRan != 40 {
		t.Errorf("adopted task ran at %v, want 40", bRan)
	}
}

// TestRequeueGoesBehindEquals: Requeue re-enters the ready queue behind
// an equal-priority task, modeling OSEK reactivation from the rear.
func TestRequeueGoesBehindEquals(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "CPU", PriorityPolicy{})
	os.Init()
	ta := os.TaskCreate("a", Aperiodic, 0, 0, 3)
	tb := os.TaskCreate("b", Aperiodic, 0, 0, 3)

	var order []string
	k.Spawn("a", func(p *sim.Proc) {
		os.TaskActivate(p, ta)
		os.TimeWait(p, 10)
		order = append(order, "a1")
		os.Requeue(p) // b has been ready since t=0: it must run next
		os.TimeWait(p, 10)
		order = append(order, "a2")
		os.TaskTerminate(p)
	})
	k.Spawn("b", func(p *sim.Proc) {
		os.TaskActivate(p, tb)
		os.TimeWait(p, 10)
		order = append(order, "b1")
		os.TaskTerminate(p)
	})
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
