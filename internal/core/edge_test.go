package core

import (
	"testing"

	"repro/internal/sim"
)

func TestTimeWaitZero(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		os.TimeWait(p, 0) // legal: a zero-length annotation
		os.TimeWait(p, 10)
	}))
	os.Start(nil)
	run(t, k)
	if k.Now() != 10 {
		t.Errorf("end = %v, want 10", k.Now())
	}
	if a.CPUTime() != 10 {
		t.Errorf("cpu = %v, want 10", a.CPUTime())
	}
}

func TestKillSleepingTask(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	sleeper := os.TaskCreate("sleeper", Aperiodic, 0, 0, 5)
	killer := os.TaskCreate("killer", Aperiodic, 0, 0, 1)
	k.Spawn("sleeper", taskBody(os, sleeper, func(p *sim.Proc) {
		os.TaskSleep(p)
		t.Error("sleeper woke after kill")
	}))
	k.Spawn("killer", taskBody(os, killer, func(p *sim.Proc) {
		os.TimeWait(p, 10)
		os.TaskKill(p, sleeper)
		// Activating a killed task must be a no-op, not a resurrection.
		os.TaskActivate(p, sleeper)
		os.TimeWait(p, 10)
	}))
	os.Start(nil)
	run(t, k)
	if sleeper.State() != TaskKilled {
		t.Errorf("sleeper state = %v", sleeper.State())
	}
	if k.Now() != 20 {
		t.Errorf("end = %v, want 20", k.Now())
	}
}

func TestSetPriorityTakesEffectAtNextDecision(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{}, WithTimeModel(TimeModelSegmented))
	var order []string
	slowpoke := os.TaskCreate("slowpoke", Aperiodic, 0, 0, 9)
	runner := os.TaskCreate("runner", Aperiodic, 0, 0, 5)
	k.Spawn("runner", taskBody(os, runner, func(p *sim.Proc) {
		os.TimeWait(p, 10)
		// Boost the waiting task above ourselves; the change applies at
		// this task's next scheduling point.
		slowpoke.SetPriority(1)
		os.TimeWait(p, 10)
		order = append(order, "runner")
	}))
	k.Spawn("slowpoke", taskBody(os, slowpoke, func(p *sim.Proc) {
		os.TimeWait(p, 5)
		order = append(order, "slowpoke")
	}))
	os.Start(nil)
	run(t, k)
	if len(order) != 2 || order[0] != "slowpoke" {
		t.Errorf("order = %v, want slowpoke first after boost", order)
	}
}

func TestIdleTimeAcrossMultipleGaps(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	e := os.EventNew("tick")
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			os.EventWait(p, e) // idle 20 each round
			os.TimeWait(p, 10)
		}
	}))
	k.Spawn("isr", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.WaitFor(30)
			os.InterruptEnter(p, "t")
			os.EventNotify(p, e)
			os.InterruptReturn(p, "t")
		}
	})
	os.Start(nil)
	run(t, k)
	st := os.StatsSnapshot()
	// Rounds: idle 0-30 (wait), busy 30-40, idle 40-60, busy 60-70,
	// idle 70-90, busy 90-100 → idle 70, busy 30.
	if st.IdleTime != 70 {
		t.Errorf("idle = %v, want 70", st.IdleTime)
	}
	if st.BusyTime != 30 {
		t.Errorf("busy = %v, want 30", st.BusyTime)
	}
}

func TestRRSliceSurvivesBlocking(t *testing.T) {
	// A task that blocks voluntarily mid-slice keeps its remaining slice
	// budget; only consumption through TimeWait charges it.
	k := sim.NewKernel()
	os := New(k, "PE", RoundRobinPolicy{Quantum: 20})
	e := os.EventNew("go")
	var order []string
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	b := os.TaskCreate("b", Aperiodic, 0, 0, 1)
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		os.TimeWait(p, 10) // half the slice
		os.EventWait(p, e) // voluntary block
		os.TimeWait(p, 9)  // 19 < 20: no rotation yet
		order = append(order, "a")
	}))
	k.Spawn("b", taskBody(os, b, func(p *sim.Proc) {
		os.EventNotify(p, e)
		os.TimeWait(p, 30)
		order = append(order, "b")
	}))
	os.Start(nil)
	run(t, k)
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestEDFTieBreakDeterministic(t *testing.T) {
	// Two periodic tasks with identical periods and deadlines: the
	// secondary priority key breaks the tie the same way every run.
	results := map[string]bool{}
	for round := 0; round < 3; round++ {
		k := sim.NewKernel()
		os := New(k, "PE", EDFPolicy{})
		var first string
		mk := func(name string, prio int) {
			task := os.TaskCreate(name, Periodic, 100, 10, prio)
			k.Spawn(name, func(p *sim.Proc) {
				os.TaskActivate(p, task)
				os.TimeWait(p, 10)
				if first == "" {
					first = name
				}
				os.TaskEndCycle(p)
				os.TaskTerminate(p)
			})
		}
		mk("x", 2)
		mk("y", 1)
		os.Start(nil)
		run(t, k)
		results[first] = true
	}
	if len(results) != 1 || !results["y"] {
		t.Errorf("tie-break nondeterministic or wrong: %v", results)
	}
}

func TestInitResets(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	os.TaskCreate("a", Aperiodic, 0, 0, 1)
	os.Init()
	if len(os.Tasks()) != 0 {
		t.Errorf("tasks after Init = %d", len(os.Tasks()))
	}
	if os.Current() != nil {
		t.Error("current not cleared")
	}
	st := os.StatsSnapshot()
	if st.Dispatches != 0 || st.BusyTime != 0 {
		t.Error("stats not cleared")
	}
}

func TestAccessors(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{}, WithTimeModel(TimeModelSegmented))
	if os.Name() != "PE" || os.Kernel() != k {
		t.Error("identity accessors wrong")
	}
	if os.Policy().Name() != "priority" {
		t.Errorf("policy = %s", os.Policy().Name())
	}
	if os.TimeModelUsed() != TimeModelSegmented {
		t.Errorf("time model = %v", os.TimeModelUsed())
	}
	task := os.TaskCreate("t", Periodic, 100, 10, 3)
	if task.ID() != 0 || task.Name() != "t" || task.Type() != Periodic ||
		task.Period() != 100 || task.WCET() != 10 || task.Priority() != 3 {
		t.Error("task accessors wrong")
	}
	if task.Proc() != nil {
		t.Error("proc bound before activation")
	}
	if task.Deadline() != sim.Forever {
		t.Errorf("initial deadline = %v", task.Deadline())
	}
	if s := task.String(); s == "" {
		t.Error("empty task String()")
	}
	if !TaskReady.Alive() || TaskKilled.Alive() {
		t.Error("Alive() wrong")
	}
}
