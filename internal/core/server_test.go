package core

import (
	"testing"

	"repro/internal/sim"
)

// serverFixture: a polling server (period 100, capacity 30, prio 1) above
// a periodic hard task (period 100, wcet 50, prio 2); aperiodic requests
// arrive from an ISR.
func serverFixture(t *testing.T, requests []sim.Time, arrivalGap sim.Time) (*PollingServer, []sim.Time, *Task) {
	t.Helper()
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{}, WithTimeModel(TimeModelSegmented))
	srv := os.NewPollingServer("server", 100, 30, 1)
	hard := os.TaskCreate("hard", Periodic, 100, 50, 2)

	sp := k.Spawn("server", srv.Serve)
	sp.SetDaemon(true)
	hp := k.Spawn("hard", func(p *sim.Proc) {
		os.TaskActivate(p, hard)
		for {
			os.TimeWait(p, 50)
			os.TaskEndCycle(p)
		}
	})
	hp.SetDaemon(true)

	var completions []sim.Time
	k.Spawn("arrivals", func(p *sim.Proc) {
		for _, c := range requests {
			c := c
			p.WaitFor(arrivalGap)
			os.InterruptEnter(p, "req")
			srv.Submit(p, c, func(sp *sim.Proc) {
				completions = append(completions, sp.Now())
			})
			os.InterruptReturn(p, "req")
		}
	}).SetDaemon(true)

	os.Start(nil)
	if err := k.RunUntil(1000); err != nil {
		t.Fatal(err)
	}
	return srv, completions, hard
}

func TestPollingServerServesRequests(t *testing.T) {
	srv, completions, hard := serverFixture(t, []sim.Time{10, 10, 10}, 100)
	if srv.Served() != 3 || len(completions) != 3 {
		t.Fatalf("served = %d, completions = %v", srv.Served(), completions)
	}
	// The hard task never misses despite the server running above it: the
	// server's demand is bounded by its capacity.
	if hard.MissedDeadlines() != 0 {
		t.Errorf("hard task missed %d deadlines", hard.MissedDeadlines())
	}
	// Each 10-unit request arrives at k*100 and is served within the next
	// server period: completion - arrival ≤ period + capacity.
	for i, at := range completions {
		arrival := sim.Time(i+1) * 100
		if at-arrival > 130 {
			t.Errorf("request %d served %v after arrival", i, at-arrival)
		}
	}
}

func TestPollingServerBudgetSlicesLargeRequest(t *testing.T) {
	// A 70-unit request against a 30-unit budget needs three periods.
	srv, completions, _ := serverFixture(t, []sim.Time{70}, 50)
	if srv.Served() != 1 || len(completions) != 1 {
		t.Fatalf("served = %d", srv.Served())
	}
	// Arrival at 50; served in budgets of the periods starting 100, 200,
	// 300 → completes in the third service window.
	if completions[0] < 200 || completions[0] > 350 {
		t.Errorf("completion at %v, want within the third server period", completions[0])
	}
	if srv.ExhaustedCycles() < 2 {
		t.Errorf("exhausted cycles = %d, want ≥ 2 (budget ran out twice)", srv.ExhaustedCycles())
	}
	if srv.Backlog() != 0 {
		t.Errorf("backlog = %d, want 0", srv.Backlog())
	}
}

func TestPollingServerValidation(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	defer func() {
		if recover() == nil {
			t.Error("capacity > period accepted")
		}
	}()
	os.NewPollingServer("bad", 100, 200, 1)
}
