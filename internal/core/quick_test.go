package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestQuickSerializationInvariant: for arbitrary aperiodic task sets the
// RTOS model serializes execution — total busy time equals the sum of all
// modeled delays, every task's CPU time equals its own delay sum, and the
// simulation ends no earlier than the total busy time (no idle can occur
// with all tasks ready at t=0, so it ends exactly at the total).
func TestQuickSerializationInvariant(t *testing.T) {
	f := func(delays [][]uint8) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 8 {
			delays = delays[:8]
		}
		k := sim.NewKernel()
		os := New(k, "PE", PriorityPolicy{})
		var total sim.Time
		sums := make([]sim.Time, len(delays))
		tasks := make([]*Task, len(delays))
		for i, list := range delays {
			i, list := i, list
			for _, d := range list {
				sums[i] += sim.Time(d)
				total += sim.Time(d)
			}
			tasks[i] = os.TaskCreate(fmt.Sprintf("t%d", i), Aperiodic, 0, 0, i)
			k.Spawn(fmt.Sprintf("t%d", i), taskBody(os, tasks[i], func(p *sim.Proc) {
				for _, d := range list {
					os.TimeWait(p, sim.Time(d))
				}
			}))
		}
		os.Start(nil)
		if err := k.Run(); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if os.StatsSnapshot().BusyTime != total {
			return false
		}
		for i, task := range tasks {
			if task.CPUTime() != sums[i] {
				return false
			}
		}
		return k.Now() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickAtMostOneRunning: across arbitrary schedules, at every observed
// state transition at most one task is in the running state, and at every
// dispatch the chosen task is optimal under the policy (no strictly
// preferred task remains in the ready queue).
func TestQuickAtMostOneRunning(t *testing.T) {
	f := func(seed uint32, nTasks uint8) bool {
		n := int(nTasks%6) + 2
		k := sim.NewKernel()
		os := New(k, "PE", PriorityPolicy{})
		violated := false
		os.Observe(&invariantObserver{os: os, fail: &violated})
		for i := 0; i < n; i++ {
			i := i
			x := seed + uint32(i)*2654435761
			task := os.TaskCreate(fmt.Sprintf("t%d", i), Aperiodic, 0, 0, int(x%5))
			k.Spawn(fmt.Sprintf("t%d", i), taskBody(os, task, func(p *sim.Proc) {
				y := x
				for j := 0; j < 6; j++ {
					y = y*1664525 + 1013904223
					os.TimeWait(p, sim.Time(y%40+1))
				}
			}))
		}
		os.Start(nil)
		if err := k.Run(); err != nil {
			return false
		}
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

type invariantObserver struct {
	os   *OS
	fail *bool
}

func (o *invariantObserver) OnTaskState(at sim.Time, task *Task, old, new TaskState) {
	running := 0
	for _, t := range o.os.tasks {
		if t.state == TaskRunning {
			running++
		}
	}
	if running > 1 {
		*o.fail = true
	}
}

func (o *invariantObserver) OnDispatch(at sim.Time, prev, next *Task) {
	if next == nil {
		return
	}
	o.os.rangeReady(func(r *Task) {
		if o.os.policy.Less(r, next) {
			*o.fail = true // a strictly preferred task was left waiting
		}
	})
}

func (o *invariantObserver) OnIRQ(at sim.Time, name string, enter bool) {}

// TestQuickEDFMeetsFeasibleDeadlines: random periodic task sets with total
// utilization ≤ 0.8 run under EDF without a single deadline miss (EDF is
// optimal for U ≤ 1; the margin keeps integer rounding harmless). The
// segmented time model is required: under the paper's coarse model a
// whole-WCET delay annotation makes execution effectively non-preemptive,
// which voids EDF's optimality — that gap is exactly the granularity
// ablation of DESIGN.md experiment F8-PREC.
func TestQuickEDFMeetsFeasibleDeadlines(t *testing.T) {
	testPolicyMeetsDeadlines(t, EDFPolicy{}, 80)
}

// TestQuickRMBelowBoundMeetsDeadlines: random periodic task sets with
// utilization below ~0.69 (ln 2, the Liu-Layland limit for large n) run
// under RM without deadline misses (segmented model, see above).
func TestQuickRMBelowBoundMeetsDeadlines(t *testing.T) {
	testPolicyMeetsDeadlines(t, RMPolicy{}, 60)
}

func testPolicyMeetsDeadlines(t *testing.T, pol Policy, utilPercent int) {
	t.Helper()
	f := func(seed uint32, nTasks uint8) bool {
		n := int(nTasks%4) + 2
		periods := []sim.Time{100, 200, 400, 800, 1000}
		k := sim.NewKernel()
		os := New(k, "PE", pol, WithTimeModel(TimeModelSegmented))
		var tasks []*Task
		x := seed
		for i := 0; i < n; i++ {
			x = x*1664525 + 1013904223
			period := periods[x%uint32(len(periods))]
			wcet := period * sim.Time(utilPercent) / sim.Time(100*n)
			if wcet < 1 {
				wcet = 1
			}
			task := os.TaskCreate(fmt.Sprintf("t%d", i), Periodic, period, wcet, i)
			tasks = append(tasks, task)
			k.Spawn(task.Name(), func(p *sim.Proc) {
				os.TaskActivate(p, task)
				for c := 0; c < 8; c++ {
					os.TimeWait(p, task.WCET())
					os.TaskEndCycle(p)
				}
				os.TaskTerminate(p)
			})
		}
		os.Start(nil)
		if err := k.Run(); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		for _, task := range tasks {
			if task.MissedDeadlines() > 0 {
				t.Logf("seed=%d n=%d: task %s missed %d deadlines (U=%.3f)",
					seed, n, task.Name(), task.MissedDeadlines(), Utilization(tasks))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterministicSchedules: identical task sets simulate to
// identical dispatch logs.
func TestQuickDeterministicSchedules(t *testing.T) {
	f := func(seed uint32) bool {
		runOnce := func() string {
			k := sim.NewKernel()
			os := New(k, "PE", PriorityPolicy{})
			log := &observerLog{}
			os.Observe(log)
			for i := 0; i < 4; i++ {
				i := i
				x := seed + uint32(i)*97
				task := os.TaskCreate(fmt.Sprintf("t%d", i), Aperiodic, 0, 0, int(x%3))
				k.Spawn(task.Name(), taskBody(os, task, func(p *sim.Proc) {
					y := x
					for j := 0; j < 4; j++ {
						y = y*1664525 + 1013904223
						os.TimeWait(p, sim.Time(y%30+1))
					}
				}))
			}
			os.Start(nil)
			if err := k.Run(); err != nil {
				return "err"
			}
			return fmt.Sprint(log.dispatches)
		}
		return runOnce() == runOnce()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
