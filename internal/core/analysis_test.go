package core

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func mkPeriodic(period, wcet sim.Time) *Task {
	return &Task{typ: Periodic, period: period, wcet: wcet}
}

func TestUtilization(t *testing.T) {
	tasks := []*Task{
		mkPeriodic(100, 25), // 0.25
		mkPeriodic(200, 50), // 0.25
		{typ: Aperiodic, wcet: 1000},
	}
	if u := Utilization(tasks); math.Abs(u-0.5) > 1e-12 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if u := Utilization(nil); u != 0 {
		t.Errorf("empty utilization = %v, want 0", u)
	}
}

func TestRMUtilizationBound(t *testing.T) {
	if b := RMUtilizationBound(1); math.Abs(b-1.0) > 1e-12 {
		t.Errorf("bound(1) = %v, want 1", b)
	}
	if b := RMUtilizationBound(2); math.Abs(b-0.8284271) > 1e-6 {
		t.Errorf("bound(2) = %v, want ~0.828", b)
	}
	// Decreases towards ln 2.
	if b := RMUtilizationBound(1000); math.Abs(b-math.Ln2) > 1e-3 {
		t.Errorf("bound(1000) = %v, want ~ln2", b)
	}
	if b := RMUtilizationBound(0); b != 0 {
		t.Errorf("bound(0) = %v, want 0", b)
	}
}

func TestEDFFeasible(t *testing.T) {
	ok := []*Task{mkPeriodic(100, 50), mkPeriodic(100, 50)}
	if !EDFFeasible(ok) {
		t.Error("U=1.0 set reported infeasible under EDF")
	}
	over := []*Task{mkPeriodic(100, 60), mkPeriodic(100, 50)}
	if EDFFeasible(over) {
		t.Error("U=1.1 set reported feasible under EDF")
	}
}

func TestResponseTimeRMClassicExample(t *testing.T) {
	// Classic RTA example: T1=(C=1,T=4), T2=(C=2,T=6), T3=(C=3,T=13).
	// R1=1, R2=3, R3 = 3 + ceil(R3/4)*1 + ceil(R3/6)*2 → R3=10.
	tasks := []*Task{
		mkPeriodic(4, 1),
		mkPeriodic(6, 2),
		mkPeriodic(13, 3),
	}
	resp, ok := ResponseTimeRM(tasks)
	if !ok {
		t.Fatal("classic schedulable set reported unschedulable")
	}
	want := []sim.Time{1, 3, 10}
	for i := range want {
		if resp[i] != want[i] {
			t.Errorf("R%d = %v, want %v", i+1, resp[i], want[i])
		}
	}
}

func TestResponseTimeRMUnschedulable(t *testing.T) {
	tasks := []*Task{
		mkPeriodic(10, 6),
		mkPeriodic(14, 7), // U ≈ 1.1: cannot fit
	}
	if _, ok := ResponseTimeRM(tasks); ok {
		t.Error("overloaded set reported schedulable")
	}
}

func TestResponseTimeMatchesSimulation(t *testing.T) {
	// Cross-validation: the worst-case response time predicted by RTA must
	// bound (and for synchronous release, match) the response time
	// observed in simulation under RM at the critical instant t=0.
	// Chosen so no task's completion coincides exactly with another task's
	// release (a coincident release would preempt the finishing task before
	// it can record its own completion, skewing the observation).
	specs := []struct{ period, wcet sim.Time }{
		{40, 10},
		{60, 15},
		{130, 29},
	}
	k := sim.NewKernel()
	os := New(k, "PE", RMPolicy{}, WithTimeModel(TimeModelSegmented))
	var tasks []*Task
	firstDone := map[string]sim.Time{}
	for i, s := range specs {
		s := s
		task := os.TaskCreate(names3[i], Periodic, s.period, s.wcet, i)
		tasks = append(tasks, task)
		k.Spawn(task.Name(), func(p *sim.Proc) {
			os.TaskActivate(p, task)
			for c := 0; c < 3; c++ {
				os.TimeWait(p, s.wcet)
				if c == 0 {
					firstDone[task.Name()] = p.Now()
				}
				os.TaskEndCycle(p)
			}
			os.TaskTerminate(p)
		})
	}
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	resp, ok := ResponseTimeRM(tasks)
	if !ok {
		t.Fatal("set reported unschedulable")
	}
	for i, task := range tasks {
		observed := firstDone[task.Name()]
		if observed != resp[i] {
			t.Errorf("task %s first-cycle response %v, RTA predicts %v",
				task.Name(), observed, resp[i])
		}
	}
}

var names3 = []string{"fast", "mid", "slow"}

func TestHyperperiod(t *testing.T) {
	tasks := []*Task{mkPeriodic(4, 1), mkPeriodic(6, 1), mkPeriodic(10, 1)}
	if h := Hyperperiod(tasks, 0); h != 60 {
		t.Errorf("hyperperiod = %v, want 60", h)
	}
	if h := Hyperperiod(tasks, 30); h != 30 {
		t.Errorf("capped hyperperiod = %v, want 30", h)
	}
	if h := Hyperperiod(nil, 0); h != 0 {
		t.Errorf("empty hyperperiod = %v, want 0", h)
	}
}
