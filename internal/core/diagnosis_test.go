package core

// Tests for the runtime-diagnosis layer (diagnosis.go): immediate mutex
// cycle detection, stall diagnosis at kernel stall time, the watchdog, and
// the round-robin quantum-expiry regression the diagnosis work rides on.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestMutexCycleImmediateDetection pins the exact wait-for cycle reported
// for a classic AB-BA mutex deadlock, detected the instant the second
// task blocks — the simulation fails with a structured DiagnosisError
// instead of a generic kernel deadlock.
func TestMutexCycleImmediateDetection(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "PE", PriorityPolicy{})
	m1 := os.MutexNew("m1", false)
	m2 := os.MutexNew("m2", false)

	a := os.TaskCreate("A", Aperiodic, 0, 0, 1) // high priority
	b := os.TaskCreate("B", Aperiodic, 0, 0, 5)
	k.Spawn("A", taskBody(os, a, func(p *sim.Proc) {
		m1.Lock(p)
		os.TaskSleep(p) // let B run and take m2
		m2.Lock(p)      // blocks: B holds m2
		m2.Unlock(p)
		m1.Unlock(p)
	}))
	k.Spawn("B", taskBody(os, b, func(p *sim.Proc) {
		m2.Lock(p)
		os.TaskActivate(p, a) // A preempts, blocks on m2, CPU returns here
		m1.Lock(p)            // closes the cycle: A holds m1
		m1.Unlock(p)
		m2.Unlock(p)
	}))
	os.Start(nil)

	var d *DiagnosisError
	if err := k.Run(); !errors.As(err, &d) {
		t.Fatalf("Run = %v, want *DiagnosisError", err)
	}
	if d.Kind != DiagDeadlock {
		t.Fatalf("Kind = %v, want deadlock", d.Kind)
	}
	want := []string{
		"A waits on mutex:m2 held by B",
		"B waits on mutex:m1 held by A",
	}
	if len(d.Cycle) != len(want) {
		t.Fatalf("cycle = %v, want %d edges", d.Cycle, len(want))
	}
	for i, e := range d.Cycle {
		if e.String() != want[i] {
			t.Errorf("cycle[%d] = %q, want %q", i, e, want[i])
		}
	}
	if os.Diagnosis() != d {
		t.Errorf("Diagnosis() did not record the reported error")
	}
	if !strings.Contains(d.Error(), "deadlock diagnosed") {
		t.Errorf("Error() = %q, want it to mention the deadlock", d.Error())
	}
}

// TestStallDiagnosisLostSignal: a task waiting on an event nobody will
// notify is reported as a stall naming the blocking site, replacing the
// generic sim.DeadlockError.
func TestStallDiagnosisLostSignal(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "PE", PriorityPolicy{})
	ev := os.EventNew("go")
	a := os.TaskCreate("A", Aperiodic, 0, 0, 1)
	k.Spawn("A", taskBody(os, a, func(p *sim.Proc) {
		os.TimeWait(p, 10)
		os.EventWait(p, ev) // never notified
	}))
	os.Start(nil)

	var d *DiagnosisError
	if err := k.Run(); !errors.As(err, &d) {
		t.Fatalf("Run = %v, want *DiagnosisError", err)
	}
	if d.Kind != DiagStall || len(d.Cycle) != 0 {
		t.Fatalf("diagnosis = %v, want a cycle-free stall", d)
	}
	if len(d.Blocked) != 1 || d.Blocked[0].Task != "A" ||
		d.Blocked[0].Resource != "event:go" {
		t.Fatalf("Blocked = %v, want A blocked on event:go", d.Blocked)
	}
	if d.At != 10 {
		t.Errorf("diagnosed at %v, want 10", d.At)
	}
}

// TestWatchdogStarvation: under non-preemptive FCFS a task that never
// reaches a blocking call starves the rest of the ready queue; the
// watchdog reports it (the kernel alone never would — time keeps
// advancing).
func TestWatchdogStarvation(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "PE", FCFSPolicy{})
	hog := os.TaskCreate("hog", Aperiodic, 0, 0, 1)
	starved := os.TaskCreate("starved", Aperiodic, 0, 0, 2)
	k.Spawn("hog", taskBody(os, hog, func(p *sim.Proc) {
		for { // runs forever without a blocking call
			os.TimeWait(p, 10)
		}
	}))
	k.Spawn("starved", taskBody(os, starved, func(p *sim.Proc) {
		os.TimeWait(p, 1)
	}))
	os.Start(nil)
	os.EnableWatchdog(100)

	var d *DiagnosisError
	if err := k.RunUntil(10_000); !errors.As(err, &d) {
		t.Fatalf("RunUntil = %v, want *DiagnosisError", err)
	}
	if d.Kind != DiagStarvation || d.Window != 100 {
		t.Fatalf("diagnosis = %v, want starvation with window 100", d)
	}
	if len(d.Blocked) != 1 || d.Blocked[0].Task != "starved" ||
		d.Blocked[0].Holder != "hog" {
		t.Fatalf("Blocked = %v, want starved waiting on cpu held by hog", d.Blocked)
	}
}

// TestWatchdogDoesNotMaskStall: with the watchdog armed, its own periodic
// timer keeps simulated time advancing past a total blockage, so the
// kernel's stall detection can never fire — the watchdog must diagnose
// the hidden stall itself.
func TestWatchdogDoesNotMaskStall(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "PE", PriorityPolicy{})
	ev := os.EventNew("never")
	a := os.TaskCreate("A", Aperiodic, 0, 0, 1)
	k.Spawn("A", taskBody(os, a, func(p *sim.Proc) {
		os.EventWait(p, ev)
	}))
	os.Start(nil)
	os.EnableWatchdog(50)

	var d *DiagnosisError
	if err := k.RunUntil(10_000); !errors.As(err, &d) {
		t.Fatalf("RunUntil = %v, want *DiagnosisError", err)
	}
	if d.Kind != DiagStall {
		t.Fatalf("Kind = %v, want stall", d.Kind)
	}
	if len(d.Blocked) != 1 || d.Blocked[0].Resource != "event:never" {
		t.Fatalf("Blocked = %v, want A on event:never", d.Blocked)
	}
}

// TestWatchdogCleanRun: the watchdog stays silent on a healthy workload
// and does not keep the simulation from finishing.
func TestWatchdogCleanRun(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "PE", PriorityPolicy{})
	a := os.TaskCreate("A", Aperiodic, 0, 0, 1)
	var end sim.Time
	k.Spawn("A", taskBody(os, a, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			os.TimeWait(p, 40)
		}
		end = p.Now()
	}))
	os.Start(nil)
	os.EnableWatchdog(30) // shorter than the delays: progress stamp must save us
	if err := k.RunUntil(1_000); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if end != 200 {
		t.Errorf("task finished at %v, want 200", end)
	}
	if d := os.Diagnosis(); d != nil {
		t.Errorf("clean run diagnosed: %v", d)
	}
}

// TestMutexContentionNoFalsePositive: heavy (but live) lock contention
// with priority inheritance must never be diagnosed.
func TestMutexContentionNoFalsePositive(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "PE", PriorityPolicy{})
	m := os.MutexNew("shared", true)
	for i, name := range []string{"hi", "mid", "lo"} {
		task := os.TaskCreate(name, Aperiodic, 0, 0, i+1)
		k.Spawn(name, taskBody(os, task, func(p *sim.Proc) {
			for j := 0; j < 4; j++ {
				m.Lock(p)
				os.TimeWait(p, 7)
				m.Unlock(p)
				os.TimeWait(p, 3)
			}
		}))
	}
	os.Start(nil)
	run(t, k)
	if d := os.Diagnosis(); d != nil {
		t.Fatalf("contention diagnosed as %v", d)
	}
	if d := os.DiagnoseNow(); d != nil {
		t.Fatalf("post-mortem diagnosis on finished run: %v", d)
	}
}

// TestRRQuantumEqualsCompletion is the regression for the round-robin
// edge case: quantum expiry coinciding exactly with the end of a task's
// compute must not rotate the ready queue or emit a preemption — the task
// just completes.
func TestRRQuantumEqualsCompletion(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "PE", RoundRobinPolicy{Quantum: 40})
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		task := os.TaskCreate(name, Aperiodic, 0, 0, 1)
		k.Spawn(name, taskBody(os, task, func(p *sim.Proc) {
			os.TimeWait(p, 40) // remaining compute == quantum
			order = append(order, name)
		}))
	}
	os.Start(nil)
	run(t, k)
	if got := strings.Join(order, ","); got != "a,b" {
		t.Errorf("completion order = %s, want a,b", got)
	}
	if now := k.Now(); now != 80 {
		t.Errorf("finished at %v, want 80", now)
	}
	st := os.StatsSnapshot()
	if st.Preemptions != 0 {
		t.Errorf("Preemptions = %d, want 0 (no spurious slice rotation)", st.Preemptions)
	}
	if st.Dispatches != 2 {
		t.Errorf("Dispatches = %d, want 2", st.Dispatches)
	}
}

// TestRRExpiredSliceKeepsCPUOverWorseTasks: an expired quantum must not
// hand the CPU to a strictly lower-priority task; rotation only happens
// among equal-or-better ready tasks.
func TestRRExpiredSliceKeepsCPUOverWorseTasks(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := New(k, "PE", RoundRobinPolicy{Quantum: 10})
	var hiDone, loDone sim.Time
	hi := os.TaskCreate("hi", Aperiodic, 0, 0, 1)
	lo := os.TaskCreate("lo", Aperiodic, 0, 0, 9)
	k.Spawn("hi", taskBody(os, hi, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			os.TimeWait(p, 10)
		}
		hiDone = p.Now()
	}))
	k.Spawn("lo", taskBody(os, lo, func(p *sim.Proc) {
		os.TimeWait(p, 10)
		loDone = p.Now()
	}))
	os.Start(nil)
	run(t, k)
	if hiDone != 30 || loDone != 40 {
		t.Errorf("hi done %v, lo done %v; want 30 and 40", hiDone, loDone)
	}
	if pr := os.StatsSnapshot().Preemptions; pr != 0 {
		t.Errorf("Preemptions = %d, want 0", pr)
	}
}
