package core

import (
	"fmt"
	"sort"

	"repro/internal/readyq"
	"repro/internal/sim"
)

// TimeModel selects how TimeWait interacts with preemption.
type TimeModel int

const (
	// TimeModelCoarse is the paper's model: a modeled delay always runs to
	// the end of its discrete time step; a preemption request raised in
	// the meantime (e.g. by an interrupt releasing a higher-priority task)
	// takes effect only when the delay completes (Figure 8's t4 → t4').
	// Preemption accuracy is therefore limited by the granularity of the
	// delay annotations (paper, Section 4.3).
	TimeModelCoarse TimeModel = iota
	// TimeModelSegmented is an extension: TimeWait is interruptible, the
	// preempted task is charged only for the execution time it actually
	// consumed and resumes the remainder of its delay when re-dispatched.
	// This models an ideally preemptive CPU independent of annotation
	// granularity and is used by the granularity ablation (DESIGN.md,
	// experiment F8-PREC).
	TimeModelSegmented
)

// String returns "coarse" or "segmented".
func (m TimeModel) String() string {
	if m == TimeModelSegmented {
		return "segmented"
	}
	return "coarse"
}

// Observer receives RTOS-level scheduling events; the trace package
// adapts this interface onto its recorder. All callbacks run synchronously
// inside the simulation, so implementations must not block.
type Observer interface {
	// OnTaskState fires on every task state transition.
	OnTaskState(at sim.Time, t *Task, old, new TaskState)
	// OnDispatch fires when the CPU is handed over; prev and/or next may
	// be nil (idle).
	OnDispatch(at sim.Time, prev, next *Task)
	// OnIRQ fires on InterruptEnter (enter=true) and InterruptReturn.
	OnIRQ(at sim.Time, name string, enter bool)
}

// BlockReason classifies the waiting state a task enters when it gives up
// the CPU (reported by ObserverExt.OnBlock/OnUnblock).
type BlockReason uint8

const (
	// BlockNone: the transition is not a blocking one.
	BlockNone BlockReason = iota
	// BlockEvent: blocked in EventWait.
	BlockEvent
	// BlockMutex: blocked in Mutex.Lock.
	BlockMutex
	// BlockChildren: suspended between ParStart and ParEnd.
	BlockChildren
	// BlockPeriod: a periodic task waiting for its next release.
	BlockPeriod
	// BlockSleep: suspended by TaskSleep until re-activation.
	BlockSleep
)

// String returns a short lower-case reason name.
func (r BlockReason) String() string {
	switch r {
	case BlockEvent:
		return "event"
	case BlockMutex:
		return "mutex"
	case BlockChildren:
		return "children"
	case BlockPeriod:
		return "period"
	case BlockSleep:
		return "sleep"
	default:
		return "none"
	}
}

// blockReasonFor maps a waiting state onto its BlockReason (BlockNone for
// non-waiting states; TaskWaitingTime is modeled execution, not blocking).
func blockReasonFor(s TaskState) BlockReason {
	switch s {
	case TaskWaitingEvent:
		return BlockEvent
	case TaskWaitingMutex:
		return BlockMutex
	case TaskWaitingChildren:
		return BlockChildren
	case TaskWaitingPeriod:
		return BlockPeriod
	case TaskSuspended:
		return BlockSleep
	default:
		return BlockNone
	}
}

// ObserverExt extends Observer with the remaining scheduler lifecycle
// edges, so that a complete event stream — every job release, preemption,
// block/unblock with reason, and ready-queue change — can be reconstructed
// without polling Stats. The telemetry layer (internal/telemetry) is the
// primary consumer. Observers registered via Observe that also implement
// ObserverExt receive these callbacks automatically.
type ObserverExt interface {
	Observer
	// OnRelease fires when a new job of t arrives: first activation, a
	// periodic task's next release, or re-activation after TaskSleep. The
	// callback instant is the job's release time.
	OnRelease(at sim.Time, t *Task)
	// OnPreempt fires when t involuntarily loses the CPU (a preferred
	// task became ready, or its round-robin slice expired). by is the
	// best ready task at that instant and may be nil.
	OnPreempt(at sim.Time, t *Task, by *Task)
	// OnBlock fires when t leaves the CPU for a waiting state.
	OnBlock(at sim.Time, t *Task, reason BlockReason)
	// OnUnblock fires when t re-enters the ready queue from a waiting
	// state, with the reason it had been waiting.
	OnUnblock(at sim.Time, t *Task, reason BlockReason)
	// OnReadyQueue fires whenever the ready-queue length changes.
	OnReadyQueue(at sim.Time, n int)
}

// Stats aggregates the counters the paper's Table 1 reports (context
// switches) plus supporting metrics.
//
// BusyTime, IdleTime and OverheadTime partition the wall-clock span of the
// scheduler: from Start to any later instant, BusyTime + IdleTime +
// OverheadTime equals the elapsed simulated time (CheckConservation
// asserts exactly this).
type Stats struct {
	Dispatches      uint64   // CPU handovers to a task
	ContextSwitches uint64   // handovers to a different task than last ran
	Preemptions     uint64   // involuntary CPU losses of a running task
	IRQs            uint64   // InterruptReturn count
	IdleTime        sim.Time // accumulated time with no task on the CPU
	BusyTime        sim.Time // accumulated modeled execution time (all tasks)
	OverheadTime    sim.Time // accumulated context-switch overhead (ctxCost)
}

// OS is one processing element's instance of the abstract RTOS model —
// the paper's "RTOS model channel". All methods taking a *sim.Proc must be
// passed the calling simulation process; task-management and event calls
// other than notifications must be made by the task currently holding the
// CPU, exactly as application code calls into a real RTOS kernel.
type OS struct {
	k      *sim.Kernel
	name   string
	policy Policy
	tmodel TimeModel

	// ContextSwitchCost, if non-zero, adds a modeled kernel overhead delay
	// to every context switch (an extension over the paper's zero-cost
	// switches; exercised by the overhead ablation).
	ctxCost sim.Time

	started bool
	tasks   []*Task
	current *Task
	lastRun *Task

	// Ready queue. Policies implementing Ranker use the indexed structure
	// (priority buckets + intrusive FIFO lists, O(1) dispatch); other
	// policies — and the byte-equivalence test suite via SetLinearReady —
	// use the linear list with a full scan per decision. Exactly one of
	// the two holds tasks at any time.
	rq          *readyq.Queue[*Task]
	ready       []*Task
	ranker      Ranker
	forceLinear bool

	seq int // ready-queue FIFO sequence source

	// OSEK-conformant preemption re-insertion: a preempted task re-enters
	// its priority level as the oldest ready task, not the newest. The
	// front counter runs downward so front re-inserts order before every
	// normal arrival under the unchanged ascending-seq dispatch order.
	frontReinsert bool
	frontSeq      int // decrementing seq source for front re-inserts

	idleSince sim.Time
	idleValid bool

	startedAt sim.Time // Start() instant; origin of the conservation span

	// In-flight accounting: a modeled delay (or context-switch overhead)
	// whose time has partially elapsed but is not yet credited to the
	// stats. CheckConservation adds these so it can be called while the
	// simulation is paused mid-delay (e.g. at a RunUntil horizon).
	delayStart sim.Time
	delayValid bool
	ovhStart   sim.Time
	ovhValid   bool

	stats     Stats
	observers []Observer
	extObs    []ObserverExt

	// Runtime diagnosis (see diagnosis.go): the wait-for-graph monitor is
	// always armed; the watchdog daemon is opt-in.
	monitor    *Monitor
	diagnosis  *DiagnosisError
	progress   uint64 // dispatch stamp consumed by the watchdog
	watchdogOn bool
}

// Option configures an OS at construction.
type Option func(*OS)

// WithTimeModel selects the TimeWait preemption model (default
// TimeModelCoarse, the paper's model).
func WithTimeModel(m TimeModel) Option { return func(o *OS) { o.tmodel = m } }

// WithContextSwitchCost models a fixed kernel overhead per context switch.
func WithContextSwitchCost(d sim.Time) Option { return func(o *OS) { o.ctxCost = d } }

// New creates an RTOS model instance named name (typically the PE name) on
// kernel k with the given scheduling policy.
func New(k *sim.Kernel, name string, policy Policy, opts ...Option) *OS {
	os := &OS{k: k, name: name, policy: policy, tmodel: TimeModelCoarse}
	for _, opt := range opts {
		opt(os)
	}
	os.Init()
	// When the simulation kernel is about to give up with a generic
	// deadlock, translate the blockage into a wait-for-graph diagnosis
	// (exact cycle, task names, blocking sites) and fail with that instead.
	k.OnStall(func(at sim.Time, live []*sim.Proc) error {
		if d := os.diagnoseStall(); d != nil {
			os.recordDiagnosis(d)
			return d
		}
		return nil
	})
	return os
}

// Name returns the instance name.
func (os *OS) Name() string { return os.name }

// Kernel returns the underlying simulation kernel.
func (os *OS) Kernel() *sim.Kernel { return os.k }

// Policy returns the active scheduling policy.
func (os *OS) Policy() Policy { return os.policy }

// TimeModelUsed returns the active time model.
func (os *OS) TimeModelUsed() TimeModel { return os.tmodel }

// Current returns the task currently holding the CPU (nil if idle).
func (os *OS) Current() *Task { return os.current }

// Tasks returns all tasks ever created on this instance.
func (os *OS) Tasks() []*Task { return os.tasks }

// StatsSnapshot returns a copy of the accumulated counters.
func (os *OS) StatsSnapshot() Stats { return os.stats }

// Observe registers an observer for scheduling events. Observers that
// also implement ObserverExt additionally receive the extended lifecycle
// callbacks.
func (os *OS) Observe(o Observer) {
	os.observers = append(os.observers, o)
	if e, ok := o.(ObserverExt); ok {
		os.extObs = append(os.extObs, e)
	}
}

// Init (re)initializes the kernel data structures (paper: init). New calls
// it implicitly; calling it again discards all tasks and counters.
func (os *OS) Init() {
	os.started = false
	os.tasks = nil
	os.ready = nil
	if os.rq == nil {
		os.rq = readyq.New(taskLinks)
	} else {
		os.rq.Clear()
	}
	os.refreshRanker()
	os.current = nil
	os.lastRun = nil
	os.seq = 0
	os.frontSeq = 0
	os.stats = Stats{}
	os.idleValid = false
	os.delayValid = false
	os.ovhValid = false
	os.startedAt = 0
	os.monitor = newMonitor(os)
	os.diagnosis = nil
	os.progress = 0
}

// Start begins multi-task scheduling (paper: start(sched_alg)). If policy
// is non-nil it replaces the instance's policy. Under RMPolicy, Start
// derives rate-monotonic priorities for all tasks created so far.
func (os *OS) Start(policy Policy) {
	if policy != nil {
		os.policy = policy
	}
	if _, ok := os.policy.(RMPolicy); ok {
		assignRateMonotonic(os.tasks)
	}
	// The policy (and, under RM, every priority) may have changed; re-derive
	// the ranking and re-key any task already sitting in the ready queue.
	os.refreshRanker()
	os.rebuildReady()
	os.started = true
	os.startedAt = os.k.Now()
	os.idleSince = os.k.Now()
	os.idleValid = true
}

// TaskCreate allocates a task control block (paper: task_create). For
// periodic tasks, period must be positive; wcet is an informational
// execution-time budget. The task is bound to its simulation process by
// its first TaskActivate call.
func (os *OS) TaskCreate(name string, typ TaskType, period, wcet sim.Time, prio int) *Task {
	if typ == Periodic && period <= 0 {
		panic(fmt.Sprintf("core: periodic task %q needs positive period", name))
	}
	t := &Task{
		os:       os,
		id:       len(os.tasks),
		name:     name,
		typ:      typ,
		period:   period,
		wcet:     wcet,
		prio:     prio,
		state:    TaskCreated,
		dispatch: os.k.NewEvent(name + ".dispatch"),
		preempt:  os.k.NewEvent(name + ".preempt"),
		deadline: sim.Forever,
	}
	os.tasks = append(os.tasks, t)
	return t
}

// TaskActivate makes a task runnable (paper: task_activate).
//
// Called by the task's own (not yet bound) process, it binds the process
// to the task, enters the ready queue and blocks until the dispatcher
// hands the task the CPU — this is the call at the top of every task body
// (paper Figure 5). Called by the running task on another, suspended or
// created task, it moves that task to the ready queue and triggers a
// scheduling decision, which may preempt the caller.
func (os *OS) TaskActivate(p *sim.Proc, t *Task) {
	if t.proc == nil || t.proc == p {
		// Self-activation: bind and contend for the CPU. The delta-cycle
		// yield lets all tasks activating at the same instant (e.g. the
		// children of one par fork) enter the ready queue before the
		// dispatch decision, so the policy — not activation order — picks
		// the first runner, as in the paper's Figure 8(b).
		t.proc = p
		if t.typ == Periodic {
			t.release = os.k.Now()
			t.deadline = t.release + t.period
		}
		os.makeReady(t)
		p.YieldDelta()
		os.decideFrom(p)
		os.waitUntilDispatched(p, t)
		return
	}
	// Activation of another task by the running task (or an ISR).
	switch t.state {
	case TaskSuspended, TaskCreated:
		if t.typ == Periodic {
			t.release = os.k.Now()
			t.deadline = t.release + t.period
		}
		os.makeReady(t)
		os.decideFrom(p)
	}
}

// TaskTerminate ends the calling task (paper: task_terminate). The task's
// process continues executing (it is expected to return shortly after);
// the CPU is handed to the next ready task.
func (os *OS) TaskTerminate(p *sim.Proc) {
	t := os.mustCurrent(p, "TaskTerminate")
	if t.typ == Aperiodic {
		t.activations++
	}
	os.setState(t, TaskTerminated)
	os.releaseCPU(p)
}

// TaskSleep suspends the calling task until another task activates it
// (paper: task_sleep).
func (os *OS) TaskSleep(p *sim.Proc) {
	t := os.mustCurrent(p, "TaskSleep")
	os.setState(t, TaskSuspended)
	os.releaseCPU(p)
	os.waitUntilDispatched(p, t)
}

// TaskKill forcibly terminates another task (paper: task_kill): it is
// removed from all OS queues and its simulation process is unwound.
// Killing the running task is equivalent to TaskTerminate of the caller.
func (os *OS) TaskKill(p *sim.Proc, t *Task) {
	if !t.state.Alive() {
		return
	}
	if t == os.current {
		os.setState(t, TaskKilled)
		os.releaseCPU(p)
		p.Kill(t.proc) // unwinds the caller
		return
	}
	os.removeReady(t)
	os.setState(t, TaskKilled)
	if t.proc != nil {
		p.Kill(t.proc)
	}
}

// TaskEndCycle finishes the current cycle of a periodic task (paper:
// task_endcycle): the task gives up the CPU and blocks until its next
// release, then contends for the CPU again. Deadline misses (completion
// after the current absolute deadline) are recorded.
func (os *OS) TaskEndCycle(p *sim.Proc) {
	t := os.mustCurrent(p, "TaskEndCycle")
	if t.typ != Periodic {
		panic(fmt.Sprintf("core: TaskEndCycle on aperiodic task %q", t.name))
	}
	now := os.k.Now()
	// The cycle's work completed when its last modeled delay finished —
	// the task may reach this call later if it was preempted right at the
	// end of that delay. A cycle with no TimeWait completes at its release.
	completion := t.lastWorkDone
	if completion < t.release {
		completion = t.release
	}
	if completion > t.deadline {
		t.missed++
	}
	t.activations++
	// Advance to the next release after the completed work (periods fully
	// overrun by the work are skipped and each counts as missed).
	next := t.release + t.period
	for next+t.period <= completion {
		next += t.period
		t.missed++
	}
	os.setState(t, TaskWaitingPeriod)
	os.releaseCPU(p)
	if next > now {
		p.WaitFor(next - now)
	}
	t.release = next
	t.deadline = next + t.period
	os.makeReady(t)
	// Delta-cycle yield: simultaneous periodic releases all enter the
	// ready queue before any of them is dispatched (see TaskActivate).
	p.YieldDelta()
	os.decideFrom(p)
	os.waitUntilDispatched(p, t)
}

// ParStart suspends the calling task before it forks child tasks with the
// SLDL par statement (paper: par_start). The caller's process then
// executes sim.Proc.Par; the children activate themselves as tasks.
func (os *OS) ParStart(p *sim.Proc) *Task {
	t := os.mustCurrent(p, "ParStart")
	os.setState(t, TaskWaitingChildren)
	os.releaseCPU(p)
	return t
}

// ParEnd resumes the calling task after its par statement joined (paper:
// par_end): the task re-enters the ready queue and blocks until
// re-dispatched.
func (os *OS) ParEnd(p *sim.Proc, t *Task) {
	if t.state != TaskWaitingChildren {
		panic(fmt.Sprintf("core: ParEnd on task %q in state %s", t.name, t.state))
	}
	os.makeReady(t)
	os.decideFrom(p)
	os.waitUntilDispatched(p, t)
}

// TimeWait models execution time d of the calling task (paper: time_wait,
// the replacement for SLDL waitfor). It is the scheduling point at which
// preemption takes effect; see TimeModel for the two supported semantics.
func (os *OS) TimeWait(p *sim.Proc, d sim.Time) {
	t := os.mustCurrent(p, "TimeWait")
	if d < 0 {
		panic(fmt.Sprintf("core: negative TimeWait %v by %q", d, t.name))
	}
	// Scheduling point on entry: an expired round-robin slice rotates the
	// ready queue before more execution time is consumed. Checking here —
	// not after the delay — means a task whose quantum expires exactly as
	// its work completes blocks normally (TaskEndCycle, TaskTerminate)
	// instead of suffering a spurious preemption plus a second rotation,
	// and the rotation only happens when an equal-or-better ready task
	// exists to take the slice.
	if sl := os.policy.Slice(); sl > 0 && t.sliceUsed >= sl && !t.nonpreempt {
		t.sliceUsed = 0
		if b := os.pickBest(); b != nil && !os.policy.Less(t, b) {
			os.yieldCPU(p, t)
		}
	}
	switch os.tmodel {
	case TimeModelSegmented:
		os.timeWaitSegmented(p, t, d)
	default:
		os.timeWaitCoarse(p, t, d)
	}
	os.maybePreempt(p, t)
}

// timeWaitCoarse lets the delay run to completion before re-scheduling
// (the paper's model).
func (os *OS) timeWaitCoarse(p *sim.Proc, t *Task, d sim.Time) {
	os.setState(t, TaskWaitingTime)
	os.delayStart = os.k.Now()
	os.delayValid = true
	p.WaitFor(d)
	os.delayValid = false
	t.cpuTime += d
	t.sliceUsed += d
	t.lastWorkDone = os.k.Now()
	os.stats.BusyTime += d
	os.setState(t, TaskRunning)
}

// timeWaitSegmented makes the delay interruptible: a preemption request
// aborts the wait, the task yields, and the remaining execution time is
// consumed after re-dispatch.
func (os *OS) timeWaitSegmented(p *sim.Proc, t *Task, d sim.Time) {
	remaining := d
	for remaining > 0 {
		os.setState(t, TaskWaitingTime)
		start := os.k.Now()
		os.delayStart = start
		os.delayValid = true
		preempted := p.WaitTimeout(t.preempt, remaining)
		os.delayValid = false
		elapsed := os.k.Now() - start
		t.cpuTime += elapsed
		t.sliceUsed += elapsed
		t.lastWorkDone = os.k.Now()
		os.stats.BusyTime += elapsed
		remaining -= elapsed
		os.setState(t, TaskRunning)
		if preempted && remaining > 0 {
			os.yieldCPU(p, t)
		}
	}
}

// CheckConservation verifies the scheduler's time accounting at the
// current simulation instant: since Start, every unit of simulated time
// must be attributed to exactly one of modeled task execution (BusyTime),
// an empty ready queue (IdleTime) or context-switch overhead
// (OverheadTime). A modeled delay (or overhead) still in flight — e.g.
// when the simulation was paused at a RunUntil horizon mid-TimeWait — is
// counted up to the current instant. A non-nil error indicates a
// scheduler accounting bug, never an application error. Calling it before
// Start returns nil.
func (os *OS) CheckConservation() error {
	if !os.started {
		return nil
	}
	now := os.k.Now()
	span := now - os.startedAt
	busy := os.stats.BusyTime
	if os.delayValid {
		busy += now - os.delayStart
	}
	idle := os.stats.IdleTime
	if os.idleValid {
		idle += now - os.idleSince
	}
	ovh := os.stats.OverheadTime
	if os.ovhValid {
		ovh += now - os.ovhStart
	}
	if busy+idle+ovh != span {
		return fmt.Errorf(
			"core[%s]: time conservation violated at %v: busy %v + idle %v + overhead %v = %v, want span %v (start %v)",
			os.name, now, busy, idle, ovh, busy+idle+ovh, span, os.startedAt)
	}
	return nil
}

// EventNew allocates an RTOS event (paper: event_new).
func (os *OS) EventNew(name string) *OSEvent {
	return &OSEvent{os: os, name: name, site: "event:" + name}
}

// EventDel deletes an RTOS event (paper: event_del). Tasks still blocked
// on the event are left blocked forever; deleting an event in use is an
// application error, matching real RTOS semantics.
func (os *OS) EventDel(e *OSEvent) {
	e.queue = nil
	e.deleted = true
}

// EventWait blocks the calling task until the event is notified (paper:
// event_wait, the replacement for SLDL wait).
func (os *OS) EventWait(p *sim.Proc, e *OSEvent) {
	t := os.mustCurrent(p, "EventWait")
	if e.deleted {
		panic(fmt.Sprintf("core: EventWait on deleted event %q", e.name))
	}
	e.queue = append(e.queue, t)
	t.blockSite = e.site
	os.setState(t, TaskWaitingEvent)
	os.releaseCPU(p)
	os.waitUntilDispatched(p, t)
}

// EventNotify wakes every task blocked on the event (paper: event_notify,
// the replacement for SLDL notify) and triggers a scheduling decision.
// It may be called by the running task or by an interrupt handler.
func (os *OS) EventNotify(p *sim.Proc, e *OSEvent) {
	if len(e.queue) == 0 {
		return // no waiters: lost, like the SLDL primitive it models
	}
	// Reslice rather than nil out so steady-state wait/notify cycles reuse
	// the queue's backing array instead of reallocating it. Safe: nothing
	// re-enters EventWait (the only appender) while the wake loop runs —
	// the woken tasks only become ready here; they execute later.
	woken := e.queue
	e.queue = e.queue[:0]
	for _, t := range woken {
		os.makeReady(t)
	}
	os.decideFrom(p)
}

// InterruptEnter marks the begin of an interrupt service routine for
// bookkeeping and tracing. ISRs execute as plain SLDL processes above the
// RTOS model (the paper generates them inside bus drivers); they may call
// EventNotify and TaskActivate but must not block on RTOS services.
func (os *OS) InterruptEnter(p *sim.Proc, name string) {
	os.emitIRQ(name, true)
}

// InterruptReturn notifies the RTOS kernel at the end of an interrupt
// service routine (paper: interrupt_return) and triggers a scheduling
// decision for any tasks the ISR released.
func (os *OS) InterruptReturn(p *sim.Proc, name string) {
	os.stats.IRQs++
	os.emitIRQ(name, false)
	os.decideFrom(p)
}

// OSEvent is an RTOS-level synchronization event with a task wait queue
// (the paper's evt type).
type OSEvent struct {
	os      *OS
	name    string
	site    string // "event:<name>", precomputed for the EventWait hot path
	queue   []*Task
	deleted bool
}

// Name returns the event's diagnostic name.
func (e *OSEvent) Name() string { return e.name }

// ---------------------------------------------------------------------------
// Dispatcher internals.

// mustCurrent asserts the calling process is the running task.
func (os *OS) mustCurrent(p *sim.Proc, op string) *Task {
	t := os.current
	if t == nil || t.proc != p {
		cur := "idle"
		if t != nil {
			cur = t.name
		}
		panic(fmt.Sprintf("core[%s]: %s called by process %q but running task is %s",
			os.name, op, p.Name(), cur))
	}
	return t
}

// setState transitions a task and notifies observers, including the
// extended lifecycle edges derived from the transition: entering a
// waiting state is a block, leaving one for the ready queue is an
// unblock, and becoming ready from created/end-of-period/suspended marks
// a new job release.
func (os *OS) setState(t *Task, s TaskState) {
	if t.state == s {
		return
	}
	// Fast path: with no observer attached the transition is a bare field
	// write — no time lookup, no reason classification, no event
	// construction (extObs is always a subset of observers).
	if len(os.observers) == 0 {
		t.state = s
		return
	}
	old := t.state
	t.state = s
	now := os.k.Now()
	for _, o := range os.observers {
		o.OnTaskState(now, t, old, s)
	}
	if len(os.extObs) == 0 {
		return
	}
	if r := blockReasonFor(s); r != BlockNone {
		for _, o := range os.extObs {
			o.OnBlock(now, t, r)
		}
	}
	if s == TaskReady {
		if r := blockReasonFor(old); r != BlockNone {
			for _, o := range os.extObs {
				o.OnUnblock(now, t, r)
			}
		}
		if old == TaskCreated || old == TaskWaitingPeriod || old == TaskSuspended {
			for _, o := range os.extObs {
				o.OnRelease(now, t)
			}
		}
	}
}

// taskLinks is the intrusive-links accessor for the indexed ready queue.
func taskLinks(t *Task) *readyq.Links[*Task] { return &t.rq }

// refreshRanker re-derives the indexable ranking from the active policy.
func (os *OS) refreshRanker() {
	os.ranker = nil
	if os.forceLinear {
		return
	}
	if r, ok := os.policy.(Ranker); ok {
		os.ranker = r
	}
}

// SetLinearReady forces the linear ready-list scan even for policies that
// support the indexed structure. It exists for the byte-equivalence test
// suite, which runs every scenario through both ready-queue
// implementations and asserts identical traces. Call it before or after
// Start; tasks already queued are migrated.
func (os *OS) SetLinearReady(on bool) {
	if os.forceLinear == on {
		return
	}
	os.forceLinear = on
	os.refreshRanker()
	os.rebuildReady()
}

// SetPreemptFrontReinsert selects where a preempted task re-enters its
// priority level: at the back, as the newest ready task (the default,
// the paper's plain FIFO tie-break), or at the front, as the oldest —
// the ordering OSEK OS 2.2.3 §4.6.5 mandates ("a preempted task is
// considered to be the first (oldest) task in the ready list of its
// current priority"). The OSEK personality enables it; other
// personalities keep the default. Voluntary waits and fresh activations
// always enqueue at the back in either mode.
func (os *OS) SetPreemptFrontReinsert(on bool) {
	os.frontReinsert = on
}

// pushReady inserts an already-sequenced ready task into the active
// ready structure.
func (os *OS) pushReady(t *Task) {
	if os.ranker != nil {
		os.rq.Push(t, os.ranker.Rank(t), t.readySeq)
	} else {
		os.ready = append(os.ready, t)
	}
}

// rekeyReady re-ranks t after a scheduling attribute changed (priority
// boost/restore, deadline override) so the indexed structure stays
// consistent with Less. A no-op when t is not queued or under the linear
// fallback, whose scan always reads the current attributes.
func (os *OS) rekeyReady(t *Task) {
	if os.ranker != nil {
		os.rq.Update(t, os.ranker.Rank(t))
	}
}

// rebuildReady migrates all queued tasks into the structure selected by
// the current ranker, preserving FIFO arrival order.
func (os *OS) rebuildReady() {
	n := os.rq.Len() + len(os.ready)
	if n == 0 {
		return
	}
	queued := make([]*Task, 0, n)
	os.rq.Do(func(t *Task) { queued = append(queued, t) })
	os.rq.Clear()
	queued = append(queued, os.ready...)
	os.ready = os.ready[:0]
	sort.Slice(queued, func(i, j int) bool { return queued[i].readySeq < queued[j].readySeq })
	for _, t := range queued {
		os.pushReady(t)
	}
}

// readyLen returns the ready-queue length.
func (os *OS) readyLen() int { return os.rq.Len() + len(os.ready) }

// rangeReady calls f for every ready task; f must not mutate the queue.
func (os *OS) rangeReady(f func(*Task)) {
	os.rq.Do(f)
	for _, t := range os.ready {
		f(t)
	}
}

// makeReady inserts t into the ready queue.
func (os *OS) makeReady(t *Task) {
	if !t.state.Alive() {
		return
	}
	os.setState(t, TaskReady)
	os.seq++
	t.readySeq = os.seq
	os.pushReady(t)
	os.emitReadyQueue()
}

// makeReadyPreempted re-inserts a task that lost the CPU involuntarily.
// Default mode is identical to makeReady (re-enter as newest); under
// SetPreemptFrontReinsert the task re-enters as the oldest of its rank,
// drawing its seq from the decrementing front counter so both the
// indexed front-push and the linear scan's seq tie-break agree.
func (os *OS) makeReadyPreempted(t *Task) {
	if !os.frontReinsert {
		os.makeReady(t)
		return
	}
	if !t.state.Alive() {
		return
	}
	os.setState(t, TaskReady)
	os.frontSeq--
	t.readySeq = os.frontSeq
	if os.ranker != nil {
		os.rq.PushFront(t, os.ranker.Rank(t), t.readySeq)
	} else {
		os.ready = append(os.ready, t)
	}
	os.emitReadyQueue()
}

// removeReady drops t from the ready queue if present.
func (os *OS) removeReady(t *Task) {
	if os.ranker != nil {
		if os.rq.Remove(t) {
			os.emitReadyQueue()
		}
		return
	}
	for i, x := range os.ready {
		if x == t {
			os.ready = append(os.ready[:i], os.ready[i+1:]...)
			os.emitReadyQueue()
			return
		}
	}
}

// pickBest returns the ready task that orders first under the policy with
// FIFO tie-break, without removing it.
func (os *OS) pickBest() *Task {
	if os.ranker != nil {
		return os.rq.Min()
	}
	var best *Task
	for _, t := range os.ready {
		if best == nil || os.policy.Less(t, best) ||
			(!os.policy.Less(best, t) && t.readySeq < best.readySeq) {
			best = t
		}
	}
	return best
}

// releaseCPU detaches the running task from the CPU (its state must
// already be set to the blocking state) and dispatches the next ready
// task, if any.
func (os *OS) releaseCPU(p *sim.Proc) {
	prev := os.current
	os.current = nil
	os.dispatchBest(p, prev)
}

// yieldCPU moves the running task back to the ready queue (involuntary
// preemption or slice expiry), dispatches the best ready task and blocks
// until the caller is re-dispatched.
func (os *OS) yieldCPU(p *sim.Proc, t *Task) {
	os.stats.Preemptions++
	if len(os.extObs) > 0 {
		by := os.pickBest() // the caller is not in the queue yet
		for _, o := range os.extObs {
			o.OnPreempt(os.k.Now(), t, by)
		}
	}
	os.makeReadyPreempted(t)
	os.current = nil
	os.dispatchBest(p, t)
	os.waitUntilDispatched(p, t)
}

// maybePreempt is the post-TimeWait scheduling point: if a strictly
// preferred task became ready while the delay elapsed, the caller yields.
func (os *OS) maybePreempt(p *sim.Proc, t *Task) {
	if !os.policy.Preemptive() || t.nonpreempt {
		return
	}
	best := os.pickBest()
	if best != nil && os.policy.Less(best, t) {
		os.yieldCPU(p, t)
	}
}

// decideFrom performs a scheduling decision from an arbitrary context:
// the running task (which may lose the CPU), an ISR, or an unbound task
// process releasing itself.
func (os *OS) decideFrom(p *sim.Proc) {
	if os.current == nil {
		os.dispatchBest(p, nil)
		return
	}
	if os.current.proc == p && os.policy.Preemptive() {
		if os.current.nonpreempt {
			return
		}
		best := os.pickBest()
		if best != nil && os.policy.Less(best, os.current) {
			os.yieldCPU(p, os.current)
		}
		return
	}
	// Caller is an ISR or a foreign process. In the segmented time model a
	// preferred ready task preempts the running task mid-delay; in the
	// coarse model the switch happens at the running task's next
	// scheduling point (paper Figure 8: t4 → t4').
	if os.tmodel == TimeModelSegmented && os.policy.Preemptive() && !os.current.nonpreempt {
		best := os.pickBest()
		if best != nil && os.policy.Less(best, os.current) {
			p.Notify(os.current.preempt)
		}
	}
}

// dispatchBest hands the CPU to the best ready task, if any. prev is the
// task that last held the CPU (for context-switch accounting and
// observers).
func (os *OS) dispatchBest(p *sim.Proc, prev *Task) {
	next := os.pickBest()
	if next == nil {
		if !os.idleValid {
			os.idleSince = os.k.Now()
			os.idleValid = true
		}
		if prev != nil {
			os.emitDispatch(prev, nil)
		}
		return
	}
	os.removeReady(next)
	if os.idleValid {
		os.stats.IdleTime += os.k.Now() - os.idleSince
		os.idleValid = false
	}
	os.current = next
	next.sliceUsed = 0 // a dispatch grants a fresh round-robin quantum
	os.setState(next, TaskRunning)
	os.stats.Dispatches++
	os.progress++
	next.chargeSwitch = os.lastRun != nil && os.lastRun != next
	if next.chargeSwitch {
		os.stats.ContextSwitches++
	}
	os.lastRun = next
	os.emitDispatch(prev, next)
	if next.proc != p {
		p.Notify(next.dispatch)
	}
}

// waitUntilDispatched parks the calling task until the dispatcher makes it
// current. The predicate loop makes the handshake robust against lost or
// spurious notifications of the per-task dispatch event.
func (os *OS) waitUntilDispatched(p *sim.Proc, t *Task) {
	for os.current != t {
		p.Wait(t.dispatch)
	}
	if os.ctxCost > 0 && t.chargeSwitch {
		t.chargeSwitch = false
		os.ovhStart = os.k.Now()
		os.ovhValid = true
		p.WaitFor(os.ctxCost)
		os.ovhValid = false
		os.stats.OverheadTime += os.ctxCost
	}
}

func (os *OS) emitDispatch(prev, next *Task) {
	if len(os.observers) == 0 {
		return
	}
	for _, o := range os.observers {
		o.OnDispatch(os.k.Now(), prev, next)
	}
}

func (os *OS) emitIRQ(name string, enter bool) {
	if len(os.observers) == 0 {
		return
	}
	for _, o := range os.observers {
		o.OnIRQ(os.k.Now(), name, enter)
	}
}

func (os *OS) emitReadyQueue() {
	if len(os.extObs) == 0 {
		return
	}
	now := os.k.Now()
	n := os.readyLen()
	for _, o := range os.extObs {
		o.OnReadyQueue(now, n)
	}
}
