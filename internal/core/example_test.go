package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// The paper's modeling pattern end to end: create the RTOS model on the
// simulation kernel, convert processes into tasks (Figure 5: activate at
// the top, terminate at the bottom, time_wait for computation), and let
// the priority scheduler serialize them.
func ExampleOS() {
	k := sim.NewKernel()
	rtos := core.New(k, "CPU", core.PriorityPolicy{})

	run := func(name string, prio int, work sim.Time) {
		task := rtos.TaskCreate(name, core.Aperiodic, 0, work, prio)
		k.Spawn(name, func(p *sim.Proc) {
			rtos.TaskActivate(p, task)
			rtos.TimeWait(p, work)
			fmt.Printf("[%v] %s done\n", p.Now(), name)
			rtos.TaskTerminate(p)
		})
	}
	run("background", 9, 30)
	run("control", 1, 10) // higher priority: runs first despite spawn order

	rtos.Start(nil)
	if err := k.Run(); err != nil {
		fmt.Println("error:", err)
	}
	st := rtos.StatsSnapshot()
	fmt.Printf("context switches: %d\n", st.ContextSwitches)
	// Output:
	// [10ns] control done
	// [40ns] background done
	// context switches: 1
}
