// Personality service surface: a narrow set of exported extension points
// that let RTOS personality layers (internal/personality/...) build
// kernel-specific task services, synchronization objects and timed
// services on top of the shared dispatcher, without duplicating — or
// reaching into — its internals. The generic paper-model services
// (TaskSleep, EventWait, ...) are themselves expressible in terms of
// these primitives; the personality layers add the semantics the paper
// deliberately abstracts away: wakeup counting, timeout error codes,
// FIFO-ordered object wait queues, priority-ceiling protocols.
package core

import (
	"fmt"

	"repro/internal/sim"
)

// Suspend blocks the calling task in waiting state ws until another task,
// ISR or timer service resumes it (Resume, TaskActivate). site labels the
// blocking site ("semaphore:s0", "eventflag:rdy") for runtime diagnosis
// reports. ws must be a waiting state; the personality layer is
// responsible for having queued the task on its object before calling.
func (os *OS) Suspend(p *sim.Proc, ws TaskState, site string) {
	t := os.mustCurrent(p, "Suspend")
	checkWaitState(ws)
	t.blockSite = site
	os.setState(t, ws)
	os.releaseCPU(p)
	os.waitUntilDispatched(p, t)
}

// SuspendTimeout is Suspend with a relative timeout. It returns true if
// the task was resumed before the timeout and false if the timeout
// expired first. A negative tmo means wait forever (µITRON TMO_FEVR).
//
// On expiry, onTimeout runs at the timeout instant — before the task
// re-enters the ready queue — so the personality layer can atomically
// remove the task from its object's wait queue; a grant arriving at a
// later instant can then no longer observe the timed-out waiter. A grant
// and the timeout colliding at the same instant resolve in favor of
// whichever happened first in delta order, deterministically.
func (os *OS) SuspendTimeout(p *sim.Proc, ws TaskState, site string, tmo sim.Time, onTimeout func()) bool {
	t := os.mustCurrent(p, "SuspendTimeout")
	if tmo < 0 {
		os.Suspend(p, ws, site)
		return true
	}
	checkWaitState(ws)
	t.blockSite = site
	os.setState(t, ws)
	os.releaseCPU(p)
	deadline := os.k.Now() + tmo
	for os.current != t && t.state == ws {
		remaining := deadline - os.k.Now()
		if remaining > 0 && p.WaitTimeout(t.dispatch, remaining) {
			continue // dispatch notification: loop re-checks
		}
		if t.state != ws {
			break // granted at the very instant the timer fired
		}
		if onTimeout != nil {
			onTimeout()
		}
		os.makeReady(t)
		p.YieldDelta()
		os.decideFrom(p)
		os.waitUntilDispatched(p, t)
		return false
	}
	os.waitUntilDispatched(p, t)
	return true
}

// Resume makes a task blocked by Suspend/SuspendTimeout runnable again
// and triggers a scheduling decision (which may preempt the caller). It
// is safe from the running task, an ISR, or a foreign process. Resuming
// a task that is not blocked — it already timed out, or was never
// suspended — is a no-op, so grant/timeout races are harmless.
func (os *OS) Resume(p *sim.Proc, t *Task) {
	if t == os.current || !t.state.Alive() {
		return
	}
	switch t.state {
	case TaskWaitingEvent, TaskWaitingMutex, TaskWaitingTime, TaskSuspended:
		os.makeReady(t)
		os.decideFrom(p)
	}
}

// Yield is the explicit scheduling point of cooperative kernels (OSEK
// Schedule): if a strictly preferred task is ready, the caller yields the
// CPU to it — ignoring both a non-preemptive policy and the caller's
// non-preemptable marking, which suppress only involuntary switches.
// With no preferred ready task the caller keeps the CPU.
func (os *OS) Yield(p *sim.Proc) {
	t := os.mustCurrent(p, "Yield")
	if best := os.pickBest(); best != nil && os.policy.Less(best, t) {
		os.yieldCPU(p, t)
	}
}

// Requeue moves the calling task to the back of its scheduling rank and
// blocks until it is re-dispatched — the reactivation point of OSEK
// multiple-activation semantics, where a terminated task with a queued
// activation re-enters the ready queue from the rear as a fresh job.
func (os *OS) Requeue(p *sim.Proc) {
	t := os.mustCurrent(p, "Requeue")
	os.makeReady(t)
	os.current = nil
	os.dispatchBest(p, t)
	os.waitUntilDispatched(p, t)
}

// Adopt binds the calling process to task t and parks it suspended until
// another task or ISR activates it (TaskActivate, Resume). It is the
// personality-layer alternative to self-TaskActivate for kernels whose
// tasks are declared before they first run (OSEK: tasks without
// autostart begin in the SUSPENDED state).
func (os *OS) Adopt(p *sim.Proc, t *Task) {
	if t.proc != nil && t.proc != p {
		panic(fmt.Sprintf("core[%s]: Adopt of task %q already bound to %q",
			os.name, t.name, t.proc.Name()))
	}
	if t.state != TaskCreated {
		panic(fmt.Sprintf("core[%s]: Adopt of task %q in state %s", os.name, t.name, t.state))
	}
	t.proc = p
	os.setState(t, TaskSuspended)
	os.waitUntilDispatched(p, t)
}

// MakeReady enters a suspended or created task into the ready queue
// without triggering a scheduling decision. Personality layers use it
// for atomic hand-offs (OSEK ChainTask readies the successor first; the
// caller's own termination then performs the single dispatch decision).
// Pair with Reschedule, or with a service that releases the CPU.
func (os *OS) MakeReady(t *Task) {
	switch t.state {
	case TaskSuspended, TaskCreated:
		os.makeReady(t)
	}
}

// Reschedule triggers a scheduling decision from the calling context. A
// personality service that changed scheduling attributes without
// blocking or readying anything (chg_pri, ceiling-priority restore)
// calls it so a now-preferred ready task preempts immediately.
func (os *OS) Reschedule(p *sim.Proc) { os.decideFrom(p) }

// checkWaitState restricts Suspend to states the dispatcher treats as
// blocked-on-another-task (plus TaskWaitingTime for interruptible timed
// sleeps like µITRON dly_tsk, which rel_wai can release).
func checkWaitState(ws TaskState) {
	if ws == TaskWaitingTime || isBlockedState(ws) {
		return
	}
	panic(fmt.Sprintf("core: Suspend in non-waiting state %s", ws))
}
