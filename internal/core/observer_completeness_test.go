package core

import (
	"testing"

	"repro/internal/sim"
)

// statObserver derives every Stats counter from the ObserverExt event
// stream alone — it never reads os.stats. The completeness test below
// asserts its derivation matches StatsSnapshot exactly, which guards the
// observer hooks against drift: if a code path ever bumps a counter
// without emitting the corresponding event (or vice versa), this fails.
type statObserver struct {
	dispatches  uint64
	ctxSwitches uint64
	preemptions uint64
	irqEnters   uint64
	irqReturns  uint64
	releases    uint64
	blocks      uint64
	unblocks    uint64
	readyLast   int
	lastRun     *Task
	states      map[*Task]TaskState
}

func newStatObserver() *statObserver {
	return &statObserver{states: map[*Task]TaskState{}}
}

func (o *statObserver) OnTaskState(at sim.Time, t *Task, old, new TaskState) {
	o.states[t] = new
}

func (o *statObserver) OnDispatch(at sim.Time, prev, next *Task) {
	if next == nil {
		return
	}
	o.dispatches++
	if o.lastRun != nil && o.lastRun != next {
		o.ctxSwitches++
	}
	o.lastRun = next
}

func (o *statObserver) OnIRQ(at sim.Time, name string, enter bool) {
	if enter {
		o.irqEnters++
	} else {
		o.irqReturns++
	}
}

func (o *statObserver) OnRelease(at sim.Time, t *Task)              { o.releases++ }
func (o *statObserver) OnPreempt(at sim.Time, t *Task, by *Task)    { o.preemptions++ }
func (o *statObserver) OnBlock(at sim.Time, t *Task, r BlockReason) { o.blocks++ }
func (o *statObserver) OnUnblock(at sim.Time, t *Task, r BlockReason) {
	o.unblocks++
}
func (o *statObserver) OnReadyQueue(at sim.Time, n int) { o.readyLast = n }

// completenessScenario exercises every hook source: periodic tasks
// (releases, period blocks), event waits (block/unblock with reason),
// preemption via an ISR-released high-priority task, and IRQ
// enter/return.
func completenessScenario(t *testing.T, tm TimeModel) (*OS, *statObserver) {
	t.Helper()
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{}, WithTimeModel(tm))
	obs := newStatObserver()
	os.Observe(obs)

	e := os.EventNew("data")
	high := os.TaskCreate("high", Aperiodic, 0, 0, 1)
	mid := os.TaskCreate("mid", Periodic, 100, 20, 2)
	low := os.TaskCreate("low", Aperiodic, 0, 0, 3)

	k.Spawn("high", taskBody(os, high, func(p *sim.Proc) {
		os.EventWait(p, e)
		os.TimeWait(p, 10)
	}))
	k.Spawn("mid", taskBody(os, mid, func(p *sim.Proc) {
		for c := 0; c < 4; c++ {
			os.TimeWait(p, 20)
			os.TaskEndCycle(p)
		}
	}))
	k.Spawn("low", taskBody(os, low, func(p *sim.Proc) {
		os.TimeWait(p, 150)
	}))
	k.Spawn("isr", func(p *sim.Proc) {
		p.WaitFor(45)
		os.InterruptEnter(p, "irq0")
		os.EventNotify(p, e)
		os.InterruptReturn(p, "irq0")
	})
	os.Start(nil)
	run(t, k)
	return os, obs
}

func TestObserverStreamDerivesStats(t *testing.T) {
	for _, tm := range []TimeModel{TimeModelCoarse, TimeModelSegmented} {
		t.Run(tm.String(), func(t *testing.T) {
			os, obs := completenessScenario(t, tm)
			st := os.StatsSnapshot()

			if obs.dispatches != st.Dispatches {
				t.Errorf("derived dispatches = %d, stats %d", obs.dispatches, st.Dispatches)
			}
			if obs.ctxSwitches != st.ContextSwitches {
				t.Errorf("derived context switches = %d, stats %d", obs.ctxSwitches, st.ContextSwitches)
			}
			if obs.preemptions != st.Preemptions {
				t.Errorf("derived preemptions = %d, stats %d", obs.preemptions, st.Preemptions)
			}
			if obs.irqReturns != st.IRQs {
				t.Errorf("derived IRQ returns = %d, stats %d", obs.irqReturns, st.IRQs)
			}
			if obs.irqEnters != obs.irqReturns {
				t.Errorf("IRQ balance: %d enters vs %d returns", obs.irqEnters, obs.irqReturns)
			}
			if obs.preemptions == 0 {
				t.Error("scenario produced no preemptions; it no longer exercises OnPreempt")
			}
			if obs.blocks == 0 || obs.unblocks == 0 {
				t.Errorf("scenario produced blocks=%d unblocks=%d; want both > 0",
					obs.blocks, obs.unblocks)
			}
			// Every periodic cycle start and initial activation is a release.
			if obs.releases == 0 {
				t.Error("scenario produced no releases")
			}
			if obs.readyLast != 0 {
				t.Errorf("final ready-queue length %d, want 0 (all tasks terminated)", obs.readyLast)
			}
			for task, s := range obs.states {
				if s != TaskTerminated && s != TaskKilled {
					t.Errorf("task %s final state %v, want terminated", task.Name(), s)
				}
			}
		})
	}
}

// TestObserverBlockReasons checks the reason classification on the
// block/unblock edges for each waiting state.
func TestObserverBlockReasons(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	type edge struct {
		task   string
		reason BlockReason
	}
	var blocks, unblocks []edge
	obs := &funcObserverExt{
		onBlock: func(at sim.Time, tk *Task, r BlockReason) {
			blocks = append(blocks, edge{tk.Name(), r})
		},
		onUnblock: func(at sim.Time, tk *Task, r BlockReason) {
			unblocks = append(unblocks, edge{tk.Name(), r})
		},
	}
	os.Observe(obs)

	e := os.EventNew("ev")
	m := os.MutexNew("mu", false)
	holder := os.TaskCreate("holder", Aperiodic, 0, 0, 1)
	contender := os.TaskCreate("contender", Aperiodic, 0, 0, 2)
	notifier := os.TaskCreate("notifier", Aperiodic, 0, 0, 3)
	per := os.TaskCreate("per", Periodic, 50, 5, 4)

	// The holder blocks on the event while owning the mutex, so the
	// contender's Lock genuinely contends (a uniprocessor task can only
	// observe a held mutex when the owner blocked while holding it).
	k.Spawn("holder", taskBody(os, holder, func(p *sim.Proc) {
		m.Lock(p)          // free, acquired immediately
		os.EventWait(p, e) // BlockEvent, still owning the mutex
		m.Unlock(p)
	}))
	k.Spawn("contender", taskBody(os, contender, func(p *sim.Proc) {
		os.TimeWait(p, 5)
		m.Lock(p) // BlockMutex: held by the blocked holder
		m.Unlock(p)
	}))
	k.Spawn("notifier", taskBody(os, notifier, func(p *sim.Proc) {
		os.TimeWait(p, 20)
		os.EventNotify(p, e)
	}))
	k.Spawn("per", taskBody(os, per, func(p *sim.Proc) {
		for c := 0; c < 2; c++ {
			os.TimeWait(p, 5)
			os.TaskEndCycle(p) // BlockPeriod
		}
	}))
	os.Start(nil)
	run(t, k)

	want := map[BlockReason]bool{}
	for _, b := range blocks {
		want[b.reason] = true
	}
	for _, r := range []BlockReason{BlockEvent, BlockMutex, BlockPeriod} {
		if !want[r] {
			t.Errorf("no block observed with reason %v (got %v)", r, blocks)
		}
	}
	if len(unblocks) == 0 {
		t.Fatal("no unblocks observed")
	}
	// Unblock reasons must mirror what the task blocked on.
	pending := map[string]BlockReason{}
	for _, b := range blocks {
		pending[b.task] = b.reason
	}
	for _, u := range unblocks {
		if r, ok := pending[u.task]; ok && r != u.reason {
			t.Errorf("task %s unblocked with reason %v, last blocked with %v", u.task, u.reason, r)
		}
	}
}

// funcObserverExt adapts closures to ObserverExt for tests.
type funcObserverExt struct {
	onBlock   func(sim.Time, *Task, BlockReason)
	onUnblock func(sim.Time, *Task, BlockReason)
}

func (f *funcObserverExt) OnTaskState(sim.Time, *Task, TaskState, TaskState) {}
func (f *funcObserverExt) OnDispatch(sim.Time, *Task, *Task)                 {}
func (f *funcObserverExt) OnIRQ(sim.Time, string, bool)                      {}
func (f *funcObserverExt) OnRelease(sim.Time, *Task)                         {}
func (f *funcObserverExt) OnPreempt(sim.Time, *Task, *Task)                  {}
func (f *funcObserverExt) OnBlock(at sim.Time, t *Task, r BlockReason) {
	if f.onBlock != nil {
		f.onBlock(at, t, r)
	}
}
func (f *funcObserverExt) OnUnblock(at sim.Time, t *Task, r BlockReason) {
	if f.onUnblock != nil {
		f.onUnblock(at, t, r)
	}
}
func (f *funcObserverExt) OnReadyQueue(sim.Time, int) {}
