// Package core implements the abstract RTOS model of Gerstlauer, Yu and
// Gajski, "RTOS Modeling for System Level Design" (DATE 2003): a library
// object layered on top of the SLDL simulation kernel (internal/sim) that
// provides the key services of a real-time operating system — task
// management, dynamic scheduling with preemption, inter-task event
// synchronization, time modeling, and interrupt handling — so that the
// dynamic behavior of a multi-tasking processing element can be modeled
// and evaluated long before a concrete RTOS is targeted.
//
// The OS type exposes the paper's Figure 4 interface. Tasks are ordinary
// simulation processes that route their timing (TimeWait instead of
// waitfor) and synchronization (EventWait/EventNotify instead of
// wait/notify) through the OS object; the OS serializes them so that at
// any simulated instant at most one task of a processing element executes,
// selected by a pluggable scheduling policy.
package core

import (
	"fmt"

	"repro/internal/readyq"
	"repro/internal/sim"
)

// TaskType distinguishes the paper's two task classes.
type TaskType int

const (
	// Aperiodic tasks run to completion once activated and have a fixed
	// priority.
	Aperiodic TaskType = iota
	// Periodic tasks execute one cycle per period and call TaskEndCycle to
	// wait for their next release.
	Periodic
)

// String returns "aperiodic" or "periodic".
func (t TaskType) String() string {
	if t == Periodic {
		return "periodic"
	}
	return "aperiodic"
}

// TaskState is the RTOS-level task state machine (distinct from the
// underlying simulation process state).
type TaskState int

const (
	// TaskCreated: allocated by TaskCreate, not yet activated.
	TaskCreated TaskState = iota
	// TaskReady: runnable, waiting in the ready queue for dispatch.
	TaskReady
	// TaskRunning: the task currently holding the (modeled) CPU.
	TaskRunning
	// TaskWaitingEvent: blocked in EventWait.
	TaskWaitingEvent
	// TaskWaitingTime: executing a modeled delay inside TimeWait. The task
	// logically occupies the CPU for the duration.
	TaskWaitingTime
	// TaskWaitingChildren: suspended by ParStart until ParEnd.
	TaskWaitingChildren
	// TaskWaitingPeriod: a periodic task between TaskEndCycle and its next
	// release.
	TaskWaitingPeriod
	// TaskWaitingMutex: blocked in Mutex.Lock.
	TaskWaitingMutex
	// TaskSuspended: suspended by TaskSleep until TaskActivate.
	TaskSuspended
	// TaskTerminated: finished via TaskTerminate.
	TaskTerminated
	// TaskKilled: forcibly removed via TaskKill.
	TaskKilled
)

// String returns a short lower-case state name.
func (s TaskState) String() string {
	switch s {
	case TaskCreated:
		return "created"
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskWaitingEvent:
		return "wait-event"
	case TaskWaitingTime:
		return "delay"
	case TaskWaitingChildren:
		return "wait-children"
	case TaskWaitingPeriod:
		return "wait-period"
	case TaskWaitingMutex:
		return "wait-mutex"
	case TaskSuspended:
		return "suspended"
	case TaskTerminated:
		return "terminated"
	case TaskKilled:
		return "killed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Alive reports whether the task can still run (not terminated or killed).
func (s TaskState) Alive() bool { return s != TaskTerminated && s != TaskKilled }

// Task is the RTOS model's task control block. Tasks are created with
// OS.TaskCreate and bound to their simulation process on first
// TaskActivate. Priority follows the convention smaller value = higher
// priority (as in VxWorks or µC/OS).
type Task struct {
	os   *OS
	id   int
	name string
	typ  TaskType

	// Static parameters (paper: task_create(name, type, period, wcet)).
	period sim.Time // release period for periodic tasks
	wcet   sim.Time // worst-case execution time budget (informational;
	// used by the schedulability analysis extension)
	prio int // base priority; smaller = higher

	state TaskState
	proc  *sim.Proc // bound on first activation

	dispatch *sim.Event // released by the dispatcher to hand over the CPU
	preempt  *sim.Event // preemption request (segmented time model only)

	rq           readyq.Links[*Task] // intrusive node in the indexed ready queue
	readySeq     int                 // FIFO tie-break within equal scheduling rank
	chargeSwitch bool                // this dispatch was a context switch: charge overhead
	release      sim.Time            // current/next release time (periodic)
	deadline     sim.Time            // absolute deadline (EDF); Forever for aperiodic
	sliceUsed    sim.Time            // consumed share of the round-robin slice

	// Accounting, exposed via Stats and the trace layer.
	lastWorkDone sim.Time // instant the task's last modeled delay completed
	cpuTime      sim.Time // accumulated modeled execution time
	activations  int      // completed cycles (periodic) or activations
	missed       int      // deadline misses observed at end of cycle

	blockSite  string // last blocking site, for runtime diagnosis reports
	nonpreempt bool   // involuntary preemption suppressed (OSEK non-preemptable)
}

// ID returns the task's creation-ordered identifier within its OS.
func (t *Task) ID() int { return t.id }

// Name returns the task name given to TaskCreate.
func (t *Task) Name() string { return t.name }

// Type returns Periodic or Aperiodic.
func (t *Task) Type() TaskType { return t.typ }

// State returns the task's current RTOS state.
func (t *Task) State() TaskState { return t.state }

// Priority returns the task's current base priority (smaller = higher).
func (t *Task) Priority() int { return t.prio }

// SetPriority changes the base priority. It takes effect at the next
// scheduling decision; changing the priority of a ready or running task
// does not itself trigger a dispatch.
func (t *Task) SetPriority(p int) {
	t.prio = p
	t.os.rekeyReady(t)
}

// SetDeadline overrides the task's current absolute deadline (the EDF
// rank). Periodic bookkeeping overwrites it at the task's next release;
// the fault-injection layer uses it to make transient stall tasks win
// under deadline-driven policies.
func (t *Task) SetDeadline(d sim.Time) {
	t.deadline = d
	t.os.rekeyReady(t)
}

// SetPreemptable marks whether the task may be preempted involuntarily.
// Non-preemptable tasks (OSEK non-preemptive conformance, internal
// resources) run to their next voluntary scheduling point — blocking
// service, termination, or an explicit Yield — even under a preemptive
// policy. Tasks default to preemptable.
func (t *Task) SetPreemptable(on bool) { t.nonpreempt = !on }

// Preemptable reports whether involuntary preemption is allowed.
func (t *Task) Preemptable() bool { return !t.nonpreempt }

// Period returns the task's period (0 for aperiodic tasks).
func (t *Task) Period() sim.Time { return t.period }

// WCET returns the task's declared worst-case execution time budget.
func (t *Task) WCET() sim.Time { return t.wcet }

// Deadline returns the task's current absolute deadline.
func (t *Task) Deadline() sim.Time { return t.deadline }

// Release returns the task's current release time (periodic tasks; 0
// before the first activation).
func (t *Task) Release() sim.Time { return t.release }

// LastWorkDone returns the instant the task's last modeled delay
// completed — the completion time TaskEndCycle charges deadlines against,
// even when the task is preempted right at the delay boundary.
func (t *Task) LastWorkDone() sim.Time { return t.lastWorkDone }

// CPUTime returns the modeled execution time the task has consumed so far.
func (t *Task) CPUTime() sim.Time { return t.cpuTime }

// Activations returns the number of completed activations/cycles.
func (t *Task) Activations() int { return t.activations }

// MissedDeadlines returns how many cycles completed after their deadline.
func (t *Task) MissedDeadlines() int { return t.missed }

// NoteActivation records a completed activation of the task. Personality
// layers whose tasks park (suspend) at end-of-job instead of terminating
// use it to keep activation accounting comparable with the generic
// TaskTerminate path.
func (t *Task) NoteActivation() { t.activations++ }

// Proc returns the bound simulation process (nil before first activation).
func (t *Task) Proc() *sim.Proc { return t.proc }

func (t *Task) String() string {
	return fmt.Sprintf("task %d %q prio=%d (%s)", t.id, t.name, t.prio, t.state)
}
