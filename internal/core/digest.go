package core

import (
	"bytes"
	"fmt"
)

// StateDigest renders the OS's complete mutable scheduler state as
// deterministic bytes: the running/last-run tasks, every task control
// block's dynamic fields, the ready-queue sequence counters, the
// accounting stats including in-flight idle/delay/overhead spans, and
// the watchdog progress stamp. Two OS instances that executed the same
// model to the same instant digest identically, so the checkpoint
// oracle (internal/simcheck) can compare a restored kernel's OS against
// the original at the snapshot point, not just at the horizon. Ready-
// queue membership is derivable from task state plus readySeq, so the
// digest is independent of the indexed-vs-linear queue representation.
func (os *OS) StateDigest() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "osdigest/1 name=%q started=%t cur=%d last=%d seq=%d fseq=%d\n",
		os.name, os.started, taskDigestID(os.current), taskDigestID(os.lastRun), os.seq, os.frontSeq)
	fmt.Fprintf(&b, "spans startedAt=%d idleSince=%d idleValid=%t delayStart=%d delayValid=%t ovhStart=%d ovhValid=%t progress=%d\n",
		int64(os.startedAt), int64(os.idleSince), os.idleValid,
		int64(os.delayStart), os.delayValid, int64(os.ovhStart), os.ovhValid, os.progress)
	st := os.stats
	fmt.Fprintf(&b, "stats disp=%d cs=%d pre=%d irqs=%d idle=%d busy=%d ovh=%d\n",
		st.Dispatches, st.ContextSwitches, st.Preemptions, st.IRQs,
		int64(st.IdleTime), int64(st.BusyTime), int64(st.OverheadTime))
	for _, t := range os.tasks {
		fmt.Fprintf(&b, "t %d name=%q state=%q prio=%d rseq=%d rel=%d dl=%d slice=%d lwd=%d cpu=%d act=%d miss=%d np=%t site=%q\n",
			t.id, t.name, t.state.String(), t.prio, t.readySeq,
			int64(t.release), int64(t.deadline), int64(t.sliceUsed),
			int64(t.lastWorkDone), int64(t.cpuTime), t.activations, t.missed, t.nonpreempt, t.blockSite)
	}
	return b.Bytes()
}

func taskDigestID(t *Task) int {
	if t == nil {
		return -1
	}
	return t.id
}
