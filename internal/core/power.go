package core

import "repro/internal/sim"

// Power modeling is a light extension over the paper: system-level design
// flows evaluate energy alongside timing, and the RTOS model already
// tracks exactly the quantities a two-state (active/idle) processor power
// model needs. Powers are in milliwatts; energies in picojoules when one
// time unit is one nanosecond (mW × ns = pJ).

// PowerModel is a two-state processor power model.
type PowerModel struct {
	ActiveMW float64 // power while a task occupies the CPU
	IdleMW   float64 // power while the CPU idles
}

// Energy reports the modeled energy consumption derived from the OS's
// busy/idle accounting, in mW×time-units (pJ at nanosecond resolution).
type Energy struct {
	ActivePJ float64
	IdlePJ   float64
	TotalPJ  float64
}

// EnergyUnder evaluates a power model against the instance's accumulated
// statistics. Call after (or during) simulation; the idle figure uses the
// recorded idle time, the active figure the total modeled execution time.
func (os *OS) EnergyUnder(pm PowerModel) Energy {
	e := Energy{
		ActivePJ: pm.ActiveMW * float64(os.stats.BusyTime),
		IdlePJ:   pm.IdleMW * float64(os.stats.IdleTime),
	}
	e.TotalPJ = e.ActivePJ + e.IdlePJ
	return e
}

// TaskEnergy returns one task's active energy under the model.
func (pm PowerModel) TaskEnergy(t *Task) float64 {
	return pm.ActiveMW * float64(t.cpuTime)
}

// AveragePowerMW returns the average power over an observation window
// ending at the OS's kernel time, assuming the window started at t0.
func (os *OS) AveragePowerMW(pm PowerModel, t0 sim.Time) float64 {
	span := os.k.Now() - t0
	if span <= 0 {
		return 0
	}
	return os.EnergyUnder(pm).TotalPJ / float64(span)
}
