package core

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// This file is an extension over the DATE 2003 paper: static
// schedulability analysis for the periodic task sets the RTOS model
// executes. The paper's model parameters (period, wcet per task_create)
// carry exactly the information classic analysis needs, so the experiment
// harness uses these functions to cross-check simulated deadline misses
// against analytical predictions (DESIGN.md, experiment SCHED).

// Utilization returns the total processor utilization of the periodic
// tasks in the set: sum of wcet/period.
func Utilization(tasks []*Task) float64 {
	u := 0.0
	for _, t := range tasks {
		if t.typ == Periodic && t.period > 0 {
			u += float64(t.wcet) / float64(t.period)
		}
	}
	return u
}

// RMUtilizationBound returns the Liu & Layland rate-monotonic utilization
// bound n(2^(1/n)-1) for n periodic tasks. Task sets below the bound are
// guaranteed schedulable under RM; above it, they may or may not be.
func RMUtilizationBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// EDFFeasible reports whether the periodic task set is schedulable under
// preemptive EDF with deadlines equal to periods: U <= 1.
func EDFFeasible(tasks []*Task) bool {
	return Utilization(tasks) <= 1.0+1e-12
}

// ResponseTimeRM computes worst-case response times for a periodic task
// set under fixed-priority preemptive scheduling with rate-monotonic
// priority assignment, using standard response-time analysis
// (R = C + sum over higher-priority j of ceil(R/T_j)*C_j, iterated to a
// fixed point). It returns the response time per task, in the order given,
// and ok=false if any task's response time exceeds its period (deadline).
func ResponseTimeRM(tasks []*Task) (resp []sim.Time, ok bool) {
	periodic := make([]*Task, 0, len(tasks))
	for _, t := range tasks {
		if t.typ == Periodic {
			periodic = append(periodic, t)
		}
	}
	byRate := append([]*Task(nil), periodic...)
	sort.SliceStable(byRate, func(i, j int) bool { return byRate[i].period < byRate[j].period })

	rt := make(map[*Task]sim.Time, len(byRate))
	ok = true
	for i, t := range byRate {
		r := t.wcet
		for iter := 0; iter < 1000; iter++ {
			next := t.wcet
			for _, h := range byRate[:i] {
				n := (r + h.period - 1) / h.period // ceil(r / T_h)
				next += n * h.wcet
			}
			if next == r {
				break
			}
			r = next
			if r > t.period*64 { // diverging: hopelessly unschedulable
				break
			}
		}
		rt[t] = r
		if r > t.period {
			ok = false
		}
	}
	resp = make([]sim.Time, 0, len(periodic))
	for _, t := range periodic {
		resp = append(resp, rt[t])
	}
	return resp, ok
}

// Hyperperiod returns the least common multiple of the periodic tasks'
// periods — the natural simulation horizon for schedulability experiments.
// It returns 0 if there are no periodic tasks, and caps the result at
// limit to avoid astronomically long horizons (0 means no cap).
func Hyperperiod(tasks []*Task, limit sim.Time) sim.Time {
	var h sim.Time
	for _, t := range tasks {
		if t.typ != Periodic || t.period <= 0 {
			continue
		}
		if h == 0 {
			h = t.period
			continue
		}
		h = lcm(h, t.period)
		if limit > 0 && h > limit {
			return limit
		}
	}
	return h
}

func gcd(a, b sim.Time) sim.Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b sim.Time) sim.Time { return a / gcd(a, b) * b }
