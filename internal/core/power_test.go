package core

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestEnergyAccounting(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	e := os.EventNew("go")
	a := os.TaskCreate("a", Aperiodic, 0, 0, 1)
	// a: runs 100, waits 50 (idle), runs 50 more after the ISR releases it.
	k.Spawn("a", taskBody(os, a, func(p *sim.Proc) {
		os.TimeWait(p, 100)
		os.EventWait(p, e)
		os.TimeWait(p, 50)
	}))
	k.Spawn("isr", func(p *sim.Proc) {
		p.WaitFor(150)
		os.InterruptEnter(p, "x")
		os.EventNotify(p, e)
		os.InterruptReturn(p, "x")
	})
	os.Start(nil)
	run(t, k)

	pm := PowerModel{ActiveMW: 200, IdleMW: 20}
	en := os.EnergyUnder(pm)
	// Busy 150 units at 200 mW, idle 50 units at 20 mW.
	if math.Abs(en.ActivePJ-150*200) > 1e-9 {
		t.Errorf("active = %v, want %v", en.ActivePJ, 150*200.0)
	}
	if math.Abs(en.IdlePJ-50*20) > 1e-9 {
		t.Errorf("idle = %v, want %v", en.IdlePJ, 50*20.0)
	}
	if math.Abs(en.TotalPJ-(en.ActivePJ+en.IdlePJ)) > 1e-9 {
		t.Error("total != active + idle")
	}
	if got := pm.TaskEnergy(a); math.Abs(got-150*200) > 1e-9 {
		t.Errorf("task energy = %v, want %v", got, 150*200.0)
	}
	// Average power over the 200-unit window: (30000+1000)/200 = 155 mW.
	if got := os.AveragePowerMW(pm, 0); math.Abs(got-155) > 1e-9 {
		t.Errorf("average power = %v mW, want 155", got)
	}
}

func TestEnergyComparesPolicies(t *testing.T) {
	// Same workload, same busy time — energy differences come only from
	// idle span differences; with identical spans the totals match,
	// making energy a fair policy-comparison metric.
	runPolicy := func(pol Policy) Energy {
		k := sim.NewKernel()
		os := New(k, "PE", pol)
		for i := 0; i < 3; i++ {
			task := os.TaskCreate(names3[i], Aperiodic, 0, 0, i)
			k.Spawn(task.Name(), taskBody(os, task, func(p *sim.Proc) {
				os.TimeWait(p, 40)
			}))
		}
		os.Start(nil)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return os.EnergyUnder(PowerModel{ActiveMW: 100, IdleMW: 10})
	}
	prio := runPolicy(PriorityPolicy{})
	fcfs := runPolicy(FCFSPolicy{})
	if math.Abs(prio.TotalPJ-fcfs.TotalPJ) > 1e-9 {
		t.Errorf("energy differs across policies for identical work: %v vs %v",
			prio.TotalPJ, fcfs.TotalPJ)
	}
	if prio.ActivePJ != 3*40*100 {
		t.Errorf("active = %v, want %v", prio.ActivePJ, 3*40*100.0)
	}
}

func TestAveragePowerEmptyWindow(t *testing.T) {
	k := sim.NewKernel()
	os := New(k, "PE", PriorityPolicy{})
	if got := os.AveragePowerMW(PowerModel{ActiveMW: 1}, 0); got != 0 {
		t.Errorf("average power over empty window = %v, want 0", got)
	}
}
