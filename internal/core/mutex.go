package core

import (
	"fmt"

	"repro/internal/sim"
)

// This file extends the paper's RTOS model with mutual-exclusion resource
// management and optional priority inheritance — the standard RTOS
// mechanism against unbounded priority inversion (cf. the Mars Pathfinder
// incident). The paper's interface covers task synchronization through
// events; resource locking with inheritance is the natural next service a
// real RTOS provides, and it maps directly onto the model's dispatcher.

// Mutex is an RTOS-level lock. With inheritance enabled, a lower-priority
// owner is temporarily boosted to the highest priority among the tasks
// blocked on the mutex, so medium-priority tasks cannot prolong a
// high-priority task's wait (bounded priority inversion).
//
// Nested locking must follow LIFO (properly nested) order for priority
// restoration to be exact; this matches the usual RTOS discipline.
type Mutex struct {
	os      *OS
	name    string
	inherit bool

	owner     *Task
	ownerBase int // owner's priority when it acquired the lock
	waiters   []*Task
	res       *Resource // wait-for-graph node for deadlock diagnosis

	// Accounting for experiments.
	contended uint64
	boosts    uint64
}

// MutexNew creates a mutex on this OS instance. inherit selects priority
// inheritance.
func (os *OS) MutexNew(name string, inherit bool) *Mutex {
	return &Mutex{os: os, name: name, inherit: inherit,
		res: os.monitor.NewResource(name, "mutex", true)}
}

// Name returns the mutex's name.
func (m *Mutex) Name() string { return m.name }

// Owner returns the current owner (nil if free).
func (m *Mutex) Owner() *Task { return m.owner }

// Contended returns how many Lock calls had to block.
func (m *Mutex) Contended() uint64 { return m.contended }

// Boosts returns how many priority-inheritance boosts were applied.
func (m *Mutex) Boosts() uint64 { return m.boosts }

// Lock acquires the mutex for the calling task, blocking while another
// task holds it. Recursive locking panics (it would self-deadlock).
func (m *Mutex) Lock(p *sim.Proc) {
	os := m.os
	t := os.mustCurrent(p, "Mutex.Lock")
	if m.owner == t {
		panic(fmt.Sprintf("core: recursive Lock of %q by task %q", m.name, t.name))
	}
	for m.owner != nil {
		m.contended++
		if m.inherit && t.prio < m.owner.prio {
			// Boost the owner to the blocked task's priority. If the owner
			// sits in the ready queue, its new rank takes effect at the
			// next dispatch decision below.
			m.owner.prio = t.prio
			os.rekeyReady(m.owner)
			m.boosts++
		}
		m.waiters = append(m.waiters, t)
		os.monitor.blockTask(t, m.res) // may diagnose a circular wait
		os.setState(t, TaskWaitingMutex)
		os.releaseCPU(p)
		os.waitUntilDispatched(p, t)
		// Woken as the designated next owner (or spuriously); re-check.
	}
	m.owner = t
	m.ownerBase = t.prio
	m.res.acquireTask(t)
}

// Unlock releases the mutex; only the owner may unlock. The owner's
// priority is restored and ownership is handed to the most eligible
// waiter under the OS's scheduling policy.
func (m *Mutex) Unlock(p *sim.Proc) {
	os := m.os
	t := os.mustCurrent(p, "Mutex.Unlock")
	if m.owner != t {
		owner := "nobody"
		if m.owner != nil {
			owner = m.owner.name
		}
		panic(fmt.Sprintf("core: Unlock of %q by task %q but owner is %s",
			m.name, t.name, owner))
	}
	t.prio = m.ownerBase
	m.owner = nil
	m.res.releaseTask(t)
	// Drop waiters that were killed while blocked; they must neither
	// receive ownership nor block the hand-over to live waiters.
	live := m.waiters[:0]
	for _, w := range m.waiters {
		if w.state.Alive() {
			live = append(live, w)
		}
	}
	m.waiters = live
	if len(m.waiters) > 0 {
		// Hand over to the policy-preferred waiter (FIFO tie-break by
		// queue order).
		best := 0
		for i := 1; i < len(m.waiters); i++ {
			if os.policy.Less(m.waiters[i], m.waiters[best]) {
				best = i
			}
		}
		next := m.waiters[best]
		m.waiters = append(m.waiters[:best], m.waiters[best+1:]...)
		os.makeReady(next)
	}
	os.decideFrom(p)
}

// TryLock acquires the mutex without blocking and reports success.
func (m *Mutex) TryLock(p *sim.Proc) bool {
	t := m.os.mustCurrent(p, "Mutex.TryLock")
	if m.owner != nil {
		return false
	}
	m.owner = t
	m.ownerBase = t.prio
	m.res.acquireTask(t)
	return true
}
