// Package timewheel implements a hierarchical timing wheel: the
// tick-bucket timer structure real kernels and network stacks use when
// timers are scheduled and canceled far more often than they fire
// (TCP retransmit timers are the classic case — each segment arms a
// countdown that is almost always canceled by the ACK).
//
// The wheel replaces a binary heap's O(log n) schedule/cancel with O(1):
//
//   - level 0 buckets times at the base tick granularity (one slot per
//     tick, 64 slots);
//   - level k buckets times at granularity 64^k, so five levels span
//     ~2^30 ticks from the current time;
//   - entries further out wait in a small overflow min-heap and are rare
//     by construction;
//   - entries chain through intrusive doubly-linked Nodes embedded in
//     the caller's type (zero-alloc steady state, O(1) cancel).
//
// When time advances to t, higher-level slots covering t cascade down:
// their entries redistribute to lower levels, and every entry due at
// exactly t lands in level 0's slot for t. CollectDue then drains that
// slot and sorts it by the caller's sequence number, restoring the exact
// (time, seq) FIFO firing order a binary heap provides — the order the
// simulation kernel's trace byte-equivalence depends on.
//
// The structure is generic over the entry type with pure-field accessors,
// in the style of internal/readyq, so the goroutine kernel
// (internal/sim) and the run-to-completion engine (internal/rtc) share
// one implementation.
//
// A front slot accelerates the dominant simulation pattern — the newly
// scheduled deadline is earlier than everything pending, and N wakes land
// on the same instant. When a push is provably earlier than every queued
// entry (tracked by an exact lower bound the existing scans refresh for
// free), it is cached in a single front slot instead of the wheel; pushes
// at the same instant chain onto it. While the slot is armed, NextTime is
// one field read and CollectDue drains the chain with no cascade, no
// level scan and no heap traffic. Deferring the cascade is safe: a
// cascade at any later time t' still redistributes the level-k slot
// covering t', so entries parked at higher levels are re-derived when
// their time comes.
package timewheel

import (
	"math"
	"math/bits"
)

const (
	slotBits  = 6
	slotCount = 1 << slotBits // 64 slots per level
	slotMask  = slotCount - 1
	// levelCount wheel levels: level k has granularity 64^k ticks.
	levelCount = 5
)

// Span is the horizon covered by the wheel levels: entries scheduled at
// least Span ticks in the future wait in the overflow heap until the
// wheel catches up.
const Span = int64(1) << (slotBits * levelCount)

// where encodings for Node.where.
const (
	whereIdle     = 0              // not queued
	whereWheelL0  = 1              // wheel level = where - whereWheelL0
	whereOverflow = levelCount + 1 // overflow heap, position Node.heapIdx
	whereFast     = levelCount + 2 // front slot chain
)

// Node is the intrusive state an entry embeds to participate in a Wheel.
// The zero value is an unqueued node.
type Node[T comparable] struct {
	next, prev T
	where      int8
	slot       int16
	heapIdx    int32
}

// Queued reports whether the owning entry is currently in the wheel (or
// its overflow heap).
func (n *Node[T]) Queued() bool { return n.where != whereIdle }

// list is one slot's FIFO chain.
type list[T comparable] struct{ head, tail T }

// Wheel is a hierarchical timing wheel over entries of type T. The
// accessors must be pure field reads: node returns the entry's embedded
// Node, at its absolute due time, seq its FIFO tie-break (entries due at
// the same time fire in ascending seq order).
type Wheel[T comparable] struct {
	node func(T) *Node[T]
	at   func(T) int64
	seq  func(T) int

	cur      int64 // current time; entries with at < cur have fired
	occupied [levelCount]uint64
	slots    [levelCount][slotCount]list[T]
	overflow []T // min-heap by (at, seq) of entries beyond Span
	size     int

	// Front slot: a chain of entries all due at fastAt, strictly earlier
	// than every wheel/overflow entry. fastLen > 0 means armed. bound is a
	// lower bound on the due time of every wheel/overflow entry (exact
	// right after a scan, math.MaxInt64 when that part is empty); arming
	// requires at < bound so the strict-ordering invariant is provable.
	fast    list[T]
	fastAt  int64
	fastLen int
	bound   int64
}

// New returns an empty wheel at time zero using the given accessors.
func New[T comparable](node func(T) *Node[T], at func(T) int64, seq func(T) int) *Wheel[T] {
	return &Wheel[T]{node: node, at: at, seq: seq, bound: math.MaxInt64}
}

// Len returns the number of queued entries.
func (w *Wheel[T]) Len() int { return w.size }

// FastLen returns the number of entries batched in the armed front slot
// (0 when the fast path is disarmed). Exposed for tests and diagnostics
// that need to confirm the one-shot/batched-wake path is engaged.
func (w *Wheel[T]) FastLen() int { return w.fastLen }

// Now returns the wheel's current time: the largest t passed to
// CollectDue so far.
func (w *Wheel[T]) Now() int64 { return w.cur }

// Push schedules t. Its due time must not lie in the past (before the
// last CollectDue time); scheduling at exactly the current time is
// allowed and fires on the next CollectDue for that time.
func (w *Wheel[T]) Push(t T) {
	n := w.node(t)
	if n.where != whereIdle {
		panic("timewheel: Push of a queued entry")
	}
	at := w.at(t)
	if at < w.cur {
		panic("timewheel: Push in the past")
	}
	w.size++
	if w.fastLen > 0 {
		switch {
		case at == w.fastAt: // batched same-instant wake
			w.fastAppend(t, n)
			return
		case at < w.fastAt:
			// The new entry displaces the chain: spill it into the wheel
			// (its instant is a proven lower bound for that part) and arm
			// the front slot with the earlier deadline.
			w.spillFast()
			w.fastAt = at
			w.fastAppend(t, n)
			return
		}
	} else if at < w.bound {
		// Provably earlier than everything pending: one-shot fast path.
		w.fastAt = at
		w.fastAppend(t, n)
		return
	}
	if at < w.bound {
		w.bound = at
	}
	w.place(t, at)
}

// fastAppend links t onto the tail of the front-slot chain.
func (w *Wheel[T]) fastAppend(t T, n *Node[T]) {
	n.where = whereFast
	var zero T
	n.next, n.prev = zero, zero
	if w.fast.head == zero {
		w.fast.head, w.fast.tail = t, t
	} else {
		n.prev = w.fast.tail
		w.node(w.fast.tail).next = t
		w.fast.tail = t
	}
	w.fastLen++
}

// spillFast disarms the front slot, migrating its chain into the wheel
// proper. Every spilled entry keeps its due time, which becomes a valid
// lower bound for the wheel part.
func (w *Wheel[T]) spillFast() {
	var zero T
	e := w.fast.head
	w.fast.head, w.fast.tail = zero, zero
	w.fastLen = 0
	if w.fastAt < w.bound {
		w.bound = w.fastAt
	}
	for e != zero {
		n := w.node(e)
		nxt := n.next
		n.next, n.prev, n.where = zero, zero, whereIdle
		w.place(e, w.at(e))
		e = nxt
	}
}

// place links t into the level/slot (or overflow heap) for due time at,
// relative to the current wheel time. size is not touched.
func (w *Wheel[T]) place(t T, at int64) {
	d := at - w.cur
	if d >= Span {
		w.heapPush(t)
		return
	}
	level := 0
	for d >= int64(slotCount)<<(slotBits*level) {
		level++
	}
	slot := int(at>>(slotBits*level)) & slotMask
	n := w.node(t)
	n.where = whereWheelL0 + int8(level)
	n.slot = int16(slot)
	var zero T
	n.next, n.prev = zero, zero
	l := &w.slots[level][slot]
	if l.head == zero {
		l.head, l.tail = t, t
	} else {
		n.prev = l.tail
		w.node(l.tail).next = t
		l.tail = t
	}
	w.occupied[level] |= 1 << uint(slot)
}

// Cancel removes t if queued, reporting whether it was. Wheel-resident
// entries unlink in O(1); overflow entries are removed from the heap.
func (w *Wheel[T]) Cancel(t T) bool {
	n := w.node(t)
	switch n.where {
	case whereIdle:
		return false
	case whereOverflow:
		w.heapRemove(int(n.heapIdx))
		n.where = whereIdle
	case whereFast:
		w.unlinkFast(t, n)
	default:
		w.unlink(t, n)
	}
	w.size--
	return true
}

// unlinkFast detaches an entry from the front-slot chain; removing the
// last one disarms the slot.
func (w *Wheel[T]) unlinkFast(t T, n *Node[T]) {
	var zero T
	if n.prev == zero {
		w.fast.head = n.next
	} else {
		w.node(n.prev).next = n.next
	}
	if n.next == zero {
		w.fast.tail = n.prev
	} else {
		w.node(n.next).prev = n.prev
	}
	n.next, n.prev, n.where = zero, zero, whereIdle
	w.fastLen--
}

// unlink detaches a wheel-resident entry from its slot chain.
func (w *Wheel[T]) unlink(t T, n *Node[T]) {
	level := int(n.where - whereWheelL0)
	l := &w.slots[level][n.slot]
	var zero T
	if n.prev == zero {
		l.head = n.next
	} else {
		w.node(n.prev).next = n.next
	}
	if n.next == zero {
		l.tail = n.prev
	} else {
		w.node(n.next).prev = n.prev
	}
	if l.head == zero {
		w.occupied[level] &^= 1 << uint(n.slot)
	}
	n.next, n.prev, n.where = zero, zero, whereIdle
}

// Each calls fn for every queued entry — wheel slots and overflow heap —
// in no particular order. Snapshot/checkpoint code uses it to enumerate
// pending timers; callers needing a deterministic order must sort by
// (at, seq) themselves. fn must not mutate the wheel.
func (w *Wheel[T]) Each(fn func(T)) {
	var zero T
	for e := w.fast.head; e != zero; e = w.node(e).next {
		fn(e)
	}
	for level := 0; level < levelCount; level++ {
		for occ := w.occupied[level]; occ != 0; occ &= occ - 1 {
			slot := bits.TrailingZeros64(occ)
			for e := w.slots[level][slot].head; e != zero; e = w.node(e).next {
				fn(e)
			}
		}
	}
	for _, e := range w.overflow {
		fn(e)
	}
}

// NextTime returns the earliest due time among queued entries. It does
// not advance the wheel. While the front slot is armed this is one field
// read; otherwise the scan's result doubles as an exact refresh of the
// wheel-part lower bound, which is what lets subsequent pushes arm the
// front slot.
func (w *Wheel[T]) NextTime() (int64, bool) {
	if w.fastLen > 0 {
		return w.fastAt, true
	}
	t, ok := w.nextTimeSlow()
	if ok {
		w.bound = t
	} else {
		w.bound = math.MaxInt64
	}
	return t, ok
}

// nextTimeSlow scans the wheel levels and overflow heap for the earliest
// due time, ignoring the front slot.
func (w *Wheel[T]) nextTimeSlow() (int64, bool) {
	if w.size-w.fastLen == 0 {
		return 0, false
	}
	var best int64
	found := false
	// Level 0 slots map one-to-one to absolute times in [cur, cur+64):
	// the first occupied slot (rotating from cur's position) is exact.
	if occ := w.occupied[0]; occ != 0 {
		p := uint(w.cur) & slotMask
		rot := occ>>p | occ<<(slotCount-p)
		best = w.cur + int64(bits.TrailingZeros64(rot))
		found = true
	}
	// Higher levels: walk occupied slots in rotation order (ascending
	// window start) and scan each (short) chain for its exact minimum —
	// chain order within a window is insertion order, not time order,
	// and the slot at the current rotation position can additionally
	// hold entries one full revolution out (window base+64 aliases the
	// slot of window base), so a single slot's minimum is only a
	// candidate, not the level's.
	var zero T
	for level := 1; level < levelCount; level++ {
		occ := w.occupied[level]
		if occ == 0 {
			continue
		}
		shift := uint(slotBits * level)
		base := w.cur >> shift
		p := uint(base) & slotMask
		for rot := occ>>p | occ<<(slotCount-p); rot != 0; rot &= rot - 1 {
			i := bits.TrailingZeros64(rot)
			if wstart := (base + int64(i)) << shift; found && wstart >= best {
				break // later slots start later still
			}
			slot := (int(p) + i) & slotMask
			for e := w.slots[level][slot].head; e != zero; e = w.node(e).next {
				if a := w.at(e); !found || a < best {
					best, found = a, true
				}
			}
		}
	}
	if len(w.overflow) > 0 {
		if a := w.at(w.overflow[0]); !found || a < best {
			best, found = a, true
		}
	}
	return best, found
}

// CollectDue advances the wheel to time t — which must be NextTime()'s
// result (no queued entry may be due earlier) — removes every entry due
// at exactly t, and appends them to dst in ascending seq order.
func (w *Wheel[T]) CollectDue(t int64, dst []T) []T {
	if t < w.cur {
		panic("timewheel: CollectDue moving backwards")
	}
	var zero T
	if w.fastLen > 0 {
		if t > w.fastAt {
			panic("timewheel: CollectDue past a due front-slot entry")
		}
		w.cur = t
		if t < w.fastAt { // advance-only: nothing due yet
			return dst
		}
		// Drain the chain: no cascade, no level scan, no heap pops — the
		// armed invariant proves nothing else is due at t, and the bound on
		// the untouched wheel part stays exact. Deferred cascades are
		// re-derived whenever the wheel part next fires.
		start := len(dst)
		for e := w.fast.head; e != zero; {
			n := w.node(e)
			nxt := n.next
			n.next, n.prev, n.where = zero, zero, whereIdle
			dst = append(dst, e)
			w.size--
			e = nxt
		}
		w.fast.head, w.fast.tail = zero, zero
		w.fastLen = 0
		w.sortDue(dst[start:])
		return dst
	}
	w.cur = t
	// Cascade: every higher-level slot covering t redistributes to lower
	// levels (its entries are now within 64^level of cur, so each lands
	// strictly below). Entries due exactly at t end up in level 0.
	for level := levelCount - 1; level >= 1; level-- {
		shift := uint(slotBits * level)
		slot := int(t>>shift) & slotMask
		l := &w.slots[level][slot]
		if l.head == zero {
			continue
		}
		e := l.head
		l.head, l.tail = zero, zero
		w.occupied[level] &^= 1 << uint(slot)
		for e != zero {
			n := w.node(e)
			nxt := n.next
			n.next, n.prev, n.where = zero, zero, whereIdle
			w.place(e, w.at(e))
			e = nxt
		}
	}
	// Drain level 0's slot for t: it holds exactly the wheel entries due
	// at t (each level-0 slot covers a single absolute time).
	start := len(dst)
	slot := int(t) & slotMask
	if l := &w.slots[0][slot]; l.head != zero {
		for e := l.head; e != zero; {
			n := w.node(e)
			nxt := n.next
			n.next, n.prev, n.where = zero, zero, whereIdle
			dst = append(dst, e)
			w.size--
			e = nxt
		}
		l.head, l.tail = zero, zero
		w.occupied[0] &^= 1 << uint(slot)
	}
	// Overflow entries due at t (the wheel span was empty past them).
	for len(w.overflow) > 0 && w.at(w.overflow[0]) == t {
		dst = append(dst, w.heapPopMin())
		w.size--
	}
	// Restore the global FIFO tie-break: ascending seq. Chains are
	// near-sorted already (pushes arrive in seq order), so insertion
	// sort is both allocation-free and cheap.
	w.sortDue(dst[start:])
	// Everything due at or before t fired; rescan for the exact new
	// minimum so pushes issued before the next NextTime (the woken
	// entries re-arming themselves) can take the front slot.
	if nt, ok := w.nextTimeSlow(); ok {
		w.bound = nt
	} else {
		w.bound = math.MaxInt64
	}
	return dst
}

// sortDue insertion-sorts one CollectDue batch by ascending seq.
func (w *Wheel[T]) sortDue(due []T) {
	for i := 1; i < len(due); i++ {
		e := due[i]
		s := w.seq(e)
		j := i
		for j > 0 && w.seq(due[j-1]) > s {
			due[j] = due[j-1]
			j--
		}
		due[j] = e
	}
}

// heapLess orders overflow entries by (at, seq).
func (w *Wheel[T]) heapLess(a, b T) bool {
	aa, ab := w.at(a), w.at(b)
	if aa != ab {
		return aa < ab
	}
	return w.seq(a) < w.seq(b)
}

func (w *Wheel[T]) heapPush(t T) {
	n := w.node(t)
	n.where = whereOverflow
	n.heapIdx = int32(len(w.overflow))
	w.overflow = append(w.overflow, t)
	w.heapUp(len(w.overflow) - 1)
}

func (w *Wheel[T]) heapPopMin() T {
	t := w.overflow[0]
	w.node(t).where = whereIdle
	w.heapRemove(0)
	return t
}

// heapRemove deletes the entry at index i, restoring the heap property.
func (w *Wheel[T]) heapRemove(i int) {
	var zero T
	last := len(w.overflow) - 1
	if i != last {
		w.overflow[i] = w.overflow[last]
		w.node(w.overflow[i]).heapIdx = int32(i)
	}
	w.overflow[last] = zero
	w.overflow = w.overflow[:last]
	if i < last {
		if !w.heapDown(i) {
			w.heapUp(i)
		}
	}
}

func (w *Wheel[T]) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !w.heapLess(w.overflow[i], w.overflow[parent]) {
			break
		}
		w.heapSwap(i, parent)
		i = parent
	}
}

func (w *Wheel[T]) heapDown(i int) bool {
	moved := false
	n := len(w.overflow)
	for {
		smallest := i
		if l := 2*i + 1; l < n && w.heapLess(w.overflow[l], w.overflow[smallest]) {
			smallest = l
		}
		if r := 2*i + 2; r < n && w.heapLess(w.overflow[r], w.overflow[smallest]) {
			smallest = r
		}
		if smallest == i {
			return moved
		}
		w.heapSwap(i, smallest)
		i = smallest
		moved = true
	}
}

func (w *Wheel[T]) heapSwap(i, j int) {
	w.overflow[i], w.overflow[j] = w.overflow[j], w.overflow[i]
	w.node(w.overflow[i]).heapIdx = int32(i)
	w.node(w.overflow[j]).heapIdx = int32(j)
}
