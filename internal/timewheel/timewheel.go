// Package timewheel implements a hierarchical timing wheel: the
// tick-bucket timer structure real kernels and network stacks use when
// timers are scheduled and canceled far more often than they fire
// (TCP retransmit timers are the classic case — each segment arms a
// countdown that is almost always canceled by the ACK).
//
// The wheel replaces a binary heap's O(log n) schedule/cancel with O(1):
//
//   - level 0 buckets times at the base tick granularity (one slot per
//     tick, 64 slots);
//   - level k buckets times at granularity 64^k, so five levels span
//     ~2^30 ticks from the current time;
//   - entries further out wait in a small overflow min-heap and are rare
//     by construction;
//   - entries chain through intrusive doubly-linked Nodes embedded in
//     the caller's type (zero-alloc steady state, O(1) cancel).
//
// When time advances to t, higher-level slots covering t cascade down:
// their entries redistribute to lower levels, and every entry due at
// exactly t lands in level 0's slot for t. CollectDue then drains that
// slot and sorts it by the caller's sequence number, restoring the exact
// (time, seq) FIFO firing order a binary heap provides — the order the
// simulation kernel's trace byte-equivalence depends on.
//
// The structure is generic over the entry type with pure-field accessors,
// in the style of internal/readyq, so the goroutine kernel
// (internal/sim) and the run-to-completion engine (internal/rtc) share
// one implementation.
package timewheel

import "math/bits"

const (
	slotBits  = 6
	slotCount = 1 << slotBits // 64 slots per level
	slotMask  = slotCount - 1
	// levelCount wheel levels: level k has granularity 64^k ticks.
	levelCount = 5
)

// Span is the horizon covered by the wheel levels: entries scheduled at
// least Span ticks in the future wait in the overflow heap until the
// wheel catches up.
const Span = int64(1) << (slotBits * levelCount)

// where encodings for Node.where.
const (
	whereIdle     = 0              // not queued
	whereWheelL0  = 1              // wheel level = where - whereWheelL0
	whereOverflow = levelCount + 1 // overflow heap, position Node.heapIdx
)

// Node is the intrusive state an entry embeds to participate in a Wheel.
// The zero value is an unqueued node.
type Node[T comparable] struct {
	next, prev T
	where      int8
	slot       int16
	heapIdx    int32
}

// Queued reports whether the owning entry is currently in the wheel (or
// its overflow heap).
func (n *Node[T]) Queued() bool { return n.where != whereIdle }

// list is one slot's FIFO chain.
type list[T comparable] struct{ head, tail T }

// Wheel is a hierarchical timing wheel over entries of type T. The
// accessors must be pure field reads: node returns the entry's embedded
// Node, at its absolute due time, seq its FIFO tie-break (entries due at
// the same time fire in ascending seq order).
type Wheel[T comparable] struct {
	node func(T) *Node[T]
	at   func(T) int64
	seq  func(T) int

	cur      int64 // current time; entries with at < cur have fired
	occupied [levelCount]uint64
	slots    [levelCount][slotCount]list[T]
	overflow []T // min-heap by (at, seq) of entries beyond Span
	size     int
}

// New returns an empty wheel at time zero using the given accessors.
func New[T comparable](node func(T) *Node[T], at func(T) int64, seq func(T) int) *Wheel[T] {
	return &Wheel[T]{node: node, at: at, seq: seq}
}

// Len returns the number of queued entries.
func (w *Wheel[T]) Len() int { return w.size }

// Now returns the wheel's current time: the largest t passed to
// CollectDue so far.
func (w *Wheel[T]) Now() int64 { return w.cur }

// Push schedules t. Its due time must not lie in the past (before the
// last CollectDue time); scheduling at exactly the current time is
// allowed and fires on the next CollectDue for that time.
func (w *Wheel[T]) Push(t T) {
	n := w.node(t)
	if n.where != whereIdle {
		panic("timewheel: Push of a queued entry")
	}
	at := w.at(t)
	if at < w.cur {
		panic("timewheel: Push in the past")
	}
	w.size++
	w.place(t, at)
}

// place links t into the level/slot (or overflow heap) for due time at,
// relative to the current wheel time. size is not touched.
func (w *Wheel[T]) place(t T, at int64) {
	d := at - w.cur
	if d >= Span {
		w.heapPush(t)
		return
	}
	level := 0
	for d >= int64(slotCount)<<(slotBits*level) {
		level++
	}
	slot := int(at>>(slotBits*level)) & slotMask
	n := w.node(t)
	n.where = whereWheelL0 + int8(level)
	n.slot = int16(slot)
	var zero T
	n.next, n.prev = zero, zero
	l := &w.slots[level][slot]
	if l.head == zero {
		l.head, l.tail = t, t
	} else {
		n.prev = l.tail
		w.node(l.tail).next = t
		l.tail = t
	}
	w.occupied[level] |= 1 << uint(slot)
}

// Cancel removes t if queued, reporting whether it was. Wheel-resident
// entries unlink in O(1); overflow entries are removed from the heap.
func (w *Wheel[T]) Cancel(t T) bool {
	n := w.node(t)
	switch n.where {
	case whereIdle:
		return false
	case whereOverflow:
		w.heapRemove(int(n.heapIdx))
		n.where = whereIdle
	default:
		w.unlink(t, n)
	}
	w.size--
	return true
}

// unlink detaches a wheel-resident entry from its slot chain.
func (w *Wheel[T]) unlink(t T, n *Node[T]) {
	level := int(n.where - whereWheelL0)
	l := &w.slots[level][n.slot]
	var zero T
	if n.prev == zero {
		l.head = n.next
	} else {
		w.node(n.prev).next = n.next
	}
	if n.next == zero {
		l.tail = n.prev
	} else {
		w.node(n.next).prev = n.prev
	}
	if l.head == zero {
		w.occupied[level] &^= 1 << uint(n.slot)
	}
	n.next, n.prev, n.where = zero, zero, whereIdle
}

// Each calls fn for every queued entry — wheel slots and overflow heap —
// in no particular order. Snapshot/checkpoint code uses it to enumerate
// pending timers; callers needing a deterministic order must sort by
// (at, seq) themselves. fn must not mutate the wheel.
func (w *Wheel[T]) Each(fn func(T)) {
	var zero T
	for level := 0; level < levelCount; level++ {
		for occ := w.occupied[level]; occ != 0; occ &= occ - 1 {
			slot := bits.TrailingZeros64(occ)
			for e := w.slots[level][slot].head; e != zero; e = w.node(e).next {
				fn(e)
			}
		}
	}
	for _, e := range w.overflow {
		fn(e)
	}
}

// NextTime returns the earliest due time among queued entries. It does
// not advance the wheel.
func (w *Wheel[T]) NextTime() (int64, bool) {
	if w.size == 0 {
		return 0, false
	}
	var best int64
	found := false
	// Level 0 slots map one-to-one to absolute times in [cur, cur+64):
	// the first occupied slot (rotating from cur's position) is exact.
	if occ := w.occupied[0]; occ != 0 {
		p := uint(w.cur) & slotMask
		rot := occ>>p | occ<<(slotCount-p)
		best = w.cur + int64(bits.TrailingZeros64(rot))
		found = true
	}
	// Higher levels: walk occupied slots in rotation order (ascending
	// window start) and scan each (short) chain for its exact minimum —
	// chain order within a window is insertion order, not time order,
	// and the slot at the current rotation position can additionally
	// hold entries one full revolution out (window base+64 aliases the
	// slot of window base), so a single slot's minimum is only a
	// candidate, not the level's.
	var zero T
	for level := 1; level < levelCount; level++ {
		occ := w.occupied[level]
		if occ == 0 {
			continue
		}
		shift := uint(slotBits * level)
		base := w.cur >> shift
		p := uint(base) & slotMask
		for rot := occ>>p | occ<<(slotCount-p); rot != 0; rot &= rot - 1 {
			i := bits.TrailingZeros64(rot)
			if wstart := (base + int64(i)) << shift; found && wstart >= best {
				break // later slots start later still
			}
			slot := (int(p) + i) & slotMask
			for e := w.slots[level][slot].head; e != zero; e = w.node(e).next {
				if a := w.at(e); !found || a < best {
					best, found = a, true
				}
			}
		}
	}
	if len(w.overflow) > 0 {
		if a := w.at(w.overflow[0]); !found || a < best {
			best, found = a, true
		}
	}
	return best, found
}

// CollectDue advances the wheel to time t — which must be NextTime()'s
// result (no queued entry may be due earlier) — removes every entry due
// at exactly t, and appends them to dst in ascending seq order.
func (w *Wheel[T]) CollectDue(t int64, dst []T) []T {
	if t < w.cur {
		panic("timewheel: CollectDue moving backwards")
	}
	w.cur = t
	var zero T
	// Cascade: every higher-level slot covering t redistributes to lower
	// levels (its entries are now within 64^level of cur, so each lands
	// strictly below). Entries due exactly at t end up in level 0.
	for level := levelCount - 1; level >= 1; level-- {
		shift := uint(slotBits * level)
		slot := int(t>>shift) & slotMask
		l := &w.slots[level][slot]
		if l.head == zero {
			continue
		}
		e := l.head
		l.head, l.tail = zero, zero
		w.occupied[level] &^= 1 << uint(slot)
		for e != zero {
			n := w.node(e)
			nxt := n.next
			n.next, n.prev, n.where = zero, zero, whereIdle
			w.place(e, w.at(e))
			e = nxt
		}
	}
	// Drain level 0's slot for t: it holds exactly the wheel entries due
	// at t (each level-0 slot covers a single absolute time).
	start := len(dst)
	slot := int(t) & slotMask
	if l := &w.slots[0][slot]; l.head != zero {
		for e := l.head; e != zero; {
			n := w.node(e)
			nxt := n.next
			n.next, n.prev, n.where = zero, zero, whereIdle
			dst = append(dst, e)
			w.size--
			e = nxt
		}
		l.head, l.tail = zero, zero
		w.occupied[0] &^= 1 << uint(slot)
	}
	// Overflow entries due at t (the wheel span was empty past them).
	for len(w.overflow) > 0 && w.at(w.overflow[0]) == t {
		dst = append(dst, w.heapPopMin())
		w.size--
	}
	// Restore the global FIFO tie-break: ascending seq. Chains are
	// near-sorted already (pushes arrive in seq order), so insertion
	// sort is both allocation-free and cheap.
	due := dst[start:]
	for i := 1; i < len(due); i++ {
		e := due[i]
		s := w.seq(e)
		j := i
		for j > 0 && w.seq(due[j-1]) > s {
			due[j] = due[j-1]
			j--
		}
		due[j] = e
	}
	return dst
}

// heapLess orders overflow entries by (at, seq).
func (w *Wheel[T]) heapLess(a, b T) bool {
	aa, ab := w.at(a), w.at(b)
	if aa != ab {
		return aa < ab
	}
	return w.seq(a) < w.seq(b)
}

func (w *Wheel[T]) heapPush(t T) {
	n := w.node(t)
	n.where = whereOverflow
	n.heapIdx = int32(len(w.overflow))
	w.overflow = append(w.overflow, t)
	w.heapUp(len(w.overflow) - 1)
}

func (w *Wheel[T]) heapPopMin() T {
	t := w.overflow[0]
	w.node(t).where = whereIdle
	w.heapRemove(0)
	return t
}

// heapRemove deletes the entry at index i, restoring the heap property.
func (w *Wheel[T]) heapRemove(i int) {
	var zero T
	last := len(w.overflow) - 1
	if i != last {
		w.overflow[i] = w.overflow[last]
		w.node(w.overflow[i]).heapIdx = int32(i)
	}
	w.overflow[last] = zero
	w.overflow = w.overflow[:last]
	if i < last {
		if !w.heapDown(i) {
			w.heapUp(i)
		}
	}
}

func (w *Wheel[T]) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !w.heapLess(w.overflow[i], w.overflow[parent]) {
			break
		}
		w.heapSwap(i, parent)
		i = parent
	}
}

func (w *Wheel[T]) heapDown(i int) bool {
	moved := false
	n := len(w.overflow)
	for {
		smallest := i
		if l := 2*i + 1; l < n && w.heapLess(w.overflow[l], w.overflow[smallest]) {
			smallest = l
		}
		if r := 2*i + 2; r < n && w.heapLess(w.overflow[r], w.overflow[smallest]) {
			smallest = r
		}
		if smallest == i {
			return moved
		}
		w.heapSwap(i, smallest)
		i = smallest
		moved = true
	}
}

func (w *Wheel[T]) heapSwap(i, j int) {
	w.overflow[i], w.overflow[j] = w.overflow[j], w.overflow[i]
	w.node(w.overflow[i]).heapIdx = int32(i)
	w.node(w.overflow[j]).heapIdx = int32(j)
}
