package timewheel

import (
	"math/rand"
	"sort"
	"testing"
)

// entry is the test entry type: an id plus the (at, seq) schedule key and
// the intrusive node.
type entry struct {
	id  int
	at  int64
	seq int
	n   Node[*entry]
}

func newWheel() *Wheel[*entry] {
	return New(
		func(e *entry) *Node[*entry] { return &e.n },
		func(e *entry) int64 { return e.at },
		func(e *entry) int { return e.seq },
	)
}

// refHeap is the oracle: a plain sorted-slice priority queue with the
// same (at, seq) contract as the binary heap the wheel replaces.
type refHeap struct{ entries []*entry }

func (h *refHeap) push(e *entry) {
	h.entries = append(h.entries, e)
	sort.Slice(h.entries, func(i, j int) bool {
		a, b := h.entries[i], h.entries[j]
		if a.at != b.at {
			return a.at < b.at
		}
		return a.seq < b.seq
	})
}

func (h *refHeap) cancel(e *entry) {
	for i, x := range h.entries {
		if x == e {
			h.entries = append(h.entries[:i], h.entries[i+1:]...)
			return
		}
	}
}

func (h *refHeap) nextTime() (int64, bool) {
	if len(h.entries) == 0 {
		return 0, false
	}
	return h.entries[0].at, true
}

func (h *refHeap) collectDue(t int64) []*entry {
	var due []*entry
	for len(h.entries) > 0 && h.entries[0].at == t {
		due = append(due, h.entries[0])
		h.entries = h.entries[1:]
	}
	return due
}

// TestDifferentialVsHeap drives random schedule / cancel / advance
// interleavings through the wheel and a reference heap and demands the
// identical firing order — the property the kernel's trace
// byte-equivalence rests on. Deltas mix the hot L0 range, higher wheel
// levels, and beyond-Span overflow entries; advances cross level windows
// so cascades are exercised.
func TestDifferentialVsHeap(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := newWheel()
		ref := &refHeap{}
		live := make(map[int]*entry)
		nextID, nextSeq := 0, 0
		now := int64(0)
		var scratch []*entry

		for step := 0; step < 400; step++ {
			switch op := rng.Intn(12); {
			case op < 5: // schedule
				var d int64
				switch rng.Intn(8) {
				case 0:
					d = 0 // due at the current instant
				case 1, 2:
					d = int64(rng.Intn(64)) // level 0
				case 3:
					d = int64(rng.Intn(64 * 64)) // level 1
				case 4:
					d = int64(rng.Int63n(Span)) // any wheel level
				case 5:
					d = Span + int64(rng.Int63n(Span)) // overflow
				case 6:
					// Exactly on a level horizon (64^k), one below, one
					// above: the placement boundary between level k-1 and
					// level k, and between the top level and the overflow
					// heap when k = 5.
					d = int64(1) << (6 * (1 + rng.Intn(5)))
					d += int64(rng.Intn(3)) - 1
				case 7:
					// Duplicate a live entry's instant: same-instant
					// batches spanning the front slot, wheel levels and
					// overflow.
					d = int64(rng.Intn(64))
					for _, e := range live {
						if e.at >= now {
							d = e.at - now
						}
						break
					}
				}
				nextID++
				nextSeq++
				e := &entry{id: nextID, at: now + d, seq: nextSeq}
				r := &entry{id: nextID, at: now + d, seq: nextSeq}
				w.Push(e)
				ref.push(r)
				live[e.id] = e
			case op < 7: // cancel a random live entry
				for id, e := range live {
					if !w.Cancel(e) {
						t.Fatalf("seed %d: Cancel(%d) found nothing", seed, id)
					}
					for _, r := range ref.entries {
						if r.id == id {
							ref.cancel(r)
							break
						}
					}
					delete(live, id)
					break
				}
			case op < 8: // advance-only: move time forward, nothing fires
				wt, wok := w.NextTime()
				if !wok || wt <= now {
					continue
				}
				now += (wt - now) / 2
				if got := w.CollectDue(now, nil); len(got) != 0 {
					t.Fatalf("seed %d step %d: advance-only CollectDue(%d) fired %d entries",
						seed, step, now, len(got))
				}
			default: // advance to the next due time and fire
				wt, wok := w.NextTime()
				rt, rok := ref.nextTime()
				if wok != rok || (wok && wt != rt) {
					t.Fatalf("seed %d step %d: NextTime wheel=(%d,%v) ref=(%d,%v)",
						seed, step, wt, wok, rt, rok)
				}
				if !wok {
					continue
				}
				now = wt
				scratch = w.CollectDue(wt, scratch[:0])
				refDue := ref.collectDue(wt)
				if len(scratch) != len(refDue) {
					t.Fatalf("seed %d step %d at t=%d: wheel fired %d entries, heap %d",
						seed, step, wt, len(scratch), len(refDue))
				}
				for i := range scratch {
					if scratch[i].id != refDue[i].id {
						t.Fatalf("seed %d step %d at t=%d: firing order diverges at %d: wheel id %d, heap id %d",
							seed, step, wt, i, scratch[i].id, refDue[i].id)
					}
					delete(live, scratch[i].id)
				}
			}
			if w.Len() != len(ref.entries) {
				t.Fatalf("seed %d step %d: Len %d != ref %d", seed, step, w.Len(), len(ref.entries))
			}
		}
	}
}

// TestSameInstantSeqOrder pins the FIFO tie-break across placement
// classes: entries due at one instant fire in schedule order even when
// they arrive via different wheel levels and the overflow heap.
func TestSameInstantSeqOrder(t *testing.T) {
	w := newWheel()
	at := Span + 100 // beyond the initial span, so early pushes overflow
	var want []int
	var entries []*entry
	for i := 0; i < 8; i++ {
		e := &entry{id: i, at: at, seq: i}
		entries = append(entries, e)
		want = append(want, i)
		w.Push(e)
	}
	// Advance near the target so later pushes at the same instant land in
	// low wheel levels while the early ones still sit in overflow.
	step := at - 50
	w.CollectDue(step, nil) // nothing due; advances cur
	for i := 8; i < 12; i++ {
		e := &entry{id: i, at: at, seq: i}
		entries = append(entries, e)
		want = append(want, i)
		w.Push(e)
	}
	nt, ok := w.NextTime()
	if !ok || nt != at {
		t.Fatalf("NextTime = (%d, %v), want (%d, true)", nt, ok, at)
	}
	got := w.CollectDue(at, nil)
	if len(got) != len(want) {
		t.Fatalf("fired %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.id != want[i] {
			t.Fatalf("firing order[%d] = id %d, want %d", i, e.id, want[i])
		}
	}
	for _, e := range entries {
		if e.n.Queued() {
			t.Fatalf("entry %d still queued after firing", e.id)
		}
	}
}

// TestFrontSlot pins the earliest-deadline fast path directly: arming,
// same-instant chaining, displacement by an earlier push, cancel-disarm,
// and enumeration of chained entries.
func TestFrontSlot(t *testing.T) {
	w := newWheel()
	a := &entry{id: 1, at: 100, seq: 1}
	w.Push(a) // empty wheel: must arm the front slot
	if nt, ok := w.NextTime(); !ok || nt != 100 {
		t.Fatalf("NextTime = (%d,%v), want (100,true)", nt, ok)
	}
	b := &entry{id: 2, at: 100, seq: 2}
	w.Push(b) // same instant: chains onto the slot
	c := &entry{id: 3, at: 40, seq: 3}
	w.Push(c) // earlier: displaces the chain into the wheel
	if nt, _ := w.NextTime(); nt != 40 {
		t.Fatalf("NextTime after displacement = %d, want 40", nt)
	}
	seen := map[int]bool{}
	w.Each(func(e *entry) { seen[e.id] = true })
	if len(seen) != 3 || !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("Each saw %v, want {1,2,3}", seen)
	}
	if !w.Cancel(c) { // cancel the armed slot: disarm, wheel takes over
		t.Fatal("Cancel of front-slot entry reported false")
	}
	if nt, _ := w.NextTime(); nt != 100 {
		t.Fatalf("NextTime after front cancel = %d, want 100", nt)
	}
	d := &entry{id: 4, at: 60, seq: 4}
	w.Push(d) // earlier than the exact bound NextTime refreshed: re-arms
	got := w.CollectDue(60, nil)
	if len(got) != 1 || got[0].id != 4 {
		t.Fatalf("CollectDue(60) = %v, want [4]", got)
	}
	got = w.CollectDue(100, nil)
	if len(got) != 2 || got[0].id != 1 || got[1].id != 2 {
		t.Fatalf("CollectDue(100) fired %v, want [1 2]", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d, want 0", w.Len())
	}
}

// TestCancelUnqueued pins Cancel's report on never-queued and
// already-fired entries.
func TestCancelUnqueued(t *testing.T) {
	w := newWheel()
	e := &entry{at: 10, seq: 1}
	if w.Cancel(e) {
		t.Fatal("Cancel of a never-queued entry reported true")
	}
	w.Push(e)
	got := w.CollectDue(10, nil)
	if len(got) != 1 || got[0] != e {
		t.Fatalf("CollectDue = %v, want the pushed entry", got)
	}
	if w.Cancel(e) {
		t.Fatal("Cancel after firing reported true")
	}
}

// TestZeroAllocSteadyState pins the zero-alloc property of the hot
// operations: once the wheel's slot chains and the caller's scratch are
// warm, schedule / cancel / advance allocate nothing.
func TestZeroAllocSteadyState(t *testing.T) {
	w := newWheel()
	const n = 64
	entries := make([]*entry, n)
	for i := range entries {
		entries[i] = &entry{id: i}
	}
	scratch := make([]*entry, 0, n)
	now := int64(0)
	seq := 0
	cycle := func() {
		for i, e := range entries {
			seq++
			e.at = now + int64(1+(i*7)%300)
			e.seq = seq
			w.Push(e)
		}
		for i := 0; i < n; i += 2 { // cancel half, fire half
			w.Cancel(entries[i])
		}
		for {
			nt, ok := w.NextTime()
			if !ok {
				break
			}
			now = nt
			scratch = w.CollectDue(nt, scratch[:0])
		}
	}
	cycle() // warm up chains and the overflow slice
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state schedule/cancel/advance allocates %.1f times per cycle, want 0", allocs)
	}
}

func BenchmarkScheduleCancel(b *testing.B) {
	w := newWheel()
	const n = 128
	entries := make([]*entry, n)
	for i := range entries {
		entries[i] = &entry{id: i}
	}
	b.ReportAllocs()
	b.ResetTimer()
	seq := 0
	for i := 0; i < b.N; i++ {
		for j, e := range entries {
			seq++
			e.at = int64(seq + j%977)
			e.seq = seq
			w.Push(e)
		}
		for _, e := range entries {
			w.Cancel(e)
		}
	}
}

// TestEachEnumeratesAll pins Each against a randomized population: every
// queued entry — across wheel levels and the overflow heap — is visited
// exactly once, canceled entries are not, and advancing the wheel keeps
// the enumeration consistent with Len.
func TestEachEnumeratesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := newWheel()
	ref := &refHeap{}
	alive := map[int]*entry{}
	seq := 0
	for id := 0; id < 500; id++ {
		seq++
		var d int64
		switch rng.Intn(3) {
		case 0:
			d = rng.Int63n(64) // level 0
		case 1:
			d = rng.Int63n(1 << 18) // higher levels
		default:
			d = Span + rng.Int63n(1<<20) // overflow heap
		}
		e := &entry{id: id, at: w.Now() + d, seq: seq}
		w.Push(e)
		ref.push(e)
		alive[id] = e
		if rng.Intn(4) == 0 { // cancel a random survivor
			for victim := range alive {
				if w.Cancel(alive[victim]) {
					ref.cancel(alive[victim])
					delete(alive, victim)
				}
				break
			}
		}
		if rng.Intn(8) == 0 { // advance to the next due instant
			if at, ok := w.NextTime(); ok {
				for _, due := range w.CollectDue(at, nil) {
					delete(alive, due.id)
				}
				ref.collectDue(at)
			}
		}
	}
	seen := map[int]int{}
	w.Each(func(e *entry) { seen[e.id]++ })
	if len(seen) != len(alive) || len(seen) != w.Len() {
		t.Fatalf("Each visited %d entries, want %d alive (Len=%d)", len(seen), len(alive), w.Len())
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("Each visited entry %d %d times", id, n)
		}
		if _, ok := alive[id]; !ok {
			t.Fatalf("Each visited entry %d which was canceled or fired", id)
		}
	}
}
