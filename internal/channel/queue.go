package channel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Queue is a bounded FIFO message channel — the paper's c_queue example
// (Figure 7). Send blocks while the queue is full; Recv blocks while it is
// empty. The element type is generic; models typically move frame or
// sample buffers.
type Queue[T any] struct {
	name     string
	cond     Cond // single condition: senders and receivers re-check state
	buf      []T
	capacity int
	res      *core.Resource

	sent, received uint64
}

// NewQueue creates a queue with the given capacity (at least 1).
func NewQueue[T any](f Factory, name string, capacity int) *Queue[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("channel: queue %q capacity %d < 1", name, capacity))
	}
	return &Queue[T]{name: name, cond: f.NewCond(name + ".q"), capacity: capacity,
		res: monitored(f, name, "queue", false)}
}

// Name returns the queue's name.
func (q *Queue[T]) Name() string { return q.name }

// Len returns the number of buffered elements.
func (q *Queue[T]) Len() int { return len(q.buf) }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.capacity }

// Sent returns the total number of elements accepted by Send.
func (q *Queue[T]) Sent() uint64 { return q.sent }

// Received returns the total number of elements returned by Recv.
func (q *Queue[T]) Received() uint64 { return q.received }

// Send enqueues v, blocking while the queue is full.
func (q *Queue[T]) Send(p *sim.Proc, v T) {
	if len(q.buf) == q.capacity {
		q.res.Block(p)
		for len(q.buf) == q.capacity {
			q.cond.Wait(p)
		}
		q.res.Unblock(p)
	}
	q.buf = append(q.buf, v)
	q.sent++
	q.cond.Notify(p)
}

// TrySend enqueues v if space is available and reports success.
func (q *Queue[T]) TrySend(p *sim.Proc, v T) bool {
	if len(q.buf) == q.capacity {
		return false
	}
	q.buf = append(q.buf, v)
	q.sent++
	q.cond.Notify(p)
	return true
}

// Recv dequeues the oldest element, blocking while the queue is empty.
func (q *Queue[T]) Recv(p *sim.Proc) T {
	if len(q.buf) == 0 {
		q.res.Block(p)
		for len(q.buf) == 0 {
			q.cond.Wait(p)
		}
		q.res.Unblock(p)
	}
	v := q.buf[0]
	q.buf = q.buf[1:]
	q.received++
	q.cond.Notify(p)
	return v
}

// TryRecv dequeues if an element is available.
func (q *Queue[T]) TryRecv(p *sim.Proc) (T, bool) {
	var zero T
	if len(q.buf) == 0 {
		return zero, false
	}
	v := q.buf[0]
	q.buf = q.buf[1:]
	q.received++
	q.cond.Notify(p)
	return v, true
}

// Mailbox is an unbuffered rendezvous channel: Send blocks until a
// receiver has taken the value, pairing one sender with one receiver in
// FIFO order.
type Mailbox[T any] struct {
	name string
	cond Cond
	full bool
	data T
	acks int // completed transfers awaiting sender wake-up
	res  *core.Resource
}

// NewMailbox creates an empty mailbox.
func NewMailbox[T any](f Factory, name string) *Mailbox[T] {
	return &Mailbox[T]{name: name, cond: f.NewCond(name + ".mbox"),
		res: monitored(f, name, "rendezvous", false)}
}

// Name returns the mailbox's name.
func (m *Mailbox[T]) Name() string { return m.name }

// Send transfers v to exactly one receiver and returns only after the
// receiver has taken it (rendezvous semantics).
func (m *Mailbox[T]) Send(p *sim.Proc, v T) {
	if m.full {
		m.res.Block(p)
		for m.full {
			m.cond.Wait(p) // another sender's value still in the slot
		}
		m.res.Unblock(p)
	}
	m.full = true
	m.data = v
	m.cond.Notify(p)
	if m.acks == 0 {
		m.res.Block(p)
		for m.acks == 0 {
			m.cond.Wait(p)
		}
		m.res.Unblock(p)
	}
	m.acks--
}

// Recv blocks until a sender provides a value and returns it.
func (m *Mailbox[T]) Recv(p *sim.Proc) T {
	if !m.full {
		m.res.Block(p)
		for !m.full {
			m.cond.Wait(p)
		}
		m.res.Unblock(p)
	}
	v := m.data
	var zero T
	m.data = zero
	m.full = false
	m.acks++
	m.cond.Notify(p)
	return v
}
