package channel

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestSemaphoreContentionPriorityWakeup: several tasks of different
// priorities block on one semaphore; when the tokens arrive all at once,
// the RTOS grants them in priority order, regardless of the order in
// which the tasks queued up.
func TestSemaphoreContentionPriorityWakeup(t *testing.T) {
	h := newHarness("rtos")
	sem := NewSemaphore(h.f, "sem", 0)
	var order []string
	// Spawn order (= blocking order) deliberately differs from priority
	// order: mid (prio 2), low (prio 3), high (prio 1).
	for _, w := range []struct {
		name string
		prio int
	}{{"mid", 2}, {"low", 3}, {"high", 1}} {
		w := w
		h.spawn(w.name, w.prio, func(p *sim.Proc) {
			sem.Acquire(p)
			order = append(order, w.name)
		})
	}
	h.spawn("releaser", 9, func(p *sim.Proc) {
		h.f.Delay(p, 10)
		for i := 0; i < 3; i++ {
			sem.Release(p)
		}
	})
	h.run(t)
	want := []string{"high", "mid", "low"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("acquisition order = %v, want %v (priority order)", order, want)
	}
	if sem.Value() != 0 {
		t.Errorf("final count = %d, want 0", sem.Value())
	}
}

// TestSemaphoreContentionFIFOWakeupSpec: the same contention pattern on
// the specification model (no RTOS, no priorities) resolves in the
// kernel's deterministic FIFO order — the order the waiters arrived.
func TestSemaphoreContentionFIFOWakeupSpec(t *testing.T) {
	h := newHarness("spec")
	sem := NewSemaphore(h.f, "sem", 0)
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		h.spawn(name, 0, func(p *sim.Proc) {
			sem.Acquire(p)
			order = append(order, name)
		})
	}
	h.spawn("releaser", 0, func(p *sim.Proc) {
		h.f.Delay(p, 10)
		for i := 0; i < 3; i++ {
			sem.Release(p)
		}
	})
	h.run(t)
	want := []string{"first", "second", "third"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("acquisition order = %v, want %v (FIFO arrival order)", order, want)
	}
}

// TestSemaphoreWakeupPreemption: a high-priority task blocked on a
// semaphore is woken by an ISR release while a low-priority task is
// mid-delay. Under the segmented time model the wakeup preempts the
// delay immediately; under the coarse model the acquire is deferred to
// the delay boundary (the t4 -> t4' behavior at channel level).
func TestSemaphoreWakeupPreemption(t *testing.T) {
	cases := []struct {
		name     string
		tm       core.TimeModel
		servedAt sim.Time
	}{
		{"segmented-immediate", core.TimeModelSegmented, 50},
		{"coarse-delay-boundary", core.TimeModelCoarse, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := sim.NewKernel()
			os := core.New(k, "PE", core.PriorityPolicy{}, core.WithTimeModel(tc.tm))
			f := RTOSFactory{OS: os}
			sem := NewSemaphore(f, "sem", 0)
			var servedAt sim.Time
			spawn := func(name string, prio int, body func(p *sim.Proc)) {
				task := os.TaskCreate(name, core.Aperiodic, 0, 0, prio)
				k.Spawn(name, func(p *sim.Proc) {
					os.TaskActivate(p, task)
					body(p)
					os.TaskTerminate(p)
				})
			}
			spawn("high", 1, func(p *sim.Proc) {
				sem.Acquire(p)
				servedAt = p.Now()
			})
			spawn("low", 2, func(p *sim.Proc) {
				os.TimeWait(p, 100)
			})
			k.Spawn("isr", func(p *sim.Proc) {
				p.WaitFor(50)
				os.InterruptEnter(p, "irq")
				sem.Release(p)
				os.InterruptReturn(p, "irq")
			})
			os.Start(nil)
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if servedAt != tc.servedAt {
				t.Errorf("high acquired at %v, want %v", servedAt, tc.servedAt)
			}
			if err := os.CheckConservation(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBarrierContentionWithPreemption: tasks of different priorities
// work their way to a barrier on one PE. Pre-barrier delays are modeled
// CPU time, so execution serializes in priority order: the arrival
// indices Await reports follow priority, the lowest-priority task trips
// the barrier — and is immediately preempted inside Await by the
// released higher-priority waiters, so it crosses the barrier last.
func TestBarrierContentionWithPreemption(t *testing.T) {
	h := newHarness("rtos")
	bar := NewBarrier(h.f, "bar", 3)
	arrival := map[string]int{}
	var resumed []string
	workers := []struct {
		name string
		prio int
		work sim.Time
	}{
		{"low", 3, 0},
		{"high", 1, 10},
		{"mid", 2, 20},
	}
	for _, w := range workers {
		w := w
		h.spawn(w.name, w.prio, func(p *sim.Proc) {
			if w.work > 0 {
				h.f.Delay(p, w.work)
			}
			arrival[w.name] = bar.Await(p)
			resumed = append(resumed, w.name)
			h.f.Delay(p, 5) // post-barrier work: forces serialized resumption
		})
	}
	h.run(t)
	// high runs its work 0..10 and waits; mid runs 10..30 and waits; only
	// then does low (no modeled work, but lowest priority) get the CPU.
	wantArrival := map[string]int{"high": 0, "mid": 1, "low": 2}
	if !reflect.DeepEqual(arrival, wantArrival) {
		t.Errorf("arrival indices = %v, want %v", arrival, wantArrival)
	}
	// low trips the barrier; the Notify inside Await readies both waiters,
	// which preempt low before it returns — priority order again.
	wantResumed := []string{"high", "mid", "low"}
	if !reflect.DeepEqual(resumed, wantResumed) {
		t.Errorf("resume order = %v, want %v", resumed, wantResumed)
	}
}

// TestBarrierRoundsUnderContention: the barrier must reset cleanly
// between rounds even when parties of different priorities keep
// re-arriving with interleaved delays.
func TestBarrierRoundsUnderContention(t *testing.T) {
	h := newHarness("rtos")
	bar := NewBarrier(h.f, "bar", 2)
	const rounds = 4
	counts := map[string]int{}
	for _, w := range []struct {
		name  string
		prio  int
		pause sim.Time
	}{{"fast", 1, 1}, {"slow", 2, 7}} {
		w := w
		h.spawn(w.name, w.prio, func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				h.f.Delay(p, w.pause)
				bar.Await(p)
				counts[w.name]++
			}
		})
	}
	h.run(t)
	if counts["fast"] != rounds || counts["slow"] != rounds {
		t.Errorf("rounds completed = %v, want %d each", counts, rounds)
	}
}
