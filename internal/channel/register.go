package channel

import "repro/internal/sim"

// Register is a shared variable with update notification — the SLDL's
// shared-memory communication pattern. Writers replace the value; readers
// either sample it (Read) or block for the next write (AwaitChange).
// Unlike a queue, a register has no backpressure and intermediate values
// may be lost, which is exactly the semantics of shared-variable
// communication the refinement flow must preserve.
type Register[T any] struct {
	name    string
	cond    Cond
	value   T
	version uint64
}

// NewRegister creates a register holding the zero value.
func NewRegister[T any](f Factory, name string) *Register[T] {
	return &Register[T]{name: name, cond: f.NewCond(name + ".reg")}
}

// Name returns the register's name.
func (r *Register[T]) Name() string { return r.name }

// Version returns the write counter (0 = never written).
func (r *Register[T]) Version() uint64 { return r.version }

// Read samples the current value without blocking.
func (r *Register[T]) Read(p *sim.Proc) T { return r.value }

// Write replaces the value and wakes blocked readers.
func (r *Register[T]) Write(p *sim.Proc, v T) {
	r.value = v
	r.version++
	r.cond.Notify(p)
}

// AwaitChange blocks until the register's version exceeds since and
// returns the (then-current) value and version. Use Version() to obtain
// the starting point; intermediate writes may be skipped.
func (r *Register[T]) AwaitChange(p *sim.Proc, since uint64) (T, uint64) {
	for r.version <= since {
		r.cond.Wait(p)
	}
	return r.value, r.version
}
