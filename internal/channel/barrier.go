package channel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Barrier synchronizes a fixed party of processes: each call to Await
// blocks until all parties have arrived, then all are released and the
// barrier resets for the next round.
type Barrier struct {
	name       string
	cond       Cond
	parties    int
	arrived    int
	generation uint64
	res        *core.Resource
}

// NewBarrier creates a barrier for the given number of parties (≥ 1).
func NewBarrier(f Factory, name string, parties int) *Barrier {
	if parties < 1 {
		panic(fmt.Sprintf("channel: barrier %q parties %d < 1", name, parties))
	}
	return &Barrier{name: name, cond: f.NewCond(name + ".bar"), parties: parties,
		res: monitored(f, name, "barrier", false)}
}

// Name returns the barrier's name.
func (b *Barrier) Name() string { return b.name }

// Parties returns the configured party count.
func (b *Barrier) Parties() int { return b.parties }

// Await blocks until all parties have arrived. It returns the arrival
// index within the round (0 = first, parties-1 = last, who trips the
// barrier).
func (b *Barrier) Await(p *sim.Proc) int {
	idx := b.arrived
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.generation++
		b.cond.Notify(p)
		return idx
	}
	gen := b.generation
	b.res.Block(p)
	for gen == b.generation {
		b.cond.Wait(p)
	}
	b.res.Unblock(p)
	return idx
}

// Handshake is a one-slot signal with memory: unlike a raw SLDL event, a
// Signal delivered while nobody waits is latched and satisfies the next
// WaitSig. It models the classic two-wire ready/acknowledge handshake at
// the abstraction level of the paper's communication synthesis.
type Handshake struct {
	name    string
	cond    Cond
	pending int
	res     *core.Resource
}

// NewHandshake creates a handshake with no pending signal.
func NewHandshake(f Factory, name string) *Handshake {
	return &Handshake{name: name, cond: f.NewCond(name + ".hs"),
		res: monitored(f, name, "handshake", false)}
}

// Name returns the handshake's name.
func (h *Handshake) Name() string { return h.name }

// Signal latches one signal and wakes a waiter. Callable from ISRs.
func (h *Handshake) Signal(p *sim.Proc) {
	h.pending++
	h.cond.Notify(p)
}

// WaitSig blocks until a signal is (or was) delivered and consumes it.
func (h *Handshake) WaitSig(p *sim.Proc) {
	if h.pending == 0 {
		h.res.Block(p)
		for h.pending == 0 {
			h.cond.Wait(p)
		}
		h.res.Unblock(p)
	}
	h.pending--
}

// Pending returns the number of latched, unconsumed signals.
func (h *Handshake) Pending() int { return h.pending }
