package channel

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// harness runs channel tests against both modeling layers: "spec" uses raw
// kernel processes, "rtos" wraps every worker in an RTOS task on a
// priority-scheduled OS instance. Channels must behave identically (up to
// serialization of time) on both.
type harness struct {
	k  *sim.Kernel
	f  Factory
	os *core.OS // nil in spec mode
}

func newHarness(mode string) *harness {
	k := sim.NewKernel()
	h := &harness{k: k}
	switch mode {
	case "spec":
		h.f = SpecFactory{K: k}
	case "rtos":
		h.os = core.New(k, "PE", core.PriorityPolicy{})
		h.f = RTOSFactory{OS: h.os}
	default:
		panic("unknown harness mode " + mode)
	}
	return h
}

// spawn adds a worker with a priority (ignored in spec mode).
func (h *harness) spawn(name string, prio int, body func(p *sim.Proc)) {
	if h.os == nil {
		h.k.Spawn(name, body)
		return
	}
	task := h.os.TaskCreate(name, core.Aperiodic, 0, 0, prio)
	h.k.Spawn(name, func(p *sim.Proc) {
		h.os.TaskActivate(p, task)
		body(p)
		h.os.TaskTerminate(p)
	})
}

func (h *harness) run(t *testing.T) {
	t.Helper()
	if h.os != nil {
		h.os.Start(nil)
	}
	if err := h.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func bothModes(t *testing.T, fn func(t *testing.T, mode string)) {
	for _, mode := range []string{"spec", "rtos"} {
		t.Run(mode, func(t *testing.T) { fn(t, mode) })
	}
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		sem := NewSemaphore(h.f, "items", 0)
		const n = 20
		consumed := 0
		h.spawn("consumer", 1, func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				sem.Acquire(p)
				consumed++
			}
		})
		h.spawn("producer", 2, func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				h.f.Delay(p, 3)
				sem.Release(p)
			}
		})
		h.run(t)
		if consumed != n {
			t.Errorf("consumed = %d, want %d", consumed, n)
		}
		if sem.Value() != 0 {
			t.Errorf("final count = %d, want 0", sem.Value())
		}
	})
}

func TestSemaphoreInitialCount(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		sem := NewSemaphore(h.f, "s", 3)
		got := 0
		h.spawn("w", 1, func(p *sim.Proc) {
			for sem.TryAcquire(p) {
				got++
			}
		})
		h.run(t)
		if got != 3 {
			t.Errorf("TryAcquire succeeded %d times, want 3", got)
		}
	})
}

func TestSemaphoreFromISR(t *testing.T) {
	// The paper's Figure 3 pattern: an ISR (plain SLDL process) releases a
	// semaphore a task blocks on.
	h := newHarness("rtos")
	sem := NewSemaphore(h.f, "sem", 0)
	var servedAt sim.Time
	h.spawn("driver", 1, func(p *sim.Proc) {
		sem.Acquire(p)
		servedAt = p.Now()
	})
	h.k.Spawn("isr", func(p *sim.Proc) {
		p.WaitFor(17)
		h.os.InterruptEnter(p, "irq")
		sem.Release(p)
		h.os.InterruptReturn(p, "irq")
	})
	h.run(t)
	if servedAt != 17 {
		t.Errorf("driver served at %v, want 17", servedAt)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		m := NewMutex(h.f, "m")
		inCS := 0
		violations := 0
		for i := 0; i < 4; i++ {
			h.spawn(fmt.Sprintf("w%d", i), i, func(p *sim.Proc) {
				for r := 0; r < 3; r++ {
					m.Lock(p)
					inCS++
					if inCS > 1 {
						violations++
					}
					h.f.Delay(p, 5)
					inCS--
					m.Unlock(p)
					h.f.Delay(p, 1)
				}
			})
		}
		h.run(t)
		if violations != 0 {
			t.Errorf("%d mutual-exclusion violations", violations)
		}
		if m.Locked() {
			t.Error("mutex left locked")
		}
	})
}

func TestMutexRecursivePanics(t *testing.T) {
	h := newHarness("spec")
	m := NewMutex(h.f, "m")
	defer func() {
		if recover() == nil {
			t.Error("recursive Lock did not panic")
		}
	}()
	h.spawn("w", 0, func(p *sim.Proc) {
		m.Lock(p)
		m.Lock(p)
	})
	_ = h.k.Run()
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	h := newHarness("spec")
	m := NewMutex(h.f, "m")
	defer func() {
		if recover() == nil {
			t.Error("foreign Unlock did not panic")
		}
	}()
	h.spawn("owner", 0, func(p *sim.Proc) {
		m.Lock(p)
		p.WaitFor(100)
		m.Unlock(p)
	})
	h.spawn("thief", 0, func(p *sim.Proc) {
		p.WaitFor(10)
		m.Unlock(p)
	})
	_ = h.k.Run()
}

func TestQueueFIFO(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		q := NewQueue[int](h.f, "q", 4)
		const n = 32
		var got []int
		h.spawn("recv", 1, func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				got = append(got, q.Recv(p))
			}
		})
		h.spawn("send", 2, func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				h.f.Delay(p, 1)
				q.Send(p, i)
			}
		})
		h.run(t)
		for i, v := range got {
			if v != i {
				t.Fatalf("got[%d] = %d, want %d (FIFO violated)", i, v, i)
			}
		}
		if q.Sent() != n || q.Received() != n {
			t.Errorf("counts sent=%d received=%d, want %d each", q.Sent(), q.Received(), n)
		}
	})
}

func TestQueueBlocksWhenFull(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		q := NewQueue[int](h.f, "q", 2)
		var thirdSentAt, firstRecvAt sim.Time
		h.spawn("send", 1, func(p *sim.Proc) {
			q.Send(p, 1)
			q.Send(p, 2)
			q.Send(p, 3) // must block until the receiver drains one
			thirdSentAt = p.Now()
		})
		h.spawn("recv", 2, func(p *sim.Proc) {
			h.f.Delay(p, 50)
			_ = q.Recv(p)
			firstRecvAt = p.Now()
			_ = q.Recv(p)
			_ = q.Recv(p)
		})
		h.run(t)
		if thirdSentAt < firstRecvAt {
			t.Errorf("third send completed at %v before first recv at %v", thirdSentAt, firstRecvAt)
		}
	})
}

func TestQueueTryOps(t *testing.T) {
	h := newHarness("spec")
	q := NewQueue[string](h.f, "q", 1)
	h.spawn("w", 0, func(p *sim.Proc) {
		if _, ok := q.TryRecv(p); ok {
			t.Error("TryRecv on empty queue succeeded")
		}
		if !q.TrySend(p, "a") {
			t.Error("TrySend on empty queue failed")
		}
		if q.TrySend(p, "b") {
			t.Error("TrySend on full queue succeeded")
		}
		v, ok := q.TryRecv(p)
		if !ok || v != "a" {
			t.Errorf("TryRecv = %q,%v, want a,true", v, ok)
		}
	})
	h.run(t)
}

func TestMailboxRendezvous(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		mb := NewMailbox[int](h.f, "mb")
		var sendDone, recvAt sim.Time
		h.spawn("send", 1, func(p *sim.Proc) {
			mb.Send(p, 42)
			sendDone = p.Now()
		})
		h.spawn("recv", 2, func(p *sim.Proc) {
			h.f.Delay(p, 30)
			if v := mb.Recv(p); v != 42 {
				t.Errorf("received %d, want 42", v)
			}
			recvAt = p.Now()
		})
		h.run(t)
		if sendDone < recvAt {
			t.Errorf("send completed at %v before receive at %v (no rendezvous)", sendDone, recvAt)
		}
	})
}

func TestMailboxSequence(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		mb := NewMailbox[int](h.f, "mb")
		var got []int
		h.spawn("recv", 1, func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				got = append(got, mb.Recv(p))
			}
		})
		h.spawn("send", 2, func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				mb.Send(p, i*i)
			}
		})
		h.run(t)
		for i, v := range got {
			if v != i*i {
				t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
			}
		}
	})
}

func TestBarrierReleasesTogether(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		b := NewBarrier(h.f, "b", 3)
		releases := map[string]sim.Time{}
		delays := map[string]sim.Time{"a": 10, "b": 25, "c": 40}
		for name, d := range delays {
			name, d := name, d
			h.spawn(name, int(d), func(p *sim.Proc) {
				h.f.Delay(p, d)
				b.Await(p)
				releases[name] = p.Now()
			})
		}
		h.run(t)
		// All three release only after the slowest arrival. In the RTOS
		// mode arrivals serialize, so the release time is the accumulated
		// total; in spec mode it is the max. Either way all must be equal
		// and ≥ the slowest delay.
		var first sim.Time
		for _, at := range releases {
			if first == 0 {
				first = at
			}
			if at != first {
				t.Errorf("unequal release times: %v", releases)
				break
			}
		}
		if first < 40 {
			t.Errorf("released at %v, before slowest arrival", first)
		}
	})
}

func TestBarrierMultipleRounds(t *testing.T) {
	h := newHarness("spec")
	b := NewBarrier(h.f, "b", 2)
	rounds := 0
	h.spawn("a", 0, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			p.WaitFor(3)
			b.Await(p)
		}
	})
	h.spawn("b", 0, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			p.WaitFor(7)
			b.Await(p)
			rounds++
		}
	})
	h.run(t)
	if rounds != 5 {
		t.Errorf("completed rounds = %d, want 5", rounds)
	}
}

func TestHandshakeLatchesSignal(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		hs := NewHandshake(h.f, "hs")
		var waitedAt sim.Time
		h.spawn("signaler", 1, func(p *sim.Proc) {
			hs.Signal(p) // nobody waiting yet: must latch
		})
		h.spawn("waiter", 2, func(p *sim.Proc) {
			h.f.Delay(p, 20)
			hs.WaitSig(p)
			waitedAt = p.Now()
		})
		h.run(t)
		if waitedAt != 20 {
			t.Errorf("waiter proceeded at %v, want 20 (latched signal)", waitedAt)
		}
		if hs.Pending() != 0 {
			t.Errorf("pending = %d, want 0", hs.Pending())
		}
	})
}

func TestConstructorValidation(t *testing.T) {
	h := newHarness("spec")
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative semaphore", func() { NewSemaphore(h.f, "s", -1) })
	mustPanic("zero-capacity queue", func() { NewQueue[int](h.f, "q", 0) })
	mustPanic("zero-party barrier", func() { NewBarrier(h.f, "b", 0) })
}

func TestFactoryNames(t *testing.T) {
	hs := newHarness("spec")
	if hs.f.Name() != "spec" {
		t.Errorf("spec factory name = %q", hs.f.Name())
	}
	hr := newHarness("rtos")
	if hr.f.Name() != "rtos/PE" {
		t.Errorf("rtos factory name = %q", hr.f.Name())
	}
}
