package channel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Semaphore is a counting semaphore — the channel the paper's bus-driver
// example uses between interrupt handler and driver task ("the interrupt
// handler ISR for external events signals the main bus driver through a
// semaphore channel sem", Figure 3).
type Semaphore struct {
	name  string
	cond  Cond
	count int
	res   *core.Resource
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(f Factory, name string, initial int) *Semaphore {
	if initial < 0 {
		panic(fmt.Sprintf("channel: semaphore %q initial count %d < 0", name, initial))
	}
	return &Semaphore{name: name, cond: f.NewCond(name + ".sem"), count: initial,
		res: monitored(f, name, "semaphore", false)}
}

// Name returns the semaphore's name.
func (s *Semaphore) Name() string { return s.name }

// Value returns the current count (non-blocking snapshot).
func (s *Semaphore) Value() int { return s.count }

// Acquire decrements the count, blocking while it is zero.
func (s *Semaphore) Acquire(p *sim.Proc) {
	if s.count == 0 {
		s.res.Block(p)
		for s.count == 0 {
			s.cond.Wait(p)
		}
	}
	s.count--
	s.res.Acquire(p)
}

// TryAcquire decrements the count if positive and reports success.
func (s *Semaphore) TryAcquire(p *sim.Proc) bool {
	if s.count == 0 {
		return false
	}
	s.count--
	s.res.Acquire(p)
	return true
}

// Release increments the count and wakes waiters. It may be called from
// interrupt handlers (the paper's ISR-to-driver signalling path).
func (s *Semaphore) Release(p *sim.Proc) {
	s.count++
	s.res.Release(p)
	s.cond.Notify(p)
}

// Mutex is a binary lock with owner tracking.
type Mutex struct {
	name   string
	cond   Cond
	locked bool
	owner  *sim.Proc
	res    *core.Resource
}

// NewMutex creates an unlocked mutex.
func NewMutex(f Factory, name string) *Mutex {
	return &Mutex{name: name, cond: f.NewCond(name + ".mtx"),
		res: monitored(f, name, "mutex", true)}
}

// Name returns the mutex's name.
func (m *Mutex) Name() string { return m.name }

// Lock acquires the mutex, blocking while another process holds it.
// Recursive locking is an error and panics (it would self-deadlock).
func (m *Mutex) Lock(p *sim.Proc) {
	if m.locked && m.owner == p {
		panic(fmt.Sprintf("channel: recursive Lock of %q by %s", m.name, p.Name()))
	}
	if m.locked {
		m.res.Block(p)
		for m.locked {
			m.cond.Wait(p)
		}
	}
	m.locked = true
	m.owner = p
	m.res.Acquire(p)
}

// Unlock releases the mutex; only the owner may unlock.
func (m *Mutex) Unlock(p *sim.Proc) {
	if !m.locked || m.owner != p {
		panic(fmt.Sprintf("channel: Unlock of %q by non-owner %s", m.name, p.Name()))
	}
	m.locked = false
	m.owner = nil
	m.res.Release(p)
	m.cond.Notify(p)
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.locked }
