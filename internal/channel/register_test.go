package channel

import (
	"testing"

	"repro/internal/sim"
)

func TestRegisterSampling(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		r := NewRegister[int](h.f, "r")
		var sampled []int
		h.spawn("writer", 1, func(p *sim.Proc) {
			for i := 1; i <= 3; i++ {
				h.f.Delay(p, 10)
				r.Write(p, i*100)
			}
		})
		h.spawn("reader", 2, func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				h.f.Delay(p, 12)
				sampled = append(sampled, r.Read(p))
			}
		})
		h.run(t)
		if len(sampled) != 3 {
			t.Fatalf("samples = %v", sampled)
		}
		// Non-blocking sampling: values are whatever was current; the
		// last sample must see the last write in spec mode (reader at 36
		// after writer's 30). In rtos mode the interleaving is serialized
		// but monotonic versions still hold.
		if r.Version() != 3 {
			t.Errorf("version = %d, want 3", r.Version())
		}
		for i := 1; i < len(sampled); i++ {
			if sampled[i] < sampled[i-1] {
				t.Errorf("samples not monotonic: %v", sampled)
			}
		}
	})
}

func TestRegisterAwaitChange(t *testing.T) {
	bothModes(t, func(t *testing.T, mode string) {
		h := newHarness(mode)
		r := NewRegister[string](h.f, "cfg")
		var got string
		var at sim.Time
		h.spawn("watcher", 1, func(p *sim.Proc) {
			v, ver := r.AwaitChange(p, 0)
			got, at = v, p.Now()
			if ver != 1 {
				t.Errorf("version = %d, want 1", ver)
			}
		})
		h.spawn("writer", 2, func(p *sim.Proc) {
			h.f.Delay(p, 25)
			r.Write(p, "updated")
		})
		h.run(t)
		if got != "updated" || at != 25 {
			t.Errorf("watcher got %q at %v, want updated at 25", got, at)
		}
	})
}

func TestRegisterSkipsIntermediateWrites(t *testing.T) {
	h := newHarness("spec")
	r := NewRegister[int](h.f, "r")
	h.spawn("writer", 0, func(p *sim.Proc) {
		r.Write(p, 1)
		r.Write(p, 2)
		r.Write(p, 3) // all in one instant: watcher sees only the last
	})
	var v int
	var ver uint64
	h.spawn("watcher", 0, func(p *sim.Proc) {
		p.WaitFor(5)
		v, ver = r.AwaitChange(p, 0)
	})
	h.run(t)
	if v != 3 || ver != 3 {
		t.Errorf("got %d@%d, want 3@3 (intermediate values lost by design)", v, ver)
	}
}
