package channel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestQuickQueuePreservesSequence: arbitrary payload sequences pushed
// through a queue of arbitrary small capacity arrive complete and in
// order, in both modeling layers.
func TestQuickQueuePreservesSequence(t *testing.T) {
	f := func(payload []int16, capRaw uint8, rtos bool) bool {
		capacity := int(capRaw%5) + 1
		mode := "spec"
		if rtos {
			mode = "rtos"
		}
		h := newHarness(mode)
		q := NewQueue[int16](h.f, "q", capacity)
		var got []int16
		h.spawn("recv", 1, func(p *sim.Proc) {
			for range payload {
				got = append(got, q.Recv(p))
			}
		})
		h.spawn("send", 2, func(p *sim.Proc) {
			for i, v := range payload {
				if i%3 == 0 {
					h.f.Delay(p, sim.Time(i%7))
				}
				q.Send(p, v)
			}
		})
		if h.os != nil {
			h.os.Start(nil)
		}
		if err := h.k.Run(); err != nil {
			return false
		}
		if len(got) != len(payload) {
			return false
		}
		for i := range payload {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickSemaphoreConservation: for arbitrary release/acquire schedules
// that are balanced, the semaphore ends at its initial value and the
// count observed by any process is never negative (structurally
// guaranteed, checked dynamically here).
func TestQuickSemaphoreConservation(t *testing.T) {
	f := func(nOps uint8, initial uint8, rtos bool) bool {
		n := int(nOps%30) + 1
		init := int(initial % 4)
		mode := "spec"
		if rtos {
			mode = "rtos"
		}
		h := newHarness(mode)
		sem := NewSemaphore(h.f, "s", init)
		bad := false
		h.spawn("acq", 1, func(p *sim.Proc) {
			for i := 0; i < n+init; i++ {
				sem.Acquire(p)
				if sem.Value() < 0 {
					bad = true
				}
			}
		})
		h.spawn("rel", 2, func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				h.f.Delay(p, 1)
				sem.Release(p)
			}
		})
		if h.os != nil {
			h.os.Start(nil)
		}
		if err := h.k.Run(); err != nil {
			return false
		}
		return !bad && sem.Value() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
