package channel

// Tests for the channel layer's integration with the runtime-diagnosis
// monitor (core/diagnosis.go): semaphore cycles are reported with exact
// task names and blocking sites, and healthy producer/consumer and
// ISR-signalling patterns never trigger a diagnosis.

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestThreeTaskSemaphoreCycleDetected: the canonical circular wait over
// three semaphores (each task holds one token and wants the next) is
// diagnosed with the exact wait-for ring instead of a generic kernel
// deadlock.
func TestThreeTaskSemaphoreCycleDetected(t *testing.T) {
	h := newHarness("rtos")
	defer h.k.Shutdown()
	s0 := NewSemaphore(h.f, "s0", 1)
	s1 := NewSemaphore(h.f, "s1", 1)
	s2 := NewSemaphore(h.f, "s2", 1)

	// Choreographed via priorities and TaskSleep so each task holds its
	// own token before anyone requests the next one.
	a := h.os.TaskCreate("A", core.Aperiodic, 0, 0, 1)
	b := h.os.TaskCreate("B", core.Aperiodic, 0, 0, 2)
	h.k.Spawn("A", func(p *sim.Proc) {
		h.os.TaskActivate(p, a)
		s0.Acquire(p)
		h.os.TaskSleep(p)
		s1.Acquire(p) // blocks: B holds s1
		h.os.TaskTerminate(p)
	})
	h.k.Spawn("B", func(p *sim.Proc) {
		h.os.TaskActivate(p, b)
		s1.Acquire(p)
		h.os.TaskSleep(p)
		s2.Acquire(p) // blocks: C holds s2
		h.os.TaskTerminate(p)
	})
	h.spawn("C", 3, func(p *sim.Proc) {
		s2.Acquire(p)
		h.os.TaskActivate(p, a)
		h.os.TaskActivate(p, b)
		s0.Acquire(p) // closes the ring: A holds s0
	})
	h.os.Start(nil)

	var d *core.DiagnosisError
	if err := h.k.Run(); !errors.As(err, &d) {
		t.Fatalf("Run = %v, want *core.DiagnosisError", err)
	}
	if d.Kind != core.DiagDeadlock {
		t.Fatalf("Kind = %v, want deadlock", d.Kind)
	}
	want := []string{
		"A waits on semaphore:s1 held by B",
		"B waits on semaphore:s2 held by C",
		"C waits on semaphore:s0 held by A",
	}
	if len(d.Cycle) != len(want) {
		t.Fatalf("cycle = %v, want %d edges", d.Cycle, len(want))
	}
	for i, e := range d.Cycle {
		if e.String() != want[i] {
			t.Errorf("cycle[%d] = %q, want %q", i, e, want[i])
		}
	}
	if len(d.Blocked) != 3 {
		t.Errorf("Blocked lists %d tasks, want all 3", len(d.Blocked))
	}
}

// TestDroppedSignalDiagnosedAsStall: consumers of a semaphore that is
// never released (the dropped-interrupt pattern) are a stall naming the
// semaphore — not a deadlock, since no circular wait exists.
func TestDroppedSignalDiagnosedAsStall(t *testing.T) {
	h := newHarness("rtos")
	defer h.k.Shutdown()
	sem := NewSemaphore(h.f, "irq", 0)
	h.spawn("consumer", 1, func(p *sim.Proc) {
		h.f.Delay(p, 5)
		sem.Acquire(p) // the release never comes
	})
	h.os.Start(nil)

	var d *core.DiagnosisError
	if err := h.k.Run(); !errors.As(err, &d) {
		t.Fatalf("Run = %v, want *core.DiagnosisError", err)
	}
	if d.Kind != core.DiagStall || len(d.Cycle) != 0 {
		t.Fatalf("diagnosis = %v, want a cycle-free stall", d)
	}
	if len(d.Blocked) != 1 || d.Blocked[0].Resource != "semaphore:irq" {
		t.Fatalf("Blocked = %v, want consumer on semaphore:irq", d.Blocked)
	}
}

// TestSignalStyleSemaphoreNoFalsePositive: two tasks cross-signalling via
// semaphores (each acquires what the other releases) complete without any
// diagnosis, even though each "holds" tokens of the semaphore it also
// waits on at other times — the signal-style pattern the detector must
// not misread as a cycle.
func TestSignalStyleSemaphoreNoFalsePositive(t *testing.T) {
	h := newHarness("rtos")
	defer h.k.Shutdown()
	ping := NewSemaphore(h.f, "ping", 0)
	pong := NewSemaphore(h.f, "pong", 0)
	const rounds = 5
	h.spawn("left", 1, func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			pong.Release(p)
			ping.Acquire(p)
			h.f.Delay(p, 3)
		}
	})
	h.spawn("right", 2, func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			pong.Acquire(p)
			h.f.Delay(p, 2)
			ping.Release(p)
		}
	})
	h.run(t)
	if d := h.os.Diagnosis(); d != nil {
		t.Fatalf("ping-pong diagnosed as %v", d)
	}
}

// TestQueuePipelineNoFalsePositive: a full producer/consumer pipeline
// over bounded queues with backpressure completes diagnosis-clean.
func TestQueuePipelineNoFalsePositive(t *testing.T) {
	h := newHarness("rtos")
	defer h.k.Shutdown()
	q1 := NewQueue[int](h.f, "stage1", 2)
	q2 := NewQueue[int](h.f, "stage2", 1)
	const items = 10
	h.spawn("producer", 1, func(p *sim.Proc) {
		for i := 0; i < items; i++ {
			q1.Send(p, i)
			h.f.Delay(p, 1)
		}
	})
	h.spawn("filter", 2, func(p *sim.Proc) {
		for i := 0; i < items; i++ {
			v := q1.Recv(p)
			h.f.Delay(p, 2)
			q2.Send(p, v*2)
		}
	})
	sum := 0
	h.spawn("sink", 3, func(p *sim.Proc) {
		for i := 0; i < items; i++ {
			sum += q2.Recv(p)
			h.f.Delay(p, 3)
		}
	})
	h.run(t)
	if want := items * (items - 1); sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if d := h.os.Diagnosis(); d != nil {
		t.Fatalf("pipeline diagnosed as %v", d)
	}
}
