// Package channel provides the SLDL communication library of the design
// flow: semaphores, mutexes, bounded queues, rendezvous mailboxes,
// barriers and handshakes, usable both in the unscheduled specification
// model and in the RTOS-based architecture model.
//
// The package implements the paper's synchronization refinement
// (Figure 7) as a factory indirection: every channel is built from
// abstract condition primitives (Cond) obtained from a Factory. The
// SpecFactory binds conditions to raw SLDL events of the simulation
// kernel; the RTOSFactory binds them to RTOS events of a core.OS
// instance. Refining a model from specification to architecture therefore
// swaps the factory and nothing else — exactly the paper's "existing SLDL
// channels are reused by refining their internal synchronization
// primitives to map to corresponding RTOS calls".
//
// All channels follow the predicate re-check discipline (state guarded by
// loops around Cond.Wait), so they are immune to the lost-notification
// semantics of the underlying memoryless events under preemption.
package channel

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Cond is an abstract condition: a memoryless wake-up point. Wait blocks
// the calling process/task until some later Notify; Notify wakes all
// current waiters. Users must guard Wait with a predicate loop.
type Cond interface {
	// Wait blocks the calling process until the condition is notified.
	Wait(p *sim.Proc)
	// Notify wakes all processes currently blocked in Wait.
	Notify(p *sim.Proc)
}

// Factory creates synchronization primitives for one modeling layer.
type Factory interface {
	// Name identifies the layer ("spec" or "rtos/<pe>") in diagnostics.
	Name() string
	// NewCond allocates a condition.
	NewCond(name string) Cond
	// Delay models execution time of the calling process: SLDL waitfor at
	// specification level, RTOS time_wait at architecture level.
	Delay(p *sim.Proc, d sim.Time)
}

// SpecFactory implements Factory on raw simulation-kernel primitives: the
// specification-model layer (paper Figure 2(a)).
type SpecFactory struct {
	K *sim.Kernel
}

// Name returns "spec".
func (SpecFactory) Name() string { return "spec" }

// NewCond returns a condition backed by an SLDL event.
func (f SpecFactory) NewCond(name string) Cond { return specCond{e: f.K.NewEvent(name)} }

// Delay is the SLDL waitfor.
func (f SpecFactory) Delay(p *sim.Proc, d sim.Time) { p.WaitFor(d) }

type specCond struct{ e *sim.Event }

func (c specCond) Wait(p *sim.Proc)   { p.Wait(c.e) }
func (c specCond) Notify(p *sim.Proc) { p.Notify(c.e) }

// RTOSFactory implements Factory on the RTOS model of a processing
// element: the architecture-model layer (paper Figure 2(b)). Wait may only
// be called by the running task of the OS instance; Notify may also be
// called from interrupt handlers.
type RTOSFactory struct {
	OS *core.OS
}

// Name returns "rtos/<instance>".
func (f RTOSFactory) Name() string { return "rtos/" + f.OS.Name() }

// NewCond returns a condition backed by an RTOS event.
func (f RTOSFactory) NewCond(name string) Cond {
	return rtosCond{os: f.OS, e: f.OS.EventNew(name)}
}

// Delay is the RTOS time_wait: the task's modeled execution time, subject
// to the OS instance's time model and scheduling.
func (f RTOSFactory) Delay(p *sim.Proc, d sim.Time) { f.OS.TimeWait(p, d) }

type rtosCond struct {
	os *core.OS
	e  *core.OSEvent
}

func (c rtosCond) Wait(p *sim.Proc)   { c.os.EventWait(p, c.e) }
func (c rtosCond) Notify(p *sim.Proc) { c.os.EventNotify(p, c.e) }

// monitored resolves the runtime-diagnosis resource for a channel built
// on f: on an RTOSFactory the channel registers with the OS instance's
// wait-for-graph monitor (enabling deadlock/stall diagnosis with the
// channel named as the blocking site); on other factories it returns nil,
// which disables tracking at zero cost — core.Resource methods are
// nil-receiver safe.
func monitored(f Factory, name, kind string, exclusive bool) *core.Resource {
	switch rf := f.(type) {
	case RTOSFactory:
		return rf.OS.Monitor().NewResource(name, kind, exclusive)
	case *RTOSFactory:
		return rf.OS.Monitor().NewResource(name, kind, exclusive)
	}
	return nil
}
