package channel_test

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
)

// The synchronization-refinement pattern of the paper's Figure 7: the
// same producer/consumer code runs at the specification layer (raw SLDL
// events) and at the architecture layer (RTOS events) just by swapping
// the channel factory.
func ExampleFactory() {
	run := func(f channel.Factory, k *sim.Kernel, spawn func(name string, prio int, body sim.Func)) sim.Time {
		q := channel.NewQueue[int](f, "data", 2)
		spawn("consumer", 1, func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				q.Recv(p)
			}
		})
		spawn("producer", 2, func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				f.Delay(p, 10)
				q.Send(p, i)
			}
		})
		if err := k.Run(); err != nil {
			fmt.Println("error:", err)
		}
		return k.Now()
	}

	// Specification layer.
	k1 := sim.NewKernel()
	end1 := run(channel.SpecFactory{K: k1}, k1, func(name string, _ int, body sim.Func) {
		k1.Spawn(name, body)
	})

	// Architecture layer: the identical code as RTOS tasks.
	k2 := sim.NewKernel()
	rtos := core.New(k2, "CPU", core.PriorityPolicy{})
	spawnTask := func(name string, prio int, body sim.Func) {
		task := rtos.TaskCreate(name, core.Aperiodic, 0, 0, prio)
		k2.Spawn(name, func(p *sim.Proc) {
			rtos.TaskActivate(p, task)
			body(p)
			rtos.TaskTerminate(p)
		})
	}
	rtosEnd := func() sim.Time {
		end := run(channel.RTOSFactory{OS: rtos}, k2, spawnTask)
		return end
	}
	rtos.Start(nil)
	end2 := rtosEnd()

	fmt.Printf("spec model end: %v\n", end1)
	fmt.Printf("arch model end: %v\n", end2)
	// Output:
	// spec model end: 30ns
	// arch model end: 30ns
}
