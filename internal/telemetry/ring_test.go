package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func mkEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			At:   sim.Time(i * 10),
			Kind: KindDispatch,
			PE:   "PE0",
			Task: "t" + string(rune('a'+i%4)),
			CPU:  i % 2,
			Arg:  int64(i),
		}
	}
	return evs
}

func TestRingOverwrite(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatalf("fresh ring: len=%d total=%d dropped=%d", r.Len(), r.Total(), r.Dropped())
	}
	evs := mkEvents(10)
	for _, e := range evs {
		r.Emit(e)
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4 (capacity)", r.Len())
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
	got := r.Events()
	if !reflect.DeepEqual(got, evs[6:]) {
		t.Errorf("Events() = %v\nwant last four emitted %v", got, evs[6:])
	}
	// Events() must be a copy, not a view into the buffer.
	got[0].Task = "mutated"
	if r.Events()[0].Task == "mutated" {
		t.Error("Events() returned aliased storage")
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	evs := mkEvents(3)
	for _, e := range evs {
		r.Emit(e)
	}
	if !reflect.DeepEqual(r.Events(), evs) {
		t.Errorf("partial ring Events() = %v, want %v", r.Events(), evs)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestNewRingPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := map[string][]Event{
		"empty": {},
		"one":   {{At: 42, Kind: KindMarker, Other: "frame-in", Task: "src", Arg: -7}},
		"typical": {
			{At: 0, Kind: KindDispatch, PE: "PE", Task: "a"},
			{At: 10, Kind: KindPreempt, PE: "PE", Task: "a", Other: "b"},
			{At: 10, Kind: KindDispatch, PE: "PE", Task: "b", Other: "a"},
			{At: 15, Kind: KindBlock, PE: "PE", Task: "b", Reason: core.BlockMutex},
			{At: 15, Kind: KindState, PE: "PE", Task: "b",
				From: core.TaskRunning, To: core.TaskWaitingMutex},
			{At: 20, Kind: KindIRQEnter, PE: "PE", Other: "irq0"},
			{At: 21, Kind: KindIRQReturn, PE: "PE", Other: "irq0"},
			{At: 30, Kind: KindReadyLen, PE: "PE", Arg: 2},
		},
		"negative-delta": {
			{At: 100, Kind: KindMarker, Other: "m"},
			{At: 50, Kind: KindMarker, Other: "m"}, // out of order is legal
		},
		"extremes": {
			{At: sim.Time(1) << 60, Kind: Kind(255), CPU: -1,
				Arg: -1 << 62, Reason: core.BlockReason(255)},
		},
		"large": mkEvents(500),
	}
	for name, evs := range cases {
		t.Run(name, func(t *testing.T) {
			enc := EncodeEvents(evs)
			dec, err := DecodeEvents(enc)
			if err != nil {
				t.Fatalf("DecodeEvents: %v", err)
			}
			if len(dec) != len(evs) {
				t.Fatalf("decoded %d events, want %d", len(dec), len(evs))
			}
			for i := range evs {
				if !reflect.DeepEqual(dec[i], evs[i]) {
					t.Errorf("event %d: decoded %+v, want %+v", i, dec[i], evs[i])
				}
			}
			// Canonical: re-encoding the decoded stream is byte-stable.
			if again := EncodeEvents(dec); !bytes.Equal(again, enc) {
				t.Error("re-encode of decoded stream differs from original encoding")
			}
		})
	}
}

func TestRingEncodeMatchesEvents(t *testing.T) {
	r := NewRing(3)
	for _, e := range mkEvents(7) {
		r.Emit(e)
	}
	dec, err := DecodeEvents(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, r.Events()) {
		t.Errorf("Encode/Decode = %v, want retained %v", dec, r.Events())
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := EncodeEvents(mkEvents(3))
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty", nil, "bad magic"},
		{"bad-magic", []byte("NOPE"), "bad magic"},
		{"magic-only", []byte("TLM1"), "truncated"},
		{"truncated", valid[:len(valid)-3], ""},
		{"trailing", append(append([]byte{}, valid...), 0xFF), "trailing"},
		// nstrings = 2^62: must be rejected before allocation.
		{"huge-string-count", append([]byte("TLM1"), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40), "exceeds"},
		// one string whose claimed length exceeds the stream.
		{"huge-string-len", append([]byte("TLM1"), 1, 0xC8, 0x01, 'x'), "exceeds"},
		// empty string in the table is non-canonical (ref 0 means empty).
		{"empty-table-string", append([]byte("TLM1"), 1, 0), "empty string"},
		// zero strings, nevents = 2^62 with no bytes behind it.
		{"huge-event-count", append([]byte("TLM1"), 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40), "exceeds"},
		// one event whose PE ref points past the (empty) string table:
		// dt=0 kind=1 peRef=5 taskRef=0 otherRef=0 cpu=0 r/f/t + arg=0.
		{"bad-string-ref", append([]byte("TLM1"), 0, 1, 0, 1, 5, 0, 0, 0, 0, 0, 0, 0), "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeEvents(c.data)
			if err == nil {
				t.Fatalf("DecodeEvents accepted malformed input %v", c.data)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q, want substring %q", err, c.want)
			}
		})
	}
}
