package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

// decodeChrome parses WriteChromeTrace output back into its envelope.
func decodeChrome(t *testing.T, events []Event) chromeTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var tr chromeTrace
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tr); err != nil {
		t.Fatalf("trace output is not schema-valid JSON: %v\n%s", err, buf.String())
	}
	return tr
}

// checkChromeWellFormed asserts the structural invariants Perfetto's
// legacy JSON importer relies on: non-negative monotonically sane
// timestamps, matched B/E pairs per (pid,tid), matched async b/e pairs
// per (cat,id,name), and thread/process metadata for every (pid,tid)
// that carries events.
func checkChromeWellFormed(t *testing.T, tr chromeTrace) {
	t.Helper()
	type track struct{ pid, tid int }
	named := map[track]bool{}
	procNamed := map[int]bool{}
	beDepth := map[track][]string{} // open B names per track
	asyncOpen := map[string]int{}   // cat/id/name -> open count

	for i, e := range tr.TraceEvents {
		if e.Ts < 0 {
			t.Errorf("event %d (%s %q): negative ts %v", i, e.Ph, e.Name, e.Ts)
		}
		switch e.Ph {
		case "M":
			switch e.Name {
			case "process_name":
				procNamed[e.Pid] = true
			case "thread_name":
				named[track{e.Pid, e.Tid}] = true
			default:
				t.Errorf("event %d: unknown metadata record %q", i, e.Name)
			}
		case "X":
			if e.Dur < 0 {
				t.Errorf("event %d (X %q): negative dur %v", i, e.Name, e.Dur)
			}
		case "B":
			k := track{e.Pid, e.Tid}
			beDepth[k] = append(beDepth[k], e.Name)
		case "E":
			k := track{e.Pid, e.Tid}
			st := beDepth[k]
			if len(st) == 0 {
				t.Errorf("event %d: E %q on pid=%d tid=%d with no open B", i, e.Name, e.Pid, e.Tid)
				continue
			}
			if st[len(st)-1] != e.Name {
				t.Errorf("event %d: E %q closes B %q (mismatched nesting)", i, e.Name, st[len(st)-1])
			}
			beDepth[k] = st[:len(st)-1]
		case "b":
			asyncOpen[fmt.Sprintf("%s/%d/%s", e.Cat, e.ID, e.Name)]++
		case "e":
			key := fmt.Sprintf("%s/%d/%s", e.Cat, e.ID, e.Name)
			if asyncOpen[key] == 0 {
				t.Errorf("event %d: async e %q with no matching b", i, key)
				continue
			}
			asyncOpen[key]--
		case "i", "C":
			// instants and counters are self-contained
		default:
			t.Errorf("event %d: unexpected phase %q", i, e.Ph)
		}
		if e.Ph != "M" {
			if !procNamed[e.Pid] {
				t.Errorf("event %d (%s %q): pid %d has no process_name metadata", i, e.Ph, e.Name, e.Pid)
			}
			if !named[track{e.Pid, e.Tid}] {
				t.Errorf("event %d (%s %q): pid=%d tid=%d has no thread_name metadata",
					i, e.Ph, e.Name, e.Pid, e.Tid)
			}
		}
	}
	for k, st := range beDepth {
		if len(st) != 0 {
			t.Errorf("pid=%d tid=%d: %d unclosed B events %v", k.pid, k.tid, len(st), st)
		}
	}
	for key, n := range asyncOpen {
		if n != 0 {
			t.Errorf("async slice %q left open (%d unmatched b)", key, n)
		}
	}
}

func TestChromeTraceScenario(t *testing.T) {
	col := &Collector{}
	scenario(t, col)
	tr := decodeChrome(t, col.Events)
	checkChromeWellFormed(t, tr)

	var xSlices, irqB, counters, instants int
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "X":
			xSlices++
		case "B":
			irqB++
		case "C":
			counters++
		case "i":
			instants++
		}
	}
	if xSlices == 0 {
		t.Error("no running (X) slices emitted")
	}
	if irqB != 1 {
		t.Errorf("IRQ B events = %d, want 1", irqB)
	}
	if counters == 0 {
		t.Error("no ready-queue counter events emitted")
	}
	if instants == 0 {
		t.Error("no release/preempt instants emitted")
	}
	// ts is µs over a ns timeline: total X duration must stay under the
	// simulated span.
	var end float64
	for _, e := range tr.TraceEvents {
		if e.Ts+e.Dur > end {
			end = e.Ts + e.Dur
		}
	}
	var busy float64
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" {
			busy += e.Dur
		}
	}
	if busy > end+1e-9 {
		t.Errorf("sum of X durations %v exceeds trace end %v on a single PE", busy, end)
	}
}

func TestChromeTraceEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		tr := decodeChrome(t, nil)
		if tr.TraceEvents == nil {
			t.Fatal("traceEvents must encode as [] not null")
		}
		if len(tr.TraceEvents) != 0 {
			t.Errorf("empty stream produced %d events", len(tr.TraceEvents))
		}
	})
	t.Run("single-dispatch", func(t *testing.T) {
		// One dispatch with no close: the X slice is closed at stream end
		// (zero duration) and metadata still appears.
		tr := decodeChrome(t, []Event{{At: 5, Kind: KindDispatch, PE: "PE", Task: "a"}})
		checkChromeWellFormed(t, tr)
		var x int
		for _, e := range tr.TraceEvents {
			if e.Ph == "X" {
				x++
				if e.Dur != 0 {
					t.Errorf("lone dispatch slice dur = %v, want 0", e.Dur)
				}
			}
		}
		if x != 1 {
			t.Errorf("got %d X slices, want 1", x)
		}
	})
	t.Run("unclosed-block-and-irq", func(t *testing.T) {
		tr := decodeChrome(t, []Event{
			{At: 0, Kind: KindIRQEnter, PE: "PE", Other: "irq0"},
			{At: 2, Kind: KindBlock, PE: "PE", Task: "a", Reason: core.BlockEvent},
			{At: 9, Kind: KindDispatch, PE: "PE", Task: "b"},
		})
		checkChromeWellFormed(t, tr) // fails if close-out logic regresses
	})
	t.Run("deterministic", func(t *testing.T) {
		evs := []Event{
			{At: 0, Kind: KindDispatch, PE: "PE1", Task: "a"},
			{At: 0, Kind: KindDispatch, PE: "PE0", Task: "b"},
			{At: 1, Kind: KindBlock, PE: "PE1", Task: "a", Reason: core.BlockMutex},
			{At: 1, Kind: KindBlock, PE: "PE0", Task: "b", Reason: core.BlockEvent},
			{At: 2, Kind: KindIRQEnter, PE: "PE0", Other: "i0"},
		}
		var first bytes.Buffer
		if err := WriteChromeTrace(&first, evs); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			var again bytes.Buffer
			if err := WriteChromeTrace(&again, evs); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), again.Bytes()) {
				t.Fatalf("trace output not deterministic (iteration %d)", i)
			}
		}
	})
}

func TestPromRoundTrip(t *testing.T) {
	agg := NewAggregator()
	_, end := scenario(t, agg)
	agg.SetEnd(end)
	rep := agg.Report()

	var buf bytes.Buffer
	if err := rep.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	parsed, err := ParseProm(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseProm on our own output: %v\n%s", err, buf.String())
	}

	pe := rep.PEs[0]
	checks := []struct {
		metric string
		labels map[string]string
		want   float64
	}{
		{"rtos_dispatches_total", map[string]string{"pe": "PE"}, float64(pe.Dispatches)},
		{"rtos_context_switches_total", map[string]string{"pe": "PE"}, float64(pe.ContextSwitches)},
		{"rtos_preemptions_total", map[string]string{"pe": "PE"}, float64(pe.Preemptions)},
		{"rtos_span_ns", map[string]string{"pe": "PE"}, float64(pe.Span)},
		{"rtos_utilization_ratio", map[string]string{"pe": "PE"}, pe.Utilization},
	}
	for _, tr := range pe.Tasks {
		checks = append(checks, struct {
			metric string
			labels map[string]string
			want   float64
		}{"rtos_task_jobs_total", map[string]string{"pe": "PE", "task": tr.Task}, float64(tr.Jobs)})
	}
	for _, c := range checks {
		got, ok := findSample(parsed[c.metric], c.labels)
		if !ok {
			t.Errorf("metric %s%v missing after round trip", c.metric, c.labels)
			continue
		}
		if math.Abs(got-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Errorf("%s%v = %v after round trip, want %v", c.metric, c.labels, got, c.want)
		}
	}
}

func findSample(samples []PromSample, labels map[string]string) (float64, bool) {
sample:
	for _, s := range samples {
		for k, v := range labels {
			if s.Labels[k] != v {
				continue sample
			}
		}
		return s.Value, true
	}
	return 0, false
}

func TestPromEscapingRoundTrip(t *testing.T) {
	weird := "a\\b\"c\nd"
	var buf bytes.Buffer
	err := WriteProm(&buf, []PromMetric{{
		Name: "weird_metric", Help: "label escaping", Type: "gauge",
		Samples: []PromSample{{Labels: map[string]string{"task": weird, "pe": "PE"}, Value: 1.5}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseProm(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseProm: %v\n%q", err, buf.String())
	}
	got, ok := findSample(parsed["weird_metric"], map[string]string{"task": weird})
	if !ok {
		t.Fatalf("escaped label value did not survive round trip: %q", buf.String())
	}
	if got != 1.5 {
		t.Errorf("value = %v, want 1.5", got)
	}
}

func TestPromEdgeCases(t *testing.T) {
	t.Run("empty-report", func(t *testing.T) {
		agg := NewAggregator()
		var buf bytes.Buffer
		if err := agg.Report().WriteProm(&buf); err != nil {
			t.Fatalf("WriteProm on empty report: %v", err)
		}
		if _, err := ParseProm(buf.Bytes()); err != nil {
			t.Fatalf("ParseProm on empty report output: %v\n%q", err, buf.String())
		}
		if strings.Contains(buf.String(), "rtos_task_response_ns") {
			t.Error("empty report must not emit response metrics")
		}
	})
	t.Run("empty-sample-family-skipped", func(t *testing.T) {
		var buf bytes.Buffer
		err := WriteProm(&buf, []PromMetric{{Name: "nothing_here", Help: "h", Type: "gauge"}})
		if err != nil {
			t.Fatal(err)
		}
		if buf.Len() != 0 {
			t.Errorf("family with no samples produced output: %q", buf.String())
		}
	})
	t.Run("parse-errors", func(t *testing.T) {
		for _, bad := range []string{
			"not a metric line\n",
			"x{y=\"unterminated} 1\n",
			"metric 12x34\n",
			"1leading_digit 5\n",
		} {
			if _, err := ParseProm([]byte(bad)); err == nil {
				t.Errorf("ParseProm(%q) accepted malformed input", bad)
			}
		}
	})
	t.Run("comments-and-blanks", func(t *testing.T) {
		parsed, err := ParseProm([]byte("# HELP m h\n# TYPE m counter\n\nm 3\n"))
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := findSample(parsed["m"], nil); !ok || v != 3 {
			t.Errorf("parsed m = %v ok=%v, want 3", v, ok)
		}
	})
}
