package telemetry

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// scenario runs a small but hook-complete simulation — a preempting
// high-priority task released by an ISR, a periodic task and a long
// low-priority task — and returns the attached sinks' bus products plus
// the OS for cross-checks.
func scenario(t *testing.T, sinks ...Sink) (*core.OS, sim.Time) {
	t.Helper()
	k := sim.NewKernel()
	os := core.New(k, "PE", core.PriorityPolicy{}, core.WithTimeModel(core.TimeModelSegmented))
	bus := NewBus(sinks...)
	bus.Attach(os)

	e := os.EventNew("data")
	high := os.TaskCreate("high", core.Aperiodic, 0, 0, 1)
	mid := os.TaskCreate("mid", core.Periodic, 100, 20, 2)
	low := os.TaskCreate("low", core.Aperiodic, 0, 0, 3)

	body := func(task *core.Task, fn func(p *sim.Proc)) sim.Func {
		return func(p *sim.Proc) {
			os.TaskActivate(p, task)
			fn(p)
			os.TaskTerminate(p)
		}
	}
	k.Spawn("high", body(high, func(p *sim.Proc) {
		os.EventWait(p, e)
		os.TimeWait(p, 10)
	}))
	k.Spawn("mid", body(mid, func(p *sim.Proc) {
		for c := 0; c < 4; c++ {
			os.TimeWait(p, 20)
			os.TaskEndCycle(p)
		}
	}))
	k.Spawn("low", body(low, func(p *sim.Proc) {
		os.TimeWait(p, 150)
	}))
	k.Spawn("isr", func(p *sim.Proc) {
		p.WaitFor(45)
		os.InterruptEnter(p, "irq0")
		os.EventNotify(p, e)
		os.InterruptReturn(p, "irq0")
	})
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return os, k.Now()
}

func TestAggregatorMatchesStats(t *testing.T) {
	agg := NewAggregator()
	os, end := scenario(t, agg)
	agg.SetEnd(end)
	st := os.StatsSnapshot()
	rep := agg.Report()

	if len(rep.PEs) != 1 {
		t.Fatalf("got %d PEs, want 1", len(rep.PEs))
	}
	pe := rep.PEs[0]
	if pe.PE != "PE" {
		t.Errorf("PE name %q, want PE", pe.PE)
	}
	if pe.Dispatches != st.Dispatches {
		t.Errorf("dispatches %d, stats %d", pe.Dispatches, st.Dispatches)
	}
	if pe.ContextSwitches != st.ContextSwitches {
		t.Errorf("context switches %d, stats %d", pe.ContextSwitches, st.ContextSwitches)
	}
	if pe.Preemptions != st.Preemptions {
		t.Errorf("preemptions %d, stats %d", pe.Preemptions, st.Preemptions)
	}
	if pe.IRQReturns != st.IRQs {
		t.Errorf("IRQ returns %d, stats %d", pe.IRQReturns, st.IRQs)
	}
	if pe.IRQEnters != pe.IRQReturns {
		t.Errorf("IRQ balance %d/%d", pe.IRQEnters, pe.IRQReturns)
	}
	// Occupancy derived from dispatch events must partition the span the
	// same way Stats does: busy (incl. overhead) + idle == span.
	if pe.Busy != st.BusyTime+st.OverheadTime {
		t.Errorf("telemetry busy %v, stats busy+overhead %v", pe.Busy, st.BusyTime+st.OverheadTime)
	}
	if pe.Busy+pe.Idle != pe.Span {
		t.Errorf("busy %v + idle %v != span %v", pe.Busy, pe.Idle, pe.Span)
	}
	if pe.ReadyMax < 1 {
		t.Errorf("ready max %d, want >= 1", pe.ReadyMax)
	}

	tasks := map[string]TaskReport{}
	for _, tr := range pe.Tasks {
		tasks[tr.Task] = tr
	}
	mid := tasks["mid"]
	// 4 TaskEndCycle calls → 4 period releases plus a 5th release whose
	// job is completed immediately by termination (response 0).
	if mid.Jobs != 5 {
		t.Errorf("mid jobs = %d, want 5 (4 cycles + terminating release)", mid.Jobs)
	}
	if mid.RespMin < 0 || mid.RespMax < mid.RespMin || mid.RespMax <= 0 {
		t.Errorf("mid response stats out of order: min %v max %v", mid.RespMin, mid.RespMax)
	}
	if mid.Jitter != mid.RespMax-mid.RespMin {
		t.Errorf("mid jitter %v != max-min %v", mid.Jitter, mid.RespMax-mid.RespMin)
	}
	high := tasks["high"]
	if high.Blocking <= 0 {
		t.Errorf("high blocking %v, want > 0 (event wait)", high.Blocking)
	}
	if high.Jobs != 1 {
		t.Errorf("high jobs = %d, want 1 (terminated aperiodic)", high.Jobs)
	}
	var busySum sim.Time
	for _, tr := range pe.Tasks {
		busySum += tr.Busy
	}
	// Per-task busy partitions PE busy up to context-switch overhead,
	// which is zero here (no WithContextSwitchCost).
	if busySum != pe.Busy {
		t.Errorf("sum of task busy %v != PE busy %v", busySum, pe.Busy)
	}
}

func TestReportWriteText(t *testing.T) {
	agg := NewAggregator()
	_, end := scenario(t, agg)
	agg.SetEnd(end)
	var sb strings.Builder
	if err := agg.Report().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"PE PE:", "context switches", "mid", "high", "low"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestMergeDoublesCounters(t *testing.T) {
	agg1, agg2 := NewAggregator(), NewAggregator()
	_, end1 := scenario(t, agg1)
	agg1.SetEnd(end1)
	_, end2 := scenario(t, agg2)
	agg2.SetEnd(end2)
	r1 := agg1.Report()
	merged := Merge(agg1.Report(), agg2.Report())

	if len(merged.PEs) != 1 {
		t.Fatalf("merged PEs = %d, want 1 (same name folds)", len(merged.PEs))
	}
	m, s := merged.PEs[0], r1.PEs[0]
	if m.Dispatches != 2*s.Dispatches || m.ContextSwitches != 2*s.ContextSwitches {
		t.Errorf("merged counters not doubled: %d/%d vs single %d/%d",
			m.Dispatches, m.ContextSwitches, s.Dispatches, s.ContextSwitches)
	}
	if m.Span != 2*s.Span || m.Busy != 2*s.Busy {
		t.Errorf("merged span/busy not doubled")
	}
	// Identical runs: utilization and response stats are unchanged.
	if m.Utilization != s.Utilization {
		t.Errorf("merged utilization %v != single %v", m.Utilization, s.Utilization)
	}
	var mt, st_ TaskReport
	for _, tr := range m.Tasks {
		if tr.Task == "mid" {
			mt = tr
		}
	}
	for _, tr := range s.Tasks {
		if tr.Task == "mid" {
			st_ = tr
		}
	}
	if mt.Jobs != 2*st_.Jobs {
		t.Errorf("merged mid jobs %d, want %d", mt.Jobs, 2*st_.Jobs)
	}
	if mt.RespMean != st_.RespMean || mt.RespP99 != st_.RespP99 {
		t.Errorf("merged response stats changed: mean %v p99 %v vs %v %v",
			mt.RespMean, mt.RespP99, st_.RespMean, st_.RespP99)
	}
}

func TestMarkerLatencies(t *testing.T) {
	events := []Event{
		{At: 10, Kind: KindMarker, Other: "in", Task: "src", Arg: 0},
		{At: 15, Kind: KindMarker, Other: "in", Task: "src", Arg: 1},
		{At: 30, Kind: KindMarker, Other: "out", Task: "dst", Arg: 0},
		{At: 31, Kind: KindDispatch, PE: "PE", Task: "x"}, // ignored
		{At: 55, Kind: KindMarker, Other: "out", Task: "dst", Arg: 1},
		{At: 60, Kind: KindMarker, Other: "out", Task: "dst", Arg: 9}, // unmatched
	}
	lats := MarkerLatencies(events, "in", "out")
	if len(lats) != 2 || lats[0] != 20 || lats[1] != 40 {
		t.Errorf("latencies = %v, want [20 40]", lats)
	}
	if got := MarkerLatencies(nil, "in", "out"); len(got) != 0 {
		t.Errorf("empty stream latencies = %v", got)
	}
}

func TestBusMarkerAndCollector(t *testing.T) {
	col := &Collector{}
	bus := NewBus(col)
	bus.Marker(42, "frame-in", "src", 7)
	if len(col.Events) != 1 {
		t.Fatalf("collector has %d events, want 1", len(col.Events))
	}
	e := col.Events[0]
	if e.Kind != KindMarker || e.At != 42 || e.Other != "frame-in" || e.Task != "src" || e.Arg != 7 {
		t.Errorf("marker event = %+v", e)
	}
	if s := e.String(); !strings.Contains(s, "frame-in") || !strings.Contains(s, "arg=7") {
		t.Errorf("marker String() = %q", s)
	}
}

func TestEventStringStable(t *testing.T) {
	// The golden-trace format contract: one representative line per kind.
	cases := []struct {
		e    Event
		want string
	}{
		{Event{At: 100, Kind: KindDispatch, PE: "PE", Task: "b", Other: "a"}, "a -> b"},
		{Event{At: 100, Kind: KindDispatch, PE: "PE"}, "- -> -"},
		{Event{At: 100, Kind: KindPreempt, PE: "PE", Task: "low", Other: "hi"}, "low by hi"},
		{Event{At: 100, Kind: KindBlock, PE: "PE", Task: "t", Reason: core.BlockEvent}, "t (event)"},
		{Event{At: 100, Kind: KindReadyLen, PE: "PE", Arg: 3}, "readyq"},
		{Event{At: 100, Kind: KindIRQEnter, PE: "PE", Other: "irq0"}, "irq0"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want substring %q", got, c.want)
		}
	}
}
