package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one labeled sample of a Prometheus metric family.
type PromSample struct {
	Labels map[string]string
	Value  float64
}

// PromMetric is one metric family in the Prometheus text exposition
// format (name, HELP/TYPE headers, samples).
type PromMetric struct {
	Name    string
	Help    string
	Type    string // "counter" or "gauge"
	Samples []PromSample
}

// WriteProm renders metric families in the Prometheus text exposition
// format. Labels are emitted sorted by key so output is deterministic.
func WriteProm(w io.Writer, metrics []PromMetric) error {
	for _, m := range metrics {
		if len(m.Samples) == 0 {
			continue
		}
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if m.Type != "" {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
		}
		for _, s := range m.Samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, formatLabels(s.Labels),
				strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// PromMetrics converts the report into Prometheus metric families.
func (r *Report) PromMetrics() []PromMetric {
	peCounter := func(name, help string, get func(PEReport) float64) PromMetric {
		m := PromMetric{Name: name, Help: help, Type: "counter"}
		for _, pe := range r.PEs {
			m.Samples = append(m.Samples, PromSample{
				Labels: map[string]string{"pe": pe.PE}, Value: get(pe)})
		}
		return m
	}
	peGauge := func(name, help string, get func(PEReport) float64) PromMetric {
		m := peCounter(name, help, get)
		m.Type = "gauge"
		return m
	}
	taskMetric := func(name, help, typ string, get func(TaskReport) float64) PromMetric {
		m := PromMetric{Name: name, Help: help, Type: typ}
		for _, pe := range r.PEs {
			for _, t := range pe.Tasks {
				m.Samples = append(m.Samples, PromSample{
					Labels: map[string]string{"pe": pe.PE, "task": t.Task},
					Value:  get(t)})
			}
		}
		return m
	}

	metrics := []PromMetric{
		peCounter("rtos_dispatches_total", "Task dispatches per PE.",
			func(p PEReport) float64 { return float64(p.Dispatches) }),
		peCounter("rtos_context_switches_total", "Context switches per PE.",
			func(p PEReport) float64 { return float64(p.ContextSwitches) }),
		peCounter("rtos_preemptions_total", "Preemptions per PE.",
			func(p PEReport) float64 { return float64(p.Preemptions) }),
		peCounter("rtos_irqs_total", "Serviced interrupts per PE.",
			func(p PEReport) float64 { return float64(p.IRQReturns) }),
		peGauge("rtos_span_ns", "Observed simulation span per PE.",
			func(p PEReport) float64 { return float64(p.Span) }),
		peGauge("rtos_busy_time_ns", "CPU busy time per PE.",
			func(p PEReport) float64 { return float64(p.Busy) }),
		peGauge("rtos_idle_time_ns", "CPU idle time per PE.",
			func(p PEReport) float64 { return float64(p.Idle) }),
		peGauge("rtos_utilization_ratio", "Busy fraction of the span per PE.",
			func(p PEReport) float64 { return p.Utilization }),
		peGauge("rtos_ready_queue_max", "Peak ready-queue length per PE.",
			func(p PEReport) float64 { return float64(p.ReadyMax) }),
		peGauge("rtos_ready_queue_mean", "Time-weighted mean ready-queue length per PE.",
			func(p PEReport) float64 { return p.ReadyMean }),
		taskMetric("rtos_task_dispatches_total", "Dispatches per task.", "counter",
			func(t TaskReport) float64 { return float64(t.Dispatches) }),
		taskMetric("rtos_task_preemptions_total", "Preemptions per task.", "counter",
			func(t TaskReport) float64 { return float64(t.Preemptions) }),
		taskMetric("rtos_task_jobs_total", "Completed jobs per task.", "counter",
			func(t TaskReport) float64 { return float64(t.Jobs) }),
		taskMetric("rtos_task_blocking_ns", "Resource blocking time per task.", "gauge",
			func(t TaskReport) float64 { return float64(t.Blocking) }),
		taskMetric("rtos_task_jitter_ns", "Response-time jitter per task.", "gauge",
			func(t TaskReport) float64 { return float64(t.Jitter) }),
		taskMetric("rtos_task_utilization_ratio", "Busy fraction of the span per task.", "gauge",
			func(t TaskReport) float64 { return t.Utilization }),
	}

	resp := PromMetric{Name: "rtos_task_response_ns",
		Help: "Response-time statistics per task.", Type: "gauge"}
	for _, pe := range r.PEs {
		for _, t := range pe.Tasks {
			if t.Jobs == 0 {
				continue
			}
			for _, s := range []struct {
				stat string
				v    float64
			}{
				{"min", float64(t.RespMin)},
				{"mean", float64(t.RespMean)},
				{"p99", float64(t.RespP99)},
				{"max", float64(t.RespMax)},
			} {
				resp.Samples = append(resp.Samples, PromSample{
					Labels: map[string]string{"pe": pe.PE, "task": t.Task, "stat": s.stat},
					Value:  s.v})
			}
		}
	}
	metrics = append(metrics, resp)
	return metrics
}

// WriteProm renders the report in the Prometheus text exposition format.
func (r *Report) WriteProm(w io.Writer) error {
	return WriteProm(w, r.PromMetrics())
}

// ParseProm is a minimal parser for the text exposition format, enough to
// round-trip WriteProm output in tests: it returns samples grouped by
// metric family name and validates names, label syntax and values.
func ParseProm(data []byte) (map[string][]PromSample, error) {
	out := map[string][]PromSample{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, labels, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q", lineno, rest)
		}
		out[name] = append(out[name], PromSample{Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parsePromLine(line string) (name, rest string, labels map[string]string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", nil, fmt.Errorf("no value on line %q", line)
	}
	name = line[:i]
	if !validPromName(name) {
		return "", "", nil, fmt.Errorf("bad metric name %q", name)
	}
	rest = line[i:]
	if rest[0] != '{' {
		return name, rest, nil, nil
	}
	labels = map[string]string{}
	rest = rest[1:]
	for {
		rest = strings.TrimLeft(rest, " ,")
		if rest == "" {
			return "", "", nil, fmt.Errorf("unterminated label set")
		}
		if rest[0] == '}' {
			return name, rest[1:], labels, nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", "", nil, fmt.Errorf("bad label in %q", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validPromName(key) {
			return "", "", nil, fmt.Errorf("bad label name %q", key)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return "", "", nil, fmt.Errorf("label %s: value not quoted", key)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return "", "", nil, fmt.Errorf("label %s: unterminated value", key)
			}
			c := rest[0]
			rest = rest[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if rest == "" {
					return "", "", nil, fmt.Errorf("label %s: trailing escape", key)
				}
				switch rest[0] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", "", nil, fmt.Errorf("label %s: bad escape \\%c", key, rest[0])
				}
				rest = rest[1:]
				continue
			}
			val.WriteByte(c)
		}
		labels[key] = val.String()
	}
}
