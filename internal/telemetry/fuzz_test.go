package telemetry

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
)

// FuzzEventStream fuzzes the binary ring-buffer codec: DecodeEvents must
// never panic or over-allocate on arbitrary input, and on any input it
// accepts, encode(decode(x)) must be a fixpoint — the re-encoded stream
// decodes to the same events and re-encodes byte-identically.
//
// Seed corpus: testdata/fuzz/FuzzEventStream (valid streams plus
// near-valid mutations); f.Add seeds below cover the structural corners.
func FuzzEventStream(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("TLM1"))
	f.Add([]byte("TLM"))
	f.Add(EncodeEvents(nil))
	f.Add(EncodeEvents([]Event{{At: 42, Kind: KindMarker, Other: "frame-in", Task: "src", Arg: -7}}))
	f.Add(EncodeEvents([]Event{
		{At: 0, Kind: KindDispatch, PE: "PE", Task: "a"},
		{At: 10, Kind: KindBlock, PE: "PE", Task: "a", Reason: core.BlockEvent},
		{At: 20, Kind: KindState, PE: "PE", Task: "a",
			From: core.TaskRunning, To: core.TaskTerminated},
	}))
	f.Add(EncodeEvents(mkEvents(40)))
	// Adversarial shapes the decoder must reject gracefully.
	f.Add(append([]byte("TLM1"), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40))
	f.Add(append([]byte("TLM1"), 1, 0xC8, 0x01, 'x'))
	f.Add(append([]byte("TLM1"), 0, 1, 0, 1, 5, 0, 0, 0, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeEvents(data)
		if err != nil {
			return // rejected input is fine; panics/OOM are the bug
		}
		enc := EncodeEvents(evs)
		again, err := DecodeEvents(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(again, evs) {
			t.Fatalf("decode(encode(decode(x))) != decode(x):\n%v\nvs\n%v", again, evs)
		}
		if enc2 := EncodeEvents(again); !bytes.Equal(enc2, enc) {
			t.Fatal("canonical encoding is not a byte-stable fixpoint")
		}
	})
}
