package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Aggregator is a Sink that folds the event stream into per-PE and
// per-task scheduling metrics. Every counter it reports is derived from
// events alone — never read back from core.Stats — so the aggregate
// doubles as a completeness check on the observer hooks (asserted by the
// observer-completeness test in internal/core).
//
// Response time is measured per job from its release event to the
// completion edge: a periodic task completes when it blocks for its next
// period, an aperiodic task when it terminates or goes to sleep.
type Aggregator struct {
	end    sim.Time
	hasEnd bool
	pes    map[string]*peAgg
	order  []string
}

// NewAggregator creates an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{pes: map[string]*peAgg{}}
}

type peAgg struct {
	name        string
	first, last sim.Time
	started     bool

	dispatches  uint64
	ctxSwitches uint64
	preemptions uint64
	irqEnters   uint64
	irqReturns  uint64

	busy, idle sim.Time
	curTask    map[int]string   // CPU slot -> running task ("" = idle)
	lastRun    map[int]string   // CPU slot -> last non-idle task
	lastAt     map[int]sim.Time // CPU slot -> last occupancy change

	readyAt   sim.Time
	readyLen  int64
	readyArea int64 // integral of length over time
	readyMax  int64
	readySeen bool

	tasks     map[string]*taskAgg
	taskOrder []string
}

type taskAgg struct {
	name        string
	dispatches  uint64
	preemptions uint64
	releases    int
	completions int

	releaseAt   sim.Time
	haveRelease bool
	resp        []sim.Time

	blocked     bool
	blockAt     sim.Time
	blockReason core.BlockReason
	blocking    sim.Time

	busy sim.Time
}

func (a *Aggregator) pe(name string) *peAgg {
	p, ok := a.pes[name]
	if !ok {
		p = &peAgg{
			name:    name,
			curTask: map[int]string{},
			lastRun: map[int]string{},
			lastAt:  map[int]sim.Time{},
			tasks:   map[string]*taskAgg{},
		}
		a.pes[name] = p
		a.order = append(a.order, name)
	}
	return p
}

func (p *peAgg) task(name string) *taskAgg {
	t, ok := p.tasks[name]
	if !ok {
		t = &taskAgg{name: name}
		p.tasks[name] = t
		p.taskOrder = append(p.taskOrder, name)
	}
	return t
}

// SetEnd fixes the end of the observation span (typically Kernel.Now()
// after the run); without it the span ends at the last event.
func (a *Aggregator) SetEnd(t sim.Time) { a.end, a.hasEnd = t, true }

// Emit consumes one event.
func (a *Aggregator) Emit(e Event) {
	if e.PE == "" {
		return // application markers carry no scheduler state
	}
	p := a.pe(e.PE)
	if !p.started {
		p.first, p.started = e.At, true
	}
	if e.At > p.last {
		p.last = e.At
	}
	switch e.Kind {
	case KindDispatch:
		// Charge the elapsed occupancy of this CPU slot before switching.
		if last, ok := p.lastAt[e.CPU]; ok {
			dt := e.At - last
			if cur := p.curTask[e.CPU]; cur != "" {
				p.busy += dt
				p.task(cur).busy += dt
			} else {
				p.idle += dt
			}
		}
		p.curTask[e.CPU] = e.Task
		p.lastAt[e.CPU] = e.At
		if e.Task != "" {
			p.dispatches++
			p.task(e.Task).dispatches++
			if lr, ok := p.lastRun[e.CPU]; ok && lr != e.Task {
				p.ctxSwitches++
			}
			p.lastRun[e.CPU] = e.Task
		}
	case KindPreempt:
		p.preemptions++
		p.task(e.Task).preemptions++
	case KindRelease:
		t := p.task(e.Task)
		t.releases++
		t.releaseAt = e.At
		t.haveRelease = true
	case KindBlock:
		t := p.task(e.Task)
		t.blocked = true
		t.blockAt = e.At
		t.blockReason = e.Reason
		// End-of-job edges: the next period, or going back to sleep.
		if (e.Reason == core.BlockPeriod || e.Reason == core.BlockSleep) && t.haveRelease {
			t.complete(e.At)
		}
	case KindUnblock:
		t := p.task(e.Task)
		if t.blocked {
			switch t.blockReason {
			case core.BlockEvent, core.BlockMutex, core.BlockChildren:
				t.blocking += e.At - t.blockAt
			}
			t.blocked = false
		}
	case KindState:
		if e.To == core.TaskTerminated || e.To == core.TaskKilled {
			t := p.task(e.Task)
			if t.haveRelease {
				t.complete(e.At)
			}
		}
	case KindIRQEnter:
		p.irqEnters++
	case KindIRQReturn:
		p.irqReturns++
	case KindReadyLen:
		if p.readySeen {
			p.readyArea += int64(e.At-p.readyAt) * p.readyLen
		}
		p.readyAt = e.At
		p.readyLen = e.Arg
		p.readySeen = true
		if e.Arg > p.readyMax {
			p.readyMax = e.Arg
		}
	}
}

func (t *taskAgg) complete(at sim.Time) {
	t.completions++
	t.resp = append(t.resp, at-t.releaseAt)
	t.haveRelease = false
}

// ---------------------------------------------------------------------------
// Reports.

// TaskReport is one task's aggregated metrics.
type TaskReport struct {
	Task        string
	Dispatches  uint64
	Preemptions uint64
	Releases    int
	Jobs        int // completed jobs (response-time samples)

	RespMin  sim.Time
	RespMax  sim.Time
	RespMean sim.Time
	RespP99  sim.Time
	Jitter   sim.Time // RespMax - RespMin

	Blocking    sim.Time // time blocked on events/mutexes/fork-join
	Busy        sim.Time // CPU occupancy
	Utilization float64  // Busy / PE span

	RespSamples []sim.Time // retained so reports stay mergeable
}

// PEReport is one scheduler instance's aggregated metrics.
type PEReport struct {
	PE   string
	Span sim.Time // first event (or earliest merge member) to end

	Dispatches      uint64
	ContextSwitches uint64
	Preemptions     uint64
	IRQEnters       uint64
	IRQReturns      uint64

	Busy        sim.Time
	Idle        sim.Time
	Utilization float64

	ReadyMax  int64
	ReadyMean float64 // time-weighted mean ready-queue length

	Tasks []TaskReport

	readyArea float64 // carried for merging
}

// Report is a full metrics snapshot, serializable and mergeable.
type Report struct {
	PEs []PEReport
}

// Report builds the metrics snapshot at the current aggregation state.
// It does not mutate the aggregator, so it can be called mid-simulation.
func (a *Aggregator) Report() *Report {
	r := &Report{}
	for _, name := range a.order {
		p := a.pes[name]
		end := p.last
		if a.hasEnd && a.end > end {
			end = a.end
		}
		pr := PEReport{
			PE:              p.name,
			Span:            end - p.first,
			Dispatches:      p.dispatches,
			ContextSwitches: p.ctxSwitches,
			Preemptions:     p.preemptions,
			IRQEnters:       p.irqEnters,
			IRQReturns:      p.irqReturns,
			Busy:            p.busy,
			Idle:            p.idle,
			ReadyMax:        p.readyMax,
		}
		// Trailing occupancy and ready-queue intervals up to the end.
		trailingBusy := map[string]sim.Time{}
		for cpu, last := range p.lastAt {
			dt := end - last
			if cur := p.curTask[cpu]; cur != "" {
				pr.Busy += dt
				trailingBusy[cur] += dt
			} else {
				pr.Idle += dt
			}
		}
		area := p.readyArea
		if p.readySeen {
			area += int64(end-p.readyAt) * p.readyLen
		}
		pr.readyArea = float64(area)
		if pr.Span > 0 {
			pr.ReadyMean = pr.readyArea / float64(pr.Span)
			pr.Utilization = float64(pr.Busy) / float64(pr.Span)
		}
		for _, tn := range p.taskOrder {
			t := p.tasks[tn]
			tr := TaskReport{
				Task:        t.name,
				Dispatches:  t.dispatches,
				Preemptions: t.preemptions,
				Releases:    t.releases,
				Jobs:        t.completions,
				Blocking:    t.blocking,
				Busy:        t.busy + trailingBusy[t.name],
				RespSamples: append([]sim.Time(nil), t.resp...),
			}
			tr.fillRespStats()
			if pr.Span > 0 {
				tr.Utilization = float64(tr.Busy) / float64(pr.Span)
			}
			pr.Tasks = append(pr.Tasks, tr)
		}
		r.PEs = append(r.PEs, pr)
	}
	return r
}

func (tr *TaskReport) fillRespStats() {
	xs := tr.RespSamples
	if len(xs) == 0 {
		tr.RespMin, tr.RespMax, tr.RespMean, tr.RespP99, tr.Jitter = 0, 0, 0, 0, 0
		return
	}
	var sum sim.Time
	tr.RespMin, tr.RespMax = xs[0], xs[0]
	for _, x := range xs {
		sum += x
		if x < tr.RespMin {
			tr.RespMin = x
		}
		if x > tr.RespMax {
			tr.RespMax = x
		}
	}
	tr.RespMean = sum / sim.Time(len(xs))
	tr.RespP99 = percentile(xs, 0.99)
	tr.Jitter = tr.RespMax - tr.RespMin
}

// percentile returns the p-quantile using the nearest-rank method: the
// smallest sample with at least a p fraction of the population at or
// below it, rank ceil(p·n) (1-based). Degenerate populations behave
// sanely: any percentile of a single sample is that sample, and p99 of
// two samples is the larger one. The epsilon guards against ceil lifting
// an exact product represented as 198.00000000000003 to 199.
func percentile(xs []sim.Time, p float64) sim.Time {
	sorted := append([]sim.Time(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p*float64(len(sorted)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Merge folds many reports (e.g. one per job of a batch sweep) into a
// single report: counters and times sum, response-time statistics are
// recomputed over the union of the samples, ready-queue maxima take the
// max and means combine span-weighted. PEs and tasks are matched by name
// in first-seen order, so merging results delivered in submission order
// is deterministic.
func Merge(reports ...*Report) *Report {
	out := &Report{}
	idx := map[string]int{}
	for _, r := range reports {
		if r == nil {
			continue
		}
		for _, pr := range r.PEs {
			i, ok := idx[pr.PE]
			if !ok {
				i = len(out.PEs)
				idx[pr.PE] = i
				out.PEs = append(out.PEs, PEReport{PE: pr.PE})
			}
			dst := &out.PEs[i]
			dst.Span += pr.Span
			dst.Dispatches += pr.Dispatches
			dst.ContextSwitches += pr.ContextSwitches
			dst.Preemptions += pr.Preemptions
			dst.IRQEnters += pr.IRQEnters
			dst.IRQReturns += pr.IRQReturns
			dst.Busy += pr.Busy
			dst.Idle += pr.Idle
			if pr.ReadyMax > dst.ReadyMax {
				dst.ReadyMax = pr.ReadyMax
			}
			if pr.readyArea != 0 {
				dst.readyArea += pr.readyArea
			} else {
				// Reports rebuilt from serialized form lose the raw area;
				// reconstruct it from the mean.
				dst.readyArea += pr.ReadyMean * float64(pr.Span)
			}
			tidx := map[string]int{}
			for j, t := range dst.Tasks {
				tidx[t.Task] = j
			}
			for _, tr := range pr.Tasks {
				j, ok := tidx[tr.Task]
				if !ok {
					j = len(dst.Tasks)
					tidx[tr.Task] = j
					dst.Tasks = append(dst.Tasks, TaskReport{Task: tr.Task})
				}
				dt := &dst.Tasks[j]
				dt.Dispatches += tr.Dispatches
				dt.Preemptions += tr.Preemptions
				dt.Releases += tr.Releases
				dt.Jobs += tr.Jobs
				dt.Blocking += tr.Blocking
				dt.Busy += tr.Busy
				dt.RespSamples = append(dt.RespSamples, tr.RespSamples...)
			}
		}
	}
	for i := range out.PEs {
		pr := &out.PEs[i]
		if pr.Span > 0 {
			pr.Utilization = float64(pr.Busy) / float64(pr.Span)
			pr.ReadyMean = pr.readyArea / float64(pr.Span)
		}
		for j := range pr.Tasks {
			tr := &pr.Tasks[j]
			tr.fillRespStats()
			if pr.Span > 0 {
				tr.Utilization = float64(tr.Busy) / float64(pr.Span)
			}
		}
	}
	return out
}

// WriteText renders the report as a human-readable table.
func (r *Report) WriteText(w io.Writer) error {
	for _, pr := range r.PEs {
		if _, err := fmt.Fprintf(w,
			"PE %s: span %v, dispatches %d, context switches %d, preemptions %d, irqs %d/%d, busy %v (%.1f%%), idle %v, readyq max %d mean %.2f\n",
			pr.PE, pr.Span, pr.Dispatches, pr.ContextSwitches, pr.Preemptions,
			pr.IRQEnters, pr.IRQReturns, pr.Busy, 100*pr.Utilization, pr.Idle,
			pr.ReadyMax, pr.ReadyMean); err != nil {
			return err
		}
		if len(pr.Tasks) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-14s %5s %5s %8s %10s %10s %10s %10s %10s %10s %6s\n",
			"task", "jobs", "disp", "preempt", "resp-min", "resp-mean", "resp-p99",
			"resp-max", "jitter", "blocked", "util%"); err != nil {
			return err
		}
		for _, tr := range pr.Tasks {
			if _, err := fmt.Fprintf(w, "  %-14s %5d %5d %8d %10v %10v %10v %10v %10v %10v %5.1f%%\n",
				tr.Task, tr.Jobs, tr.Dispatches, tr.Preemptions, tr.RespMin,
				tr.RespMean, tr.RespP99, tr.RespMax, tr.Jitter, tr.Blocking,
				100*tr.Utilization); err != nil {
				return err
			}
		}
	}
	return nil
}
