package telemetry

import (
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
)

// Capture bundles the standard sink set behind the command-line tools'
// -trace-out/-metrics-out flags: one bus feeding a full event collector
// (for the Chrome trace export) and a metrics aggregator.
type Capture struct {
	Bus       *Bus
	Collector *Collector
	Agg       *Aggregator
}

// NewCapture creates a bus with a collector and an aggregator attached.
func NewCapture() *Capture {
	c := &Capture{Collector: &Collector{}, Agg: NewAggregator()}
	c.Bus = NewBus(c.Collector, c.Agg)
	return c
}

// SetEnd fixes the observation end time (see Aggregator.SetEnd).
func (c *Capture) SetEnd(t sim.Time) { c.Agg.SetEnd(t) }

// Report returns the aggregated metrics.
func (c *Capture) Report() *Report { return c.Agg.Report() }

// WriteTraceFile writes the collected events as Chrome trace-event JSON
// (open with Perfetto / chrome://tracing).
func (c *Capture) WriteTraceFile(path string) error {
	return writeFile(path, func(w io.Writer) error {
		return WriteChromeTrace(w, c.Collector.Events)
	})
}

// WriteMetricsFile writes the aggregated metrics in the Prometheus text
// exposition format.
func (c *Capture) WriteMetricsFile(path string) error {
	return WriteMetricsFile(path, c.Report())
}

// WriteMetricsFile writes a report in the Prometheus text exposition
// format (shared by tools that merge reports before writing).
func WriteMetricsFile(path string, r *Report) error {
	return writeFile(path, r.WriteProm)
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: write %s: %w", path, err)
	}
	return f.Close()
}
