package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (Perfetto's legacy JSON ingestion). Timestamps are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	chromeTidSched = 0 // per-process scheduler/IRQ track
	chromeAppPE    = "app"
)

// chromeBuilder assigns stable pid/tid numbers and accumulates events.
type chromeBuilder struct {
	out  []chromeEvent
	pids map[string]int
	tids map[string]map[string]int
}

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

func (b *chromeBuilder) pid(pe string) int {
	if pe == "" {
		pe = chromeAppPE
	}
	id, ok := b.pids[pe]
	if !ok {
		id = len(b.pids) + 1
		b.pids[pe] = id
		b.out = append(b.out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: id,
			Args: map[string]any{"name": pe},
		}, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: id, Tid: chromeTidSched,
			Args: map[string]any{"name": "scheduler"},
		})
	}
	return id
}

func (b *chromeBuilder) tid(pe, task string) int {
	if pe == "" {
		pe = chromeAppPE
	}
	pid := b.pid(pe)
	m, ok := b.tids[pe]
	if !ok {
		m = map[string]int{}
		b.tids[pe] = m
	}
	id, ok := m[task]
	if !ok {
		id = len(m) + 1 // tid 0 is the scheduler track
		m[task] = id
		b.out = append(b.out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: id,
			Args: map[string]any{"name": task},
		})
	}
	return id
}

// occKey identifies one CPU slot of one PE.
type occKey struct {
	pe  string
	cpu int
}

// WriteChromeTrace exports the event stream as Chrome trace-event JSON:
// one process per PE, one thread per task plus a tid-0 scheduler track,
// "X" slices for running intervals, async "b"/"e" slices for blocking,
// "B"/"E" pairs for IRQ service, counters for the ready-queue length and
// instants for releases, preemptions and application markers. Slices
// still open at the end of the stream are closed at the last timestamp so
// phase pairing stays valid.
func WriteChromeTrace(w io.Writer, events []Event) error {
	b := &chromeBuilder{pids: map[string]int{}, tids: map[string]map[string]int{}}

	type slice struct {
		task  string
		start sim.Time
	}
	running := map[occKey]slice{} // open running slice per CPU slot
	type blockState struct {
		reason string
		start  sim.Time
	}
	blocked := map[occKey]map[string]blockState{} // pe -> task -> open block
	irq := map[string][]Event{}                   // pe -> open IRQ B stack

	var end sim.Time
	for _, e := range events {
		if e.At > end {
			end = e.At
		}
	}

	closeRun := func(k occKey, s slice, at sim.Time) {
		b.out = append(b.out, chromeEvent{
			Name: s.task, Cat: "running", Ph: "X",
			Ts: usec(s.start), Dur: usec(at - s.start),
			Pid: b.pid(k.pe), Tid: b.tid(k.pe, s.task),
			Args: map[string]any{"cpu": k.cpu},
		})
	}

	for _, e := range events {
		switch e.Kind {
		case KindDispatch:
			k := occKey{e.PE, e.CPU}
			if s, ok := running[k]; ok {
				closeRun(k, s, e.At)
				delete(running, k)
			}
			if e.Task != "" {
				running[k] = slice{task: e.Task, start: e.At}
			}
		case KindBlock:
			k := occKey{e.PE, 0}
			m := blocked[k]
			if m == nil {
				m = map[string]blockState{}
				blocked[k] = m
			}
			if _, open := m[e.Task]; !open {
				m[e.Task] = blockState{reason: e.Reason.String(), start: e.At}
				b.out = append(b.out, chromeEvent{
					Name: "blocked:" + e.Reason.String(), Cat: "blocking", Ph: "b",
					Ts: usec(e.At), Pid: b.pid(e.PE), Tid: b.tid(e.PE, e.Task),
					ID: b.tid(e.PE, e.Task),
				})
			}
		case KindUnblock:
			k := occKey{e.PE, 0}
			if m := blocked[k]; m != nil {
				if st, open := m[e.Task]; open {
					b.out = append(b.out, chromeEvent{
						Name: "blocked:" + st.reason, Cat: "blocking", Ph: "e",
						Ts: usec(e.At), Pid: b.pid(e.PE), Tid: b.tid(e.PE, e.Task),
						ID: b.tid(e.PE, e.Task),
					})
					delete(m, e.Task)
				}
			}
		case KindIRQEnter:
			irq[e.PE] = append(irq[e.PE], e)
			b.out = append(b.out, chromeEvent{
				Name: e.Other, Cat: "irq", Ph: "B",
				Ts: usec(e.At), Pid: b.pid(e.PE), Tid: chromeTidSched,
			})
		case KindIRQReturn:
			if st := irq[e.PE]; len(st) > 0 {
				irq[e.PE] = st[:len(st)-1]
				b.out = append(b.out, chromeEvent{
					Name: e.Other, Cat: "irq", Ph: "E",
					Ts: usec(e.At), Pid: b.pid(e.PE), Tid: chromeTidSched,
				})
			}
		case KindRelease:
			b.out = append(b.out, chromeEvent{
				Name: "release", Cat: "sched", Ph: "i", S: "t",
				Ts: usec(e.At), Pid: b.pid(e.PE), Tid: b.tid(e.PE, e.Task),
			})
		case KindPreempt:
			b.out = append(b.out, chromeEvent{
				Name: "preempt", Cat: "sched", Ph: "i", S: "t",
				Ts: usec(e.At), Pid: b.pid(e.PE), Tid: b.tid(e.PE, e.Task),
				Args: map[string]any{"by": e.Other},
			})
		case KindReadyLen:
			b.out = append(b.out, chromeEvent{
				Name: "readyq", Ph: "C",
				Ts: usec(e.At), Pid: b.pid(e.PE), Tid: chromeTidSched,
				Args: map[string]any{"ready": e.Arg},
			})
		case KindMarker:
			b.out = append(b.out, chromeEvent{
				Name: e.Other, Cat: "marker", Ph: "i", S: "p",
				Ts: usec(e.At), Pid: b.pid(e.PE), Tid: b.tid(e.PE, e.Task),
				Args: map[string]any{"arg": e.Arg},
			})
		}
	}

	// Close anything still open at the end of the observed stream, in a
	// deterministic order (maps iterate randomly).
	runKeys := make([]occKey, 0, len(running))
	for k := range running {
		runKeys = append(runKeys, k)
	}
	sort.Slice(runKeys, func(i, j int) bool {
		if runKeys[i].pe != runKeys[j].pe {
			return runKeys[i].pe < runKeys[j].pe
		}
		return runKeys[i].cpu < runKeys[j].cpu
	})
	for _, k := range runKeys {
		closeRun(k, running[k], end)
	}
	blockKeys := make([]occKey, 0, len(blocked))
	for k := range blocked {
		blockKeys = append(blockKeys, k)
	}
	sort.Slice(blockKeys, func(i, j int) bool { return blockKeys[i].pe < blockKeys[j].pe })
	for _, k := range blockKeys {
		m := blocked[k]
		tasks := make([]string, 0, len(m))
		for task := range m {
			tasks = append(tasks, task)
		}
		sort.Strings(tasks)
		for _, task := range tasks {
			st := m[task]
			b.out = append(b.out, chromeEvent{
				Name: "blocked:" + st.reason, Cat: "blocking", Ph: "e",
				Ts: usec(end), Pid: b.pid(k.pe), Tid: b.tid(k.pe, task),
				ID: b.tid(k.pe, task),
			})
		}
	}
	irqPEs := make([]string, 0, len(irq))
	for pe := range irq {
		irqPEs = append(irqPEs, pe)
	}
	sort.Strings(irqPEs)
	for _, pe := range irqPEs {
		st := irq[pe]
		for i := len(st) - 1; i >= 0; i-- {
			b.out = append(b.out, chromeEvent{
				Name: st[i].Other, Cat: "irq", Ph: "E",
				Ts: usec(end), Pid: b.pid(pe), Tid: chromeTidSched,
			})
		}
	}

	if b.out == nil {
		b.out = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: b.out, DisplayTimeUnit: "ns"}); err != nil {
		return fmt.Errorf("chrome trace: %w", err)
	}
	return nil
}
