// Package telemetry is the scheduler observability layer: a structured
// event bus over the RTOS model's observer hooks (core.ObserverExt,
// smp.ObserverExt) feeding pluggable sinks — a per-task/per-PE metrics
// aggregator, a Chrome trace-event exporter loadable in Perfetto, a
// Prometheus-style text exporter, and a compact binary ring buffer for
// always-on capture.
//
// The paper's entire evaluation (Table 1, Figure 8) consists of
// observations of the RTOS model: context-switch counts, transcoding
// delay, interleaving traces. This package makes those observations a
// first-class, diffable artifact: every simulation run can emit a
// canonical event stream (pinned by golden-trace tests), a trace file for
// a visual timeline, and a metrics report whose counters are derived
// purely from the event stream — never hand-counted from core.Stats.
//
// All sinks run synchronously inside the single-threaded simulation; a
// Bus and its sinks must not be shared across concurrently running
// kernels (create one Bus per simulation, exactly like trace.Recorder).
package telemetry

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/smp"
)

// Kind classifies a telemetry event.
type Kind uint8

const (
	// KindRelease: a new job of Task was released at At.
	KindRelease Kind = iota
	// KindDispatch: CPU handover on CPU; Task is the next task ("" =
	// idle), Other the previous one ("" = none/idle).
	KindDispatch
	// KindPreempt: Task involuntarily lost the CPU; Other is the
	// preempting task if known.
	KindPreempt
	// KindBlock: Task left the CPU for a waiting state (Reason).
	KindBlock
	// KindUnblock: Task re-entered the ready queue (Reason it waited).
	KindUnblock
	// KindState: generic task state transition From -> To.
	KindState
	// KindIRQEnter / KindIRQReturn: interrupt service routine Other
	// entered / returned.
	KindIRQEnter
	KindIRQReturn
	// KindReadyLen: the ready-queue length changed to Arg.
	KindReadyLen
	// KindMarker: application instrumentation point (Other = label,
	// Task = emitting task/behavior, Arg free-form), teed from
	// trace.Recorder markers.
	KindMarker
	// KindFaultInject: the fault-injection layer (internal/fault)
	// perturbed the model; Other = injector name, Task = affected
	// task/IRQ/semaphore, Arg = injector-specific magnitude.
	KindFaultInject
	// KindFaultDeadlock: runtime diagnosis reported one edge of a
	// wait-for cycle; Task = blocked task, Other = "resource held by
	// holder".
	KindFaultDeadlock
	// KindFaultStarve: runtime diagnosis reported a stall or starvation
	// victim; Task = blocked task, Other = the blocking site.
	KindFaultStarve

	kindCount = int(KindFaultStarve) + 1
)

// String returns a short stable kind name (used in golden traces).
func (k Kind) String() string {
	switch k {
	case KindRelease:
		return "release"
	case KindDispatch:
		return "dispatch"
	case KindPreempt:
		return "preempt"
	case KindBlock:
		return "block"
	case KindUnblock:
		return "unblock"
	case KindState:
		return "state"
	case KindIRQEnter:
		return "irq-enter"
	case KindIRQReturn:
		return "irq-return"
	case KindReadyLen:
		return "readyq"
	case KindMarker:
		return "marker"
	case KindFaultInject:
		return "fault.inject"
	case KindFaultDeadlock:
		return "fault.deadlock"
	case KindFaultStarve:
		return "fault.starve"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one structured scheduler event. The zero value of unused
// fields is meaningful ("" strings, zero Arg), which keeps the binary
// encoding compact.
type Event struct {
	At     sim.Time
	Kind   Kind
	PE     string // emitting RTOS/scheduler instance ("" for app markers)
	CPU    int    // CPU slot (0 on uniprocessor instances)
	Task   string // subject task ("" for PE-level events / idle)
	Other  string // prev task, preemptor, IRQ name, or marker label
	Reason core.BlockReason
	From   core.TaskState // old state (KindState only)
	To     core.TaskState // new state (KindState only)
	Arg    int64          // ready-queue length / marker argument
}

// String renders the event as one canonical golden-trace line. The format
// is part of the golden-trace contract: changing it invalidates committed
// traces under testdata/golden/.
func (e Event) String() string {
	pe := e.PE
	if pe == "" {
		pe = "-"
	}
	head := fmt.Sprintf("%-10s %-4s cpu%d %-10s", e.At, pe, e.CPU, e.Kind)
	switch e.Kind {
	case KindRelease:
		return fmt.Sprintf("%s %s", head, e.Task)
	case KindDispatch:
		prev, next := e.Other, e.Task
		if prev == "" {
			prev = "-"
		}
		if next == "" {
			next = "-"
		}
		return fmt.Sprintf("%s %s -> %s", head, prev, next)
	case KindPreempt:
		by := e.Other
		if by == "" {
			by = "-"
		}
		return fmt.Sprintf("%s %s by %s", head, e.Task, by)
	case KindBlock, KindUnblock:
		return fmt.Sprintf("%s %s (%s)", head, e.Task, e.Reason)
	case KindState:
		return fmt.Sprintf("%s %s %s -> %s", head, e.Task, e.From, e.To)
	case KindIRQEnter, KindIRQReturn:
		return fmt.Sprintf("%s %s", head, e.Other)
	case KindReadyLen:
		return fmt.Sprintf("%s %d", head, e.Arg)
	case KindMarker, KindFaultInject:
		return fmt.Sprintf("%s %s %s arg=%d", head, e.Other, e.Task, e.Arg)
	case KindFaultDeadlock, KindFaultStarve:
		return fmt.Sprintf("%s %s blocked on %s", head, e.Task, e.Other)
	default:
		return head
	}
}

// Sink consumes events. Implementations must be cheap and must not block;
// they run inside the simulation loop.
type Sink interface {
	Emit(Event)
}

// Bus fans scheduler events out to its sinks. Attach subscribes it to an
// RTOS model instance; one bus can observe several instances (multi-PE
// designs), each tagged with its PE name.
type Bus struct {
	sinks []Sink
}

// NewBus creates a bus over the given sinks.
func NewBus(sinks ...Sink) *Bus {
	return &Bus{sinks: sinks}
}

// AddSink registers another sink.
func (b *Bus) AddSink(s Sink) { b.sinks = append(b.sinks, s) }

// Emit forwards one event to every sink.
func (b *Bus) Emit(e Event) {
	for _, s := range b.sinks {
		s.Emit(e)
	}
}

// Attach subscribes the bus to a uniprocessor RTOS model instance; events
// carry the instance name as their PE.
func (b *Bus) Attach(os *core.OS) {
	os.Observe(&coreAdapter{bus: b, pe: os.Name()})
}

// AttachSMP subscribes the bus to a global multiprocessor scheduler;
// dispatch/release/preempt events carry the CPU slot index.
func (b *Bus) AttachSMP(os *smp.OS) {
	os.Observe(&smpAdapter{bus: b, pe: os.Name()})
}

// Marker records an application instrumentation point into the stream. It
// has the signature of trace.MarkerSink, so a Bus can be teed onto a
// trace.Recorder with Recorder.TeeMarkers.
func (b *Bus) Marker(at sim.Time, label, task string, arg int64) {
	b.Emit(Event{At: at, Kind: KindMarker, Task: task, Other: label, Arg: arg})
}

// Collector is the simplest sink: it keeps every event (unbounded). Use
// it when the full stream is needed afterwards (golden traces, Chrome
// export); prefer Ring for always-on capture.
type Collector struct {
	Events []Event
}

// Emit appends the event.
func (c *Collector) Emit(e Event) { c.Events = append(c.Events, e) }

// ---------------------------------------------------------------------------
// Observer adapters.

// coreAdapter converts core.ObserverExt callbacks into events.
type coreAdapter struct {
	bus *Bus
	pe  string
}

func taskName(t *core.Task) string {
	if t == nil {
		return ""
	}
	return t.Name()
}

func (a *coreAdapter) OnTaskState(at sim.Time, t *core.Task, old, new core.TaskState) {
	a.bus.Emit(Event{At: at, Kind: KindState, PE: a.pe, Task: t.Name(), From: old, To: new})
}

func (a *coreAdapter) OnDispatch(at sim.Time, prev, next *core.Task) {
	a.bus.Emit(Event{At: at, Kind: KindDispatch, PE: a.pe,
		Task: taskName(next), Other: taskName(prev)})
}

func (a *coreAdapter) OnIRQ(at sim.Time, name string, enter bool) {
	k := KindIRQReturn
	if enter {
		k = KindIRQEnter
	}
	a.bus.Emit(Event{At: at, Kind: k, PE: a.pe, Other: name})
}

func (a *coreAdapter) OnRelease(at sim.Time, t *core.Task) {
	a.bus.Emit(Event{At: at, Kind: KindRelease, PE: a.pe, Task: t.Name()})
}

func (a *coreAdapter) OnPreempt(at sim.Time, t, by *core.Task) {
	a.bus.Emit(Event{At: at, Kind: KindPreempt, PE: a.pe,
		Task: t.Name(), Other: taskName(by)})
}

func (a *coreAdapter) OnBlock(at sim.Time, t *core.Task, r core.BlockReason) {
	a.bus.Emit(Event{At: at, Kind: KindBlock, PE: a.pe, Task: t.Name(), Reason: r})
}

func (a *coreAdapter) OnUnblock(at sim.Time, t *core.Task, r core.BlockReason) {
	a.bus.Emit(Event{At: at, Kind: KindUnblock, PE: a.pe, Task: t.Name(), Reason: r})
}

func (a *coreAdapter) OnReadyQueue(at sim.Time, n int) {
	a.bus.Emit(Event{At: at, Kind: KindReadyLen, PE: a.pe, Arg: int64(n)})
}

// OnDiagnosis converts a runtime diagnosis into fault.* events: one
// fault.deadlock event per wait-for cycle edge, or one fault.starve event
// per blocked/starved task when no cycle exists.
func (a *coreAdapter) OnDiagnosis(at sim.Time, d *core.DiagnosisError) {
	if len(d.Cycle) > 0 {
		for _, e := range d.Cycle {
			a.bus.Emit(Event{At: at, Kind: KindFaultDeadlock, PE: a.pe,
				Task: e.Task, Other: e.Resource + " held by " + e.Holder})
		}
		return
	}
	for _, e := range d.Blocked {
		other := e.Resource
		if e.Holder != "" {
			other += " held by " + e.Holder
		}
		a.bus.Emit(Event{At: at, Kind: KindFaultStarve, PE: a.pe,
			Task: e.Task, Other: other})
	}
}

// smpAdapter converts smp.ObserverExt callbacks into events. A vacated
// CPU slot is reported as a dispatch to idle on that CPU.
type smpAdapter struct {
	bus *Bus
	pe  string
}

func (a *smpAdapter) OnDispatch(at sim.Time, cpu int, t *smp.Task) {
	a.bus.Emit(Event{At: at, Kind: KindDispatch, PE: a.pe, CPU: cpu, Task: t.Name()})
}

func (a *smpAdapter) OnRelease(at sim.Time, cpu int, t *smp.Task) {
	a.bus.Emit(Event{At: at, Kind: KindDispatch, PE: a.pe, CPU: cpu, Other: t.Name()})
}

func (a *smpAdapter) OnPreempt(at sim.Time, cpu int, t *smp.Task) {
	a.bus.Emit(Event{At: at, Kind: KindPreempt, PE: a.pe, CPU: cpu, Task: t.Name()})
}

// OnDiagnosis mirrors coreAdapter.OnDiagnosis for the global
// multiprocessor scheduler.
func (a *smpAdapter) OnDiagnosis(at sim.Time, d *core.DiagnosisError) {
	if len(d.Cycle) > 0 {
		for _, e := range d.Cycle {
			a.bus.Emit(Event{At: at, Kind: KindFaultDeadlock, PE: a.pe,
				Task: e.Task, Other: e.Resource + " held by " + e.Holder})
		}
		return
	}
	for _, e := range d.Blocked {
		other := e.Resource
		if e.Holder != "" {
			other += " held by " + e.Holder
		}
		a.bus.Emit(Event{At: at, Kind: KindFaultStarve, PE: a.pe,
			Task: e.Task, Other: other})
	}
}

// MarkerLatencies pairs from/to markers by argument and returns the
// latencies in to-marker order — the telemetry-side equivalent of
// trace.Recorder.Latencies, used to reproduce Table 1's transcoding delay
// directly from the event stream.
func MarkerLatencies(events []Event, from, to string) []sim.Time {
	starts := map[int64]sim.Time{}
	var out []sim.Time
	for _, e := range events {
		if e.Kind != KindMarker {
			continue
		}
		switch e.Other {
		case from:
			if _, ok := starts[e.Arg]; !ok {
				starts[e.Arg] = e.At
			}
		case to:
			if at, ok := starts[e.Arg]; ok {
				out = append(out, e.At-at)
			}
		}
	}
	return out
}
