package telemetry

// Regression tests for the nearest-rank percentile: degenerate 1- and
// 2-sample populations, exact-rank products that round badly in floating
// point, and the textbook n=100 case.

import (
	"testing"

	"repro/internal/sim"
)

func TestPercentileNearestRank(t *testing.T) {
	seq := func(n int) []sim.Time {
		xs := make([]sim.Time, n)
		for i := range xs {
			xs[i] = sim.Time(i + 1) // 1..n, already the sorted ranks
		}
		return xs
	}
	cases := []struct {
		name string
		xs   []sim.Time
		p    float64
		want sim.Time
	}{
		// n=1: every percentile of a single sample is that sample.
		{"n1-p0", []sim.Time{42}, 0, 42},
		{"n1-p50", []sim.Time{42}, 0.5, 42},
		{"n1-p99", []sim.Time{42}, 0.99, 42},
		{"n1-p100", []sim.Time{42}, 1, 42},
		// n=2: p50 is the smaller sample (rank ceil(0.5*2)=1), anything
		// above 50% is the larger one — p99 of {10,20} must be 20, which
		// the old round-half-up index got wrong via idx=int(1.98+0.5)-1=1
		// only by accident; for p75 it returned the wrong element.
		{"n2-p50", []sim.Time{20, 10}, 0.5, 10},
		{"n2-p75", []sim.Time{20, 10}, 0.75, 20},
		{"n2-p99", []sim.Time{20, 10}, 0.99, 20},
		{"n2-p100", []sim.Time{20, 10}, 1, 20},
		// n=3: ranks ceil(0.3*3)=1, ceil(0.5*3)=2, ceil(0.99*3)=3.
		{"n3-p30", []sim.Time{3, 1, 2}, 0.3, 1},
		{"n3-p50", []sim.Time{3, 1, 2}, 0.5, 2},
		{"n3-p99", []sim.Time{3, 1, 2}, 0.99, 3},
		// n=100: the textbook case — p99 is the 99th of 100 ranks.
		{"n100-p0", seq(100), 0, 1},
		{"n100-p1", seq(100), 0.01, 1},
		{"n100-p50", seq(100), 0.5, 50},
		{"n100-p90", seq(100), 0.9, 90},
		{"n100-p99", seq(100), 0.99, 99},
		{"n100-p100", seq(100), 1, 100},
		// n=200, p99: 0.99*200 is 198.00000000000003 in float64; without
		// the epsilon ceil lifts it to rank 199.
		{"n200-p99-fp", seq(200), 0.99, 198},
		// n=7, p30: ceil(2.1)=3 — the old round-half-up picked rank 2.
		{"n7-p30", seq(7), 0.3, 3},
	}
	for _, c := range cases {
		if got := percentile(c.xs, c.p); got != c.want {
			t.Errorf("%s: percentile(%v, %v) = %v, want %v", c.name, c.xs, c.p, got, c.want)
		}
	}
}

// TestFaultEventStrings pins the golden-trace rendering of the new
// fault.* event kinds.
func TestFaultEventStrings(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{At: 10, Kind: KindFaultInject, PE: "PE", Other: "exec-scale", Task: "dsp", Arg: 150},
			"10ns       PE   cpu0 fault.inject exec-scale dsp arg=150"},
		{Event{At: 20, Kind: KindFaultDeadlock, PE: "PE", Task: "A", Other: "semaphore:s1 held by B"},
			"20ns       PE   cpu0 fault.deadlock A blocked on semaphore:s1 held by B"},
		{Event{At: 30, Kind: KindFaultStarve, PE: "PE", Task: "C", Other: "cpu"},
			"30ns       PE   cpu0 fault.starve C blocked on cpu"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
