package telemetry

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// Ring is a fixed-capacity event sink for always-on capture: the last
// Cap events are kept, older ones are overwritten. Emit never allocates
// after the buffer fills, which keeps observer overhead flat.
type Ring struct {
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewRing creates a ring holding up to capacity events (capacity >= 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic("telemetry: ring capacity must be >= 1")
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit records the event, overwriting the oldest once full.
func (r *Ring) Emit(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.full = true
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
}

// Len returns how many events are currently held.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns how many events were ever emitted.
func (r *Ring) Total() uint64 { return r.total }

// Dropped returns how many events were overwritten.
func (r *Ring) Dropped() uint64 { return r.total - uint64(len(r.buf)) }

// Events returns the retained events in emission order (oldest first).
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Encode serializes the retained events in the compact binary format.
func (r *Ring) Encode() []byte { return EncodeEvents(r.Events()) }

// Binary stream format (version TLM1):
//
//	magic "TLM1"
//	uvarint nstrings; nstrings x (uvarint len, bytes)   -- string table
//	uvarint nevents; nevents x event
//
// Each event is: zigzag-varint delta timestamp (vs previous event), one
// kind byte, uvarint string refs for PE/Task/Other (0 = empty, else
// 1-based table index), uvarint CPU, one byte each for Reason/From/To,
// and a zigzag-varint Arg. Timestamps are delta-encoded because streams
// are (nearly) time-ordered, making most deltas one byte.
const ringMagic = "TLM1"

type stringTable struct {
	idx  map[string]uint64
	strs []string
}

func (t *stringTable) ref(s string) uint64 {
	if s == "" {
		return 0
	}
	if i, ok := t.idx[s]; ok {
		return i
	}
	t.strs = append(t.strs, s)
	i := uint64(len(t.strs))
	t.idx[s] = i
	return i
}

// EncodeEvents serializes events in the compact binary format. The
// encoding is canonical for a given event slice: decode(encode(evs)) ==
// evs, and re-encoding that result is byte-stable (fuzzed by
// FuzzEventStream).
func EncodeEvents(events []Event) []byte {
	tab := &stringTable{idx: map[string]uint64{}}
	var body []byte
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(dst *[]byte, v uint64) {
		*dst = append(*dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	putVarint := func(dst *[]byte, v int64) {
		*dst = append(*dst, tmp[:binary.PutVarint(tmp[:], v)]...)
	}

	var prev sim.Time
	for _, e := range events {
		putVarint(&body, int64(e.At-prev))
		prev = e.At
		body = append(body, byte(e.Kind))
		putUvarint(&body, tab.ref(e.PE))
		putUvarint(&body, tab.ref(e.Task))
		putUvarint(&body, tab.ref(e.Other))
		putUvarint(&body, uint64(uint32(e.CPU)))
		body = append(body, byte(e.Reason), byte(e.From), byte(e.To))
		putVarint(&body, e.Arg)
	}

	out := []byte(ringMagic)
	putUvarint(&out, uint64(len(tab.strs)))
	for _, s := range tab.strs {
		putUvarint(&out, uint64(len(s)))
		out = append(out, s...)
	}
	putUvarint(&out, uint64(len(events)))
	out = append(out, body...)
	return out
}

type ringDecoder struct {
	data []byte
	pos  int
}

func (d *ringDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("telemetry: truncated varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *ringDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("telemetry: truncated varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *ringDecoder) byte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, fmt.Errorf("telemetry: truncated stream at offset %d", d.pos)
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

// DecodeEvents deserializes a binary event stream produced by
// EncodeEvents. It is hardened against arbitrary input: lengths and
// counts are validated against the remaining data before any allocation,
// so malformed streams return an error instead of panicking or
// exhausting memory.
func DecodeEvents(data []byte) ([]Event, error) {
	if len(data) < len(ringMagic) || string(data[:len(ringMagic)]) != ringMagic {
		return nil, fmt.Errorf("telemetry: bad magic")
	}
	d := &ringDecoder{data: data, pos: len(ringMagic)}

	nstrings, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nstrings > uint64(len(data)-d.pos) {
		return nil, fmt.Errorf("telemetry: string table count %d exceeds stream size", nstrings)
	}
	strs := make([]string, 0, nstrings)
	for i := uint64(0); i < nstrings; i++ {
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(data)-d.pos) {
			return nil, fmt.Errorf("telemetry: string %d length %d exceeds stream size", i, n)
		}
		if n == 0 {
			return nil, fmt.Errorf("telemetry: empty string %d in table", i)
		}
		strs = append(strs, string(d.data[d.pos:d.pos+int(n)]))
		d.pos += int(n)
	}
	str := func(ref uint64) (string, error) {
		if ref == 0 {
			return "", nil
		}
		if ref > uint64(len(strs)) {
			return "", fmt.Errorf("telemetry: string ref %d out of range", ref)
		}
		return strs[ref-1], nil
	}

	nevents, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Each event takes at least 8 bytes (4 varints + 4 fixed bytes).
	if nevents > uint64(len(data)-d.pos)/8 {
		return nil, fmt.Errorf("telemetry: event count %d exceeds stream size", nevents)
	}
	events := make([]Event, 0, nevents)
	var prev sim.Time
	for i := uint64(0); i < nevents; i++ {
		var e Event
		dt, err := d.varint()
		if err != nil {
			return nil, err
		}
		e.At = prev + sim.Time(dt)
		prev = e.At
		kind, err := d.byte()
		if err != nil {
			return nil, err
		}
		e.Kind = Kind(kind)
		peRef, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		taskRef, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		otherRef, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if e.PE, err = str(peRef); err != nil {
			return nil, err
		}
		if e.Task, err = str(taskRef); err != nil {
			return nil, err
		}
		if e.Other, err = str(otherRef); err != nil {
			return nil, err
		}
		cpu, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if cpu > math.MaxUint32 {
			return nil, fmt.Errorf("telemetry: cpu %d out of range", cpu)
		}
		e.CPU = int(int32(uint32(cpu)))
		reason, err := d.byte()
		if err != nil {
			return nil, err
		}
		e.Reason = core.BlockReason(reason)
		from, err := d.byte()
		if err != nil {
			return nil, err
		}
		e.From = core.TaskState(from)
		to, err := d.byte()
		if err != nil {
			return nil, err
		}
		e.To = core.TaskState(to)
		if e.Arg, err = d.varint(); err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("telemetry: %d trailing bytes", len(data)-d.pos)
	}
	return events, nil
}
