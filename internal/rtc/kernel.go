package rtc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/timewheel"
)

// Time aliases the simulation time type so workloads move between the
// two engines without conversion.
type Time = sim.Time

// mState is the coroutine-level machine state (distinct from the RTOS
// task state). It mirrors sim.State just closely enough for the event
// flush guard and liveness accounting.
type mState uint8

const (
	mCreated mState = iota
	mReady
	mRunning
	mWaitEvent   // blocked on events (Wait)
	mWaitTime    // blocked on a timer (WaitFor)
	mWaitTimeout // blocked on events with a timeout timer (WaitTimeout)
	mDone
	// mWaitChildren (blocked in a par fork until every child machine
	// finishes, sim's StateWaitChildren) is appended after mDone so the
	// numeric values of the pre-existing states, which rtcsnap
	// checkpoints encode, stay stable.
	mWaitChildren
)

// status is a frame step's verdict: the frame finished, it pushed a
// child frame, or the machine blocked and control returns to the
// scheduler loop.
type status uint8

const (
	statDone status = iota
	statCall
	statBlocked
)

// frame is one resumable segment of a machine's call stack. step runs
// until the frame completes, calls into a child frame, or blocks; on
// re-entry after a block the frame's program counter field resumes it
// past the blocking point.
type frame interface {
	step(m *machine) status
}

// event is the engine's notification primitive, a port of sim.Event:
// flush wakes every registered waiter into the next delta cycle.
type event struct {
	name    string
	waiters []*machine
}

func (e *event) removeWaiter(m *machine) {
	for i, w := range e.waiters {
		if w == m {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			return
		}
	}
}

// timerEntry is one pending timer: a machine timeout (m != nil) or a
// timed notification (e != nil), fired in (at, seq) order.
type timerEntry struct {
	at   Time
	seq  int
	m    *machine
	e    *event
	node timewheel.Node[*timerEntry]
}

// kernel is the run-to-completion simulation core: the same delta-cycle
// and timer microstructure as sim.Kernel, but machines resume by a plain
// method call on one goroutine instead of a channel rendezvous per
// context switch.
type kernel struct {
	now   Time
	delta uint64

	ready   []*machine // runnable in the current delta cycle, FIFO
	readyAt int        // consumption index into ready
	next    []*machine // runnable in the next delta cycle, FIFO

	wheel     *timewheel.Wheel[*timerEntry]
	timerSeq  int
	timerFree []*timerEntry
	due       []*timerEntry // scratch batch for CollectDue
	// nextDue caches the wheel's earliest due time (valid only when
	// nextDueOK); addTimer keeps it exact, cancel/fire invalidate it, so
	// the common push-then-fire cycle skips the wheel's NextTime scan.
	nextDue   Time
	nextDueOK bool

	machines []*machine
	active   int
	stopped  bool
	failure  error
	limit    Time

	onStall func() error
}

func newKernel() *kernel {
	return &kernel{
		wheel: timewheel.New(
			func(e *timerEntry) *timewheel.Node[*timerEntry] { return &e.node },
			func(e *timerEntry) int64 { return int64(e.at) },
			func(e *timerEntry) int { return e.seq },
		),
	}
}

// machine is one resumable control flow: the engine's replacement for a
// simulation process goroutine. Its stack of frames encodes the exact
// call structure the goroutine kernel's task bodies and OS services
// have, so the two engines take identical scheduling decisions. The
// embedded service frames are reused across calls — a machine executes
// sequentially, so each frame type is on its stack at most once.
type machine struct {
	k      *kernel
	name   string
	state  mState
	daemon bool
	task   *task // nil for ISR and watchdog machines

	stack      []frame
	waitEvents []*event
	timer      *timerEntry
	wokenBy    *event
	timedOut   bool

	// par fork/join bookkeeping (sim.Proc.parent/pendingKids): a child
	// machine's finish decrements its parent's count and wakes the parent
	// once the last child is done.
	parent      *machine
	pendingKids int

	// Preallocated service frames (zero-alloc steady state).
	fAct fActivate
	fEnd fEndCycle
	fTW  fTimeWait
	fWD  fWaitDispatched
	fY   fYieldCPU
	fDec fDecideFrom
	fEW  fEventWait
	fEN  fEventNotify
	fSus fSuspend
	fRes fResume
	fOp  opFrame
}

func (k *kernel) newEvent(name string) *event { return &event{name: name} }

// spawn creates a machine whose initial stack is the given body frame.
// Like sim.Kernel.Spawn it enters the current delta cycle, so machines
// spawned before the run start at time zero in creation order.
func (k *kernel) spawn(name string, body frame, daemon bool) *machine {
	m := &machine{k: k, name: name, daemon: daemon, state: mCreated}
	m.stack = append(m.stack, body)
	k.machines = append(k.machines, m)
	k.active++
	k.enqueueReady(m)
	return m
}

// spawnNext creates a child machine that joins parent and enters the
// *next* delta cycle — sim.Proc.ParNamed's fork: children forked at one
// instant all activate in the following delta, in creation order.
func (k *kernel) spawnNext(name string, body frame, parent *machine) *machine {
	m := &machine{k: k, name: name, state: mCreated, parent: parent}
	m.stack = append(m.stack, body)
	k.machines = append(k.machines, m)
	k.active++
	k.enqueueNext(m)
	return m
}

func (k *kernel) enqueueReady(m *machine) { k.ready = append(k.ready, m) }
func (k *kernel) enqueueNext(m *machine)  { k.next = append(k.next, m) }

func (k *kernel) popReady() *machine {
	if k.readyAt >= len(k.ready) {
		return nil
	}
	// No nil write: every machine is retained by k.machines for the
	// session's lifetime, so a stale slot cannot leak anything.
	m := k.ready[k.readyAt]
	k.readyAt++
	if k.readyAt == len(k.ready) {
		k.ready = k.ready[:0]
		k.readyAt = 0
	}
	return m
}

// nextRunnable advances delta cycles and simulated time exactly like
// sim.Kernel.nextRunnable: drain the current delta, swap in the next,
// then fire the earliest timers within the horizon.
func (k *kernel) nextRunnable() *machine {
	for {
		if m := k.popReady(); m != nil {
			return m
		}
		if len(k.next) > 0 {
			k.ready, k.next = k.next, k.ready[:0]
			k.readyAt = 0
			k.delta++
			continue
		}
		t, ok := k.nextTime()
		if !ok || t > k.limit {
			return nil
		}
		k.now = t
		k.delta = 0
		k.fireTimers(t)
	}
}

// nextTime is wheel.NextTime behind the kernel's cache.
func (k *kernel) nextTime() (Time, bool) {
	if k.nextDueOK {
		return k.nextDue, true
	}
	t, ok := k.wheel.NextTime()
	if ok {
		k.nextDue, k.nextDueOK = Time(t), true
	}
	return Time(t), ok
}

// fireTimers wakes every entry due at exactly t in (at, seq) order —
// the order both sim timer backends are pinned to. Waking only enqueues
// machines; none of them runs (and none can schedule a new timer) until
// the scheduler loop resumes them, so one CollectDue batch is complete.
func (k *kernel) fireTimers(t Time) {
	k.nextDueOK = false // everything due at t leaves the wheel
	k.due = k.wheel.CollectDue(int64(t), k.due[:0])
	for _, e := range k.due {
		if e.m != nil {
			e.m.wakeFromTimer()
		} else {
			k.flush(e.e)
		}
		// No nil write into k.due: the entry goes straight onto the free
		// pool, so the stale scratch slot retains nothing extra.
		k.recycleTimer(e)
	}
}

func (k *kernel) addTimer(at Time, m *machine, e *event) *timerEntry {
	k.timerSeq++
	var entry *timerEntry
	if n := len(k.timerFree); n > 0 {
		entry = k.timerFree[n-1]
		k.timerFree = k.timerFree[:n-1]
		entry.at, entry.seq, entry.m, entry.e = at, k.timerSeq, m, e
	} else {
		entry = &timerEntry{at: at, seq: k.timerSeq, m: m, e: e}
	}
	k.wheel.Push(entry)
	if k.nextDueOK {
		if at < k.nextDue {
			k.nextDue = at
		}
	} else if k.wheel.Len() == 1 {
		// The sole entry: the cache can be (re)seeded exactly. With other
		// entries pending it stays invalid — one of them may be earlier.
		k.nextDue, k.nextDueOK = at, true
	}
	return entry
}

func (k *kernel) recycleTimer(e *timerEntry) {
	e.m, e.e = nil, nil
	k.timerFree = append(k.timerFree, e)
}

func (k *kernel) cancelTimer(e *timerEntry) {
	if k.wheel.Cancel(e) {
		if k.nextDueOK && e.at == k.nextDue {
			k.nextDueOK = false
		}
		k.recycleTimer(e)
	}
}

// pendingTimers counts live timers (the watchdog's hidden-stall check).
func (k *kernel) pendingTimers() int { return k.wheel.Len() }

// flush wakes every current waiter of e into the next delta cycle
// (sim.Event.flush, including its state guard and reslice idiom).
func (k *kernel) flush(e *event) {
	if len(e.waiters) == 0 {
		return
	}
	woken := e.waiters
	e.waiters = e.waiters[:0]
	for _, m := range woken {
		if m.state == mWaitEvent || m.state == mWaitTimeout {
			m.wakeFromEvent(e)
		}
	}
}

// fail stops the run with err; the first failure wins (sim.Kernel.Fail).
func (k *kernel) fail(err error) {
	if k.failure == nil {
		k.failure = err
	}
	k.stopped = true
}

// runUntil executes up to and including limit, mirroring
// sim.Kernel.RunUntil's epilogue: a Fail error, then the horizon check,
// then stall diagnosis over the live (non-daemon, unfinished) machines.
func (k *kernel) runUntil(limit Time) error {
	k.limit = limit
	for !k.stopped {
		m := k.nextRunnable()
		if m == nil {
			break
		}
		m.state = mRunning
		m.exec()
	}
	if k.stopped {
		return k.failure
	}
	if t, ok := k.wheel.NextTime(); ok && Time(t) > limit {
		return nil // horizon reached; state preserved
	}
	live := 0
	for _, m := range k.machines {
		if !m.daemon && m.state != mDone {
			live++
		}
	}
	if live > 0 {
		if k.onStall != nil {
			if err := k.onStall(); err != nil {
				return err
			}
		}
		return fmt.Errorf("rtc: deadlock at %s: %d machines blocked with no pending timer", k.now, live)
	}
	return nil
}

// exec resumes the machine's top frame and keeps stepping until the
// machine blocks or its stack drains — the run-to-completion core: a
// context switch is this function returning and the scheduler loop
// calling exec on the next machine. No channel operations, no
// goroutine handoff.
func (m *machine) exec() {
	for {
		n := len(m.stack)
		if n == 0 {
			m.finish()
			return
		}
		switch m.stack[n-1].step(m) {
		case statDone:
			// Popped without a nil write: every frame that ever sits on the
			// stack is preallocated and retained by the machine or session,
			// so a stale slot past len retains nothing extra.
			m.stack = m.stack[:n-1]
		case statCall:
			// child frame pushed (or tail-called); step it next
		case statBlocked:
			return
		}
	}
}

func (m *machine) finish() {
	m.state = mDone
	m.k.active--
	if p := m.parent; p != nil {
		p.pendingKids--
		if p.pendingKids == 0 && p.state == mWaitChildren {
			// Last child done: the parent re-enters the next delta cycle
			// (sim.Proc.finish's join wake).
			m.k.enqueueNext(p)
		}
	}
}

func (m *machine) push(f frame) status {
	m.stack = append(m.stack, f)
	return statCall
}

// tailcall replaces the calling frame with f: a frame whose last action
// is a child call returns this instead of push, saving the pop and the
// no-op re-entry step. The caller is never stepped again.
func (m *machine) tailcall(f frame) status {
	m.stack[len(m.stack)-1] = f
	return statCall
}

// sleep blocks the machine for d (sim.Proc.WaitFor): a non-positive d
// yields into the next delta cycle instead. The calling frame must
// return statBlocked immediately after.
func (m *machine) sleep(d Time) {
	if d <= 0 {
		m.yieldDelta()
		return
	}
	m.timer = m.k.addTimer(m.k.now+d, m, nil)
	m.state = mWaitTime
}

// yieldDelta re-queues the machine into the next delta cycle
// (sim.Proc.YieldDelta).
func (m *machine) yieldDelta() {
	m.state = mReady
	m.k.enqueueNext(m)
}

// wait blocks the machine on e (sim.Proc.Wait).
func (m *machine) wait(e *event) {
	m.waitEvents = append(m.waitEvents[:0], e)
	e.waiters = append(e.waiters, m)
	m.state = mWaitEvent
}

// waitTimeout blocks on e with timeout d (sim.Proc.WaitTimeout); after
// resumption !m.timedOut reports whether the event fired first.
func (m *machine) waitTimeout(e *event, d Time) {
	if d < 0 {
		d = 0
	}
	m.waitEvents = append(m.waitEvents[:0], e)
	e.waiters = append(e.waiters, m)
	m.timer = m.k.addTimer(m.k.now+d, m, nil)
	m.state = mWaitTimeout
}

// afterWait clears the event registrations once a blocked frame resumes
// (the tail of sim.Proc.Wait/WaitTimeout).
func (m *machine) afterWait() {
	m.waitEvents = m.waitEvents[:0]
}

// wakeFromTimer mirrors sim.Proc.wakeFromTimer: the machine re-enters
// the *current* delta cycle.
func (m *machine) wakeFromTimer() {
	for _, e := range m.waitEvents {
		e.removeWaiter(m)
	}
	m.timer = nil
	m.wokenBy = nil
	m.timedOut = true
	m.state = mReady
	m.k.enqueueReady(m)
}

// wakeFromEvent mirrors sim.Proc.wakeFromEvent: the machine re-enters
// the *next* delta cycle, cancelling its other registrations.
func (m *machine) wakeFromEvent(e *event) {
	for _, other := range m.waitEvents {
		if other != e {
			other.removeWaiter(m)
		}
	}
	if m.timer != nil {
		m.k.cancelTimer(m.timer)
		m.timer = nil
	}
	m.wokenBy = e
	m.timedOut = false
	m.state = mReady
	m.k.enqueueNext(m)
}
