package rtc

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// pingPong is the context-switch workload of internal/perf's
// rtc/context-switch scenario: two tasks handing the CPU back and forth
// through a semaphore pair, n rounds.
func pingPong(n int) Workload {
	return Workload{
		Policy: "priority",
		Channels: []ChannelDef{
			{Name: "ping", Kind: "semaphore", Arg: 0},
			{Name: "pong", Kind: "semaphore", Arg: 0},
		},
		Tasks: []TaskDef{
			{Name: "a", Type: "aperiodic", Prio: 1, Repeat: n, Ops: []Op{
				{Kind: "delay", Dur: 1},
				{Kind: "release", Ch: "ping"},
				{Kind: "acquire", Ch: "pong"},
			}},
			{Name: "b", Type: "aperiodic", Prio: 2, Repeat: n, Ops: []Op{
				{Kind: "acquire", Ch: "ping"},
				{Kind: "release", Ch: "pong"},
			}},
		},
		Horizon: sim.Time(n)*8 + sim.Second,
	}
}

func BenchmarkContextSwitch(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	r := Run(pingPong(b.N))
	if r.Err != nil {
		b.Fatal(r.Err)
	}
}

// TestSteadyStateAllocs pins the zero-alloc claim: after warm-up the
// engine's dispatch/timer/channel paths must not allocate.
func TestSteadyStateAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(3, func() {
		r := Run(pingPong(2000))
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	})
	// A run allocates its kernel, machines and frames once; 2000 rounds
	// must not scale that. Generous fixed budget for the setup.
	if allocs > 200 {
		t.Errorf("AllocsPerRun = %.0f for 2000 rounds; steady state allocates", allocs)
	}
}

func BenchmarkScheduler(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := Workload{
			Policy:    "priority",
			TimeModel: core.TimeModelSegmented,
			Horizon:   250 * sim.Millisecond,
		}
		for j := 0; j < 8; j++ {
			w.Tasks = append(w.Tasks, TaskDef{
				Name: fmt.Sprintf("t%d", j), Type: "periodic", Prio: j,
				Period:   sim.Time(j+1) * sim.Millisecond,
				Segments: []sim.Time{sim.Time(j+1) * 100 * sim.Microsecond},
			})
		}
		if r := Run(w); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}
