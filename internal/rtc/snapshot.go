package rtc

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

// Checkpoint is a captured Session: the complete scheduler state —
// machine stacks, ready/wait queues, pending timers, channel buffers,
// wait-for-graph edges, accounting, and the trace position — in a
// deterministic byte form. Two sessions that reached the same state
// produce byte-identical checkpoints, so State doubles as a state digest.
//
// A checkpoint restores into any workload with the same *structure*
// (tasks, channels, IRQs, personality, time model, watchdog, trace flag);
// Policy, Quantum and Horizon may differ — that is the design-space
// fork: run the shared prefix once, snapshot at t=T, and restore under
// each candidate policy. Priorities are state, so a fork to "rm" keeps
// the prefix's priorities rather than re-running the rate-monotonic
// assignment (which happens only at session start).
type Checkpoint struct {
	At        Time   // capture instant (the session's Now)
	Structure string // hash binding the checkpoint to its workload structure
	State     []byte // canonical state encoding
}

// snapVersion guards the State encoding; bump on any format change.
const snapVersion = "rtcsnap/1"

// Snapshot captures the session's complete state. The session must be
// quiescent — paused at a RunUntil horizon with no failure — because a
// mid-delta-cycle capture would have machines in flight whose kernel
// queue positions are not part of the resumable state. Snapshot has no
// side effects; the session can keep running afterwards.
func (s *Session) Snapshot() (*Checkpoint, error) {
	k := s.k
	if s.w.Top != "" {
		// Hierarchical (SDL) sessions fork tasks and machines at runtime
		// and park ISRs on spec-level events outside the task event table;
		// their state is not yet part of the rtcsnap encoding.
		return nil, fmt.Errorf("rtc: snapshot does not support hierarchical (SDL) workloads")
	}
	if k.stopped || s.err != nil {
		return nil, fmt.Errorf("rtc: cannot snapshot a stopped run (err: %v)", s.err)
	}
	if k.readyAt < len(k.ready) || len(k.next) > 0 {
		return nil, fmt.Errorf("rtc: cannot snapshot mid-delta-cycle; pause at a RunUntil horizon first")
	}
	machIx := make(map[*machine]int, len(k.machines))
	for i, m := range k.machines {
		machIx[m] = i
	}
	var e snapEncoder
	e.line("%s", snapVersion)
	e.line("struct %s", s.structureHash())
	e.line("k now=%d delta=%d timerseq=%d", int64(k.now), k.delta, k.timerSeq)

	os := s.os
	e.line("os cur=%d last=%d seq=%d fseq=%d started=%t startedAt=%d idleSince=%d idleValid=%t delayStart=%d delayValid=%t progress=%d",
		taskID(os.current), taskID(os.lastRun), os.seq, os.frontSeq, os.started,
		int64(os.startedAt), int64(os.idleSince), os.idleValid, int64(os.delayStart), os.delayValid, os.progress)
	st := os.stats
	e.line("stats disp=%d cs=%d pre=%d irqs=%d idle=%d busy=%d ovh=%d",
		st.Dispatches, st.ContextSwitches, st.Preemptions, st.IRQs,
		int64(st.IdleTime), int64(st.BusyTime), int64(st.OverheadTime))
	ready := make([]int, len(os.ready))
	for i, t := range os.ready {
		ready[i] = t.id
	}
	e.ints("osready", ready)

	// Kernel events exist two per task, in task order: dispatch = 2*id,
	// preempt = 2*id + 1 (newTask creation order). Encode each event's
	// waiter list — waiter order is wake order, so it is state.
	e.line("events %d", 2*len(os.tasks))
	for _, t := range os.tasks {
		for _, ev := range [2]*event{t.dispatch, t.preempt} {
			ws := make([]int, len(ev.waiters))
			for i, w := range ev.waiters {
				ws[i] = machIx[w]
			}
			e.ints("e", ws)
		}
	}

	// OS events exist one per generic-personality channel, in channel
	// declaration order; their FIFO queues are task ids.
	osEvents := s.osEventList()
	e.line("osevents %d", len(osEvents))
	for _, oe := range osEvents {
		q := make([]int, len(oe.queue))
		for i, t := range oe.queue {
			q[i] = t.id
		}
		e.ints("oe", q)
	}

	resIx := make(map[*resource]int, len(os.monitor.resources))
	for i, r := range os.monitor.resources {
		resIx[r] = i
	}
	e.line("tasks %d", len(os.tasks))
	for _, t := range os.tasks {
		wres := -1
		if t.waitingRes != nil {
			wres = resIx[t.waitingRes]
		}
		e.line("t state=%d prio=%d rseq=%d rel=%d dl=%d slice=%d lwd=%d cpu=%d act=%d miss=%d msg=%d mach=%d wres=%d",
			int(t.state), t.prio, t.readySeq, int64(t.release), int64(t.deadline), int64(t.sliceUsed),
			int64(t.lastWorkDone), int64(t.cpuTime), t.activations, t.missed, t.msg, machOrNeg(machIx, t.mach), wres)
		e.line("tsite %q", t.blockSite)
	}

	// Task body state is carried even when a machine has finished (empty
	// stack) — Finish still reads per-task outcomes such as MaxResp off
	// the body frame after the machine is done.
	e.line("bodies %d", len(s.bodies))
	for _, f := range s.bodies {
		switch fr := f.(type) {
		case *fPeriodicBody:
			e.line("b pb %d %d %d %d %d", fr.c, fr.segIx, int64(fr.rel), int64(fr.resp), fr.pc)
		case *fAperiodicBody:
			e.line("b ab %d %d %d", fr.rep, fr.opIx, fr.pc)
		default:
			return nil, fmt.Errorf("rtc: unknown body frame %T", f)
		}
	}

	e.line("resources %d", len(os.monitor.resources))
	for _, r := range os.monitor.resources {
		pairs := make([]int, 0, 2*len(r.holders))
		for _, h := range r.holders {
			pairs = append(pairs, h.t.id, h.n)
		}
		e.ints("r", pairs)
	}

	qs, ss := s.queueList(), s.semList()
	e.line("chans %d", len(s.w.Channels))
	for _, obj := range s.chanObjects() {
		if err := encodeChannel(&e, obj); err != nil {
			return nil, err
		}
	}

	e.line("machines %d", len(k.machines))
	for i, m := range k.machines {
		e.line("m %d state=%d timedout=%t", i, int(m.state), m.timedOut)
		evs := make([]int, len(m.waitEvents))
		for j, ev := range m.waitEvents {
			id, err := s.eventID(ev)
			if err != nil {
				return nil, err
			}
			evs[j] = id
		}
		e.ints("mw", evs)
		e.line("stk %d", len(m.stack))
		for _, f := range m.stack {
			if err := s.encodeFrame(&e, f, qs, ss); err != nil {
				return nil, err
			}
		}
	}

	var timers []*timerEntry
	k.wheel.Each(func(te *timerEntry) { timers = append(timers, te) })
	sort.Slice(timers, func(i, j int) bool {
		if timers[i].at != timers[j].at {
			return timers[i].at < timers[j].at
		}
		return timers[i].seq < timers[j].seq
	})
	e.line("timers %d", len(timers))
	for _, te := range timers {
		if te.m == nil {
			return nil, fmt.Errorf("rtc: snapshot found an event timer; the engine only arms machine timers")
		}
		e.line("ti at=%d seq=%d mach=%d", int64(te.at), te.seq, machIx[te.m])
	}

	e.line("recs %d", len(os.recs))
	for _, r := range os.recs {
		e.line("rec %d %d %d %q %q %q %q", int64(r.At), int(r.Kind), r.Arg, r.Task, r.From, r.To, r.Label)
	}

	return &Checkpoint{At: k.now, Structure: s.structureHash(), State: e.b.Bytes()}, nil
}

// Restore builds a fresh session for w and applies the checkpoint onto
// it, resuming at cp.At. The workload must be structurally identical to
// the one snapshotted; Policy, Quantum and Horizon may differ (the
// checkpoint-fork knobs). The restored session continues with RunUntil.
func Restore(w Workload, cp *Checkpoint) (*Session, error) {
	s, err := NewSession(w)
	if err != nil {
		return nil, err
	}
	if h := s.structureHash(); h != cp.Structure {
		return nil, fmt.Errorf("rtc: checkpoint structure mismatch (snapshot %.12s..., workload %.12s...): only Policy, Quantum and Horizon may change across a fork", cp.Structure, h)
	}
	if err := s.apply(cp); err != nil {
		return nil, fmt.Errorf("rtc: restore: %w", err)
	}
	return s, nil
}

// apply decodes cp.State into the freshly built session.
func (s *Session) apply(cp *Checkpoint) error {
	d := &snapDecoder{lines: strings.Split(string(cp.State), "\n")}
	if err := d.expect(snapVersion); err != nil {
		return err
	}
	var structHash string
	if err := d.scan("struct %s", &structHash); err != nil {
		return err
	}
	k, os := s.k, s.os

	// Discard the build's time-zero spawn enqueues: the checkpoint's
	// machines already ran their activation prefix.
	for i := range k.ready {
		k.ready[i] = nil
	}
	k.ready, k.readyAt = k.ready[:0], 0
	k.next = k.next[:0]

	var now, delta, tseq int64
	if err := d.scan("k now=%d delta=%d timerseq=%d", &now, &delta, &tseq); err != nil {
		return err
	}
	k.now, k.delta, k.timerSeq = Time(now), uint64(delta), int(tseq)
	k.nextDueOK = false

	var cur, last, seq, fseq, act, wres int
	var started, idleValid, delayValid bool
	var startedAt, idleSince, delayStart int64
	var progress uint64
	if err := d.scan("os cur=%d last=%d seq=%d fseq=%d started=%t startedAt=%d idleSince=%d idleValid=%t delayStart=%d delayValid=%t progress=%d",
		&cur, &last, &seq, &fseq, &started, &startedAt, &idleSince, &idleValid, &delayStart, &delayValid, &progress); err != nil {
		return err
	}
	os.current, os.lastRun = s.taskOrNil(cur), s.taskOrNil(last)
	os.seq, os.frontSeq = seq, fseq
	os.started, os.startedAt = started, Time(startedAt)
	os.idleSince, os.idleValid = Time(idleSince), idleValid
	os.delayStart, os.delayValid = Time(delayStart), delayValid
	os.progress = progress

	var disp, cs, pre, irqs uint64
	var idle, busy, ovh int64
	if err := d.scan("stats disp=%d cs=%d pre=%d irqs=%d idle=%d busy=%d ovh=%d",
		&disp, &cs, &pre, &irqs, &idle, &busy, &ovh); err != nil {
		return err
	}
	os.stats = core.Stats{Dispatches: disp, ContextSwitches: cs, Preemptions: pre, IRQs: irqs,
		IdleTime: Time(idle), BusyTime: Time(busy), OverheadTime: Time(ovh)}

	ready, err := d.ints("osready")
	if err != nil {
		return err
	}
	os.ready = os.ready[:0]
	for _, id := range ready {
		t, err := s.taskByID(id)
		if err != nil {
			return err
		}
		os.ready = append(os.ready, t)
	}

	var nEvents int
	if err := d.scan("events %d", &nEvents); err != nil {
		return err
	}
	if nEvents != 2*len(os.tasks) {
		return fmt.Errorf("snapshot has %d kernel events, workload has %d", nEvents, 2*len(os.tasks))
	}
	for _, t := range os.tasks {
		for _, ev := range [2]*event{t.dispatch, t.preempt} {
			ids, err := d.ints("e")
			if err != nil {
				return err
			}
			ev.waiters = ev.waiters[:0]
			for _, mi := range ids {
				m, err := s.machineByIndex(mi)
				if err != nil {
					return err
				}
				ev.waiters = append(ev.waiters, m)
			}
		}
	}

	osEvents := s.osEventList()
	var nOSEvents int
	if err := d.scan("osevents %d", &nOSEvents); err != nil {
		return err
	}
	if nOSEvents != len(osEvents) {
		return fmt.Errorf("snapshot has %d os events, workload has %d", nOSEvents, len(osEvents))
	}
	for _, oe := range osEvents {
		ids, err := d.ints("oe")
		if err != nil {
			return err
		}
		oe.queue = oe.queue[:0]
		for _, id := range ids {
			t, err := s.taskByID(id)
			if err != nil {
				return err
			}
			oe.queue = append(oe.queue, t)
		}
	}

	var nTasks int
	if err := d.scan("tasks %d", &nTasks); err != nil {
		return err
	}
	if nTasks != len(os.tasks) {
		return fmt.Errorf("snapshot has %d tasks, workload has %d", nTasks, len(os.tasks))
	}
	for _, t := range os.tasks {
		var state, prio, rseq, miss, mach int
		var rel, dl, slice, lwd, cpu, msg int64
		if err := d.scan("t state=%d prio=%d rseq=%d rel=%d dl=%d slice=%d lwd=%d cpu=%d act=%d miss=%d msg=%d mach=%d wres=%d",
			&state, &prio, &rseq, &rel, &dl, &slice, &lwd, &cpu, &act, &miss, &msg, &mach, &wres); err != nil {
			return err
		}
		t.state, t.prio, t.readySeq = core.TaskState(state), prio, rseq
		t.release, t.deadline, t.sliceUsed = Time(rel), Time(dl), Time(slice)
		t.lastWorkDone, t.cpuTime = Time(lwd), Time(cpu)
		t.activations, t.missed, t.msg = act, miss, msg
		if mach >= 0 {
			m, err := s.machineByIndex(mach)
			if err != nil {
				return err
			}
			t.mach = m
		} else {
			t.mach = nil
		}
		if wres >= 0 {
			if wres >= len(os.monitor.resources) {
				return fmt.Errorf("task %s waits on resource %d of %d", t.name, wres, len(os.monitor.resources))
			}
			t.waitingRes = os.monitor.resources[wres]
		} else {
			t.waitingRes = nil
		}
		if err := d.scan("tsite %q", &t.blockSite); err != nil {
			return err
		}
	}

	var nBodies int
	if err := d.scan("bodies %d", &nBodies); err != nil {
		return err
	}
	if nBodies != len(s.bodies) {
		return fmt.Errorf("snapshot has %d task bodies, workload has %d", nBodies, len(s.bodies))
	}
	for _, f := range s.bodies {
		ln, err := d.next()
		if err != nil {
			return err
		}
		switch fr := f.(type) {
		case *fPeriodicBody:
			var rel, resp int64
			if _, err := fmt.Sscanf(ln, "b pb %d %d %d %d %d", &fr.c, &fr.segIx, &rel, &resp, &fr.pc); err != nil {
				return fmt.Errorf("bad body line %q: %v", ln, err)
			}
			fr.rel, fr.resp = Time(rel), Time(resp)
		case *fAperiodicBody:
			if _, err := fmt.Sscanf(ln, "b ab %d %d %d", &fr.rep, &fr.opIx, &fr.pc); err != nil {
				return fmt.Errorf("bad body line %q: %v", ln, err)
			}
		default:
			return fmt.Errorf("unknown body frame %T", f)
		}
	}

	var nRes int
	if err := d.scan("resources %d", &nRes); err != nil {
		return err
	}
	if nRes != len(os.monitor.resources) {
		return fmt.Errorf("snapshot has %d resources, workload has %d", nRes, len(os.monitor.resources))
	}
	for _, r := range os.monitor.resources {
		pairs, err := d.ints("r")
		if err != nil {
			return err
		}
		if len(pairs)%2 != 0 {
			return fmt.Errorf("resource %s holder list has odd length", r.name)
		}
		r.holders = r.holders[:0]
		for i := 0; i < len(pairs); i += 2 {
			t, err := s.taskByID(pairs[i])
			if err != nil {
				return err
			}
			r.holders = append(r.holders, holderCount{t: t, n: pairs[i+1]})
		}
	}

	var nChans int
	if err := d.scan("chans %d", &nChans); err != nil {
		return err
	}
	if nChans != len(s.w.Channels) {
		return fmt.Errorf("snapshot has %d channels, workload has %d", nChans, len(s.w.Channels))
	}
	for _, obj := range s.chanObjects() {
		if err := s.decodeChannel(d, obj); err != nil {
			return err
		}
	}

	var nMach int
	if err := d.scan("machines %d", &nMach); err != nil {
		return err
	}
	if nMach != len(k.machines) {
		return fmt.Errorf("snapshot has %d machines, workload has %d", nMach, len(k.machines))
	}
	qs, ss := s.queueList(), s.semList()
	for i, m := range k.machines {
		var ix, state int
		var timedOut bool
		if err := d.scan("m %d state=%d timedout=%t", &ix, &state, &timedOut); err != nil {
			return err
		}
		if ix != i {
			return fmt.Errorf("machine record %d out of order (got %d)", i, ix)
		}
		m.state, m.timedOut = mState(state), timedOut
		m.wokenBy = nil
		evs, err := d.ints("mw")
		if err != nil {
			return err
		}
		m.waitEvents = m.waitEvents[:0]
		for _, id := range evs {
			ev, err := s.eventByID(id)
			if err != nil {
				return err
			}
			m.waitEvents = append(m.waitEvents, ev)
		}
		var depth int
		if err := d.scan("stk %d", &depth); err != nil {
			return err
		}
		body := m.stack[0] // the spawn body; frame 0 of any live stack
		for j := range m.stack {
			m.stack[j] = nil
		}
		m.stack = m.stack[:0]
		for j := 0; j < depth; j++ {
			f, err := s.decodeFrame(d, m, body, j == 0, qs, ss)
			if err != nil {
				return err
			}
			m.stack = append(m.stack, f)
		}
	}

	var nTimers int
	if err := d.scan("timers %d", &nTimers); err != nil {
		return err
	}
	for j := 0; j < nTimers; j++ {
		var at int64
		var tsq, mach int
		if err := d.scan("ti at=%d seq=%d mach=%d", &at, &tsq, &mach); err != nil {
			return err
		}
		m, err := s.machineByIndex(mach)
		if err != nil {
			return err
		}
		entry := &timerEntry{at: Time(at), seq: tsq, m: m}
		k.wheel.Push(entry)
		m.timer = entry
	}

	var nRecs int
	if err := d.scan("recs %d", &nRecs); err != nil {
		return err
	}
	os.recs = os.recs[:0]
	for j := 0; j < nRecs; j++ {
		var at int64
		var kind int
		var arg int64
		var task, from, to, label string
		if err := d.scan("rec %d %d %d %q %q %q %q", &at, &kind, &arg, &task, &from, &to, &label); err != nil {
			return err
		}
		os.recs = append(os.recs, trace.Record{At: Time(at), Kind: trace.Kind(kind), Arg: arg,
			Task: task, From: from, To: to, Label: label})
	}

	k.active = 0
	for _, m := range k.machines {
		if m.state != mDone {
			k.active++
		}
	}
	return nil
}

// structureHash fingerprints everything a checkpoint depends on except
// the fork knobs (Policy, Quantum, Horizon): name, personality, time
// model, tracing, watchdog, and the full task/channel/IRQ declarations.
func (s *Session) structureHash() string {
	var b bytes.Buffer
	w := s.w
	fmt.Fprintf(&b, "rtcstruct/1 name=%q pers=%q tmodel=%d trace=%t wd=%d\n",
		s.name, s.pers, int(w.TimeModel), w.Trace, int64(w.WatchdogWindow))
	for _, td := range w.Tasks {
		fmt.Fprintf(&b, "task %q %q prio=%d period=%d cycles=%d start=%d repeat=%d segs=%d",
			td.Name, td.Type, td.Prio, int64(td.Period), td.Cycles, int64(td.Start), td.Repeat, len(td.Segments))
		for _, seg := range td.Segments {
			fmt.Fprintf(&b, " %d", int64(seg))
		}
		b.WriteByte('\n')
		for _, op := range td.Ops {
			fmt.Fprintf(&b, "op %q %d %q\n", op.Kind, int64(op.Dur), op.Ch)
		}
	}
	for _, c := range w.Channels {
		fmt.Fprintf(&b, "chan %q %q %d\n", c.Name, c.Kind, c.Arg)
	}
	for _, irq := range w.IRQs {
		fmt.Fprintf(&b, "irq %q %q at=%d every=%d count=%d\n", irq.Name, irq.Sem, int64(irq.At), int64(irq.Every), irq.Count)
	}
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:])
}

// --- lookup helpers ---

func taskID(t *task) int {
	if t == nil {
		return -1
	}
	return t.id
}

func machOrNeg(ix map[*machine]int, m *machine) int {
	if m == nil {
		return -1
	}
	return ix[m]
}

func (s *Session) taskOrNil(id int) *task {
	if id < 0 {
		return nil
	}
	return s.os.tasks[id]
}

func (s *Session) taskByID(id int) (*task, error) {
	if id < 0 || id >= len(s.os.tasks) {
		return nil, fmt.Errorf("task id %d out of range (%d tasks)", id, len(s.os.tasks))
	}
	return s.os.tasks[id], nil
}

func (s *Session) machineByIndex(i int) (*machine, error) {
	if i < 0 || i >= len(s.k.machines) {
		return nil, fmt.Errorf("machine index %d out of range (%d machines)", i, len(s.k.machines))
	}
	return s.k.machines[i], nil
}

// eventID numbers the kernel events without a registry: task id*2 for
// the dispatch event, id*2+1 for the preempt event (newTask creation
// order — the only newEvent call sites).
func (s *Session) eventID(ev *event) (int, error) {
	for _, t := range s.os.tasks {
		if ev == t.dispatch {
			return 2 * t.id, nil
		}
		if ev == t.preempt {
			return 2*t.id + 1, nil
		}
	}
	return 0, fmt.Errorf("event %q is not a task dispatch/preempt event", ev.name)
}

func (s *Session) eventByID(id int) (*event, error) {
	t, err := s.taskByID(id / 2)
	if err != nil {
		return nil, err
	}
	if id%2 == 0 {
		return t.dispatch, nil
	}
	return t.preempt, nil
}

// osEventList enumerates OS-level events in creation order: one condition
// variable per generic-personality channel, in declaration order (the
// itron/osek channels use task wait queues instead).
func (s *Session) osEventList() []*osEvent {
	var out []*osEvent
	for _, c := range s.w.Channels {
		switch c.Kind {
		case "queue":
			if q, ok := s.queues[c.Name].(*genQueue); ok {
				out = append(out, q.cond)
			}
		case "semaphore":
			if sm, ok := s.sems[c.Name].(*genSem); ok {
				out = append(out, sm.cond)
			}
		}
	}
	return out
}

func (s *Session) osEventIndex(oe *osEvent) (int, error) {
	for i, x := range s.osEventList() {
		if x == oe {
			return i, nil
		}
	}
	return 0, fmt.Errorf("os event %q not found in channel declaration order", oe.name)
}

// chanObjects returns the channel objects in declaration order.
func (s *Session) chanObjects() []interface{} {
	out := make([]interface{}, 0, len(s.w.Channels))
	for _, c := range s.w.Channels {
		if c.Kind == "queue" {
			out = append(out, s.queues[c.Name])
		} else {
			out = append(out, s.sems[c.Name])
		}
	}
	return out
}

// queueList / semList index the queue-kind and semaphore-kind channels in
// declaration order, the id space opFrame references use.
func (s *Session) queueList() []rQueue {
	var out []rQueue
	for _, c := range s.w.Channels {
		if c.Kind == "queue" {
			out = append(out, s.queues[c.Name])
		}
	}
	return out
}

func (s *Session) semList() []rSem {
	var out []rSem
	for _, c := range s.w.Channels {
		if c.Kind == "semaphore" {
			out = append(out, s.sems[c.Name])
		}
	}
	return out
}

// --- channel state ---

func encodeChannel(e *snapEncoder, obj interface{}) error {
	switch c := obj.(type) {
	case *genQueue:
		e.ints64("cq", c.buf)
	case *genSem:
		e.line("cs %d", c.count)
	case *itronSem:
		e.line("is %d", c.count)
		e.ints("isw", taskIDs(c.wq))
	case *itronMailbox:
		e.ints64("imm", c.msgs)
		e.ints("imw", taskIDs(c.wq))
	case *osekSem:
		e.line("os %d", c.count)
		e.ints("osw", taskIDs(c.wq))
	case *osekQueue:
		e.ints64("oq", c.buf)
		e.ints("oqs", taskIDs(c.sendQ))
		e.ints("oqr", taskIDs(c.recvQ))
	default:
		return fmt.Errorf("rtc: unknown channel object %T", obj)
	}
	return nil
}

func (s *Session) decodeChannel(d *snapDecoder, obj interface{}) error {
	switch c := obj.(type) {
	case *genQueue:
		buf, err := d.ints64("cq")
		if err != nil {
			return err
		}
		c.buf = buf
	case *genSem:
		return d.scan("cs %d", &c.count)
	case *itronSem:
		if err := d.scan("is %d", &c.count); err != nil {
			return err
		}
		return s.readTaskList(d, "isw", &c.wq)
	case *itronMailbox:
		msgs, err := d.ints64("imm")
		if err != nil {
			return err
		}
		c.msgs = msgs
		return s.readTaskList(d, "imw", &c.wq)
	case *osekSem:
		if err := d.scan("os %d", &c.count); err != nil {
			return err
		}
		return s.readTaskList(d, "osw", &c.wq)
	case *osekQueue:
		buf, err := d.ints64("oq")
		if err != nil {
			return err
		}
		c.buf = buf
		if err := s.readTaskList(d, "oqs", &c.sendQ); err != nil {
			return err
		}
		return s.readTaskList(d, "oqr", &c.recvQ)
	default:
		return fmt.Errorf("unknown channel object %T", obj)
	}
	return nil
}

func taskIDs(ts []*task) []int {
	out := make([]int, len(ts))
	for i, t := range ts {
		out[i] = t.id
	}
	return out
}

func (s *Session) readTaskList(d *snapDecoder, tag string, dst *[]*task) error {
	ids, err := d.ints(tag)
	if err != nil {
		return err
	}
	out := (*dst)[:0]
	for _, id := range ids {
		t, err := s.taskByID(id)
		if err != nil {
			return err
		}
		out = append(out, t)
	}
	*dst = out
	return nil
}

// --- frame codec ---

// encodeFrame writes one stack frame: its type tag plus every mutable
// field. Structural fields (bound tasks of body frames, segment lists,
// op lists) are rebuilt by the session constructor and omitted.
func (s *Session) encodeFrame(e *snapEncoder, f frame, qs []rQueue, ss []rSem) error {
	switch fr := f.(type) {
	case *fPeriodicBody:
		e.line("f pb %d %d %d %d %d", fr.c, fr.segIx, int64(fr.rel), int64(fr.resp), fr.pc)
	case *fAperiodicBody:
		e.line("f ab %d %d %d", fr.rep, fr.opIx, fr.pc)
	case *fIRQBody:
		e.line("f irq %d %d", fr.i, fr.pc)
	case *fWatchdogBody:
		e.line("f wd %d %t %d", fr.last, fr.starving, fr.pc)
	case *fActivate:
		e.line("f act %d %d", taskID(fr.t), fr.pc)
	case *fEndCycle:
		e.line("f end %d %d %d", taskID(fr.t), int64(fr.next), fr.pc)
	case *fTimeWait:
		e.line("f tw %d %d %d %d", int64(fr.d), int64(fr.remaining), int64(fr.start), fr.pc)
	case *fWaitDispatched:
		e.line("f wdis %d %d", taskID(fr.t), fr.pc)
	case *fYieldCPU:
		e.line("f yld %d", taskID(fr.t))
	case *fDecideFrom:
		e.line("f dec")
	case *fEventWait:
		ix, err := s.osEventIndex(fr.e)
		if err != nil {
			return err
		}
		e.line("f ew %d", ix)
	case *fEventNotify:
		ix, err := s.osEventIndex(fr.e)
		if err != nil {
			return err
		}
		e.line("f en %d", ix)
	case *fSuspend:
		e.line("f sus %d %q", int(fr.ws), fr.site)
	case *fResume:
		e.line("f res %d", taskID(fr.t))
	case *opFrame:
		ref := "-"
		if fr.q != nil {
			for i, q := range qs {
				if q == fr.q {
					ref = fmt.Sprintf("q%d", i)
					break
				}
			}
		} else if fr.s != nil {
			for i, sm := range ss {
				if sm == fr.s {
					ref = fmt.Sprintf("s%d", i)
					break
				}
			}
		}
		if ref == "-" {
			return fmt.Errorf("rtc: op frame references an unknown channel")
		}
		e.line("f op %d %s %d %d %d %d", int(fr.kind), ref, fr.v, fr.ret, taskID(fr.t), fr.pc)
	default:
		return fmt.Errorf("rtc: unknown frame type %T", f)
	}
	return nil
}

// decodeFrame reads one frame line back onto machine m. Frame 0 of a
// stack must be the machine's spawn body (taken from the fresh build);
// service frames land in the machine's preallocated slots, exactly as
// the call helpers place them.
func (s *Session) decodeFrame(d *snapDecoder, m *machine, body frame, isBody bool, qs []rQueue, ss []rSem) (frame, error) {
	ln, err := d.next()
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(ln)
	if len(fields) < 2 || fields[0] != "f" {
		return nil, fmt.Errorf("bad frame line %q", ln)
	}
	tag := fields[1]
	os := s.os
	bodyTag := map[string]bool{"pb": true, "ab": true, "irq": true, "wd": true}[tag]
	if bodyTag != isBody {
		return nil, fmt.Errorf("frame %q at stack position mismatch (body=%t)", tag, isBody)
	}
	switch tag {
	case "pb":
		fr, ok := body.(*fPeriodicBody)
		if !ok {
			return nil, fmt.Errorf("snapshot frame pb but machine body is %T", body)
		}
		var rel, resp int64
		if _, err := fmt.Sscanf(ln, "f pb %d %d %d %d %d", &fr.c, &fr.segIx, &rel, &resp, &fr.pc); err != nil {
			return nil, fmt.Errorf("bad pb frame %q: %v", ln, err)
		}
		fr.rel, fr.resp = Time(rel), Time(resp)
		return fr, nil
	case "ab":
		fr, ok := body.(*fAperiodicBody)
		if !ok {
			return nil, fmt.Errorf("snapshot frame ab but machine body is %T", body)
		}
		if _, err := fmt.Sscanf(ln, "f ab %d %d %d", &fr.rep, &fr.opIx, &fr.pc); err != nil {
			return nil, fmt.Errorf("bad ab frame %q: %v", ln, err)
		}
		return fr, nil
	case "irq":
		fr, ok := body.(*fIRQBody)
		if !ok {
			return nil, fmt.Errorf("snapshot frame irq but machine body is %T", body)
		}
		if _, err := fmt.Sscanf(ln, "f irq %d %d", &fr.i, &fr.pc); err != nil {
			return nil, fmt.Errorf("bad irq frame %q: %v", ln, err)
		}
		return fr, nil
	case "wd":
		fr, ok := body.(*fWatchdogBody)
		if !ok {
			return nil, fmt.Errorf("snapshot frame wd but machine body is %T", body)
		}
		if _, err := fmt.Sscanf(ln, "f wd %d %t %d", &fr.last, &fr.starving, &fr.pc); err != nil {
			return nil, fmt.Errorf("bad wd frame %q: %v", ln, err)
		}
		return fr, nil
	case "act":
		var tid, pc int
		if _, err := fmt.Sscanf(ln, "f act %d %d", &tid, &pc); err != nil {
			return nil, fmt.Errorf("bad act frame %q: %v", ln, err)
		}
		m.fAct = fActivate{os: os, t: s.taskOrNil(tid), pc: pc}
		return &m.fAct, nil
	case "end":
		var tid, pc int
		var next int64
		if _, err := fmt.Sscanf(ln, "f end %d %d %d", &tid, &next, &pc); err != nil {
			return nil, fmt.Errorf("bad end frame %q: %v", ln, err)
		}
		m.fEnd = fEndCycle{os: os, t: s.taskOrNil(tid), next: Time(next), pc: pc}
		return &m.fEnd, nil
	case "tw":
		var dur, remaining, start int64
		var pc int
		if _, err := fmt.Sscanf(ln, "f tw %d %d %d %d", &dur, &remaining, &start, &pc); err != nil {
			return nil, fmt.Errorf("bad tw frame %q: %v", ln, err)
		}
		m.fTW = fTimeWait{os: os, d: Time(dur), remaining: Time(remaining), start: Time(start), pc: pc}
		return &m.fTW, nil
	case "wdis":
		var tid, pc int
		if _, err := fmt.Sscanf(ln, "f wdis %d %d", &tid, &pc); err != nil {
			return nil, fmt.Errorf("bad wdis frame %q: %v", ln, err)
		}
		m.fWD = fWaitDispatched{os: os, t: s.taskOrNil(tid), pc: pc}
		return &m.fWD, nil
	case "yld":
		var tid int
		if _, err := fmt.Sscanf(ln, "f yld %d", &tid); err != nil {
			return nil, fmt.Errorf("bad yld frame %q: %v", ln, err)
		}
		m.fY = fYieldCPU{os: os, t: s.taskOrNil(tid)}
		return &m.fY, nil
	case "dec":
		m.fDec = fDecideFrom{os: os}
		return &m.fDec, nil
	case "ew", "en":
		var ix int
		if _, err := fmt.Sscanf(ln, "f "+tag+" %d", &ix); err != nil {
			return nil, fmt.Errorf("bad %s frame %q: %v", tag, ln, err)
		}
		evs := s.osEventList()
		if ix < 0 || ix >= len(evs) {
			return nil, fmt.Errorf("os event index %d out of range (%d)", ix, len(evs))
		}
		if tag == "ew" {
			m.fEW = fEventWait{os: os, e: evs[ix]}
			return &m.fEW, nil
		}
		m.fEN = fEventNotify{os: os, e: evs[ix]}
		return &m.fEN, nil
	case "sus":
		var ws int
		var site string
		if _, err := fmt.Sscanf(ln, "f sus %d %q", &ws, &site); err != nil {
			return nil, fmt.Errorf("bad sus frame %q: %v", ln, err)
		}
		m.fSus = fSuspend{os: os, ws: core.TaskState(ws), site: site}
		return &m.fSus, nil
	case "res":
		var tid int
		if _, err := fmt.Sscanf(ln, "f res %d", &tid); err != nil {
			return nil, fmt.Errorf("bad res frame %q: %v", ln, err)
		}
		m.fRes = fResume{os: os, t: s.taskOrNil(tid)}
		return &m.fRes, nil
	case "op":
		var kind, pc, tid int
		var ref string
		var v, ret int64
		if _, err := fmt.Sscanf(ln, "f op %d %s %d %d %d %d", &kind, &ref, &v, &ret, &tid, &pc); err != nil {
			return nil, fmt.Errorf("bad op frame %q: %v", ln, err)
		}
		m.fOp = opFrame{kind: opKind(kind), v: v, ret: ret, t: s.taskOrNil(tid), pc: pc}
		var cix int
		if _, err := fmt.Sscanf(ref[1:], "%d", &cix); err != nil {
			return nil, fmt.Errorf("bad op channel ref %q", ref)
		}
		switch ref[0] {
		case 'q':
			if cix < 0 || cix >= len(qs) {
				return nil, fmt.Errorf("op queue index %d out of range (%d)", cix, len(qs))
			}
			m.fOp.q = qs[cix]
		case 's':
			if cix < 0 || cix >= len(ss) {
				return nil, fmt.Errorf("op semaphore index %d out of range (%d)", cix, len(ss))
			}
			m.fOp.s = ss[cix]
		default:
			return nil, fmt.Errorf("bad op channel ref %q", ref)
		}
		return &m.fOp, nil
	default:
		return nil, fmt.Errorf("unknown frame tag %q", tag)
	}
}

// --- line codec ---

type snapEncoder struct{ b bytes.Buffer }

func (e *snapEncoder) line(format string, args ...interface{}) {
	fmt.Fprintf(&e.b, format, args...)
	e.b.WriteByte('\n')
}

func (e *snapEncoder) ints(tag string, vals []int) {
	fmt.Fprintf(&e.b, "%s %d", tag, len(vals))
	for _, v := range vals {
		fmt.Fprintf(&e.b, " %d", v)
	}
	e.b.WriteByte('\n')
}

func (e *snapEncoder) ints64(tag string, vals []int64) {
	fmt.Fprintf(&e.b, "%s %d", tag, len(vals))
	for _, v := range vals {
		fmt.Fprintf(&e.b, " %d", v)
	}
	e.b.WriteByte('\n')
}

type snapDecoder struct {
	lines []string
	pos   int
}

func (d *snapDecoder) next() (string, error) {
	for d.pos < len(d.lines) {
		ln := d.lines[d.pos]
		d.pos++
		if ln != "" {
			return ln, nil
		}
	}
	return "", fmt.Errorf("snapshot truncated at line %d", d.pos)
}

func (d *snapDecoder) expect(want string) error {
	ln, err := d.next()
	if err != nil {
		return err
	}
	if ln != want {
		return fmt.Errorf("snapshot line %d: got %q, want %q", d.pos, ln, want)
	}
	return nil
}

func (d *snapDecoder) scan(format string, args ...interface{}) error {
	ln, err := d.next()
	if err != nil {
		return err
	}
	n, err := fmt.Sscanf(ln, format, args...)
	if err != nil || n != len(args) {
		return fmt.Errorf("snapshot line %d %q does not match %q: %v", d.pos, ln, format, err)
	}
	return nil
}

func (d *snapDecoder) intsParse(tag string) ([]int64, error) {
	ln, err := d.next()
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(ln)
	if len(fields) < 2 || fields[0] != tag {
		return nil, fmt.Errorf("snapshot line %d %q: want %q list", d.pos, ln, tag)
	}
	var n int
	if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n != len(fields)-2 {
		return nil, fmt.Errorf("snapshot line %d %q: bad %q list length", d.pos, ln, tag)
	}
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		if _, err := fmt.Sscanf(fields[i+2], "%d", &out[i]); err != nil {
			return nil, fmt.Errorf("snapshot line %d %q: bad int %q", d.pos, ln, fields[i+2])
		}
	}
	return out, nil
}

func (d *snapDecoder) ints(tag string) ([]int, error) {
	v64, err := d.intsParse(tag)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(v64))
	for i, v := range v64 {
		out[i] = int(v)
	}
	return out, nil
}

func (d *snapDecoder) ints64(tag string) ([]int64, error) {
	return d.intsParse(tag)
}
