// Package rtc is the run-to-completion execution engine: an alternative
// to the goroutine-per-process simulation kernel (internal/sim +
// internal/core) in which delay-annotated behaviors compile to resumable
// frame lists executed to completion on a single goroutine. A context
// switch is a method return plus an index increment — zero channel
// operations — while every scheduling decision, accounting rule, and
// trace record mirrors the goroutine kernel byte for byte (pinned by
// internal/simcheck's engine-equivalence suite). Timers run on the
// hierarchical timing wheel shared with the goroutine kernel
// (internal/timewheel), which fires in the same (deadline, sequence)
// order as the default binary heap.
package rtc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/personality"
	"repro/internal/trace"
)

// Op is one step of an aperiodic task body or a hierarchical behavior.
// Flat task bodies (TaskDef.Ops) use the first five kinds; behavior
// statement lists (BehaviorDef.Stmts) additionally use "signal",
// "waitsig", "marker" and "repeat" — the SDL statement set.
type Op struct {
	Kind  string // "delay", "send", "recv", "acquire", "release", "signal", "waitsig", "marker", "repeat"
	Dur   Time   // delay duration
	Ch    string // channel name for channel-using ops
	Value int64  // send payload / marker argument
	Label string // marker label
	Count int    // repeat count
	Body  []Op   // repeat body
}

// BehaviorDef is one node of a hierarchical (SDL) workload: a leaf
// statement list or a sequential/parallel composition of previously
// declared behaviors. Present only when Workload.Top is set.
type BehaviorDef struct {
	Name     string
	Kind     string   // "leaf", "seq", "par"
	Stmts    []Op     // leaf body
	Children []string // seq/par children, in execution order
}

// TaskDef describes one task of a workload (the engine-level mirror of
// simcheck.TaskSpec, plus Repeat for benchmark loops).
type TaskDef struct {
	Name     string
	Type     string // "periodic" or "aperiodic"
	Prio     int
	Period   Time   // periodic
	Cycles   int    // periodic; 0 runs forever on a daemon machine
	Segments []Time // periodic: per-cycle compute segments
	Start    Time   // aperiodic: release offset
	Ops      []Op   // aperiodic body
	Repeat   int    // aperiodic: run Ops this many times (0/1 = once)
}

// ChannelDef describes a communication object: kind "queue" (Arg =
// capacity), "semaphore" (Arg = initial count), or "handshake" (a
// latched signal; hierarchical workloads only).
type ChannelDef struct {
	Name string
	Kind string
	Arg  int
}

// IRQDef describes an interrupt source that releases a semaphore.
type IRQDef struct {
	Name  string
	Sem   string
	At    Time
	Every Time
	Count int
}

// Workload is a complete single-PE scenario for the engine. Two shapes
// are supported:
//
//   - flat (Top == ""): Tasks are the task set, each with its own body;
//     IRQs run simcheck's merged stimulus+ISR process.
//   - hierarchical (Top != ""): Behaviors/Top describe an SDL behavior
//     tree whose root becomes the PE's main task and whose par children
//     fork tasks at runtime (refine.RunArchitecture's protocol); Tasks
//     then act as the refinement mapping (TaskDef.Name names a behavior;
//     unmapped behaviors default to aperiodic priority 100+order), and
//     IRQs elaborate as split stimulus and ISR machines, the SDL
//     architecture model's shape.
type Workload struct {
	Name           string // PE name; defaults to "PE"
	Policy         string
	Quantum        Time
	TimeModel      core.TimeModel
	Personality    string // "", "generic", "itron", "osek"
	Tasks          []TaskDef
	Channels       []ChannelDef
	IRQs           []IRQDef
	Behaviors      []BehaviorDef // hierarchical workloads
	Top            string        // root behavior; selects hierarchical mode
	WatchdogWindow Time
	Horizon        Time
	Trace          bool
}

// TaskResult is one task's outcome, directly comparable with the
// goroutine engine's per-task fields.
type TaskResult struct {
	Name        string
	Prio        int
	Terminated  bool
	Activations int
	Missed      int
	CPUTime     Time
	MaxResp     Time
}

// Result is a completed (or failed) run.
type Result struct {
	Err          error
	End          Time
	Records      []trace.Record
	Stats        core.Stats
	Tasks        []TaskResult
	Diag         *core.DiagnosisError
	Conservation error
	Personality  string
}

// Run executes the workload to its horizon and returns the outcome.
// Configuration errors are reported via Result.Err, like the goroutine
// engine's harness. Run is NewSession + RunUntil + Finish with the
// Session kept on the stack, so the one-shot path stays allocation-
// identical to the pre-Session engine (the simbench alloc gate pins it).
func Run(w Workload) *Result {
	var s Session
	if err := s.init(w); err != nil {
		res := &Result{Err: err}
		if personality.Valid(w.Personality) {
			pers := w.Personality
			if pers == "" {
				pers = "generic"
			}
			res.Personality = pers
		}
		return res
	}
	s.RunUntil(w.Horizon)
	return s.Finish()
}

// bodyOp is a resolved Op with its channel bound. For the generic
// personality the concrete channel is also kept (gq/gs) so the body can
// run the non-blocking halves of each primitive inline — same observable
// sequence, no opFrame dispatch; blocking paths fall back to the frame
// and keep their stack shapes (and so the snapshot layout) unchanged.
type bodyOp struct {
	kind opKind
	del  bool
	dur  Time
	gq   *genQueue
	gs   *genSem
	q    rQueue
	s    rSem
}

func bindOps(ops []Op, queues map[string]rQueue, sems map[string]rSem) ([]bodyOp, error) {
	out := make([]bodyOp, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case "delay":
			out[i] = bodyOp{del: true, dur: op.Dur}
		case "send", "recv":
			q, ok := queues[op.Ch]
			if !ok {
				return nil, fmt.Errorf("rtc: op %q references unknown queue %q", op.Kind, op.Ch)
			}
			k := opSend
			if op.Kind == "recv" {
				k = opRecv
			}
			out[i] = bodyOp{kind: k, q: q}
			out[i].gq, _ = q.(*genQueue)
		case "acquire", "release":
			s, ok := sems[op.Ch]
			if !ok {
				return nil, fmt.Errorf("rtc: op %q references unknown semaphore %q", op.Kind, op.Ch)
			}
			k := opAcquire
			if op.Kind == "release" {
				k = opRelease
			}
			out[i] = bodyOp{kind: k, s: s}
			out[i].gs, _ = s.(*genSem)
		default:
			return nil, fmt.Errorf("rtc: unknown op kind %q", op.Kind)
		}
	}
	return out, nil
}

// fPeriodicBody is the harness body for a periodic task: activate, then
// per cycle run the compute segments, track the worst response time, and
// end the cycle — the same loop simcheck's goroutine harness runs.
type fPeriodicBody struct {
	os       *osState
	t        *task
	segments []Time
	cycles   int // 0 = forever
	c        int
	segIx    int
	rel      Time
	resp     Time
	pc       int
}

func (f *fPeriodicBody) step(m *machine) status {
	os := f.os
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			return m.callActivate(f.t, os)
		case 1: // cycle head
			if f.cycles > 0 && f.c >= f.cycles {
				os.taskTerminate(m)
				return statDone
			}
			f.rel = f.t.release
			f.segIx = 0
			f.pc = 2
		case 2: // segments
			if f.segIx < len(f.segments) {
				d := f.segments[f.segIx]
				f.segIx++
				return m.callTimeWait(d, os)
			}
			if done := f.t.lastWorkDone; done > f.rel && done-f.rel > f.resp {
				f.resp = done - f.rel
			}
			f.c++
			f.pc = 1
			return m.callEndCycle(os)
		}
	}
}

// fAperiodicBody is the harness body for an aperiodic task: optional
// start delay, activate, run the op list (Repeat times), terminate.
type fAperiodicBody struct {
	os     *osState
	t      *task
	start  Time
	ops    []bodyOp
	repeat int
	rep    int
	opIx   int
	pc     int
}

func (f *fAperiodicBody) step(m *machine) status {
	os := f.os
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			if f.start > 0 {
				m.sleep(f.start)
				return statBlocked
			}
		case 1:
			f.pc = 2
			return m.callActivate(f.t, os)
		case 2:
			if f.opIx < len(f.ops) {
				op := &f.ops[f.opIx]
				f.opIx++
				if op.del {
					return m.callTimeWait(op.dur, os)
				}
				switch op.kind {
				case opSend:
					if gq := op.gq; gq != nil && len(gq.buf) < gq.capacity {
						gq.buf = append(gq.buf, 1)
						return m.callEventNotify(gq.cond, os)
					}
					return m.callSend(op.q, 1)
				case opRecv:
					if gq := op.gq; gq != nil && len(gq.buf) > 0 {
						gq.buf = gq.buf[1:]
						return m.callEventNotify(gq.cond, os)
					}
					return m.callRecv(op.q)
				case opAcquire:
					if gs := op.gs; gs != nil && gs.count > 0 {
						gs.count--
						gs.res.acquire(m)
						continue
					}
					return m.callAcquire(op.s)
				default:
					if gs := op.gs; gs != nil {
						gs.count++
						gs.res.release(m)
						return m.callEventNotify(gs.cond, os)
					}
					return m.callRelease(op.s)
				}
			}
			if f.rep+1 < f.repeat {
				f.rep++
				f.opIx = 0
				continue
			}
			os.taskTerminate(m)
			return statDone
		}
	}
}

// fIRQBody is simcheck's interrupt-source process: at At (and then
// every Every), enter the ISR, release the semaphore, return.
type fIRQBody struct {
	os    *osState
	name  string
	sem   rSem
	at    Time
	every Time
	count int
	i     int
	pc    int
}

func (f *fIRQBody) step(m *machine) status {
	os := f.os
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			m.sleep(f.at)
			return statBlocked
		case 1: // firing loop head
			if f.i >= f.count {
				return statDone
			}
			f.pc = 2
			if f.i > 0 {
				m.sleep(f.every)
				return statBlocked
			}
		case 2: // InterruptEnter + semaphore release
			os.emitIRQ(f.name, true)
			f.pc = 3
			return m.callRelease(f.sem)
		case 3: // InterruptReturn
			os.stats.IRQs++
			os.emitIRQ(f.name, false)
			f.pc = 4
			return m.callDecide(os)
		case 4:
			f.i++
			f.pc = 1
		}
	}
}
