package rtc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/personality"
)

// Session is a workload instantiated on the engine but not (fully) run:
// the checkpointable form of Run. Build one with NewSession, advance it
// with RunUntil (possibly in several steps), capture or fork it with
// Snapshot/Restore, and assemble the final Result with Finish. Run is
// exactly NewSession + RunUntil(Horizon) + Finish, so partial runs and
// restored runs share every code path with the one-shot harness.
type Session struct {
	w    Workload
	name string
	pers string

	k      *kernel
	os     *osState
	tasks  []*task
	bodies []frame
	queues map[string]rQueue
	sems   map[string]rSem
	hss    map[string]*rHandshake

	err error
}

// NewSession builds the workload's kernel, OS state, channels, tasks and
// daemon machines without running anything. Configuration errors that Run
// reports via Result.Err are returned directly.
func NewSession(w Workload) (*Session, error) {
	s := &Session{}
	if err := s.init(w); err != nil {
		return nil, err
	}
	return s, nil
}

// init is the construction phase of the original Run, verbatim: the
// declaration/spawn order fixes task ids, resource order, and the
// time-zero activation order, all of which the engine-equivalence suite
// pins against the goroutine kernel.
func (s *Session) init(w Workload) error {
	name := w.Name
	if name == "" {
		name = "PE"
	}
	pers := w.Personality
	if pers == "" {
		pers = "generic"
	}
	if !personality.Valid(w.Personality) {
		return fmt.Errorf("rtc: unknown personality %q", w.Personality)
	}
	s.w, s.name, s.pers = w, name, pers

	k := newKernel()
	os := newOSState(k, name)
	os.tmodel = w.TimeModel
	os.tracing = w.Trace
	kind, preemptive, slice, err := policyByName(w.Policy, w.Quantum)
	if err != nil {
		return err
	}
	os.polKind, os.preemptive, os.quantum = kind, preemptive, slice
	if pers == "osek" {
		os.frontReinsert = true
	}
	s.k, s.os = k, os

	// Channels in declaration order (resource order feeds findCycle).
	// The maps stay nil for channel-free workloads: stored in the Session
	// they must live on the heap, and the scheduler-only hot path (pinned
	// by the simbench alloc gate) should not pay two map allocations for
	// channels it doesn't have. Lookups on the nil maps still miss cleanly.
	var queues map[string]rQueue
	var sems map[string]rSem
	var hss map[string]*rHandshake
	if len(w.Channels) > 0 {
		queues = map[string]rQueue{}
		sems = map[string]rSem{}
		hss = map[string]*rHandshake{}
	}
	for _, c := range w.Channels {
		switch c.Kind {
		case "queue":
			switch pers {
			case "itron":
				queues[c.Name] = newItronMailbox(os, c.Name)
			case "osek":
				queues[c.Name] = newOsekQueue(os, c.Name, c.Arg)
			default:
				queues[c.Name] = newGenQueue(os, c.Name, c.Arg)
			}
		case "semaphore":
			switch pers {
			case "itron":
				sems[c.Name] = newItronSem(os, c.Name, c.Arg)
			case "osek":
				sems[c.Name] = newOsekSem(os, c.Name, c.Arg)
			default:
				sems[c.Name] = newGenSem(os, c.Name, c.Arg)
			}
		case "handshake":
			hss[c.Name] = newRHandshake(os, c.Name)
		default:
			return fmt.Errorf("rtc: unknown channel kind %q", c.Kind)
		}
	}
	s.queues, s.sems, s.hss = queues, sems, hss

	// Hierarchical (SDL) workloads elaborate a behavior tree instead of a
	// flat task set; see initHier.
	if w.Top != "" {
		if err := s.initHier(w); err != nil {
			return err
		}
		if w.WatchdogWindow > 0 {
			body := &fWatchdogBody{os: os, window: w.WatchdogWindow, last: ^uint64(0)}
			k.spawn("watchdog:"+name, body, true)
		}
		os.start()
		return nil
	}

	// Tasks: create all control blocks first (ids fix diagnosis order),
	// then spawn their machines in the same order the goroutine harness
	// spawns processes.
	bodies := make([]frame, len(w.Tasks))
	tasks := make([]*task, len(w.Tasks))
	for i, td := range w.Tasks {
		switch td.Type {
		case "periodic":
			t := os.newTask(td.Name, core.Periodic, td.Period, td.Prio)
			tasks[i] = t
			bodies[i] = &fPeriodicBody{os: os, t: t, segments: td.Segments, cycles: td.Cycles}
		case "aperiodic":
			t := os.newTask(td.Name, core.Aperiodic, 0, td.Prio)
			tasks[i] = t
			ops, err := bindOps(td.Ops, queues, sems)
			if err != nil {
				return err
			}
			repeat := td.Repeat
			if repeat < 1 {
				repeat = 1
			}
			bodies[i] = &fAperiodicBody{os: os, t: t, start: td.Start, ops: ops, repeat: repeat}
		default:
			return fmt.Errorf("rtc: unknown task type %q", td.Type)
		}
	}
	for i, td := range w.Tasks {
		daemon := td.Type == "periodic" && td.Cycles == 0
		m := k.spawn(td.Name, bodies[i], daemon)
		m.task = tasks[i]
	}
	for _, irq := range w.IRQs {
		sem, ok := sems[irq.Sem]
		if !ok {
			return fmt.Errorf("rtc: irq %q releases unknown semaphore %q", irq.Name, irq.Sem)
		}
		body := &fIRQBody{os: os, name: irq.Name, sem: sem,
			at: irq.At, every: irq.Every, count: irq.Count}
		k.spawn("irq:"+irq.Name, body, true)
	}
	if w.WatchdogWindow > 0 {
		body := &fWatchdogBody{os: os, window: w.WatchdogWindow, last: ^uint64(0)}
		k.spawn("watchdog:"+name, body, true)
	}
	s.tasks, s.bodies = tasks, bodies

	os.start()
	return nil
}

// Now returns the session's current simulated time.
func (s *Session) Now() Time { return s.k.now }

// Err returns the first simulation error observed by RunUntil.
func (s *Session) Err() error { return s.err }

// RunUntil advances the simulation up to and including limit (inclusive,
// like sim.Kernel.RunUntil); a later call with a larger limit resumes it.
// The first error (deadlock, watchdog diagnosis) sticks.
func (s *Session) RunUntil(limit Time) error {
	if s.err != nil {
		return s.err
	}
	if err := s.k.runUntil(limit); err != nil {
		s.err = err
	}
	return s.err
}

// Finish assembles the Result exactly as Run does after its horizon is
// reached. The session can keep running (RunUntil with a later limit)
// after a Finish: the result is a snapshot of the current state.
func (s *Session) Finish() *Result {
	res := &Result{Personality: s.pers}
	res.Err = s.err
	res.End = s.k.now
	res.Records = s.os.recs
	res.Stats = s.os.stats
	res.Diag = s.os.diagnosis
	if res.Diag == nil {
		res.Diag = s.os.diagnoseStall()
	}
	res.Conservation = s.os.checkConservation()
	for i, t := range s.tasks {
		tr := TaskResult{
			Name:        t.name,
			Prio:        t.prio,
			Terminated:  t.state == core.TaskTerminated,
			Activations: t.activations,
			Missed:      t.missed,
			CPUTime:     t.cpuTime,
		}
		if pb, ok := s.bodies[i].(*fPeriodicBody); ok {
			tr.MaxResp = pb.resp
		}
		res.Tasks = append(res.Tasks, tr)
	}
	return res
}
