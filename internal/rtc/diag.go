package rtc

import (
	"sort"

	"repro/internal/core"
)

// monitor is core.Monitor ported to engine tasks: the wait-for graph
// feeding deadlock/stall/starvation diagnosis. It produces the same
// *core.DiagnosisError values as the goroutine kernel, so callers
// compare diagnoses across engines directly.
type monitor struct {
	os        *osState
	resources []*resource
}

func newMonitor(os *osState) *monitor {
	return &monitor{os: os}
}

// holderCount is one task's hold count on a resource. Resources hold at
// most a couple of tasks at a time, so an intrusive slice plus linear
// scan replaces the goroutine kernel's map — same observable state (a
// set of distinct tasks with counts), none of the hashing on the
// block/unblock hot path.
type holderCount struct {
	t *task
	n int
}

// resource is one node class of the wait-for graph. The engine's
// workloads only build non-exclusive resources (queues, semaphores,
// mailboxes), so the exclusive-ownership immediate cycle check of the
// goroutine kernel has no counterpart here.
type resource struct {
	mon     *monitor
	name    string
	kind    string
	holders []holderCount
}

func (mon *monitor) newResource(name, kind string) *resource {
	r := &resource{mon: mon, name: name, kind: kind}
	mon.resources = append(mon.resources, r)
	return r
}

func (r *resource) site() string { return r.kind + ":" + r.name }

// The four bookkeeping calls mirror core.Resource exactly; calls from
// machines without a task (ISRs, the watchdog) are no-ops. The waiting
// map of the goroutine monitor becomes an intrusive task field.

func (r *resource) block(m *machine) {
	if t := m.task; t != nil {
		t.waitingRes = r
	}
}

func (r *resource) unblock(m *machine) {
	if t := m.task; t != nil {
		t.waitingRes = nil
	}
}

func (r *resource) acquire(m *machine) {
	if t := m.task; t != nil {
		t.waitingRes = nil
		for i := range r.holders {
			if r.holders[i].t == t {
				r.holders[i].n++
				return
			}
		}
		r.holders = append(r.holders, holderCount{t: t, n: 1})
	}
}

func (r *resource) release(m *machine) {
	if t := m.task; t != nil {
		for i := range r.holders {
			if r.holders[i].t == t {
				if r.holders[i].n > 1 {
					r.holders[i].n--
				} else {
					last := len(r.holders) - 1
					r.holders[i] = r.holders[last]
					r.holders = r.holders[:last]
				}
				return
			}
		}
	}
}

func (r *resource) soleHolder() *task {
	if len(r.holders) != 1 {
		return nil
	}
	return r.holders[0].t
}

func (r *resource) sortedHolders() []*task {
	hs := make([]*task, 0, len(r.holders))
	for _, h := range r.holders {
		if h.t.state.Alive() {
			hs = append(hs, h.t)
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].id < hs[j].id })
	return hs
}

func isBlockedState(s core.TaskState) bool {
	switch s {
	case core.TaskWaitingEvent, core.TaskWaitingMutex, core.TaskWaitingChildren, core.TaskSuspended:
		return true
	}
	return false
}

func blockReasonFor(s core.TaskState) core.BlockReason {
	switch s {
	case core.TaskWaitingEvent:
		return core.BlockEvent
	case core.TaskWaitingMutex:
		return core.BlockMutex
	case core.TaskWaitingChildren:
		return core.BlockChildren
	case core.TaskWaitingPeriod:
		return core.BlockPeriod
	case core.TaskSuspended:
		return core.BlockSleep
	default:
		return core.BlockNone
	}
}

func canonicalCycle(cyc []core.WaitEdge) []core.WaitEdge {
	if len(cyc) == 0 {
		return cyc
	}
	min := 0
	for i := range cyc {
		if cyc[i].Task < cyc[min].Task {
			min = i
		}
	}
	return append(append([]core.WaitEdge(nil), cyc[min:]...), cyc[:min]...)
}

// findCycle is core.Monitor.findCycle: a deterministic DFS over the
// wait-for graph; a circular wait must span at least two distinct
// resources to count.
func (mon *monitor) findCycle() []core.WaitEdge {
	color := make(map[*task]int)
	var stack []*task
	var edges []core.WaitEdge
	var cycle []core.WaitEdge

	blockedOn := func(t *task) *resource {
		if !t.state.Alive() || !isBlockedState(t.state) {
			return nil
		}
		return t.waitingRes
	}
	var dfs func(t *task) bool
	dfs = func(t *task) bool {
		color[t] = 1
		stack = append(stack, t)
		defer func() {
			stack = stack[:len(stack)-1]
			color[t] = 2
		}()
		r := blockedOn(t)
		if r == nil {
			return false
		}
		for _, h := range r.sortedHolders() {
			if h == t {
				continue // self-hold (signal-style semaphore use)
			}
			e := core.WaitEdge{Task: t.name, Resource: r.site(), Holder: h.name}
			if color[h] == 1 {
				idx := 0
				for i, s := range stack {
					if s == h {
						idx = i
						break
					}
				}
				cycle = append(append([]core.WaitEdge(nil), edges[idx:]...), e)
				return true
			}
			if color[h] == 0 && blockedOn(h) != nil {
				edges = append(edges, e)
				if dfs(h) {
					return true
				}
				edges = edges[:len(edges)-1]
			}
		}
		return false
	}
	for _, t := range mon.os.tasks {
		if color[t] == 0 && blockedOn(t) != nil {
			if dfs(t) {
				break
			}
		}
	}
	if len(cycle) == 0 {
		return nil
	}
	distinct := map[string]bool{}
	for _, e := range cycle {
		distinct[e.Resource] = true
	}
	if len(distinct) < 2 {
		return nil
	}
	return canonicalCycle(cycle)
}

// diagnoseStall is core.OS.diagnoseStall: nil when no alive task is
// blocked on a peer, otherwise a stall report upgraded to a deadlock
// when the wait-for graph has a cycle.
func (os *osState) diagnoseStall() *core.DiagnosisError {
	var blocked []core.WaitEdge
	for _, t := range os.tasks {
		if !t.state.Alive() || !isBlockedState(t.state) {
			continue
		}
		if t.mach != nil && t.mach.daemon {
			continue
		}
		e := core.WaitEdge{Task: t.name, Resource: os.blockSiteOf(t)}
		if r := t.waitingRes; r != nil {
			if h := r.soleHolder(); h != nil && h != t {
				e.Holder = h.name
			}
		}
		blocked = append(blocked, e)
	}
	if len(blocked) == 0 {
		return nil
	}
	d := &core.DiagnosisError{PE: os.name, Kind: core.DiagStall, At: os.k.now, Blocked: blocked}
	if cyc := os.monitor.findCycle(); len(cyc) > 0 {
		d.Kind = core.DiagDeadlock
		d.Cycle = cyc
	}
	return d
}

func (os *osState) blockSiteOf(t *task) string {
	if r := t.waitingRes; r != nil {
		return r.site()
	}
	if t.blockSite != "" && t.state == core.TaskWaitingEvent {
		return t.blockSite
	}
	return blockReasonFor(t.state).String()
}

func (os *osState) allTasksDone() bool {
	if len(os.tasks) == 0 {
		return false
	}
	for _, t := range os.tasks {
		if t.state.Alive() {
			return false
		}
	}
	return true
}

// watchdogDiagnose is core.OS.watchdogDiagnose: classify a
// progress-free window as a hidden stall or a starvation.
func (os *osState) watchdogDiagnose(window Time) *core.DiagnosisError {
	if len(os.ready) == 0 && os.current == nil && os.k.pendingTimers() == 0 {
		return os.diagnoseStall()
	}
	if len(os.ready) > 0 {
		d := &core.DiagnosisError{PE: os.name, Kind: core.DiagStarvation,
			At: os.k.now, Window: window}
		holder := ""
		if os.current != nil {
			holder = os.current.name
		}
		for _, t := range os.tasks {
			if t.state == core.TaskReady {
				d.Blocked = append(d.Blocked,
					core.WaitEdge{Task: t.name, Resource: "cpu", Holder: holder})
			}
		}
		return d
	}
	return nil
}

// fWatchdogBody is core.OS.EnableWatchdog's daemon loop as a machine
// body: its periodic timer keeps firing (and so keeps advancing
// simulated time) until every task terminates, exactly like the
// goroutine watchdog — which is what makes End times match.
type fWatchdogBody struct {
	os       *osState
	window   Time
	last     uint64
	starving bool
	pc       int
}

func (f *fWatchdogBody) step(m *machine) status {
	os := f.os
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			m.sleep(f.window)
			return statBlocked
		case 1:
			if os.allTasksDone() {
				return statDone
			}
			cur := os.progress
			if cur != f.last {
				f.last, f.starving = cur, false
				f.pc = 0
				continue
			}
			d := os.watchdogDiagnose(f.window)
			if d == nil {
				f.starving = false
				f.pc = 0
				continue
			}
			if d.Kind == core.DiagStarvation && !f.starving {
				f.starving = true
				f.pc = 0
				continue
			}
			os.recordDiagnosis(d)
			os.k.fail(d)
			return statDone
		}
	}
}
