package rtc

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// snapWorkloads is a matrix of workloads covering every frame type,
// channel implementation, and personality the snapshot codec must carry.
func snapWorkloads() map[string]Workload {
	ms := sim.Millisecond
	us := sim.Microsecond
	periodicMix := func(pol string, q Time, tm core.TimeModel, pers string) Workload {
		return Workload{
			Policy: pol, Quantum: q, TimeModel: tm, Personality: pers,
			Trace:   true,
			Horizon: 40 * ms,
			Tasks: []TaskDef{
				{Name: "fast", Type: "periodic", Prio: 1, Period: 4 * ms, Segments: []Time{600 * us, 300 * us}},
				{Name: "mid", Type: "periodic", Prio: 2, Period: 6 * ms, Segments: []Time{900 * us}},
				{Name: "slow", Type: "periodic", Prio: 3, Period: 10 * ms, Cycles: 3, Segments: []Time{1500 * us}},
			},
		}
	}
	channelMix := func(pers string) Workload {
		return Workload{
			Policy: "priority", Personality: pers, Trace: true,
			Horizon: 30 * ms,
			Channels: []ChannelDef{
				{Name: "q", Kind: "queue", Arg: 2},
				{Name: "s", Kind: "semaphore", Arg: 0},
			},
			Tasks: []TaskDef{
				{Name: "prod", Type: "aperiodic", Prio: 2, Repeat: 6, Ops: []Op{
					{Kind: "delay", Dur: 500 * us},
					{Kind: "send", Ch: "q"},
				}},
				{Name: "cons", Type: "aperiodic", Prio: 1, Repeat: 6, Ops: []Op{
					{Kind: "recv", Ch: "q"},
					{Kind: "delay", Dur: 800 * us},
				}},
				{Name: "isr-bh", Type: "aperiodic", Prio: 0, Repeat: 3, Ops: []Op{
					{Kind: "acquire", Ch: "s"},
					{Kind: "delay", Dur: 200 * us},
				}},
			},
			IRQs: []IRQDef{{Name: "nic", Sem: "s", At: 3 * ms, Every: 7 * ms, Count: 3}},
		}
	}
	// timerBatch parks three zero-compute tick tasks on the SAME
	// next-release instant. The wheel part stays empty, so every re-push
	// re-arms the front slot and its same-instant successors batch onto
	// it: at any instant strictly inside a period the timewheel front
	// slot holds a three-entry wake batch — the fast-path state the
	// snapshot codec must carry (see timewheel.FastLen).
	timerBatch := func() Workload {
		return Workload{
			Policy: "priority", Trace: true,
			Horizon: 40 * ms,
			Tasks: []TaskDef{
				{Name: "b0", Type: "periodic", Prio: 1, Period: 8 * ms},
				{Name: "b1", Type: "periodic", Prio: 2, Period: 8 * ms},
				{Name: "b2", Type: "periodic", Prio: 3, Period: 8 * ms},
			},
		}
	}
	// timerOneshot adds a short-period tick ahead of the batch: at t=0 the
	// lone task (highest priority, so first to re-push) arms the one-shot
	// earliest-deadline slot while the trio's timers land in the wheel
	// part behind it.
	timerOneshot := func() Workload {
		w := timerBatch()
		w.Tasks = append([]TaskDef{
			{Name: "lone", Type: "periodic", Prio: 0, Period: 3 * ms},
		}, w.Tasks...)
		return w
	}
	return map[string]Workload{
		"priority-coarse":  periodicMix("priority", 0, core.TimeModelCoarse, ""),
		"rm-segmented":     periodicMix("rm", 0, core.TimeModelSegmented, ""),
		"rr-segmented":     periodicMix("rr", 2*ms, core.TimeModelSegmented, ""),
		"edf-coarse":       periodicMix("edf", 0, core.TimeModelCoarse, ""),
		"fifo-itron":       periodicMix("fifo", 0, core.TimeModelCoarse, "itron"),
		"priority-osek":    periodicMix("priority", 0, core.TimeModelSegmented, "osek"),
		"timer-batch":      timerBatch(),
		"timer-oneshot":    timerOneshot(),
		"channels-generic": channelMix(""),
		"channels-itron":   channelMix("itron"),
		"channels-osek":    channelMix("osek"),
		"watchdogged": func() Workload {
			w := periodicMix("priority", 0, core.TimeModelSegmented, "")
			w.WatchdogWindow = 20 * ms
			return w
		}(),
	}
}

// serializeResult flattens a Result into comparable bytes: every trace
// record, the stats, the end time, the error text, and per-task outcomes.
func serializeResult(r *Result) []byte {
	var b bytes.Buffer
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%s\n", rec.String())
	}
	fmt.Fprintf(&b, "stats %+v end %v pers %s\n", r.Stats, r.End, r.Personality)
	fmt.Fprintf(&b, "err %v diag %v cons %v\n", r.Err, r.Diag, r.Conservation)
	for _, tr := range r.Tasks {
		fmt.Fprintf(&b, "task %+v\n", tr)
	}
	return b.Bytes()
}

// TestSnapshotRestoreEquivalence is the engine-level checkpoint oracle:
// snapshot at several instants, restore into a fresh session, run to the
// horizon, and require the full Result byte-identical to the
// uninterrupted run.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for name, w := range snapWorkloads() {
		t.Run(name, func(t *testing.T) {
			want := serializeResult(Run(w))
			for _, num := range []Time{1, 2, 3} {
				at := w.Horizon * num / 4
				s, err := NewSession(w)
				if err != nil {
					t.Fatalf("NewSession: %v", err)
				}
				if err := s.RunUntil(at); err != nil {
					t.Fatalf("RunUntil(%v): %v", at, err)
				}
				cp, err := s.Snapshot()
				if err != nil {
					t.Fatalf("Snapshot at %v: %v", at, err)
				}
				if cp.At != s.Now() || cp.At > at {
					t.Fatalf("checkpoint At = %v, session now %v, limit %v", cp.At, s.Now(), at)
				}
				r, err := Restore(w, cp)
				if err != nil {
					t.Fatalf("Restore at %v: %v", at, err)
				}
				r.RunUntil(w.Horizon)
				if got := serializeResult(r.Finish()); !bytes.Equal(got, want) {
					t.Errorf("restored run at %v diverges from uninterrupted run:\n--- restored\n%s\n--- uninterrupted\n%s",
						at, got, want)
				}
				// The snapshotted session must be unperturbed: finishing it
				// must reproduce the baseline too.
				s.RunUntil(w.Horizon)
				if got := serializeResult(s.Finish()); !bytes.Equal(got, want) {
					t.Errorf("original session diverges after Snapshot at %v", at)
				}
			}
		})
	}
}

// TestSnapshotFastPathArmed pins that a checkpoint taken while the
// timewheel fast path is engaged round-trips it exactly: Restore
// re-pushes timers in (at, seq) order, so the earliest chain re-forms
// the front slot at the same depth, and the continuation stays
// byte-identical. Both fast-path shapes are covered — the multi-entry
// same-instant wake batch and the one-shot earliest timer armed ahead
// of a populated wheel part.
func TestSnapshotFastPathArmed(t *testing.T) {
	ms := sim.Millisecond
	ws := snapWorkloads()
	cases := []struct {
		workload string
		instants []Time
		fastLen  int // required front-slot depth at each instant
		timers   int // required total pending timers
	}{
		// Strictly inside each 8 ms period the trio's next releases sit
		// batched in the front slot and the wheel part is empty.
		{"timer-batch", []Time{10 * ms, 20 * ms, 30 * ms}, 3, 3},
		// Inside (0, 3 ms) the lone tick is armed one-shot with the
		// trio's releases queued behind it in the wheel part.
		{"timer-oneshot", []Time{2 * ms}, 1, 4},
	}
	for _, tc := range cases {
		t.Run(tc.workload, func(t *testing.T) {
			w := ws[tc.workload]
			want := serializeResult(Run(w))
			for _, at := range tc.instants {
				s, err := NewSession(w)
				if err != nil {
					t.Fatalf("NewSession: %v", err)
				}
				if err := s.RunUntil(at); err != nil {
					t.Fatalf("RunUntil(%v): %v", at, err)
				}
				if got := s.k.wheel.FastLen(); got != tc.fastLen {
					t.Fatalf("at %v: front slot holds %d entries, want %d", at, got, tc.fastLen)
				}
				if got := s.k.wheel.Len(); got != tc.timers {
					t.Fatalf("at %v: %d pending timers, want %d", at, got, tc.timers)
				}
				cp, err := s.Snapshot()
				if err != nil {
					t.Fatalf("Snapshot at %v: %v", at, err)
				}
				r, err := Restore(w, cp)
				if err != nil {
					t.Fatalf("Restore at %v: %v", at, err)
				}
				if got := r.k.wheel.FastLen(); got != tc.fastLen {
					t.Fatalf("restored at %v: front slot holds %d entries, want %d", at, got, tc.fastLen)
				}
				if got := r.k.wheel.Len(); got != tc.timers {
					t.Fatalf("restored at %v: %d pending timers, want %d", at, got, tc.timers)
				}
				r.RunUntil(w.Horizon)
				if got := serializeResult(r.Finish()); !bytes.Equal(got, want) {
					t.Errorf("restored run at %v diverges from uninterrupted run:\n--- restored\n%s\n--- uninterrupted\n%s",
						at, got, want)
				}
			}
		})
	}
}

// TestSnapshotDeterministic pins the byte form: two independent sessions
// paused at the same instant produce identical checkpoints, so State can
// double as a state digest.
func TestSnapshotDeterministic(t *testing.T) {
	for name, w := range snapWorkloads() {
		t.Run(name, func(t *testing.T) {
			at := w.Horizon / 2
			var states [][]byte
			for i := 0; i < 2; i++ {
				s, err := NewSession(w)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.RunUntil(at); err != nil {
					t.Fatal(err)
				}
				cp, err := s.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				states = append(states, cp.State)
			}
			if !bytes.Equal(states[0], states[1]) {
				t.Errorf("two sessions at t=%v produced different snapshot bytes", at)
			}
		})
	}
}

// TestSnapshotFork exercises the design-space fork: one shared prefix,
// restored under several policies. The same-policy fork must match the
// uninterrupted run byte for byte; a different policy must still run to
// the horizon cleanly.
func TestSnapshotFork(t *testing.T) {
	base := snapWorkloads()["priority-coarse"]
	s, err := NewSession(base)
	if err != nil {
		t.Fatal(err)
	}
	forkAt := base.Horizon / 3
	if err := s.RunUntil(forkAt); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	same, err := Restore(base, cp)
	if err != nil {
		t.Fatal(err)
	}
	same.RunUntil(base.Horizon)
	if got, want := serializeResult(same.Finish()), serializeResult(Run(base)); !bytes.Equal(got, want) {
		t.Errorf("same-policy fork diverges from uninterrupted run")
	}

	for _, variant := range []struct {
		pol string
		q   Time
	}{{"rr", 2 * sim.Millisecond}, {"fifo", 0}, {"edf", 0}} {
		fw := base
		fw.Policy, fw.Quantum = variant.pol, variant.q
		f, err := Restore(fw, cp)
		if err != nil {
			t.Fatalf("fork to %s: %v", variant.pol, err)
		}
		if err := f.RunUntil(fw.Horizon); err != nil {
			t.Fatalf("fork to %s failed: %v", variant.pol, err)
		}
		res := f.Finish()
		if res.End != fw.Horizon {
			t.Errorf("fork to %s ended at %v, want %v", variant.pol, res.End, fw.Horizon)
		}
		if res.Conservation != nil {
			t.Errorf("fork to %s violates time conservation: %v", variant.pol, res.Conservation)
		}
	}
}

// TestRestoreStructureMismatch: any structural edit must be rejected,
// while the fork knobs (Policy, Quantum, Horizon) must not.
func TestRestoreStructureMismatch(t *testing.T) {
	base := snapWorkloads()["channels-generic"]
	s, err := NewSession(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(base.Horizon / 2); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	perturb := map[string]func(*Workload){
		"task-renamed":    func(w *Workload) { w.Tasks[0].Name = "renamed" },
		"task-dropped":    func(w *Workload) { w.Tasks = w.Tasks[:len(w.Tasks)-1] },
		"op-added":        func(w *Workload) { w.Tasks[0].Ops = append(w.Tasks[0].Ops, Op{Kind: "delay", Dur: 1}) },
		"channel-resized": func(w *Workload) { w.Channels[0].Arg = 9 },
		"irq-shifted":     func(w *Workload) { w.IRQs[0].At += sim.Millisecond },
		"personality":     func(w *Workload) { w.Personality = "itron" },
		"time-model":      func(w *Workload) { w.TimeModel = core.TimeModelSegmented },
		"trace-off":       func(w *Workload) { w.Trace = false },
	}
	for name, mutate := range perturb {
		fw := base
		fw.Tasks = append([]TaskDef(nil), base.Tasks...)
		fw.Channels = append([]ChannelDef(nil), base.Channels...)
		fw.IRQs = append([]IRQDef(nil), base.IRQs...)
		mutate(&fw)
		if _, err := Restore(fw, cp); err == nil {
			t.Errorf("%s: Restore accepted a structurally different workload", name)
		}
	}

	fw := base
	fw.Policy, fw.Quantum, fw.Horizon = "rr", 2*sim.Millisecond, base.Horizon*2
	if _, err := Restore(fw, cp); err != nil {
		t.Errorf("policy/quantum/horizon fork rejected: %v", err)
	}
}

// TestSnapshotRejectsStoppedRun: a failed session has no resumable state.
func TestSnapshotRejectsStoppedRun(t *testing.T) {
	w := Workload{
		Policy:  "priority",
		Horizon: 10 * sim.Millisecond,
		Channels: []ChannelDef{
			{Name: "never", Kind: "semaphore", Arg: 0},
		},
		Tasks: []TaskDef{
			{Name: "stuck", Type: "aperiodic", Prio: 1, Ops: []Op{{Kind: "acquire", Ch: "never"}}},
		},
	}
	s, err := NewSession(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(w.Horizon); err == nil {
		t.Fatal("expected a deadlock error")
	}
	if _, err := s.Snapshot(); err == nil {
		t.Error("Snapshot succeeded on a stopped run")
	}
}
