package rtc

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// polKind is the scheduling policy, re-encoded from core's Policy
// implementations (whose Less operates on *core.Task and therefore
// cannot be reused directly).
type polKind uint8

const (
	polPriority polKind = iota
	polFCFS
	polRR
	polEDF
	polRM
)

// policyByName mirrors core.PolicyByName's name set and errors so the
// engines reject configurations identically.
func policyByName(name string, quantum Time) (polKind, bool, Time, error) {
	switch name {
	case "priority", "prio", "":
		return polPriority, true, 0, nil
	case "fcfs", "fifo":
		return polFCFS, false, 0, nil
	case "rr", "roundrobin":
		if quantum <= 0 {
			return 0, false, 0, fmt.Errorf("rr policy needs a positive quantum")
		}
		return polRR, true, quantum, nil
	case "edf":
		return polEDF, true, 0, nil
	case "rm", "ratemonotonic":
		return polRM, true, 0, nil
	default:
		return 0, false, 0, fmt.Errorf("unknown policy %q", name)
	}
}

// task is the engine's task control block, a port of core.Task with
// machine bindings in place of process bindings.
type task struct {
	id     int
	name   string
	typ    core.TaskType
	period Time
	prio   int

	state core.TaskState
	mach  *machine

	dispatch *event // flushed when the task is dispatched
	preempt  *event // flushed to interrupt a segmented delay

	readySeq     int
	release      Time
	deadline     Time
	sliceUsed    Time
	lastWorkDone Time
	cpuTime      Time
	activations  int
	missed       int
	blockSite    string
	waitingRes   *resource // resource this task is blocked on (wait-for graph)
	msg          int64     // itron mailbox direct-handoff slot
}

// osState is the RTOS model ported to the run-to-completion engine: the
// same scheduler state, ready-queue discipline, accounting, and trace
// emission as core.OS, with each blocking service re-expressed as a
// resumable frame.
type osState struct {
	k    *kernel
	name string

	polKind    polKind
	preemptive bool
	quantum    Time
	tmodel     core.TimeModel

	tasks   []*task
	current *task
	lastRun *task
	ready   []*task // linear ready list (insertion order; pickBest scans)

	seq           int
	frontSeq      int
	frontReinsert bool

	started   bool
	startedAt Time

	idleSince  Time
	idleValid  bool
	delayStart Time
	delayValid bool

	stats    core.Stats
	progress uint64

	tracing bool
	recs    []trace.Record

	monitor   *monitor
	diagnosis *core.DiagnosisError
}

func newOSState(k *kernel, name string) *osState {
	os := &osState{k: k, name: name, tmodel: core.TimeModelCoarse}
	os.monitor = newMonitor(os)
	k.onStall = func() error {
		if d := os.diagnoseStall(); d != nil {
			os.recordDiagnosis(d)
			return d
		}
		return nil
	}
	return os
}

func (os *osState) newTask(name string, typ core.TaskType, period Time, prio int) *task {
	t := &task{
		id:       len(os.tasks),
		name:     name,
		typ:      typ,
		period:   period,
		prio:     prio,
		state:    core.TaskCreated,
		deadline: sim.Forever,
		dispatch: os.k.newEvent(name + ".dispatch"),
		preempt:  os.k.newEvent(name + ".preempt"),
	}
	os.tasks = append(os.tasks, t)
	return t
}

// less mirrors each core policy's Less exactly.
func (os *osState) less(a, b *task) bool {
	switch os.polKind {
	case polFCFS:
		return false
	case polEDF:
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
		return a.prio < b.prio
	default: // priority, rr, rm
		return a.prio < b.prio
	}
}

func (os *osState) slice() Time {
	if os.polKind == polRR {
		return os.quantum
	}
	return 0
}

// assignRM is core's assignRateMonotonic: periodic tasks by period,
// stable; aperiodic tasks keep their relative order after them.
func (os *osState) assignRM() {
	var periodic, aperiodic []*task
	for _, t := range os.tasks {
		if t.typ == core.Periodic {
			periodic = append(periodic, t)
		} else {
			aperiodic = append(aperiodic, t)
		}
	}
	sort.SliceStable(periodic, func(i, j int) bool { return periodic[i].period < periodic[j].period })
	sort.SliceStable(aperiodic, func(i, j int) bool { return aperiodic[i].prio < aperiodic[j].prio })
	n := 0
	for _, t := range periodic {
		t.prio = n
		n++
	}
	for _, t := range aperiodic {
		t.prio = n
		n++
	}
}

func (os *osState) start() {
	if os.polKind == polRM {
		os.assignRM()
	}
	os.started = true
	os.startedAt = os.k.now
	os.idleSince = os.k.now
	os.idleValid = true
}

// --- ready queue (linear discipline, core's SetLinearReady path) ---

// pickBest scans the ready list for the task the policy would dispatch:
// the winner under (less rank, readySeq). One specialized loop per
// policy family keeps the double less() call out of the scan; each loop
// replaces best exactly when less(t,best) || (!less(best,t) && seq<).
func (os *osState) pickBest() *task {
	var best *task
	switch os.polKind {
	case polFCFS:
		for _, t := range os.ready {
			if best == nil || t.readySeq < best.readySeq {
				best = t
			}
		}
	case polEDF:
		for _, t := range os.ready {
			switch {
			case best == nil:
				best = t
			case t.deadline != best.deadline:
				if t.deadline < best.deadline {
					best = t
				}
			case t.prio != best.prio:
				if t.prio < best.prio {
					best = t
				}
			case t.readySeq < best.readySeq:
				best = t
			}
		}
	default: // priority, rr, rm
		for _, t := range os.ready {
			switch {
			case best == nil:
				best = t
			case t.prio != best.prio:
				if t.prio < best.prio {
					best = t
				}
			case t.readySeq < best.readySeq:
				best = t
			}
		}
	}
	return best
}

func (os *osState) removeReady(t *task) {
	// Swap-remove: pickBest selects by (policy rank, readySeq), never by
	// queue position, so compaction order is unobservable.
	for i, r := range os.ready {
		if r == t {
			last := len(os.ready) - 1
			os.ready[i] = os.ready[last]
			os.ready = os.ready[:last]
			return
		}
	}
}

func (os *osState) makeReady(t *task) {
	if !t.state.Alive() {
		return
	}
	os.setState(t, core.TaskReady)
	os.seq++
	t.readySeq = os.seq
	os.ready = append(os.ready, t)
}

// makeReadyPreempted re-queues a preempted task ahead of equal-priority
// peers when the personality requires it (OSEK OS 2.2.3 §4.6.5).
func (os *osState) makeReadyPreempted(t *task) {
	if !os.frontReinsert {
		os.makeReady(t)
		return
	}
	if !t.state.Alive() {
		return
	}
	os.setState(t, core.TaskReady)
	os.frontSeq--
	t.readySeq = os.frontSeq
	os.ready = append(os.ready, t)
}

// --- trace emission (the recorder-attached observer path, inlined) ---

func (os *osState) setState(t *task, s core.TaskState) {
	if t.state == s {
		return
	}
	if !os.tracing {
		t.state = s
		return
	}
	old := t.state
	t.state = s
	os.recs = append(os.recs, trace.Record{
		At: os.k.now, Kind: trace.KindTaskState,
		Task: t.name, From: old.String(), To: s.String(),
	})
}

func (os *osState) emitDispatch(prev, next *task) {
	if !os.tracing {
		return
	}
	name := func(t *task) string {
		if t == nil {
			return "-"
		}
		return t.name
	}
	os.recs = append(os.recs, trace.Record{
		At: os.k.now, Kind: trace.KindDispatch,
		From: name(prev), To: name(next),
	})
}

func (os *osState) emitIRQ(name string, enter bool) {
	if !os.tracing {
		return
	}
	arg := int64(0)
	if enter {
		arg = 1
	}
	os.recs = append(os.recs, trace.Record{
		At: os.k.now, Kind: trace.KindIRQ, Label: name, Arg: arg,
	})
}

// --- dispatcher core (non-blocking halves of core.OS) ---

func (os *osState) dispatchBest(m *machine, prev *task) {
	next := os.pickBest()
	if next == nil {
		if !os.idleValid {
			os.idleSince = os.k.now
			os.idleValid = true
		}
		if prev != nil {
			os.emitDispatch(prev, nil)
		}
		return
	}
	os.removeReady(next)
	if os.idleValid {
		os.stats.IdleTime += os.k.now - os.idleSince
		os.idleValid = false
	}
	os.current = next
	next.sliceUsed = 0
	os.setState(next, core.TaskRunning)
	os.stats.Dispatches++
	os.progress++
	if os.lastRun != nil && os.lastRun != next {
		os.stats.ContextSwitches++
	}
	os.lastRun = next
	os.emitDispatch(prev, next)
	if next.mach != m {
		// Inlined flush of the dispatch event: its waiters are only ever
		// parked by fWaitDispatched, which never holds a timer or other
		// registrations, so the general wakeFromEvent cleanup is skipped.
		e := next.dispatch
		if ws := e.waiters; len(ws) > 0 {
			e.waiters = ws[:0]
			for _, w := range ws {
				if w.state == mWaitEvent || w.state == mWaitTimeout {
					w.wokenBy = e
					w.timedOut = false
					w.state = mReady
					os.k.enqueueNext(w)
				}
			}
		}
	}
}

func (os *osState) releaseCPU(m *machine) {
	prev := os.current
	os.current = nil
	os.dispatchBest(m, prev)
}

func (os *osState) mustCurrent(m *machine) *task {
	t := os.current
	if t == nil || t.mach != m {
		os.badCurrent(m)
	}
	return t
}

// badCurrent keeps the panic's formatting out of mustCurrent so the
// latter inlines into every service frame.
func (os *osState) badCurrent(m *machine) {
	panic(fmt.Sprintf("rtc[%s]: machine %s ran an OS service while not dispatched", os.name, m.name))
}

// taskTerminate is core.OS.TaskTerminate — non-blocking, so a plain
// method rather than a frame; the caller's body frame returns after it.
func (os *osState) taskTerminate(m *machine) {
	t := os.mustCurrent(m)
	if t.typ == core.Aperiodic {
		t.activations++
	}
	os.setState(t, core.TaskTerminated)
	os.releaseCPU(m)
}

func (os *osState) recordDiagnosis(d *core.DiagnosisError) {
	if os.diagnosis == nil {
		os.diagnosis = d
	}
}

// checkConservation mirrors core.OS.CheckConservation: busy + idle
// (including in-flight intervals) must cover the whole run.
func (os *osState) checkConservation() error {
	if !os.started {
		return nil
	}
	busy := os.stats.BusyTime
	if os.delayValid {
		busy += os.k.now - os.delayStart
	}
	idle := os.stats.IdleTime
	if os.idleValid {
		idle += os.k.now - os.idleSince
	}
	total := os.k.now - os.startedAt
	if busy+idle+os.stats.OverheadTime != total {
		return fmt.Errorf("rtc[%s]: time conservation violated: busy %s + idle %s + overhead %s != elapsed %s",
			os.name, busy, idle, os.stats.OverheadTime, total)
	}
	return nil
}

// --- service frames ---

// call helpers: reset the machine's preallocated frame and push it.

func (m *machine) callWaitDispatched(t *task, os *osState) status {
	m.fWD = fWaitDispatched{os: os, t: t}
	return m.push(&m.fWD)
}

func (m *machine) callYield(t *task, os *osState) status {
	m.fY = fYieldCPU{os: os, t: t}
	return m.push(&m.fY)
}

func (m *machine) callDecide(os *osState) status {
	m.fDec = fDecideFrom{os: os}
	return m.push(&m.fDec)
}

// tail variants: replace the caller instead of pushing (see tailcall).

func (m *machine) tailWaitDispatched(t *task, os *osState) status {
	m.fWD = fWaitDispatched{os: os, t: t}
	return m.tailcall(&m.fWD)
}

func (m *machine) tailYield(t *task, os *osState) status {
	m.fY = fYieldCPU{os: os, t: t}
	return m.tailcall(&m.fY)
}

func (m *machine) tailDecide(os *osState) status {
	m.fDec = fDecideFrom{os: os}
	return m.tailcall(&m.fDec)
}

func (m *machine) tailEventNotify(e *osEvent, os *osState) status {
	m.fEN = fEventNotify{os: os, e: e}
	return m.tailcall(&m.fEN)
}

func (m *machine) tailResume(t *task, os *osState) status {
	m.fRes = fResume{os: os, t: t}
	return m.tailcall(&m.fRes)
}

func (m *machine) callActivate(t *task, os *osState) status {
	m.fAct = fActivate{os: os, t: t}
	return m.push(&m.fAct)
}

func (m *machine) callEndCycle(os *osState) status {
	m.fEnd = fEndCycle{os: os}
	return m.push(&m.fEnd)
}

func (m *machine) callTimeWait(d Time, os *osState) status {
	m.fTW = fTimeWait{os: os, d: d}
	return m.push(&m.fTW)
}

func (m *machine) callEventWait(e *osEvent, os *osState) status {
	m.fEW = fEventWait{os: os, e: e}
	return m.push(&m.fEW)
}

func (m *machine) callEventNotify(e *osEvent, os *osState) status {
	m.fEN = fEventNotify{os: os, e: e}
	return m.push(&m.fEN)
}

func (m *machine) callSuspend(ws core.TaskState, site string, os *osState) status {
	m.fSus = fSuspend{os: os, ws: ws, site: site}
	return m.push(&m.fSus)
}

func (m *machine) callResume(t *task, os *osState) status {
	m.fRes = fResume{os: os, t: t}
	return m.push(&m.fRes)
}

// fWaitDispatched is core's waitUntilDispatched predicate loop: wait on
// the task's dispatch event until the scheduler selects it.
type fWaitDispatched struct {
	os *osState
	t  *task
	pc int
}

func (f *fWaitDispatched) step(m *machine) status {
	if f.os.current != f.t {
		// A dispatch event's only waiter is ever this frame's machine, and
		// a machine parked here holds no timer and no other registrations —
		// so the m.waitEvents side of wait() (kept only to deregister from
		// *other* sources on wake) is skipped, and wakeFromEvent's cleanup
		// loop sees an empty list. Same wake order, same snapshot shape.
		f.pc = 1
		e := f.t.dispatch
		e.waiters = append(e.waiters, m)
		m.state = mWaitEvent
		return statBlocked
	}
	return statDone
}

// fYieldCPU is core's yieldCPU: hand the CPU to a better task and wait
// to be re-dispatched.
type fYieldCPU struct {
	os *osState
	t  *task
}

func (f *fYieldCPU) step(m *machine) status {
	os := f.os
	os.stats.Preemptions++
	os.makeReadyPreempted(f.t)
	os.current = nil
	os.dispatchBest(m, f.t)
	return m.tailWaitDispatched(f.t, os)
}

// fDecideFrom is core's decideFrom: re-evaluate scheduling after a
// wakeup, preempting the running task if the policy demands it.
type fDecideFrom struct {
	os *osState
}

func (f *fDecideFrom) step(m *machine) status {
	os := f.os
	cur := os.current
	if cur == nil {
		os.dispatchBest(m, nil)
		return statDone
	}
	if cur.mach == m && os.preemptive {
		if best := os.pickBest(); best != nil && os.less(best, cur) {
			return m.tailYield(cur, os)
		}
		return statDone
	}
	// Foreign caller (or non-preemptive self, where both branches no-op):
	// under the segmented model, interrupt the running task's delay.
	if os.tmodel == core.TimeModelSegmented && os.preemptive {
		if best := os.pickBest(); best != nil && os.less(best, cur) {
			os.k.flush(cur.preempt)
		}
	}
	return statDone
}

// fActivate is core's TaskActivate for the self-activation path the
// workloads use: bind, stamp the first release, enter the ready queue,
// let the delta cycle settle, then contend for the CPU.
type fActivate struct {
	os *osState
	t  *task
	pc int
}

func (f *fActivate) step(m *machine) status {
	os := f.os
	switch f.pc {
	case 0:
		t := f.t
		t.mach = m
		if t.typ == core.Periodic {
			t.release = os.k.now
			t.deadline = t.release + t.period
		}
		os.makeReady(t)
		f.pc = 1
		m.yieldDelta()
		return statBlocked
	case 1:
		f.pc = 2
		return m.callDecide(os)
	default:
		return m.tailWaitDispatched(f.t, os)
	}
}

// fEndCycle is core's TaskEndCycle: close the cycle's accounting,
// sleep until the next release, and contend for the CPU again.
type fEndCycle struct {
	os   *osState
	t    *task
	next Time
	pc   int
}

func (f *fEndCycle) step(m *machine) status {
	os := f.os
	switch f.pc {
	case 0:
		t := os.mustCurrent(m)
		f.t = t
		now := os.k.now
		completion := t.lastWorkDone
		if completion < t.release {
			completion = t.release
		}
		if completion > t.deadline {
			t.missed++
		}
		t.activations++
		next := t.release + t.period
		for next+t.period <= completion {
			next += t.period
			t.missed++
		}
		os.setState(t, core.TaskWaitingPeriod)
		os.releaseCPU(m)
		f.next = next
		f.pc = 1
		if next > now {
			m.sleep(next - now)
			return statBlocked
		}
		return statCall // no child pushed; loop re-steps at pc 1
	case 1:
		t := f.t
		t.release = f.next
		t.deadline = f.next + t.period
		os.makeReady(t)
		f.pc = 2
		m.yieldDelta()
		return statBlocked
	case 2:
		f.pc = 3
		return m.callDecide(os)
	default:
		return m.tailWaitDispatched(f.t, os)
	}
}

// fTimeWait is core's TimeWait: model computation time under the coarse
// or segmented time model, with the round-robin slice check on entry and
// the preemption check on exit.
type fTimeWait struct {
	os        *osState
	d         Time
	remaining Time
	start     Time
	pc        int
}

func (f *fTimeWait) step(m *machine) status {
	os := f.os
	t := os.mustCurrent(m)
	for {
		switch f.pc {
		case 0: // round-robin slice expiry check
			f.pc = 1
			if sl := os.slice(); sl > 0 && t.sliceUsed >= sl {
				t.sliceUsed = 0
				if b := os.pickBest(); b != nil && !os.less(t, b) {
					return m.callYield(t, os)
				}
			}
		case 1:
			if os.tmodel == core.TimeModelSegmented {
				f.remaining = f.d
				f.pc = 10
			} else {
				f.pc = 20
			}
		case 10: // segmented loop head
			if f.remaining <= 0 {
				f.pc = 30
				continue
			}
			os.setState(t, core.TaskWaitingTime)
			f.start = os.k.now
			os.delayStart = f.start
			os.delayValid = true
			f.pc = 11
			m.waitTimeout(t.preempt, f.remaining)
			return statBlocked
		case 11: // segment ended (timer) or interrupted (preempt event)
			m.afterWait()
			preempted := !m.timedOut
			os.delayValid = false
			elapsed := os.k.now - f.start
			t.cpuTime += elapsed
			t.sliceUsed += elapsed
			t.lastWorkDone = os.k.now
			os.stats.BusyTime += elapsed
			f.remaining -= elapsed
			os.setState(t, core.TaskRunning)
			f.pc = 10
			if preempted && f.remaining > 0 {
				return m.callYield(t, os)
			}
		case 20: // coarse: one non-preemptible delay
			os.setState(t, core.TaskWaitingTime)
			os.delayStart = os.k.now
			os.delayValid = true
			f.pc = 21
			m.sleep(f.d)
			return statBlocked
		case 21:
			os.delayValid = false
			t.cpuTime += f.d
			t.sliceUsed += f.d
			t.lastWorkDone = os.k.now
			os.stats.BusyTime += f.d
			os.setState(t, core.TaskRunning)
			f.pc = 30
		case 30: // maybePreempt
			if os.preemptive {
				if best := os.pickBest(); best != nil && os.less(best, t) {
					return m.tailYield(t, os)
				}
			}
			return statDone
		default:
			return statDone
		}
	}
}

// fEventWait is core's EventWait on an OS event object.
type fEventWait struct {
	os *osState
	e  *osEvent
}

func (f *fEventWait) step(m *machine) status {
	os := f.os
	t := os.mustCurrent(m)
	f.e.queue = append(f.e.queue, t)
	t.blockSite = f.e.site
	os.setState(t, core.TaskWaitingEvent)
	os.releaseCPU(m)
	return m.tailWaitDispatched(t, os)
}

// fEventNotify is core's EventNotify: wake every queued waiter (a
// notification with no waiters is lost) and re-evaluate scheduling.
type fEventNotify struct {
	os *osState
	e  *osEvent
}

func (f *fEventNotify) step(m *machine) status {
	os := f.os
	if len(f.e.queue) == 0 {
		return statDone
	}
	woken := f.e.queue
	f.e.queue = f.e.queue[:0]
	for _, t := range woken {
		os.makeReady(t)
	}
	return m.tailDecide(os)
}

// fSuspend is core's Suspend: park the current task in a waiting state
// until something resumes it.
type fSuspend struct {
	os   *osState
	ws   core.TaskState
	site string
}

func (f *fSuspend) step(m *machine) status {
	os := f.os
	t := os.mustCurrent(m)
	t.blockSite = f.site
	os.setState(t, f.ws)
	os.releaseCPU(m)
	return m.tailWaitDispatched(t, os)
}

// fResume is core's Resume: make a suspended task ready again and
// re-evaluate scheduling. Safe from ISR machines.
type fResume struct {
	os *osState
	t  *task
}

func (f *fResume) step(m *machine) status {
	os := f.os
	t := f.t
	if t == os.current || !t.state.Alive() {
		return statDone
	}
	switch t.state {
	case core.TaskWaitingEvent, core.TaskWaitingMutex, core.TaskWaitingTime, core.TaskSuspended:
		os.makeReady(t)
		return m.tailDecide(os)
	}
	return statDone
}

// osEvent is core's Event object: a named FIFO wait queue over tasks,
// used by the generic personality's condition variables.
type osEvent struct {
	name  string
	site  string
	queue []*task
}

func (os *osState) newOSEvent(name string) *osEvent {
	return &osEvent{name: name, site: "event:" + name}
}
