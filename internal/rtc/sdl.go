package rtc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// This file extends the run-to-completion engine beyond flat task sets to
// the SDL frontend's hierarchical behaviors: sequential and parallel
// compositions over leaf statement lists, handshake channels, markers,
// and the architecture model's split stimulus/ISR interrupt shape. Every
// construct is a frame-level port of the goroutine path it mirrors
// (refine.RunArchitecture + sdl.Model.build), so the engine-equivalence
// suite can compare the two engines byte for byte on SDL models.

// --- handshake channel (channel.Handshake over RTOS conds) ---

// rHandshake ports channel.Handshake built on an RTOSFactory: a latched
// signal whose condition is an OS event and whose wait registers with the
// stall monitor. Handshakes have no personality-native kind, so one port
// serves every personality (matching sdl.instance.makeChannel).
type rHandshake struct {
	os      *osState
	cond    *osEvent
	pending int
	res     *resource
}

func newRHandshake(os *osState, name string) *rHandshake {
	return &rHandshake{
		os:   os,
		cond: os.newOSEvent(name + ".hs"),
		res:  os.monitor.newResource(name, "handshake"),
	}
}

// fWaitSig is Handshake.WaitSig: consume a latched signal, blocking in a
// predicate loop around the condition while none is pending.
type fWaitSig struct {
	os *osState
	h  *rHandshake
	pc int
}

func (f *fWaitSig) step(m *machine) status {
	h := f.h
	switch f.pc {
	case 0:
		if h.pending == 0 {
			h.res.block(m)
			f.pc = 1
			return m.callEventWait(h.cond, f.os)
		}
		h.pending--
		return statDone
	default: // re-check after every wake (the for-loop around cond.Wait)
		if h.pending == 0 {
			return m.callEventWait(h.cond, f.os)
		}
		h.res.unblock(m)
		h.pending--
		return statDone
	}
}

// --- spec-level handshake (the ISR pending latch) ---

// specHS is channel.Handshake built on the SpecFactory: the pending latch
// between an interrupt stimulus and its ISR process, carried by a raw
// kernel event with no monitor resource (arch.PE.AttachISR's shape).
type specHS struct {
	cond    *event
	pending int
}

// fISRBody is arch.PE.AttachISR's service process on a software PE with
// zero service time and a semaphore-release handler — the shape the SDL
// builder generates for every declared interrupt: wait for the latched
// request, bracket the handler with InterruptEnter/InterruptReturn.
type fISRBody struct {
	os   *osState
	name string // interrupt line name (trace label)
	h    *specHS
	sem  rSem
	pc   int
}

func (f *fISRBody) step(m *machine) status {
	os := f.os
	for {
		switch f.pc {
		case 0: // WaitSig on the spec handshake (no monitor resource)
			if f.h.pending == 0 {
				f.pc = 1
				m.wait(f.h.cond)
				return statBlocked
			}
			f.h.pending--
			f.pc = 2
		case 1: // woken; re-check the predicate
			m.afterWait()
			if f.h.pending == 0 {
				m.wait(f.h.cond)
				return statBlocked
			}
			f.h.pending--
			f.pc = 2
		case 2: // InterruptEnter, then the handler: sem.Release
			os.emitIRQ(f.name, true)
			f.pc = 3
			return m.callRelease(f.sem)
		case 3: // InterruptReturn
			os.stats.IRQs++
			os.emitIRQ(f.name, false)
			f.pc = 4
			return m.callDecide(os)
		case 4:
			f.pc = 0
		}
	}
}

// fStimBody is the SDL builder's interrupt stimulus daemon: wait until
// At, then raise the line Count times, Every apart. A raise latches the
// pending handshake and notifies the ISR (IRQ.Raise).
type fStimBody struct {
	k     *kernel
	h     *specHS
	at    Time
	every Time
	count int
	i     int
	pc    int
}

func (f *fStimBody) step(m *machine) status {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			m.sleep(f.at)
			return statBlocked
		case 1: // raise-loop head
			if f.i >= f.count {
				return statDone
			}
			f.pc = 2
			if f.i > 0 {
				m.sleep(f.every)
				return statBlocked
			}
		case 2: // Raise: latch and notify
			f.h.pending++
			f.k.flush(f.h.cond)
			f.i++
			f.pc = 1
		}
	}
}

// --- compiled behavior tree ---

type nodeKind uint8

const (
	nLeaf nodeKind = iota
	nSeq
	nPar
)

// bNode is one elaborated node of the behavior tree. The tree is expanded
// per reference (a behavior named twice yields two nodes), so each node
// has a single execution context.
type bNode struct {
	name     string
	kind     nodeKind
	stmts    []cStmt
	children []*bNode
}

type stmtKind uint8

const (
	cDelay stmtKind = iota
	cSend
	cRecv
	cAcquire
	cRelease
	cSignal
	cWaitSig
	cMarker
	cRepeat
)

// cStmt is a compiled leaf statement with its channel bound.
type cStmt struct {
	kind  stmtKind
	dur   Time
	val   int64
	label string
	q     rQueue
	s     rSem
	h     *rHandshake
	body  []cStmt
	count int
}

// --- execution frames ---

// hier is the hierarchical-elaboration state the behavior frames share:
// the refinement mapping for par-forked child tasks. It lives on its own
// heap object — frames holding a *Session would force rtc.Run's
// stack-allocated Session to escape on the flat hot path too (the
// simbench alloc gate pins that path exactly).
type hier struct {
	os    *osState
	specs map[string]TaskDef // behavior → mapping
}

// fTaskBody runs one task over a behavior subtree: activate, execute the
// subtree, terminate — the body RunArchitecture gives the main process
// and every par child.
type fTaskBody struct {
	h  *hier
	os *osState
	t  *task
	n  *bNode
	pc int
}

func (f *fTaskBody) step(m *machine) status {
	switch f.pc {
	case 0:
		f.pc = 1
		return m.callActivate(f.t, f.os)
	case 1:
		f.pc = 2
		return m.push(&fNode{h: f.h, os: f.os, t: f.t, n: f.n})
	default:
		f.os.taskTerminate(m)
		return statDone
	}
}

// fNode executes one behavior node under the task t: leaves run their
// statement list, seq nodes their children in order, and par nodes fork
// one task+machine per child and join (refine.runRTOS's kindPar bracket:
// TaskCreate children, ParStart, fork, join, ParEnd).
type fNode struct {
	h   *hier
	os  *osState
	t   *task
	n   *bNode
	idx int
	pc  int
}

func (f *fNode) step(m *machine) status {
	os := f.os
	switch f.n.kind {
	case nLeaf:
		return m.tailcall(&fStmts{os: os, name: f.n.name, list: f.n.stmts})
	case nSeq:
		if f.idx < len(f.n.children) {
			c := f.n.children[f.idx]
			f.idx++
			return m.push(&fNode{h: f.h, os: os, t: f.t, n: c})
		}
		return statDone
	default: // nPar
		switch f.pc {
		case 0:
			t := os.mustCurrent(m)
			// Child task control blocks first: each spec's default priority
			// depends on the task count at its own creation moment.
			kids := make([]*task, len(f.n.children))
			for i, c := range f.n.children {
				kids[i] = f.h.newMappedTask(c.name, len(os.tasks))
			}
			// ParStart: park the parent task and hand the CPU on.
			os.setState(t, core.TaskWaitingChildren)
			os.releaseCPU(m)
			// The SLDL par: fork child machines into the next delta cycle in
			// declaration order, then block until the last one finishes.
			m.pendingKids = len(f.n.children)
			for i, c := range f.n.children {
				cm := os.k.spawnNext(c.name, &fTaskBody{h: f.h, os: os, t: kids[i], n: c}, m)
				cm.task = kids[i]
			}
			f.pc = 1
			m.state = mWaitChildren
			return statBlocked
		case 1: // joined: ParEnd
			t := f.t
			if t.state != core.TaskWaitingChildren {
				panic(fmt.Sprintf("rtc: ParEnd on task %q in state %s", t.name, t.state))
			}
			os.makeReady(t)
			f.pc = 2
			return m.callDecide(os)
		default:
			return m.tailWaitDispatched(f.t, os)
		}
	}
}

// fStmts interprets a compiled statement list (sdl.instance.exec).
type fStmts struct {
	os   *osState
	name string // behavior name (marker task field)
	list []cStmt
	idx  int
}

func (f *fStmts) step(m *machine) status {
	os := f.os
	for {
		if f.idx >= len(f.list) {
			return statDone
		}
		st := &f.list[f.idx]
		f.idx++
		switch st.kind {
		case cDelay:
			return m.callTimeWait(st.dur, os)
		case cSend:
			return m.callSend(st.q, st.val)
		case cRecv:
			return m.callRecv(st.q)
		case cAcquire:
			return m.callAcquire(st.s)
		case cRelease:
			return m.callRelease(st.s)
		case cSignal: // Handshake.Signal: latch, then notify
			st.h.pending++
			return m.callEventNotify(st.h.cond, os)
		case cWaitSig:
			return m.push(&fWaitSig{os: os, h: st.h})
		case cMarker:
			os.emitMarker(st.label, f.name, st.val)
		case cRepeat:
			if st.count > 0 {
				return m.push(&fRepeat{os: os, name: f.name, body: st.body, n: st.count})
			}
		}
	}
}

// fRepeat runs a repeat body n times, one fStmts round per iteration.
type fRepeat struct {
	os   *osState
	name string
	body []cStmt
	n, i int
	sub  fStmts
}

func (f *fRepeat) step(m *machine) status {
	if f.i >= f.n {
		return statDone
	}
	f.i++
	// The sub-frame is reused across iterations: it has left the stack
	// before this frame steps again.
	f.sub = fStmts{os: f.os, name: f.name, list: f.body}
	return m.push(&f.sub)
}

// emitMarker is trace.Recorder.Marker for behavior-emitted milestones.
func (os *osState) emitMarker(label, behavior string, arg int64) {
	if !os.tracing {
		return
	}
	os.recs = append(os.recs, trace.Record{
		At: os.k.now, Kind: trace.KindMarker,
		Task: behavior, Label: label, Arg: arg,
	})
}

// --- elaboration (Session.init's hierarchical branch) ---

// newMappedTask creates the task control block for a behavior under the
// workload's refinement mapping; order is the task count at creation time
// (refine.Mapping.spec's default: aperiodic, priority 100+order).
func (h *hier) newMappedTask(behavior string, order int) *task {
	if td, ok := h.specs[behavior]; ok {
		typ := core.Aperiodic
		var period Time
		if td.Type == "periodic" {
			typ = core.Periodic
			period = td.Period
		}
		return h.os.newTask(behavior, typ, period, td.Prio)
	}
	return h.os.newTask(behavior, core.Aperiodic, 0, 100+order)
}

// compileTree expands the behavior declarations into the elaborated node
// tree rooted at name. Each reference is expanded to its own node, so a
// node never executes under two machines at once.
func (s *Session) compileTree(name string, defs map[string]*BehaviorDef, visiting map[string]bool) (*bNode, error) {
	d, ok := defs[name]
	if !ok {
		return nil, fmt.Errorf("rtc: behavior %q not declared", name)
	}
	if visiting[name] {
		return nil, fmt.Errorf("rtc: behavior %q composes itself", name)
	}
	visiting[name] = true
	defer delete(visiting, name)

	n := &bNode{name: name}
	switch d.Kind {
	case "leaf", "":
		n.kind = nLeaf
		stmts, err := s.compileStmts(d.Stmts)
		if err != nil {
			return nil, err
		}
		n.stmts = stmts
	case "seq", "par":
		if d.Kind == "par" {
			n.kind = nPar
		} else {
			n.kind = nSeq
		}
		for _, c := range d.Children {
			child, err := s.compileTree(c, defs, visiting)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, child)
		}
	default:
		return nil, fmt.Errorf("rtc: behavior %q has unknown kind %q", name, d.Kind)
	}
	return n, nil
}

func (s *Session) compileStmts(ops []Op) ([]cStmt, error) {
	out := make([]cStmt, 0, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case "delay":
			out = append(out, cStmt{kind: cDelay, dur: op.Dur})
		case "send", "recv":
			q, ok := s.queues[op.Ch]
			if !ok {
				return nil, fmt.Errorf("rtc: stmt %q references unknown queue %q", op.Kind, op.Ch)
			}
			k := cSend
			if op.Kind == "recv" {
				k = cRecv
			}
			out = append(out, cStmt{kind: k, q: q, val: op.Value})
		case "acquire", "release":
			sem, ok := s.sems[op.Ch]
			if !ok {
				return nil, fmt.Errorf("rtc: stmt %q references unknown semaphore %q", op.Kind, op.Ch)
			}
			k := cAcquire
			if op.Kind == "release" {
				k = cRelease
			}
			out = append(out, cStmt{kind: k, s: sem})
		case "signal", "waitsig":
			h, ok := s.hss[op.Ch]
			if !ok {
				return nil, fmt.Errorf("rtc: stmt %q references unknown handshake %q", op.Kind, op.Ch)
			}
			k := cSignal
			if op.Kind == "waitsig" {
				k = cWaitSig
			}
			out = append(out, cStmt{kind: k, h: h})
		case "marker":
			out = append(out, cStmt{kind: cMarker, label: op.Label, val: op.Value})
		case "repeat":
			body, err := s.compileStmts(op.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, cStmt{kind: cRepeat, count: op.Count, body: body})
		default:
			return nil, fmt.Errorf("rtc: unknown stmt kind %q", op.Kind)
		}
	}
	return out, nil
}

// initHier elaborates a hierarchical workload: split stimulus/ISR machine
// pairs per interrupt, then the main task over the compiled tree — the
// spawn order of sdl.Model.build followed by refine.RunArchitecture.
func (s *Session) initHier(w Workload) error {
	os, k := s.os, s.k

	h := &hier{os: os, specs: make(map[string]TaskDef, len(w.Tasks))}
	for _, td := range w.Tasks {
		h.specs[td.Name] = td
	}

	// Interrupts: per line, the ISR daemon first, then its stimulus —
	// arch.PE.AttachISR followed by the builder's stimulus Spawn.
	for _, irq := range w.IRQs {
		sem, ok := s.sems[irq.Sem]
		if !ok {
			return fmt.Errorf("rtc: irq %q releases unknown semaphore %q", irq.Name, irq.Sem)
		}
		h := &specHS{cond: k.newEvent(s.name + "." + irq.Name + ".hs")}
		k.spawn(s.name+"."+irq.Name+".isr", &fISRBody{os: os, name: irq.Name, h: h, sem: sem}, true)
		k.spawn(irq.Name+".stim", &fStimBody{k: k, h: h, at: irq.At, every: irq.Every, count: irq.Count}, true)
	}

	defs := make(map[string]*BehaviorDef, len(w.Behaviors))
	for i := range w.Behaviors {
		b := &w.Behaviors[i]
		if _, dup := defs[b.Name]; dup {
			return fmt.Errorf("rtc: behavior %q declared twice", b.Name)
		}
		defs[b.Name] = b
	}
	root, err := s.compileTree(w.Top, defs, map[string]bool{})
	if err != nil {
		return err
	}

	// The root becomes the PE's main task (mapping order 0: no tasks yet).
	t := h.newMappedTask(w.Top, 0)
	mm := k.spawn(w.Top, &fTaskBody{h: h, os: os, t: t, n: root}, false)
	mm.task = t
	return nil
}
