package rtc

import "repro/internal/core"

// rQueue and rSem are the engine-side channel interfaces. Each step
// method is a resumable state machine over an opFrame's pc, porting the
// corresponding personality's primitive call-for-call — including the
// exact ordering of monitor bookkeeping around each blocking point, so
// stall diagnoses stay identical across engines.
type rQueue interface {
	stepSend(m *machine, f *opFrame) status
	stepRecv(m *machine, f *opFrame) status
}

type rSem interface {
	stepAcquire(m *machine, f *opFrame) status
	stepRelease(m *machine, f *opFrame) status
}

type opKind uint8

const (
	opSend opKind = iota
	opRecv
	opAcquire
	opRelease
)

// opFrame is the single reusable channel-operation frame per machine;
// it dispatches to the bound channel's state machine.
type opFrame struct {
	kind opKind
	q    rQueue
	s    rSem
	v    int64
	ret  int64
	t    *task
	pc   int
}

func (f *opFrame) step(m *machine) status {
	switch f.kind {
	case opSend:
		return f.q.stepSend(m, f)
	case opRecv:
		return f.q.stepRecv(m, f)
	case opAcquire:
		return f.s.stepAcquire(m, f)
	default:
		return f.s.stepRelease(m, f)
	}
}

func (m *machine) callSend(q rQueue, v int64) status {
	m.fOp = opFrame{kind: opSend, q: q, v: v}
	return m.push(&m.fOp)
}

func (m *machine) callRecv(q rQueue) status {
	m.fOp = opFrame{kind: opRecv, q: q}
	return m.push(&m.fOp)
}

func (m *machine) callAcquire(s rSem) status {
	m.fOp = opFrame{kind: opAcquire, s: s}
	return m.push(&m.fOp)
}

func (m *machine) callRelease(s rSem) status {
	m.fOp = opFrame{kind: opRelease, s: s}
	return m.push(&m.fOp)
}

// --- generic personality (internal/channel over OS events) ---

// genQueue ports channel.Queue: a bounded buffer with one condition
// variable (an OS event named <name>.q) for both directions.
type genQueue struct {
	os       *osState
	cond     *osEvent
	buf      []int64
	capacity int
	res      *resource
}

func newGenQueue(os *osState, name string, capacity int) *genQueue {
	return &genQueue{
		os:       os,
		cond:     os.newOSEvent(name + ".q"),
		capacity: capacity,
		res:      os.monitor.newResource(name, "queue"),
	}
}

func (q *genQueue) stepSend(m *machine, f *opFrame) status {
	for {
		switch f.pc {
		case 0:
			if len(q.buf) == q.capacity {
				q.res.block(m)
				f.pc = 1
				continue
			}
			f.pc = 3
		case 1: // cond-wait loop while full
			if len(q.buf) == q.capacity {
				return m.callEventWait(q.cond, q.os)
			}
			f.pc = 2
		case 2:
			q.res.unblock(m)
			f.pc = 3
		case 3:
			q.buf = append(q.buf, f.v)
			return m.tailEventNotify(q.cond, q.os)
		default:
			return statDone
		}
	}
}

func (q *genQueue) stepRecv(m *machine, f *opFrame) status {
	for {
		switch f.pc {
		case 0:
			if len(q.buf) == 0 {
				q.res.block(m)
				f.pc = 1
				continue
			}
			f.pc = 3
		case 1: // cond-wait loop while empty
			if len(q.buf) == 0 {
				return m.callEventWait(q.cond, q.os)
			}
			f.pc = 2
		case 2:
			q.res.unblock(m)
			f.pc = 3
		case 3:
			f.ret = q.buf[0]
			q.buf = q.buf[1:]
			return m.tailEventNotify(q.cond, q.os)
		default:
			return statDone
		}
	}
}

// genSem ports channel.Semaphore (note: like the original, Acquire
// never calls res.unblock — the monitor clears the edge on acquire).
type genSem struct {
	os    *osState
	cond  *osEvent
	count int
	res   *resource
}

func newGenSem(os *osState, name string, count int) *genSem {
	return &genSem{
		os:    os,
		cond:  os.newOSEvent(name + ".sem"),
		count: count,
		res:   os.monitor.newResource(name, "semaphore"),
	}
}

func (s *genSem) stepAcquire(m *machine, f *opFrame) status {
	for {
		switch f.pc {
		case 0:
			if s.count == 0 {
				s.res.block(m)
				f.pc = 1
				continue
			}
			f.pc = 2
		case 1:
			if s.count == 0 {
				return m.callEventWait(s.cond, s.os)
			}
			f.pc = 2
		case 2:
			s.count--
			s.res.acquire(m)
			return statDone
		}
	}
}

func (s *genSem) stepRelease(m *machine, f *opFrame) status {
	s.count++
	s.res.release(m)
	return m.tailEventNotify(s.cond, s.os)
}

// --- ITRON personality (internal/personality/itron) ---

// itronSem ports itron.Semaphore: twai_sem with TMO_FEVR (a plain
// suspend) and an ISR-safe sig_sem with direct handoff to the oldest
// waiter, bypassing the counter.
type itronSem struct {
	os    *osState
	site  string
	count int
	max   int
	wq    []*task
	res   *resource
}

func newItronSem(os *osState, name string, count int) *itronSem {
	return &itronSem{
		os:    os,
		site:  "semaphore:" + name,
		count: count,
		max:   1<<31 - 1, // TMaxSemCnt
		res:   os.monitor.newResource(name, "semaphore"),
	}
}

func (s *itronSem) stepAcquire(m *machine, f *opFrame) status {
	os := s.os
	switch f.pc {
	case 0:
		t := os.mustCurrent(m)
		if s.count > 0 {
			s.count--
			s.res.acquire(m)
			return statDone
		}
		s.wq = append(s.wq, t)
		s.res.block(m)
		f.pc = 1
		return m.callSuspend(core.TaskWaitingEvent, s.site, os)
	default:
		s.res.acquire(m) // direct handoff: the releaser skipped the counter
		return statDone
	}
}

func (s *itronSem) stepRelease(m *machine, f *opFrame) status {
	switch f.pc {
	case 0:
		s.res.release(m)
		if len(s.wq) > 0 {
			t := s.wq[0]
			copy(s.wq, s.wq[1:])
			s.wq[len(s.wq)-1] = nil
			s.wq = s.wq[:len(s.wq)-1]
			return m.tailResume(t, s.os)
		}
		if s.count < s.max {
			s.count++
		}
		return statDone
	default:
		return statDone
	}
}

// itronMailbox ports itron.Mailbox: snd_mbx never blocks (direct
// message handoff to the oldest waiter), rcv_mbx suspends when empty.
type itronMailbox struct {
	os   *osState
	site string
	msgs []int64
	wq   []*task
	res  *resource
}

func newItronMailbox(os *osState, name string) *itronMailbox {
	return &itronMailbox{
		os:   os,
		site: "mailbox:" + name,
		res:  os.monitor.newResource(name, "mailbox"),
	}
}

func (q *itronMailbox) stepSend(m *machine, f *opFrame) status {
	switch f.pc {
	case 0:
		q.res.release(m)
		if len(q.wq) > 0 {
			t := q.wq[0]
			copy(q.wq, q.wq[1:])
			q.wq[len(q.wq)-1] = nil
			q.wq = q.wq[:len(q.wq)-1]
			t.msg = f.v
			return m.tailResume(t, q.os)
		}
		q.msgs = append(q.msgs, f.v)
		return statDone
	default:
		return statDone
	}
}

func (q *itronMailbox) stepRecv(m *machine, f *opFrame) status {
	os := q.os
	switch f.pc {
	case 0:
		t := os.mustCurrent(m)
		if len(q.msgs) > 0 {
			f.ret = q.msgs[0]
			q.msgs = q.msgs[1:]
			q.res.acquire(m)
			return statDone
		}
		q.wq = append(q.wq, t)
		q.res.block(m)
		f.t = t
		f.pc = 1
		return m.callSuspend(core.TaskWaitingEvent, q.site, os)
	default:
		q.res.acquire(m)
		f.ret = f.t.msg
		return statDone
	}
}

// --- OSEK personality (internal/personality/osek) ---

// osekSem ports the OSEK counting semaphore: a single blocking check
// (no re-check loop — the releaser hands over directly).
type osekSem struct {
	os    *osState
	site  string
	count int
	wq    []*task
	res   *resource
}

func newOsekSem(os *osState, name string, count int) *osekSem {
	return &osekSem{
		os:    os,
		site:  "semaphore:" + name,
		count: count,
		res:   os.monitor.newResource(name, "semaphore"),
	}
}

func (s *osekSem) stepAcquire(m *machine, f *opFrame) status {
	os := s.os
	switch f.pc {
	case 0:
		if s.count > 0 {
			s.count--
			s.res.acquire(m)
			return statDone
		}
		t := os.current
		s.wq = append(s.wq, t)
		s.res.block(m)
		f.pc = 1
		return m.callSuspend(core.TaskWaitingEvent, s.site, os)
	default:
		s.res.unblock(m)
		s.res.acquire(m)
		return statDone
	}
}

func (s *osekSem) stepRelease(m *machine, f *opFrame) status {
	switch f.pc {
	case 0:
		s.res.release(m)
		if len(s.wq) > 0 {
			t := s.wq[0]
			copy(s.wq, s.wq[1:])
			s.wq[len(s.wq)-1] = nil
			s.wq = s.wq[:len(s.wq)-1]
			return m.tailResume(t, s.os)
		}
		s.count++
		return statDone
	default:
		return statDone
	}
}

// osekQueue ports the OSEK bounded queue with separate sender and
// receiver wait lists and re-check loops on both sides.
type osekQueue struct {
	os       *osState
	site     string
	buf      []int64
	capacity int
	sendQ    []*task
	recvQ    []*task
	res      *resource
}

func newOsekQueue(os *osState, name string, capacity int) *osekQueue {
	return &osekQueue{
		os:       os,
		site:     "queue:" + name,
		capacity: capacity,
		res:      os.monitor.newResource(name, "queue"),
	}
}

func (q *osekQueue) stepSend(m *machine, f *opFrame) status {
	os := q.os
	for {
		switch f.pc {
		case 0:
			if q.capacity > 0 && len(q.buf) >= q.capacity {
				t := os.current
				q.sendQ = append(q.sendQ, t)
				q.res.block(m)
				f.pc = 1
				return m.callSuspend(core.TaskWaitingEvent, q.site, os)
			}
			f.pc = 2
		case 1:
			q.res.unblock(m)
			f.pc = 0 // re-check capacity
		case 2:
			q.buf = append(q.buf, f.v)
			if len(q.recvQ) > 0 {
				t := q.recvQ[0]
				copy(q.recvQ, q.recvQ[1:])
				q.recvQ[len(q.recvQ)-1] = nil
				q.recvQ = q.recvQ[:len(q.recvQ)-1]
				return m.tailResume(t, os)
			}
			return statDone
		default:
			return statDone
		}
	}
}

func (q *osekQueue) stepRecv(m *machine, f *opFrame) status {
	os := q.os
	for {
		switch f.pc {
		case 0:
			if len(q.buf) == 0 {
				t := os.current
				q.recvQ = append(q.recvQ, t)
				q.res.block(m)
				f.pc = 1
				return m.callSuspend(core.TaskWaitingEvent, q.site, os)
			}
			f.pc = 2
		case 1:
			q.res.unblock(m)
			f.pc = 0 // re-check emptiness
		case 2:
			f.ret = q.buf[0]
			q.buf = q.buf[1:]
			if len(q.sendQ) > 0 {
				t := q.sendQ[0]
				copy(q.sendQ, q.sendQ[1:])
				q.sendQ[len(q.sendQ)-1] = nil
				q.sendQ = q.sendQ[:len(q.sendQ)-1]
				return m.tailResume(t, os)
			}
			return statDone
		default:
			return statDone
		}
	}
}
