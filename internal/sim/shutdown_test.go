package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestShutdownReleasesGoroutines is the regression test for the batch-run
// goroutine leak: every finished simulation used to leave one parked
// goroutine per unfinished process (daemons, blocked tasks), so sweeps of
// thousands of kernels grew without bound.
func TestShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		k := NewKernel()
		e := k.NewEvent("never")
		// A daemon blocked on an event that never fires, plus a periodic
		// waiter cut off by the horizon: both goroutines must be reclaimed.
		k.Spawn("blocked", func(p *Proc) { p.Wait(e) }).SetDaemon(true)
		k.Spawn("ticker", func(p *Proc) {
			for {
				p.WaitFor(10)
			}
		}).SetDaemon(true)
		if err := k.RunUntil(100); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
	}
	// Let the killed goroutines finish their unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines before=%d after=%d: shutdown leaks", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestShutdownStatesAndIdempotence(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("never")
	blocked := k.Spawn("blocked", func(p *Proc) { p.Wait(e) })
	done := k.Spawn("done", func(p *Proc) {})
	created := k.newProc("created", func(p *Proc) {}, nil) // never scheduled
	if err := k.RunUntil(10); err == nil {
		t.Fatal("want deadlock error with a blocked non-daemon process")
	}
	k.Shutdown()
	k.Shutdown() // idempotent
	if got := blocked.State(); got != StateKilled {
		t.Errorf("blocked proc state = %v, want killed", got)
	}
	if got := done.State(); got != StateDone {
		t.Errorf("finished proc state = %v, want done (Shutdown must not touch it)", got)
	}
	if got := created.State(); got != StateKilled {
		t.Errorf("never-run proc state = %v, want killed", got)
	}
	if k.Active() != 0 {
		t.Errorf("active = %d after Shutdown, want 0", k.Active())
	}
	// A shut-down kernel no longer runs.
	if err := k.Run(); err != nil {
		t.Errorf("Run after Shutdown: %v", err)
	}
}

func TestShutdownRunsDeferred(t *testing.T) {
	k := NewKernel()
	cleaned := false
	k.Spawn("p", func(p *Proc) {
		defer func() { cleaned = true }()
		p.WaitFor(1000)
	})
	if err := k.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if !cleaned {
		t.Error("deferred function of killed process did not run")
	}
}
