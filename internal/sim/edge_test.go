package sim

import (
	"testing"
)

func TestKillDuringWaitTimeoutCleansBoth(t *testing.T) {
	// A process in WaitTimeout is registered on an event AND a timer; kill
	// must cancel both so neither fires later.
	k := NewKernel()
	e := k.NewEvent("e")
	victim := k.Spawn("victim", func(p *Proc) {
		p.WaitTimeout(e, 1000)
		t.Error("victim resumed after kill")
	})
	k.Spawn("killer", func(p *Proc) {
		p.WaitFor(10)
		p.Kill(victim)
		p.Notify(e) // stale event: must not wake the corpse
		p.WaitFor(2000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 2010 {
		t.Errorf("end = %v, want 2010 (victim's 1000-timer canceled)", k.Now())
	}
}

func TestSpawnFromParChild(t *testing.T) {
	var grandchildRan bool
	k := NewKernel()
	k.Spawn("root", func(p *Proc) {
		p.Par(func(c *Proc) {
			c.Spawn("grand", func(g *Proc) {
				g.WaitFor(5)
				grandchildRan = true
			})
			c.WaitFor(1)
		})
		// Par joins on the child only; the detached grandchild continues.
		if p.Now() != 1 {
			t.Errorf("join at %v, want 1", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !grandchildRan {
		t.Error("grandchild never ran")
	}
}

func TestWaitAnySameEventTwice(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	var woke bool
	k.Spawn("w", func(p *Proc) {
		got := p.WaitAny(e, e)
		woke = got == e
	})
	k.Spawn("n", func(p *Proc) {
		p.WaitFor(1)
		p.Notify(e)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Error("WaitAny with duplicate events misbehaved")
	}
	if len(e.waiters) != 0 {
		t.Errorf("stale waiters: %d", len(e.waiters))
	}
}

func TestStepsCounterAdvances(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.WaitFor(1)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Steps < 5 {
		t.Errorf("steps = %d, want ≥ 5", k.Steps)
	}
}

func TestNotifyAfterNonPositive(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	var woke Time
	k.Spawn("w", func(p *Proc) {
		p.NotifyAfter(e, -5) // clamped: delivered at the current instant's end
		p.Wait(e)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 0 {
		t.Errorf("woke at %v, want 0", woke)
	}
}

func TestDaemonTimerLoopNeedsHorizon(t *testing.T) {
	// A daemon with an endless timer loop keeps simulated time advancing;
	// Run would never return, but RunUntil bounds it and reports no error
	// because only daemons remain.
	k := NewKernel()
	ticks := 0
	d := k.Spawn("ticker", func(p *Proc) {
		for {
			p.WaitFor(10)
			ticks++
		}
	})
	d.SetDaemon(true)
	k.Spawn("work", func(p *Proc) { p.WaitFor(35) })
	if err := k.RunUntil(100); err != nil {
		t.Fatalf("RunUntil with live daemon: %v", err)
	}
	if ticks != 10 {
		t.Errorf("ticks = %d, want 10", ticks)
	}
}

func TestDaemonBlockedOnEventEndsCleanly(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("never")
	d := k.Spawn("isr", func(p *Proc) {
		for {
			p.Wait(e)
		}
	})
	d.SetDaemon(true)
	k.Spawn("work", func(p *Proc) { p.WaitFor(5) })
	if err := k.Run(); err != nil {
		t.Fatalf("daemon blocked on event reported: %v", err)
	}
	if k.Now() != 5 {
		t.Errorf("end = %v, want 5", k.Now())
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("me", func(p *Proc) {
		if p.Kernel() != k {
			t.Error("Kernel() mismatch")
		}
		if p.Name() != "me" || p.ID() != 0 {
			t.Errorf("identity = %q/%d", p.Name(), p.ID())
		}
		if p.Daemon() {
			t.Error("unexpected daemon flag")
		}
	})
	_ = p
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.State() != StateDone {
		t.Errorf("state = %v", p.State())
	}
	if s := p.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestStateStringCoverage(t *testing.T) {
	states := []State{StateCreated, StateReady, StateRunning, StateWaitEvent,
		StateWaitTime, StateWaitTimeout, StateWaitChildren, StateDone, StateKilled}
	seen := map[string]bool{}
	for _, s := range states {
		str := s.String()
		if str == "" || seen[str] {
			t.Errorf("state %d: bad string %q", int(s), str)
		}
		seen[str] = true
	}
}

func TestKernelAccessors(t *testing.T) {
	k := NewKernel()
	k.Spawn("a", func(p *Proc) { p.WaitFor(1) })
	if k.Active() != 1 {
		t.Errorf("active = %d", k.Active())
	}
	if len(k.Procs()) != 1 {
		t.Errorf("procs = %d", len(k.Procs()))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Active() != 0 {
		t.Errorf("active after run = %d", k.Active())
	}
	if k.DeltaCycle() != 0 {
		// Delta resets on each time advance; after the final advance it
		// is implementation-defined but must be small.
		t.Logf("delta cycle = %d", k.DeltaCycle())
	}
}
