package sim

// Event is an SLDL synchronization event in the style of SpecC events.
//
// Semantics: Notify wakes every process currently blocked in Wait on the
// event; the woken processes become runnable in the *next* delta cycle of
// the current time step. An event carries no state: a Notify that finds no
// waiter is lost. Persistent synchronization (semaphores, queues, the RTOS
// model's dispatching) is built on top of events by pairing them with
// explicit state and predicate re-check loops, following the methodology
// of the paper (Section 4: "Existing SLDL channels ... are reused by
// refining their internal synchronization primitives").
type Event struct {
	k       *Kernel
	name    string
	waiters []*Proc
}

// NewEvent allocates an event on the kernel. The name is used only for
// diagnostics (deadlock dumps, traces).
func (k *Kernel) NewEvent(name string) *Event {
	return &Event{k: k, name: name}
}

// Name returns the diagnostic name given at creation.
func (e *Event) Name() string { return e.name }

// addWaiter registers p as blocked on e.
func (e *Event) addWaiter(p *Proc) {
	e.waiters = append(e.waiters, p)
}

// removeWaiter unregisters p (used by timeouts, kill, and WaitAny cleanup).
func (e *Event) removeWaiter(p *Proc) {
	for i, w := range e.waiters {
		if w == p {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			return
		}
	}
}

// flush wakes every current waiter, scheduling each into the next delta
// cycle, and clears the waiter list. Called by Proc.Notify and by the
// kernel when a timed notification fires. The state guard makes the wake
// idempotent when a process registered on the same event more than once
// (e.g. WaitAny with duplicate events).
func (e *Event) flush() {
	if len(e.waiters) == 0 {
		return
	}
	// Reslice rather than nil out: the backing array is reused by the next
	// round of waiters, so steady-state wait/notify cycles do not allocate.
	// Nothing appends to e.waiters while the loop runs (wakeFromEvent only
	// detaches processes from *other* events and enqueues them).
	woken := e.waiters
	e.waiters = e.waiters[:0]
	for _, p := range woken {
		if p.state == StateWaitEvent || p.state == StateWaitTimeout {
			p.wakeFromEvent(e)
		}
	}
}
