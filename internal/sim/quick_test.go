package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParEndTimeIsMaxOfSums: for arbitrary per-process delay lists run
// under Par, the join time equals the maximum per-process delay sum — the
// defining property of unscheduled (truly concurrent) execution.
func TestQuickParEndTimeIsMaxOfSums(t *testing.T) {
	f := func(lists [][]uint8) bool {
		if len(lists) == 0 {
			return true
		}
		if len(lists) > 16 {
			lists = lists[:16]
		}
		var want Time
		fns := make([]Func, 0, len(lists))
		for _, l := range lists {
			l := l
			var sum Time
			for _, d := range l {
				sum += Time(d)
			}
			if sum > want {
				want = sum
			}
			fns = append(fns, func(p *Proc) {
				for _, d := range l {
					p.WaitFor(Time(d))
				}
			})
		}
		var end Time
		k := NewKernel()
		k.Spawn("root", func(p *Proc) {
			p.Par(fns...)
			end = p.Now()
		})
		if err := k.Run(); err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		return end == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickTimeMonotonic: under arbitrary mixes of waits, timeouts and
// notifications, observed time never decreases and every WaitFor advances
// time by exactly its argument for the waiting process.
func TestQuickTimeMonotonic(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		k := NewKernel()
		e := k.NewEvent("e")
		ok := true
		var last Time
		check := func(p *Proc) {
			if p.Now() < last {
				ok = false
			}
			last = p.Now()
		}
		k.Spawn("driver", func(p *Proc) {
			for _, op := range ops {
				d := Time(op % 97)
				switch op % 4 {
				case 0:
					before := p.Now()
					p.WaitFor(d)
					if d > 0 && p.Now() != before+d {
						ok = false
					}
				case 1:
					p.NotifyAfter(e, d)
				case 2:
					p.WaitTimeout(e, d)
				case 3:
					p.Notify(e)
				}
				check(p)
			}
		})
		// A companion that periodically notifies so waits can't starve.
		k.Spawn("pulse", func(p *Proc) {
			for i := 0; i < len(ops)+1; i++ {
				p.WaitFor(13)
				p.Notify(e)
				check(p)
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterminism: an arbitrary process population produces a
// bit-identical execution log across two runs.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint32, n uint8) bool {
		procs := int(n%8) + 2
		run := func() string {
			var log strings.Builder
			k := NewKernel()
			e := k.NewEvent("e")
			for i := 0; i < procs; i++ {
				i := i
				k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
					x := seed + uint32(i)*2654435761
					for j := 0; j < 5; j++ {
						x = x*1664525 + 1013904223
						switch x % 3 {
						case 0:
							p.WaitFor(Time(x % 50))
						case 1:
							p.Notify(e)
						case 2:
							p.WaitTimeout(e, Time(x%20+1))
						}
						fmt.Fprintf(&log, "%d@%d;", i, p.Now())
					}
				})
			}
			if err := k.Run(); err != nil {
				fmt.Fprintf(&log, "err=%v", err)
			}
			return log.String()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSequentialAccumulation: delays of a single process accumulate
// exactly, independent of how they are chunked.
func TestQuickSequentialAccumulation(t *testing.T) {
	f := func(chunks []uint8) bool {
		var want Time
		for _, c := range chunks {
			want += Time(c)
		}
		var end Time
		k := NewKernel()
		k.Spawn("p", func(p *Proc) {
			for _, c := range chunks {
				p.WaitFor(Time(c))
			}
			end = p.Now()
		})
		if err := k.Run(); err != nil {
			return false
		}
		return end == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
