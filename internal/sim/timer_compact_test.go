package sim

import "testing"

// TestTimerCancelCompaction pins the heap-compaction invariant directly:
// canceled entries are dropped eagerly once they reach timerCompactMin and
// would make up half the heap, so a cancel-heavy run keeps the heap's
// physical length bounded by the live timer count, not by the cancelation
// history.
func TestTimerCancelCompaction(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	ev := k.NewEvent("ev")

	const rounds = 10_000
	// background keeps a far-future timer alive so the heap never empties
	// between rounds (emptying would reset the count trivially).
	bg := k.Spawn("bg", func(p *Proc) { p.WaitFor(Forever - 1) })
	bg.SetDaemon(true)

	maxLen := 0
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			// Schedule a timeout timer, then have it canceled by the
			// notifier's wake-up: every round adds one entry and cancels it.
			if !p.WaitTimeout(ev, Second) {
				t.Error("timeout fired; expected notification")
				return
			}
			if n := k.timerHeapLen(); n > maxLen {
				maxLen = n
			}
		}
		// The waiter's own timers have all been canceled; only the
		// background timer is live, whatever the physical heap holds.
		if got := k.PendingTimers(); got != 1 {
			t.Errorf("PendingTimers mid-run = %d, want 1 (background timer)", got)
		}
	})
	k.Spawn("notifier", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Notify(ev)
			p.YieldDelta()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	// At any instant there are at most 2 live timers (background + the
	// waiter's current timeout). Compaction triggers once canceled entries
	// reach timerCompactMin and outnumber live ones, so the physical heap
	// must stay within the threshold band — far below the 10k cancels.
	bound := 2 * (timerCompactMin + 2)
	if maxLen > bound {
		t.Errorf("timer heap grew to %d entries across %d cancels, want <= %d", maxLen, rounds, bound)
	}
}

// TestTimerCompactionBelowThreshold pins the other side of the threshold:
// a handful of cancels is tolerated in place (popped lazily) rather than
// triggering a compaction sweep, and PendingTimers excludes them.
func TestTimerCompactionBelowThreshold(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	ev := k.NewEvent("ev")
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < timerCompactMin/2; i++ {
			if !p.WaitTimeout(ev, Second) {
				t.Error("timeout fired; expected notification")
				return
			}
		}
		// All cancels are still physically in the heap (no compaction has
		// run: the count never reached timerCompactMin), but none are live.
		if got := k.PendingTimers(); got != 0 {
			t.Errorf("PendingTimers mid-run = %d, want 0", got)
		}
		if k.timers.(*heapTimers).canceled == 0 {
			t.Error("expected lazily retained canceled entries below the compaction threshold")
		}
	})
	k.Spawn("notifier", func(p *Proc) {
		for i := 0; i < timerCompactMin/2; i++ {
			p.Notify(ev)
			p.YieldDelta()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// timerHeapLen exposes the physical heap length to tests in this package.
func (k *Kernel) timerHeapLen() int { return len(k.timers.(*heapTimers).h) }
