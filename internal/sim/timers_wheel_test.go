package sim

import (
	"fmt"
	"testing"
)

// wheelWorkload drives a kernel through the timer shapes that
// distinguish the backends — same-instant timers in seq order, timeouts
// canceled by a same-instant notification, periodic churn, far-future
// daemons — and returns the observed wake order.
func wheelWorkload(t *testing.T, wheel bool) []string {
	t.Helper()
	k := NewKernel()
	k.SetTimingWheel(wheel)
	defer k.Shutdown()
	var log []string
	trace := func(format string, args ...interface{}) {
		log = append(log, fmt.Sprintf("%-8v ", k.Now())+fmt.Sprintf(format, args...))
	}

	ev := k.NewEvent("ev")
	// Notifier wakes the racer at the exact instant its timeout expires:
	// the event flush must win and cancel the in-flight timer.
	k.Spawn("notifier", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.WaitFor(10 * Microsecond)
			p.Notify(ev)
			trace("notify %d", i)
		}
	})
	k.Spawn("racer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			notified := p.WaitTimeout(ev, 10*Microsecond)
			trace("racer %d notified=%v", i, notified)
		}
	})
	// Same-instant timers from distinct processes: FIFO by schedule order.
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn(fmt.Sprintf("tick%d", i), func(p *Proc) {
			for c := 0; c < 3; c++ {
				p.WaitFor(7 * Microsecond)
				trace("tick%d c%d", i, c)
			}
		})
	}
	// Churn: short timeouts that always cancel, far past the others.
	churn := k.NewEvent("churn")
	k.Spawn("churn-notify", func(p *Proc) {
		for i := 0; i < 200; i++ {
			p.WaitFor(Microsecond)
			p.Notify(churn)
		}
	})
	k.Spawn("churn-wait", func(p *Proc) {
		for i := 0; i < 200; i++ {
			if !p.WaitTimeout(churn, Millisecond) {
				trace("churn timeout %d", i)
			}
		}
		trace("churn done")
	})
	// A far-future daemon timer exercises the overflow heap.
	far := k.Spawn("far", func(p *Proc) { p.WaitFor(Second); trace("far") })
	far.SetDaemon(true)

	if err := k.RunUntil(100 * Microsecond); err != nil {
		t.Fatalf("wheel=%v: %v", wheel, err)
	}
	log = append(log, fmt.Sprintf("end %v pending %d", k.Now(), k.PendingTimers()))
	return log
}

// TestTimingWheelKernelEquivalence pins that the wheel-backed kernel
// replays the heap-backed kernel's behavior event for event.
func TestTimingWheelKernelEquivalence(t *testing.T) {
	heapLog := wheelWorkload(t, false)
	wheelLog := wheelWorkload(t, true)
	if len(heapLog) != len(wheelLog) {
		t.Fatalf("log lengths differ: heap %d, wheel %d", len(heapLog), len(wheelLog))
	}
	for i := range heapLog {
		if heapLog[i] != wheelLog[i] {
			t.Fatalf("logs diverge at %d:\n  heap:  %s\n  wheel: %s", i, heapLog[i], wheelLog[i])
		}
	}
}

// TestSetTimingWheelGuard pins the must-configure-before-use contract.
func TestSetTimingWheelGuard(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	k.Spawn("sleeper", func(p *Proc) { p.WaitFor(Millisecond) })
	if err := k.RunUntil(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetTimingWheel with pending timers did not panic")
		}
	}()
	k.SetTimingWheel(true)
}
