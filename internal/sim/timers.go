package sim

import (
	"container/heap"

	"repro/internal/timewheel"
)

// timerEntry is a pending timeout or timed notification.
type timerEntry struct {
	at       Time
	seq      int // tie-break: FIFO among equal times
	p        *Proc
	e        *Event
	canceled bool
	index    int                         // heap index (heap backend)
	tw       timewheel.Node[*timerEntry] // wheel node (wheel backend)
}

// timerBackend is the scheduling structure behind kernel timers. Both
// implementations deliver entries in the identical (at, seq) order; they
// differ only in the cost profile: the binary heap is O(log n)
// everywhere, the hierarchical timing wheel is O(1) for the
// schedule/cancel churn of timeout-heavy workloads.
type timerBackend interface {
	// push inserts a new entry (freshly sequenced by the kernel).
	push(e *timerEntry)
	// nextTime returns the earliest pending live entry's due time.
	nextTime() (Time, bool)
	// popDue removes and returns the next live entry due at exactly t,
	// in (at, seq) order, or nil once t is exhausted.
	popDue(t Time) *timerEntry
	// cancel removes a pending entry (possibly lazily).
	cancel(e *timerEntry)
	// live returns the number of pending non-canceled entries.
	live() int
	// each visits every live entry in no particular order (snapshots sort
	// by (at, seq) themselves). fn must not mutate the backend.
	each(fn func(*timerEntry))
}

// heapTimers is the default backend: a binary min-heap ordered by
// (at, seq) with lazy cancelation and bounded compaction.
type heapTimers struct {
	k        *Kernel
	h        timerHeap
	canceled int // canceled-but-unpopped entries
}

func (b *heapTimers) push(e *timerEntry) { heap.Push(&b.h, e) }

// peek returns the earliest live entry without popping it, discarding
// (and recycling) canceled entries encountered at the top.
func (b *heapTimers) peek() (*timerEntry, bool) {
	for b.h.Len() > 0 {
		top := b.h[0]
		if !top.canceled {
			return top, true
		}
		heap.Pop(&b.h)
		b.canceled--
		b.k.recycleTimer(top)
	}
	return nil, false
}

func (b *heapTimers) nextTime() (Time, bool) {
	e, ok := b.peek()
	if !ok {
		return 0, false
	}
	return e.at, true
}

func (b *heapTimers) popDue(t Time) *timerEntry {
	e, ok := b.peek()
	if !ok || e.at != t {
		return nil
	}
	heap.Pop(&b.h)
	return e
}

// timerCompactMin is the cancelation count below which the heap tolerates
// dead entries; above it, compaction triggers once dead entries are the
// majority, keeping the heap length within 2x the live entry count (plus
// the threshold) under cancel-heavy load.
const timerCompactMin = 64

// cancel lazily removes a heap-resident entry. The heap pop skips
// canceled entries; when canceled entries pile up faster than pops drain
// them (timeout-heavy or fault-injection workloads), the heap is
// compacted in place so its length stays bounded by the live timer count.
func (b *heapTimers) cancel(e *timerEntry) {
	if e.canceled {
		return
	}
	e.canceled = true
	b.canceled++
	if b.canceled >= timerCompactMin && b.canceled*2 >= len(b.h) {
		b.compact()
	}
}

// compact rebuilds the heap without its canceled entries, recycling them
// to the free list.
func (b *heapTimers) compact() {
	live := b.h[:0]
	for _, e := range b.h {
		if e.canceled {
			b.k.recycleTimer(e)
			continue
		}
		live = append(live, e)
	}
	for i := len(live); i < len(b.h); i++ {
		b.h[i] = nil
	}
	b.h = live
	for i, e := range b.h {
		e.index = i
	}
	heap.Init(&b.h)
	b.canceled = 0
}

func (b *heapTimers) live() int { return len(b.h) - b.canceled }

func (b *heapTimers) each(fn func(*timerEntry)) {
	for _, e := range b.h {
		if !e.canceled {
			fn(e)
		}
	}
}

// timerHeap is a min-heap of timer entries ordered by (at, seq).
type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x interface{}) {
	e := x.(*timerEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// wheelTimers is the hierarchical timing-wheel backend
// (internal/timewheel): O(1) schedule and cancel, with a per-instant
// due batch drained by fireTimers.
type wheelTimers struct {
	k     *Kernel
	w     *timewheel.Wheel[*timerEntry]
	due   []*timerEntry // entries collected for the instant being fired
	dueAt Time
	dueIx int
}

func newWheelTimers(k *Kernel) *wheelTimers {
	return &wheelTimers{
		k: k,
		w: timewheel.New(
			func(e *timerEntry) *timewheel.Node[*timerEntry] { return &e.tw },
			func(e *timerEntry) int64 { return int64(e.at) },
			func(e *timerEntry) int { return e.seq },
		),
	}
}

func (b *wheelTimers) push(e *timerEntry) { b.w.Push(e) }

func (b *wheelTimers) nextTime() (Time, bool) {
	if b.dueIx < len(b.due) {
		return b.dueAt, true
	}
	t, ok := b.w.NextTime()
	return Time(t), ok
}

func (b *wheelTimers) popDue(t Time) *timerEntry {
	for {
		if b.dueAt == t && b.dueIx < len(b.due) {
			e := b.due[b.dueIx]
			b.due[b.dueIx] = nil
			b.dueIx++
			if e.canceled {
				// Canceled while sitting in the due batch (an event
				// flush canceling a same-instant timeout).
				b.k.recycleTimer(e)
				continue
			}
			return e
		}
		// Batch exhausted (or first call for t): collect from the wheel.
		// Processes woken earlier in this instant may have scheduled new
		// zero-delay timers due at t, so collection can repeat.
		b.due = b.w.CollectDue(int64(t), b.due[:0])
		b.dueAt, b.dueIx = t, 0
		if len(b.due) == 0 {
			return nil
		}
	}
}

func (b *wheelTimers) cancel(e *timerEntry) {
	if e.canceled {
		return
	}
	e.canceled = true
	if b.w.Cancel(e) {
		// Unlinked from the wheel: reclaim immediately (callers drop
		// their reference right after canceling).
		b.k.recycleTimer(e)
	}
	// Otherwise the entry is in the due batch; popDue reclaims it.
}

func (b *wheelTimers) live() int {
	n := b.w.Len()
	for _, e := range b.due[b.dueIx:] {
		if !e.canceled {
			n++
		}
	}
	return n
}

func (b *wheelTimers) each(fn func(*timerEntry)) {
	b.w.Each(func(e *timerEntry) {
		if !e.canceled {
			fn(e)
		}
	})
	for _, e := range b.due[b.dueIx:] {
		if !e.canceled {
			fn(e)
		}
	}
}
