package sim

// Tests for the RunUntil horizon boundary (inclusive semantics), the
// Fail/stall-handler failure paths and the delta-cycle livelock guard.

import (
	"errors"
	"testing"
)

// TestRunUntilBoundaryInclusive pins the documented semantics: a timer at
// exactly the limit fires within RunUntil(limit).
func TestRunUntilBoundaryInclusive(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	fired := false
	k.Spawn("p", func(p *Proc) {
		p.WaitFor(100)
		fired = true
	})
	if err := k.RunUntil(100); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !fired {
		t.Fatalf("timer at exactly the limit did not fire")
	}
	if k.Now() != 100 {
		t.Fatalf("Now = %v, want 100", k.Now())
	}
}

// TestRunUntilBoundaryExclusiveAfter verifies that timers strictly after
// the limit stay pending and fire on a later RunUntil.
func TestRunUntilBoundaryExclusiveAfter(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	fired := false
	k.Spawn("p", func(p *Proc) {
		p.WaitFor(101)
		fired = true
	})
	if err := k.RunUntil(100); err != nil {
		t.Fatalf("RunUntil(100): %v", err)
	}
	if fired {
		t.Fatalf("timer after the limit fired early")
	}
	if got := k.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers = %d, want 1", got)
	}
	if err := k.RunUntil(101); err != nil {
		t.Fatalf("RunUntil(101): %v", err)
	}
	if !fired {
		t.Fatalf("pending timer did not fire on resumed run")
	}
}

// TestRunUntilBoundaryFollowUpWork verifies that zero-delay work created
// AT the limit (a fresh timer due at the same instant) also completes
// before RunUntil returns — the horizon cuts after the instant, not
// through it.
func TestRunUntilBoundaryFollowUpWork(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	var steps []string
	k.Spawn("p", func(p *Proc) {
		p.WaitFor(100)
		steps = append(steps, "first")
		p.WaitFor(0) // new timer scheduled at exactly the limit
		steps = append(steps, "second")
	})
	if err := k.RunUntil(100); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(steps) != 2 || steps[1] != "second" {
		t.Fatalf("follow-up work at the limit did not run: %v", steps)
	}
}

// TestRunUntilBoundaryNotifyAfter pins the boundary for timed event
// notifications as well: NotifyAfter landing exactly at the limit wakes
// its waiter.
func TestRunUntilBoundaryNotifyAfter(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	e := k.NewEvent("e")
	woken := false
	k.Spawn("waiter", func(p *Proc) {
		p.Wait(e)
		woken = true
	})
	k.Spawn("notifier", func(p *Proc) {
		p.NotifyAfter(e, 50)
	})
	if err := k.RunUntil(50); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !woken {
		t.Fatalf("NotifyAfter at exactly the limit did not wake the waiter")
	}
}

// TestKernelFail verifies the structured-failure path: Fail stops the run
// and RunUntil returns the recorded error; the first failure wins.
func TestKernelFail(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	first := errors.New("first failure")
	k.Spawn("p", func(p *Proc) {
		p.WaitFor(10)
		k.Fail(first)
		k.Fail(errors.New("second failure"))
		p.WaitFor(10) // park; the kernel stops instead of resuming us
		t.Errorf("process resumed after Fail")
	})
	if err := k.Run(); err != first {
		t.Fatalf("Run = %v, want the first failure", err)
	}
	// A stopped kernel keeps returning the failure.
	if err := k.RunUntil(Forever); err != first {
		t.Fatalf("second RunUntil = %v, want the first failure", err)
	}
}

// TestOnStallHandler verifies that a stall handler can replace the generic
// DeadlockError, and that handlers returning nil fall through to it.
func TestOnStallHandler(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	e := k.NewEvent("never")
	k.Spawn("stuck", func(p *Proc) { p.Wait(e) })
	var sawLive int
	rich := errors.New("rich diagnosis")
	k.OnStall(func(at Time, live []*Proc) error {
		sawLive = len(live)
		return nil // decline: next handler decides
	})
	k.OnStall(func(at Time, live []*Proc) error { return rich })
	if err := k.Run(); err != rich {
		t.Fatalf("Run = %v, want the handler's error", err)
	}
	if sawLive != 1 {
		t.Fatalf("first handler saw %d live procs, want 1", sawLive)
	}
}

// TestOnStallFallthrough: all handlers declining yields the classic
// DeadlockError.
func TestOnStallFallthrough(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	e := k.NewEvent("never")
	k.Spawn("stuck", func(p *Proc) { p.Wait(e) })
	k.OnStall(func(at Time, live []*Proc) error { return nil })
	var dl *DeadlockError
	if err := k.Run(); !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
}

// TestDeltaLimitLivelock verifies the zero-delay livelock guard.
func TestDeltaLimitLivelock(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	k.SetDeltaLimit(1000)
	k.Spawn("spinner", func(p *Proc) {
		for {
			p.YieldDelta()
		}
	})
	var ll *LivelockError
	if err := k.Run(); !errors.As(err, &ll) {
		t.Fatalf("Run = %v, want LivelockError", err)
	}
	if ll.Time != 0 || ll.Deltas <= 1000 {
		t.Fatalf("livelock reported at %v after %d deltas", ll.Time, ll.Deltas)
	}
}

// TestPendingTimersCount verifies cancellation-aware counting.
func TestPendingTimersCount(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	e := k.NewEvent("e")
	k.Spawn("a", func(p *Proc) { p.WaitFor(100) })
	k.Spawn("b", func(p *Proc) {
		// WaitTimeout arms a timer that is canceled when the event wins.
		p.WaitTimeout(e, 500)
	})
	k.Spawn("c", func(p *Proc) {
		p.WaitFor(10)
		p.Notify(e)
	})
	if err := k.RunUntil(50); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	// b's timeout timer was canceled at t=10; only a's timer remains.
	if got := k.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers = %d, want 1", got)
	}
}
