package sim

import (
	"fmt"
	"strings"
	"testing"
)

// runModel is a helper: spawn fn as a root process and run to completion.
func runModel(t *testing.T, fn Func) *Kernel {
	t.Helper()
	k := NewKernel()
	k.Spawn("root", fn)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return k
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{7, "7ns"},
		{1500, "1500ns"},
		{2 * Microsecond, "2us"},
		{20 * Millisecond, "20ms"},
		{3 * Second, "3s"},
		{-5 * Millisecond, "-5ms"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestWaitForAdvancesTime(t *testing.T) {
	var end Time
	runModel(t, func(p *Proc) {
		p.WaitFor(10)
		p.WaitFor(5)
		end = p.Now()
	})
	if end != 15 {
		t.Errorf("time after waitfor(10);waitfor(5) = %v, want 15", end)
	}
}

func TestWaitForZeroYieldsDelta(t *testing.T) {
	var order []string
	k := NewKernel()
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.WaitFor(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a1,b1,a2"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
	if k.Now() != 0 {
		t.Errorf("time advanced to %v on zero waitfor", k.Now())
	}
}

func TestNotifyWakesWaiter(t *testing.T) {
	var woke Time
	k := NewKernel()
	e := k.NewEvent("e")
	k.Spawn("waiter", func(p *Proc) {
		p.Wait(e)
		woke = p.Now()
	})
	k.Spawn("notifier", func(p *Proc) {
		p.WaitFor(42)
		p.Notify(e)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 42 {
		t.Errorf("waiter woke at %v, want 42", woke)
	}
}

func TestNotifyWithoutWaiterIsLost(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	k.Spawn("notifier", func(p *Proc) {
		p.Notify(e) // nobody waiting: lost
	})
	k.Spawn("late", func(p *Proc) {
		p.WaitFor(1)
		p.Wait(e) // will never be woken
	})
	err := k.Run()
	var dl *DeadlockError
	if !asDeadlock(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if dl.Time != 1 {
		t.Errorf("deadlock at %v, want 1", dl.Time)
	}
	if len(dl.Procs) != 1 || dl.Procs[0].Name() != "late" {
		t.Errorf("deadlocked procs = %v", dl.Procs)
	}
}

func asDeadlock(err error, out **DeadlockError) bool {
	d, ok := err.(*DeadlockError)
	if ok {
		*out = d
	}
	return ok
}

func TestNotifyWakesAllWaiters(t *testing.T) {
	const n = 5
	woken := 0
	k := NewKernel()
	e := k.NewEvent("e")
	for i := 0; i < n; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(e)
			woken++
		})
	}
	k.Spawn("notifier", func(p *Proc) {
		p.WaitFor(1)
		p.Notify(e)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != n {
		t.Errorf("woken = %d, want %d", woken, n)
	}
}

func TestNotifyDeltaCycleOrdering(t *testing.T) {
	// A notify wakes the waiter in the NEXT delta cycle: work already
	// queued in the current delta runs first.
	var order []string
	k := NewKernel()
	e := k.NewEvent("e")
	k.Spawn("waiter", func(p *Proc) {
		p.Wait(e)
		order = append(order, "woken")
	})
	k.Spawn("notifier", func(p *Proc) {
		p.Notify(e)
		order = append(order, "after-notify")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "after-notify,woken"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestParForkJoin(t *testing.T) {
	var order []string
	runModel(t, func(p *Proc) {
		order = append(order, "pre")
		p.Par(
			func(c *Proc) {
				c.WaitFor(10)
				order = append(order, "fast")
			},
			func(c *Proc) {
				c.WaitFor(20)
				order = append(order, "slow")
			},
		)
		order = append(order, fmt.Sprintf("join@%v", p.Now()))
	})
	want := "pre,fast,slow,join@20ns"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestParDelaysOverlap(t *testing.T) {
	// In the unscheduled model, concurrent delays overlap: total time is
	// the max, not the sum (paper Figure 8(a)).
	var end Time
	runModel(t, func(p *Proc) {
		p.Par(
			func(c *Proc) { c.WaitFor(100) },
			func(c *Proc) { c.WaitFor(60) },
			func(c *Proc) { c.WaitFor(90) },
		)
		end = p.Now()
	})
	if end != 100 {
		t.Errorf("par of 100/60/90 ended at %v, want 100", end)
	}
}

func TestNestedPar(t *testing.T) {
	var end Time
	runModel(t, func(p *Proc) {
		p.Par(
			func(c *Proc) {
				c.Par(
					func(g *Proc) { g.WaitFor(5) },
					func(g *Proc) { g.WaitFor(7) },
				)
				c.WaitFor(3) // 7+3 = 10
			},
			func(c *Proc) { c.WaitFor(9) },
		)
		end = p.Now()
	})
	if end != 10 {
		t.Errorf("nested par ended at %v, want 10", end)
	}
}

func TestParEmptyIsNoop(t *testing.T) {
	runModel(t, func(p *Proc) {
		p.Par()
	})
}

func TestWaitTimeoutFires(t *testing.T) {
	var fired bool
	var at Time
	k := NewKernel()
	e := k.NewEvent("never")
	k.Spawn("p", func(p *Proc) {
		fired = p.WaitTimeout(e, 30)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("WaitTimeout reported event, want timeout")
	}
	if at != 30 {
		t.Errorf("timeout at %v, want 30", at)
	}
}

func TestWaitTimeoutEventWins(t *testing.T) {
	var fired bool
	var at Time
	k := NewKernel()
	e := k.NewEvent("e")
	k.Spawn("p", func(p *Proc) {
		fired = p.WaitTimeout(e, 30)
		at = p.Now()
	})
	k.Spawn("n", func(p *Proc) {
		p.WaitFor(10)
		p.Notify(e)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("WaitTimeout reported timeout, want event")
	}
	if at != 10 {
		t.Errorf("event at %v, want 10", at)
	}
}

func TestWaitTimeoutEventAtDeadline(t *testing.T) {
	// Timer entries fire only once all deltas at earlier work drain; an
	// event notified at exactly the deadline time by an earlier-queued
	// timer notification reaches the waiter. Either outcome must leave the
	// simulation consistent; we pin the actual semantics: the timed
	// notification was scheduled before the timeout timer, so it fires
	// first and the event wins.
	var fired bool
	k := NewKernel()
	e := k.NewEvent("e")
	k.Spawn("n", func(p *Proc) {
		p.NotifyAfter(e, 30)
	})
	k.Spawn("p", func(p *Proc) {
		fired = p.WaitTimeout(e, 30)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event scheduled before timeout did not win at equal time")
	}
}

func TestWaitAny(t *testing.T) {
	k := NewKernel()
	a := k.NewEvent("a")
	b := k.NewEvent("b")
	var got string
	k.Spawn("p", func(p *Proc) {
		e := p.WaitAny(a, b)
		got = e.Name()
	})
	k.Spawn("n", func(p *Proc) {
		p.WaitFor(5)
		p.Notify(b)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "b" {
		t.Errorf("WaitAny woke on %q, want b", got)
	}
	// The waiter must have been deregistered from a: a later notify of a
	// must be lost, not wake anything or corrupt state.
	if len(a.waiters) != 0 {
		t.Errorf("event a still has %d waiters", len(a.waiters))
	}
}

func TestNotifyAfter(t *testing.T) {
	var woke Time
	k := NewKernel()
	e := k.NewEvent("irq")
	k.Spawn("p", func(p *Proc) {
		p.NotifyAfter(e, 25)
		p.Wait(e)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 25 {
		t.Errorf("woke at %v, want 25", woke)
	}
}

func TestSpawnDetached(t *testing.T) {
	var childRan bool
	var joinTime Time
	runModel(t, func(p *Proc) {
		p.Spawn("bg", func(c *Proc) {
			c.WaitFor(50)
			childRan = true
		})
		p.WaitFor(10)
		joinTime = p.Now()
	})
	if !childRan {
		t.Error("detached child did not run")
	}
	if joinTime != 10 {
		t.Errorf("parent continued at %v, want 10 (no implicit join)", joinTime)
	}
}

func TestKillBlockedProc(t *testing.T) {
	var deferred bool
	k := NewKernel()
	e := k.NewEvent("never")
	victim := k.Spawn("victim", func(p *Proc) {
		defer func() { deferred = true }()
		p.Wait(e)
		t.Error("victim resumed past Wait after kill")
	})
	k.Spawn("killer", func(p *Proc) {
		p.WaitFor(5)
		p.Kill(victim)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !deferred {
		t.Error("victim's deferred function did not run")
	}
	if victim.State() != StateKilled {
		t.Errorf("victim state = %v, want killed", victim.State())
	}
}

func TestKillTimedProcCancelsTimer(t *testing.T) {
	k := NewKernel()
	victim := k.Spawn("victim", func(p *Proc) {
		p.WaitFor(1000)
	})
	k.Spawn("killer", func(p *Proc) {
		p.WaitFor(5)
		p.Kill(victim)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 5 {
		t.Errorf("simulation ran to %v, want 5 (victim's timer canceled)", k.Now())
	}
}

func TestKillSubtree(t *testing.T) {
	var killedNames []string
	k := NewKernel()
	e := k.NewEvent("never")
	var victim *Proc
	k.Spawn("root", func(p *Proc) {
		victim = p.Spawn("parent", func(pp *Proc) {
			defer func() { killedNames = append(killedNames, "parent") }()
			pp.Par(
				func(c *Proc) {
					defer func() { killedNames = append(killedNames, "c1") }()
					c.Wait(e)
				},
				func(c *Proc) {
					defer func() { killedNames = append(killedNames, "c2") }()
					c.Wait(e)
				},
			)
		})
		p.WaitFor(10)
		p.Kill(victim)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "c1,c2,parent"
	if got := strings.Join(killedNames, ","); got != want {
		t.Errorf("kill order = %s, want %s", got, want)
	}
}

func TestKillSelf(t *testing.T) {
	var after bool
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Kill(p)
		after = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if after {
		t.Error("execution continued past self-kill")
	}
}

func TestKillFinishedIsNoop(t *testing.T) {
	k := NewKernel()
	victim := k.Spawn("v", func(p *Proc) {})
	k.Spawn("killer", func(p *Proc) {
		p.WaitFor(1)
		p.Kill(victim) // already done
		p.Kill(victim) // twice for good measure
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	k.Spawn("stopper", func(p *Proc) {
		p.WaitFor(100)
		p.Stop()
	})
	k.Spawn("forever", func(p *Proc) {
		for {
			p.WaitFor(10)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run after Stop: %v", err)
	}
	if k.Now() != 100 {
		t.Errorf("stopped at %v, want 100", k.Now())
	}
}

func TestRunUntilHorizonAndResume(t *testing.T) {
	var ticks []Time
	k := NewKernel()
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.WaitFor(10)
			ticks = append(ticks, p.Now())
		}
	})
	if err := k.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 2 {
		t.Fatalf("ticks after horizon 25 = %v, want 2 entries", ticks)
	}
	if err := k.RunUntil(Forever); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 5 || ticks[4] != 50 {
		t.Errorf("ticks after resume = %v, want 5 entries ending at 50", ticks)
	}
}

func TestDeterministicOrderManyProcs(t *testing.T) {
	// Two identical runs must produce the identical interleaving.
	run := func() string {
		var log []string
		k := NewKernel()
		e := k.NewEvent("go")
		for i := 0; i < 10; i++ {
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Wait(e)
				for j := 0; j < 3; j++ {
					p.WaitFor(Time(1 + p.ID()%3))
					log = append(log, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
				}
			})
		}
		k.Spawn("trigger", func(p *Proc) {
			p.WaitFor(1)
			p.Notify(e)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, ";")
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic interleaving:\n%s\n%s", a, b)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in process did not propagate to Run caller")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.WaitFor(1)
		panic("boom")
	})
	_ = k.Run()
}

func TestProcStateTransitions(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("e")
	var observed []State
	waiter := k.Spawn("w", func(p *Proc) {
		p.Wait(e)
	})
	k.Spawn("observer", func(p *Proc) {
		observed = append(observed, waiter.State()) // created or ready
		p.WaitFor(1)
		observed = append(observed, waiter.State()) // wait-event
		p.Notify(e)
		p.WaitFor(1)
		observed = append(observed, waiter.State()) // done
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if observed[1] != StateWaitEvent {
		t.Errorf("mid state = %v, want wait-event", observed[1])
	}
	if observed[2] != StateDone {
		t.Errorf("final state = %v, want done", observed[2])
	}
}

func TestSequentialDelaysAccumulate(t *testing.T) {
	// Delays of one process accumulate; this is the base property the
	// RTOS model's serialization relies on.
	var end Time
	runModel(t, func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.WaitFor(7)
		}
		end = p.Now()
	})
	if end != 700 {
		t.Errorf("100×7 delays ended at %v, want 700", end)
	}
}

func TestManyTimersSameInstant(t *testing.T) {
	// All timers at the same time fire in registration (FIFO) order.
	var order []int
	k := NewKernel()
	for i := 0; i < 8; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.WaitFor(10)
			order = append(order, p.ID())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("timer fire order not FIFO: %v", order)
		}
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	k := NewKernel()
	e := k.NewEvent("never")
	k.Spawn("stuck", func(p *Proc) { p.Wait(e) })
	err := k.Run()
	if err == nil {
		t.Fatal("want deadlock error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "stuck") {
		t.Errorf("unhelpful deadlock message: %s", msg)
	}
}
