package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// snapModel is a deterministic model with timers, events, timeouts and a
// daemon — every piece of state the snapshot digest covers.
func snapModel(k *Kernel) *Event {
	ev := k.NewEvent("tick")
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.WaitFor(3 * Millisecond)
			p.Notify(ev)
		}
	})
	k.Spawn("listener", func(p *Proc) {
		for i := 0; i < 20; i++ {
			if !p.WaitTimeout(ev, 2*Millisecond) {
				p.WaitFor(500 * Microsecond)
			}
		}
	})
	d := k.Spawn("background", func(p *Proc) {
		for {
			p.WaitFor(7 * Millisecond)
		}
	})
	d.SetDaemon(true)
	return ev
}

// TestSnapshotDeterministicAcrossReplay: two identical kernels paused at
// the same instant must produce byte-identical snapshots, and Restore
// must accept the replayed twin.
func TestSnapshotDeterministicAcrossReplay(t *testing.T) {
	for _, wheel := range []bool{false, true} {
		name := "heap"
		if wheel {
			name = "wheel"
		}
		t.Run(name, func(t *testing.T) {
			build := func() *Kernel {
				k := NewKernel()
				k.SetTimingWheel(wheel)
				snapModel(k)
				return k
			}
			for _, at := range []Time{0, 5 * Millisecond, 13 * Millisecond} {
				k1, k2 := build(), build()
				if err := k1.RunUntil(at); err != nil {
					t.Fatal(err)
				}
				cp, err := k1.Snapshot()
				if err != nil {
					t.Fatalf("Snapshot at %v: %v", at, err)
				}
				if err := k2.RunUntil(at); err != nil {
					t.Fatal(err)
				}
				if err := k2.Restore(cp); err != nil {
					t.Errorf("Restore of replayed twin at %v: %v", at, err)
				}
				// Both must agree from here to the end.
				k1.RunUntil(100 * Millisecond)
				k2.RunUntil(100 * Millisecond)
				s1, err1 := k1.Snapshot()
				s2, err2 := k2.Snapshot()
				if err1 != nil || err2 != nil {
					t.Fatalf("final snapshots: %v / %v", err1, err2)
				}
				if !bytes.Equal(s1.State, s2.State) {
					t.Errorf("kernels diverged after restore at %v", at)
				}
				k1.Shutdown()
				k2.Shutdown()
			}
		})
	}
}

// TestSnapshotBackendAgnostic: the digest describes scheduler state, not
// the timer data structure, so heap and wheel kernels at the same
// instant snapshot identically.
func TestSnapshotBackendAgnostic(t *testing.T) {
	kh, kw := NewKernel(), NewKernel()
	kw.SetTimingWheel(true)
	snapModel(kh)
	snapModel(kw)
	at := 9 * Millisecond
	if err := kh.RunUntil(at); err != nil {
		t.Fatal(err)
	}
	if err := kw.RunUntil(at); err != nil {
		t.Fatal(err)
	}
	ch, err := kh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := kw.Restore(ch); err != nil {
		t.Errorf("wheel kernel does not match heap kernel checkpoint: %v", err)
	}
	kh.Shutdown()
	kw.Shutdown()
}

// TestSnapshotTimerDigestCrossBackend: identical pending timer sets must
// digest to identical bytes regardless of backend, including sets that
// engage the wheel's front-slot fast path — a same-instant wake batch
// (several procs parked on one instant) and a one-shot earliest timer
// ahead of a backlog. The digest sorts by (at, seq), so this pins both
// that ordering and that each backend's each() visits every live entry
// (the wheel must not skip its armed front-slot chain).
func TestSnapshotTimerDigestCrossBackend(t *testing.T) {
	// batchModel parks three procs on the same 8 ms tick (the wheel side
	// re-arms and batches them in the front slot) plus one short-period
	// proc whose next timer re-arms the one-shot slot, and a long timer
	// that stays in the wheel part behind it.
	batchModel := func(k *Kernel) {
		for i := 0; i < 3; i++ {
			k.Spawn("tick", func(p *Proc) {
				for {
					p.WaitFor(8 * Millisecond)
				}
			}).SetDaemon(true)
		}
		k.Spawn("lone", func(p *Proc) {
			for {
				p.WaitFor(3 * Millisecond)
			}
		}).SetDaemon(true)
		k.Spawn("slow", func(p *Proc) {
			for {
				p.WaitFor(13 * Millisecond)
			}
		}).SetDaemon(true)
	}
	for _, at := range []Time{2 * Millisecond, 10 * Millisecond, 20 * Millisecond, 30 * Millisecond} {
		kh, kw := NewKernel(), NewKernel()
		kw.SetTimingWheel(true)
		batchModel(kh)
		batchModel(kw)
		if err := kh.RunUntil(at); err != nil {
			t.Fatal(err)
		}
		if err := kw.RunUntil(at); err != nil {
			t.Fatal(err)
		}
		ch, err := kh.Snapshot()
		if err != nil {
			t.Fatalf("heap snapshot at %v: %v", at, err)
		}
		cw, err := kw.Snapshot()
		if err != nil {
			t.Fatalf("wheel snapshot at %v: %v", at, err)
		}
		if !bytes.Equal(ch.State, cw.State) {
			hl := strings.Split(string(ch.State), "\n")
			wl := strings.Split(string(cw.State), "\n")
			n := len(hl)
			if len(wl) < n {
				n = len(wl)
			}
			diff := "length differs"
			for i := 0; i < n; i++ {
				if hl[i] != wl[i] {
					diff = "heap " + hl[i] + " vs wheel " + wl[i]
					break
				}
			}
			t.Errorf("timer digests diverge at %v: %s", at, diff)
		}
		kh.Shutdown()
		kw.Shutdown()
	}
}

// TestRestoreDetectsDivergence: a kernel at the wrong time or with a
// different model must be rejected with a line-level diagnosis.
func TestRestoreDetectsDivergence(t *testing.T) {
	k1 := NewKernel()
	snapModel(k1)
	if err := k1.RunUntil(6 * Millisecond); err != nil {
		t.Fatal(err)
	}
	cp, err := k1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	wrongTime := NewKernel()
	snapModel(wrongTime)
	if err := wrongTime.RunUntil(4 * Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := wrongTime.Restore(cp); err == nil {
		t.Error("Restore accepted a kernel at the wrong instant")
	}

	wrongModel := NewKernel()
	snapModel(wrongModel)
	wrongModel.Spawn("extra", func(p *Proc) { p.WaitFor(Millisecond) })
	if err := wrongModel.RunUntil(6 * Millisecond); err != nil {
		t.Fatal(err)
	}
	err = wrongModel.Restore(cp)
	if err == nil {
		t.Fatal("Restore accepted a kernel with a different model")
	}
	if !strings.Contains(err.Error(), "line") {
		t.Errorf("divergence error lacks a line diagnosis: %v", err)
	}
	k1.Shutdown()
	wrongTime.Shutdown()
	wrongModel.Shutdown()
}

// TestSnapshotRejectsUnquiescedKernel: snapshots only exist at RunUntil
// pauses.
func TestSnapshotRejectsUnquiescedKernel(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) {
		p.WaitFor(Millisecond)
		p.k.Fail(errors.New("injected failure"))
	})
	if err := k.RunUntil(2 * Millisecond); err == nil {
		t.Fatal("expected failure")
	}
	if _, err := k.Snapshot(); err == nil {
		t.Error("Snapshot succeeded on a stopped kernel")
	}
	k.Shutdown()
}
