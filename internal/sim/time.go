// Package sim implements a discrete-event simulation kernel with the
// semantics of a system level design language (SLDL) such as SpecC or
// SystemC: cooperatively scheduled processes, logical time that advances
// in discrete steps, events with delta-cycle notification, timed waits
// (SpecC's waitfor), and parallel fork/join composition (SpecC's par).
//
// The kernel is the substrate on which the abstract RTOS model of
// internal/core is layered, exactly as the DATE 2003 paper "RTOS Modeling
// for System Level Design" layers its RTOS model on the SpecC simulation
// kernel. Only one process executes at any instant; the kernel hands
// control to a process goroutine and blocks until that process yields.
// Ready processes run in deterministic FIFO order per (time, delta cycle),
// so simulations are bit-reproducible.
package sim

import "fmt"

// Time is a point in (or duration of) logical simulation time. The unit is
// abstract; examples and experiments in this repository interpret one tick
// as one nanosecond so that microsecond/millisecond helpers read naturally.
type Time int64

// Convenience duration units, interpreting one Time tick as a nanosecond.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a time later than any reachable simulation time. Passing it
// to Kernel.RunUntil runs the simulation to completion.
const Forever Time = 1<<63 - 1

// String renders t using the largest unit that divides it exactly, e.g.
// "20ms", "500us", "7ns". Forever renders as "forever".
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	switch {
	case t >= Second && t%Second == 0:
		return fmt.Sprintf("%s%ds", neg, t/Second)
	case t >= Millisecond && t%Millisecond == 0:
		return fmt.Sprintf("%s%dms", neg, t/Millisecond)
	case t >= Microsecond && t%Microsecond == 0:
		return fmt.Sprintf("%s%dus", neg, t/Microsecond)
	default:
		return fmt.Sprintf("%s%dns", neg, t)
	}
}
