package sim

import "fmt"

// State describes what a process is currently doing. Exposed for
// diagnostics (deadlock reports) and for the RTOS model's bookkeeping.
type State int

const (
	// StateCreated: spawned but not yet run for the first time.
	StateCreated State = iota
	// StateReady: runnable, queued for the current or next delta cycle.
	StateReady
	// StateRunning: the (single) process currently executing.
	StateRunning
	// StateWaitEvent: blocked in Wait/WaitAny with no timeout.
	StateWaitEvent
	// StateWaitTime: blocked in WaitFor.
	StateWaitTime
	// StateWaitTimeout: blocked in WaitTimeout (event or timer, whichever
	// fires first).
	StateWaitTimeout
	// StateWaitChildren: blocked in Par waiting for forked children.
	StateWaitChildren
	// StateDone: the process function returned.
	StateDone
	// StateKilled: forcibly terminated via Kill.
	StateKilled
)

// String returns a short human-readable state name.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateWaitEvent:
		return "wait-event"
	case StateWaitTime:
		return "wait-time"
	case StateWaitTimeout:
		return "wait-timeout"
	case StateWaitChildren:
		return "wait-children"
	case StateDone:
		return "done"
	case StateKilled:
		return "killed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// resumeMode tells a blocked process goroutine why it was resumed.
type resumeMode int

const (
	resumeRun  resumeMode = iota // continue normal execution
	resumeKill                   // unwind: the process was killed
)

// killedSignal is the panic payload used to unwind a killed process
// goroutine through its blocking primitive.
type killedSignal struct{}

// Func is the body of a simulation process.
type Func func(p *Proc)

// Proc is a simulation process: the SLDL notion of an independent thread
// of control. Each Proc owns one goroutine; the kernel guarantees at most
// one process goroutine executes at a time. All Proc methods except Name,
// ID and State must only be called from the process's own goroutine while
// it is running (i.e. from inside its Func) — except Kill, which is called
// by another running process.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	fn     Func
	state  State
	resume chan resumeMode

	parent      *Proc
	joinsParent bool // true for Par children: completion decrements parent's join count
	pendingKids int
	children    []*Proc

	// Blocking bookkeeping: events the process is registered on, the
	// active timer entry (nil if none), and wake-up results.
	waitEvents []*Event
	timer      *timerEntry
	wokenBy    *Event
	timedOut   bool

	daemon        bool // daemons don't keep the simulation alive
	killRequested bool
	killSync      bool // finish() must ack on k.killAck instead of k.yield
}

// SetDaemon marks the process as a daemon: a simulation that has only
// daemon processes left (e.g. interrupt-service loops waiting for events
// that will never come) terminates normally instead of reporting a
// deadlock.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// Daemon reports whether the process is marked as a daemon.
func (p *Proc) Daemon() bool { return p.daemon }

// ID returns the process's unique, creation-ordered identifier.
func (p *Proc) ID() int { return p.id }

// Name returns the diagnostic name given at spawn time.
func (p *Proc) Name() string { return p.name }

// State returns the process's current scheduling state.
func (p *Proc) State() State { return p.state }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulation time.
func (p *Proc) Now() Time { return p.k.now }

// run is the goroutine body of a process.
func (p *Proc) run() {
	if mode := <-p.resume; mode == resumeKill {
		p.state = StateKilled
		p.finish()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedSignal); ok {
				p.state = StateKilled
			} else {
				// A real panic in user code: record it so the kernel can
				// re-raise it on the Run caller's goroutine.
				p.state = StateDone
				p.k.panicked = r
			}
		} else {
			p.state = StateDone
		}
		p.finish()
	}()
	p.state = StateRunning
	p.fn(p)
}

// finish performs end-of-life bookkeeping and returns control to whoever
// is waiting for this goroutine to stop (the kernel loop, or the killing
// process for a synchronous kill).
func (p *Proc) finish() {
	p.k.active--
	if p.parent != nil && p.joinsParent {
		p.parent.pendingKids--
		if p.parent.pendingKids == 0 && p.parent.state == StateWaitChildren {
			p.k.enqueueNext(p.parent)
		}
	}
	if p.killSync {
		p.k.killAck <- struct{}{}
		return
	}
	p.k.switchTo(nil) // a finished process is never the next runnable
}

// yieldToKernel gives up the CPU and blocks until this process is resumed.
// Must be called with p.state already updated to the blocking state. When
// another process is runnable — in this delta cycle, a later one, or after
// a time advance — control passes to it directly (see Kernel.switchTo);
// when the next runnable is this process itself, execution continues
// without blocking at all; otherwise control returns to the Run caller.
// Panics with killedSignal if the process was killed while blocked.
func (p *Proc) yieldToKernel() {
	if p.k.switchTo(p) {
		// Fast path: this process's own wake-up (timer, delta yield) was the
		// next runnable work. No kill check needed — kills only originate
		// from process code, and none ran in between.
		p.state = StateRunning
		return
	}
	if mode := <-p.resume; mode == resumeKill {
		panic(killedSignal{})
	}
	p.state = StateRunning
	p.k.running = p
}

// WaitFor suspends the process for duration d of simulated time (SpecC's
// waitfor). A non-positive d yields into the next delta cycle instead.
func (p *Proc) WaitFor(d Time) {
	if d <= 0 {
		p.YieldDelta()
		return
	}
	p.timer = p.k.addTimer(p.k.now+d, p, nil)
	p.state = StateWaitTime
	p.yieldToKernel()
}

// YieldDelta makes the process runnable again in the next delta cycle of
// the current time step, letting all other currently-ready processes run
// first.
func (p *Proc) YieldDelta() {
	p.state = StateReady
	p.k.enqueueNext(p)
	p.yieldToKernel()
}

// Wait blocks until e is notified (SpecC's wait).
func (p *Proc) Wait(e *Event) {
	p.waitEvents = append(p.waitEvents[:0], e)
	e.addWaiter(p)
	p.state = StateWaitEvent
	p.yieldToKernel()
	p.waitEvents = p.waitEvents[:0]
}

// WaitAny blocks until any one of the given events is notified and returns
// the event that woke the process.
func (p *Proc) WaitAny(events ...*Event) *Event {
	if len(events) == 0 {
		panic("sim: WaitAny with no events")
	}
	p.waitEvents = append(p.waitEvents[:0], events...)
	for _, e := range events {
		e.addWaiter(p)
	}
	p.state = StateWaitEvent
	p.yieldToKernel()
	p.waitEvents = p.waitEvents[:0]
	return p.wokenBy
}

// WaitTimeout blocks until e is notified or d elapses, whichever comes
// first. It reports whether the event fired (true) or the wait timed out
// (false). A non-positive d times out after one delta-cycle yield if the
// event is not notified in the meantime.
func (p *Proc) WaitTimeout(e *Event, d Time) bool {
	p.waitEvents = append(p.waitEvents[:0], e)
	e.addWaiter(p)
	p.timer = p.k.addTimer(p.k.now+max(d, 0), p, nil)
	p.state = StateWaitTimeout
	p.yieldToKernel()
	p.waitEvents = p.waitEvents[:0]
	return !p.timedOut
}

// Notify notifies event e: every process currently waiting on e becomes
// runnable in the next delta cycle (SpecC's notify). A notification with
// no waiters is lost.
func (p *Proc) Notify(e *Event) {
	e.flush()
}

// NotifyAfter schedules a notification of e at now+d without blocking the
// caller. It is the kernel-level mechanism behind modeled interrupts and
// timeouts. A non-positive d behaves like Notify at the next time step.
func (p *Proc) NotifyAfter(e *Event, d Time) {
	p.k.addTimer(p.k.now+max(d, 0), nil, e)
}

// Spawn creates a detached child process that starts in the next delta
// cycle. Detached children are not joined by Par; they are, however,
// killed recursively if this process is killed.
func (p *Proc) Spawn(name string, fn Func) *Proc {
	c := p.k.newProc(name, fn, p)
	p.children = append(p.children, c)
	p.k.enqueueNext(c)
	return c
}

// Par runs the given functions as concurrent child processes and blocks
// until all of them have terminated (SpecC's par statement). Children are
// started in argument order in the next delta cycle.
func (p *Proc) Par(fns ...Func) {
	p.ParNamed(nil, fns...)
}

// ParNamed is Par with explicit child names; names may be nil or shorter
// than fns, in which case defaults of the form "parent.N" are used.
func (p *Proc) ParNamed(names []string, fns ...Func) {
	if len(fns) == 0 {
		return
	}
	joined := make([]*Proc, 0, len(fns))
	for i, fn := range fns {
		name := fmt.Sprintf("%s.%d", p.name, i)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		c := p.k.newProc(name, fn, p)
		c.joinsParent = true
		p.children = append(p.children, c)
		p.pendingKids++
		joined = append(joined, c)
		p.k.enqueueNext(c)
	}
	_ = joined
	p.state = StateWaitChildren
	p.yieldToKernel()
}

// Kill forcibly terminates the target process and, recursively, all of its
// children. The target's goroutine is unwound through its current blocking
// primitive; deferred functions in the target run as usual. Killing self
// unwinds the caller immediately. Killing an already-finished process is a
// no-op.
func (p *Proc) Kill(target *Proc) {
	p.k.kill(target, p)
}

// Stop ends the simulation: the kernel loop exits after the calling
// process yields. Remaining processes are left in place (Run reports how
// many were still live).
func (p *Proc) Stop() {
	p.k.stopped = true
}

// wakeFromEvent transitions a process blocked on events back to ready,
// cancelling its other registrations (other WaitAny events, timeout
// timer). Called by Event.flush.
func (p *Proc) wakeFromEvent(e *Event) {
	for _, other := range p.waitEvents {
		if other != e {
			other.removeWaiter(p)
		}
	}
	if p.timer != nil {
		p.k.cancelTimer(p.timer)
		p.timer = nil
	}
	p.wokenBy = e
	p.timedOut = false
	p.state = StateReady
	p.k.enqueueNext(p)
}

// wakeFromTimer transitions a process blocked in WaitFor/WaitTimeout back
// to ready when its timer fires. Called by the kernel loop.
func (p *Proc) wakeFromTimer() {
	for _, e := range p.waitEvents {
		e.removeWaiter(p)
	}
	p.timer = nil
	p.wokenBy = nil
	p.timedOut = true
	p.state = StateReady
	p.k.enqueueReady(p)
}

func (p *Proc) String() string {
	return fmt.Sprintf("proc %d %q (%s)", p.id, p.name, p.state)
}
