package sim

import (
	"bytes"
	"fmt"
	"sort"
)

// Checkpoint is a captured kernel state in a deterministic byte form:
// time, delta cycle, every process's scheduling state and blocking
// bookkeeping, the ready queues, and all pending timers.
//
// The goroutine kernel's processes are real goroutines, so their stacks
// cannot be serialized the way the run-to-completion engine's frame
// lists can (rtc.Session.Snapshot carries full state and Restore forks
// it directly). Here the checkpoint is a verified replay point instead:
// the simulation is deterministic, so a fresh kernel replayed to the
// same instant must land in the same state — and Restore *proves* it
// did by comparing the replayed kernel's snapshot byte-for-byte against
// the checkpoint, reporting the first divergent line if not. The
// checkpoint-equivalence suite in internal/simcheck drives this oracle
// across the policy x time-model x personality matrix.
type Checkpoint struct {
	At    Time   // capture instant
	Delta uint64 // delta-cycle counter at capture
	State []byte // canonical state encoding
}

// simSnapVersion guards the State encoding; bump on any format change.
const simSnapVersion = "simsnap/1"

// Snapshot captures the kernel's scheduler state. The kernel must be
// quiescent — paused between RunUntil calls with no process mid-step —
// and not stopped. Snapshot has no side effects.
func (k *Kernel) Snapshot() (*Checkpoint, error) {
	if k.stopped {
		return nil, fmt.Errorf("sim: cannot snapshot a stopped kernel (failure: %v)", k.failure)
	}
	if k.running != nil {
		return nil, fmt.Errorf("sim: cannot snapshot while a process is running")
	}
	if k.readyAt < len(k.ready) || len(k.next) > 0 {
		return nil, fmt.Errorf("sim: cannot snapshot mid-delta-cycle; pause at a RunUntil horizon first")
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", simSnapVersion)
	fmt.Fprintf(&b, "k now=%d delta=%d seq=%d timerseq=%d active=%d\n",
		int64(k.now), k.delta, k.seq, k.timerSeq, k.active)
	fmt.Fprintf(&b, "procs %d\n", len(k.procs))
	for _, p := range k.procs {
		fmt.Fprintf(&b, "p %d name=%q state=%q daemon=%t timedout=%t timer=%t\n",
			p.id, p.name, p.state.String(), p.daemon, p.timedOut, p.timer != nil && !p.timer.canceled)
		fmt.Fprintf(&b, "pw %d", len(p.waitEvents))
		for _, ev := range p.waitEvents {
			fmt.Fprintf(&b, " %q", ev.name)
		}
		b.WriteByte('\n')
	}
	var timers []*timerEntry
	k.timers.each(func(e *timerEntry) { timers = append(timers, e) })
	sort.Slice(timers, func(i, j int) bool {
		if timers[i].at != timers[j].at {
			return timers[i].at < timers[j].at
		}
		return timers[i].seq < timers[j].seq
	})
	fmt.Fprintf(&b, "timers %d\n", len(timers))
	for _, e := range timers {
		pid := -1
		if e.p != nil {
			pid = e.p.id
		}
		ename := "-"
		if e.e != nil {
			ename = e.e.name
		}
		fmt.Fprintf(&b, "ti at=%d seq=%d p=%d e=%q\n", int64(e.at), e.seq, pid, ename)
	}
	return &Checkpoint{At: k.now, Delta: k.delta, State: b.Bytes()}, nil
}

// Restore verifies that this kernel — freshly built from the same model
// and replayed to cp.At — reached exactly the checkpointed state, then
// leaves it ready to resume with RunUntil. Because goroutine stacks are
// opaque, this replay-and-verify protocol is the goroutine engine's
// restore: cheap to run (the model rebuild is the cost), and any
// divergence between the replayed state and the checkpoint is reported
// with the first differing line. Use the rtc engine's Session checkpoint
// when true zero-replay forking is needed.
func (k *Kernel) Restore(cp *Checkpoint) error {
	cur, err := k.Snapshot()
	if err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if cur.At != cp.At {
		return fmt.Errorf("sim: restore: replayed kernel is at %v, checkpoint at %v", cur.At, cp.At)
	}
	if bytes.Equal(cur.State, cp.State) {
		return nil
	}
	curLines := bytes.Split(cur.State, []byte("\n"))
	cpLines := bytes.Split(cp.State, []byte("\n"))
	n := len(curLines)
	if len(cpLines) < n {
		n = len(cpLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(curLines[i], cpLines[i]) {
			return fmt.Errorf("sim: restore: state diverges at line %d: replayed %q, checkpoint %q",
				i+1, curLines[i], cpLines[i])
		}
	}
	return fmt.Errorf("sim: restore: state length differs: replayed %d lines, checkpoint %d lines",
		len(curLines), len(cpLines))
}
