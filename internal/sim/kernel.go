package sim

import (
	"fmt"
	"strings"
	"sync"
)

// Kernel is the discrete-event simulation engine. Create one with
// NewKernel, spawn one or more root processes with Spawn, then call Run
// or RunUntil. A Kernel is not safe for concurrent use from multiple
// goroutines: the cooperative handoff protocol guarantees that at most one
// process goroutine (or the Run caller) touches kernel state at a time.
type Kernel struct {
	now   Time
	delta uint64
	seq   int // process id source

	ready   []*Proc // runnable in the current delta cycle, FIFO
	readyAt int     // consumption index into ready (avoids slice creep)
	next    []*Proc // runnable in the next delta cycle, FIFO

	timers    timerBackend // heap by default; see SetTimingWheel
	timerSeq  int
	timerFree []*timerEntry // recycled entries (zero-alloc steady state)

	yield   chan struct{} // process -> kernel handoff
	killAck chan struct{} // killed process -> killer handoff

	running  *Proc
	active   int // processes not yet finished
	stopped  bool
	failure  error // set by Fail; returned by Run/RunUntil once stopped
	panicked interface{}

	limit  Time  // active RunUntil horizon (inclusive)
	runErr error // pending error detected while advancing (livelock)

	procs []*Proc // all processes ever created, for diagnostics

	stallHandlers []StallHandler
	deltaLimit    uint64 // max delta cycles per time step; 0 = unlimited

	// Steps counts process activations (resume/yield round trips); exposed
	// for tests and benchmarks of kernel overhead.
	Steps uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	k := &Kernel{
		yield:   make(chan struct{}),
		killAck: make(chan struct{}),
	}
	k.timers = &heapTimers{k: k}
	return k
}

// SetTimingWheel selects the timer backend: the hierarchical timing
// wheel (on) or the default binary heap (off). The wheel turns the
// O(log n) schedule/cancel of timer-churn workloads (timeouts that are
// almost always canceled) into O(1); both backends fire in the identical
// (time, seq) order, pinned by the differential test in this package.
// The backend must be chosen before any timer is scheduled.
func (k *Kernel) SetTimingWheel(on bool) {
	if k.timers.live() > 0 {
		panic("sim: SetTimingWheel with timers pending")
	}
	if on {
		k.timers = newWheelTimers(k)
	} else {
		k.timers = &heapTimers{k: k}
	}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// DeltaCycle returns the delta-cycle counter within the current time step.
func (k *Kernel) DeltaCycle() uint64 { return k.delta }

// Active returns the number of live (unfinished) processes.
func (k *Kernel) Active() int { return k.active }

// Procs returns all processes ever created, in creation order. After
// Shutdown the list is empty: process handles are recycled.
func (k *Kernel) Procs() []*Proc { return k.procs }

// procPool recycles Proc structs (and their resume channels) across
// kernels, so batch workloads that create thousands of short-lived
// kernels do not re-allocate one struct + channel per process per run.
// A Proc enters the pool only from Kernel.Shutdown, once its goroutine
// has terminated; holding a *Proc across Shutdown is valid only for
// reading its final name/state until another kernel is created.
var procPool = sync.Pool{New: func() interface{} {
	return &Proc{resume: make(chan resumeMode)}
}}

// newProc allocates (or recycles) a process and its goroutine (parked
// until first resume).
func (k *Kernel) newProc(name string, fn Func, parent *Proc) *Proc {
	p := procPool.Get().(*Proc)
	resume := p.resume
	children := p.children[:0]
	waitEvents := p.waitEvents[:0]
	*p = Proc{
		k:          k,
		id:         k.seq,
		name:       name,
		fn:         fn,
		state:      StateCreated,
		resume:     resume,
		parent:     parent,
		children:   children,
		waitEvents: waitEvents,
	}
	k.seq++
	k.active++
	k.procs = append(k.procs, p)
	go p.run()
	return p
}

// releaseProc returns a terminated process to the pool. The final name and
// state are kept readable for diagnostics that outlive the kernel.
func releaseProc(p *Proc) {
	p.k = nil
	p.fn = nil
	p.parent = nil
	for i := range p.children {
		p.children[i] = nil
	}
	p.children = p.children[:0]
	for i := range p.waitEvents {
		p.waitEvents[i] = nil
	}
	p.waitEvents = p.waitEvents[:0]
	p.timer = nil
	p.wokenBy = nil
	procPool.Put(p)
}

// Spawn creates a root process. It may be called before Run to set up the
// model, or from hook code between RunUntil calls. Root processes spawned
// before Run start at time zero in creation order.
func (k *Kernel) Spawn(name string, fn Func) *Proc {
	p := k.newProc(name, fn, nil)
	k.enqueueReady(p)
	return p
}

// enqueueReady schedules p into the current delta cycle.
func (k *Kernel) enqueueReady(p *Proc) { k.ready = append(k.ready, p) }

// enqueueNext schedules p into the next delta cycle.
func (k *Kernel) enqueueNext(p *Proc) { k.next = append(k.next, p) }

// hasReady reports whether the current delta cycle has runnable processes.
func (k *Kernel) hasReady() bool { return k.readyAt < len(k.ready) }

// popReady dequeues the next runnable process of the current delta cycle.
func (k *Kernel) popReady() *Proc {
	if k.readyAt >= len(k.ready) {
		return nil
	}
	p := k.ready[k.readyAt]
	k.ready[k.readyAt] = nil
	k.readyAt++
	if k.readyAt == len(k.ready) {
		k.ready = k.ready[:0]
		k.readyAt = 0
	}
	return p
}

// removeFromQueues drops p from the ready and next-delta queues (kill
// path).
func (k *Kernel) removeFromQueues(p *Proc) {
	for i := k.readyAt; i < len(k.ready); i++ {
		if k.ready[i] == p {
			k.ready = append(k.ready[:i], k.ready[i+1:]...)
			break
		}
	}
	k.next = removeProc(k.next, p)
}

func removeProc(q []*Proc, p *Proc) []*Proc {
	for i, x := range q {
		if x == p {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// Run executes the simulation until no process can make progress or a
// process calls Stop. It returns a DeadlockError if live processes remain
// blocked with no pending timer (and Stop was not called), unless a
// registered stall handler (OnStall) substitutes a richer error.
func (k *Kernel) Run() error { return k.RunUntil(Forever) }

// RunUntil executes the simulation up to and including logical time limit:
// the horizon is inclusive. Timers scheduled at exactly limit fire, the
// processes they wake run, and any zero-delay follow-up work they create
// at that instant (delta cycles, new timers due at limit) completes before
// RunUntil returns. Only timers strictly after limit remain pending;
// calling RunUntil again with a later limit resumes the simulation. After
// a horizon return, Now reports the time of the last timer fired, which
// may be earlier than limit if nothing was scheduled at limit itself.
func (k *Kernel) RunUntil(limit Time) error {
	k.limit = limit
	for !k.stopped && k.runErr == nil {
		p := k.nextRunnable()
		if p == nil {
			break
		}
		k.running = p
		k.Steps++
		p.resume <- resumeRun
		// Control returns here only when the process chain exhausts all
		// runnable work up to the horizon (or stops/panics): blocking
		// processes advance delta cycles and time themselves and hand the
		// CPU directly to the next runnable process (switchTo) without
		// bouncing through this loop.
		<-k.yield
		k.running = nil
		if k.panicked != nil {
			r := k.panicked
			k.panicked = nil
			panic(r)
		}
	}
	if err := k.runErr; err != nil {
		k.runErr = nil
		return err
	}
	if k.stopped {
		return k.failure
	}
	if t, ok := k.timers.nextTime(); ok && t > limit {
		return nil // time horizon reached; state preserved
	}
	if live := k.liveProcs(); len(live) > 0 {
		for _, h := range k.stallHandlers {
			if err := h(k.now, live); err != nil {
				return err
			}
		}
		return newDeadlockError(k.now, live)
	}
	return nil
}

// nextRunnable returns the next process to resume, advancing delta cycles
// and simulated time (firing due timers) as needed. It returns nil when
// control must go back to the Run caller: the horizon was passed, nothing
// is scheduled, or a livelock was detected (recorded in k.runErr). It may
// run on the Run caller's goroutine or on a blocking process's goroutine
// (the fused handoff); the cooperative protocol guarantees exclusivity.
func (k *Kernel) nextRunnable() *Proc {
	for {
		if p := k.popReady(); p != nil {
			return p
		}
		if len(k.next) > 0 {
			k.ready, k.next = k.next, k.ready[:0]
			k.readyAt = 0
			k.delta++
			if k.deltaLimit > 0 && k.delta > k.deltaLimit {
				if k.runErr == nil {
					k.runErr = &LivelockError{Time: k.now, Deltas: k.delta}
				}
				return nil
			}
			continue
		}
		t, ok := k.timers.nextTime()
		if !ok || t > k.limit {
			return nil // nothing scheduled, or horizon reached
		}
		k.now = t
		k.delta = 0
		k.fireTimers(t)
	}
}

// switchTo transfers control away from the calling process goroutine:
// directly to the next runnable process when one exists (the fused
// handoff — a single channel rendezvous per context switch), or back to
// the Run caller otherwise (stop, panic propagation, horizon, deadlock).
// When the next runnable turns out to be the calling process itself
// (self == next: a solitary process whose own timer or delta-yield came
// due), it returns true and the caller continues without any channel
// operation at all.
func (k *Kernel) switchTo(self *Proc) bool {
	if !k.stopped && k.panicked == nil && k.runErr == nil {
		if p := k.nextRunnable(); p != nil {
			k.running = p
			k.Steps++
			if p == self {
				return true
			}
			p.resume <- resumeRun
			return false
		}
	}
	k.running = nil
	k.yield <- struct{}{}
	return false
}

// Fail stops the run with err: the innermost Run/RunUntil call returns err
// once the calling process next yields or blocks. The first failure wins;
// later Fail calls keep the original error. Layered runtime models (e.g.
// the RTOS deadlock detector) use it to surface a structured diagnosis
// instead of letting the simulation hang or panic.
func (k *Kernel) Fail(err error) {
	if k.failure == nil {
		k.failure = err
	}
	k.stopped = true
}

// StallHandler inspects a stalled simulation: live non-daemon processes
// remain but no timer is pending, the condition Run/RunUntil reports as a
// DeadlockError. A handler returning a non-nil error replaces that generic
// error (handlers are consulted in registration order; the first non-nil
// result wins). Handlers run on the Run caller's goroutine with the
// simulation quiescent; they must not resume processes.
type StallHandler func(at Time, live []*Proc) error

// OnStall registers a stall handler; see StallHandler.
func (k *Kernel) OnStall(h StallHandler) { k.stallHandlers = append(k.stallHandlers, h) }

// PendingTimers returns the number of live (non-canceled) timer entries:
// process timeouts and timed notifications not yet fired. Watchdog
// processes use it to recognize that only their own timer keeps the
// simulation alive.
func (k *Kernel) PendingTimers() int {
	return k.timers.live()
}

// SetDeltaLimit bounds the number of delta cycles within one time step
// (0 = unlimited, the default). A model that exchanges notifications
// forever without advancing time — a zero-delay livelock — exceeds the
// bound and Run/RunUntil returns a LivelockError instead of spinning.
func (k *Kernel) SetDeltaLimit(n uint64) { k.deltaLimit = n }

// LivelockError reports that a time step exceeded the configured
// delta-cycle limit: processes kept waking each other with zero-delay
// notifications and simulated time could not advance.
type LivelockError struct {
	Time   Time
	Deltas uint64
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("sim: livelock at %s: %d delta cycles without time advancing", e.Time, e.Deltas)
}

// Shutdown terminates every remaining process so its goroutine exits, then
// marks the kernel stopped. A kernel whose run has ended — at a RunUntil
// horizon, by Stop, or by a propagated panic — still holds one parked
// goroutine per unfinished process (daemons, blocked tasks); a batch
// workload that creates thousands of kernels would accumulate them without
// bound. Callers that own a kernel for a single run should defer Shutdown
// right after NewKernel. Shutdown must not be called while the simulation
// is running (i.e. from process code); it is idempotent and safe after a
// deadlock, a horizon pause, or a re-raised process panic. Deferred
// functions of killed processes run as for Kill and must not block on
// simulation primitives.
//
// Shutdown also recycles the kernel's process control blocks: *Proc
// handles remain readable (final name and state) until the program creates
// new processes, but must not be retained beyond that.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		k.kill(p, nil)
	}
	k.stopped = true
	for i, p := range k.procs {
		k.procs[i] = nil
		releaseProc(p)
	}
	k.procs = k.procs[:0]
}

// fireTimers pops every timer entry scheduled at exactly time t, waking
// timed-out processes into the (fresh) current delta cycle and flushing
// timed notifications.
func (k *Kernel) fireTimers(t Time) {
	for {
		e := k.timers.popDue(t)
		if e == nil {
			return
		}
		switch {
		case e.p != nil:
			e.p.wakeFromTimer()
		case e.e != nil:
			e.e.flush()
		}
		k.recycleTimer(e)
	}
}

// addTimer registers a timer entry: either a process timeout (p != nil) or
// a timed event notification (e != nil). Entries are drawn from the
// kernel's free list, so steady-state timer scheduling does not allocate.
func (k *Kernel) addTimer(at Time, p *Proc, e *Event) *timerEntry {
	k.timerSeq++
	var entry *timerEntry
	if n := len(k.timerFree); n > 0 {
		entry = k.timerFree[n-1]
		k.timerFree[n-1] = nil
		k.timerFree = k.timerFree[:n-1]
		entry.at, entry.seq, entry.p, entry.e, entry.canceled = at, k.timerSeq, p, e, false
	} else {
		entry = &timerEntry{at: at, seq: k.timerSeq, p: p, e: e}
	}
	k.timers.push(entry)
	return entry
}

// recycleTimer returns a popped (no longer backend-resident) entry to the
// free list.
func (k *Kernel) recycleTimer(e *timerEntry) {
	e.p, e.e = nil, nil
	k.timerFree = append(k.timerFree, e)
}

// cancelTimer removes a pending entry; how immediately it is reclaimed is
// the backend's affair (the heap cancels lazily, the wheel unlinks in
// O(1)).
func (k *Kernel) cancelTimer(e *timerEntry) {
	k.timers.cancel(e)
}

// kill terminates target and its children recursively; see Proc.Kill.
func (k *Kernel) kill(target, killer *Proc) {
	if target.state == StateDone || target.state == StateKilled {
		return
	}
	// Children first, so join accounting in finish() sees a live parent.
	for _, c := range append([]*Proc(nil), target.children...) {
		k.kill(c, killer)
	}
	if target.state == StateDone || target.state == StateKilled {
		return // finished while its children were being killed
	}
	if target == killer {
		// Self-kill: unwind through the caller's own stack.
		panic(killedSignal{})
	}
	// Detach from every wait structure.
	for _, e := range target.waitEvents {
		e.removeWaiter(target)
	}
	target.waitEvents = target.waitEvents[:0]
	if target.timer != nil {
		k.cancelTimer(target.timer)
		target.timer = nil
	}
	k.removeFromQueues(target)
	// Resume the parked goroutine in kill mode and wait for it to ack.
	target.killSync = true
	target.resume <- resumeKill
	<-k.killAck
	target.killSync = false
}

// liveProcs returns non-daemon processes that are not done/killed — the
// processes whose blockage constitutes a deadlock.
func (k *Kernel) liveProcs() []*Proc {
	var live []*Proc
	for _, p := range k.procs {
		if p.state != StateDone && p.state != StateKilled && !p.daemon {
			live = append(live, p)
		}
	}
	return live
}

// DeadlockError reports that the simulation stalled with live processes
// blocked on events that can never be notified.
type DeadlockError struct {
	Time  Time
	Procs []*Proc

	// msg is the report formatted while the processes were still live;
	// Proc handles may be recycled after Kernel.Shutdown, so the error
	// string must not be derived from them lazily.
	msg string
}

// newDeadlockError snapshots the blocked process set into a self-contained
// error.
func newDeadlockError(at Time, procs []*Proc) *DeadlockError {
	e := &DeadlockError{Time: at, Procs: procs}
	e.msg = e.format()
	return e
}

func (e *DeadlockError) format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at %s: %d process(es) blocked:", e.Time, len(e.Procs))
	for _, p := range e.Procs {
		fmt.Fprintf(&b, "\n\t%s", p)
	}
	return b.String()
}

func (e *DeadlockError) Error() string {
	if e.msg != "" {
		return e.msg
	}
	return e.format()
}
