package sim

import (
	"container/heap"
	"fmt"
	"strings"
)

// Kernel is the discrete-event simulation engine. Create one with
// NewKernel, spawn one or more root processes with Spawn, then call Run
// or RunUntil. A Kernel is not safe for concurrent use from multiple
// goroutines: the cooperative handoff protocol guarantees that at most one
// process goroutine (or the Run caller) touches kernel state at a time.
type Kernel struct {
	now   Time
	delta uint64
	seq   int // process id source

	ready []*Proc // runnable in the current delta cycle, FIFO
	next  []*Proc // runnable in the next delta cycle, FIFO

	timers   timerHeap
	timerSeq int

	yield   chan struct{} // process -> kernel handoff
	killAck chan struct{} // killed process -> killer handoff

	running  *Proc
	active   int // processes not yet finished
	stopped  bool
	failure  error // set by Fail; returned by Run/RunUntil once stopped
	panicked interface{}

	procs []*Proc // all processes ever created, for diagnostics

	stallHandlers []StallHandler
	deltaLimit    uint64 // max delta cycles per time step; 0 = unlimited

	// Steps counts process activations (resume/yield round trips); exposed
	// for tests and benchmarks of kernel overhead.
	Steps uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{
		yield:   make(chan struct{}),
		killAck: make(chan struct{}),
	}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// DeltaCycle returns the delta-cycle counter within the current time step.
func (k *Kernel) DeltaCycle() uint64 { return k.delta }

// Active returns the number of live (unfinished) processes.
func (k *Kernel) Active() int { return k.active }

// Procs returns all processes ever created, in creation order.
func (k *Kernel) Procs() []*Proc { return k.procs }

// newProc allocates a process and its goroutine (parked until first
// resume).
func (k *Kernel) newProc(name string, fn Func, parent *Proc) *Proc {
	p := &Proc{
		k:      k,
		id:     k.seq,
		name:   name,
		fn:     fn,
		state:  StateCreated,
		resume: make(chan resumeMode),
		parent: parent,
	}
	k.seq++
	k.active++
	k.procs = append(k.procs, p)
	go p.run()
	return p
}

// Spawn creates a root process. It may be called before Run to set up the
// model, or from hook code between RunUntil calls. Root processes spawned
// before Run start at time zero in creation order.
func (k *Kernel) Spawn(name string, fn Func) *Proc {
	p := k.newProc(name, fn, nil)
	k.enqueueReady(p)
	return p
}

// enqueueReady schedules p into the current delta cycle.
func (k *Kernel) enqueueReady(p *Proc) { k.ready = append(k.ready, p) }

// enqueueNext schedules p into the next delta cycle.
func (k *Kernel) enqueueNext(p *Proc) { k.next = append(k.next, p) }

// removeFromQueues drops p from the ready and next-delta queues (kill
// path).
func (k *Kernel) removeFromQueues(p *Proc) {
	k.ready = removeProc(k.ready, p)
	k.next = removeProc(k.next, p)
}

func removeProc(q []*Proc, p *Proc) []*Proc {
	for i, x := range q {
		if x == p {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// Run executes the simulation until no process can make progress or a
// process calls Stop. It returns a DeadlockError if live processes remain
// blocked with no pending timer (and Stop was not called), unless a
// registered stall handler (OnStall) substitutes a richer error.
func (k *Kernel) Run() error { return k.RunUntil(Forever) }

// RunUntil executes the simulation up to and including logical time limit:
// the horizon is inclusive. Timers scheduled at exactly limit fire, the
// processes they wake run, and any zero-delay follow-up work they create
// at that instant (delta cycles, new timers due at limit) completes before
// RunUntil returns. Only timers strictly after limit remain pending;
// calling RunUntil again with a later limit resumes the simulation. After
// a horizon return, Now reports the time of the last timer fired, which
// may be earlier than limit if nothing was scheduled at limit itself.
func (k *Kernel) RunUntil(limit Time) error {
	for !k.stopped {
		if len(k.ready) == 0 {
			if len(k.next) > 0 {
				k.ready, k.next = k.next, k.ready[:0]
				k.delta++
				if k.deltaLimit > 0 && k.delta > k.deltaLimit {
					return &LivelockError{Time: k.now, Deltas: k.delta}
				}
				continue
			}
			t, ok := k.timers.nextTime()
			if !ok {
				break // nothing scheduled at all
			}
			if t > limit {
				return nil // time horizon reached; state preserved
			}
			k.now = t
			k.delta = 0
			k.fireTimers(t)
			continue
		}
		p := k.ready[0]
		k.ready = k.ready[1:]
		k.running = p
		k.Steps++
		p.resume <- resumeRun
		<-k.yield
		k.running = nil
		if k.panicked != nil {
			r := k.panicked
			k.panicked = nil
			panic(r)
		}
	}
	if k.stopped {
		return k.failure
	}
	if live := k.liveProcs(); len(live) > 0 {
		for _, h := range k.stallHandlers {
			if err := h(k.now, live); err != nil {
				return err
			}
		}
		return &DeadlockError{Time: k.now, Procs: live}
	}
	return nil
}

// Fail stops the run with err: the innermost Run/RunUntil call returns err
// once the calling process next yields or blocks. The first failure wins;
// later Fail calls keep the original error. Layered runtime models (e.g.
// the RTOS deadlock detector) use it to surface a structured diagnosis
// instead of letting the simulation hang or panic.
func (k *Kernel) Fail(err error) {
	if k.failure == nil {
		k.failure = err
	}
	k.stopped = true
}

// StallHandler inspects a stalled simulation: live non-daemon processes
// remain but no timer is pending, the condition Run/RunUntil reports as a
// DeadlockError. A handler returning a non-nil error replaces that generic
// error (handlers are consulted in registration order; the first non-nil
// result wins). Handlers run on the Run caller's goroutine with the
// simulation quiescent; they must not resume processes.
type StallHandler func(at Time, live []*Proc) error

// OnStall registers a stall handler; see StallHandler.
func (k *Kernel) OnStall(h StallHandler) { k.stallHandlers = append(k.stallHandlers, h) }

// PendingTimers returns the number of live (non-canceled) timer entries:
// process timeouts and timed notifications not yet fired. Watchdog
// processes use it to recognize that only their own timer keeps the
// simulation alive.
func (k *Kernel) PendingTimers() int {
	n := 0
	for _, e := range k.timers {
		if !e.canceled {
			n++
		}
	}
	return n
}

// SetDeltaLimit bounds the number of delta cycles within one time step
// (0 = unlimited, the default). A model that exchanges notifications
// forever without advancing time — a zero-delay livelock — exceeds the
// bound and Run/RunUntil returns a LivelockError instead of spinning.
func (k *Kernel) SetDeltaLimit(n uint64) { k.deltaLimit = n }

// LivelockError reports that a time step exceeded the configured
// delta-cycle limit: processes kept waking each other with zero-delay
// notifications and simulated time could not advance.
type LivelockError struct {
	Time   Time
	Deltas uint64
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("sim: livelock at %s: %d delta cycles without time advancing", e.Time, e.Deltas)
}

// Shutdown terminates every remaining process so its goroutine exits, then
// marks the kernel stopped. A kernel whose run has ended — at a RunUntil
// horizon, by Stop, or by a propagated panic — still holds one parked
// goroutine per unfinished process (daemons, blocked tasks); a batch
// workload that creates thousands of kernels would accumulate them without
// bound. Callers that own a kernel for a single run should defer Shutdown
// right after NewKernel. Shutdown must not be called while the simulation
// is running (i.e. from process code); it is idempotent and safe after a
// deadlock, a horizon pause, or a re-raised process panic. Deferred
// functions of killed processes run as for Kill and must not block on
// simulation primitives.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		k.kill(p, nil)
	}
	k.stopped = true
}

// fireTimers pops every timer entry scheduled at exactly time t, waking
// timed-out processes into the (fresh) current delta cycle and flushing
// timed notifications.
func (k *Kernel) fireTimers(t Time) {
	for {
		e, ok := k.timers.peek()
		if !ok || e.at != t {
			return
		}
		heap.Pop(&k.timers)
		if e.canceled {
			continue
		}
		switch {
		case e.p != nil:
			e.p.wakeFromTimer()
		case e.e != nil:
			e.e.flush()
		}
	}
}

// addTimer registers a timer entry: either a process timeout (p != nil) or
// a timed event notification (e != nil).
func (k *Kernel) addTimer(at Time, p *Proc, e *Event) *timerEntry {
	k.timerSeq++
	entry := &timerEntry{at: at, seq: k.timerSeq, p: p, e: e}
	heap.Push(&k.timers, entry)
	return entry
}

// kill terminates target and its children recursively; see Proc.Kill.
func (k *Kernel) kill(target, killer *Proc) {
	if target.state == StateDone || target.state == StateKilled {
		return
	}
	// Children first, so join accounting in finish() sees a live parent.
	for _, c := range append([]*Proc(nil), target.children...) {
		k.kill(c, killer)
	}
	if target.state == StateDone || target.state == StateKilled {
		return // finished while its children were being killed
	}
	if target == killer {
		// Self-kill: unwind through the caller's own stack.
		panic(killedSignal{})
	}
	// Detach from every wait structure.
	for _, e := range target.waitEvents {
		e.removeWaiter(target)
	}
	target.waitEvents = target.waitEvents[:0]
	if target.timer != nil {
		target.timer.cancel()
		target.timer = nil
	}
	k.removeFromQueues(target)
	// Resume the parked goroutine in kill mode and wait for it to ack.
	target.killSync = true
	target.resume <- resumeKill
	<-k.killAck
	target.killSync = false
}

// liveProcs returns non-daemon processes that are not done/killed — the
// processes whose blockage constitutes a deadlock.
func (k *Kernel) liveProcs() []*Proc {
	var live []*Proc
	for _, p := range k.procs {
		if p.state != StateDone && p.state != StateKilled && !p.daemon {
			live = append(live, p)
		}
	}
	return live
}

// DeadlockError reports that the simulation stalled with live processes
// blocked on events that can never be notified.
type DeadlockError struct {
	Time  Time
	Procs []*Proc
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at %s: %d process(es) blocked:", e.Time, len(e.Procs))
	for _, p := range e.Procs {
		fmt.Fprintf(&b, "\n\t%s", p)
	}
	return b.String()
}

// timerEntry is a pending timeout or timed notification.
type timerEntry struct {
	at       Time
	seq      int // tie-break: FIFO among equal times
	p        *Proc
	e        *Event
	canceled bool
	index    int // heap index
}

// cancel lazily removes the entry; the heap pop skips canceled entries.
func (t *timerEntry) cancel() { t.canceled = true }

// timerHeap is a min-heap of timer entries ordered by (at, seq).
type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x interface{}) {
	e := x.(*timerEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// peek returns the earliest live entry without popping it, discarding
// canceled entries encountered at the top.
func (h *timerHeap) peek() (*timerEntry, bool) {
	for h.Len() > 0 {
		top := (*h)[0]
		if !top.canceled {
			return top, true
		}
		heap.Pop(h)
	}
	return nil, false
}

// nextTime returns the earliest pending timer time.
func (h *timerHeap) nextTime() (Time, bool) {
	e, ok := h.peek()
	if !ok {
		return 0, false
	}
	return e.at, true
}
