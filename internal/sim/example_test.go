package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A minimal SLDL model: two concurrent processes with modeled delays and
// an event synchronization, SpecC-style.
func ExampleKernel() {
	k := sim.NewKernel()
	ready := k.NewEvent("ready")

	k.Spawn("producer", func(p *sim.Proc) {
		p.WaitFor(20 * sim.Millisecond) // waitfor: modeled computation
		fmt.Printf("[%v] producer: data ready\n", p.Now())
		p.Notify(ready)
	})
	k.Spawn("consumer", func(p *sim.Proc) {
		p.Wait(ready) // wait: block until notified
		p.WaitFor(5 * sim.Millisecond)
		fmt.Printf("[%v] consumer: done\n", p.Now())
	})

	if err := k.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// [20ms] producer: data ready
	// [25ms] consumer: done
}

// Par is the SLDL's fork/join: concurrent delays overlap, so the join
// happens at the maximum, not the sum.
func ExampleProc_Par() {
	k := sim.NewKernel()
	k.Spawn("root", func(p *sim.Proc) {
		p.Par(
			func(c *sim.Proc) { c.WaitFor(30) },
			func(c *sim.Proc) { c.WaitFor(50) },
		)
		fmt.Printf("joined at %v\n", p.Now())
	})
	if err := k.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// joined at 50ns
}
