// Package synth implements the paper's stated future work: "development
// of tools for software synthesis from the architecture model down to
// target-specific application code linked against the target RTOS
// libraries". Generate turns a task-set description (the same schema the
// architecture model simulates via internal/taskset) into assembly for
// the implementation model's processor, with every abstract RTOS service
// mapped onto the micro-kernel's trap ABI:
//
//	time_wait        -> calibrated busy loop (modeled computation becomes
//	                    real, preemptible instructions)
//	task_endcycle    -> TrapSleepUntil on the kernel's alarm service
//	task_terminate   -> TrapExit
//
// Each periodic task additionally maintains activation and deadline-miss
// counters in data memory, so the synthesized implementation reports the
// same metrics as the architecture model — the cross-check the paper's
// Table 1 performs by hand is automated here.
package synth

import (
	"fmt"
	"strings"

	"repro/internal/iss"
	"repro/internal/sim"
	"repro/internal/taskset"
	"repro/internal/ukernel"
)

// busyLoopCycles is the cost of one calibration-loop iteration
// (addi + cmpi + bne).
const busyLoopCycles = 4

// Firmware is the synthesis output: the assembly source plus the metadata
// needed to load and run it.
type Firmware struct {
	Source      string
	Set         *taskset.Set
	CyclePeriod sim.Time

	names []string // sanitized per-task symbols, in set order
}

// Generate synthesizes firmware for the task set at the given CPU cycle
// period.
func Generate(s *taskset.Set, cyclePeriod sim.Time) (*Firmware, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if cyclePeriod <= 0 {
		return nil, fmt.Errorf("synth: cycle period %v must be positive", cyclePeriod)
	}
	fw := &Firmware{Set: s, CyclePeriod: cyclePeriod}
	var code, data strings.Builder
	used := map[string]bool{"idle": true}
	toCycles := func(us float64) int64 {
		return int64(sim.Time(us*1000) / cyclePeriod)
	}

	for _, task := range s.Tasks {
		n := sanitize(task.Name, used)
		fw.names = append(fw.names, n)
		switch task.Type {
		case "periodic", "":
			iters := toCycles(task.WcetUs) / busyLoopCycles
			if iters < 1 {
				iters = 1
			}
			fmt.Fprintf(&code, `
%[1]s:
	trap 7              ; r0 = current cycle count
	mov r7, r0          ; release time
%[1]s_loop:
	ld r4, %[1]s_iters  ; time_wait(wcet): calibrated computation
%[1]s_busy:
	addi r4, -1
	cmpi r4, 0
	bne %[1]s_busy
	ld r0, %[1]s_period
	add r7, r0          ; r7 = deadline = next release
	trap 7
	addi r0, -1
	cmp r0, r7          ; completion <= deadline ?
	blt %[1]s_ok
	ld r4, %[1]s_miss
	addi r4, 1
	st %[1]s_miss, r4
%[1]s_ok:
	ld r4, %[1]s_act
	addi r4, 1
	st %[1]s_act, r4
	mov r0, r7
	trap 10             ; task_endcycle: sleep until next release
	jmp %[1]s_loop
`, n)
			fmt.Fprintf(&data, "%[1]s_iters:  .word %d\n", n, iters)
			fmt.Fprintf(&data, "%[1]s_period: .word %d\n", n, toCycles(task.PeriodUs))
			fmt.Fprintf(&data, "%[1]s_miss:   .word 0\n", n)
			fmt.Fprintf(&data, "%[1]s_act:    .word 0\n", n)

		case "aperiodic":
			fmt.Fprintf(&code, "\n%s:\n", n)
			if task.StartUs > 0 {
				fmt.Fprintf(&code, "\tldi r0, %d\n\ttrap 10     ; wait for the start offset\n",
					toCycles(task.StartUs))
			}
			for i, seg := range task.ComputeUs {
				iters := toCycles(float64(seg)) / busyLoopCycles
				if iters < 1 {
					iters = 1
				}
				fmt.Fprintf(&code, `	ld r4, %[1]s_seg%[2]d
%[1]s_busy%[2]d:
	addi r4, -1
	cmpi r4, 0
	bne %[1]s_busy%[2]d
`, n, i)
				fmt.Fprintf(&data, "%s_seg%d: .word %d\n", n, i, iters)
			}
			fmt.Fprintf(&code, `	ld r4, %[1]s_act
	addi r4, 1
	st %[1]s_act, r4
	trap 0              ; task_terminate
`, n)
			fmt.Fprintf(&data, "%s_act: .word 0\n", n)
		}
	}
	fw.Source = code.String() + "\nidle:\n\tjmp idle\n\n.data\n" + data.String()
	return fw, nil
}

// sanitize converts a task name into a unique assembly identifier.
func sanitize(name string, used map[string]bool) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('t')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	n := b.String()
	if n == "" {
		n = "task"
	}
	for used[n] {
		n += "x"
	}
	used[n] = true
	return n
}

// TaskResult is one synthesized task's outcome.
type TaskResult struct {
	Name        string
	Activations int64
	Missed      int64
}

// Result is the implementation-model run outcome.
type Result struct {
	Tasks        []TaskResult
	Stats        ukernel.Stats
	End          sim.Time
	Instructions uint64
	Cycles       uint64
}

// Run assembles the firmware, boots the micro-kernel with one kernel task
// per set entry (priorities from the set) and co-simulates until the
// horizon. skipIdle selects the fast co-simulation mode.
func (fw *Firmware) Run(horizon sim.Time, skipIdle bool) (*Result, error) {
	prog, err := iss.Assemble(fw.Source)
	if err != nil {
		return nil, fmt.Errorf("synth: generated code does not assemble: %v", err)
	}
	memWords := 4096 + 256*len(fw.Set.Tasks)
	cpu, err := iss.NewCPU(prog, memWords)
	if err != nil {
		return nil, err
	}
	kern, err := ukernel.New(cpu, prog, "idle")
	if err != nil {
		return nil, err
	}
	for i, task := range fw.Set.Tasks {
		entry, err := prog.Entry(fw.names[i])
		if err != nil {
			return nil, err
		}
		stackTop := int64(memWords - 256*i)
		kern.AddTask(task.Name, entry, stackTop, task.Prio)
	}
	m := ukernel.NewMachine(cpu, kern)
	m.SkipIdle = skipIdle

	k := sim.NewKernel()
	kern.Start()
	m.Spawn(k, "CPU")
	if err := k.RunUntil(horizon); err != nil {
		return nil, err
	}
	if cpu.Err() != nil {
		return nil, cpu.Err()
	}

	res := &Result{
		Stats:        kern.StatsSnapshot(),
		End:          k.Now(),
		Instructions: cpu.Insts,
		Cycles:       cpu.Cycles,
	}
	word := func(sym string) int64 {
		a, ok := prog.Symbols[sym]
		if !ok {
			return 0
		}
		return cpu.Mem[a]
	}
	for i, task := range fw.Set.Tasks {
		n := fw.names[i]
		res.Tasks = append(res.Tasks, TaskResult{
			Name:        task.Name,
			Activations: word(n + "_act"),
			Missed:      word(n + "_miss"),
		})
	}
	return res, nil
}
