package synth

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/taskset"
	"repro/internal/ukernel"
)

func feasibleSet() *taskset.Set {
	return &taskset.Set{
		Policy: "priority",
		Tasks: []taskset.Task{
			{Name: "ctrl", Type: "periodic", PeriodUs: 500, WcetUs: 100, Prio: 1},
			{Name: "audio", Type: "periodic", PeriodUs: 2000, WcetUs: 600, Prio: 2},
			{Name: "init", Type: "aperiodic", Prio: 0, ComputeUs: []int64{50, 50}},
		},
	}
}

func TestGenerateAssembles(t *testing.T) {
	fw, err := Generate(feasibleSet(), ukernel.DefaultCyclePeriod)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ctrl_loop:", "audio_busy:", "init:", "trap 10", "trap 0", ".data"} {
		if !strings.Contains(fw.Source, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func TestSynthesizedFeasibleSetMeetsDeadlines(t *testing.T) {
	fw, err := Generate(feasibleSet(), ukernel.DefaultCyclePeriod)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.Run(10*sim.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TaskResult{}
	for _, tr := range res.Tasks {
		byName[tr.Name] = tr
	}
	// ctrl: 10 ms / 500 µs = 20 activations, ±1 for horizon edge.
	if a := byName["ctrl"].Activations; a < 19 || a > 20 {
		t.Errorf("ctrl activations = %d, want ≈20", a)
	}
	if a := byName["audio"].Activations; a < 4 || a > 5 {
		t.Errorf("audio activations = %d, want ≈5", a)
	}
	if byName["init"].Activations != 1 {
		t.Errorf("init activations = %d, want 1", byName["init"].Activations)
	}
	for _, tr := range res.Tasks {
		if tr.Missed != 0 {
			t.Errorf("task %s missed %d deadlines on a U=0.5 set", tr.Name, tr.Missed)
		}
	}
	if res.Stats.ContextSwitches == 0 {
		t.Error("no context switches in a multi-task run")
	}
	if res.Instructions == 0 {
		t.Error("no instructions retired")
	}
}

func TestSynthesizedOverloadMisses(t *testing.T) {
	over := &taskset.Set{
		Tasks: []taskset.Task{
			{Name: "a", Type: "periodic", PeriodUs: 500, WcetUs: 350, Prio: 1},
			{Name: "b", Type: "periodic", PeriodUs: 500, WcetUs: 350, Prio: 2},
		},
	}
	fw, err := Generate(over, ukernel.DefaultCyclePeriod)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.Run(10*sim.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	missed := int64(0)
	for _, tr := range res.Tasks {
		missed += tr.Missed
	}
	if missed == 0 {
		t.Error("overloaded (U=1.4) synthesized set reported no misses")
	}
}

// TestSynthesisMatchesArchitectureModel is the automated Table 1
// cross-check: the synthesized implementation and the abstract
// architecture model must agree on schedulability (misses) and roughly on
// scheduling activity for the same task set.
func TestSynthesisMatchesArchitectureModel(t *testing.T) {
	s := feasibleSet()
	s.TimeModel = "segmented"
	s.HorizonMs = 10

	archRes, err := taskset.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := Generate(s, ukernel.DefaultCyclePeriod)
	if err != nil {
		t.Fatal(err)
	}
	implRes, err := fw.Run(10*sim.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}

	archMiss, implMiss := 0, int64(0)
	archAct, implAct := 0, int64(0)
	for _, tr := range archRes.Tasks {
		archMiss += tr.Missed
		archAct += tr.Activations
	}
	for _, tr := range implRes.Tasks {
		implMiss += tr.Missed
		implAct += tr.Activations
	}
	if archMiss != 0 || implMiss != 0 {
		t.Errorf("misses arch=%d impl=%d, want 0/0", archMiss, implMiss)
	}
	da := implAct - int64(archAct)
	if da < -2 || da > 2 {
		t.Errorf("activations arch=%d impl=%d, want within ±2", archAct, implAct)
	}
	// Context switches agree within a small factor (kernel overheads
	// shift exact positions but not the structure).
	ca, ci := float64(archRes.Stats.ContextSwitches), float64(implRes.Stats.ContextSwitches)
	if ci < 0.5*ca || ci > 2*ca+4 {
		t.Errorf("context switches arch=%v impl=%v, want same order", ca, ci)
	}
}

func TestSanitize(t *testing.T) {
	used := map[string]bool{}
	if n := sanitize("my task-2", used); n != "my_task_2" {
		t.Errorf("sanitize = %q", n)
	}
	if n := sanitize("my task-2", used); n == "my_task_2" {
		t.Error("duplicate name not uniquified")
	}
	if n := sanitize("2fast", used); !strings.HasPrefix(n, "t2") {
		t.Errorf("leading digit not handled: %q", n)
	}
	if n := sanitize("", used); n == "" {
		t.Error("empty name not defaulted")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(&taskset.Set{}, ukernel.DefaultCyclePeriod); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Generate(feasibleSet(), 0); err == nil {
		t.Error("zero cycle period accepted")
	}
}
