// Package models contains the concrete system models of the paper's
// examples and experiments, shared by tests, examples, benchmarks and the
// experiment harness: the single-PE design of Figure 3 (whose simulation
// traces are Figure 8) and helpers to run it as an unscheduled
// specification model or as an RTOS-based architecture model.
package models

import (
	"repro/internal/arch"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/refine"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Figure3Params parameterizes the paper's Figure 3 example: behavior B1
// followed by the parallel composition of B2 and B3, channels c1/c2
// between them, and a bus driver whose ISR signals a semaphore when the
// external interrupt delivers data.
//
// Timeline (paper Figure 8): B2 = d5, send c1, d6, d7, recv c2, d8.
// B3 = d1, recv c1, d2, wait external data, d3, send c2, d4.
type Figure3Params struct {
	B1                             sim.Time // duration of behavior B1
	D1, D2, D3, D4, D5, D6, D7, D8 sim.Time // delay annotations
	IRQAt                          sim.Time // absolute time of the external interrupt (t4)
	ISRTime                        sim.Time // ISR service time
	PrioPE, PrioB2, PrioB3         int      // task priorities for the architecture model

	// D6Chunks splits B2's d6 delay annotation into that many equal
	// time_wait calls (default 1). Finer annotation granularity lets the
	// coarse time model serve the interrupt earlier — the knob of the
	// granularity ablation (DESIGN.md experiment F8-PREC, paper Section
	// 4.3: "the accuracy of preemption results is limited by the
	// granularity of task delay models").
	D6Chunks int
}

// DefaultFigure3 returns parameters that reproduce the paper's qualitative
// trace: the interrupt arrives while task B2 executes its d6 segment, so
// the coarse time model delays the switch to B3 until the end of d6
// (t4 → t4').
func DefaultFigure3() Figure3Params {
	return Figure3Params{
		B1: 100,
		D1: 50, D2: 80, D3: 60, D4: 40,
		D5: 40, D6: 120, D7: 70, D8: 50,
		IRQAt:   280,
		ISRTime: 0,
		PrioPE:  0,
		PrioB2:  2,
		PrioB3:  1, // B3 has the higher priority (paper Section 4.3)
	}
}

// Figure3 is an instantiated Figure 3 model bound to one PE.
type Figure3 struct {
	Params Figure3Params
	Root   *refine.Behavior
	Rec    *trace.Recorder
	IRQ    *arch.IRQ
	Sem    *channel.Semaphore
}

// BuildFigure3 constructs the behavior tree, channels, ISR and external
// stimulus on the given PE. The same builder serves both models; the PE's
// factory decides the synchronization layer (the paper's synchronization
// refinement).
func BuildFigure3(pe *arch.PE, rec *trace.Recorder, par Figure3Params) *Figure3 {
	f := pe.Factory()
	c1 := channel.NewQueue[int](f, "c1", 1)
	c2 := channel.NewQueue[int](f, "c2", 1)
	sem := channel.NewSemaphore(f, "sem", 0)

	m := &Figure3{Params: par, Rec: rec, Sem: sem}

	// Bus-driver receive path: the external interrupt's ISR releases the
	// semaphore the driver code in B3 blocks on (paper Figure 3).
	m.IRQ = pe.AttachISR("irq0", par.ISRTime, func(p *sim.Proc) {
		sem.Release(p)
	})
	stim := pe.Kernel().Spawn("external", func(p *sim.Proc) {
		p.WaitFor(par.IRQAt)
		m.IRQ.Raise(p)
	})
	stim.SetDaemon(true)

	b1 := refine.Leaf("B1", func(x refine.Exec) {
		x.Delay(par.B1)
		x.Marker("B1-done", 0)
	})
	b2 := refine.Leaf("B2", func(x refine.Exec) {
		p := x.Proc()
		x.Delay(par.D5)
		// Marker before the send: a send that wakes a higher-priority
		// receiver preempts this task immediately, so a marker placed
		// after the call would record the resume time instead.
		x.Marker("c1-send", 0)
		c1.Send(p, 1)
		chunks := par.D6Chunks
		if chunks < 1 {
			chunks = 1
		}
		per := par.D6 / sim.Time(chunks)
		rem := par.D6 - per*sim.Time(chunks)
		for i := 0; i < chunks; i++ {
			d := per
			if i == chunks-1 {
				d += rem
			}
			x.Delay(d)
		}
		x.Delay(par.D7)
		v := c2.Recv(p)
		x.Marker("c2-recv", int64(v))
		x.Delay(par.D8)
	})
	b3 := refine.Leaf("B3", func(x refine.Exec) {
		p := x.Proc()
		x.Delay(par.D1)
		_ = c1.Recv(p)
		x.Marker("c1-recv", 0)
		x.Delay(par.D2)
		sem.Acquire(p) // wait for data from another PE (bus driver)
		x.Marker("ext-data", 0)
		x.Delay(par.D3)
		x.Marker("c2-send", 0)
		c2.Send(p, 2)
		x.Delay(par.D4)
	})
	m.Root = refine.Seq("PE", b1, refine.Par("B2B3", b2, b3))
	return m
}

// Figure3Unscheduled builds and runs the unscheduled specification model
// (paper Figure 8(a)); it returns the trace.
func Figure3Unscheduled(par Figure3Params) (*trace.Recorder, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	pe := arch.NewHWPE(k, "PE") // no OS: behaviors run truly concurrently
	rec := trace.New("figure3-unscheduled")
	m := BuildFigure3(pe, rec, par)
	refine.RunUnscheduled(k, rec, m.Root)
	return rec, k.Run()
}

// Figure3Architecture builds and runs the RTOS-based architecture model
// under the given policy and time model (paper Figure 8(b)); it returns
// the trace and the OS instance for its statistics. An optional telemetry
// bus is attached to the RTOS instance.
func Figure3Architecture(par Figure3Params, policy core.Policy, tm core.TimeModel, bus ...*telemetry.Bus) (*trace.Recorder, *core.OS, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	pe := arch.NewSWPE(k, "PE", policy, core.WithTimeModel(tm))
	rec := trace.New("figure3-architecture")
	rec.Attach(pe.OS())
	for _, b := range bus {
		b.Attach(pe.OS())
		rec.TeeMarkers(b)
	}
	m := BuildFigure3(pe, rec, par)
	mapping := refine.Mapping{
		"PE": {Priority: par.PrioPE},
		"B2": {Priority: par.PrioB2},
		"B3": {Priority: par.PrioB3},
	}
	refine.RunArchitecture(k, pe.OS(), rec, m.Root, mapping)
	pe.OS().Start(nil)
	err := k.Run()
	if d := pe.OS().Diagnosis(); err == nil && d != nil {
		// The always-armed runtime diagnosis (deadlock/stall/starvation)
		// outranks a silently wrong result.
		err = d
	}
	return rec, pe.OS(), err
}
