package models

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// figure3Trace runs the architecture model and returns its full event
// list as bytes plus the OS instance, failing the test on any error.
func figure3Trace(t *testing.T, par Figure3Params, tm core.TimeModel) ([]byte, *core.OS) {
	t.Helper()
	rec, rtos, err := Figure3Architecture(par, core.PriorityPolicy{}, tm)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := rec.EventList(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), rtos
}

// TestFigure3ReplayDeterminism: running the same model twice must yield
// byte-identical traces under both time models — the bit-reproducibility
// contract of the simulation kernel, and the baseline the simcheck
// determinism oracle generalizes to random task sets.
func TestFigure3ReplayDeterminism(t *testing.T) {
	for _, tm := range []core.TimeModel{core.TimeModelCoarse, core.TimeModelSegmented} {
		a, _ := figure3Trace(t, DefaultFigure3(), tm)
		b, _ := figure3Trace(t, DefaultFigure3(), tm)
		if !bytes.Equal(a, b) {
			t.Errorf("time model %v: two runs produced different traces (%d vs %d bytes)",
				tm, len(a), len(b))
		}
		if len(a) == 0 {
			t.Errorf("time model %v: empty trace", tm)
		}
	}
}

// TestFigure3Conservation: busy + idle + overhead time must exactly
// partition the simulated span in the paper's own example, under both
// time models.
func TestFigure3Conservation(t *testing.T) {
	for _, tm := range []core.TimeModel{core.TimeModelCoarse, core.TimeModelSegmented} {
		_, rtos := figure3Trace(t, DefaultFigure3(), tm)
		if err := rtos.CheckConservation(); err != nil {
			t.Errorf("time model %v: %v", tm, err)
		}
	}
}

// TestCoarsePreemptionPinnedToDelayBoundary is the regression test for
// the paper's t4 -> t4' behavior (Figure 8, Section 4.3): wherever the
// external interrupt lands inside task B2's d6 delay annotation
// (270..390), the coarse model must defer the switch to B3 to the
// segment boundary at 390, while the segmented model serves it at the
// interrupt time itself.
func TestCoarsePreemptionPinnedToDelayBoundary(t *testing.T) {
	for _, irqAt := range []sim.Time{271, 280, 350, 389} {
		par := DefaultFigure3()
		par.IRQAt = irqAt
		rec, rtos, err := Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelCoarse)
		if err != nil {
			t.Fatal(err)
		}
		if ts := rec.MarkerTimes("ext-data"); len(ts) != 1 || ts[0] != 390 {
			t.Errorf("coarse, irq at %v: ext-data at %v, want [390] (delay boundary)", irqAt, ts)
		}
		if err := rtos.CheckConservation(); err != nil {
			t.Errorf("coarse, irq at %v: %v", irqAt, err)
		}

		rec, rtos, err = Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelSegmented)
		if err != nil {
			t.Fatal(err)
		}
		if ts := rec.MarkerTimes("ext-data"); len(ts) != 1 || ts[0] != irqAt {
			t.Errorf("segmented, irq at %v: ext-data at %v, want [%v] (immediate preemption)",
				irqAt, ts, irqAt)
		}
		if err := rtos.CheckConservation(); err != nil {
			t.Errorf("segmented, irq at %v: %v", irqAt, err)
		}
	}
}
