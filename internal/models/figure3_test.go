package models

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestFigure8aUnscheduled verifies the specification-model trace of the
// paper's Figure 8(a): B2 and B3 execute truly in parallel (overlapping
// delays), and the event sequence follows the paper's narrative.
func TestFigure8aUnscheduled(t *testing.T) {
	rec, err := Figure3Unscheduled(DefaultFigure3())
	if err != nil {
		t.Fatal(err)
	}
	// B1 finishes at 100, then B2/B3 overlap.
	if ts := rec.MarkerTimes("B1-done"); len(ts) != 1 || ts[0] != 100 {
		t.Errorf("B1-done at %v, want [100]", ts)
	}
	if ov := rec.Overlap("B2", "B3"); ov == 0 {
		t.Error("unscheduled model shows no B2/B3 overlap; expected true parallelism")
	}
	// Paper timeline with default params: c1 send at 140 (end of d5),
	// c1 data consumed when B3 reaches the receive at 150, external data
	// at the interrupt time 280, c2 send at 340, end at 390.
	checks := []struct {
		label string
		want  sim.Time
	}{
		{"c1-send", 140},
		{"c1-recv", 150},
		{"ext-data", 280},
		{"c2-send", 340},
	}
	for _, c := range checks {
		ts := rec.MarkerTimes(c.label)
		if len(ts) != 1 || ts[0] != c.want {
			t.Errorf("%s at %v, want [%v]", c.label, ts, c.want)
		}
	}
	if end := rec.End(); end != 390 {
		t.Errorf("trace ends at %v, want 390", end)
	}
	// No RTOS: zero context switches in the unscheduled model (Table 1).
	if cs := rec.ContextSwitches(); cs != 0 {
		t.Errorf("context switches = %d, want 0", cs)
	}
}

// TestFigure8bArchitectureCoarse verifies the architecture-model trace of
// Figure 8(b) under priority scheduling with the paper's coarse time
// model: tasks interleave (no overlap), and the interrupt at t4=280 takes
// effect only at t4'=390, the end of task B2's d6 time step.
func TestFigure8bArchitectureCoarse(t *testing.T) {
	rec, os, err := Figure3Architecture(DefaultFigure3(), core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if ov := rec.Overlap("B2", "B3"); ov != 0 {
		t.Errorf("architecture model overlap = %v, want 0 (serialized)", ov)
	}
	// Serialized timeline: B3 (higher priority) runs d1 at 100-150, blocks
	// on c1; B2 runs d5 150-190, sends c1; B3 preempts, d2 190-270, blocks
	// on the driver semaphore; B2 runs d6 270-390; IRQ at 280 readies B3
	// but the switch is delayed to 390.
	checks := []struct {
		label string
		want  sim.Time
	}{
		{"c1-send", 190},
		{"c1-recv", 190},
		{"ext-data", 390}, // t4' — the delayed preemption
		{"c2-send", 450},
		{"c2-recv", 560},
	}
	for _, c := range checks {
		ts := rec.MarkerTimes(c.label)
		if len(ts) != 1 || ts[0] != c.want {
			t.Errorf("%s at %v, want [%v]", c.label, ts, c.want)
		}
	}
	if end := rec.End(); end != 610 {
		t.Errorf("trace ends at %v, want 610 (serialized schedule)", end)
	}
	st := os.StatsSnapshot()
	if st.ContextSwitches < 4 {
		t.Errorf("context switches = %d, want ≥ 4", st.ContextSwitches)
	}
	if st.IRQs != 1 {
		t.Errorf("IRQs = %d, want 1", st.IRQs)
	}
	if st.Preemptions == 0 {
		t.Error("no preemptions recorded; the c1 send and the interrupt must preempt B2")
	}
}

// TestFigure8bSegmented verifies the extension time model: the interrupt
// preempts B2 immediately at t4=280, so B3 receives its data 110 time
// units earlier than under the coarse model.
func TestFigure8bSegmented(t *testing.T) {
	rec, _, err := Figure3Architecture(DefaultFigure3(), core.PriorityPolicy{}, core.TimeModelSegmented)
	if err != nil {
		t.Fatal(err)
	}
	ts := rec.MarkerTimes("ext-data")
	if len(ts) != 1 || ts[0] != 280 {
		t.Errorf("ext-data at %v, want [280] (immediate preemption)", ts)
	}
	// Total schedule length is unchanged: the same work is serialized.
	if end := rec.End(); end != 610 {
		t.Errorf("trace ends at %v, want 610", end)
	}
}

// TestFigure3ResponseTimeGap quantifies the paper's accuracy remark: the
// response time of B3 to the external interrupt differs between time
// models by the remainder of B2's d6 annotation.
func TestFigure3ResponseTimeGap(t *testing.T) {
	par := DefaultFigure3()
	coarse, _, err := Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	seg, _, err := Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelSegmented)
	if err != nil {
		t.Fatal(err)
	}
	respCoarse := coarse.MarkerTimes("ext-data")[0] - par.IRQAt
	respSeg := seg.MarkerTimes("ext-data")[0] - par.IRQAt
	if respSeg != 0 {
		t.Errorf("segmented response = %v, want 0", respSeg)
	}
	// d6 runs 270..390; IRQ at 280 → 110 remaining.
	if respCoarse != 110 {
		t.Errorf("coarse response = %v, want 110 (remainder of d6)", respCoarse)
	}
}

// TestFigure3FCFS runs the same model under non-preemptive FCFS: B2 (first
// to block on nothing) and B3 never preempt each other; the model still
// completes with a valid serialized schedule.
func TestFigure3FCFS(t *testing.T) {
	rec, _, err := Figure3Architecture(DefaultFigure3(), core.FCFSPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if ov := rec.Overlap("B2", "B3"); ov != 0 {
		t.Errorf("overlap = %v, want 0", ov)
	}
	if rec.End() <= 390 {
		t.Errorf("end = %v; serialized schedule must exceed the unscheduled 390", rec.End())
	}
}
