package models

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestJPEGSpecThroughputBoundedByDCT(t *testing.T) {
	par := SmallJPEG()
	res, rec, err := JPEGSpec(par)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rec.MarkerTimes("block-out")); n != par.Blocks {
		t.Fatalf("encoded %d blocks, want %d", n, par.Blocks)
	}
	// Pipeline steady state: one block per DCT time, plus the fill of the
	// quant+huff tail.
	wantMin := sim.Time(par.Blocks) * par.DCTTimeSW
	wantMax := wantMin + par.QuantTime + par.HuffTime + 10*sim.Microsecond
	if res.Total < wantMin || res.Total > wantMax {
		t.Errorf("total = %v, want in [%v, %v]", res.Total, wantMin, wantMax)
	}
	// Stages really overlap in the specification model.
	if ov := rec.Overlap("dct", "huff"); ov == 0 {
		t.Error("dct and huff do not overlap in the unscheduled model")
	}
}

func TestJPEGSWSerializes(t *testing.T) {
	par := SmallJPEG()
	res, rec, err := JPEGSW(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rec.MarkerTimes("block-out")); n != par.Blocks {
		t.Fatalf("encoded %d blocks, want %d", n, par.Blocks)
	}
	// Fully serialized: total = blocks × (dct + quant + huff).
	want := sim.Time(par.Blocks) * (par.DCTTimeSW + par.QuantTime + par.HuffTime)
	if res.Total != want {
		t.Errorf("total = %v, want %v (serialized stages)", res.Total, want)
	}
	for _, pair := range [][2]string{{"dct", "quant"}, {"dct", "huff"}, {"quant", "huff"}} {
		if ov := rec.Overlap(pair[0], pair[1]); ov != 0 {
			t.Errorf("%s/%s overlap = %v, want 0", pair[0], pair[1], ov)
		}
	}
	if res.CtxSwitch == 0 {
		t.Error("no context switches in the software mapping")
	}
}

func TestJPEGHWSWSpeedsUp(t *testing.T) {
	par := SmallJPEG()
	sw, _, err := JPEGSW(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	hw, rec, bus, err := JPEGHWSW(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rec.MarkerTimes("block-out")); n != par.Blocks {
		t.Fatalf("encoded %d blocks, want %d", n, par.Blocks)
	}
	// Offloading the DCT must shorten the encode substantially: the CPU's
	// serialized work per block drops from 800 µs to 400 µs + bus traffic.
	speedup := float64(sw.Total) / float64(hw.Total)
	if speedup < 1.5 {
		t.Errorf("HW/SW speedup = %.2f (sw %v, hw %v), want ≥ 1.5",
			speedup, sw.Total, hw.Total)
	}
	if bus.Transfers() != uint64(2*par.Blocks) {
		t.Errorf("bus transfers = %d, want %d (to and from the accelerator)",
			bus.Transfers(), 2*par.Blocks)
	}
	if bus.BusyTime() == 0 {
		t.Error("bus never busy")
	}
	// The accelerated DCT overlaps the CPU's quant/huff work.
	if ov := rec.Overlap("dct", "huff"); ov == 0 {
		t.Error("accelerator does not overlap software stages")
	}
}

func TestJPEGMappingComparison(t *testing.T) {
	// Design-space shape across the three mappings: the software mapping
	// is the slowest (serialized stages with the slow software DCT); both
	// the unscheduled specification and the HW/SW partition beat it. The
	// partition may even beat the specification because the accelerator's
	// DCT is 10× faster than the software DCT the specification models —
	// exactly the kind of trade-off the flow exists to expose.
	par := SmallJPEG()
	spec, _, err := JPEGSpec(par)
	if err != nil {
		t.Fatal(err)
	}
	sw, _, err := JPEGSW(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	hw, _, _, err := JPEGHWSW(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if !(spec.Total < sw.Total) {
		t.Errorf("spec %v not faster than software mapping %v", spec.Total, sw.Total)
	}
	if !(hw.Total < sw.Total) {
		t.Errorf("hw/sw %v not faster than software mapping %v", hw.Total, sw.Total)
	}
	// The CPU-side serialized work per block halves (800 → 400 µs), so
	// the partition should land near half the software mapping's time.
	ratio := float64(sw.Total) / float64(hw.Total)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("hw/sw speedup = %.2f, want ≈2", ratio)
	}
}
