package models

import (
	"time"

	"repro/internal/arch"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/refine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The JPEG encoder is the second classic demonstrator of the authors'
// SoC Environment (alongside the GSM vocoder): a block pipeline of
// DCT → quantization → Huffman encoding. Here it exercises the design
// flow's mapping alternatives: the unscheduled specification, a pure
// software mapping (all stages as tasks on one RTOS instance), and a
// hardware/software partition with the DCT on a hardware accelerator PE
// behind the system bus.

// JPEGParams describes the encoder workload: number of 8×8 blocks and
// per-block stage delays. DCTTimeHW applies when the DCT runs on the
// hardware accelerator.
type JPEGParams struct {
	Blocks     int
	QueueDepth int

	DCTTimeSW sim.Time // DCT per block in software
	DCTTimeHW sim.Time // DCT per block on the accelerator
	QuantTime sim.Time // quantization per block
	HuffTime  sim.Time // Huffman encoding per block

	// Bus parameters for the HW/SW mapping.
	BusArbDelay sim.Time
	BusPerByte  sim.Time
	BlockBytes  int // 8×8 samples
}

// DefaultJPEG returns delays in the ratio of typical profiling results:
// the DCT dominates in software and is ~10× faster in hardware.
func DefaultJPEG() JPEGParams {
	return JPEGParams{
		Blocks:      256, // a 128×128 image
		QueueDepth:  2,
		DCTTimeSW:   400 * sim.Microsecond,
		DCTTimeHW:   40 * sim.Microsecond,
		QuantTime:   150 * sim.Microsecond,
		HuffTime:    250 * sim.Microsecond,
		BusArbDelay: 2 * sim.Microsecond,
		BusPerByte:  100,
		BlockBytes:  64,
	}
}

// SmallJPEG is the test-sized configuration.
func SmallJPEG() JPEGParams {
	p := DefaultJPEG()
	p.Blocks = 16
	return p
}

// JPEGResults aggregates one encoder run.
type JPEGResults struct {
	Model      string
	Blocks     int
	Total      sim.Time      // simulated end-to-end encode time
	PerBlock   sim.Time      // Total / Blocks
	Wall       time.Duration // host time
	CtxSwitch  uint64
	BusBusy    sim.Time // HW/SW mapping only
	StageTimes map[string]sim.Time
}

// buildJPEGPipeline constructs the three-stage behavior pipeline on a
// single PE's factory. The source injects blocks as fast as the pipeline
// accepts them (image already in memory).
func buildJPEGPipeline(f channel.Factory, rec *trace.Recorder, par JPEGParams,
	dctTime sim.Time) *refine.Behavior {
	raw := channel.NewQueue[int](f, "raw", par.QueueDepth)
	freq := channel.NewQueue[int](f, "freq", par.QueueDepth)
	quant := channel.NewQueue[int](f, "quantized", par.QueueDepth)

	source := refine.Leaf("source", func(x refine.Exec) {
		p := x.Proc()
		for b := 0; b < par.Blocks; b++ {
			raw.Send(p, b)
		}
	})
	dct := refine.Leaf("dct", func(x refine.Exec) {
		p := x.Proc()
		for b := 0; b < par.Blocks; b++ {
			v := raw.Recv(p)
			x.Delay(dctTime)
			freq.Send(p, v)
		}
	})
	quantB := refine.Leaf("quant", func(x refine.Exec) {
		p := x.Proc()
		for b := 0; b < par.Blocks; b++ {
			v := freq.Recv(p)
			x.Delay(par.QuantTime)
			quant.Send(p, v)
		}
	})
	huff := refine.Leaf("huff", func(x refine.Exec) {
		p := x.Proc()
		for b := 0; b < par.Blocks; b++ {
			v := quant.Recv(p)
			x.Delay(par.HuffTime)
			x.Marker("block-out", int64(v))
		}
	})
	return refine.Seq("jpeg", refine.Par("stages", source, dct, quantB, huff))
}

// jpegResults derives metrics from a finished run.
func jpegResults(model string, par JPEGParams, rec *trace.Recorder,
	end sim.Time, wall time.Duration, cs uint64) JPEGResults {
	res := JPEGResults{
		Model:      model,
		Blocks:     par.Blocks,
		Total:      end,
		Wall:       wall,
		CtxSwitch:  cs,
		StageTimes: map[string]sim.Time{},
	}
	if par.Blocks > 0 {
		res.PerBlock = end / sim.Time(par.Blocks)
	}
	for _, stage := range []string{"dct", "quant", "huff"} {
		res.StageTimes[stage] = rec.BusyTime(stage)
	}
	return res
}

// JPEGSpec runs the unscheduled specification model: all stages truly
// concurrent, so throughput is set by the slowest stage (the software
// DCT).
func JPEGSpec(par JPEGParams) (JPEGResults, *trace.Recorder, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	pe := arch.NewHWPE(k, "PE")
	rec := trace.New("jpeg-spec")
	root := buildJPEGPipeline(pe.Factory(), rec, par, par.DCTTimeSW)
	refine.RunUnscheduled(k, rec, root)
	start := time.Now()
	err := k.Run()
	return jpegResults("unscheduled", par, rec, k.Now(), time.Since(start), 0), rec, err
}

// JPEGSW runs the pure software mapping: every stage becomes a task on one
// RTOS model instance, so stage delays serialize.
func JPEGSW(par JPEGParams, policy core.Policy, tm core.TimeModel) (JPEGResults, *trace.Recorder, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	pe := arch.NewSWPE(k, "CPU", policy, core.WithTimeModel(tm))
	rec := trace.New("jpeg-sw")
	rec.Attach(pe.OS())
	root := buildJPEGPipeline(pe.Factory(), rec, par, par.DCTTimeSW)
	refine.RunArchitecture(k, pe.OS(), rec, root, refine.Mapping{
		"jpeg":   {Priority: 0},
		"source": {Priority: 1},
		"dct":    {Priority: 2},
		"quant":  {Priority: 3},
		"huff":   {Priority: 4},
	})
	pe.OS().Start(nil)
	start := time.Now()
	err := k.Run()
	return jpegResults("software", par, rec, k.Now(), time.Since(start),
		pe.OS().StatsSnapshot().ContextSwitches), rec, err
}

// JPEGHWSW runs the hardware/software partition: the DCT executes on a
// dedicated accelerator PE, fed and drained over the system bus; source,
// quantization and Huffman remain tasks on the CPU.
func JPEGHWSW(par JPEGParams, policy core.Policy, tm core.TimeModel) (JPEGResults, *trace.Recorder, *arch.Bus, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	bus := arch.NewBus(k, "bus", par.BusArbDelay, par.BusPerByte)
	cpu := arch.NewSWPE(k, "CPU", policy, core.WithTimeModel(tm))
	acc := arch.NewHWPE(k, "DCT-ACC")
	rec := trace.New("jpeg-hwsw")
	rec.Attach(cpu.OS())

	toAcc := arch.NewLink[int](bus, "raw", cpu, acc, par.BlockBytes, 0)
	fromAcc := arch.NewLink[int](bus, "freq", acc, cpu, par.BlockBytes, 1*sim.Microsecond)

	// Accelerator: a hardware process performing the DCT per block.
	k.Spawn("dct-hw", func(p *sim.Proc) {
		for b := 0; b < par.Blocks; b++ {
			v := toAcc.Recv(p)
			p.WaitFor(par.DCTTimeHW)
			rec.SegBegin(p.Now()-par.DCTTimeHW, "dct")
			rec.SegEnd(p.Now(), "dct")
			fromAcc.Send(p, v)
		}
	})

	// Software side: source feeds the accelerator, quant+huff drain it.
	f := cpu.Factory()
	quant := channel.NewQueue[int](f, "quantized", par.QueueDepth)
	source := refine.Leaf("source", func(x refine.Exec) {
		p := x.Proc()
		for b := 0; b < par.Blocks; b++ {
			toAcc.Send(p, b)
		}
	})
	quantB := refine.Leaf("quant", func(x refine.Exec) {
		p := x.Proc()
		for b := 0; b < par.Blocks; b++ {
			v := fromAcc.Recv(p)
			x.Delay(par.QuantTime)
			quant.Send(p, v)
		}
	})
	huff := refine.Leaf("huff", func(x refine.Exec) {
		p := x.Proc()
		for b := 0; b < par.Blocks; b++ {
			v := quant.Recv(p)
			x.Delay(par.HuffTime)
			x.Marker("block-out", int64(v))
		}
	})
	root := refine.Seq("jpeg", refine.Par("stages", source, quantB, huff))
	refine.RunArchitecture(k, cpu.OS(), rec, root, refine.Mapping{
		"jpeg":   {Priority: 0},
		"source": {Priority: 1},
		"quant":  {Priority: 3},
		"huff":   {Priority: 4},
	})
	cpu.OS().Start(nil)
	start := time.Now()
	err := k.Run()
	res := jpegResults("hw/sw", par, rec, k.Now(), time.Since(start),
		cpu.OS().StatsSnapshot().ContextSwitches)
	res.BusBusy = bus.BusyTime()
	return res, rec, bus, err
}
