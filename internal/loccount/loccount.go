// Package loccount computes the lines-of-code metric of Table 1: the size
// of each model variant's source. The paper reports 13,475 lines for the
// unscheduled vocoder model, 15,552 for the architecture model (the delta
// is essentially the 2,000-line RTOS model library plus refinement edits)
// and 79,096 for the implementation model (generated target code). Here
// the variants are measured as the Go packages each model is built from.
package loccount

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// CountFile returns the number of non-blank lines in one source file.
func CountFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n, sc.Err()
}

// CountDir returns the total non-blank lines of all non-test .go files in
// a directory (not recursive).
func CountDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		n, err := CountFile(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// RepoRoot locates the repository root from this source file's compiled-in
// path. It works when the source tree is present (tests, benchmarks, and
// tools run from a checkout).
func RepoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("loccount: no caller information")
	}
	// file = <root>/internal/loccount/loccount.go
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return "", fmt.Errorf("loccount: %s does not look like the repo root: %v", root, err)
	}
	return root, nil
}

// model package sets (relative to the repo root). Each model variant is
// built from the packages listed; later variants add to the earlier ones,
// mirroring the paper's growth from specification to implementation.
var (
	specPkgs = []string{"internal/sim", "internal/channel", "internal/refine",
		"internal/arch", "internal/trace", "internal/vocoder"}
	archExtra = []string{"internal/core"}
	implExtra = []string{"internal/iss", "internal/ukernel"}
)

// ModelLoC returns the Table 1 lines-of-code rows: source size of the
// unscheduled, architecture and implementation vocoder models. firmware
// is the assembly line count of the implementation model's application
// (vocoder.FirmwareLines()), passed in to avoid an import cycle.
func ModelLoC(firmware int) (spec, arch, impl int, err error) {
	root, err := RepoRoot()
	if err != nil {
		return 0, 0, 0, err
	}
	count := func(pkgs []string) (int, error) {
		total := 0
		for _, p := range pkgs {
			n, err := CountDir(filepath.Join(root, p))
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	}
	if spec, err = count(specPkgs); err != nil {
		return
	}
	extra, err := count(archExtra)
	if err != nil {
		return
	}
	arch = spec + extra
	extra2, err := count(implExtra)
	if err != nil {
		return
	}
	impl = arch + extra2 + firmware
	return
}
