package loccount

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCountFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	content := "package x\n\nfunc F() {}\n\n\n// comment\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := CountFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // package, func, comment — blanks dropped
		t.Errorf("count = %d, want 3", n)
	}
}

func TestCountDirSkipsTests(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.go"), []byte("package a\nvar X = 1\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "a_test.go"), []byte("package a\nvar Y = 1\nvar Z = 2\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "note.txt"), []byte("irrelevant\n"), 0o644)
	n, err := CountDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("count = %d, want 2 (tests and non-Go excluded)", n)
	}
}

func TestRepoRoot(t *testing.T) {
	root, err := RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("root %q has no go.mod: %v", root, err)
	}
}

func TestModelLoCOrdering(t *testing.T) {
	spec, arch, impl, err := ModelLoC(80)
	if err != nil {
		t.Fatal(err)
	}
	// The Table 1 shape: specification < architecture < implementation.
	if !(spec > 0 && spec < arch && arch < impl) {
		t.Errorf("LoC ordering violated: spec=%d arch=%d impl=%d", spec, arch, impl)
	}
	// The architecture delta is the RTOS model library — the paper's is
	// ~2000 lines of SpecC; ours should be the same order of magnitude.
	delta := arch - spec
	if delta < 300 || delta > 5000 {
		t.Errorf("RTOS model library size = %d lines, outside plausible range", delta)
	}
}

func TestCountFileMissing(t *testing.T) {
	if _, err := CountFile("/nonexistent/file.go"); err == nil {
		t.Error("missing file did not error")
	}
}
