package refine_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/refine"
	"repro/internal/sim"
)

// One behavior tree, two models: the unscheduled specification overlaps
// the parallel branches, the refined architecture model serializes them
// on the RTOS — the paper's refinement in five lines of designer input.
func Example() {
	build := func() *refine.Behavior {
		return refine.Seq("top",
			refine.Leaf("init", func(x refine.Exec) { x.Delay(10) }),
			refine.Par("workers",
				refine.Leaf("fast", func(x refine.Exec) { x.Delay(20) }),
				refine.Leaf("slow", func(x refine.Exec) { x.Delay(40) }),
			),
		)
	}

	// Specification model (Figure 2(a)).
	k1 := sim.NewKernel()
	refine.RunUnscheduled(k1, nil, build())
	if err := k1.Run(); err != nil {
		fmt.Println("error:", err)
	}
	fmt.Printf("unscheduled end: %v (10 + max(20,40))\n", k1.Now())

	// Architecture model (Figure 2(b)): same tree + a task mapping.
	k2 := sim.NewKernel()
	rtos := core.New(k2, "CPU", core.PriorityPolicy{})
	refine.RunArchitecture(k2, rtos, nil, build(), refine.Mapping{
		"fast": {Priority: 1},
		"slow": {Priority: 2},
	})
	rtos.Start(nil)
	if err := k2.Run(); err != nil {
		fmt.Println("error:", err)
	}
	fmt.Printf("architecture end: %v (10 + 20 + 40 serialized)\n", k2.Now())
	// Output:
	// unscheduled end: 50ns (10 + max(20,40))
	// architecture end: 70ns (10 + 20 + 40 serialized)
}
