// Package refine implements the paper's dynamic-scheduling refinement
// (Section 4.2): it turns an unscheduled specification model into an
// RTOS-based architecture model.
//
// Behaviors — the SLDL's units of computation — are written once against
// the abstract Exec interface. The unscheduled executor binds Exec.Delay
// to the kernel's waitfor and runs parallel compositions as truly
// concurrent processes (paper Figure 2(a)). The architecture executor
// binds Exec.Delay to the RTOS model's time_wait, converts every behavior
// of a parallel composition into an RTOS task with a priority from the
// mapping (task refinement, Figure 5), and brackets SLDL par statements
// with ParStart/ParEnd (dynamic task forking, Figure 6). Synchronization
// refinement (Figure 7) happens in internal/channel by swapping the
// channel factory. The refinement is therefore a mechanical substitution
// of primitives, matching the paper's claim that it is automatable.
package refine

import (
	"fmt"

	"repro/internal/sim"
)

// kind discriminates behavior composition.
type kind int

const (
	kindLeaf kind = iota
	kindSeq
	kindPar
)

// Behavior is a node of the specification's serial-parallel composition
// hierarchy.
type Behavior struct {
	name     string
	kind     kind
	fn       func(x Exec)
	children []*Behavior

	loopCount int        // Loop: repetitions
	fsmStart  string     // FSM: initial state
	fsmNext   Transition // FSM: transition function
}

// Leaf creates a leaf behavior whose body is fn. The body performs
// computation by calling x.Delay for its annotated execution time and
// communicates through channels created from the model's channel.Factory.
func Leaf(name string, fn func(x Exec)) *Behavior {
	if fn == nil {
		panic(fmt.Sprintf("refine: leaf %q has nil body", name))
	}
	return &Behavior{name: name, kind: kindLeaf, fn: fn}
}

// Seq creates a sequential composition: children execute in order.
func Seq(name string, children ...*Behavior) *Behavior {
	return &Behavior{name: name, kind: kindSeq, children: children}
}

// Par creates a parallel composition: children execute concurrently and
// the composition completes when all children have (SLDL par statement).
func Par(name string, children ...*Behavior) *Behavior {
	return &Behavior{name: name, kind: kindPar, children: children}
}

// Name returns the behavior's name.
func (b *Behavior) Name() string { return b.name }

// Names returns the names of all behaviors in the subtree, pre-order.
func (b *Behavior) Names() []string {
	out := []string{b.name}
	for _, c := range b.children {
		out = append(out, c.Names()...)
	}
	return out
}

// Validate checks structural soundness: unique names, leaves with bodies,
// composites with at least one child.
func (b *Behavior) Validate() error {
	seen := map[string]bool{}
	var walk func(n *Behavior) error
	walk = func(n *Behavior) error {
		if n == nil {
			return fmt.Errorf("refine: nil behavior in tree of %q", b.name)
		}
		if n.name == "" {
			return fmt.Errorf("refine: unnamed behavior in tree of %q", b.name)
		}
		if seen[n.name] {
			return fmt.Errorf("refine: duplicate behavior name %q", n.name)
		}
		seen[n.name] = true
		switch n.kind {
		case kindLeaf:
			if n.fn == nil {
				return fmt.Errorf("refine: leaf %q has nil body", n.name)
			}
		case kindLoop:
			if len(n.children) != 1 {
				return fmt.Errorf("refine: loop %q needs exactly one child", n.name)
			}
		case kindFSM:
			if len(n.children) == 0 {
				return fmt.Errorf("refine: fsm %q has no states", n.name)
			}
			found := false
			for _, c := range n.children {
				if c != nil && c.name == n.fsmStart {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("refine: fsm %q start state %q not among its states",
					n.name, n.fsmStart)
			}
		default:
			if len(n.children) == 0 {
				return fmt.Errorf("refine: composite %q has no children", n.name)
			}
		}
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(b)
}

// Exec is the abstract execution interface behavior bodies are written
// against. Its two implementations perform the paper's primitive
// substitution: Delay is SLDL waitfor at specification level and RTOS
// time_wait at architecture level.
type Exec interface {
	// Delay models execution time of the behavior.
	Delay(d sim.Time)
	// Proc returns the simulation process executing the behavior, for
	// channel operations.
	Proc() *sim.Proc
	// Now returns the current simulation time.
	Now() sim.Time
	// Marker records an instrumentation point in the model's trace.
	Marker(label string, arg int64)
	// BehaviorName returns the name of the executing leaf behavior.
	BehaviorName() string
}
