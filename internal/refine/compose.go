package refine

import "fmt"

// This file adds the remaining SpecC-style composition forms beyond the
// paper's serial-parallel examples: bounded repetition (Loop) and finite
// state machine composition (SpecC's fsm construct). Both execute within
// the enclosing task's context in the architecture model — like Seq, they
// introduce no new tasks, so refinement treats them transparently.

const (
	kindLoop kind = iota + 100
	kindFSM
)

// Loop creates a bounded repetition: the child executes n times in
// sequence.
func Loop(name string, n int, child *Behavior) *Behavior {
	if n < 0 {
		panic(fmt.Sprintf("refine: loop %q with negative count %d", name, n))
	}
	b := &Behavior{name: name, kind: kindLoop, children: []*Behavior{child}}
	b.loopCount = n
	return b
}

// Transition selects the next state of an FSM composition: it receives
// the state (behavior) that just finished and returns the name of the
// next state, or "" to leave the FSM.
type Transition func(from string, x Exec) string

// FSM creates a finite-state-machine composition over the given state
// behaviors. Execution starts at start and follows next after each state
// until it returns "" (done) — SpecC's fsm construct.
func FSM(name, start string, next Transition, states ...*Behavior) *Behavior {
	b := &Behavior{name: name, kind: kindFSM, children: states}
	b.fsmStart = start
	b.fsmNext = next
	return b
}

// execComposite runs the extended composites; shared by both executors
// (exec runs a child in the current context).
func execComposite(b *Behavior, x Exec, exec func(*Behavior)) {
	switch b.kind {
	case kindLoop:
		for i := 0; i < b.loopCount; i++ {
			exec(b.children[0])
		}
	case kindFSM:
		byName := make(map[string]*Behavior, len(b.children))
		for _, c := range b.children {
			byName[c.name] = c
		}
		state := b.fsmStart
		for state != "" {
			s, ok := byName[state]
			if !ok {
				panic(fmt.Sprintf("refine: fsm %q transitions to unknown state %q", b.name, state))
			}
			exec(s)
			if b.fsmNext == nil {
				return
			}
			state = b.fsmNext(state, x)
		}
	default:
		panic(fmt.Sprintf("refine: execComposite on kind %d", int(b.kind)))
	}
}
