package refine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestLoopRepeatsChild(t *testing.T) {
	count := 0
	root := Seq("root", Loop("l", 5, Leaf("body", func(x Exec) {
		count++
		x.Delay(10)
	})))
	k := sim.NewKernel()
	RunUnscheduled(k, nil, root)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("body ran %d times, want 5", count)
	}
	if k.Now() != 50 {
		t.Errorf("end = %v, want 50", k.Now())
	}
}

func TestLoopZeroIterations(t *testing.T) {
	ran := false
	root := Seq("root", Loop("l", 0, Leaf("body", func(x Exec) { ran = true })))
	k := sim.NewKernel()
	RunUnscheduled(k, nil, root)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("zero-iteration loop body executed")
	}
}

func TestLoopInArchitectureModel(t *testing.T) {
	// A loop inside a par child executes within that child's task.
	root := Seq("root", Par("p",
		Loop("la", 3, Leaf("a", func(x Exec) { x.Delay(10) })),
		Leaf("b", func(x Exec) { x.Delay(5) }),
	))
	k := sim.NewKernel()
	os := core.New(k, "PE", core.PriorityPolicy{})
	RunArchitecture(k, os, nil, root, Mapping{"la": {Priority: 1}, "b": {Priority: 2}})
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 35 {
		t.Errorf("end = %v, want 35 (3×10 + 5 serialized)", k.Now())
	}
}

func TestFSMFollowsTransitions(t *testing.T) {
	var visits []string
	mkState := func(name string, d sim.Time) *Behavior {
		return Leaf(name, func(x Exec) {
			visits = append(visits, name)
			x.Delay(d)
		})
	}
	// idle -> work -> work -> done -> (exit)
	workCount := 0
	fsm := FSM("ctrl", "idle", func(from string, x Exec) string {
		switch from {
		case "idle":
			return "work"
		case "work":
			workCount++
			if workCount < 2 {
				return "work"
			}
			return "done"
		default:
			return ""
		}
	}, mkState("idle", 5), mkState("work", 10), mkState("done", 1))

	k := sim.NewKernel()
	RunUnscheduled(k, nil, Seq("root", fsm))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "idle,work,work,done"
	if got := strings.Join(visits, ","); got != want {
		t.Errorf("visits = %s, want %s", got, want)
	}
	if k.Now() != 26 { // 5 + 10 + 10 + 1
		t.Errorf("end = %v, want 26", k.Now())
	}
}

func TestFSMInArchitectureModel(t *testing.T) {
	var visits []string
	fsm := FSM("ctrl", "s1", func(from string, x Exec) string {
		if from == "s1" {
			return "s2"
		}
		return ""
	},
		Leaf("s1", func(x Exec) { visits = append(visits, "s1"); x.Delay(10) }),
		Leaf("s2", func(x Exec) { visits = append(visits, "s2"); x.Delay(20) }),
	)
	k := sim.NewKernel()
	os := core.New(k, "PE", core.PriorityPolicy{})
	rec := trace.New("arch")
	rec.Attach(os)
	RunArchitecture(k, os, rec, Seq("root", fsm), Mapping{})
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(visits, ",") != "s1,s2" {
		t.Errorf("visits = %v", visits)
	}
	if k.Now() != 30 {
		t.Errorf("end = %v, want 30", k.Now())
	}
}

func TestFSMValidate(t *testing.T) {
	bad := FSM("f", "missing", nil, Leaf("s", func(x Exec) {}))
	if err := Seq("root", bad).Validate(); err == nil ||
		!strings.Contains(err.Error(), "start state") {
		t.Errorf("bad start state not rejected: %v", err)
	}
	empty := &Behavior{name: "f", kind: kindFSM}
	if err := Seq("root", empty).Validate(); err == nil {
		t.Error("FSM without states not rejected")
	}
	badLoop := &Behavior{name: "l", kind: kindLoop}
	if err := Seq("root2", badLoop).Validate(); err == nil {
		t.Error("loop without child not rejected")
	}
}

func TestFSMUnknownTransitionPanics(t *testing.T) {
	fsm := FSM("f", "a", func(from string, x Exec) string { return "ghost" },
		Leaf("a", func(x Exec) {}))
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("unknown transition target did not panic")
		}
	}()
	RunUnscheduled(k, nil, Seq("root", fsm))
	_ = k.Run()
}

func TestLoopNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative loop count did not panic")
		}
	}()
	Loop("l", -1, Leaf("x", func(x Exec) {}))
}
