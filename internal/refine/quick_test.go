package refine

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// randTree builds a random serial-parallel behavior tree of pure delay
// leaves from a deterministic seed and returns it together with its two
// analytic execution times: the critical path (unscheduled model) and the
// total work (architecture model: fully serialized, never idle).
func randTree(seed uint32, depth int, counter *int) (b *Behavior, critical, total sim.Time) {
	next := func() uint32 {
		seed = seed*1664525 + 1013904223
		return seed
	}
	*counter++
	name := fmt.Sprintf("n%d", *counter)
	if depth == 0 || next()%3 == 0 {
		// Leaf with 1..3 delay segments.
		n := int(next()%3) + 1
		var delays []sim.Time
		var sum sim.Time
		for i := 0; i < n; i++ {
			d := sim.Time(next()%20 + 1)
			delays = append(delays, d)
			sum += d
		}
		leaf := Leaf(name, func(x Exec) {
			for _, d := range delays {
				x.Delay(d)
			}
		})
		return leaf, sum, sum
	}
	fanout := int(next()%2) + 2
	var kids []*Behavior
	var critSum, critMax, tot sim.Time
	par := next()%2 == 0
	for i := 0; i < fanout; i++ {
		c, cc, ct := randTree(next(), depth-1, counter)
		kids = append(kids, c)
		tot += ct
		critSum += cc
		if cc > critMax {
			critMax = cc
		}
	}
	if par {
		return Par(name, kids...), critMax, tot
	}
	return Seq(name, kids...), critSum, tot
}

// TestQuickModelsMatchAnalyticTimes: for arbitrary delay-only behavior
// trees, the unscheduled model finishes at the critical-path time and the
// architecture model finishes at the total-work time (serialization with
// no idle), and the trace-accounted busy time equals total work in both.
func TestQuickModelsMatchAnalyticTimes(t *testing.T) {
	f := func(seed uint32) bool {
		var counter int
		tree, critical, total := randTree(seed, 3, &counter)
		root := Seq("root", tree)

		// Unscheduled.
		k1 := sim.NewKernel()
		rec1 := trace.New("spec")
		RunUnscheduled(k1, rec1, root)
		if err := k1.Run(); err != nil {
			t.Logf("spec run: %v", err)
			return false
		}
		if k1.Now() != critical {
			t.Logf("seed %d: spec end %v, want critical path %v", seed, k1.Now(), critical)
			return false
		}

		// Architecture (priorities arbitrary: total time is invariant).
		k2 := sim.NewKernel()
		os := core.New(k2, "PE", core.PriorityPolicy{})
		RunArchitecture(k2, os, nil, root, Mapping{})
		os.Start(nil)
		if err := k2.Run(); err != nil {
			t.Logf("arch run: %v", err)
			return false
		}
		if k2.Now() != total {
			t.Logf("seed %d: arch end %v, want total work %v", seed, k2.Now(), total)
			return false
		}
		if bt := os.StatsSnapshot().BusyTime; bt != total {
			t.Logf("seed %d: busy %v, want %v", seed, bt, total)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickArchitectureNeverOverlaps: for arbitrary trees, no two leaves
// of the architecture model ever execute at the same simulated instant.
func TestQuickArchitectureNeverOverlaps(t *testing.T) {
	f := func(seed uint32) bool {
		var counter int
		tree, _, _ := randTree(seed, 3, &counter)
		root := Seq("root", tree)
		k := sim.NewKernel()
		os := core.New(k, "PE", core.PriorityPolicy{})
		rec := trace.New("arch")
		rec.Attach(os)
		RunArchitecture(k, os, rec, root, Mapping{})
		os.Start(nil)
		if err := k.Run(); err != nil {
			return false
		}
		tasks := rec.Tasks()
		for i := 0; i < len(tasks); i++ {
			for j := i + 1; j < len(tasks); j++ {
				if rec.Overlap(tasks[i], tasks[j]) != 0 {
					t.Logf("seed %d: %s and %s overlap", seed, tasks[i], tasks[j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickRefinementPreservesLeafWork: each leaf's busy time is identical
// between the two models — refinement re-schedules but never changes the
// modeled computation.
func TestQuickRefinementPreservesLeafWork(t *testing.T) {
	f := func(seed uint32) bool {
		var counter int
		tree, _, _ := randTree(seed, 2, &counter)
		root := Seq("root", tree)

		k1 := sim.NewKernel()
		rec1 := trace.New("spec")
		RunUnscheduled(k1, rec1, root)
		if err := k1.Run(); err != nil {
			return false
		}
		k2 := sim.NewKernel()
		os := core.New(k2, "PE", core.PriorityPolicy{})
		rec2 := trace.New("arch")
		rec2.Attach(os)
		RunArchitecture(k2, os, rec2, root, Mapping{})
		os.Start(nil)
		if err := k2.Run(); err != nil {
			return false
		}
		for _, task := range rec1.Tasks() {
			specBusy := rec1.BusyTime(task)
			if specBusy == 0 {
				continue // composite nodes have no own execution
			}
			// In the arch model seq-composed leaves execute within their
			// ancestor task, so compare only leaves that became tasks.
			archBusy := rec2.BusyTime(task)
			if archBusy != 0 && archBusy != specBusy {
				t.Logf("seed %d: task %s busy %v (arch) vs %v (spec)", seed, task, archBusy, specBusy)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
