package refine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TaskSpec holds the per-task parameters introduced by the refinement
// (paper Figure 5: task_create(name, type, period, wcet) plus the assigned
// priority).
type TaskSpec struct {
	Priority int
	Type     core.TaskType
	Period   sim.Time
	WCET     sim.Time
}

// Mapping assigns a TaskSpec to each behavior name that becomes a task.
// Behaviors without an entry default to aperiodic tasks with priority 100
// plus their creation order (stable but lowest precedence).
type Mapping map[string]TaskSpec

// spec returns the TaskSpec for a behavior, applying defaults.
func (m Mapping) spec(name string, order int) TaskSpec {
	if s, ok := m[name]; ok {
		return s
	}
	return TaskSpec{Priority: 100 + order, Type: core.Aperiodic}
}

// RunUnscheduled executes the behavior tree as the unscheduled
// specification model (paper Figure 2(a)): parallel compositions run
// truly concurrently on the simulation kernel. Execution segments are
// recorded to rec (may be nil). The returned process is the model's root;
// call k.Run() to simulate.
func RunUnscheduled(k *sim.Kernel, rec *trace.Recorder, root *Behavior) *sim.Proc {
	if err := root.Validate(); err != nil {
		panic(err)
	}
	return k.Spawn(root.name, func(p *sim.Proc) {
		runSpec(p, rec, root)
	})
}

func runSpec(p *sim.Proc, rec *trace.Recorder, b *Behavior) {
	switch b.kind {
	case kindLeaf:
		b.fn(&specExec{p: p, rec: rec, name: b.name})
	case kindLoop, kindFSM:
		x := &specExec{p: p, rec: rec, name: b.name}
		execComposite(b, x, func(c *Behavior) { runSpec(p, rec, c) })
	case kindSeq:
		for _, c := range b.children {
			runSpec(p, rec, c)
		}
	case kindPar:
		fns := make([]sim.Func, 0, len(b.children))
		names := make([]string, 0, len(b.children))
		for _, c := range b.children {
			c := c
			names = append(names, c.name)
			fns = append(fns, func(cp *sim.Proc) { runSpec(cp, rec, c) })
		}
		p.ParNamed(names, fns...)
	}
}

// specExec binds Exec to raw SLDL primitives.
type specExec struct {
	p    *sim.Proc
	rec  *trace.Recorder
	name string
}

func (x *specExec) Delay(d sim.Time) {
	if x.rec != nil {
		x.rec.SegBegin(x.p.Now(), x.name)
	}
	x.p.WaitFor(d)
	if x.rec != nil {
		x.rec.SegEnd(x.p.Now(), x.name)
	}
}

func (x *specExec) Proc() *sim.Proc      { return x.p }
func (x *specExec) Now() sim.Time        { return x.p.Now() }
func (x *specExec) BehaviorName() string { return x.name }

func (x *specExec) Marker(label string, arg int64) {
	if x.rec != nil {
		x.rec.Marker(x.p.Now(), label, x.name, arg)
	}
}

// RunArchitecture executes the behavior tree as the RTOS-based
// architecture model of one processing element (paper Figure 2(b), the
// output of dynamic scheduling refinement shown in Figure 3(b)):
//
//   - the root behavior becomes the PE's main task (the paper's Task_PE),
//   - every child of a parallel composition becomes an RTOS task with the
//     parameters from mapping (task refinement, Figure 5),
//   - par statements are bracketed by ParStart/ParEnd (Figure 6),
//   - Exec.Delay is bound to the RTOS's TimeWait.
//
// The caller must have created os on k, should Attach a recorder to os
// before running, and must call os.Start. The returned process is the
// PE's main process.
func RunArchitecture(k *sim.Kernel, os *core.OS, rec *trace.Recorder, root *Behavior, mapping Mapping) *sim.Proc {
	if err := root.Validate(); err != nil {
		panic(err)
	}
	if os.Kernel() != k {
		panic(fmt.Sprintf("refine: OS %q belongs to a different kernel", os.Name()))
	}
	spec := mapping.spec(root.name, 0)
	main := os.TaskCreate(root.name, spec.Type, spec.Period, spec.WCET, spec.Priority)
	return k.Spawn(root.name, func(p *sim.Proc) {
		os.TaskActivate(p, main)
		runRTOS(p, os, rec, root, mapping, main)
		os.TaskTerminate(p)
	})
}

func runRTOS(p *sim.Proc, os *core.OS, rec *trace.Recorder, b *Behavior, mapping Mapping, cur *core.Task) {
	switch b.kind {
	case kindLeaf:
		b.fn(&rtosExec{p: p, os: os, rec: rec, name: b.name})
	case kindLoop, kindFSM:
		x := &rtosExec{p: p, os: os, rec: rec, name: b.name}
		execComposite(b, x, func(c *Behavior) { runRTOS(p, os, rec, c, mapping, cur) })
	case kindSeq:
		for _, c := range b.children {
			runRTOS(p, os, rec, c, mapping, cur)
		}
	case kindPar:
		// Figure 6: create the child tasks, suspend the parent in the RTOS
		// layer, fork with the SLDL par, then resume the parent.
		tasks := make([]*core.Task, len(b.children))
		for i, c := range b.children {
			s := mapping.spec(c.name, len(os.Tasks()))
			tasks[i] = os.TaskCreate(c.name, s.Type, s.Period, s.WCET, s.Priority)
		}
		pt := os.ParStart(p)
		fns := make([]sim.Func, 0, len(b.children))
		names := make([]string, 0, len(b.children))
		for i, c := range b.children {
			i, c := i, c
			names = append(names, c.name)
			fns = append(fns, func(cp *sim.Proc) {
				os.TaskActivate(cp, tasks[i])
				runRTOS(cp, os, rec, c, mapping, tasks[i])
				os.TaskTerminate(cp)
			})
		}
		p.ParNamed(names, fns...)
		os.ParEnd(p, pt)
	}
}

// rtosExec binds Exec to RTOS model calls.
type rtosExec struct {
	p    *sim.Proc
	os   *core.OS
	rec  *trace.Recorder
	name string
}

func (x *rtosExec) Delay(d sim.Time)     { x.os.TimeWait(x.p, d) }
func (x *rtosExec) Proc() *sim.Proc      { return x.p }
func (x *rtosExec) Now() sim.Time        { return x.p.Now() }
func (x *rtosExec) BehaviorName() string { return x.name }

func (x *rtosExec) Marker(label string, arg int64) {
	if x.rec != nil {
		x.rec.Marker(x.p.Now(), label, x.name, arg)
	}
}
