package refine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func delayLeaf(name string, d sim.Time) *Behavior {
	return Leaf(name, func(x Exec) { x.Delay(d) })
}

func TestValidate(t *testing.T) {
	good := Seq("root", delayLeaf("a", 1), Par("p", delayLeaf("b", 1), delayLeaf("c", 1)))
	if err := good.Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	dup := Seq("root", delayLeaf("a", 1), delayLeaf("a", 1))
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate names not rejected: %v", err)
	}
	empty := Seq("root")
	if err := empty.Validate(); err == nil {
		t.Error("empty composite not rejected")
	}
	unnamed := Seq("root", &Behavior{})
	if err := unnamed.Validate(); err == nil {
		t.Error("unnamed behavior not rejected")
	}
}

func TestNames(t *testing.T) {
	tree := Seq("r", delayLeaf("a", 1), Par("p", delayLeaf("b", 1)))
	got := strings.Join(tree.Names(), ",")
	if got != "r,a,p,b" {
		t.Errorf("names = %s, want r,a,p,b", got)
	}
}

func TestLeafNilBodyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Leaf with nil body did not panic")
		}
	}()
	Leaf("bad", nil)
}

func TestUnscheduledParOverlaps(t *testing.T) {
	// Specification model: parallel behaviors overlap in time.
	k := sim.NewKernel()
	rec := trace.New("spec")
	root := Seq("root",
		delayLeaf("B1", 100),
		Par("par", delayLeaf("B2", 200), delayLeaf("B3", 150)),
	)
	RunUnscheduled(k, rec, root)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 300 {
		t.Errorf("end = %v, want 300 (100 + max(200,150))", k.Now())
	}
	if ov := rec.Overlap("B2", "B3"); ov != 150 {
		t.Errorf("overlap = %v, want 150", ov)
	}
	if bt := rec.BusyTime("B1"); bt != 100 {
		t.Errorf("B1 busy = %v, want 100", bt)
	}
}

func TestArchitectureSerializes(t *testing.T) {
	// Architecture model: the same tree serializes; delays accumulate.
	k := sim.NewKernel()
	os := core.New(k, "PE", core.PriorityPolicy{})
	rec := trace.New("arch")
	rec.Attach(os)
	root := Seq("root",
		delayLeaf("B1", 100),
		Par("par", delayLeaf("B2", 200), delayLeaf("B3", 150)),
	)
	RunArchitecture(k, os, rec, root, Mapping{
		"root": {Priority: 0},
		"B2":   {Priority: 2},
		"B3":   {Priority: 1},
	})
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 450 {
		t.Errorf("end = %v, want 450 (100 + 200 + 150 serialized)", k.Now())
	}
	if ov := rec.Overlap("B2", "B3"); ov != 0 {
		t.Errorf("overlap = %v, want 0 (serialized)", ov)
	}
	// B3 has the higher priority: it runs to completion first.
	ivB3 := rec.ExecIntervals("B3")
	ivB2 := rec.ExecIntervals("B2")
	if len(ivB3) == 0 || len(ivB2) == 0 {
		t.Fatalf("missing intervals: B2=%v B3=%v", ivB2, ivB3)
	}
	if ivB3[0].Start != 100 || ivB3[len(ivB3)-1].End != 250 {
		t.Errorf("B3 ran %v, want [100,250]", ivB3)
	}
	if ivB2[0].Start != 250 {
		t.Errorf("B2 started at %v, want 250", ivB2[0].Start)
	}
}

func TestNestedParRefinement(t *testing.T) {
	// Nested par statements create nested fork/join task structures.
	k := sim.NewKernel()
	os := core.New(k, "PE", core.PriorityPolicy{})
	rec := trace.New("arch")
	rec.Attach(os)
	root := Seq("root",
		Par("outer",
			Seq("left", delayLeaf("l1", 10), Par("inner", delayLeaf("i1", 20), delayLeaf("i2", 30))),
			delayLeaf("right", 40),
		),
	)
	RunArchitecture(k, os, rec, root, Mapping{})
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 100 {
		t.Errorf("end = %v, want 100 (10+20+30+40 serialized)", k.Now())
	}
	// Every leaf became (or ran within) a task; tasks must include the
	// par children.
	var names []string
	for _, task := range os.Tasks() {
		names = append(names, task.Name())
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"root", "left", "right", "i1", "i2"} {
		if !strings.Contains(joined, want) {
			t.Errorf("tasks %s missing %q", joined, want)
		}
	}
}

func TestMappingDefaults(t *testing.T) {
	m := Mapping{"a": {Priority: 7}}
	if s := m.spec("a", 3); s.Priority != 7 {
		t.Errorf("explicit spec priority = %d, want 7", s.Priority)
	}
	if s := m.spec("unknown", 3); s.Priority != 103 || s.Type != core.Aperiodic {
		t.Errorf("default spec = %+v, want prio 103 aperiodic", s)
	}
}

func TestMarkersRecordedInBothModels(t *testing.T) {
	build := func() *Behavior {
		return Seq("root", Leaf("L", func(x Exec) {
			x.Delay(5)
			x.Marker("checkpoint", 42)
		}))
	}
	// Spec.
	k1 := sim.NewKernel()
	rec1 := trace.New("spec")
	RunUnscheduled(k1, rec1, build())
	if err := k1.Run(); err != nil {
		t.Fatal(err)
	}
	// Arch.
	k2 := sim.NewKernel()
	os := core.New(k2, "PE", core.PriorityPolicy{})
	rec2 := trace.New("arch")
	RunArchitecture(k2, os, rec2, build(), Mapping{})
	os.Start(nil)
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	for i, rec := range []*trace.Recorder{rec1, rec2} {
		ts := rec.MarkerTimes("checkpoint")
		if len(ts) != 1 || ts[0] != 5 {
			t.Errorf("model %d: checkpoint markers = %v, want [5]", i, ts)
		}
	}
}

func TestExecReportsBehaviorName(t *testing.T) {
	k := sim.NewKernel()
	var got string
	root := Seq("root", Leaf("worker", func(x Exec) { got = x.BehaviorName() }))
	RunUnscheduled(k, nil, root)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "worker" {
		t.Errorf("behavior name = %q, want worker", got)
	}
}

func TestPeriodicTaskInMapping(t *testing.T) {
	// A behavior mapped as periodic loops via TaskEndCycle... the refine
	// layer creates it with the right parameters; verify they arrive.
	k := sim.NewKernel()
	os := core.New(k, "PE", core.PriorityPolicy{})
	root := Seq("root", Par("p", delayLeaf("per", 5)))
	RunArchitecture(k, os, nil, root, Mapping{
		"per": {Priority: 1, Type: core.Periodic, Period: 100, WCET: 5},
	})
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var found *core.Task
	for _, task := range os.Tasks() {
		if task.Name() == "per" {
			found = task
		}
	}
	if found == nil {
		t.Fatal("periodic task not created")
	}
	if found.Type() != core.Periodic || found.Period() != 100 || found.WCET() != 5 {
		t.Errorf("task params = %v/%v/%v", found.Type(), found.Period(), found.WCET())
	}
}
