package ukernel

import "fmt"

// Message queues are the second classic kernel IPC service after
// semaphores (the paper's backend maps SLDL channels "to an equivalent
// service of the actual RTOS"); the abstract model's channel.Queue maps
// onto these in the implementation model. Queues carry single machine
// words; payloads live in application memory and the queue moves their
// addresses, as in any small RTOS.

// Additional kernel ABI traps for message queues.
const (
	TrapQSend = 8 // r0 = queue id, r1 = value; blocks while full
	TrapQRecv = 9 // r0 = queue id; blocks while empty, value -> r0
)

// CostQueueOp is the modeled cycle cost of a queue operation.
const CostQueueOp = 18

// msgq is a bounded FIFO with sender and receiver wait queues.
type msgq struct {
	buf      []int64
	capacity int
	sendWait []*Task
	recvWait []*Task
}

// AddQueue creates a message queue with the given capacity (≥1) and
// returns its id.
func (k *Kernel) AddQueue(capacity int) int {
	if capacity < 1 {
		panic(fmt.Sprintf("ukernel: queue capacity %d < 1", capacity))
	}
	k.queues = append(k.queues, &msgq{capacity: capacity})
	return len(k.queues) - 1
}

// queueAt validates and returns a queue.
func (k *Kernel) queueAt(id int64) *msgq {
	if id < 0 || id >= int64(len(k.queues)) {
		panic(fmt.Sprintf("ukernel: bad queue id %d", id))
	}
	return k.queues[id]
}

// qSend implements TrapQSend. The sender blocks while the queue is full;
// a blocked receiver is handed the value directly (its saved r0 is
// patched in the TCB before it is readied).
func (k *Kernel) qSend(id, v int64) uint64 {
	q := k.queueAt(id)
	cost := uint64(CostQueueOp)
	cur := k.current
	if len(q.recvWait) > 0 {
		// Direct handoff to the first blocked receiver.
		r := q.recvWait[0]
		q.recvWait = q.recvWait[1:]
		r.regs[0] = v
		r.State = TaskReady
		k.seq++
		r.readySeq = k.seq
		cost += k.maybePreempt()
		return cost
	}
	if len(q.buf) < q.capacity {
		q.buf = append(q.buf, v)
		return cost
	}
	// Full: block the sender. Its PC is rewound to retry the trap when
	// re-dispatched (the value still sits in its saved r1).
	if cur == nil {
		panic("ukernel: TrapQSend from idle context on a full queue")
	}
	cur.State = TaskBlocked
	q.sendWait = append(q.sendWait, cur)
	k.cpu.PC-- // re-execute the trap after wake-up
	cost += k.dispatch()
	return cost
}

// qRecv implements TrapQRecv.
func (k *Kernel) qRecv(id int64) uint64 {
	q := k.queueAt(id)
	cost := uint64(CostQueueOp)
	cur := k.current
	if len(q.buf) > 0 {
		k.cpu.Regs[0] = q.buf[0]
		q.buf = q.buf[1:]
		// Space opened: release one blocked sender to retry.
		if len(q.sendWait) > 0 {
			s := q.sendWait[0]
			q.sendWait = q.sendWait[1:]
			s.State = TaskReady
			k.seq++
			s.readySeq = k.seq
			cost += k.maybePreempt()
		}
		return cost
	}
	// Empty: block the receiver and retry the trap on wake-up (a direct
	// handoff in qSend patches r0 and skips the retry by advancing PC).
	if cur == nil {
		panic("ukernel: TrapQRecv from idle context on an empty queue")
	}
	cur.State = TaskBlocked
	q.recvWait = append(q.recvWait, cur)
	cost += k.dispatch()
	return cost
}
