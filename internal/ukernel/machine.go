package ukernel

import (
	"fmt"

	"repro/internal/iss"
	"repro/internal/sim"
)

// DefaultCyclePeriod models a 60 MHz DSP-class clock (as in the paper's
// Motorola DSP56600 era): one cycle ≈ 17 ns.
const DefaultCyclePeriod sim.Time = 17

// Machine embeds a CPU + kernel into the discrete-event simulation: the
// ISS executes in batches and the consumed cycles advance logical time.
// This is the co-simulation of the paper's implementation model
// (Figure 2(c): "the compiled application linked against the real RTOS
// libraries is running in an instruction set simulator as part of the
// system co-simulation in the SLDL").
type Machine struct {
	CPU  *iss.CPU
	Kern *Kernel

	// CyclePeriod is the logical duration of one CPU cycle.
	CyclePeriod sim.Time
	// BatchInsts caps instructions interpreted per simulation step;
	// devices raising interrupts are observed at batch boundaries, so the
	// batch size bounds interrupt-delivery skew.
	BatchInsts int
	// SkipIdle, when set, parks the machine on a wake event instead of
	// interpreting the idle loop (an extension; the paper's ISS
	// interprets everything, which is why its implementation model needs
	// 5 hours). The cycle counter is warped across skipped idle so the
	// kernel's cycle-based time base (alarms, TrapTime) stays aligned
	// with simulated time; only the interpretation work is saved.
	SkipIdle bool
	// TickCycles, when positive, generates the kernel's time-slice tick
	// interrupt (ukernel.TickLine) every TickCycles CPU cycles. Pair with
	// Kernel.EnableTimeSlice for round-robin scheduling.
	TickCycles uint64

	wake *sim.Event

	// Batch-local time base: simulated time and cycle count at the start
	// of the batch currently executing. Now() interpolates from these, so
	// callbacks firing mid-batch (kernel debug traps) get correct
	// simulated timestamps even when idle cycles are skipped.
	baseSim    sim.Time
	baseCycles uint64
}

// Now returns the machine's current simulated position: the simulation
// time corresponding to the cycles executed so far, valid also from
// within trap/IRQ callbacks that fire mid-batch.
func (m *Machine) Now() sim.Time {
	return m.baseSim + sim.Time(m.CPU.Cycles-m.baseCycles)*m.CyclePeriod
}

// NewMachine assembles a machine around an existing CPU and kernel.
func NewMachine(cpu *iss.CPU, kern *Kernel) *Machine {
	return &Machine{CPU: cpu, Kern: kern, CyclePeriod: DefaultCyclePeriod, BatchInsts: 64}
}

// Spawn starts the machine as a simulation process. Kern.Start must have
// been called.
func (m *Machine) Spawn(k *sim.Kernel, name string) *sim.Proc {
	if m.CyclePeriod <= 0 || m.BatchInsts <= 0 {
		panic(fmt.Sprintf("ukernel: bad machine parameters period=%v batch=%d",
			m.CyclePeriod, m.BatchInsts))
	}
	m.wake = k.NewEvent(name + ".wake")
	proc := k.Spawn(name, m.run)
	if m.TickCycles > 0 {
		ticker := k.Spawn(name+".tick", func(p *sim.Proc) {
			period := sim.Time(m.TickCycles) * m.CyclePeriod
			for !m.CPU.Halted {
				p.WaitFor(period)
				m.RaiseIRQ(p, TickLine)
			}
		})
		ticker.SetDaemon(true)
	}
	return proc
}

// RaiseIRQ asserts a CPU interrupt line from a device process and, if the
// machine is parked idle, wakes it.
func (m *Machine) RaiseIRQ(p *sim.Proc, line int) {
	m.CPU.RaiseIRQ(line)
	p.Notify(m.wake)
}

func (m *Machine) run(p *sim.Proc) {
	for !m.CPU.Halted {
		if m.SkipIdle && m.Kern.Idle() && !m.CPU.IRQPending() {
			m.parkIdle(p)
			continue
		}
		m.baseSim = p.Now()
		m.baseCycles = m.CPU.Cycles
		cycles := m.CPU.RunBatch(m.BatchInsts)
		if due, ok := m.Kern.NextAlarm(); ok && m.CPU.Cycles >= due {
			m.CPU.RaiseIRQ(AlarmLine)
		}
		if cycles == 0 {
			if m.CPU.Halted {
				break
			}
			// Defensive: avoid a zero-time spin if the CPU makes no
			// progress without being halted.
			p.WaitFor(m.CyclePeriod)
			continue
		}
		p.WaitFor(sim.Time(cycles) * m.CyclePeriod)
	}
}

// parkIdle suspends the machine until a device wakes it or the earliest
// kernel alarm is due, warping the cycle counter across the skipped idle
// span either way.
func (m *Machine) parkIdle(p *sim.Proc) {
	start := p.Now()
	if due, ok := m.Kern.NextAlarm(); ok {
		if due <= m.CPU.Cycles {
			m.CPU.RaiseIRQ(AlarmLine)
			return
		}
		gap := sim.Time(due-m.CPU.Cycles) * m.CyclePeriod
		if !p.WaitTimeout(m.wake, gap) {
			// Alarm due first: warp exactly to it.
			m.CPU.Cycles = due
			m.CPU.RaiseIRQ(AlarmLine)
			return
		}
	} else {
		p.Wait(m.wake)
	}
	// Woken by a device: warp across the waited span.
	waited := p.Now() - start
	m.CPU.Cycles += uint64(waited / m.CyclePeriod)
}
