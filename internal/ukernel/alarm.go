package ukernel

import (
	"container/heap"
	"fmt"
)

// The alarm service is the kernel's time base: tasks sleep until an
// absolute cycle count (TrapSleepUntil), which is how generated periodic
// task code waits for its next release (internal/synth). The platform
// (Machine) drives the service by raising AlarmLine when the CPU's cycle
// counter passes the earliest due alarm.

// TrapSleepUntil blocks the calling task until the CPU cycle counter
// reaches the absolute value in r0.
const TrapSleepUntil = 10

// AlarmLine is the interrupt line reserved for the alarm expiry signal
// (one below the time-slice tick line).
const AlarmLine = TickLine - 1

// CostAlarmOp is the modeled cycle cost of arming or expiring an alarm.
const CostAlarmOp = 15

// alarmEntry is one sleeping task.
type alarmEntry struct {
	due  uint64
	seq  uint64
	task *Task
}

// alarmHeap orders by (due, seq).
type alarmHeap []alarmEntry

func (h alarmHeap) Len() int { return len(h) }
func (h alarmHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h alarmHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *alarmHeap) Push(x interface{}) { *h = append(*h, x.(alarmEntry)) }
func (h *alarmHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NextAlarm returns the earliest pending alarm's due cycle.
func (k *Kernel) NextAlarm() (uint64, bool) {
	if len(k.alarms) == 0 {
		return 0, false
	}
	return k.alarms[0].due, true
}

// sleepUntil implements TrapSleepUntil.
func (k *Kernel) sleepUntil(due uint64) uint64 {
	cur := k.current
	if cur == nil {
		panic("ukernel: TrapSleepUntil from idle context")
	}
	cost := uint64(CostAlarmOp)
	if due <= k.cpu.Cycles {
		return cost // already past: no wait
	}
	cur.State = TaskSleeping
	k.seq++
	heap.Push(&k.alarms, alarmEntry{due: due, seq: k.seq, task: cur})
	cost += k.dispatch()
	return cost
}

// expireAlarms readies every task whose alarm is due; called from the
// AlarmLine interrupt.
func (k *Kernel) expireAlarms() uint64 {
	cost := uint64(0)
	woke := false
	for len(k.alarms) > 0 && k.alarms[0].due <= k.cpu.Cycles {
		e := heap.Pop(&k.alarms).(alarmEntry)
		cost += CostAlarmOp
		if e.task.State != TaskSleeping {
			continue // task was killed/terminated meanwhile
		}
		e.task.State = TaskReady
		k.seq++
		e.task.readySeq = k.seq
		woke = true
	}
	if woke {
		cost += k.maybePreempt()
	}
	return cost
}

// validateAlarmSetup panics when the alarm ABI is misconfigured.
func validateAlarmSetup() {
	if AlarmLine == TickLine {
		panic(fmt.Sprintf("ukernel: alarm line %d collides with tick line", AlarmLine))
	}
}
