package ukernel

import (
	"testing"

	"repro/internal/iss"
	"repro/internal/sim"
)

// TestYieldRoundRobinOrder: three equal-priority tasks yielding in a loop
// run in strict rotation (FIFO within the priority level).
func TestYieldRoundRobinOrder(t *testing.T) {
	prog := iss.MustAssemble(`
	taskA:
		ldi r1, 65      ; 'A'
		call record
		trap 0
	taskB:
		ldi r1, 66
		call record
		trap 0
	taskC:
		ldi r1, 67
		call record
		trap 0
	record:             ; appends r1 to log 3 times, yielding in between
		ldi r3, 3
	rec_loop:
		ld r4, cursor
		ldi r5, 200
		add r5, r4
		stx r5, 0, r1   ; mem[200+cursor] = r1
		addi r4, 1
		st cursor, r4
		trap 1          ; yield
		addi r3, -1
		cmpi r3, 0
		bne rec_loop
		ret
	idle:
		jmp idle
	.data
	cursor: .word 0
	`)
	cpu, _ := iss.NewCPU(prog, 1024)
	k, _ := New(cpu, prog, "idle")
	for i, name := range []string{"A", "B", "C"} {
		e, _ := prog.Entry("task" + name)
		k.AddTask(name, e, int64(1024-64*i), 5)
	}
	k.Start()
	stepAll(t, cpu, 100000)
	var got string
	for i := int64(0); i < 9; i++ {
		got += string(rune(cpu.Mem[200+i]))
	}
	if got != "ABCABCABC" {
		t.Errorf("rotation = %q, want ABCABCABC", got)
	}
}

// TestAlarmDrivenProducerWithQueue: a periodic producer (alarm service)
// feeds a queue consumer — the kernel services compose.
func TestAlarmDrivenProducerWithQueue(t *testing.T) {
	prog := iss.MustAssemble(`
	producer:
		trap 7
		mov r7, r0
		ldi r3, 0
	p_loop:
		ld r0, period
		add r7, r0
		mov r0, r7
		trap 10         ; sleep one period
		ldi r0, 0
		mov r1, r3
		trap 8          ; qsend(0, seq)
		addi r3, 1
		cmpi r3, 4
		bne p_loop
		trap 0
	consumer:
		ldi r5, 0
	c_loop:
		ldi r0, 0
		trap 9          ; qrecv
		ldi r6, 300
		add r6, r5
		stx r6, 0, r0   ; mem[300+i] = value
		addi r5, 1
		cmpi r5, 4
		bne c_loop
		trap 0
	idle:
		jmp idle
	.data
	period: .word 5000
	`)
	cpu, _ := iss.NewCPU(prog, 1024)
	kern, _ := New(cpu, prog, "idle")
	kern.AddQueue(2)
	pE, _ := prog.Entry("producer")
	cE, _ := prog.Entry("consumer")
	kern.AddTask("producer", pE, 1024, 1)
	kern.AddTask("consumer", cE, 896, 2)

	k := sim.NewKernel()
	m := NewMachine(cpu, kern)
	m.SkipIdle = true
	kern.Start()
	m.Spawn(k, "dsp")
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cpu.Err() != nil {
		t.Fatal(cpu.Err())
	}
	for i := int64(0); i < 4; i++ {
		if cpu.Mem[300+i] != i {
			t.Errorf("mem[%d] = %d, want %d", 300+i, cpu.Mem[300+i], i)
		}
	}
	// Four alarm expiries drove the production.
	if kern.StatsSnapshot().IRQs < 4 {
		t.Errorf("IRQs = %d, want ≥ 4 (alarm line)", kern.StatsSnapshot().IRQs)
	}
}
