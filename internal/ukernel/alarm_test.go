package ukernel

import (
	"testing"

	"repro/internal/iss"
	"repro/internal/sim"
)

// alarmFixture: a periodic task sleeping on the alarm service, stamping
// each release via the debug trap.
func alarmFixture(t *testing.T, skipIdle bool) []sim.Time {
	t.Helper()
	prog := iss.MustAssemble(`
	periodic:
		trap 7          ; r0 = now
		mov r7, r0      ; release time
		ldi r6, 4       ; cycles to run
	loop:
		ldi r4, 100     ; compute
	busy:
		addi r4, -1
		cmpi r4, 0
		bne busy
		mov r0, r7
		trap 6          ; stamp
		ld r0, period
		add r7, r0      ; next release
		mov r0, r7
		trap 10         ; sleep until next release
		addi r6, -1
		cmpi r6, 0
		bne loop
		trap 0
	idle:
		jmp idle
	.data
	period: .word 60000 ; cycles (≈1.02 ms at 17 ns)
	`)
	cpu, _ := iss.NewCPU(prog, 512)
	kern, err := New(cpu, prog, "idle")
	if err != nil {
		t.Fatal(err)
	}
	e, _ := prog.Entry("periodic")
	kern.AddTask("periodic", e, 512, 1)

	k := sim.NewKernel()
	m := NewMachine(cpu, kern)
	m.SkipIdle = skipIdle
	var stamps []sim.Time
	kern.OnDebug = func(task *Task, v int64) {
		stamps = append(stamps, m.Now())
	}
	kern.Start()
	m.Spawn(k, "dsp")
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cpu.Err() != nil {
		t.Fatal(cpu.Err())
	}
	return stamps
}

// TestAlarmPeriodicReleases: the task's activations are spaced by the
// period within the batch-granularity skew, in both idle modes.
func TestAlarmPeriodicReleases(t *testing.T) {
	const period = sim.Time(60000) * DefaultCyclePeriod // 1.02 ms
	for _, skip := range []bool{false, true} {
		stamps := alarmFixture(t, skip)
		if len(stamps) != 4 {
			t.Fatalf("skip=%v: stamps = %v, want 4", skip, stamps)
		}
		for i := 1; i < len(stamps); i++ {
			gap := stamps[i] - stamps[i-1]
			if gap < period-20*sim.Microsecond || gap > period+20*sim.Microsecond {
				t.Errorf("skip=%v: release gap %d = %v, want ≈%v", skip, i, gap, period)
			}
		}
	}
}

// TestAlarmPastDeadlineReturnsImmediately: sleeping until an
// already-passed cycle must not block.
func TestAlarmPastDeadlineReturnsImmediately(t *testing.T) {
	prog := iss.MustAssemble(`
	main:
		ldi r0, 1       ; cycle 1 is long gone after startup
		trap 10
		ldi r1, 1
		st done, r1
		trap 0
	idle:
		jmp idle
	.data
	done: .word 0
	`)
	cpu, _ := iss.NewCPU(prog, 128)
	kern, _ := New(cpu, prog, "idle")
	e, _ := prog.Entry("main")
	kern.AddTask("main", e, 128, 1)
	kern.Start()
	stepAll(t, cpu, 1000)
	done, _ := prog.Symbols["done"]
	if cpu.Mem[done] != 1 {
		t.Error("task did not continue past an expired alarm")
	}
}
