package ukernel

import (
	"testing"

	"repro/internal/iss"
	"repro/internal/sim"
)

// sliceFixture builds two equal-priority compute-bound tasks that each
// count loop iterations into memory, with a watchdog task that halts the
// system after a fixed number of high-priority wakeups.
func sliceFixture(t *testing.T, tickCycles uint64) (aCount, bCount int64, rotations uint64) {
	t.Helper()
	prog := iss.MustAssemble(`
	taskA:
		ld  r2, a_count
	A_loop:
		addi r2, 1
		st  a_count, r2
		jmp A_loop
	taskB:
		ld  r2, b_count
	B_loop:
		addi r2, 1
		st  b_count, r2
		jmp B_loop
	idle:
		jmp idle
	.data
	a_count: .word 0
	b_count: .word 0
	`)
	cpu, err := iss.NewCPU(prog, 1024)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := New(cpu, prog, "idle")
	if err != nil {
		t.Fatal(err)
	}
	aE, _ := prog.Entry("taskA")
	bE, _ := prog.Entry("taskB")
	kern.AddTask("A", aE, 1024, 5)
	kern.AddTask("B", bE, 896, 5)
	if tickCycles > 0 {
		kern.EnableTimeSlice()
	}

	k := sim.NewKernel()
	m := NewMachine(cpu, kern)
	m.TickCycles = tickCycles
	kern.Start()
	m.Spawn(k, "dsp")
	if err := k.RunUntil(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if cpu.Err() != nil {
		t.Fatal(cpu.Err())
	}
	a, _ := prog.Symbols["a_count"]
	b, _ := prog.Symbols["b_count"]
	return cpu.Mem[a], cpu.Mem[b], kern.Rotations()
}

// TestTimeSliceSharesCPU: with the tick enabled, two compute-bound
// equal-priority tasks share the CPU roughly evenly; without it, the
// first task starves the second.
func TestTimeSliceSharesCPU(t *testing.T) {
	a, b, rot := sliceFixture(t, 2000) // tick every 2000 cycles ≈ 34 µs
	if b == 0 {
		t.Fatal("task B starved despite time slicing")
	}
	if rot == 0 {
		t.Fatal("no slice rotations recorded")
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("compute split a=%d b=%d (ratio %.2f), want roughly even", a, b, ratio)
	}

	a2, b2, rot2 := sliceFixture(t, 0) // no tick: strict priority+FIFO
	if b2 != 0 {
		t.Errorf("task B ran %d iterations without slicing; expected starvation", b2)
	}
	if a2 == 0 {
		t.Error("task A made no progress")
	}
	if rot2 != 0 {
		t.Errorf("rotations = %d without tick, want 0", rot2)
	}
}

// TestTickWithoutPeerDoesNotRotate: a solo task keeps the CPU across
// ticks; the tick only costs its ISR entry.
func TestTickWithoutPeerDoesNotRotate(t *testing.T) {
	prog := iss.MustAssemble(`
	solo:
		ldi r2, 0
	loop:
		addi r2, 1
		cmpi r2, 5000
		bne loop
		st done, r2
		trap 0
	idle:
		jmp idle
	.data
	done: .word 0
	`)
	cpu, _ := iss.NewCPU(prog, 512)
	kern, _ := New(cpu, prog, "idle")
	e, _ := prog.Entry("solo")
	kern.AddTask("solo", e, 512, 1)
	kern.EnableTimeSlice()

	k := sim.NewKernel()
	m := NewMachine(cpu, kern)
	m.TickCycles = 500
	kern.Start()
	m.Spawn(k, "dsp")
	if err := k.RunUntil(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	done, _ := prog.Symbols["done"]
	if cpu.Mem[done] != 5000 {
		t.Errorf("solo task result = %d, want 5000", cpu.Mem[done])
	}
	if rot := kern.Rotations(); rot != 0 {
		t.Errorf("rotations = %d for solo task, want 0", rot)
	}
	if irqs := kern.StatsSnapshot().IRQs; irqs == 0 {
		t.Error("no tick interrupts delivered")
	}
}
