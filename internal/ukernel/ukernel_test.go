package ukernel

import (
	"testing"

	"repro/internal/iss"
	"repro/internal/sim"
)

// stepAll runs the CPU until halt (or the step bound is hit).
func stepAll(t *testing.T, c *iss.CPU, maxSteps int) {
	t.Helper()
	for i := 0; i < maxSteps && !c.Halted; i++ {
		c.Step()
	}
	if !c.Halted {
		t.Fatal("CPU did not halt")
	}
	if c.Err() != nil {
		t.Fatalf("fault: %v", c.Err())
	}
}

// TestContextSwitchPreservesRegisters: two equal-priority tasks yield back
// and forth; their register-held loop state must survive every context
// switch.
func TestContextSwitchPreservesRegisters(t *testing.T) {
	prog := iss.MustAssemble(`
	taskA:
		ldi r1, 0
		ldi r2, 10
	A_loop:
		add r1, r2
		trap 1          ; yield
		addi r2, -1
		cmpi r2, 0
		bne A_loop
		st sumA, r1     ; 10+9+...+1 = 55
		trap 0
	taskB:
		ldi r1, 0
		ldi r2, 7
	B_loop:
		add r1, r2
		trap 1
		addi r2, -1
		cmpi r2, 0
		bne B_loop
		st sumB, r1     ; 7+6+...+1 = 28
		trap 0
	idle:
		jmp idle
	.data
	sumA: .word 0
	sumB: .word 0
	`)
	cpu, err := iss.NewCPU(prog, 1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(cpu, prog, "idle")
	if err != nil {
		t.Fatal(err)
	}
	entryA, _ := prog.Entry("taskA")
	entryB, _ := prog.Entry("taskB")
	k.AddTask("A", entryA, 1024, 5)
	k.AddTask("B", entryB, 768, 5)
	k.Start()
	stepAll(t, cpu, 100000)
	sumA, _ := prog.Symbols["sumA"]
	sumB, _ := prog.Symbols["sumB"]
	if cpu.Mem[sumA] != 55 {
		t.Errorf("sumA = %d, want 55", cpu.Mem[sumA])
	}
	if cpu.Mem[sumB] != 28 {
		t.Errorf("sumB = %d, want 28", cpu.Mem[sumB])
	}
	st := k.StatsSnapshot()
	if st.ContextSwitches < 10 {
		t.Errorf("context switches = %d, want ≥ 10 (interleaved yields)", st.ContextSwitches)
	}
}

// TestSemaphoreProducerConsumer: a higher-priority consumer preempts the
// producer on every signal; all tokens are delivered in order.
func TestSemaphoreProducerConsumer(t *testing.T) {
	prog := iss.MustAssemble(`
	producer:
		ldi r3, 5
	p_loop:
		ldi r4, 20
	p_busy:
		addi r4, -1
		cmpi r4, 0
		bne p_busy
		ldi r0, 0
		trap 5          ; signal sem 0
		addi r3, -1
		cmpi r3, 0
		bne p_loop
		trap 0
	consumer:
		ldi r5, 0
	c_loop:
		ldi r0, 0
		trap 4          ; wait sem 0
		addi r5, 1
		mov r0, r5
		trap 6          ; debug: delivered count
		cmpi r5, 5
		bne c_loop
		st got, r5
		trap 0
	idle:
		jmp idle
	.data
	got: .word 0
	`)
	cpu, _ := iss.NewCPU(prog, 1024)
	k, err := New(cpu, prog, "idle")
	if err != nil {
		t.Fatal(err)
	}
	if id := k.AddSem(0); id != 0 {
		t.Fatalf("sem id = %d, want 0", id)
	}
	pEntry, _ := prog.Entry("producer")
	cEntry, _ := prog.Entry("consumer")
	k.AddTask("producer", pEntry, 1024, 2)
	cons := k.AddTask("consumer", cEntry, 768, 1)
	var deliveries []int64
	k.OnDebug = func(task *Task, v int64) {
		if task != cons {
			t.Errorf("debug from %v, want consumer", task)
		}
		deliveries = append(deliveries, v)
	}
	k.Start()
	stepAll(t, cpu, 200000)
	if len(deliveries) != 5 {
		t.Fatalf("deliveries = %v, want 5 entries", deliveries)
	}
	for i, v := range deliveries {
		if v != int64(i+1) {
			t.Errorf("delivery %d = %d, want %d", i, v, i+1)
		}
	}
	got, _ := prog.Symbols["got"]
	if cpu.Mem[got] != 5 {
		t.Errorf("got = %d, want 5", cpu.Mem[got])
	}
	st := k.StatsSnapshot()
	if st.ContextSwitches < 9 {
		t.Errorf("context switches = %d, want ≈10", st.ContextSwitches)
	}
	if st.Preemptions < 4 {
		t.Errorf("preemptions = %d, want ≥ 4 (consumer preempts each signal)", st.Preemptions)
	}
}

// TestSleepActivate: a sleeping high-priority task is activated by a
// low-priority one and preempts it immediately.
func TestSleepActivate(t *testing.T) {
	prog := iss.MustAssemble(`
	hi:
		trap 2          ; sleep
		ldi r1, 1
		st flag, r1
		trap 0
	lo:
		ldi r0, 0       ; task id 0 = hi
		trap 3          ; activate -> hi preempts here
		ld r2, flag     ; must already be 1
		st seen, r2
		trap 0
	idle:
		jmp idle
	.data
	flag: .word 0
	seen: .word 0
	`)
	cpu, _ := iss.NewCPU(prog, 512)
	k, err := New(cpu, prog, "idle")
	if err != nil {
		t.Fatal(err)
	}
	hiE, _ := prog.Entry("hi")
	loE, _ := prog.Entry("lo")
	k.AddTask("hi", hiE, 512, 0)
	k.AddTask("lo", loE, 384, 9)
	k.Start()
	stepAll(t, cpu, 10000)
	seen, _ := prog.Symbols["seen"]
	if cpu.Mem[seen] != 1 {
		t.Errorf("seen = %d, want 1 (activation must preempt immediately)", cpu.Mem[seen])
	}
}

// TestTrapTime returns monotonically increasing cycle counts.
func TestTrapTime(t *testing.T) {
	prog := iss.MustAssemble(`
	main:
		trap 7
		mov r1, r0
		ldi r2, 50
	busy:
		addi r2, -1
		cmpi r2, 0
		bne busy
		trap 7
		sub r0, r1
		st delta, r0
		trap 0
	idle:
		jmp idle
	.data
	delta: .word 0
	`)
	cpu, _ := iss.NewCPU(prog, 512)
	k, _ := New(cpu, prog, "idle")
	e, _ := prog.Entry("main")
	k.AddTask("main", e, 512, 1)
	k.Start()
	stepAll(t, cpu, 10000)
	delta, _ := prog.Symbols["delta"]
	if cpu.Mem[delta] <= 0 {
		t.Errorf("cycle delta = %d, want > 0", cpu.Mem[delta])
	}
}

// machineFixture builds a machine whose single task waits on a semaphore
// signalled by a device interrupt and records TrapTime debug stamps.
func machineFixture(t *testing.T, skipIdle bool) (*sim.Kernel, *Machine, *[]sim.Time) {
	t.Helper()
	prog := iss.MustAssemble(`
	driver:
		ldi r6, 3       ; frames to serve
	d_loop:
		ldi r0, 0
		trap 4          ; wait for device data
		trap 6          ; debug stamp (host records sim time)
		addi r6, -1
		cmpi r6, 0
		bne d_loop
		trap 0
	idle:
		jmp idle
	`)
	cpu, err := iss.NewCPU(prog, 1024)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := New(cpu, prog, "idle")
	if err != nil {
		t.Fatal(err)
	}
	sem := kern.AddSem(0)
	e, _ := prog.Entry("driver")
	kern.AddTask("driver", e, 1024, 1)
	kern.SetDeviceIRQ(0, func() { kern.SemSignalFromISR(sem) })

	k := sim.NewKernel()
	m := NewMachine(cpu, kern)
	m.SkipIdle = skipIdle
	stamps := &[]sim.Time{}
	kern.OnDebug = func(task *Task, v int64) {
		*stamps = append(*stamps, m.Now())
	}
	kern.Start()
	m.Spawn(k, "dsp")
	// Device: raises an interrupt every 100 µs.
	dev := k.Spawn("device", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.WaitFor(100 * sim.Microsecond)
			m.RaiseIRQ(p, 0)
		}
	})
	_ = dev
	return k, m, stamps
}

// TestMachineCoSimulation: the implementation model runs inside the SLDL
// co-simulation; interrupts from a device process reach the kernel and
// wake the driver task with bounded latency.
func TestMachineCoSimulation(t *testing.T) {
	k, m, stamps := machineFixture(t, false)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.CPU.Err() != nil {
		t.Fatalf("cpu fault: %v", m.CPU.Err())
	}
	if !m.CPU.Halted {
		t.Fatal("machine did not halt after driver exit")
	}
	if len(*stamps) != 3 {
		t.Fatalf("stamps = %v, want 3", *stamps)
	}
	for i, s := range *stamps {
		expect := sim.Time(i+1) * 100 * sim.Microsecond
		lat := s - expect
		if lat < 0 || lat > 10*sim.Microsecond {
			t.Errorf("frame %d served with latency %v (stamp %v), want within 10us", i, lat, s)
		}
	}
	if got := m.Kern.StatsSnapshot().IRQs; got != 3 {
		t.Errorf("IRQs = %d, want 3", got)
	}
}

// TestMachineSkipIdleEquivalence: skipping the idle loop must not change
// the functional outcome or the number of serviced interrupts.
func TestMachineSkipIdleEquivalence(t *testing.T) {
	k1, m1, s1 := machineFixture(t, false)
	if err := k1.Run(); err != nil {
		t.Fatal(err)
	}
	k2, m2, s2 := machineFixture(t, true)
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*s1) != len(*s2) {
		t.Fatalf("stamp counts differ: %d vs %d", len(*s1), len(*s2))
	}
	if m1.Kern.StatsSnapshot().IRQs != m2.Kern.StatsSnapshot().IRQs {
		t.Error("IRQ counts differ between idle modes")
	}
	// Idle interpretation burns far more instructions.
	if m1.CPU.Insts <= m2.CPU.Insts {
		t.Errorf("interpret-idle insts (%d) not greater than skip-idle (%d)",
			m1.CPU.Insts, m2.CPU.Insts)
	}
}

// TestKernelHaltsWhenAllTasksDone: with no runnable or blocked-forever
// work, dispatch halts the CPU.
func TestKernelHaltsWhenAllTasksDone(t *testing.T) {
	prog := iss.MustAssemble(`
	main:
		trap 0
	idle:
		jmp idle
	`)
	cpu, _ := iss.NewCPU(prog, 128)
	k, _ := New(cpu, prog, "idle")
	e, _ := prog.Entry("main")
	k.AddTask("main", e, 128, 1)
	k.Start()
	stepAll(t, cpu, 100)
	if k.Alive() {
		t.Error("kernel still alive after sole task exit")
	}
}
