package ukernel

import (
	"testing"

	"repro/internal/iss"
)

// TestQueueProducerConsumer: the producer pushes 1..8 through a depth-2
// queue to an equal-priority consumer; order and completeness must hold
// across the blocking send path.
func TestQueueProducerConsumer(t *testing.T) {
	prog := iss.MustAssemble(`
	producer:
		ldi r3, 1
	p_loop:
		ldi r0, 0
		mov r1, r3
		trap 8          ; qsend(0, r3) — blocks while full
		addi r3, 1
		cmpi r3, 9
		bne p_loop
		trap 0
	consumer:
		ldi r4, 100     ; write results starting at address 100
		ldi r5, 8
	c_loop:
		ldi r0, 0
		trap 9          ; r0 = qrecv(0)
		stx r4, 0, r0
		addi r4, 1
		addi r5, -1
		cmpi r5, 0
		bne c_loop
		trap 0
	idle:
		jmp idle
	`)
	cpu, _ := iss.NewCPU(prog, 1024)
	k, err := New(cpu, prog, "idle")
	if err != nil {
		t.Fatal(err)
	}
	if id := k.AddQueue(2); id != 0 {
		t.Fatalf("queue id = %d, want 0", id)
	}
	pE, _ := prog.Entry("producer")
	cE, _ := prog.Entry("consumer")
	k.AddTask("producer", pE, 1024, 5)
	k.AddTask("consumer", cE, 896, 5)
	k.Start()
	stepAll(t, cpu, 200000)
	for i := 0; i < 8; i++ {
		if got := cpu.Mem[100+i]; got != int64(i+1) {
			t.Errorf("mem[%d] = %d, want %d", 100+i, got, i+1)
		}
	}
}

// TestQueueBlocksSenderWhenFull: with no consumer running, the producer
// fills the queue and blocks; activating the consumer later drains it.
func TestQueueBlocksSenderWhenFull(t *testing.T) {
	prog := iss.MustAssemble(`
	producer:
		ldi r3, 0
	p_loop:
		ldi r0, 0
		mov r1, r3
		trap 8
		addi r3, 1
		st sent, r3
		cmpi r3, 5
		bne p_loop
		ldi r0, 1       ; activate consumer (task id 1)
		trap 3
		trap 0
	consumer:
		trap 2          ; sleep until activated
		ldi r5, 5
	c_loop:
		ldi r0, 0
		trap 9
		addi r5, -1
		cmpi r5, 0
		bne c_loop
		ldi r1, 1
		st done, r1
		trap 0
	idle:
		jmp idle
	.data
	sent: .word 0
	done: .word 0
	`)
	cpu, _ := iss.NewCPU(prog, 1024)
	k, _ := New(cpu, prog, "idle")
	k.AddQueue(3)
	pE, _ := prog.Entry("producer")
	cE, _ := prog.Entry("consumer")
	k.AddTask("producer", pE, 1024, 2)
	k.AddTask("consumer", cE, 896, 1)
	// The producer cannot finish: queue holds 3, the 4th send blocks
	// until the consumer (sleeping) is activated — but activation happens
	// only after all 5 sends. Deadlock? No: the consumer was never
	// started, so we must wake it externally after the producer blocks.
	k.Start()
	for i := 0; i < 2000 && !cpu.Halted; i++ {
		cpu.Step()
	}
	sent, _ := prog.Symbols["sent"]
	if cpu.Mem[sent] != 3 {
		t.Fatalf("sent = %d before consumer runs, want 3 (capacity)", cpu.Mem[sent])
	}
	if !k.Idle() {
		t.Fatal("kernel not idle with producer blocked and consumer sleeping")
	}
	// Wake the consumer from "outside" (as a device would).
	k.tasks[1].State = TaskReady
	k.seq++
	k.tasks[1].readySeq = k.seq
	k.dispatch()
	stepAll(t, cpu, 100000)
	done, _ := prog.Symbols["done"]
	if cpu.Mem[done] != 1 {
		t.Errorf("consumer did not finish draining")
	}
	if cpu.Mem[sent] != 5 {
		t.Errorf("sent = %d, want 5 (blocked sender resumed)", cpu.Mem[sent])
	}
}

// TestQueueDirectHandoff: a blocked receiver gets the value patched into
// its saved context (no retry), preserving correctness when the sender
// has lower priority.
func TestQueueDirectHandoff(t *testing.T) {
	prog := iss.MustAssemble(`
	recvr:
		ldi r0, 0
		trap 9          ; blocks (queue empty)
		st got, r0
		trap 0
	sendr:
		ldi r4, 30
	busy:
		addi r4, -1
		cmpi r4, 0
		bne busy
		ldi r0, 0
		ldi r1, 77
		trap 8          ; direct handoff: receiver has higher priority
		trap 0
	idle:
		jmp idle
	.data
	got: .word 0
	`)
	cpu, _ := iss.NewCPU(prog, 512)
	k, _ := New(cpu, prog, "idle")
	k.AddQueue(1)
	rE, _ := prog.Entry("recvr")
	sE, _ := prog.Entry("sendr")
	k.AddTask("recvr", rE, 512, 1)
	k.AddTask("sendr", sE, 384, 5)
	k.Start()
	stepAll(t, cpu, 10000)
	got, _ := prog.Symbols["got"]
	if cpu.Mem[got] != 77 {
		t.Errorf("got = %d, want 77", cpu.Mem[got])
	}
	if k.StatsSnapshot().Preemptions == 0 {
		t.Error("handoff to higher-priority receiver did not preempt the sender")
	}
}

func TestQueueValidation(t *testing.T) {
	prog := iss.MustAssemble("idle:\n jmp idle")
	cpu, _ := iss.NewCPU(prog, 64)
	k, _ := New(cpu, prog, "idle")
	defer func() {
		if recover() == nil {
			t.Error("AddQueue(0) did not panic")
		}
	}()
	k.AddQueue(0)
}
