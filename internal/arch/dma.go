package arch

import (
	"fmt"

	"repro/internal/sim"
)

// DMA is a direct-memory-access engine: a bus master that performs
// transfers on behalf of software so the CPU overlaps computation with
// communication. A transfer is started with Start (non-blocking for the
// caller); the engine process arbitrates for the bus, moves the payload
// and raises the completion interrupt on the owning PE, whose ISR
// typically releases a semaphore the software waits on — the same
// bus-driver pattern as Link, with the CPU taken out of the data path.
// DMA engines are the canonical communication refinement step after
// CPU-driven I/O in the design flows built on the paper's models.
type DMA struct {
	name string
	bus  *Bus
	pe   *PE
	irq  *IRQ

	queue     []dmaJob
	kick      *sim.Event
	started   uint64
	completed uint64
	moved     uint64
}

type dmaJob struct {
	bytes int
	tag   int64
}

// NewDMA creates a DMA engine on the bus whose completion interrupt is
// delivered to pe. isrTime models the completion ISR's execution;
// handler runs in ISR context with the job's tag (typically releasing a
// semaphore).
func NewDMA(bus *Bus, name string, pe *PE, isrTime sim.Time, handler func(p *sim.Proc, tag int64)) *DMA {
	d := &DMA{
		name: name,
		bus:  bus,
		pe:   pe,
		kick: pe.Kernel().NewEvent(name + ".kick"),
	}
	var pendingTags []int64
	d.irq = pe.AttachISR(name+".done", isrTime, func(p *sim.Proc) {
		if len(pendingTags) == 0 {
			return
		}
		tag := pendingTags[0]
		pendingTags = pendingTags[1:]
		if handler != nil {
			handler(p, tag)
		}
	})
	engine := pe.Kernel().Spawn(name+".engine", func(p *sim.Proc) {
		for {
			for len(d.queue) == 0 {
				p.Wait(d.kick)
			}
			job := d.queue[0]
			d.queue = d.queue[1:]
			d.bus.Transfer(p, job.bytes)
			d.completed++
			d.moved += uint64(job.bytes)
			pendingTags = append(pendingTags, job.tag)
			d.irq.Raise(p)
		}
	})
	engine.SetDaemon(true)
	return d
}

// Name returns the engine name.
func (d *DMA) Name() string { return d.name }

// Start enqueues a transfer of the given size and returns immediately;
// the caller continues computing while the engine moves the data. tag is
// passed to the completion handler to identify the transfer.
func (d *DMA) Start(p *sim.Proc, bytes int, tag int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("arch: DMA %q negative transfer %d", d.name, bytes))
	}
	d.queue = append(d.queue, dmaJob{bytes: bytes, tag: tag})
	d.started++
	p.Notify(d.kick)
}

// Pending returns queued-but-unfinished transfers.
func (d *DMA) Pending() int { return int(d.started - d.completed) }

// Completed returns the number of finished transfers.
func (d *DMA) Completed() uint64 { return d.completed }

// BytesMoved returns the total payload moved.
func (d *DMA) BytesMoved() uint64 { return d.moved }
