// Package arch provides the architecture-model substrate of the design
// flow: processing elements (PEs), buses with arbitration and transfer
// delays, interrupt lines with ISR processes, and typed inter-PE links
// whose receive side follows the paper's bus-driver pattern — "the
// interrupt handler ISR for external events signals the main bus driver
// through a semaphore channel sem" (Figure 3).
//
// A software PE carries an instance of the RTOS model (internal/core) and
// runs its behaviors as tasks; a hardware PE executes its processes truly
// concurrently on the bare simulation kernel. Communication between PEs
// is synthesized as Link channels over a shared Bus.
package arch

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
)

// PE is a processing element of the system architecture.
type PE struct {
	name string
	k    *sim.Kernel
	os   *core.OS // nil for hardware PEs
	isrs []*IRQ
}

// NewSWPE creates a software PE: a processor running an instance of the
// abstract RTOS model with the given scheduling policy.
func NewSWPE(k *sim.Kernel, name string, policy core.Policy, opts ...core.Option) *PE {
	return &PE{name: name, k: k, os: core.New(k, name, policy, opts...)}
}

// NewHWPE creates a hardware PE: custom hardware whose processes run truly
// concurrently without an operating system.
func NewHWPE(k *sim.Kernel, name string) *PE {
	return &PE{name: name, k: k}
}

// Name returns the PE name.
func (pe *PE) Name() string { return pe.name }

// Kernel returns the simulation kernel.
func (pe *PE) Kernel() *sim.Kernel { return pe.k }

// OS returns the PE's RTOS model instance (nil for hardware PEs).
func (pe *PE) OS() *core.OS { return pe.os }

// Factory returns the channel factory matching the PE's modeling layer:
// RTOS-refined channels for software PEs, specification-level channels for
// hardware PEs.
func (pe *PE) Factory() channel.Factory {
	if pe.os != nil {
		return channel.RTOSFactory{OS: pe.os}
	}
	return channel.SpecFactory{K: pe.k}
}

// IRQ is an interrupt line into a PE. Raising it latches a request; the
// PE's ISR process services requests one at a time.
type IRQ struct {
	name    string
	pe      *PE
	pending *channel.Handshake
	raises  uint64
}

// AttachISR wires an interrupt line with the given service routine into
// the PE. The handler runs as a plain SLDL process above the RTOS model
// (paper Section 4: ISRs are generated inside bus drivers); on software
// PEs it is bracketed by InterruptEnter/InterruptReturn so the RTOS can
// re-schedule tasks the handler released. serviceTime models the ISR's
// own execution time before the handler body runs.
func (pe *PE) AttachISR(name string, serviceTime sim.Time, handler func(p *sim.Proc)) *IRQ {
	irq := &IRQ{
		name:    name,
		pe:      pe,
		pending: channel.NewHandshake(channel.SpecFactory{K: pe.k}, pe.name+"."+name),
	}
	pe.isrs = append(pe.isrs, irq)
	isr := pe.k.Spawn(pe.name+"."+name+".isr", func(p *sim.Proc) {
		for {
			irq.pending.WaitSig(p)
			if pe.os != nil {
				pe.os.InterruptEnter(p, name)
			}
			if serviceTime > 0 {
				p.WaitFor(serviceTime)
			}
			if handler != nil {
				handler(p)
			}
			if pe.os != nil {
				pe.os.InterruptReturn(p, name)
			}
		}
	})
	isr.SetDaemon(true)
	return irq
}

// Name returns the interrupt line's name.
func (irq *IRQ) Name() string { return irq.name }

// Raises returns how many times the line was raised.
func (irq *IRQ) Raises() uint64 { return irq.raises }

// Raise latches an interrupt request. Callable from any simulation
// process (devices, buses, other PEs).
func (irq *IRQ) Raise(p *sim.Proc) {
	irq.raises++
	irq.pending.Signal(p)
}

// Bus is a shared communication medium with exclusive arbitration and a
// linear transfer-delay model: delay = ArbDelay + bytes × PerByte.
type Bus struct {
	name     string
	k        *sim.Kernel
	arb      *channel.Mutex
	arbDelay sim.Time
	perByte  sim.Time

	transfers uint64
	bytes     uint64
	busyTime  sim.Time
}

// NewBus creates a bus. arbDelay is the fixed per-transfer overhead
// (arbitration, addressing); perByte the payload cost per byte.
func NewBus(k *sim.Kernel, name string, arbDelay, perByte sim.Time) *Bus {
	return &Bus{
		name:     name,
		k:        k,
		arb:      channel.NewMutex(channel.SpecFactory{K: k}, name+".arb"),
		arbDelay: arbDelay,
		perByte:  perByte,
	}
}

// Name returns the bus name.
func (b *Bus) Name() string { return b.name }

// Transfers returns the number of completed transfers.
func (b *Bus) Transfers() uint64 { return b.transfers }

// Bytes returns the total payload bytes moved.
func (b *Bus) Bytes() uint64 { return b.bytes }

// BusyTime returns the accumulated time the bus was occupied.
func (b *Bus) BusyTime() sim.Time { return b.busyTime }

// Transfer occupies the bus for one transfer of the given payload size,
// blocking while another master holds it.
func (b *Bus) Transfer(p *sim.Proc, bytes int) {
	if bytes < 0 {
		panic(fmt.Sprintf("arch: negative transfer size %d on bus %q", bytes, b.name))
	}
	b.arb.Lock(p)
	d := b.arbDelay + sim.Time(bytes)*b.perByte
	p.WaitFor(d)
	b.transfers++
	b.bytes += uint64(bytes)
	b.busyTime += d
	b.arb.Unlock(p)
}
