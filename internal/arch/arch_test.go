package arch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestBusTransferDelay(t *testing.T) {
	k := sim.NewKernel()
	bus := NewBus(k, "bus", 10, 2)
	var end sim.Time
	k.Spawn("m", func(p *sim.Proc) {
		bus.Transfer(p, 16) // 10 + 16*2 = 42
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 42 {
		t.Errorf("transfer completed at %v, want 42", end)
	}
	if bus.Transfers() != 1 || bus.Bytes() != 16 || bus.BusyTime() != 42 {
		t.Errorf("stats = %d/%d/%v, want 1/16/42", bus.Transfers(), bus.Bytes(), bus.BusyTime())
	}
}

func TestBusArbitrationSerializes(t *testing.T) {
	k := sim.NewKernel()
	bus := NewBus(k, "bus", 0, 1)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		k.Spawn("m", func(p *sim.Proc) {
			bus.Transfer(p, 100)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Errorf("transfer %d ended at %v, want %v (exclusive bus)", i, ends[i], want[i])
		}
	}
}

func TestISROnHardwarePE(t *testing.T) {
	k := sim.NewKernel()
	pe := NewHWPE(k, "HW")
	var served []sim.Time
	irq := pe.AttachISR("irq", 5, func(p *sim.Proc) {
		served = append(served, p.Now())
	})
	k.Spawn("dev", func(p *sim.Proc) {
		p.WaitFor(10)
		irq.Raise(p)
		p.WaitFor(10)
		irq.Raise(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(served) != 2 || served[0] != 15 || served[1] != 25 {
		t.Errorf("ISR served at %v, want [15 25]", served)
	}
	if irq.Raises() != 2 {
		t.Errorf("raises = %d, want 2", irq.Raises())
	}
}

func TestISRLatchesWhileBusy(t *testing.T) {
	// Two raises in quick succession: the second is latched while the ISR
	// services the first, and serviced afterwards — none is lost.
	k := sim.NewKernel()
	pe := NewHWPE(k, "HW")
	count := 0
	irq := pe.AttachISR("irq", 20, func(p *sim.Proc) { count++ })
	k.Spawn("dev", func(p *sim.Proc) {
		irq.Raise(p)
		p.WaitFor(1)
		irq.Raise(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("ISR ran %d times, want 2", count)
	}
}

func TestSWPEHasOSAndFactory(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSWPE(k, "CPU", core.PriorityPolicy{})
	hw := NewHWPE(k, "ACC")
	if sw.OS() == nil {
		t.Fatal("software PE has no OS")
	}
	if hw.OS() != nil {
		t.Fatal("hardware PE has an OS")
	}
	if sw.Factory().Name() != "rtos/CPU" {
		t.Errorf("sw factory = %q", sw.Factory().Name())
	}
	if hw.Factory().Name() != "spec" {
		t.Errorf("hw factory = %q", hw.Factory().Name())
	}
}

func TestLinkBetweenPEs(t *testing.T) {
	// HW producer sends frames over the bus to a SW consumer task; the
	// receive path is ISR -> semaphore -> driver (paper Figure 3).
	k := sim.NewKernel()
	bus := NewBus(k, "bus", 5, 1)
	hw := NewHWPE(k, "HW")
	sw := NewSWPE(k, "CPU", core.PriorityPolicy{})
	link := NewLink[int](bus, "data", hw, sw, 10, 2)

	var got []int
	var gotAt []sim.Time
	task := sw.OS().TaskCreate("driver", core.Aperiodic, 0, 0, 1)
	k.Spawn("driver", func(p *sim.Proc) {
		sw.OS().TaskActivate(p, task)
		for i := 0; i < 3; i++ {
			got = append(got, link.Recv(p))
			gotAt = append(gotAt, p.Now())
		}
		sw.OS().TaskTerminate(p)
	})
	k.Spawn("producer", func(p *sim.Proc) {
		for i := 1; i <= 3; i++ {
			p.WaitFor(100)
			link.Send(p, i*11)
		}
	})
	sw.OS().Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 11 || got[1] != 22 || got[2] != 33 {
		t.Errorf("received %v, want [11 22 33]", got)
	}
	// Each message: produced at i*100 (+ previous transfers), bus 15, ISR 2.
	if gotAt[0] != 117 {
		t.Errorf("first delivery at %v, want 117 (100 + 15 bus + 2 isr)", gotAt[0])
	}
	if link.Pending() != 0 {
		t.Errorf("pending = %d, want 0", link.Pending())
	}
	if sw.OS().StatsSnapshot().IRQs != 3 {
		t.Errorf("IRQs = %d, want 3", sw.OS().StatsSnapshot().IRQs)
	}
}

func TestLinkSelfLoopPanics(t *testing.T) {
	k := sim.NewKernel()
	bus := NewBus(k, "bus", 0, 0)
	pe := NewHWPE(k, "A")
	defer func() {
		if recover() == nil {
			t.Error("self-loop link did not panic")
		}
	}()
	NewLink[int](bus, "bad", pe, pe, 1, 0)
}

func TestBusNegativeSizePanics(t *testing.T) {
	k := sim.NewKernel()
	bus := NewBus(k, "bus", 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("negative transfer did not panic")
		}
	}()
	k.Spawn("m", func(p *sim.Proc) { bus.Transfer(p, -1) })
	_ = k.Run()
}
