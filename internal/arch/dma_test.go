package arch

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
)

// TestDMAOverlapsComputeWithTransfer: a task starts a DMA transfer and
// keeps computing; total time is max(compute, transfer), not the sum —
// unlike the CPU-driven Link path.
func TestDMAOverlapsComputeWithTransfer(t *testing.T) {
	k := sim.NewKernel()
	bus := NewBus(k, "bus", 0, 10) // 10 ns/byte
	pe := NewSWPE(k, "CPU", core.PriorityPolicy{})
	done := channel.NewSemaphore(pe.Factory(), "dma.done", 0)
	dma := NewDMA(bus, "dma0", pe, 0, func(p *sim.Proc, tag int64) {
		done.Release(p)
	})

	var finished sim.Time
	task := pe.OS().TaskCreate("worker", core.Aperiodic, 0, 0, 1)
	k.Spawn("worker", func(p *sim.Proc) {
		pe.OS().TaskActivate(p, task)
		dma.Start(p, 100, 7)      // transfer: 1000 ns on the bus
		pe.OS().TimeWait(p, 1000) // compute: 1000 ns, overlapping
		done.Acquire(p)           // both finish ≈ together
		finished = p.Now()
		pe.OS().TaskTerminate(p)
	})
	pe.OS().Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Overlap: end ≈ 1000, definitely < 2000 (the serialized CPU-driven
	// equivalent).
	if finished < 1000 || finished > 1200 {
		t.Errorf("finished at %v, want ≈1000 (compute/transfer overlap)", finished)
	}
	if dma.Completed() != 1 || dma.BytesMoved() != 100 {
		t.Errorf("dma stats: completed=%d moved=%d", dma.Completed(), dma.BytesMoved())
	}
	if dma.Pending() != 0 {
		t.Errorf("pending = %d, want 0", dma.Pending())
	}
}

// TestDMAQueuesMultipleTransfers: transfers serialize on the engine and
// every completion delivers its own tag.
func TestDMAQueuesMultipleTransfers(t *testing.T) {
	k := sim.NewKernel()
	bus := NewBus(k, "bus", 0, 1)
	pe := NewHWPE(k, "HW")
	var tags []int64
	var times []sim.Time
	dma := NewDMA(bus, "dma0", pe, 0, func(p *sim.Proc, tag int64) {
		tags = append(tags, tag)
		times = append(times, p.Now())
	})
	k.Spawn("submitter", func(p *sim.Proc) {
		dma.Start(p, 50, 1)
		dma.Start(p, 50, 2)
		dma.Start(p, 50, 3)
	})
	if err := k.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(tags) != 3 || tags[0] != 1 || tags[1] != 2 || tags[2] != 3 {
		t.Fatalf("tags = %v, want [1 2 3]", tags)
	}
	// 50-byte transfers at 1 ns/byte back-to-back: completions ~50/100/150.
	for i, want := range []sim.Time{50, 100, 150} {
		if times[i] < want || times[i] > want+10 {
			t.Errorf("completion %d at %v, want ≈%v", i, times[i], want)
		}
	}
}

// TestDMAContendsWithCPUOnBus: engine transfers and CPU-driven Link
// transfers arbitrate for the same bus exclusively.
func TestDMAContendsWithCPUOnBus(t *testing.T) {
	k := sim.NewKernel()
	bus := NewBus(k, "bus", 0, 1)
	hw := NewHWPE(k, "HW")
	var dmaDone sim.Time
	dma := NewDMA(bus, "dma0", hw, 0, func(p *sim.Proc, tag int64) {
		dmaDone = p.Now()
	})
	k.Spawn("cpu-master", func(p *sim.Proc) {
		bus.Transfer(p, 200) // occupies the bus 0..200
	})
	k.Spawn("submitter", func(p *sim.Proc) {
		p.WaitFor(10)
		dma.Start(p, 100, 0) // must wait for the bus until 200
	})
	if err := k.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if dmaDone < 300 {
		t.Errorf("DMA completed at %v, want ≥ 300 (bus busy until 200, then 100 transfer)", dmaDone)
	}
	if bus.Transfers() != 2 {
		t.Errorf("bus transfers = %d, want 2", bus.Transfers())
	}
}
