package arch

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/sim"
)

// Link is a typed unidirectional message channel between two PEs,
// synthesized over a shared bus. The receive side follows the paper's bus
// driver pattern: arriving data raises an interrupt on the destination PE,
// the ISR releases a semaphore, and the driver code running in the
// receiving task blocks on that semaphore.
type Link[T any] struct {
	name     string
	bus      *Bus
	from, to *PE
	msgBytes int

	irq *IRQ
	sem *channel.Semaphore
	buf []T
}

// NewLink wires a link from one PE to another over the bus. msgBytes is
// the payload size per message for the bus timing model; isrTime is the
// destination ISR's modeled service time.
func NewLink[T any](bus *Bus, name string, from, to *PE, msgBytes int, isrTime sim.Time) *Link[T] {
	if from == to {
		panic(fmt.Sprintf("arch: link %q connects PE %q to itself", name, from.Name()))
	}
	l := &Link[T]{name: name, bus: bus, from: from, to: to, msgBytes: msgBytes}
	// The driver's semaphore lives at the destination's modeling layer:
	// RTOS-refined on software PEs, specification-level on hardware PEs.
	l.sem = channel.NewSemaphore(to.Factory(), name+".sem", 0)
	l.irq = to.AttachISR(name+".irq", isrTime, func(p *sim.Proc) {
		l.sem.Release(p)
	})
	return l
}

// Name returns the link name.
func (l *Link[T]) Name() string { return l.name }

// IRQ returns the destination-side interrupt line (for tests and traces).
func (l *Link[T]) IRQ() *IRQ { return l.irq }

// Send transfers v over the bus and raises the destination interrupt.
// The calling process occupies the bus for the transfer duration.
func (l *Link[T]) Send(p *sim.Proc, v T) {
	l.bus.Transfer(p, l.msgBytes)
	l.buf = append(l.buf, v)
	l.irq.Raise(p)
}

// Recv blocks the calling driver code until a message has arrived (ISR
// semaphore) and returns it.
func (l *Link[T]) Recv(p *sim.Proc) T {
	l.sem.Acquire(p)
	v := l.buf[0]
	l.buf = l.buf[1:]
	return v
}

// Pending returns the number of delivered but unconsumed messages.
func (l *Link[T]) Pending() int { return len(l.buf) }
