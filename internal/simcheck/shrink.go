package simcheck

import (
	"encoding/json"

	"repro/internal/sim"
)

// Shrink greedily minimizes a failing scenario: it tries structural
// reductions in decreasing order of aggressiveness (drop a task, drop a
// channel, cut cycles, drop ops, halve durations), adopts any candidate
// for which failing still reports true, and repeats until no reduction
// helps or the evaluation budget is spent. failing is typically
// func(c *Scenario) bool { return len(Check(c)) > 0 } — each call runs
// the whole matrix, so budget bounds total shrink cost.
func Shrink(s *Scenario, failing func(*Scenario) bool, budget int) *Scenario {
	cur := clone(s)
	for improved := true; improved && budget > 0; {
		improved = false
		for _, cand := range candidates(cur) {
			if budget <= 0 {
				break
			}
			if cand.Validate() != nil {
				continue
			}
			budget--
			if failing(cand) {
				cur = cand
				improved = true
				break
			}
		}
	}
	return cur
}

// candidates enumerates one-step reductions of the scenario, most
// aggressive first.
func candidates(s *Scenario) []*Scenario {
	var out []*Scenario
	for i := range s.Tasks {
		out = append(out, removeTask(s, i))
	}
	for i := range s.Channels {
		out = append(out, removeChannel(s, s.Channels[i].Name))
	}
	for i := range s.Tasks {
		if s.Tasks[i].Cycles > 1 {
			c := clone(s)
			c.Tasks[i].Cycles--
			out = append(out, c)
		}
		if len(s.Tasks[i].Segments) > 1 {
			c := clone(s)
			c.Tasks[i].Segments = c.Tasks[i].Segments[:len(c.Tasks[i].Segments)-1]
			out = append(out, c)
		}
		for j, op := range s.Tasks[i].Ops {
			if op.Kind == OpDelay && len(s.Tasks[i].Ops) > 1 {
				c := clone(s)
				c.Tasks[i].Ops = append(c.Tasks[i].Ops[:j:j], c.Tasks[i].Ops[j+1:]...)
				out = append(out, c)
			}
		}
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		for j, seg := range t.Segments {
			if h := halveTime(seg); h < seg {
				c := clone(s)
				c.Tasks[i].Segments[j] = h
				out = append(out, c)
			}
		}
		for j, op := range t.Ops {
			if op.Kind == OpDelay {
				if h := halveTime(op.Dur); h < op.Dur {
					c := clone(s)
					c.Tasks[i].Ops[j].Dur = h
					out = append(out, c)
				}
			}
		}
		if t.Start > 0 {
			c := clone(s)
			c.Tasks[i].Start = halveTime(t.Start)
			if c.Tasks[i].Start == t.Start {
				c.Tasks[i].Start = 0
			}
			out = append(out, c)
		}
		if t.Type == "periodic" {
			if h := halveTime(t.Period); h < t.Period {
				c := clone(s)
				c.Tasks[i].Period = h
				out = append(out, c)
			}
		}
	}
	return out
}

// removeTask drops task i together with every channel its program uses
// (and those channels' ops and IRQs elsewhere), keeping the remainder
// structurally valid. An aperiodic task left with an empty program gets a
// minimal placeholder delay.
func removeTask(s *Scenario, i int) *Scenario {
	c := clone(s)
	used := map[string]bool{}
	for _, op := range c.Tasks[i].Ops {
		if op.Ch != "" {
			used[op.Ch] = true
		}
	}
	c.Tasks = append(c.Tasks[:i:i], c.Tasks[i+1:]...)
	for name := range used {
		stripChannel(c, name)
	}
	return c
}

// removeChannel drops one channel and every reference to it.
func removeChannel(s *Scenario, name string) *Scenario {
	c := clone(s)
	stripChannel(c, name)
	return c
}

func stripChannel(c *Scenario, name string) {
	chans := c.Channels[:0]
	for _, ch := range c.Channels {
		if ch.Name != name {
			chans = append(chans, ch)
		}
	}
	c.Channels = chans
	irqs := c.IRQs[:0]
	for _, irq := range c.IRQs {
		if irq.Sem != name {
			irqs = append(irqs, irq)
		}
	}
	c.IRQs = irqs
	for i := range c.Tasks {
		t := &c.Tasks[i]
		ops := t.Ops[:0]
		for _, op := range t.Ops {
			if op.Ch != name {
				ops = append(ops, op)
			}
		}
		t.Ops = ops
		if t.Type == "aperiodic" && len(t.Ops) == 0 {
			t.Ops = []Op{{Kind: OpDelay, Dur: sim.Microsecond}}
		}
	}
}

// halveTime halves a duration at microsecond granularity, never below
// one microsecond.
func halveTime(d sim.Time) sim.Time {
	h := d / 2
	h -= h % sim.Microsecond
	if h < sim.Microsecond {
		h = sim.Microsecond
	}
	return h
}

// clone deep-copies a scenario via its JSON form.
func clone(s *Scenario) *Scenario {
	var c Scenario
	b, err := json.Marshal(s)
	if err == nil {
		err = json.Unmarshal(b, &c)
	}
	if err != nil {
		panic(err) // plain data: cannot fail
	}
	return &c
}
