package simcheck

import (
	"bytes"
	"fmt"
	"testing"
)

// TestReadyQueueEquivalence pins the central correctness claim of the
// indexed ready queue: for every (scenario, policy, time model, PE count)
// point of the matrix, a run with the bucketed queue produces a trace that
// is byte-identical to a run with the original linear ready-list scan.
// Any divergence — a different dispatch order, tie-break, preemption
// point or statistic — fails with the first differing trace line.
func TestReadyQueueEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence matrix is slow; skipped with -short")
	}
	for seed := int64(1); seed <= 25; seed++ {
		s := Generate(seed)
		for _, cfg := range Matrix(s) {
			cfg := cfg
			indexed := Run(s, cfg)

			linear := cfg
			linear.LinearReady = true
			ref := Run(s, linear)

			if (indexed.Err == nil) != (ref.Err == nil) {
				t.Errorf("seed %d %v: err mismatch: indexed=%v linear=%v",
					seed, cfg, indexed.Err, ref.Err)
				continue
			}
			if !bytes.Equal(indexed.Trace, ref.Trace) {
				t.Errorf("seed %d %v: indexed ready queue diverges from linear scan\n%s",
					seed, cfg, firstTraceDiff(indexed.Trace, ref.Trace))
			}
		}
	}
}

// firstTraceDiff renders the first line where two traces differ.
func firstTraceDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) || i < len(bl); i++ {
		var la, lb []byte
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if !bytes.Equal(la, lb) {
			return fmt.Sprintf("line %d:\n  indexed: %s\n  linear:  %s", i+1, la, lb)
		}
	}
	return "traces equal?"
}
