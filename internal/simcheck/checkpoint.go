package simcheck

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"repro/internal/rtc"
	"repro/internal/sim"
)

// runRTCCheckpointed runs the scenario on the rtc engine through a full
// snapshot/restore cycle: advance a session to CheckpointAt, serialize
// its complete state, rebuild a *fresh* session from the checkpoint
// bytes alone, and run that to the horizon. The assembled RunResult must
// be byte-identical to the uninterrupted run — any state the codec
// drops or distorts shows up as a trace or outcome diff in the
// checkpoint oracle.
func runRTCCheckpointed(s *Scenario, cfg Config) *RunResult {
	w := BuildRTCWorkload(s, cfg)
	ses, err := rtc.NewSession(w)
	if err != nil {
		return assembleRTC(cfg, &rtc.Result{Err: err})
	}
	if err := ses.RunUntil(cfg.CheckpointAt); err != nil {
		// The run failed before the checkpoint instant; the uninterrupted
		// run fails identically, so finish and let the oracle compare.
		return assembleRTC(cfg, ses.Finish())
	}
	cp, err := ses.Snapshot()
	if err != nil {
		return assembleRTC(cfg, &rtc.Result{
			Err: fmt.Errorf("checkpoint: snapshot at %v: %w", cfg.CheckpointAt, err)})
	}
	restored, err := rtc.Restore(w, cp)
	if err != nil {
		return assembleRTC(cfg, &rtc.Result{Err: fmt.Errorf("checkpoint: %w", err)})
	}
	restored.RunUntil(w.Horizon)
	return assembleRTC(cfg, restored.Finish())
}

// runSingleCheckpointed is the goroutine-kernel counterpart. Process
// stacks are goroutines, so the state cannot be rebuilt from bytes;
// instead the checkpoint is a verified replay point: run instance A to
// CheckpointAt and snapshot it, then build a fresh instance B, replay it
// to the same instant, and have sim.Kernel.Restore prove B's scheduler
// state and the core.OS state digest are byte-identical to A's before B
// continues to the horizon. A restore divergence — nondeterministic
// replay, state the digest misses — surfaces as the run's Err and trips
// the checkpoint oracle's error-parity comparison.
func runSingleCheckpointed(s *Scenario, cfg Config) *RunResult {
	at := cfg.CheckpointAt

	a, errRes := buildSingle(s, cfg)
	if errRes != nil {
		return errRes
	}
	errA := a.k.RunUntil(at)
	var cp *sim.Checkpoint
	var digA []byte
	if errA == nil {
		var err error
		if cp, err = a.k.Snapshot(); err != nil {
			a.k.Shutdown()
			res := &RunResult{Config: cfg, Err: fmt.Errorf("checkpoint: snapshot at %v: %w", at, err)}
			return res
		}
		digA = a.rtos.StateDigest()
	}
	a.k.Shutdown()

	b, errRes := buildSingle(s, cfg)
	if errRes != nil {
		return errRes
	}
	defer b.k.Shutdown()
	errB := b.k.RunUntil(at)
	if (errA == nil) != (errB == nil) {
		return b.finish(fmt.Errorf("checkpoint: replay diverged at %v: first run err=%v, replay err=%v", at, errA, errB))
	}
	if cp != nil {
		if err := b.k.Restore(cp); err != nil {
			return b.finish(fmt.Errorf("checkpoint: %w", err))
		}
		if digB := b.rtos.StateDigest(); !bytes.Equal(digA, digB) {
			return b.finish(fmt.Errorf("checkpoint: OS state digest diverges at %v:\n--- first run\n%s--- replay\n%s", at, digA, digB))
		}
	}
	err := b.k.RunUntil(s.Horizon())
	return b.finish(err)
}

// CheckpointInstant derives a deterministic pseudo-random snapshot
// instant in [1, horizon] from the scenario seed and the config, so
// every fuzz seed exercises restore at a different point of a run
// without adding a source of nondeterminism to the soak.
func CheckpointInstant(seed int64, cfg Config, horizon sim.Time) sim.Time {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, cfg)
	x := h.Sum64()
	// splitmix64 finalizer: spread the fnv hash over the full 64 bits.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if horizon <= 1 {
		return 1
	}
	return 1 + sim.Time(x%uint64(horizon))
}
