package simcheck

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Generate produces the random scenario for a seed. Generation is fully
// deterministic: the same seed yields the same scenario in every process
// (the replay contract cmd/simfuzz's reproduction instructions rely on).
//
// Roughly a third of the scenarios are pure periodic task sets (the
// response-time-analysis oracle's domain, also eligible for the SMP
// matrix); the rest mix periodic and aperiodic tasks with random queue
// topologies and IRQ-released semaphores. Scenarios are valid by
// construction — Generate panics if a generator bug produces an invalid
// one.
func Generate(seed int64) *Scenario {
	rng := rand.New(rand.NewSource(seed))
	s := &Scenario{Seed: seed}

	nTasks := 2 + rng.Intn(4) // 2..5
	periodicOnly := rng.Intn(3) == 0
	heavy := rng.Intn(5) == 0 // overloaded set: utilization may exceed 1

	prios := rng.Perm(nTasks) // distinct priorities (RTA applicability)
	var aperiodic []int
	for i := 0; i < nTasks; i++ {
		t := TaskSpec{Name: fmt.Sprintf("T%d", i), Prio: prios[i]}
		if periodicOnly || rng.Intn(2) == 0 {
			t.Type = "periodic"
			t.Period = sim.Time(50+rng.Intn(450)) * sim.Microsecond
			t.Cycles = 1 + rng.Intn(4)
			nseg := 1 + rng.Intn(3)
			// Per-segment budget keeps the set's total utilization below 1
			// unless this is a deliberately overloaded scenario.
			budget := t.Period / sim.Time(nseg*nTasks*2)
			if heavy {
				budget = t.Period / sim.Time(nseg)
			}
			if budget < sim.Microsecond {
				budget = sim.Microsecond
			}
			for k := 0; k < nseg; k++ {
				t.Segments = append(t.Segments, randTime(rng, sim.Microsecond, budget))
			}
		} else {
			t.Type = "aperiodic"
			t.Start = sim.Time(rng.Intn(300)) * sim.Microsecond
			for k, n := 0, 1+rng.Intn(4); k < n; k++ {
				t.Ops = append(t.Ops, Op{Kind: OpDelay, Dur: randTime(rng, sim.Microsecond, 80*sim.Microsecond)})
			}
			aperiodic = append(aperiodic, i)
		}
		s.Tasks = append(s.Tasks, t)
	}

	// Queue topology: messages flow from a lower- to a higher-indexed
	// aperiodic task, capacity covering all sends (liveness by
	// construction; see Scenario.Validate).
	if len(aperiodic) >= 2 {
		for q, nq := 0, rng.Intn(3); q < nq; q++ {
			ai := rng.Intn(len(aperiodic) - 1)
			bi := ai + 1 + rng.Intn(len(aperiodic)-ai-1)
			prod, cons := aperiodic[ai], aperiodic[bi]
			n := 1 + rng.Intn(3)
			name := fmt.Sprintf("q%d", q)
			s.Channels = append(s.Channels, ChannelSpec{Name: name, Kind: "queue", Arg: n})
			for k := 0; k < n; k++ {
				insertOp(rng, &s.Tasks[prod], Op{Kind: OpSend, Ch: name})
				insertOp(rng, &s.Tasks[cons], Op{Kind: OpRecv, Ch: name})
			}
		}
	}

	// Semaphore released by an external IRQ pattern (or pre-charged), with
	// a random acquirer — the paper's ISR-to-driver signalling path.
	if len(aperiodic) >= 1 && rng.Intn(2) == 0 {
		acq := aperiodic[rng.Intn(len(aperiodic))]
		n := 1 + rng.Intn(2)
		sem := ChannelSpec{Name: "sem0", Kind: "semaphore"}
		if rng.Intn(4) == 0 {
			sem.Arg = n // pre-charged: no IRQ needed
		} else {
			irq := IRQSpec{
				Name:  "irq0",
				Sem:   sem.Name,
				At:    sim.Time(50+rng.Intn(350)) * sim.Microsecond,
				Count: n,
			}
			if n > 1 {
				irq.Every = sim.Time(20+rng.Intn(80)) * sim.Microsecond
			}
			s.IRQs = append(s.IRQs, irq)
		}
		s.Channels = append(s.Channels, sem)
		for k := 0; k < n; k++ {
			insertOp(rng, &s.Tasks[acq], Op{Kind: OpAcquire, Ch: sem.Name})
		}
	}

	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("simcheck: generator produced invalid scenario for seed %d: %v", seed, err))
	}
	return s
}

// randTime returns a uniform time in [lo, hi] (microsecond granularity to
// keep reproducer JSON readable).
func randTime(rng *rand.Rand, lo, hi sim.Time) sim.Time {
	if hi <= lo {
		return lo
	}
	span := int64((hi-lo)/sim.Microsecond) + 1
	return lo + sim.Time(rng.Int63n(span))*sim.Microsecond
}

// insertOp splices an op into a random position of a task's program.
func insertOp(rng *rand.Rand, t *TaskSpec, op Op) {
	pos := rng.Intn(len(t.Ops) + 1)
	t.Ops = append(t.Ops, Op{})
	copy(t.Ops[pos+1:], t.Ops[pos:])
	t.Ops[pos] = op
}
