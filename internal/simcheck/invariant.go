package simcheck

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Violation is one invariant or oracle breach observed on a run.
type Violation struct {
	Kind string   // invariant/oracle identifier
	At   sim.Time // trace position (0 if not time-located)
	Msg  string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] at %v: %s", v.Kind, v.At, v.Msg)
}

// CheckRun verifies all structural invariants of a single run.
func CheckRun(s *Scenario, res *RunResult) []Violation {
	var vs []Violation
	if res.Diag != nil {
		// Scenarios are deadlock-free by construction (Validate), so the
		// runtime-diagnosis layer must stay silent on every one of them.
		vs = append(vs, Violation{Kind: "diagnosis", At: res.Diag.At,
			Msg: fmt.Sprintf("false-positive runtime diagnosis on a deadlock-free scenario: %v", res.Diag)})
	}
	if res.Err != nil {
		return append(vs, Violation{Kind: "run-error", At: res.End, Msg: res.Err.Error()})
	}
	if res.Config.CPUs > 1 {
		vs = checkSMPEvents(res)
	} else {
		vs = checkSingleTrace(s, res)
	}
	vs = append(vs, checkCompletion(s, res)...)
	return vs
}

// checkSingleTrace replays the record stream of a single-PE run and
// checks timestamp monotonicity, mutual exclusion of the CPU, IRQ
// enter/return balance, the no-priority-inversion property (with the
// coarse model's delay-granularity exception) and time conservation.
func checkSingleTrace(s *Scenario, res *RunResult) []Violation {
	var vs []Violation
	add := func(kind string, at sim.Time, format string, args ...interface{}) {
		vs = append(vs, Violation{Kind: kind, At: at, Msg: fmt.Sprintf(format, args...)})
	}

	prios, prioKnown := effectivePrios(s, res.Config)
	active := func(st string) bool { return st == "running" || st == "delay" }

	state := map[string]string{}
	readySince := map[string]sim.Time{}
	delayStart := map[string]sim.Time{}
	irqDepth := map[string]int{}
	var prevAt sim.Time

	runningTask := func() string {
		for name, st := range state {
			if active(st) {
				return name
			}
		}
		return ""
	}

	for _, rec := range res.Records {
		if rec.At < prevAt {
			add("monotone-time", rec.At, "record at %v after %v: %s", rec.At, prevAt, rec)
		}
		// Time advanced: judge the elapsed interval against the state that
		// held throughout it.
		if rec.At > prevAt && prioKnown {
			if r := runningTask(); r != "" {
				for h, st := range state {
					if st != "ready" || prios[h] >= prios[r] {
						continue
					}
					// Coarse-model exception (paper Section 4.3): a delay
					// annotation runs to its end even if a higher-priority
					// task became ready after the delay began (t4 -> t4').
					coarseWindow := !res.Config.Segmented() &&
						state[r] == "delay" && delayStart[r] <= readySince[h]
					if !coarseWindow {
						add("priority-inversion", prevAt,
							"task %s (prio %d) ready since %v while %s (prio %d, state %s) kept the CPU through %v..%v",
							h, prios[h], readySince[h], r, prios[r], state[r], prevAt, rec.At)
					}
				}
			}
		}
		prevAt = rec.At

		switch rec.Kind {
		case trace.KindTaskState:
			state[rec.Task] = rec.To
			switch rec.To {
			case "ready":
				readySince[rec.Task] = rec.At
			case "delay":
				delayStart[rec.Task] = rec.At
			}
			n := 0
			for _, st := range state {
				if active(st) {
					n++
				}
			}
			if n > 1 {
				add("single-running", rec.At, "%d tasks active on one PE after %s", n, rec)
			}
		case trace.KindIRQ:
			if rec.Arg == 1 {
				irqDepth[rec.Label]++
				if irqDepth[rec.Label] > 1 {
					add("irq-balance", rec.At, "nested enter of irq %s", rec.Label)
				}
			} else {
				irqDepth[rec.Label]--
				if irqDepth[rec.Label] < 0 {
					add("irq-balance", rec.At, "return without enter of irq %s", rec.Label)
				}
			}
		}
	}
	for name, d := range irqDepth {
		if d != 0 {
			add("irq-balance", prevAt, "irq %s ends with depth %d", name, d)
		}
	}
	if res.conservation != nil {
		add("time-conservation", res.End, "%v", res.conservation)
	}
	return vs
}

// checkSMPEvents verifies the global scheduler's occupancy invariants: at
// most one task per CPU slot, no task on two CPUs, monotone timestamps,
// and — once all tasks have drained — agreement between the summed slot
// occupancy and the scheduler's busy-time counter.
func checkSMPEvents(res *RunResult) []Violation {
	var vs []Violation
	add := func(kind string, at sim.Time, format string, args ...interface{}) {
		vs = append(vs, Violation{Kind: kind, At: at, Msg: fmt.Sprintf(format, args...)})
	}
	slot := make(map[int]string)         // cpu -> task
	on := make(map[string]int)           // task -> cpu
	since := make(map[int]sim.Time)      // cpu -> dispatch time
	var occupancy sim.Time
	var prevAt sim.Time
	for _, e := range res.Events {
		if e.At < prevAt {
			add("monotone-time", e.At, "event at %v after %v: %s", e.At, prevAt, e)
		}
		prevAt = e.At
		if e.CPU < 0 || e.CPU >= res.Config.CPUs {
			add("cpu-range", e.At, "event on cpu %d of %d: %s", e.CPU, res.Config.CPUs, e)
			continue
		}
		if e.Release {
			if slot[e.CPU] != e.Task {
				add("occupancy", e.At, "release of %s from cpu %d occupied by %q", e.Task, e.CPU, slot[e.CPU])
			} else {
				occupancy += e.At - since[e.CPU]
			}
			delete(slot, e.CPU)
			delete(on, e.Task)
		} else {
			if prev, busy := slot[e.CPU]; busy {
				add("occupancy", e.At, "dispatch of %s into cpu %d occupied by %s", e.Task, e.CPU, prev)
			}
			if cpu, running := on[e.Task]; running {
				add("occupancy", e.At, "task %s dispatched on cpu %d while on cpu %d", e.Task, e.CPU, cpu)
			}
			slot[e.CPU] = e.Task
			on[e.Task] = e.CPU
			since[e.CPU] = e.At
		}
	}
	allDone := true
	for _, t := range res.Tasks {
		if !t.Terminated {
			allDone = false
		}
	}
	if allDone {
		if len(slot) != 0 {
			add("occupancy", prevAt, "%d CPU slots still occupied after all tasks terminated", len(slot))
		} else if occupancy != res.SMP.BusyTime {
			add("busy-accounting", prevAt, "summed slot occupancy %v != scheduler busy time %v",
				occupancy, res.SMP.BusyTime)
		}
	}
	return vs
}

// checkCompletion verifies that the horizon drained the whole workload —
// every task terminated with the expected activation count — and that the
// scheduler's busy-time counter equals the summed per-task CPU time.
func checkCompletion(s *Scenario, res *RunResult) []Violation {
	var vs []Violation
	allDone := true
	var cpuSum sim.Time
	for _, t := range res.Tasks {
		spec := &s.Tasks[t.Index]
		cpuSum += t.CPUTime
		if !t.Terminated {
			allDone = false
			vs = append(vs, Violation{Kind: "completion", At: res.End,
				Msg: fmt.Sprintf("task %s not terminated by horizon %v", t.Name, s.Horizon())})
			continue
		}
		want := 1
		if spec.Type == "periodic" {
			want = spec.Cycles
		}
		if t.Activations != want {
			vs = append(vs, Violation{Kind: "completion", At: res.End,
				Msg: fmt.Sprintf("task %s completed %d activations, want %d", t.Name, t.Activations, want)})
		}
		if t.CPUTime != spec.Work() {
			vs = append(vs, Violation{Kind: "completion", At: res.End,
				Msg: fmt.Sprintf("task %s consumed %v CPU time, want %v", t.Name, t.CPUTime, spec.Work())})
		}
	}
	if allDone {
		busy := res.Stats.BusyTime
		if res.Config.CPUs > 1 {
			busy = res.SMP.BusyTime
		}
		if busy != cpuSum {
			vs = append(vs, Violation{Kind: "busy-accounting", At: res.End,
				Msg: fmt.Sprintf("scheduler busy time %v != summed task CPU time %v", busy, cpuSum)})
		}
	}
	return vs
}

// effectivePrios returns the static priority of every task under the
// config's policy (smaller = higher), or ok=false for policies whose
// dispatch order is not a static priority (fcfs, edf, g-edf).
// Rate-monotonic priorities mirror core's Start-time derivation: periodic
// tasks ranked by period (stable), aperiodic tasks below all periodic
// ones in declared-priority order.
func effectivePrios(s *Scenario, cfg Config) (map[string]int, bool) {
	switch cfg.Policy {
	case "priority", "rr", "g-fp":
		m := make(map[string]int, len(s.Tasks))
		for i := range s.Tasks {
			m[s.Tasks[i].Name] = s.Tasks[i].Prio
		}
		return m, true
	case "rm":
		var periodic, aperiodic []int
		for i := range s.Tasks {
			if s.Tasks[i].Type == "periodic" {
				periodic = append(periodic, i)
			} else {
				aperiodic = append(aperiodic, i)
			}
		}
		sort.SliceStable(periodic, func(a, b int) bool {
			return s.Tasks[periodic[a]].Period < s.Tasks[periodic[b]].Period
		})
		sort.SliceStable(aperiodic, func(a, b int) bool {
			return s.Tasks[aperiodic[a]].Prio < s.Tasks[aperiodic[b]].Prio
		})
		m := make(map[string]int, len(s.Tasks))
		p := 0
		for _, i := range periodic {
			m[s.Tasks[i].Name] = p
			p++
		}
		for _, i := range aperiodic {
			m[s.Tasks[i].Name] = p
			p++
		}
		return m, true
	default:
		return nil, false
	}
}
