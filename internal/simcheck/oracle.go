package simcheck

import (
	"bytes"
	"fmt"
	"runtime"

	"repro/internal/runner"
	"repro/internal/sim"
)

// Failure ties the violations observed for one scenario/config pair
// together (the unit cmd/simfuzz shrinks and reports).
type Failure struct {
	Config     Config
	Violations []Violation
}

func (f Failure) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "config %s:", f.Config)
	for _, v := range f.Violations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// Check runs the scenario across the whole configuration matrix and
// returns every invariant and oracle violation found. Each config is run
// twice to enforce the replay-determinism oracle; coarse/segmented
// siblings of the same policy are compared by the differential oracle;
// all-periodic sets additionally face the response-time-analysis bound.
// The matrix points run concurrently on all CPUs; use CheckJobs to bound
// the worker count (e.g. when the caller already parallelizes across
// scenarios, as cmd/simfuzz -jobs does).
func Check(s *Scenario) []Failure { return CheckJobs(s, runtime.NumCPU()) }

// CheckJobs is Check with an explicit worker count (1 = sequential). The
// returned failures are in matrix order regardless of the worker count:
// each configuration's runs are independent kernels and the results are
// collected in submission order.
func CheckJobs(s *Scenario, jobs int) []Failure {
	cfgs := Matrix(s)
	type pair struct{ r1, r2, rtc, ck, rtcCk *RunResult }
	runs := runner.Map(len(cfgs), runner.Options{Jobs: jobs}, func(i int) (pair, error) {
		p := pair{r1: safeRun(s, cfgs[i]), r2: safeRun(s, cfgs[i])}
		if cfgs[i].CPUs == 1 {
			rcfg := cfgs[i]
			rcfg.Engine = "rtc"
			p.rtc = safeRun(s, rcfg)
			// Checkpoint-equivalence oracle: snapshot at a seed-derived
			// instant, restore, run to the horizon — on both engines.
			ckCfg := cfgs[i]
			ckCfg.CheckpointAt = CheckpointInstant(s.Seed, cfgs[i], s.Horizon())
			p.ck = safeRun(s, ckCfg)
			rckCfg := rcfg
			rckCfg.CheckpointAt = ckCfg.CheckpointAt
			p.rtcCk = safeRun(s, rckCfg)
		}
		return p, nil
	})
	var fails []Failure
	byKey := map[string]*RunResult{}
	for i, cfg := range cfgs {
		r1, r2 := runs[i].Value.r1, runs[i].Value.r2
		vs := CheckRun(s, r1)
		if !bytes.Equal(r1.Trace, r2.Trace) {
			vs = append(vs, Violation{Kind: "determinism", At: r1.End,
				Msg: fmt.Sprintf("two runs of seed %d under %s produced different traces (%d vs %d bytes)",
					s.Seed, cfg, len(r1.Trace), len(r2.Trace))})
		}
		// Engine-differential oracle: the run-to-completion engine must be
		// byte-identical to the goroutine kernel on every uniprocessor
		// config — trace, statistics, end time, per-task outcomes, and the
		// diagnosis verdict.
		if rr := runs[i].Value.rtc; rr != nil {
			if (rr.Err == nil) != (r1.Err == nil) {
				vs = append(vs, Violation{Kind: "engine", At: r1.End,
					Msg: fmt.Sprintf("rtc engine err=%v but goroutine kernel err=%v under %s", rr.Err, r1.Err, cfg)})
			} else if !bytes.Equal(rr.Trace, r1.Trace) {
				vs = append(vs, Violation{Kind: "engine", At: r1.End,
					Msg: fmt.Sprintf("rtc engine trace diverges from goroutine kernel under %s (%d vs %d bytes)",
						cfg, len(rr.Trace), len(r1.Trace))})
			}
			if (rr.Diag == nil) != (r1.Diag == nil) {
				vs = append(vs, Violation{Kind: "engine", At: r1.End,
					Msg: fmt.Sprintf("rtc engine diagnosis=%v but goroutine kernel diagnosis=%v under %s",
						rr.Diag, r1.Diag, cfg)})
			}
		}
		// Checkpoint-equivalence oracle: a run that was snapshotted at an
		// arbitrary instant and restored into a fresh kernel must be
		// byte-identical — trace, stats, outcomes — to the uninterrupted
		// run. Checked on both engines against the goroutine baseline (the
		// engine oracle above already pins rtc == goroutine).
		for _, ck := range []*RunResult{runs[i].Value.ck, runs[i].Value.rtcCk} {
			if ck == nil {
				continue
			}
			if (ck.Err == nil) != (r1.Err == nil) {
				vs = append(vs, Violation{Kind: "checkpoint", At: r1.End,
					Msg: fmt.Sprintf("checkpointed run (%s) err=%v but uninterrupted run err=%v",
						ck.Config, ck.Err, r1.Err)})
			} else if !bytes.Equal(ck.Trace, r1.Trace) {
				vs = append(vs, Violation{Kind: "checkpoint", At: r1.End,
					Msg: fmt.Sprintf("checkpointed run (%s) trace diverges from uninterrupted run (%d vs %d bytes)",
						ck.Config, len(ck.Trace), len(r1.Trace))})
			}
		}
		vs = append(vs, checkRTA(s, r1)...)
		byKey[cfg.String()] = r1
		if len(vs) > 0 {
			fails = append(fails, Failure{Config: cfg, Violations: vs})
		}
	}
	// Differential oracle: the time model changes when work happens, never
	// how much of it there is. Pair each coarse run with its segmented
	// sibling and compare drained totals.
	for _, cfg := range cfgs {
		if cfg.TimeModel != "coarse" {
			continue
		}
		seg := cfg
		seg.TimeModel = "segmented"
		if vs := diffRuns(byKey[cfg.String()], byKey[seg.String()]); len(vs) > 0 {
			fails = append(fails, Failure{Config: cfg, Violations: vs})
		}
	}
	// Cross-personality oracle: a personality changes kernel API semantics
	// (channel grant order, wakeup bookkeeping), never the modeled work.
	// Pair each itron/osek run with its generic sibling and compare the
	// completion set, activation counts and per-task CPU time. Response
	// times and deadline misses are NOT compared — grant order legitimately
	// shifts when blocked tasks run.
	for _, cfg := range cfgs {
		if cfg.CPUs != 1 || cfg.Personality == "" {
			continue
		}
		gen := cfg
		gen.Personality = ""
		if vs := diffPersonalities(byKey[gen.String()], byKey[cfg.String()]); len(vs) > 0 {
			fails = append(fails, Failure{Config: cfg, Violations: vs})
		}
	}
	return fails
}

// safeRun converts a panic on the caller's goroutine (builder bugs,
// bad policy names) into a run error instead of killing a soak run.
func safeRun(s *Scenario, cfg Config) (res *RunResult) {
	defer func() {
		if r := recover(); r != nil {
			res = &RunResult{Config: cfg, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	return Run(s, cfg)
}

// diffRuns compares the coarse and segmented runs of one policy: with the
// horizon draining the full workload in every interleaving, total busy
// time, per-task CPU time, activation counts and the completion set must
// all agree between the two time models.
func diffRuns(coarse, segmented *RunResult) []Violation {
	if coarse == nil || segmented == nil || coarse.Err != nil || segmented.Err != nil {
		return nil // run errors are already reported per config
	}
	var vs []Violation
	add := func(format string, args ...interface{}) {
		vs = append(vs, Violation{Kind: "differential", Msg: fmt.Sprintf(format, args...)})
	}
	busyC, busyS := coarse.Stats.BusyTime, segmented.Stats.BusyTime
	if coarse.Config.CPUs > 1 {
		busyC, busyS = coarse.SMP.BusyTime, segmented.SMP.BusyTime
	}
	if busyC != busyS {
		add("%s busy time %v != %s busy time %v", coarse.Config, busyC, segmented.Config, busyS)
	}
	if len(coarse.Tasks) != len(segmented.Tasks) {
		add("task count %d != %d", len(coarse.Tasks), len(segmented.Tasks))
		return vs
	}
	for i := range coarse.Tasks {
		c, g := coarse.Tasks[i], segmented.Tasks[i]
		if c.Terminated != g.Terminated {
			add("task %s terminated=%v coarse but %v segmented", c.Name, c.Terminated, g.Terminated)
		}
		if c.Activations != g.Activations {
			add("task %s ran %d activations coarse but %d segmented", c.Name, c.Activations, g.Activations)
		}
		if c.CPUTime != g.CPUTime {
			add("task %s consumed %v CPU coarse but %v segmented", c.Name, c.CPUTime, g.CPUTime)
		}
	}
	return vs
}

// diffPersonalities compares one itron/osek run against its generic
// sibling (same policy, time model, PE): with the horizon draining the
// whole workload, the personalities must agree on which tasks completed,
// how many activations each ran and how much CPU each consumed — the
// busy-time totals follow. A divergence means a personality kernel lost
// or duplicated work (a dropped wakeup, a double grant), not merely
// reordered it.
func diffPersonalities(generic, native *RunResult) []Violation {
	if generic == nil || native == nil || generic.Err != nil || native.Err != nil {
		return nil // run errors are already reported per config
	}
	var vs []Violation
	add := func(format string, args ...interface{}) {
		vs = append(vs, Violation{Kind: "personality", Msg: fmt.Sprintf(format, args...)})
	}
	if generic.Stats.BusyTime != native.Stats.BusyTime {
		add("%s busy time %v != %s busy time %v",
			generic.Config, generic.Stats.BusyTime, native.Config, native.Stats.BusyTime)
	}
	if len(generic.Tasks) != len(native.Tasks) {
		add("task count %d != %d", len(generic.Tasks), len(native.Tasks))
		return vs
	}
	for i := range generic.Tasks {
		g, n := generic.Tasks[i], native.Tasks[i]
		if g.Terminated != n.Terminated {
			add("task %s terminated=%v generic but %v under %s", g.Name, g.Terminated, n.Terminated, native.Config.Personality)
		}
		if g.Activations != n.Activations {
			add("task %s ran %d activations generic but %d under %s", g.Name, g.Activations, n.Activations, native.Config.Personality)
		}
		if g.CPUTime != n.CPUTime {
			add("task %s consumed %v CPU generic but %v under %s", g.Name, g.CPUTime, n.CPUTime, native.Config.Personality)
		}
	}
	return vs
}

// checkRTA asserts the response-time-analysis oracle on all-periodic,
// single-PE, fixed-priority runs: if classic RTA
//
//	R_i = C_i + B_i + sum_{j in hp(i)} ceil(R_i/T_j) * C_j
//
// converges with R_i <= T_i, the observed worst response must not exceed
// R_i and the task must not miss deadlines. B_i is zero under the
// segmented (fully preemptive) model; under the coarse model every delay
// segment runs to completion, so B_i is the longest single segment of any
// lower-priority task (non-preemptive chunk blocking).
//
// The single-job fixpoint is only sound when the synchronous-release
// (critical instant) job is the worst of its level-i active period; with
// deferred preemption a later job can be worse (self-pushing). The bound
// is therefore only asserted when the level-i active period
//
//	L_i = B_i + sum_{j in hp(i) + {i}} ceil(L_i/T_j) * C_j
//
// also converges within T_i, which limits the active period to a single
// job of task i.
func checkRTA(s *Scenario, res *RunResult) []Violation {
	if res.Err != nil || res.Config.CPUs != 1 || !s.AllPeriodic() {
		return nil
	}
	if res.Config.Policy != "priority" && res.Config.Policy != "rm" {
		return nil
	}
	prios, ok := effectivePrios(s, res.Config)
	if !ok {
		return nil
	}
	var vs []Violation
	for i := range s.Tasks {
		ti := &s.Tasks[i]
		C := ti.Work() / sim.Time(ti.Cycles)
		T := ti.Period
		var B sim.Time
		if !res.Config.Segmented() {
			for j := range s.Tasks {
				if prios[s.Tasks[j].Name] <= prios[ti.Name] {
					continue
				}
				for _, seg := range s.Tasks[j].Segments {
					if seg > B {
						B = seg
					}
				}
			}
		}
		var hp []int
		for j := range s.Tasks {
			if prios[s.Tasks[j].Name] < prios[ti.Name] {
				hp = append(hp, j)
			}
		}
		interference := func(window sim.Time, includeSelf bool) sim.Time {
			w := B
			for _, j := range hp {
				tj := &s.Tasks[j]
				w += ceilDiv(window, tj.Period) * (tj.Work() / sim.Time(tj.Cycles))
			}
			if includeSelf {
				w += ceilDiv(window, T) * C
			}
			return w
		}
		R, converged := fixpoint(C+B, T, func(r sim.Time) sim.Time { return C + interference(r, false) })
		if !converged {
			continue
		}
		if _, oneJob := fixpoint(C+B, T, func(l sim.Time) sim.Time { return interference(l, true) }); !oneJob {
			continue
		}
		out := res.Tasks[i]
		if out.MaxResp > R {
			vs = append(vs, Violation{Kind: "rta", At: res.End,
				Msg: fmt.Sprintf("task %s observed response %v exceeds analytic bound %v (C=%v B=%v T=%v, %s)",
					ti.Name, out.MaxResp, R, C, B, T, res.Config)})
		}
		if out.Missed > 0 {
			vs = append(vs, Violation{Kind: "rta", At: res.End,
				Msg: fmt.Sprintf("task %s missed %d deadlines but RTA bounds its response at %v <= period %v",
					ti.Name, out.Missed, R, T)})
		}
	}
	return vs
}

// fixpoint iterates x = f(x) from x0 upward, reporting convergence only
// if the fixed point stays within limit.
func fixpoint(x0, limit sim.Time, f func(sim.Time) sim.Time) (sim.Time, bool) {
	x := x0
	for iter := 0; iter < 1000; iter++ {
		next := f(x)
		if next == x {
			return x, x <= limit
		}
		if next > limit {
			return next, false
		}
		x = next
	}
	return x, false
}

func ceilDiv(a, b sim.Time) sim.Time { return (a + b - 1) / b }
