package simcheck

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/personality"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/smp"
	"repro/internal/trace"
)

// Config selects one point of the scheduling matrix a scenario runs on.
type Config struct {
	Policy    string   // "priority","fcfs","rr","edf","rm" (CPUs=1); "g-fp","g-edf" (CPUs>1)
	TimeModel string   // "coarse" or "segmented"
	CPUs      int      // 1: core.OS single PE; >1: smp.OS global scheduler
	Quantum   sim.Time // round-robin slice ("rr" only)

	// Personality selects the RTOS service surface the scenario's tasks
	// program against ("" or "generic", "itron", "osek"; CPUs=1 only — the
	// SMP model has its own service surface). The generic personality is a
	// 1:1 passthrough, so its traces are byte-identical to the pre-
	// personality runner; itron/osek change channel grant order and wakeup
	// bookkeeping, which the cross-personality differential oracle bounds.
	Personality string

	// LinearReady forces the scheduler's linear ready-list scan instead of
	// the indexed ready queue. Scheduling decisions must be byte-identical
	// either way; the equivalence suite diffs traces across this flag.
	LinearReady bool

	// Engine selects the execution engine: "" or "goroutine" for the
	// process-per-task simulation kernel (internal/sim), "rtc" for the
	// single-goroutine run-to-completion engine (internal/rtc). Traces
	// must be byte-identical across engines; the engine-equivalence suite
	// diffs them. SMP configs (CPUs>1) always use the goroutine kernel —
	// the rtc engine models one CPU.
	Engine string

	// CheckpointAt, when non-zero, runs the scenario through a snapshot/
	// restore cycle at that instant instead of straight to the horizon: the
	// run is paused, checkpointed, restored into a fresh kernel, and the
	// restored kernel runs to the horizon. The result must be byte-identical
	// to the uninterrupted run — the checkpoint-equivalence oracle diffs
	// them. For the rtc engine the restored session is rebuilt from the
	// checkpoint bytes alone; for the goroutine kernel (whose process
	// stacks cannot be serialized) the fresh kernel replays to the instant
	// and the restore verifies its state digest against the checkpoint.
	// CPUs must be 1: the SMP model has no checkpoint support.
	CheckpointAt sim.Time
}

// Segmented reports whether the config uses the interruptible time model.
func (c Config) Segmented() bool { return c.TimeModel == "segmented" }

func (c Config) String() string {
	s := fmt.Sprintf("%s/%s/%dcpu", c.Policy, c.TimeModel, c.CPUs)
	if c.Personality != "" {
		s += "/" + c.Personality
	}
	if c.Engine != "" && c.Engine != "goroutine" {
		s += "/" + c.Engine
	}
	if c.CheckpointAt > 0 {
		s += fmt.Sprintf("/ck@%v", c.CheckpointAt)
	}
	return s
}

// Matrix returns every configuration the scenario is eligible for: all
// five uniprocessor policies under both time models and all three RTOS
// personalities, plus the global SMP policies for channel-free scenarios
// (the SMP model's service surface, generic personality only).
func Matrix(s *Scenario) []Config {
	var out []Config
	for _, tm := range []string{"coarse", "segmented"} {
		for _, pers := range []string{"", personality.ITRON, personality.OSEK} {
			for _, pol := range []string{"priority", "fcfs", "rr", "edf", "rm"} {
				cfg := Config{Policy: pol, TimeModel: tm, CPUs: 1, Personality: pers}
				if pol == "rr" {
					cfg.Quantum = 25 * sim.Microsecond
				}
				out = append(out, cfg)
			}
		}
		if s.ChannelFree() {
			for _, pol := range []string{"g-fp", "g-edf"} {
				out = append(out, Config{Policy: pol, TimeModel: tm, CPUs: 2})
			}
		}
	}
	return out
}

// TaskOutcome is one task's observable result of a run.
type TaskOutcome struct {
	Name        string
	Index       int
	Terminated  bool
	Activations int
	Missed      int
	CPUTime     sim.Time
	MaxResp     sim.Time // periodic, single-PE: max(completion - release) over cycles
}

// RunResult is everything the invariant checker and oracles consume.
type RunResult struct {
	Config  Config
	Err     error // simulation error (deadlock); invariants are skipped
	End     sim.Time
	Trace   []byte         // canonical serialization (determinism oracle)
	Records []trace.Record // single-PE runs
	Events  []SMPEvent     // SMP runs
	Stats   core.Stats     // single-PE runs
	SMP     smp.Stats      // SMP runs
	Tasks   []TaskOutcome

	// Diag is the run's runtime diagnosis (core/diagnosis.go). Scenarios
	// are deadlock-free by construction, so any diagnosis here is a
	// detector false positive — CheckRun reports it as a violation.
	Diag *core.DiagnosisError

	conservation error // core.OS.CheckConservation result
}

// watchdogWindow is the starvation-watchdog window the matrix arms every
// run with: the lowest-ranked task may legitimately wait for all other
// work (overloaded sets run cycles back-to-back, SMP tasks wait for a
// slot), so only total work bounds a legitimate dispatch gap.
func watchdogWindow(s *Scenario) sim.Time {
	var work sim.Time
	for i := range s.Tasks {
		work += s.Tasks[i].Work()
	}
	return 2*work + 50*sim.Microsecond
}

// SMPEvent is one global-scheduler dispatch/release observation.
type SMPEvent struct {
	At      sim.Time
	CPU     int
	Task    string
	Release bool // false: dispatch, true: slot vacated
}

func (e SMPEvent) String() string {
	verb := "dispatch"
	if e.Release {
		verb = "release"
	}
	return fmt.Sprintf("%-10s %s cpu%d %s", e.At, verb, e.CPU, e.Task)
}

// Run simulates the scenario under the given config and returns the
// collected trace, statistics and per-task outcomes.
func Run(s *Scenario, cfg Config) *RunResult {
	switch cfg.Engine {
	case "", "goroutine", "rtc":
	default:
		return &RunResult{Config: cfg,
			Err: fmt.Errorf("simcheck: unknown engine %q (want \"goroutine\" or \"rtc\")", cfg.Engine)}
	}
	if cfg.CheckpointAt > 0 {
		if cfg.CPUs > 1 {
			return &RunResult{Config: cfg,
				Err: fmt.Errorf("simcheck: CheckpointAt requires CPUs=1 (the SMP model has no checkpoint support)")}
		}
		if cfg.Engine == "rtc" {
			return runRTCCheckpointed(s, cfg)
		}
		return runSingleCheckpointed(s, cfg)
	}
	if cfg.CPUs > 1 {
		if cfg.Personality != "" {
			// Personalities are uniprocessor kernel APIs layered over
			// core.OS services; the global SMP scheduler has its own task
			// model, so the combination is a configuration error rather
			// than a silently ignored axis.
			return &RunResult{Config: cfg,
				Err: fmt.Errorf("simcheck: personality %q requires CPUs=1", cfg.Personality)}
		}
		// The rtc engine is uniprocessor; SMP always runs on the
		// goroutine kernel regardless of Engine.
		return runSMP(s, cfg)
	}
	if cfg.Engine == "rtc" {
		return runRTC(s, cfg)
	}
	return runSingle(s, cfg)
}

// runRTC executes the scenario on the run-to-completion engine
// (internal/rtc) and assembles the same RunResult shape runSingle
// produces, so every oracle — including the byte-level trace diff —
// applies across engines unchanged.
func runRTC(s *Scenario, cfg Config) *RunResult {
	r := rtc.Run(BuildRTCWorkload(s, cfg))
	return assembleRTC(cfg, r)
}

// BuildRTCWorkload translates the scenario into the rtc engine's
// workload form under the config's policy/time-model/personality axes.
// Exported so the DSE layer can checkpoint-fork simcheck scenarios.
func BuildRTCWorkload(s *Scenario, cfg Config) rtc.Workload {
	tm := core.TimeModelCoarse
	if cfg.Segmented() {
		tm = core.TimeModelSegmented
	}
	w := rtc.Workload{
		Name:           "PE",
		Policy:         cfg.Policy,
		Quantum:        cfg.Quantum,
		TimeModel:      tm,
		Personality:    cfg.Personality,
		WatchdogWindow: watchdogWindow(s),
		Horizon:        s.Horizon(),
		Trace:          true,
	}
	for _, c := range s.Channels {
		w.Channels = append(w.Channels, rtc.ChannelDef{Name: c.Name, Kind: c.Kind, Arg: c.Arg})
	}
	for i := range s.Tasks {
		spec := &s.Tasks[i]
		td := rtc.TaskDef{
			Name:     spec.Name,
			Type:     spec.Type,
			Prio:     spec.Prio,
			Period:   spec.Period,
			Cycles:   spec.Cycles,
			Segments: spec.Segments,
			Start:    spec.Start,
		}
		for _, op := range spec.Ops {
			td.Ops = append(td.Ops, rtc.Op{Kind: op.Kind, Dur: op.Dur, Ch: op.Ch})
		}
		w.Tasks = append(w.Tasks, td)
	}
	for _, irq := range s.IRQs {
		w.IRQs = append(w.IRQs, rtc.IRQDef{Name: irq.Name, Sem: irq.Sem,
			At: irq.At, Every: irq.Every, Count: irq.Count})
	}
	return w
}

// assembleRTC maps an rtc.Result into the RunResult shape every oracle
// consumes.
func assembleRTC(cfg Config, r *rtc.Result) *RunResult {
	res := &RunResult{Config: cfg}
	res.Err = r.Err
	res.End = r.End
	res.Diag = r.Diag
	res.Records = r.Records
	res.Stats = r.Stats
	res.conservation = r.Conservation
	for i, t := range r.Tasks {
		res.Tasks = append(res.Tasks, TaskOutcome{
			Name:        t.Name,
			Index:       i,
			Terminated:  t.Terminated,
			Activations: t.Activations,
			Missed:      t.Missed,
			CPUTime:     t.CPUTime,
			MaxResp:     t.MaxResp,
		})
	}
	res.Trace = serializeSingle(res)
	return res
}

// singleRun is a built-but-not-run goroutine-kernel instance of a
// scenario: the factored construction half of runSingle, shared with the
// checkpointed runner (which needs to pause, snapshot and rebuild).
type singleRun struct {
	cfg     Config
	k       *sim.Kernel
	rtos    *core.OS
	rec     *trace.Recorder
	tasks   []*core.Task
	resp    []sim.Time
	horizon sim.Time
}

// runSingle executes the scenario on one core.OS instance, programming
// the tasks against the config's personality runtime.
func runSingle(s *Scenario, cfg Config) *RunResult {
	sr, errRes := buildSingle(s, cfg)
	if errRes != nil {
		return errRes
	}
	defer sr.k.Shutdown()
	err := sr.k.RunUntil(sr.horizon)
	return sr.finish(err)
}

// buildSingle constructs the kernel, OS, channels, task processes and
// watchdog for the scenario without advancing time. A non-nil RunResult
// reports a configuration error.
func buildSingle(s *Scenario, cfg Config) (*singleRun, *RunResult) {
	res := &RunResult{Config: cfg}
	policy, err := core.PolicyByName(cfg.Policy, cfg.Quantum)
	if err != nil {
		res.Err = err
		return nil, res
	}
	tm := core.TimeModelCoarse
	if cfg.Segmented() {
		tm = core.TimeModelSegmented
	}
	k := sim.NewKernel()
	rtos := core.New(k, "PE", policy, core.WithTimeModel(tm))
	rtos.SetLinearReady(cfg.LinearReady)
	rec := trace.New("simcheck")
	rec.Attach(rtos)

	rt, err := personality.New(cfg.Personality, rtos)
	if err != nil {
		k.Shutdown()
		res.Err = err
		return nil, res
	}
	queues := map[string]personality.Queue{}
	sems := map[string]personality.Semaphore{}
	for _, c := range s.Channels {
		switch c.Kind {
		case "queue":
			queues[c.Name] = rt.NewQueue(c.Name, c.Arg)
		case "semaphore":
			sems[c.Name] = rt.NewSemaphore(c.Name, c.Arg)
		}
	}

	tasks := make([]*core.Task, len(s.Tasks))
	resp := make([]sim.Time, len(s.Tasks))
	for i := range s.Tasks {
		i := i
		spec := &s.Tasks[i]
		switch spec.Type {
		case "periodic":
			task := rt.TaskCreate(spec.Name, core.Periodic, spec.Period, spec.Work()/sim.Time(spec.Cycles), spec.Prio)
			tasks[i] = task
			k.Spawn(spec.Name, func(p *sim.Proc) {
				rt.Activate(p, task)
				for c := 0; c < spec.Cycles; c++ {
					rel := task.Release()
					for _, seg := range spec.Segments {
						rt.Compute(p, seg)
					}
					if done := task.LastWorkDone(); done > rel && done-rel > resp[i] {
						resp[i] = done - rel
					}
					rt.EndCycle(p)
				}
				rt.Terminate(p)
			})
		case "aperiodic":
			task := rt.TaskCreate(spec.Name, core.Aperiodic, 0, spec.Work(), spec.Prio)
			tasks[i] = task
			k.Spawn(spec.Name, func(p *sim.Proc) {
				if spec.Start > 0 {
					p.WaitFor(spec.Start)
				}
				rt.Activate(p, task)
				for _, op := range spec.Ops {
					switch op.Kind {
					case OpDelay:
						rt.Compute(p, op.Dur)
					case OpSend:
						queues[op.Ch].Send(p, 1)
					case OpRecv:
						queues[op.Ch].Recv(p)
					case OpAcquire:
						sems[op.Ch].Acquire(p)
					}
				}
				rt.Terminate(p)
			})
		}
	}

	for _, irq := range s.IRQs {
		irq := irq
		sem := sems[irq.Sem]
		p := k.Spawn("irq:"+irq.Name, func(p *sim.Proc) {
			p.WaitFor(irq.At)
			for i := 0; i < irq.Count; i++ {
				if i > 0 {
					p.WaitFor(irq.Every)
				}
				rtos.InterruptEnter(p, irq.Name)
				sem.Release(p)
				rtos.InterruptReturn(p, irq.Name)
			}
		})
		p.SetDaemon(true)
	}

	rtos.EnableWatchdog(watchdogWindow(s))
	rtos.Start(nil)
	return &singleRun{cfg: cfg, k: k, rtos: rtos, rec: rec,
		tasks: tasks, resp: resp, horizon: s.Horizon()}, nil
}

// finish assembles the RunResult after the kernel has been advanced to
// the horizon (err is the final RunUntil's result). The caller owns the
// kernel's Shutdown.
func (sr *singleRun) finish(err error) *RunResult {
	res := &RunResult{Config: sr.cfg}
	res.Err = err
	res.End = sr.k.Now()
	res.Diag = sr.rtos.Diagnosis()
	if res.Diag == nil {
		res.Diag = sr.rtos.DiagnoseNow()
	}
	res.Records = sr.rec.Records()
	res.Stats = sr.rtos.StatsSnapshot()
	res.conservation = sr.rtos.CheckConservation()
	for i, t := range sr.tasks {
		res.Tasks = append(res.Tasks, TaskOutcome{
			Name:        t.Name(),
			Index:       i,
			Terminated:  t.State() == core.TaskTerminated,
			Activations: t.Activations(),
			Missed:      t.MissedDeadlines(),
			CPUTime:     t.CPUTime(),
			MaxResp:     sr.resp[i],
		})
	}
	res.Trace = serializeSingle(res)
	return res
}

// smpRecorder collects SMPEvents via the smp.Observer hook.
type smpRecorder struct{ events []SMPEvent }

func (r *smpRecorder) OnDispatch(at sim.Time, cpu int, t *smp.Task) {
	r.events = append(r.events, SMPEvent{At: at, CPU: cpu, Task: t.Name()})
}

func (r *smpRecorder) OnRelease(at sim.Time, cpu int, t *smp.Task) {
	r.events = append(r.events, SMPEvent{At: at, CPU: cpu, Task: t.Name(), Release: true})
}

// runSMP executes a channel-free scenario on the global SMP scheduler.
func runSMP(s *Scenario, cfg Config) *RunResult {
	res := &RunResult{Config: cfg}
	var policy smp.Policy
	switch cfg.Policy {
	case "g-fp":
		policy = smp.FixedPriority{}
	case "g-edf":
		policy = smp.GEDF{}
	default:
		res.Err = fmt.Errorf("simcheck: unknown SMP policy %q", cfg.Policy)
		return res
	}
	k := sim.NewKernel()
	os := smp.New(k, "SMP", policy, cfg.CPUs, cfg.Segmented())
	os.SetLinearReady(cfg.LinearReady)
	defer k.Shutdown()
	rec := &smpRecorder{}
	os.Observe(rec)

	tasks := make([]*smp.Task, len(s.Tasks))
	for i := range s.Tasks {
		spec := &s.Tasks[i]
		switch spec.Type {
		case "periodic":
			task := os.TaskCreate(spec.Name, core.Periodic, spec.Period, spec.Work()/sim.Time(spec.Cycles), spec.Prio)
			tasks[i] = task
			k.Spawn(spec.Name, func(p *sim.Proc) {
				os.TaskActivate(p, task)
				for c := 0; c < spec.Cycles; c++ {
					for _, seg := range spec.Segments {
						os.TimeWait(p, seg)
					}
					os.TaskEndCycle(p)
				}
				os.TaskTerminate(p)
			})
		case "aperiodic":
			task := os.TaskCreate(spec.Name, core.Aperiodic, 0, spec.Work(), spec.Prio)
			tasks[i] = task
			k.Spawn(spec.Name, func(p *sim.Proc) {
				if spec.Start > 0 {
					p.WaitFor(spec.Start)
				}
				os.TaskActivate(p, task)
				for _, op := range spec.Ops {
					if op.Kind == OpDelay {
						os.TimeWait(p, op.Dur)
					}
				}
				os.TaskTerminate(p)
			})
		}
	}

	os.EnableWatchdog(watchdogWindow(s))
	res.Err = k.RunUntil(s.Horizon())
	res.End = k.Now()
	res.Diag = os.Diagnosis()
	res.Events = rec.events
	res.SMP = os.StatsSnapshot()
	for i, t := range tasks {
		res.Tasks = append(res.Tasks, TaskOutcome{
			Name:        t.Name(),
			Index:       i,
			Terminated:  t.State() == core.TaskTerminated,
			Activations: t.Activations(),
			Missed:      t.MissedDeadlines(),
			CPUTime:     t.CPUTime(),
		})
	}
	res.Trace = serializeSMP(res)
	return res
}

// serializeSingle renders a single-PE run to its canonical byte form: the
// full record stream plus the counters and per-task outcomes. Two runs of
// the same (scenario, config) must produce identical bytes.
func serializeSingle(res *RunResult) []byte {
	var b bytes.Buffer
	for _, r := range res.Records {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "stats %+v end %v\n", res.Stats, res.End)
	writeOutcomes(&b, res.Tasks)
	return b.Bytes()
}

// serializeSMP renders an SMP run to its canonical byte form.
func serializeSMP(res *RunResult) []byte {
	var b bytes.Buffer
	for _, e := range res.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "stats %+v end %v\n", res.SMP, res.End)
	writeOutcomes(&b, res.Tasks)
	return b.Bytes()
}

func writeOutcomes(b *bytes.Buffer, tasks []TaskOutcome) {
	for _, t := range tasks {
		fmt.Fprintf(b, "task %s terminated=%v act=%d missed=%d cpu=%v resp=%v\n",
			t.Name, t.Terminated, t.Activations, t.Missed, t.CPUTime, t.MaxResp)
	}
}
