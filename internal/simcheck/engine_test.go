package simcheck

import (
	"bytes"
	"testing"
)

// TestEngineEquivalence pins the central correctness claim of the
// run-to-completion engine: for every (scenario, policy, time model,
// personality) point of the uniprocessor matrix, a run on internal/rtc
// produces a trace byte-identical to the goroutine kernel — every state
// transition, dispatch, IRQ record, statistic, end time and per-task
// outcome — and the same diagnosis verdict. Any divergence fails with
// the first differing trace line.
func TestEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence matrix is slow; skipped with -short")
	}
	for seed := int64(1); seed <= 25; seed++ {
		s := Generate(seed)
		for _, cfg := range Matrix(s) {
			if cfg.CPUs > 1 {
				continue // the rtc engine models one CPU
			}
			goroutineRun := Run(s, cfg)

			rtcCfg := cfg
			rtcCfg.Engine = "rtc"
			rtcRun := Run(s, rtcCfg)

			if (rtcRun.Err == nil) != (goroutineRun.Err == nil) {
				t.Errorf("seed %d %v: err mismatch: rtc=%v goroutine=%v",
					seed, cfg, rtcRun.Err, goroutineRun.Err)
				continue
			}
			if (rtcRun.Diag == nil) != (goroutineRun.Diag == nil) {
				t.Errorf("seed %d %v: diagnosis mismatch: rtc=%v goroutine=%v",
					seed, cfg, rtcRun.Diag, goroutineRun.Diag)
			}
			if !bytes.Equal(rtcRun.Trace, goroutineRun.Trace) {
				t.Errorf("seed %d %v: rtc engine diverges from goroutine kernel\n%s",
					seed, cfg, firstTraceDiff(rtcRun.Trace, goroutineRun.Trace))
			}
		}
	}
}
